(* Tests for Tango_obs — counters, histograms, registry snapshots, the
   JSON emitter, trace collection — and for the observability wired
   through the middleware pipeline (Middleware.Config tracing). *)

open Tango_obs
open Tango_core
open Tango_workload

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* ---------------- clocks and runtime attribution ---------------- *)

let test_clock_monotonic () =
  (* the monotonic clock never goes backwards and actually advances
     across a busy wait; the wall clock stays in the same epoch *)
  let a = mono_us () in
  let b = mono_us () in
  Alcotest.(check bool) "mono never backwards" true (b >= a);
  let t0 = mono_us () in
  while mono_us () -. t0 < 1_000.0 do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "mono advances" true (mono_us () -. t0 >= 1_000.0);
  Alcotest.(check bool) "wall is epoch-based" true
    (now_us () > 1e15 (* after 2001-09 in µs *))

let test_runtime_measure () =
  (* allocating a visible amount of data must show up in the delta, and
     the delta must never be negative *)
  let r, d = Runtime.measure (fun () -> Array.make 100_000 0.0) in
  Alcotest.(check int) "result passed through" 100_000 (Array.length r);
  Alcotest.(check bool) "allocation attributed" true
    (d.Runtime.alloc_bytes >= 100_000 * 8);
  Alcotest.(check bool) "counters non-negative" true
    (d.Runtime.minor_collections >= 0
    && d.Runtime.major_collections >= 0
    && d.Runtime.promoted_words >= 0);
  let zero_then_add = Runtime.add Runtime.zero d in
  Alcotest.(check int) "zero is neutral for add" d.Runtime.alloc_bytes
    zero_then_add.Runtime.alloc_bytes;
  (* publishing makes this domain appear in the per-domain view *)
  Runtime.touch ();
  let self = (Domain.self () :> int) in
  Alcotest.(check bool) "domain published" true
    (List.exists
       (fun (s : Runtime.domain_stats) -> s.Runtime.domain = self)
       (Runtime.domains ()))

(* ---------------- counters ---------------- *)

let test_counter_arithmetic () =
  let c = Counter.make "test.counter_arith" in
  Counter.reset c;
  Alcotest.(check int) "starts at zero" 0 (Counter.value c);
  Counter.incr c;
  Counter.incr c;
  Counter.add c 40;
  Alcotest.(check int) "incr and add" 42 (Counter.value c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.value c)

let test_counter_find_or_create () =
  let a = Counter.make "test.counter_shared" in
  let b = Counter.make "test.counter_shared" in
  Counter.reset a;
  Counter.incr a;
  Counter.incr b;
  (* same registered instance: both increments visible through either *)
  Alcotest.(check int) "shared by name" 2 (Counter.value a);
  Alcotest.(check string) "name" "test.counter_shared" (Counter.name b)

(* ---------------- histograms ---------------- *)

let test_histogram_stats () =
  let h = Histogram.make "test.hist" in
  Histogram.reset h;
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Histogram.mean h);
  List.iter (Histogram.observe h) [ 2.0; 4.0; 6.0 ];
  Alcotest.(check int) "count" 3 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 12.0 (Histogram.sum h);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 6.0 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 4.0 (Histogram.mean h)

(* ---------------- registry ---------------- *)

let test_registry_snapshot_and_diff () =
  let c = Counter.make "test.reg_counter" in
  Counter.reset c;
  Counter.add c 5;
  let before = Registry.snapshot () in
  Counter.add c 7;
  let after = Registry.snapshot () in
  Alcotest.(check int) "snapshot value" 5
    (Registry.counter_value before "test.reg_counter");
  Alcotest.(check int) "absent name is 0" 0
    (Registry.counter_value before "test.no_such_counter");
  let d = Registry.diff after before in
  Alcotest.(check int) "diff delta" 7
    (Registry.counter_value d "test.reg_counter");
  (* names come out sorted *)
  let names = List.map fst after.Registry.counters in
  Alcotest.(check bool) "sorted names" true
    (List.sort compare names = names)

let test_registry_json () =
  let c = Counter.make "test.json_counter" in
  Counter.reset c;
  Counter.add c 3;
  let s = Json.to_string (Registry.to_json (Registry.snapshot ())) in
  Alcotest.(check bool) "mentions the counter" true
    (is_infix ~affix:"\"test.json_counter\":3" s)

(* ---------------- JSON emitter ---------------- *)

let test_json_emitter () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("i", Json.Int (-3));
        ("f", Json.Float 1.5);
        ("nan", Json.Float Float.nan);
        ("l", Json.List [ Json.Bool true; Json.Null ]);
      ]
  in
  Alcotest.(check string) "escaping and shapes"
    "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-3,\"f\":1.5,\"nan\":null,\"l\":[true,null]}"
    (Json.to_string doc)

(* ---------------- traces ---------------- *)

let test_trace_disabled_noop () =
  Alcotest.(check bool) "inactive" false (Trace.active ());
  let ran = ref false in
  let v = Trace.span "should.not.record" (fun () -> ran := true; 17) in
  Alcotest.(check bool) "thunk ran" true !ran;
  Alcotest.(check int) "value through" 17 v;
  Alcotest.(check bool) "no trace produced" true (Trace.finish () = None)

let test_trace_nesting () =
  Trace.start ();
  let v =
    Trace.span "root" (fun () ->
        Trace.attr "k" (Trace.Int 1);
        Trace.span "child1" (fun () -> ()) ;
        Trace.span "child2" (fun () ->
            Trace.graft (Trace.make "grafted" ~elapsed_us:5.0));
        42)
  in
  Alcotest.(check int) "value through" 42 v;
  match Trace.finish () with
  | None -> Alcotest.fail "no trace"
  | Some root ->
      Alcotest.(check string) "root name" "root" root.Trace.name;
      Alcotest.(check (list string)) "children in order"
        [ "child1"; "child2" ]
        (List.map (fun (s : Trace.span) -> s.Trace.name) root.Trace.children);
      Alcotest.(check (option int)) "attr" (Some 1)
        (Trace.attr_int root "k");
      Alcotest.(check bool) "grafted subtree found" true
        (Trace.find "grafted" root <> None);
      Alcotest.(check bool) "timed" true (root.Trace.elapsed_us >= 0.0);
      (* render + JSON both mention every span *)
      let rendered = Trace.to_string root in
      let json = Json.to_string (Trace.to_json root) in
      List.iter
        (fun n ->
          Alcotest.(check bool) ("render has " ^ n) true
            (is_infix ~affix:n rendered);
          Alcotest.(check bool) ("json has " ^ n) true
            (is_infix ~affix:n json))
        [ "root"; "child1"; "child2"; "grafted" ]

let test_trace_exception_safe () =
  Trace.start ();
  (try Trace.span "outer" (fun () -> failwith "boom") with Failure _ -> ());
  (match Trace.finish () with
  | None -> Alcotest.fail "no trace"
  | Some root -> Alcotest.(check string) "span closed" "outer" root.Trace.name);
  Alcotest.(check bool) "collection stopped" false (Trace.active ())

(* ---------------- middleware integration ---------------- *)

let traced_session () =
  let db = Tango_dbms.Database.create () in
  Uis.load ~scale:0.005 db;
  let config =
    Middleware.Config.(
      default |> with_roundtrip_spin 0 |> with_tracing true)
  in
  Middleware.connect ~config db

let test_middleware_trace () =
  let mw = traced_session () in
  let report = Middleware.query mw Queries.q1_sql in
  let root =
    match report.Middleware.trace with
    | Some s -> s
    | None -> Alcotest.fail "no trace on report"
  in
  Alcotest.(check bool) "last_trace retained" true
    (Middleware.last_trace mw <> None);
  Alcotest.(check string) "root span" "middleware.query" root.Trace.name;
  List.iter
    (fun phase ->
      Alcotest.(check bool) ("has phase " ^ phase) true
        (Trace.find phase root <> None))
    [ "parse"; "optimize"; "optimize.saturate"; "optimize.plan"; "translate";
      "execute" ];
  (* the optimizer reported its exploration *)
  let opt = Option.get (Trace.find "optimize" root) in
  Alcotest.(check bool) "classes explored" true
    (match Trace.attr_int opt "classes" with Some n -> n > 0 | None -> false);
  (* the executed operator tree is grafted under execute, with tuple
     counts and round trips *)
  let exec = Option.get (Trace.find "execute" root) in
  Alcotest.(check bool) "execute rows" true
    (match Trace.attr_int exec "tuples" with Some n -> n > 0 | None -> false);
  let tm = Option.get (Trace.find "TRANSFER^M" root) in
  Alcotest.(check bool) "transfer produced tuples" true
    (match Trace.attr_int tm "tuples" with Some n -> n > 0 | None -> false);
  Alcotest.(check bool) "transfer made round trips" true
    (match Trace.attr_int tm "roundtrips" with Some n -> n > 0 | None -> false)

let test_middleware_metrics () =
  let before = Registry.snapshot () in
  let mw = traced_session () in
  ignore (Middleware.query mw Queries.q1_sql);
  let d = Registry.diff (Registry.snapshot ()) before in
  Alcotest.(check bool) "client round trips counted" true
    (Registry.counter_value d "client.roundtrips" > 0);
  Alcotest.(check bool) "client tuples counted" true
    (Registry.counter_value d "client.tuples_shipped" > 0);
  Alcotest.(check bool) "dbms queries counted" true
    (Registry.counter_value d "dbms.queries" > 0);
  Alcotest.(check bool) "volcano rules fired" true
    (Registry.counter_value d "volcano.rules_fired" > 0);
  Alcotest.(check bool) "volcano plans considered" true
    (Registry.counter_value d "volcano.plans_considered" > 0);
  Alcotest.(check bool) "xxl transfer opens counted" true
    (Registry.counter_value d "xxl.transfer_m.opens" > 0)

let test_tracing_off_no_trace () =
  let db = Tango_dbms.Database.create () in
  Uis.load ~scale:0.005 db;
  let mw = Middleware.connect ~roundtrip_spin:0 db in
  let report = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "no trace collected" true
    (report.Middleware.trace = None && Middleware.last_trace mw = None)

let () =
  Alcotest.run "tango_obs"
    [
      ( "runtime",
        [
          Alcotest.test_case "monotonic clock" `Quick test_clock_monotonic;
          Alcotest.test_case "gc/alloc measurement" `Quick
            test_runtime_measure;
        ] );
      ( "counters",
        [
          Alcotest.test_case "arithmetic" `Quick test_counter_arithmetic;
          Alcotest.test_case "find-or-create" `Quick test_counter_find_or_create;
        ] );
      ( "histograms",
        [ Alcotest.test_case "stats" `Quick test_histogram_stats ] );
      ( "registry",
        [
          Alcotest.test_case "snapshot and diff" `Quick
            test_registry_snapshot_and_diff;
          Alcotest.test_case "json export" `Quick test_registry_json;
        ] );
      ("json", [ Alcotest.test_case "emitter" `Quick test_json_emitter ]);
      ( "traces",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_trace_disabled_noop;
          Alcotest.test_case "nesting, attrs, graft" `Quick test_trace_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_trace_exception_safe;
        ] );
      ( "middleware",
        [
          Alcotest.test_case "query trace phases" `Quick test_middleware_trace;
          Alcotest.test_case "global metrics" `Quick test_middleware_metrics;
          Alcotest.test_case "tracing off" `Quick test_tracing_off_no_trace;
        ] );
    ]
