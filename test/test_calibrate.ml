(* Tests for the refit machinery in Calibrate: slope fitting on
   synthetic observations with known coefficients, grouping by factor,
   minimum-sample gating, and directionality of the correction. *)

open Tango_cost

let obs factor x elapsed_us = { Calibrate.factor; x; elapsed_us }

(* ---------------- fit_slope ---------------- *)

let test_fit_slope_exact () =
  (* t = 3.7 x, no noise: the least-squares slope is exactly 3.7 *)
  let pts = List.map (fun x -> (x, 3.7 *. x)) [ 10.0; 55.0; 200.0; 1234.0 ] in
  match Calibrate.fit_slope pts with
  | Some p -> Alcotest.(check (float 1e-9)) "recovers slope" 3.7 p
  | None -> Alcotest.fail "no fit"

let test_fit_slope_noisy () =
  (* symmetric multiplicative noise around a known slope *)
  let noise = [ 0.9; 1.1; 0.95; 1.05; 1.0; 1.02; 0.98 ] in
  let pts =
    List.mapi
      (fun i eps ->
        let x = 100.0 *. float_of_int (i + 1) in
        (x, 0.05 *. x *. eps))
      noise
  in
  match Calibrate.fit_slope pts with
  | Some p ->
      Alcotest.(check bool) "within 10% of truth" true
        (p > 0.045 && p < 0.055)
  | None -> Alcotest.fail "no fit"

let test_fit_slope_degenerate () =
  Alcotest.(check bool) "empty -> None" true (Calibrate.fit_slope [] = None);
  Alcotest.(check bool) "all x=0 -> None" true
    (Calibrate.fit_slope [ (0.0, 5.0); (0.0, 9.0) ] = None);
  (* garbage measurements are skipped, not propagated *)
  Alcotest.(check bool) "nan time skipped" true
    (Calibrate.fit_slope [ (10.0, Float.nan); (10.0, 20.0) ] = Some 2.0)

(* ---------------- refit ---------------- *)

let test_refit_recovers_known_factor () =
  let base = Factors.default () in
  let xs = [ 100.0; 500.0; 2000.0; 8000.0 ] in
  let observations = List.map (fun x -> obs "p_tm" x (0.42 *. x)) xs in
  let fitted, refitted = Calibrate.refit ~base observations in
  Alcotest.(check (list string)) "only p_tm refitted" [ "p_tm" ] refitted;
  Alcotest.(check (float 1e-9)) "recovers 0.42" 0.42 fitted.Factors.p_tm;
  (* the base is untouched (refit returns a fresh copy) *)
  Alcotest.(check (float 1e-9)) "base unchanged"
    (Factors.default ()).Factors.p_tm base.Factors.p_tm

let test_refit_min_samples () =
  let base = Factors.default () in
  let observations = [ obs "p_sem" 100.0 50.0; obs "p_sem" 200.0 100.0 ] in
  let _, refitted = Calibrate.refit ~min_samples:3 ~base observations in
  Alcotest.(check (list string)) "too few samples" [] refitted;
  let fitted, refitted =
    Calibrate.refit ~min_samples:2 ~base observations
  in
  Alcotest.(check (list string)) "enough samples" [ "p_sem" ] refitted;
  Alcotest.(check (float 1e-9)) "slope 0.5" 0.5 fitted.Factors.p_sem

let test_refit_direction () =
  (* when the substrate is slower than the model believes, the refit must
     move the factor up; when faster, down *)
  let base = Factors.default () in
  let xs = [ 100.0; 300.0; 900.0 ] in
  let slower = List.map (fun x -> obs "p_sortm" x (10.0 *. base.Factors.p_sortm *. x)) xs in
  let fitted_up, _ = Calibrate.refit ~base slower in
  Alcotest.(check bool) "moves up" true
    (fitted_up.Factors.p_sortm > base.Factors.p_sortm);
  let faster = List.map (fun x -> obs "p_sortm" x (0.1 *. base.Factors.p_sortm *. x)) xs in
  let fitted_down, _ = Calibrate.refit ~base faster in
  Alcotest.(check bool) "moves down" true
    (fitted_down.Factors.p_sortm < base.Factors.p_sortm)

let test_refit_groups_factors () =
  let base = Factors.default () in
  let observations =
    List.concat_map
      (fun x -> [ obs "p_tm" x (2.0 *. x); obs "p_pm" x (0.25 *. x) ])
      [ 50.0; 150.0; 450.0 ]
  in
  let fitted, refitted = Calibrate.refit ~base observations in
  Alcotest.(check (list string)) "both refitted (sorted)" [ "p_pm"; "p_tm" ]
    refitted;
  Alcotest.(check (float 1e-9)) "p_tm" 2.0 fitted.Factors.p_tm;
  Alcotest.(check (float 1e-9)) "p_pm" 0.25 fitted.Factors.p_pm

let test_refit_unknown_factor_ignored () =
  let base = Factors.default () in
  let observations =
    List.map (fun x -> obs "p_bogus" x (2.0 *. x)) [ 1.0; 2.0; 3.0 ]
  in
  let _, refitted = Calibrate.refit ~base observations in
  Alcotest.(check (list string)) "unknown name dropped" [] refitted

(* ---------------- factors by-name access ---------------- *)

let test_factor_names_roundtrip () =
  let f = Factors.default () in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool)
        (name ^ " get_by_name")
        true
        (Factors.get_by_name f name = Some v);
      Alcotest.(check bool)
        (name ^ " set_by_name")
        true
        (Factors.set_by_name f name (v +. 1.0));
      Alcotest.(check bool)
        (name ^ " updated")
        true
        (Factors.get_by_name f name = Some (v +. 1.0)))
    (Factors.to_assoc (Factors.default ()));
  Alcotest.(check bool) "unknown name rejected" false
    (Factors.set_by_name f "p_bogus" 1.0)

let () =
  Alcotest.run "calibrate"
    [
      ( "fit_slope",
        [
          Alcotest.test_case "exact" `Quick test_fit_slope_exact;
          Alcotest.test_case "noisy" `Quick test_fit_slope_noisy;
          Alcotest.test_case "degenerate" `Quick test_fit_slope_degenerate;
        ] );
      ( "refit",
        [
          Alcotest.test_case "recovers known factor" `Quick
            test_refit_recovers_known_factor;
          Alcotest.test_case "min samples" `Quick test_refit_min_samples;
          Alcotest.test_case "direction" `Quick test_refit_direction;
          Alcotest.test_case "groups factors" `Quick test_refit_groups_factors;
          Alcotest.test_case "unknown factor ignored" `Quick
            test_refit_unknown_factor_ignored;
        ] );
      ( "factors",
        [
          Alcotest.test_case "by-name roundtrip" `Quick
            test_factor_names_roundtrip;
        ] );
    ]
