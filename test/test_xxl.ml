(* Tests for the middleware execution engine: every XXL algorithm is checked
   against the reference semantics of the algebra. *)

open Tango_rel
open Tango_sql
open Tango_algebra
open Tango_xxl

let col ?q c = Ast.Col (q, c)

let schema_kab =
  Schema.make [ ("K", Value.TInt); ("V", Value.TFloat);
                ("T1", Value.TDate); ("T2", Value.TDate) ]

let rel_of rows =
  Relation.of_list schema_kab
    (List.map
       (fun (k, v, a, b) ->
         Tuple.of_list [ Value.Int k; Value.Float v; Value.Date a; Value.Date b ])
       rows)

let sample =
  rel_of
    [ (1, 10.0, 2, 20); (1, 20.0, 5, 25); (2, 5.0, 5, 10); (2, 7.5, 1, 6);
      (3, 1.0, 4, 8) ]

let test_cursor_of_relation () =
  let c = Cursor.of_relation sample in
  let r = Cursor.to_relation c in
  Alcotest.(check bool) "roundtrip" true (Relation.equal_list sample r);
  (* init resets *)
  let r2 = Cursor.to_relation c in
  Alcotest.(check bool) "re-init" true (Relation.equal_list sample r2)

let test_filter () =
  let pred = Ast.Binop (Ast.Eq, col "K", Ast.Lit (Value.Int 1)) in
  let out = Cursor.to_relation (Basic_ops.filter pred (Cursor.of_relation sample)) in
  Alcotest.(check int) "two" 2 (Relation.cardinality out)

let test_project () =
  let out =
    Cursor.to_relation
      (Basic_ops.project
         [ (col "K", "K"); (Ast.Binop (Ast.Mul, col "V", Ast.Lit (Value.Int 2)), "V2") ]
         (Cursor.of_relation sample))
  in
  Alcotest.(check (list string)) "schema" [ "K"; "V2" ]
    (Schema.names (Relation.schema out));
  Alcotest.(check (float 0.001)) "computed" 20.0
    (Value.to_float (Relation.tuples out).(0).(1))

let test_sort_matches_relation_sort () =
  let order = [ Order.asc "K"; Order.desc "T1" ] in
  let out = Cursor.to_relation (Sort.sort order (Cursor.of_relation sample)) in
  let expected = Relation.sort order sample in
  Alcotest.(check bool) "sorted equal" true (Relation.equal_list expected out)

let test_sort_multi_run () =
  (* Force many tiny runs to exercise the external merge. *)
  let rows = List.init 1000 (fun i -> ((i * 37) mod 1000, 0.0, 1, 2)) in
  let r = rel_of rows in
  let out =
    Cursor.to_relation (Sort.sort ~run_size:16 [ Order.asc "K" ] (Cursor.of_relation r))
  in
  let expected = Relation.sort [ Order.asc "K" ] r in
  Alcotest.(check bool) "external sort correct" true
    (Relation.equal_list expected out)

let test_sort_stability () =
  let schema = Schema.make [ ("K", Value.TInt); ("I", Value.TInt) ] in
  let r =
    Relation.of_list schema
      (List.init 100 (fun i -> Tuple.of_list [ Value.Int (i mod 3); Value.Int i ]))
  in
  let out = Cursor.to_relation (Sort.sort ~run_size:8 [ Order.asc "K" ] (Cursor.of_relation r)) in
  (* within each key, I must stay increasing *)
  let last = Hashtbl.create 3 in
  let ok = ref true in
  Relation.iter
    (fun t ->
      let k = Value.to_int t.(0) and i = Value.to_int t.(1) in
      (match Hashtbl.find_opt last k with
      | Some prev when prev > i -> ok := false
      | _ -> ());
      Hashtbl.replace last k i)
    out;
  Alcotest.(check bool) "stable across runs" true !ok

(* ---- joins ---- *)

let lookup_of pairs name =
  match List.assoc_opt name pairs with
  | Some r -> r
  | None -> failwith ("unknown " ^ name)

let sorted_cursor keys r = Sort.sort (Order.of_attrs keys) (Cursor.of_relation r)

let test_merge_join_vs_reference () =
  let l = rel_of [ (1, 1.0, 1, 2); (2, 2.0, 1, 2); (2, 3.0, 1, 2); (4, 1.0, 1, 2) ] in
  let r = rel_of [ (2, 9.0, 1, 2); (2, 8.0, 1, 2); (3, 7.0, 1, 2); (4, 1.0, 1, 2) ] in
  let pred = Ast.Binop (Ast.Eq, col ~q:"A" "K", col ~q:"B" "K") in
  let ref_out =
    Reference.eval
      (lookup_of [ ("L", l); ("R", r) ])
      (Op.join pred
         (Op.scan ~alias:"A" "L" schema_kab)
         (Op.scan ~alias:"B" "R" schema_kab))
  in
  let qual alias rel =
    Relation.make (Schema.qualify alias schema_kab) (Relation.tuples rel)
  in
  let out =
    Cursor.to_relation
      (Joins.merge_join ~left_keys:[ "A.K" ] ~right_keys:[ "B.K" ]
         (sorted_cursor [ "A.K" ] (qual "A" l))
         (sorted_cursor [ "B.K" ] (qual "B" r)))
  in
  Alcotest.(check int) "5 matches" 5 (Relation.cardinality out);
  Alcotest.(check bool) "matches reference" true (Relation.equal_multiset ref_out out)

let test_merge_join_residual_pred () =
  let l = rel_of [ (1, 1.0, 1, 2); (1, 5.0, 1, 2) ] in
  let r = rel_of [ (1, 2.0, 1, 2) ] in
  let pred =
    Ast.Binop
      (Ast.And,
       Ast.Binop (Ast.Eq, col ~q:"A" "K", col ~q:"B" "K"),
       Ast.Binop (Ast.Lt, col ~q:"A" "V", col ~q:"B" "V"))
  in
  let qual alias rel = Relation.make (Schema.qualify alias schema_kab) (Relation.tuples rel) in
  let out =
    Cursor.to_relation
      (Joins.merge_join ~pred ~left_keys:[ "A.K" ] ~right_keys:[ "B.K" ]
         (sorted_cursor [ "A.K" ] (qual "A" l))
         (sorted_cursor [ "B.K" ] (qual "B" r)))
  in
  Alcotest.(check int) "only V<2" 1 (Relation.cardinality out)

let test_tjoin_vs_reference () =
  let pred = Ast.Binop (Ast.Eq, col ~q:"A" "K", col ~q:"B" "K") in
  let ref_out =
    Reference.eval
      (lookup_of [ ("L", sample); ("R", sample) ])
      (Op.temporal_join pred
         (Op.scan ~alias:"A" "L" schema_kab)
         (Op.scan ~alias:"B" "R" schema_kab))
  in
  let qual alias = Relation.make (Schema.qualify alias schema_kab) (Relation.tuples sample) in
  let out =
    Cursor.to_relation
      (Joins.temporal_merge_join ~pred:(Ast.Lit (Value.Bool true))
         ~left_keys:[ "A.K" ] ~right_keys:[ "B.K" ]
         (sorted_cursor [ "A.K" ] (qual "A"))
         (sorted_cursor [ "B.K" ] (qual "B")))
  in
  Alcotest.(check bool) "tjoin matches reference" true
    (Relation.equal_multiset ref_out out)

let test_nested_loop_variants () =
  let pred = Ast.Binop (Ast.Eq, col ~q:"A" "K", col ~q:"B" "K") in
  let qual alias = Relation.make (Schema.qualify alias schema_kab) (Relation.tuples sample) in
  let merge =
    Cursor.to_relation
      (Joins.temporal_merge_join ~left_keys:[ "A.K" ] ~right_keys:[ "B.K" ]
         ~pred:(Ast.Lit (Value.Bool true))
         (sorted_cursor [ "A.K" ] (qual "A"))
         (sorted_cursor [ "B.K" ] (qual "B")))
  in
  let nl =
    Cursor.to_relation
      (Joins.temporal_nested_loop_join ~pred
         (Cursor.of_relation (qual "A"))
         (Cursor.of_relation (qual "B")))
  in
  Alcotest.(check bool) "nl tjoin = merge tjoin" true (Relation.equal_multiset merge nl);
  let j_m =
    Cursor.to_relation
      (Joins.merge_join ~left_keys:[ "A.K" ] ~right_keys:[ "B.K" ]
         (sorted_cursor [ "A.K" ] (qual "A"))
         (sorted_cursor [ "B.K" ] (qual "B")))
  in
  let j_nl =
    Cursor.to_relation
      (Joins.nested_loop_join ~pred (Cursor.of_relation (qual "A")) (Cursor.of_relation (qual "B")))
  in
  Alcotest.(check bool) "nl join = merge join" true (Relation.equal_multiset j_m j_nl)

(* ---- temporal aggregation ---- *)

let taggr_via_xxl ~group_by ~aggs r =
  let sorted = Sort.sort (Order.of_attrs (group_by @ [ "T1" ])) (Cursor.of_relation r) in
  Cursor.to_relation (Taggr.taggr ~group_by ~aggs sorted)

let taggr_via_reference ~group_by ~aggs r =
  Reference.eval
    (lookup_of [ ("R", r) ])
    (Op.temporal_aggregate group_by aggs
       (Op.scan "R" (Schema.unqualify (Relation.schema r))))

let test_taggr_figure3c () =
  let pos_schema =
    Schema.make
      [ ("PosID", Value.TInt); ("EmpName", Value.TStr);
        ("T1", Value.TDate); ("T2", Value.TDate) ]
  in
  let position =
    Relation.of_list pos_schema
      (List.map
         (fun (p, n, a, b) ->
           Tuple.of_list [ Value.Int p; Value.Str n; Value.Date a; Value.Date b ])
         [ (1, "Tom", 2, 20); (1, "Jane", 5, 25); (2, "Tom", 5, 10) ])
  in
  let out =
    taggr_via_xxl ~group_by:[ "PosID" ] ~aggs:[ Op.count_star "CNT" ] position
  in
  let rows =
    Array.to_list
      (Array.map
         (fun t -> List.map Value.to_int [ t.(0); t.(1); t.(2); t.(3) ])
         (Relation.tuples out))
  in
  Alcotest.(check (list (list int))) "figure 3(c)"
    [ [ 1; 2; 5; 1 ]; [ 1; 5; 20; 2 ]; [ 1; 20; 25; 1 ]; [ 2; 5; 10; 1 ] ]
    rows

let test_taggr_all_aggregates () =
  let aggs =
    [ Op.count_star "CNT"; Op.agg Ast.Sum "V" "S"; Op.agg Ast.Avg "V" "A";
      Op.agg Ast.Min "V" "MN"; Op.agg Ast.Max "V" "MX" ]
  in
  let xxl = taggr_via_xxl ~group_by:[ "K" ] ~aggs sample in
  let ref_ = taggr_via_reference ~group_by:[ "K" ] ~aggs sample in
  Alcotest.(check bool) "all aggregates match reference" true
    (Relation.equal_list ref_ xxl)

let test_taggr_no_grouping () =
  let xxl = taggr_via_xxl ~group_by:[] ~aggs:[ Op.count_star "CNT" ] sample in
  let ref_ = taggr_via_reference ~group_by:[] ~aggs:[ Op.count_star "CNT" ] sample in
  Alcotest.(check bool) "global taggr" true (Relation.equal_list ref_ xxl)

let test_taggr_output_order () =
  let out = taggr_via_xxl ~group_by:[ "K" ] ~aggs:[ Op.count_star "C" ] sample in
  let s = Relation.schema out in
  let cmp = Order.comparator [ Order.asc "K"; Order.asc "T1" ] s in
  let sorted = ref true in
  let ts = Relation.tuples out in
  for i = 1 to Array.length ts - 1 do
    if cmp ts.(i - 1) ts.(i) > 0 then sorted := false
  done;
  Alcotest.(check bool) "ordered by (K, T1)" true !sorted

(* property: TAGGR^M = reference on random data, all aggregate functions *)
let row_gen =
  QCheck.Gen.(
    map
      (fun (k, v, t1, d) -> (k, float_of_int v, t1, t1 + 1 + d))
      (quad (int_range 1 4) (int_range 0 20) (int_range 0 40) (int_range 0 15)))

let prop_taggr_matches_reference =
  QCheck.Test.make ~name:"TAGGR^M = reference semantics" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 25) (QCheck.make row_gen))
    (fun rows ->
      let r = rel_of rows in
      let aggs =
        [ Op.count_star "CNT"; Op.agg Ast.Sum "V" "S";
          Op.agg Ast.Min "V" "MN"; Op.agg Ast.Max "V" "MX" ]
      in
      let xxl = taggr_via_xxl ~group_by:[ "K" ] ~aggs r in
      let ref_ = taggr_via_reference ~group_by:[ "K" ] ~aggs r in
      Relation.equal_list ref_ xxl)

let prop_merge_join_matches_reference =
  QCheck.Test.make ~name:"MERGEJOIN^M = reference join" ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 15) (QCheck.make row_gen))
        (list_of_size (QCheck.Gen.int_bound 15) (QCheck.make row_gen)))
    (fun (lrows, rrows) ->
      let l = rel_of lrows and r = rel_of rrows in
      let pred = Ast.Binop (Ast.Eq, col ~q:"A" "K", col ~q:"B" "K") in
      let ref_out =
        Reference.eval
          (lookup_of [ ("L", l); ("R", r) ])
          (Op.join pred
             (Op.scan ~alias:"A" "L" schema_kab)
             (Op.scan ~alias:"B" "R" schema_kab))
      in
      let qual alias rel = Relation.make (Schema.qualify alias schema_kab) (Relation.tuples rel) in
      let out =
        Cursor.to_relation
          (Joins.merge_join ~left_keys:[ "A.K" ] ~right_keys:[ "B.K" ]
             (sorted_cursor [ "A.K" ] (qual "A" l))
             (sorted_cursor [ "B.K" ] (qual "B" r)))
      in
      Relation.equal_multiset ref_out out)

let prop_tjoin_matches_reference =
  QCheck.Test.make ~name:"TJOIN^M = reference temporal join" ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 12) (QCheck.make row_gen))
        (list_of_size (QCheck.Gen.int_bound 12) (QCheck.make row_gen)))
    (fun (lrows, rrows) ->
      let l = rel_of lrows and r = rel_of rrows in
      let pred = Ast.Binop (Ast.Eq, col ~q:"A" "K", col ~q:"B" "K") in
      let ref_out =
        Reference.eval
          (lookup_of [ ("L", l); ("R", r) ])
          (Op.temporal_join pred
             (Op.scan ~alias:"A" "L" schema_kab)
             (Op.scan ~alias:"B" "R" schema_kab))
      in
      let qual alias rel = Relation.make (Schema.qualify alias schema_kab) (Relation.tuples rel) in
      let out =
        Cursor.to_relation
          (Joins.temporal_merge_join ~pred:(Ast.Lit (Value.Bool true))
             ~left_keys:[ "A.K" ] ~right_keys:[ "B.K" ]
             (sorted_cursor [ "A.K" ] (qual "A" l))
             (sorted_cursor [ "B.K" ] (qual "B" r)))
      in
      Relation.equal_multiset ref_out out)

(* ---- dup elim / coalesce / difference ---- *)

let test_dup_elim () =
  let r = rel_of [ (1, 1.0, 1, 2); (1, 1.0, 1, 2); (2, 1.0, 1, 2) ] in
  let out =
    Cursor.to_relation
      (Dup_elim.dup_elim
         (Sort.sort (Order.of_attrs [ "K"; "V"; "T1"; "T2" ]) (Cursor.of_relation r)))
  in
  Alcotest.(check int) "two distinct" 2 (Relation.cardinality out)

let test_difference () =
  let l = rel_of [ (1, 1.0, 1, 2); (1, 1.0, 1, 2); (2, 1.0, 1, 2) ] in
  let r = rel_of [ (1, 1.0, 1, 2) ] in
  let out =
    Cursor.to_relation (Dup_elim.difference (Cursor.of_relation l) (Cursor.of_relation r))
  in
  (* multiset semantics: one occurrence removed *)
  Alcotest.(check int) "one removed" 2 (Relation.cardinality out)

let test_coalesce_vs_reference () =
  let r =
    rel_of [ (1, 1.0, 1, 5); (1, 1.0, 5, 9); (1, 1.0, 20, 25); (2, 1.0, 3, 6) ]
  in
  let ref_out =
    Reference.eval
      (lookup_of [ ("R", r) ])
      (Op.Coalesce (Op.scan "R" (Schema.unqualify (Relation.schema r))))
  in
  let out =
    Cursor.to_relation
      (Dup_elim.coalesce
         (Sort.sort (Order.of_attrs [ "K"; "V"; "T1" ]) (Cursor.of_relation r)))
  in
  Alcotest.(check bool) "coalesce matches" true
    (Relation.equal_multiset ref_out out)

(* ---- batch protocol ---- *)

(* Drain a cursor through each pull protocol explicitly (bypassing
   [to_relation], which is itself batch-based). *)
let drain_via_next c =
  Cursor.init c;
  let rec go acc =
    match Cursor.next c with Some t -> go (t :: acc) | None -> List.rev acc
  in
  Relation.of_list (Cursor.schema c) (go [])

let drain_via_batches c =
  Cursor.init c;
  let rec go acc =
    match Cursor.next_batch c with
    | Some b -> go (List.rev_append (Array.to_list b) acc)
    | None -> List.rev acc
  in
  Relation.of_list (Cursor.schema c) (go [])

(* Every operator must yield the identical relation (same order) whether
   pulled tuple-at-a-time, batch-at-a-time, or through the degradation
   wrapper that forces the classic protocol at every level. *)
let check_differential name (mk : unit -> Cursor.t) =
  let tuple = drain_via_next (mk ()) in
  let batch = drain_via_batches (mk ()) in
  let degraded = drain_via_batches (Cursor.tuple_at_a_time (mk ())) in
  Alcotest.(check bool) (name ^ ": batch = tuple") true
    (Relation.equal_list tuple batch);
  Alcotest.(check bool) (name ^ ": degraded = tuple") true
    (Relation.equal_list tuple degraded)

let test_batch_differential () =
  let qual alias = Relation.make (Schema.qualify alias schema_kab) (Relation.tuples sample) in
  check_differential "of_relation" (fun () -> Cursor.of_relation sample);
  check_differential "filter" (fun () ->
      Basic_ops.filter
        (Ast.Binop (Ast.Gt, col "V", Ast.Lit (Value.Float 2.0)))
        (Cursor.of_relation sample));
  check_differential "project" (fun () ->
      Basic_ops.project
        [ (col "K", "K"); (Ast.Binop (Ast.Mul, col "V", Ast.Lit (Value.Int 2)), "V2") ]
        (Cursor.of_relation sample));
  check_differential "sort" (fun () ->
      Sort.sort ~run_size:2 [ Order.asc "K"; Order.desc "T1" ]
        (Cursor.of_relation sample));
  check_differential "taggr" (fun () ->
      Taggr.taggr ~group_by:[ "K" ] ~aggs:[ Op.count_star "CNT" ]
        (sorted_cursor [ "K"; "T1" ] sample));
  check_differential "merge_join" (fun () ->
      Joins.merge_join ~left_keys:[ "A.K" ] ~right_keys:[ "B.K" ]
        (sorted_cursor [ "A.K" ] (qual "A"))
        (sorted_cursor [ "B.K" ] (qual "B")));
  check_differential "tjoin" (fun () ->
      Joins.temporal_merge_join ~pred:(Ast.Lit (Value.Bool true))
        ~left_keys:[ "A.K" ] ~right_keys:[ "B.K" ]
        (sorted_cursor [ "A.K" ] (qual "A"))
        (sorted_cursor [ "B.K" ] (qual "B")));
  check_differential "dup_elim" (fun () ->
      Dup_elim.dup_elim (sorted_cursor [ "K"; "V"; "T1"; "T2" ] sample));
  check_differential "coalesce" (fun () ->
      Dup_elim.coalesce (sorted_cursor [ "K"; "V"; "T1" ] sample));
  check_differential "difference" (fun () ->
      Dup_elim.difference
        (Cursor.of_relation sample)
        (Cursor.of_relation (rel_of [ (1, 10.0, 2, 20) ])))

let test_batch_interleave () =
  (* A per-tuple pull must serve from (and advance past) the buffered
     batch remainder, so the protocols interleave without loss or
     duplication. *)
  let c = Cursor.of_relation sample in
  Cursor.init c;
  let first = Option.get (Cursor.next c) in
  let rest =
    let rec go acc =
      match Cursor.next_batch c with
      | Some b -> go (List.rev_append (Array.to_list b) acc)
      | None -> List.rev acc
    in
    go []
  in
  let all = Relation.of_list schema_kab (first :: rest) in
  Alcotest.(check bool) "interleaved pull sees every tuple once" true
    (Relation.equal_list sample all)

let test_tuple_at_a_time_degrades () =
  (* 600 tuples: the native of_relation batch path hands them out as one
     array, while the degradation wrapper reassembles them through the
     per-tuple shim in default_batch_size chunks. *)
  let big = rel_of (List.init 600 (fun i -> (i, 0.0, 1, 2))) in
  let batch_sizes c =
    Cursor.init c;
    let rec go acc =
      match Cursor.next_batch c with
      | Some b -> go (Array.length b :: acc)
      | None -> List.rev acc
    in
    go []
  in
  let native = batch_sizes (Cursor.of_relation big) in
  let degraded = batch_sizes (Cursor.tuple_at_a_time (Cursor.of_relation big)) in
  Alcotest.(check (list int)) "native: one whole-relation batch" [ 600 ] native;
  Alcotest.(check int) "degraded: total preserved" 600
    (List.fold_left ( + ) 0 degraded);
  Alcotest.(check bool) "degraded: shim-sized batches" true
    (List.for_all (fun n -> n > 0 && n <= Cursor.default_batch_size) degraded);
  Alcotest.(check bool) "degraded: more than one batch" true
    (List.length degraded > 1)

(* property: batch pulls = tuple pulls through a filter+sort pipeline on
   random relations (batch boundaries land arbitrarily) *)
let prop_batch_equals_tuple =
  QCheck.Test.make ~name:"batch protocol = tuple protocol" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 600) (QCheck.make row_gen))
    (fun rows ->
      let r = rel_of rows in
      let mk () =
        Sort.sort ~run_size:16 [ Order.asc "K"; Order.asc "T1" ]
          (Basic_ops.filter
             (Ast.Binop (Ast.Gt, col "T1", Ast.Lit (Value.Date 5)))
             (Cursor.of_relation r))
      in
      Relation.equal_list (drain_via_next (mk ())) (drain_via_batches (mk ())))

(* ---- transfers ---- *)

let test_transfer_m () =
  let db = Tango_dbms.Database.create () in
  Tango_dbms.Database.load_relation db "R" sample;
  let client = Tango_dbms.Client.connect ~roundtrip_spin:0 db in
  let backend = Tango_dbms.Backend.of_client client in
  let sql = Parser.query "SELECT K, V, T1, T2 FROM R ORDER BY K" in
  let out =
    Cursor.to_relation (Transfer.transfer_m backend ~schema:schema_kab sql)
  in
  Alcotest.(check int) "all rows" 5 (Relation.cardinality out);
  Alcotest.(check int) "shipped" 5 (Tango_dbms.Client.tuples_shipped client);
  Alcotest.(check int) "backend meter agrees" 5
    (Tango_dbms.Backend.tuples_shipped backend)

let test_transfer_d_roundtrip () =
  let db = Tango_dbms.Database.create () in
  let client = Tango_dbms.Client.connect ~roundtrip_spin:0 db in
  let backend = Tango_dbms.Backend.of_client client in
  let td = Transfer.transfer_d backend ~table:"TMP1" (Cursor.of_relation sample) in
  Cursor.init td;
  Alcotest.(check bool) "empty cursor" true (Cursor.next td = None);
  Alcotest.(check int) "loaded" 5 (Tango_dbms.Database.table_cardinality db "TMP1");
  (* Round trip back out. *)
  let sql = Parser.query "SELECT K, V, T1, T2 FROM TMP1" in
  let back = Cursor.to_relation (Transfer.transfer_m backend ~schema:schema_kab sql) in
  Alcotest.(check bool) "round trip" true (Relation.equal_multiset sample back);
  Transfer.drop_temp_table backend "TMP1";
  Alcotest.(check bool) "dropped" false (Tango_dbms.Database.table_exists db "TMP1")

let () =
  Alcotest.run "tango_xxl"
    [
      ( "cursor",
        [ Alcotest.test_case "of_relation" `Quick test_cursor_of_relation ] );
      ( "basic",
        [
          Alcotest.test_case "filter" `Quick test_filter;
          Alcotest.test_case "project" `Quick test_project;
        ] );
      ( "sort",
        [
          Alcotest.test_case "matches Relation.sort" `Quick test_sort_matches_relation_sort;
          Alcotest.test_case "multi-run external" `Quick test_sort_multi_run;
          Alcotest.test_case "stability" `Quick test_sort_stability;
        ] );
      ( "joins",
        [
          Alcotest.test_case "merge join vs reference" `Quick test_merge_join_vs_reference;
          Alcotest.test_case "residual predicate" `Quick test_merge_join_residual_pred;
          Alcotest.test_case "tjoin vs reference" `Quick test_tjoin_vs_reference;
          Alcotest.test_case "nested loop variants" `Quick test_nested_loop_variants;
        ] );
      ( "taggr",
        [
          Alcotest.test_case "figure 3(c)" `Quick test_taggr_figure3c;
          Alcotest.test_case "all aggregates" `Quick test_taggr_all_aggregates;
          Alcotest.test_case "no grouping" `Quick test_taggr_no_grouping;
          Alcotest.test_case "output order" `Quick test_taggr_output_order;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "dup elim" `Quick test_dup_elim;
          Alcotest.test_case "difference" `Quick test_difference;
          Alcotest.test_case "coalesce" `Quick test_coalesce_vs_reference;
        ] );
      ( "batching",
        [
          Alcotest.test_case "operator differential" `Quick test_batch_differential;
          Alcotest.test_case "protocol interleave" `Quick test_batch_interleave;
          Alcotest.test_case "tuple_at_a_time degrades" `Quick
            test_tuple_at_a_time_degrades;
        ] );
      ( "transfers",
        [
          Alcotest.test_case "transfer^M" `Quick test_transfer_m;
          Alcotest.test_case "transfer^D roundtrip" `Quick test_transfer_d_roundtrip;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_taggr_matches_reference;
          QCheck_alcotest.to_alcotest prop_merge_join_matches_reference;
          QCheck_alcotest.to_alcotest prop_tjoin_matches_reference;
          QCheck_alcotest.to_alcotest prop_batch_equals_tuple;
        ] );
    ]
