(* Regression tests for the domain-safety analyzer: compile small
   fixtures with [ocamlc -bin-annot] at test time, scan the resulting
   [.cmt], and assert the analyzer flags exactly the seeded races.
   Self-contained — no dependence on the repo's own build tree. *)

module Finding = Tango_lint.Finding
module Allow = Tango_lint.Allow
module Scan = Tango_lint.Scan

(* ---------------- fixture plumbing ---------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let counter = ref 0

(* Compile [source] as its own module in a temp dir and scan the cmt.
   Skips (rather than fails) if ocamlc is unavailable. *)
let scan_fixture source : Scan.unit_info =
  incr counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tango_lint_fixture_%d_%d" (Unix.getpid ()) !counter)
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  write_file (Filename.concat dir "fixture.ml") source;
  let cmd =
    Printf.sprintf "cd %s && ocamlc -bin-annot -c fixture.ml 2>fixture.err"
      (Filename.quote dir)
  in
  if Sys.command cmd <> 0 then
    Alcotest.failf "fixture failed to compile: %s"
      (let ic = open_in (Filename.concat dir "fixture.err") in
       let n = in_channel_length ic in
       let s = really_input_string ic n in
       close_in ic;
       s);
  match Scan.scan_cmts [ Filename.concat dir "fixture.cmt" ] with
  | [ u ] -> u
  | us -> Alcotest.failf "expected 1 scanned unit, got %d" (List.length us)

let guard_findings (u : Scan.unit_info) =
  List.filter (fun f -> f.Finding.family = "guard") u.Scan.findings

let failing_guards u = Finding.failing (guard_findings u)

(* ---------------- fixtures ---------------- *)

(* The seeded race: module-level table and ref mutated with no guard. *)
let unguarded_fixture =
  {|
let table : (string, int) Hashtbl.t = Hashtbl.create 8
let total = ref 0

let record name n =
  Hashtbl.replace table name n;   (* race: unguarded shared table *)
  total := !total + n             (* race: unguarded shared ref *)
|}

(* Same state, every mutation inside Mutex.protect: must be clean. *)
let guarded_fixture =
  {|
let lock = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 8
let total = ref 0

let record name n =
  Mutex.protect lock (fun () ->
      Hashtbl.replace table name n;
      total := !total + n)
|}

(* Unguarded but annotated: findings exist, none failing. *)
let annotated_fixture =
  {|
let table : (string, int) Hashtbl.t = Hashtbl.create 8

let record name n = Hashtbl.replace table name n
[@@tango.unguarded "fixture: single-domain by construction"]
|}

(* Raw lock/unlock instead of protect: flagged as not exception-safe. *)
let raw_lock_fixture =
  {|
let lock = Mutex.create ()
let total = ref 0

let record n =
  Mutex.lock lock;
  total := !total + n;
  Mutex.unlock lock
|}

(* Mutation of let-bound locals only: must be clean. *)
let local_fixture =
  {|
let sum l =
  let acc = ref 0 in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun x ->
      Hashtbl.replace seen x ();
      acc := !acc + x)
    l;
  !acc
|}

(* ---------------- scanner tests ---------------- *)

let test_flags_seeded_race () =
  let u = scan_fixture unguarded_fixture in
  let fails = failing_guards u in
  Alcotest.(check int) "both mutation sites flagged" 2 (List.length fails);
  let ids = List.map (fun f -> f.Finding.id) fails in
  List.iter
    (fun id -> Alcotest.(check string) "site attributed to record" "Fixture.record" id)
    ids;
  List.iter
    (fun f ->
      Alcotest.(check bool) "error severity" true
        (f.Finding.severity = Finding.Error))
    fails

let test_state_inventory () =
  let u = scan_fixture unguarded_fixture in
  let state =
    List.filter (fun f -> f.Finding.family = "state") u.Scan.findings
  in
  let ids = List.sort compare (List.map (fun f -> f.Finding.id) state) in
  Alcotest.(check (list string)) "module-level mutable values inventoried"
    [ "Fixture.table"; "Fixture.total" ] ids

let test_guarded_is_clean () =
  let u = scan_fixture guarded_fixture in
  Alcotest.(check int) "no guard findings under Mutex.protect" 0
    (List.length (guard_findings u))

let test_annotation_allows () =
  let u = scan_fixture annotated_fixture in
  let guards = guard_findings u in
  Alcotest.(check int) "finding still reported" 1 (List.length guards);
  Alcotest.(check int) "but not failing" 0 (List.length (failing_guards u));
  match (List.hd guards).Finding.allowed with
  | Some reason ->
      Alcotest.(check string) "annotation reason carried"
        "fixture: single-domain by construction" reason
  | None -> Alcotest.fail "annotation reason lost"

let test_raw_lock_flagged () =
  let u = scan_fixture raw_lock_fixture in
  let fails = failing_guards u in
  (* Mutex.lock, Mutex.unlock, and the := between them *)
  Alcotest.(check bool) "raw lock primitives flagged" true
    (List.exists
       (fun f ->
         let is_infix ~affix s =
           let n = String.length affix and m = String.length s in
           let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
           go 0
         in
         is_infix ~affix:"not exception-safe" f.Finding.message)
       fails)

let test_locals_not_flagged () =
  let u = scan_fixture local_fixture in
  Alcotest.(check int) "let-bound locals are free to mutate" 0
    (List.length (guard_findings u))

(* ---------------- allowlist tests ---------------- *)

let test_allow_matching () =
  let allow =
    Allow.of_string
      "# comment\n\
       Tango_obs.Trace trace state is domain-local\n\
       lib/xxl/ query-local operator state\n"
  in
  Alcotest.(check (option string)) "segment prefix matches"
    (Some "trace state is domain-local")
    (Allow.find allow ~file:"lib/obs/tango_obs.ml" ~id:"Tango_obs.Trace.push");
  Alcotest.(check (option string)) "segment prefix does not match Tracer"
    None
    (Allow.find allow ~file:"lib/obs/tango_obs.ml" ~id:"Tango_obs.Tracer.push");
  Alcotest.(check (option string)) "path prefix matches"
    (Some "query-local operator state")
    (Allow.find allow ~file:"lib/xxl/sort.ml" ~id:"Tango_xxl.Sort.sort");
  Alcotest.(check (option string)) "path prefix bounded"
    None
    (Allow.find allow ~file:"lib/rel/value.ml" ~id:"Tango_rel.Value.coerce")

let test_allow_unused () =
  let allow = Allow.of_string "Tango_a.B reason one\nTango_c.D reason two\n" in
  ignore (Allow.find allow ~file:"f.ml" ~id:"Tango_a.B.x");
  Alcotest.(check (list string)) "unmatched entries reported" [ "Tango_c.D" ]
    (Allow.unused allow)

let () =
  Alcotest.run "tango_lint"
    [
      ( "scanner",
        [
          Alcotest.test_case "seeded race is flagged" `Quick
            test_flags_seeded_race;
          Alcotest.test_case "state inventory" `Quick test_state_inventory;
          Alcotest.test_case "Mutex.protect dominates" `Quick
            test_guarded_is_clean;
          Alcotest.test_case "[@tango.unguarded] allows" `Quick
            test_annotation_allows;
          Alcotest.test_case "raw lock/unlock flagged" `Quick
            test_raw_lock_flagged;
          Alcotest.test_case "locals are not shared state" `Quick
            test_locals_not_flagged;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "pattern matching" `Quick test_allow_matching;
          Alcotest.test_case "unused entries" `Quick test_allow_unused;
        ] );
    ]
