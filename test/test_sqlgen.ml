(* Tests for the Translator-To-SQL: every translatable operator is compiled
   to SQL, executed by the DBMS, and compared against the reference
   semantics of the algebra. *)

open Tango_rel
open Tango_sql
open Tango_algebra
open Tango_dbms

let pos_schema =
  Schema.make
    [ ("PosID", Value.TInt); ("EmpName", Value.TStr);
      ("PayRate", Value.TFloat); ("T1", Value.TDate); ("T2", Value.TDate) ]

let position =
  Relation.of_list pos_schema
    (List.map
       (fun (p, n, pay, a, b) ->
         Tuple.of_list
           [ Value.Int p; Value.Str n; Value.Float pay; Value.Date a; Value.Date b ])
       [ (1, "Tom", 12.0, 2, 20); (1, "Jane", 9.0, 5, 25); (2, "Tom", 15.0, 5, 10);
         (2, "Ann", 11.0, 8, 30); (3, "Bob", 20.0, 1, 4) ])

let make_db () =
  let db = Database.create () in
  Database.load_relation db "POSITION" position;
  db

let lookup = function
  | "POSITION" -> position
  | t -> failwith ("no table " ^ t)

(* Translate a DBMS-resident op, run the SQL, compare against reference.
   The SQL result's column names are sanitized, so compare positionally. *)
let check_op ?(ordered = false) name (op : Op.t) =
  let db = make_db () in
  let sql = Tango_sqlgen.Translate.translate op in
  let got = Database.query_ast db sql in
  let want = Reference.eval lookup op in
  let got = Relation.make (Relation.schema want) (Relation.tuples got) in
  Alcotest.(check bool)
    (name ^ ": " ^ Printer.query_to_sql sql)
    true
    (if ordered then Relation.equal_list want got
     else Relation.equal_multiset want got)

let col ?q c = Ast.Col (q, c)
let scan ?alias () = Op.scan ?alias "POSITION" pos_schema

let test_scan () = check_op "scan" (scan ())

let test_select () =
  check_op "select"
    (Op.select (Ast.Binop (Ast.Gt, col "PayRate", Ast.Lit (Value.Float 10.0))) (scan ()))

let test_project () =
  check_op "project"
    (Op.project
       [ (col "PosID", "P"); (Ast.Binop (Ast.Mul, col "PayRate", Ast.Lit (Value.Int 2)), "Double") ]
       (scan ()))

let test_sort () =
  check_op ~ordered:true "sort"
    (Op.sort [ Order.asc "PosID"; Order.desc "T1" ] (scan ()))

let test_join () =
  check_op "join"
    (Op.join
       (Ast.Binop (Ast.Eq, col ~q:"A" "PosID", col ~q:"B" "PosID"))
       (scan ~alias:"A" ()) (scan ~alias:"B" ()))

let test_product () =
  check_op "product" (Op.Product { left = scan ~alias:"A" (); right = scan ~alias:"B" () })

let test_temporal_join () =
  check_op "temporal join"
    (Op.temporal_join
       (Ast.Binop (Ast.Eq, col ~q:"A" "PosID", col ~q:"B" "PosID"))
       (scan ~alias:"A" ()) (scan ~alias:"B" ()))

let test_taggr_count () =
  check_op ~ordered:true "taggr count"
    (Op.temporal_aggregate [ "POSITION.PosID" ] [ Op.count_star "CNT" ] (scan ()))

let test_taggr_multi_agg () =
  check_op ~ordered:true "taggr sum/min/max"
    (Op.temporal_aggregate [ "POSITION.PosID" ]
       [ Op.count_star "CNT"; Op.agg Ast.Sum "PayRate" "S";
         Op.agg Ast.Min "PayRate" "MN"; Op.agg Ast.Max "PayRate" "MX" ]
       (scan ()))

let test_taggr_no_group () =
  check_op ~ordered:true "taggr global"
    (Op.temporal_aggregate [] [ Op.count_star "CNT" ] (scan ()))

let test_dup_elim () =
  check_op "dup elim"
    (Op.Dup_elim (Op.project [ (col "PosID", "P") ] (scan ())))

let test_composed () =
  (* selection over temporal join over selections — a Query-2-like DB part *)
  check_op "composed"
    (Op.sort [ Order.asc "T1" ]
       (Op.select
          (Ast.Binop (Ast.Gt, col "T1", Ast.Lit (Value.Date 3)))
          (Op.temporal_join
             (Ast.Binop (Ast.Eq, col ~q:"A" "PosID", col ~q:"B" "PosID"))
             (Op.select
                (Ast.Binop (Ast.Gt, col "PayRate", Ast.Lit (Value.Float 10.0)))
                (scan ~alias:"A" ()))
             (scan ~alias:"B" ()))))

let test_untranslatable () =
  let fails op =
    match Tango_sqlgen.Translate.translate op with
    | exception Tango_sqlgen.Translate.Untranslatable _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "coalesce" true (fails (Op.Coalesce (scan ())));
  Alcotest.(check bool) "difference" true
    (fails (Op.Difference { left = scan (); right = scan () }));
  Alcotest.(check bool) "embedded T^M" true (fails (Op.to_mw (scan ())))

let test_to_db_leaf () =
  (* A To_db boundary becomes a reference to its temp table. *)
  let db = make_db () in
  (* materialize the would-be middleware result by hand *)
  let mw_result =
    Reference.eval lookup
      (Op.temporal_aggregate [ "POSITION.PosID" ] [ Op.count_star "CNT" ] (scan ()))
  in
  let sanitized = Tango_sqlgen.Translate.temp_table_schema (Relation.schema mw_result) in
  Database.load_relation db "TMP7"
    (Relation.make sanitized (Relation.tuples mw_result));
  let op =
    Op.sort [ Order.asc "CNT" ]
      (Op.to_db
         (Op.temporal_aggregate [ "POSITION.PosID" ] [ Op.count_star "CNT" ]
            (Op.to_mw (scan ()))))
  in
  let sql = Tango_sqlgen.Translate.translate ~temp_name:(fun _ -> "TMP7") op in
  let got = Database.query_ast db sql in
  Alcotest.(check int) "rows through temp table"
    (Relation.cardinality mw_result) (Relation.cardinality got)

let test_scan_inlined_in_join () =
  (* scans appear as base tables in FROM (view merging), enabling the
     DBMS's index access paths *)
  let op =
    Op.join
      (Ast.Binop (Ast.Eq, col ~q:"A" "PosID", col ~q:"B" "PosID"))
      (scan ~alias:"A" ()) (scan ~alias:"B" ())
  in
  match Tango_sqlgen.Translate.translate op with
  | Ast.Select { from = [ Ast.Table ("POSITION", Some "A");
                          Ast.Table ("POSITION", Some "B") ]; _ } -> ()
  | q ->
      Alcotest.fail
        ("expected inlined base tables, got " ^ Printer.query_to_sql q)

let test_selection_merged_into_where () =
  (* σ over a scan becomes WHERE on the base table, not a derived table *)
  let op =
    Op.temporal_join
      (Ast.Binop (Ast.Eq, col ~q:"A" "PosID", col ~q:"B" "PosID"))
      (Op.select
         (Ast.Binop (Ast.Gt, col "PayRate", Ast.Lit (Value.Float 10.0)))
         (scan ~alias:"A" ()))
      (scan ~alias:"B" ())
  in
  match Tango_sqlgen.Translate.translate op with
  | Ast.Select { from; where = Some w; _ } ->
      Alcotest.(check bool) "both sides are base tables" true
        (List.for_all (function Ast.Table _ -> true | _ -> false) from);
      Alcotest.(check bool) "payrate predicate in WHERE" true
        (let rec mentions = function
           | Ast.Col (_, "PayRate") -> true
           | Ast.Binop (_, a, b) -> mentions a || mentions b
           | Ast.Greatest es | Ast.Least es -> List.exists mentions es
           | _ -> false
         in
         mentions w)
  | q -> Alcotest.fail ("unexpected shape: " ^ Printer.query_to_sql q)

let test_sql_name () =
  Alcotest.(check string) "dots" "A__PosID" (Tango_sqlgen.Translate.sql_name "A.PosID");
  Alcotest.(check string) "plain" "PosID" (Tango_sqlgen.Translate.sql_name "PosID")

(* property: random select/project/sort pipelines agree with reference *)
let pipeline_gen =
  QCheck.Gen.(
    let pred_g =
      oneof
        [
          return (Ast.Binop (Ast.Gt, col "PayRate", Ast.Lit (Value.Float 10.0)));
          return (Ast.Binop (Ast.Lt, col "T1", Ast.Lit (Value.Date 6)));
          return (Ast.Binop (Ast.Eq, col "PosID", Ast.Lit (Value.Int 1)));
        ]
    in
    let step_g =
      oneof
        [
          map (fun p op -> Op.select p op) pred_g;
          return (fun op -> Op.sort [ Order.asc "T1" ] op);
          return (fun op -> Op.project [ (col "PosID", "PosID"); (col "T1", "T1") ] op);
        ]
    in
    map
      (fun steps ->
        List.fold_left
          (fun op step ->
            match op with
            | Op.Project _ -> op (* projection may drop needed attrs; stop *)
            | _ -> step op)
          (scan ()) steps)
      (list_size (int_range 1 4) step_g))

(* ---------- round-trip: emitted SQL re-parses and re-prints fixed ---------- *)

(* Every SQL string the translator emits must be within the subset our own
   parser accepts, and pretty-printing must be a fixed point of
   parse-then-print — otherwise the middleware could ship SQL it cannot
   itself reason about. *)
let roundtrip_query name (q : Ast.query) =
  let sql = Printer.query_to_sql q in
  let reparsed =
    try Parser.query sql
    with e ->
      Alcotest.failf "%s: emitted SQL does not re-parse (%s):\n  %s" name
        (Printexc.to_string e) sql
  in
  Alcotest.(check string)
    (name ^ ": parse-then-print fixed point")
    sql
    (Printer.query_to_sql reparsed)

let test_roundtrip_operators () =
  List.iter
    (fun (name, op) ->
      roundtrip_query name (Tango_sqlgen.Translate.translate op))
    [
      ("scan", scan ());
      ( "select",
        Op.select
          (Ast.Binop (Ast.Gt, col "PayRate", Ast.Lit (Value.Float 10.0)))
          (scan ()) );
      ( "project",
        Op.project
          [ (col "PosID", "P");
            (Ast.Binop (Ast.Mul, col "PayRate", Ast.Lit (Value.Int 2)), "D") ]
          (scan ()) );
      ("sort", Op.sort [ Order.asc "PosID"; Order.desc "T1" ] (scan ()));
      ( "temporal join",
        Op.temporal_join
          (Ast.Binop (Ast.Eq, col ~q:"A" "PosID", col ~q:"B" "PosID"))
          (scan ~alias:"A" ()) (scan ~alias:"B" ()) );
      ( "taggr",
        Op.temporal_aggregate [ "POSITION.PosID" ]
          [ Op.count_star "CNT"; Op.agg Ast.Max "PayRate" "MX" ]
          (scan ()) );
    ]

(* The same property over the real pipeline: optimize every workload query
   and round-trip each TRANSFER^M statement the chosen plan ships to the
   DBMS. *)
let test_roundtrip_workload () =
  let db = Database.create () in
  Tango_workload.Uis.load ~scale:0.002 db;
  let mw = Tango_core.Middleware.connect ~roundtrip_spin:0 db in
  let transfers = ref 0 in
  List.iter
    (fun (name, sql) ->
      let report = Tango_core.Middleware.query mw sql in
      Tango_core.Exec_plan.iter
        (fun n ->
          match n.Tango_core.Exec_plan.kind with
          | Tango_core.Exec_plan.Transfer_m { sql = q; _ } ->
              incr transfers;
              roundtrip_query name q
          | _ -> ())
        report.Tango_core.Middleware.exec)
    Tango_workload.Queries.workload;
  Alcotest.(check bool) "workload plans contain transfers" true (!transfers > 0)

let prop_pipeline =
  QCheck.Test.make ~name:"random pipelines translate correctly" ~count:60
    (QCheck.make pipeline_gen) (fun op ->
      let db = make_db () in
      let sql = Tango_sqlgen.Translate.translate op in
      let got = Database.query_ast db sql in
      let want = Reference.eval lookup op in
      Relation.equal_multiset want
        (Relation.make (Relation.schema want) (Relation.tuples got)))

let () =
  Alcotest.run "tango_sqlgen"
    [
      ( "operators",
        [
          Alcotest.test_case "scan" `Quick test_scan;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "sort" `Quick test_sort;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "temporal join" `Quick test_temporal_join;
          Alcotest.test_case "taggr count" `Quick test_taggr_count;
          Alcotest.test_case "taggr multi-agg" `Quick test_taggr_multi_agg;
          Alcotest.test_case "taggr global" `Quick test_taggr_no_group;
          Alcotest.test_case "dup elim" `Quick test_dup_elim;
          Alcotest.test_case "composed" `Quick test_composed;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "untranslatable ops" `Quick test_untranslatable;
          Alcotest.test_case "T^D leaf" `Quick test_to_db_leaf;
          Alcotest.test_case "scans inlined" `Quick test_scan_inlined_in_join;
          Alcotest.test_case "selection merged" `Quick test_selection_merged_into_where;
          Alcotest.test_case "name sanitizing" `Quick test_sql_name;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "operators" `Quick test_roundtrip_operators;
          Alcotest.test_case "workload transfers" `Quick test_roundtrip_workload;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_pipeline ]);
    ]
