(* Sharded multi-backend execution: 1-vs-N differential over the workload
   queries, partition pruning, per-backend counter agreement, plan-cache
   invalidation on topology changes, and a QCheck property over random
   time-range partition bounds. *)

open Tango_rel
open Tango_sql
open Tango_algebra
open Tango_core
open Tango_workload
open Tango_dbms

let scale = 0.005

let single () =
  let db = Database.create () in
  Uis.load ~scale db;
  Middleware.connect ~roundtrip_spin:0 db

let sharded n =
  let topo =
    Uis.load_sharded ~scale ~roundtrip_spins:(List.init n (fun _ -> 0))
      ~shards:n ()
  in
  Middleware.connect_topology topo

let sorted_by result attr =
  let col = Relation.column result attr in
  let ok = ref true in
  Array.iteri
    (fun i v -> if i > 0 && Value.compare col.(i - 1) v > 0 then ok := false)
    col;
  !ok

(* ---- 1 vs N differential over the four workload queries ---- *)

let test_differential_workload () =
  let mw1 = single () in
  List.iter
    (fun shards ->
      let mwn = sharded shards in
      List.iter
        (fun (name, sql) ->
          let r1 = (Middleware.query mw1 sql).Middleware.result in
          let rn = (Middleware.query mwn sql).Middleware.result in
          Alcotest.(check bool)
            (Printf.sprintf "%s nonempty (1 backend)" name)
            true
            (Relation.cardinality r1 > 0);
          Alcotest.(check bool)
            (Printf.sprintf "%s: %d shards = 1 backend" name shards)
            true
            (Relation.equal_multiset r1 rn);
          Alcotest.(check bool)
            (Printf.sprintf "%s: %d-shard result sorted" name shards)
            true (sorted_by rn "PosID"))
        Queries.workload;
      Topology.close (Middleware.topology mwn))
    [ 2; 3 ]

(* ---- the optimizer actually scatters, and verification passes ---- *)

let has_scatter (p : Tango_volcano.Physical.plan) =
  let found = ref false in
  let rec walk (p : Tango_volcano.Physical.plan) =
    if p.Tango_volcano.Physical.algorithm = Tango_volcano.Physical.Scatter_gather_m
    then found := true;
    List.iter walk p.Tango_volcano.Physical.children
  in
  walk p;
  !found

let test_scatter_plan_verifies () =
  let mwn = sharded 3 in
  Middleware.set_config mwn
    Middleware.Config.(
      with_verify_plans Verify_final (Middleware.config mwn));
  List.iter
    (fun (name, sql) ->
      let report = Middleware.query mwn sql in
      Alcotest.(check bool)
        (name ^ " uses a scatter")
        true
        (has_scatter report.Middleware.physical);
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "%s verify clean: %s" name
               (Tango_verify.Diag.to_string d))
            false
            (Tango_verify.Diag.is_error d))
        report.Middleware.diagnostics)
    Queries.workload;
  Topology.close (Middleware.topology mwn)

(* ---- partition pruning from period predicates ---- *)

let early_filter_plan =
  (* the UIS skew puts ~65 % of periods at 1995+, so restricting to the
     early years excludes the later quantile shards *)
  Op.to_mw
    (Op.sort
       [ Order.asc "PosID" ]
       (Op.select
          (Ast.Binop
             ( Ast.Lt,
               Ast.Col (None, "T1"),
               Ast.Lit (Value.Date (Tango_temporal.Chronon.of_ymd ~y:1985 ~m:1 ~d:1)) ))
          (Op.scan "POSITION" Uis.position_schema)))

let scatter_shards (p : Tango_volcano.Physical.plan) =
  let acc = ref [] in
  let rec walk (p : Tango_volcano.Physical.plan) =
    if p.Tango_volcano.Physical.algorithm = Tango_volcano.Physical.Scatter_gather_m
    then acc := p.Tango_volcano.Physical.shards :: !acc;
    List.iter walk p.Tango_volcano.Physical.children
  in
  walk p;
  !acc

let test_pruning_reduces_shards_and_shipping () =
  let mw1 = single () in
  let mwn = sharded 3 in
  let backends = Topology.backends (Middleware.topology mwn) in
  List.iter Backend.reset_meters backends;
  let r1 =
    (Middleware.run_fixed mw1 ~required_order:[ Order.asc "PosID" ]
       early_filter_plan)
      .Middleware.result
  in
  let report =
    Middleware.run_fixed mwn ~required_order:[ Order.asc "PosID" ]
      early_filter_plan
  in
  Alcotest.(check bool) "nonempty" true (Relation.cardinality r1 > 0);
  Alcotest.(check bool)
    "same rows" true
    (Relation.equal_multiset r1 report.Middleware.result);
  (match scatter_shards report.Middleware.physical with
  | [ shards ] ->
      Alcotest.(check bool)
        (Printf.sprintf "pruned to %d of 3 shards" (List.length shards))
        true
        (List.length shards < 3 && List.length shards >= 1)
  | other ->
      Alcotest.failf "expected one scatter, found %d" (List.length other));
  (* the shards outside the period shipped nothing *)
  let active =
    match scatter_shards report.Middleware.physical with
    | [ shards ] -> shards
    | _ -> []
  in
  List.iter
    (fun b ->
      if not (List.mem (Backend.name b) active) then
        Alcotest.(check int)
          (Backend.name b ^ " shipped nothing")
          0
          (Backend.tuples_shipped b))
    backends;
  Topology.close (Middleware.topology mwn)

(* ---- counter agreement: sum of per-backend tuples = single total ---- *)

let full_scan_plan =
  Op.to_mw
    (Op.sort [ Order.asc "PosID" ] (Op.scan "POSITION" Uis.position_schema))

let test_counter_agreement () =
  let mw1 = single () in
  let mwn = sharded 3 in
  let b1 = Middleware.primary mw1 in
  let backends = Topology.backends (Middleware.topology mwn) in
  Backend.reset_meters b1;
  List.iter Backend.reset_meters backends;
  let r1 =
    (Middleware.run_fixed mw1 ~required_order:[ Order.asc "PosID" ]
       full_scan_plan)
      .Middleware.result
  in
  let rn =
    (Middleware.run_fixed mwn ~required_order:[ Order.asc "PosID" ]
       full_scan_plan)
      .Middleware.result
  in
  Alcotest.(check bool) "same rows" true (Relation.equal_multiset r1 rn);
  let total_n =
    List.fold_left (fun acc b -> acc + Backend.tuples_shipped b) 0 backends
  in
  Alcotest.(check int)
    "sum of per-shard tuples_shipped = single-backend total"
    (Backend.tuples_shipped b1) total_n;
  Alcotest.(check bool)
    "every shard shipped something" true
    (List.for_all (fun b -> Backend.tuples_shipped b > 0) backends);
  Topology.close (Middleware.topology mwn)

(* ---- plan cache keys on the topology generation ---- *)

let test_cache_invalidation_on_topology_change () =
  let mwn = sharded 2 in
  Middleware.set_config mwn
    Middleware.Config.(with_plan_cache true (Middleware.config mwn));
  let sql = List.assoc "q1" Queries.workload in
  let hit r =
    match r.Middleware.cache with
    | Some c -> c.Middleware.cache_hit
    | None -> Alcotest.fail "cache report missing"
  in
  Alcotest.(check bool) "first is a miss" false (hit (Middleware.query mwn sql));
  Alcotest.(check bool) "second is a hit" true (hit (Middleware.query mwn sql));
  Topology.bump_generation (Middleware.topology mwn);
  Alcotest.(check bool)
    "miss after topology change" false
    (hit (Middleware.query mwn sql));
  let stats = Middleware.plan_cache_stats mwn in
  Alcotest.(check bool)
    "invalidation recorded" true
    (stats.Tango_cache.Plan_cache.invalidations > 0);
  Topology.close (Middleware.topology mwn)

(* ---- property: random partition bounds never change results ---- *)

let r_schema =
  Schema.make
    [
      ("K", Value.TInt); ("V", Value.TInt);
      ("T1", Value.TDate); ("T2", Value.TDate);
    ]

let rel_of rows =
  Relation.of_list r_schema
    (List.map
       (fun (k, t1) ->
         Tuple.of_list
           [ Value.Int k; Value.Int (k * 7); Value.Date t1;
             Value.Date (t1 + 1 + (k mod 5)) ])
       rows)

let topo_of rows cuts =
  let cuts = List.sort_uniq compare cuts in
  let bounds =
    (* contiguous [lo, hi) slices from the cut points *)
    let rec mk lo = function
      | [] -> [ { Topology.lo; hi = None } ]
      | c :: rest -> { Topology.lo; hi = Some c } :: mk (Some c) rest
    in
    mk None cuts
  in
  let in_bounds (b : Topology.bounds) t1 =
    (match b.Topology.lo with None -> true | Some lo -> t1 >= lo)
    && match b.Topology.hi with None -> true | Some hi -> t1 < hi
  in
  Topology.create ~partitioned:("R", "T1")
    (List.mapi
       (fun i b ->
         let db = Database.create () in
         Database.load_relation db "R"
           (rel_of (List.filter (fun (_, t1) -> in_bounds b t1) rows));
         Database.analyze_all db ();
         (Backend.in_process ~name:(Printf.sprintf "s%d" i) ~roundtrip_spin:0 db, b))
       bounds)

let prop_random_bounds =
  QCheck.Test.make ~name:"random partition bounds preserve results" ~count:30
    QCheck.(
      triple
        (list_of_size (Gen.int_range 0 80)
           (pair (int_range 0 50) (int_range 0 100)))
        (list_of_size (Gen.int_range 0 3) (int_range 1 99))
        (int_range 0 100))
    (fun (rows, cuts, sel) ->
      let db1 = Database.create () in
      Database.load_relation db1 "R" (rel_of rows);
      Database.analyze_all db1 ();
      let mw1 = Middleware.connect ~roundtrip_spin:0 db1 in
      let topo = topo_of rows cuts in
      let mwn = Middleware.connect_topology topo in
      let order = [ Order.asc "T1"; Order.asc "K" ] in
      let plan pred_opt =
        let src = Op.scan "R" r_schema in
        let src =
          match pred_opt with
          | None -> src
          | Some c ->
              Op.select
                (Ast.Binop (Ast.Lt, Ast.Col (None, "T1"), Ast.Lit (Value.Date c)))
                src
        in
        Op.to_mw (Op.sort order src)
      in
      let run mw p =
        (Middleware.run_fixed mw ~required_order:order p).Middleware.result
      in
      let agree p = Relation.equal_multiset (run mw1 p) (run mwn p) in
      let ok = agree (plan None) && agree (plan (Some sel)) in
      Topology.close topo;
      ok)

let () =
  Alcotest.run "tango_sharding"
    [
      ( "differential",
        [
          Alcotest.test_case "workload queries, 1 vs N" `Slow
            test_differential_workload;
          Alcotest.test_case "scatter plans verify" `Quick
            test_scatter_plan_verifies;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "period predicate prunes shards" `Quick
            test_pruning_reduces_shards_and_shipping;
        ] );
      ( "counters",
        [ Alcotest.test_case "per-backend sums agree" `Quick test_counter_agreement ] );
      ( "cache",
        [
          Alcotest.test_case "topology generation invalidates" `Quick
            test_cache_invalidation_on_topology_change;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_random_bounds ] );
    ]
