(* Plan-cache tests: the Plan_cache LRU structure itself, and its
   integration into the middleware pipeline — hits on identical
   resubmission, misses on literal changes, and invalidation on ANALYZE,
   DDL and cost-factor changes. *)

open Tango_rel
open Tango_core
open Tango_workload
open Tango_cache

(* ---- the cache structure ---- *)

let test_normalize () =
  Alcotest.(check string) "whitespace collapsed" "SELECT A FROM T"
    (Plan_cache.normalize_sql "  SELECT\n  A\tFROM   T ");
  Alcotest.(check string) "literals preserved" "SELECT 'a  b' FROM T"
    (Plan_cache.normalize_sql "SELECT 'a  b' FROM T")

let test_key_literal_sensitive () =
  let k v = Plan_cache.key_of_sql ("SELECT A FROM T WHERE A < " ^ v) in
  Alcotest.(check string) "same text, same key" (k "7") (k "7");
  Alcotest.(check bool) "literal change, different key" false (k "7" = k "8");
  Alcotest.(check string) "whitespace-insensitive"
    (Plan_cache.key_of_sql "SELECT A\n FROM  T")
    (Plan_cache.key_of_sql " SELECT A FROM T")

let test_find_add () =
  let c = Plan_cache.create ~capacity:4 () in
  Alcotest.(check (option int)) "empty" None (Plan_cache.find c ~sql:"Q1");
  Plan_cache.add c ~sql:"Q1" 1;
  Alcotest.(check (option int)) "hit" (Some 1) (Plan_cache.find c ~sql:"Q1");
  Alcotest.(check (option int)) "whitespace variant hits" (Some 1)
    (Plan_cache.find c ~sql:"  Q1\n");
  Plan_cache.add c ~sql:"Q1" 2;
  Alcotest.(check (option int)) "replaced" (Some 2) (Plan_cache.find c ~sql:"Q1");
  Alcotest.(check int) "one entry" 1 (Plan_cache.length c);
  let s = Plan_cache.stats c in
  Alcotest.(check int) "hits" 3 s.Plan_cache.hits;
  Alcotest.(check int) "misses" 1 s.Plan_cache.misses

let test_lru_eviction () =
  let c = Plan_cache.create ~capacity:2 () in
  Plan_cache.add c ~sql:"Q1" 1;
  Plan_cache.add c ~sql:"Q2" 2;
  (* touch Q1 so Q2 is the least recently used *)
  ignore (Plan_cache.find c ~sql:"Q1");
  Plan_cache.add c ~sql:"Q3" 3;
  Alcotest.(check int) "at capacity" 2 (Plan_cache.length c);
  Alcotest.(check (option int)) "LRU evicted" None (Plan_cache.find c ~sql:"Q2");
  Alcotest.(check (option int)) "recently used kept" (Some 1)
    (Plan_cache.find c ~sql:"Q1");
  Alcotest.(check (option int)) "newest kept" (Some 3) (Plan_cache.find c ~sql:"Q3");
  Alcotest.(check int) "one eviction" 1 (Plan_cache.stats c).Plan_cache.evictions

let test_invalidate_all () =
  let c = Plan_cache.create () in
  Plan_cache.add c ~sql:"Q1" 1;
  Plan_cache.add c ~sql:"Q2" 2;
  Plan_cache.invalidate_all ~reason:"analyze" c;
  Alcotest.(check int) "flushed" 0 (Plan_cache.length c);
  Alcotest.(check (option int)) "gone" None (Plan_cache.find c ~sql:"Q1");
  let s = Plan_cache.stats c in
  Alcotest.(check int) "one invalidation" 1 s.Plan_cache.invalidations;
  Alcotest.(check (option string)) "reason recorded" (Some "analyze")
    s.Plan_cache.last_invalidation

(* ---- middleware integration ---- *)

let setup () =
  let db = Tango_dbms.Database.create () in
  Uis.load ~scale:0.005 db;
  let config =
    Middleware.Config.(
      default |> with_roundtrip_spin 0 |> with_plan_cache true)
  in
  let mw = Middleware.connect ~config db in
  (db, mw)

let cache_hit (r : Middleware.report) =
  match r.Middleware.cache with
  | Some c -> c.Middleware.cache_hit
  | None -> Alcotest.fail "no cache report on a plan_cache session"

let test_hit_on_resubmission () =
  let _db, mw = setup () in
  let r1 = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "first submission misses" false (cache_hit r1);
  let r2 = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "resubmission hits" true (cache_hit r2);
  Alcotest.(check bool) "hit skips optimize" true
    (r2.Middleware.optimize_us = 0.0 && r2.Middleware.optimize_us < r1.Middleware.optimize_us);
  Alcotest.(check bool) "identical result" true
    (Relation.equal_list r1.Middleware.result r2.Middleware.result);
  let s = Middleware.plan_cache_stats mw in
  Alcotest.(check int) "one hit" 1 s.Plan_cache.hits

let test_miss_on_literal_change () =
  let _db, mw = setup () in
  ignore (Middleware.query mw (Queries.q2_sql ~period_end:"1996-01-01"));
  let r = Middleware.query mw (Queries.q2_sql ~period_end:"1997-01-01") in
  Alcotest.(check bool) "changed literal misses" false (cache_hit r);
  let r2 = Middleware.query mw (Queries.q2_sql ~period_end:"1996-01-01") in
  Alcotest.(check bool) "original still cached" true (cache_hit r2)

let test_invalidation_on_analyze () =
  let db, mw = setup () in
  ignore (Middleware.query mw Queries.q1_sql);
  (* ANALYZE behind the middleware's back: detected via the schema
     generation at the next lookup *)
  ignore (Tango_dbms.Database.analyze db "POSITION");
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "post-ANALYZE submission misses" false (cache_hit r);
  Alcotest.(check bool) "cache was flushed" true
    ((Middleware.plan_cache_stats mw).Plan_cache.invalidations > 0);
  (* and the re-planned entry serves hits again *)
  Alcotest.(check bool) "re-cached" true (cache_hit (Middleware.query mw Queries.q1_sql))

let test_invalidation_on_ddl () =
  let db, mw = setup () in
  ignore (Middleware.query mw Queries.q1_sql);
  Tango_dbms.Database.create_table db "NEWTBL"
    (Schema.make [ ("A", Value.TInt) ]);
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "post-DDL submission misses" false (cache_hit r)

let test_invalidation_on_factor_change () =
  let _db, mw = setup () in
  ignore (Middleware.query mw Queries.q1_sql);
  let inv0 = (Middleware.plan_cache_stats mw).Plan_cache.invalidations in
  (* adopting new cost factors re-ranks every cached plan *)
  Middleware.adopt_factors mw (Tango_cost.Factors.default ());
  Alcotest.(check bool) "factor adoption invalidates" true
    ((Middleware.plan_cache_stats mw).Plan_cache.invalidations > inv0);
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "post-adoption submission misses" false (cache_hit r)

let test_invalidation_on_stats_refresh () =
  let _db, mw = setup () in
  ignore (Middleware.query mw Queries.q1_sql);
  Middleware.refresh_statistics mw;
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "post-refresh submission misses" false (cache_hit r)

let test_session_capacity_eviction () =
  let _db, mw = setup () in
  Middleware.set_config mw
    (Middleware.Config.with_plan_cache ~capacity:2 true (Middleware.config mw));
  ignore (Middleware.query mw Queries.q1_sql);
  ignore (Middleware.query mw (Queries.q2_sql ~period_end:"1996-01-01"));
  ignore (Middleware.query mw (Queries.q3_sql ~start_bound:"1996-01-01"));
  (* q1 was the least recently used of the three *)
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "evicted at capacity" false (cache_hit r);
  Alcotest.(check bool) "evictions counted" true
    ((Middleware.plan_cache_stats mw).Plan_cache.evictions > 0)

let test_disabled_cache_reports_nothing () =
  let db = Tango_dbms.Database.create () in
  Uis.load ~scale:0.005 db;
  let mw = Middleware.connect ~roundtrip_spin:0 db in
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "no cache report when disabled" true
    (r.Middleware.cache = None);
  let r2 = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "still none on resubmission" true (r2.Middleware.cache = None)

let test_event_log_distinguishes_hits () =
  let _db, mw = setup () in
  let log = Tango_monitor.Event_log.create () in
  Middleware.set_query_observer mw (Some (Tango_monitor.Event_log.observe log));
  ignore (Middleware.query mw Queries.q1_sql);
  ignore (Middleware.query mw Queries.q1_sql);
  match Tango_monitor.Event_log.recent log with
  | [ hit; miss ] ->
      (* newest first *)
      Alcotest.(check bool) "miss recorded as such" false
        miss.Tango_monitor.Event_log.cache_hit;
      Alcotest.(check bool) "hit recorded as such" true
        hit.Tango_monitor.Event_log.cache_hit;
      Alcotest.(check bool) "miss has an optimize phase" true
        (miss.Tango_monitor.Event_log.optimize_us > 0.0);
      Alcotest.(check (float 0.0)) "hit skipped optimize" 0.0
        hit.Tango_monitor.Event_log.optimize_us
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs)

let () =
  Alcotest.run "tango_cache"
    [
      ( "structure",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "literal-sensitive keys" `Quick test_key_literal_sensitive;
          Alcotest.test_case "find/add" `Quick test_find_add;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "invalidate all" `Quick test_invalidate_all;
        ] );
      ( "middleware",
        [
          Alcotest.test_case "hit on resubmission" `Quick test_hit_on_resubmission;
          Alcotest.test_case "miss on literal change" `Quick test_miss_on_literal_change;
          Alcotest.test_case "invalidation on ANALYZE" `Quick test_invalidation_on_analyze;
          Alcotest.test_case "invalidation on DDL" `Quick test_invalidation_on_ddl;
          Alcotest.test_case "invalidation on factor change" `Quick
            test_invalidation_on_factor_change;
          Alcotest.test_case "invalidation on stats refresh" `Quick
            test_invalidation_on_stats_refresh;
          Alcotest.test_case "capacity eviction" `Quick test_session_capacity_eviction;
          Alcotest.test_case "disabled reports nothing" `Quick
            test_disabled_cache_reports_nothing;
          Alcotest.test_case "event log distinguishes hits" `Quick
            test_event_log_distinguishes_hits;
        ] );
    ]
