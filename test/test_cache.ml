(* Plan-cache tests: the Plan_cache LRU structure itself, and its
   integration into the middleware pipeline — hits on identical
   resubmission, misses on literal changes, and invalidation on ANALYZE,
   DDL and cost-factor changes. *)

open Tango_rel
open Tango_core
open Tango_workload
open Tango_cache

(* ---- the cache structure ---- *)

let test_normalize () =
  Alcotest.(check string) "whitespace collapsed" "SELECT A FROM T"
    (Plan_cache.normalize_sql "  SELECT\n  A\tFROM   T ");
  Alcotest.(check string) "literals preserved" "SELECT 'a  b' FROM T"
    (Plan_cache.normalize_sql "SELECT 'a  b' FROM T")

let test_key_literal_sensitive () =
  let k v = Plan_cache.key_of_sql ("SELECT A FROM T WHERE A < " ^ v) in
  Alcotest.(check string) "same text, same key" (k "7") (k "7");
  Alcotest.(check bool) "literal change, different key" false (k "7" = k "8");
  Alcotest.(check string) "whitespace-insensitive"
    (Plan_cache.key_of_sql "SELECT A\n FROM  T")
    (Plan_cache.key_of_sql " SELECT A FROM T")

(* Keyword case must not split cache entries; literal case must.  The
   normalizer folds case outside single-quoted strings only. *)
let test_keyword_case_insensitive () =
  Alcotest.(check string) "keywords folded, literal kept"
    "SELECT 'Ab' FROM T"
    (Plan_cache.normalize_sql "select 'Ab' from t");
  let c = Plan_cache.create () in
  Plan_cache.add c ~sql:"SELECT 'Ab' FROM T" 1;
  Alcotest.(check (option int)) "keyword-case variant hits" (Some 1)
    (Plan_cache.find c ~sql:"select 'Ab' from t");
  Alcotest.(check (option int)) "literal-case change misses" None
    (Plan_cache.find c ~sql:"select 'ab' from t")

let test_hit_kinds_and_replans () =
  let c = Plan_cache.create () in
  Plan_cache.add c ~sql:"SELECT A FROM T WHERE A < $1" 1;
  ignore
    (Plan_cache.find ~kind:Plan_cache.Template c
       ~sql:"SELECT A FROM T WHERE A < $1");
  ignore (Plan_cache.find c ~sql:"SELECT A FROM T WHERE A < $1");
  let s = Plan_cache.stats c in
  Alcotest.(check int) "template hit classified" 1 s.Plan_cache.template_hits;
  Alcotest.(check int) "exact hit classified" 1 s.Plan_cache.exact_hits;
  Alcotest.(check int) "total hits" 2 s.Plan_cache.hits;
  (* replans accumulate on the entry and survive value replacement (the
     guard re-adds the entry with an extended bucket table) *)
  Plan_cache.note_replan c ~sql:"SELECT A FROM T WHERE A < $1";
  Plan_cache.add c ~sql:"SELECT A FROM T WHERE A < $1" 2;
  Plan_cache.note_replan c ~sql:"SELECT A FROM T WHERE A < $1";
  let s = Plan_cache.stats c in
  Alcotest.(check int) "replans counted" 2 s.Plan_cache.replans;
  Alcotest.(check int) "entry high-water survives re-add" 2
    s.Plan_cache.max_replans;
  (* a note for an evicted/unknown statement is a no-op *)
  Plan_cache.note_replan c ~sql:"SELECT B FROM T";
  Alcotest.(check int) "unknown entry ignored" 2
    (Plan_cache.stats c).Plan_cache.replans

let test_find_add () =
  let c = Plan_cache.create ~capacity:4 () in
  Alcotest.(check (option int)) "empty" None (Plan_cache.find c ~sql:"Q1");
  Plan_cache.add c ~sql:"Q1" 1;
  Alcotest.(check (option int)) "hit" (Some 1) (Plan_cache.find c ~sql:"Q1");
  Alcotest.(check (option int)) "whitespace variant hits" (Some 1)
    (Plan_cache.find c ~sql:"  Q1\n");
  Plan_cache.add c ~sql:"Q1" 2;
  Alcotest.(check (option int)) "replaced" (Some 2) (Plan_cache.find c ~sql:"Q1");
  Alcotest.(check int) "one entry" 1 (Plan_cache.length c);
  let s = Plan_cache.stats c in
  Alcotest.(check int) "hits" 3 s.Plan_cache.hits;
  Alcotest.(check int) "misses" 1 s.Plan_cache.misses

let test_lru_eviction () =
  let c = Plan_cache.create ~capacity:2 () in
  Plan_cache.add c ~sql:"Q1" 1;
  Plan_cache.add c ~sql:"Q2" 2;
  (* touch Q1 so Q2 is the least recently used *)
  ignore (Plan_cache.find c ~sql:"Q1");
  Plan_cache.add c ~sql:"Q3" 3;
  Alcotest.(check int) "at capacity" 2 (Plan_cache.length c);
  Alcotest.(check (option int)) "LRU evicted" None (Plan_cache.find c ~sql:"Q2");
  Alcotest.(check (option int)) "recently used kept" (Some 1)
    (Plan_cache.find c ~sql:"Q1");
  Alcotest.(check (option int)) "newest kept" (Some 3) (Plan_cache.find c ~sql:"Q3");
  Alcotest.(check int) "one eviction" 1 (Plan_cache.stats c).Plan_cache.evictions

let test_invalidate_all () =
  let c = Plan_cache.create () in
  Plan_cache.add c ~sql:"Q1" 1;
  Plan_cache.add c ~sql:"Q2" 2;
  Plan_cache.invalidate_all ~reason:"analyze" c;
  Alcotest.(check int) "flushed" 0 (Plan_cache.length c);
  Alcotest.(check (option int)) "gone" None (Plan_cache.find c ~sql:"Q1");
  let s = Plan_cache.stats c in
  Alcotest.(check int) "one invalidation" 1 s.Plan_cache.invalidations;
  Alcotest.(check (option string)) "reason recorded" (Some "analyze")
    s.Plan_cache.last_invalidation

(* ---- middleware integration ---- *)

let setup () =
  let db = Tango_dbms.Database.create () in
  Uis.load ~scale:0.005 db;
  let config =
    Middleware.Config.(
      default |> with_roundtrip_spin 0 |> with_plan_cache true)
  in
  let mw = Middleware.connect ~config db in
  (db, mw)

let cache_hit (r : Middleware.report) =
  match r.Middleware.cache with
  | Some c -> c.Middleware.cache_hit
  | None -> Alcotest.fail "no cache report on a plan_cache session"

let test_hit_on_resubmission () =
  let _db, mw = setup () in
  let r1 = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "first submission misses" false (cache_hit r1);
  let r2 = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "resubmission hits" true (cache_hit r2);
  Alcotest.(check bool) "hit skips optimize" true
    (r2.Middleware.optimize_us = 0.0 && r2.Middleware.optimize_us < r1.Middleware.optimize_us);
  Alcotest.(check bool) "identical result" true
    (Relation.equal_list r1.Middleware.result r2.Middleware.result);
  let s = Middleware.plan_cache_stats mw in
  Alcotest.(check int) "one hit" 1 s.Plan_cache.hits

let cache_class (r : Middleware.report) =
  match r.Middleware.cache with
  | Some c -> c.Middleware.cache_class
  | None -> Alcotest.fail "no cache report on a plan_cache session"

(* With auto-parameterization (the default) a literal change no longer
   misses: both spellings normalize to one template, and the second
   submission instantiates the cached generic plan under the new
   binding.  The old literal-keyed behavior is still reachable with
   [with_auto_parameterize false]. *)
let test_template_hit_on_literal_change () =
  let _db, mw = setup () in
  let r1 = Middleware.query mw (Queries.q2_sql ~period_end:"1996-01-01") in
  Alcotest.(check string) "first submission misses" "miss" (cache_class r1);
  let r2 = Middleware.query mw (Queries.q2_sql ~period_end:"1997-01-01") in
  Alcotest.(check string) "changed literal template-hits" "template-hit"
    (cache_class r2);
  Alcotest.(check bool) "template hit skips optimize" true
    (r2.Middleware.optimize_us = 0.0);
  let s = Middleware.plan_cache_stats mw in
  Alcotest.(check int) "classified as template hit" 1 s.Plan_cache.template_hits;
  (* the instantiated plan must answer the new binding, not the cached
     literals: compare against an uncached session *)
  let db2 = Tango_dbms.Database.create () in
  Uis.load ~scale:0.005 db2;
  let mw2 = Middleware.connect ~roundtrip_spin:0 db2 in
  let expect = Middleware.query mw2 (Queries.q2_sql ~period_end:"1997-01-01") in
  Alcotest.(check bool) "instantiated plan answers the new literals" true
    (Relation.equal_list expect.Middleware.result r2.Middleware.result)

let test_exact_mode_misses_on_literal_change () =
  let _db, mw = setup () in
  Middleware.set_config mw
    (Middleware.Config.with_auto_parameterize false (Middleware.config mw));
  ignore (Middleware.query mw (Queries.q2_sql ~period_end:"1996-01-01"));
  let r = Middleware.query mw (Queries.q2_sql ~period_end:"1997-01-01") in
  Alcotest.(check bool) "changed literal misses" false (cache_hit r);
  let r2 = Middleware.query mw (Queries.q2_sql ~period_end:"1996-01-01") in
  Alcotest.(check bool) "original still cached" true (cache_hit r2);
  Alcotest.(check string) "classified as exact hit" "exact-hit" (cache_class r2)

(* Explicit bind variables: same template text + different bindings =
   one entry, and results match the literal-inlined spelling. *)
let test_query_params () =
  let _db, mw = setup () in
  let sql =
    "VALIDTIME SELECT PosID, PayRate FROM POSITION WHERE PayRate > $1"
  in
  let r1 = Middleware.query_params mw sql [ Value.Int 10 ] in
  Alcotest.(check string) "first binding misses" "miss" (cache_class r1);
  let r2 = Middleware.query_params mw sql [ Value.Int 25 ] in
  Alcotest.(check string) "second binding template-hits" "template-hit"
    (cache_class r2);
  let lit10 =
    Middleware.query mw
      "VALIDTIME SELECT PosID, PayRate FROM POSITION WHERE PayRate > 10"
  in
  Alcotest.(check bool) "binding 10 = literal 10" true
    (Relation.equal_multiset r1.Middleware.result lit10.Middleware.result);
  let lit25 =
    Middleware.query mw
      "VALIDTIME SELECT PosID, PayRate FROM POSITION WHERE PayRate > 25"
  in
  Alcotest.(check bool) "binding 25 = literal 25" true
    (Relation.equal_multiset r2.Middleware.result lit25.Middleware.result);
  Alcotest.(check bool) "bindings select different rows" true
    (Relation.cardinality r1.Middleware.result
    > Relation.cardinality r2.Middleware.result);
  (* '?' positional markers are the same thing *)
  let r3 =
    Middleware.query_params mw
      "VALIDTIME SELECT PosID, PayRate FROM POSITION WHERE PayRate > ?"
      [ Value.Int 10 ]
  in
  Alcotest.(check bool) "? binding matches $1 binding" true
    (Relation.equal_multiset r1.Middleware.result r3.Middleware.result)

(* The parameter-sensitivity guard: with a (deliberately hair-trigger)
   q-error threshold, every first hit in a selectivity bucket re-optimizes
   under the bound values and stores a region plan; later hits in that
   bucket reuse it without another replan. *)
let test_sensitivity_guard_replans_per_region () =
  let _db, mw = setup () in
  Middleware.set_config mw
    (Middleware.Config.with_replan_q_error 1.0 (Middleware.config mw));
  (* region A: a late period end selects almost every version *)
  let late = Queries.q2_sql ~period_end:"1997-01-01" in
  ignore (Middleware.query mw late);
  (* first hit in region A executes the generic plan, then replans *)
  let r2 = Middleware.query mw late in
  Alcotest.(check string) "hit served from template" "template-hit"
    (cache_class r2);
  let s = Middleware.plan_cache_stats mw in
  Alcotest.(check int) "one region judged" 1 s.Plan_cache.replans;
  (* second hit in region A rides the stored region plan: no new replan *)
  let r3 = Middleware.query mw late in
  Alcotest.(check string) "still a template hit" "template-hit" (cache_class r3);
  Alcotest.(check int) "region plan reused, not re-judged" 1
    (Middleware.plan_cache_stats mw).Plan_cache.replans;
  (* region B: an early period end selects almost nothing — lands in a
     different selectivity bucket and is judged on its own *)
  let early = Queries.q2_sql ~period_end:"1975-06-01" in
  let r4 = Middleware.query mw early in
  Alcotest.(check string) "other region is the same template" "template-hit"
    (cache_class r4);
  let s = Middleware.plan_cache_stats mw in
  Alcotest.(check int) "second region judged separately" 2 s.Plan_cache.replans;
  Alcotest.(check int) "both replans hit one entry" 2 s.Plan_cache.max_replans;
  let r5 = Middleware.query mw early in
  (* the guard picked per-region plans; the regions are extreme enough
     that they differ *)
  Alcotest.(check bool) "regions run different plans" true
    (not
       (String.equal
          (Tango_volcano.Physical.signature r3.Middleware.physical)
          (Tango_volcano.Physical.signature r5.Middleware.physical)));
  (* and the region plans still answer their bindings correctly *)
  let db2 = Tango_dbms.Database.create () in
  Uis.load ~scale:0.005 db2;
  let mw2 = Middleware.connect ~roundtrip_spin:0 db2 in
  Alcotest.(check bool) "region plan (late) is correct" true
    (Relation.equal_multiset (Middleware.query mw2 late).Middleware.result
       r3.Middleware.result);
  Alcotest.(check bool) "region plan (early) is correct" true
    (Relation.equal_multiset (Middleware.query mw2 early).Middleware.result
       r5.Middleware.result)

let test_event_log_records_cache_class () =
  let _db, mw = setup () in
  let log = Tango_monitor.Event_log.create () in
  Middleware.set_query_observer mw (Some (Tango_monitor.Event_log.observe log));
  ignore (Middleware.query mw (Queries.q2_sql ~period_end:"1996-01-01"));
  ignore (Middleware.query mw (Queries.q2_sql ~period_end:"1997-01-01"));
  ignore (Middleware.query mw Queries.q1_sql);
  ignore (Middleware.query mw Queries.q1_sql);
  match Tango_monitor.Event_log.recent log with
  | [ d; c; b; a ] ->
      (* newest first *)
      Alcotest.(check string) "template miss" "miss"
        a.Tango_monitor.Event_log.cache_class;
      Alcotest.(check string) "template hit" "template-hit"
        b.Tango_monitor.Event_log.cache_class;
      Alcotest.(check string) "exact miss" "miss"
        c.Tango_monitor.Event_log.cache_class;
      Alcotest.(check string) "exact hit" "exact-hit"
        d.Tango_monitor.Event_log.cache_class
  | rs -> Alcotest.failf "expected 4 records, got %d" (List.length rs)

let test_invalidation_on_analyze () =
  let db, mw = setup () in
  ignore (Middleware.query mw Queries.q1_sql);
  (* ANALYZE behind the middleware's back: detected via the schema
     generation at the next lookup *)
  ignore (Tango_dbms.Database.analyze db "POSITION");
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "post-ANALYZE submission misses" false (cache_hit r);
  Alcotest.(check bool) "cache was flushed" true
    ((Middleware.plan_cache_stats mw).Plan_cache.invalidations > 0);
  (* and the re-planned entry serves hits again *)
  Alcotest.(check bool) "re-cached" true (cache_hit (Middleware.query mw Queries.q1_sql))

let test_invalidation_on_ddl () =
  let db, mw = setup () in
  ignore (Middleware.query mw Queries.q1_sql);
  Tango_dbms.Database.create_table db "NEWTBL"
    (Schema.make [ ("A", Value.TInt) ]);
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "post-DDL submission misses" false (cache_hit r)

let test_invalidation_on_factor_change () =
  let _db, mw = setup () in
  ignore (Middleware.query mw Queries.q1_sql);
  let inv0 = (Middleware.plan_cache_stats mw).Plan_cache.invalidations in
  (* adopting new cost factors re-ranks every cached plan *)
  Middleware.adopt_factors mw (Tango_cost.Factors.default ());
  Alcotest.(check bool) "factor adoption invalidates" true
    ((Middleware.plan_cache_stats mw).Plan_cache.invalidations > inv0);
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "post-adoption submission misses" false (cache_hit r)

let test_invalidation_on_stats_refresh () =
  let _db, mw = setup () in
  ignore (Middleware.query mw Queries.q1_sql);
  Middleware.refresh_statistics mw;
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "post-refresh submission misses" false (cache_hit r)

let test_session_capacity_eviction () =
  let _db, mw = setup () in
  Middleware.set_config mw
    (Middleware.Config.with_plan_cache ~capacity:2 true (Middleware.config mw));
  ignore (Middleware.query mw Queries.q1_sql);
  ignore (Middleware.query mw (Queries.q2_sql ~period_end:"1996-01-01"));
  ignore (Middleware.query mw (Queries.q3_sql ~start_bound:"1996-01-01"));
  (* q1 was the least recently used of the three *)
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "evicted at capacity" false (cache_hit r);
  Alcotest.(check bool) "evictions counted" true
    ((Middleware.plan_cache_stats mw).Plan_cache.evictions > 0)

let test_disabled_cache_reports_nothing () =
  let db = Tango_dbms.Database.create () in
  Uis.load ~scale:0.005 db;
  let mw = Middleware.connect ~roundtrip_spin:0 db in
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "no cache report when disabled" true
    (r.Middleware.cache = None);
  let r2 = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "still none on resubmission" true (r2.Middleware.cache = None)

let test_event_log_distinguishes_hits () =
  let _db, mw = setup () in
  let log = Tango_monitor.Event_log.create () in
  Middleware.set_query_observer mw (Some (Tango_monitor.Event_log.observe log));
  ignore (Middleware.query mw Queries.q1_sql);
  ignore (Middleware.query mw Queries.q1_sql);
  match Tango_monitor.Event_log.recent log with
  | [ hit; miss ] ->
      (* newest first *)
      Alcotest.(check bool) "miss recorded as such" false
        miss.Tango_monitor.Event_log.cache_hit;
      Alcotest.(check bool) "hit recorded as such" true
        hit.Tango_monitor.Event_log.cache_hit;
      Alcotest.(check bool) "miss has an optimize phase" true
        (miss.Tango_monitor.Event_log.optimize_us > 0.0);
      Alcotest.(check (float 0.0)) "hit skipped optimize" 0.0
        hit.Tango_monitor.Event_log.optimize_us
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs)

let () =
  Alcotest.run "tango_cache"
    [
      ( "structure",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "literal-sensitive keys" `Quick test_key_literal_sensitive;
          Alcotest.test_case "keyword-case-insensitive keys" `Quick
            test_keyword_case_insensitive;
          Alcotest.test_case "hit kinds and replans" `Quick test_hit_kinds_and_replans;
          Alcotest.test_case "find/add" `Quick test_find_add;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "invalidate all" `Quick test_invalidate_all;
        ] );
      ( "middleware",
        [
          Alcotest.test_case "hit on resubmission" `Quick test_hit_on_resubmission;
          Alcotest.test_case "template hit on literal change" `Quick
            test_template_hit_on_literal_change;
          Alcotest.test_case "exact mode misses on literal change" `Quick
            test_exact_mode_misses_on_literal_change;
          Alcotest.test_case "explicit bind variables" `Quick test_query_params;
          Alcotest.test_case "sensitivity guard replans per region" `Quick
            test_sensitivity_guard_replans_per_region;
          Alcotest.test_case "event log records cache class" `Quick
            test_event_log_records_cache_class;
          Alcotest.test_case "invalidation on ANALYZE" `Quick test_invalidation_on_analyze;
          Alcotest.test_case "invalidation on DDL" `Quick test_invalidation_on_ddl;
          Alcotest.test_case "invalidation on factor change" `Quick
            test_invalidation_on_factor_change;
          Alcotest.test_case "invalidation on stats refresh" `Quick
            test_invalidation_on_stats_refresh;
          Alcotest.test_case "capacity eviction" `Quick test_session_capacity_eviction;
          Alcotest.test_case "disabled reports nothing" `Quick
            test_disabled_cache_reports_nothing;
          Alcotest.test_case "event log distinguishes hits" `Quick
            test_event_log_distinguishes_hits;
        ] );
    ]
