(* Tests for Tango_monitor — the Prometheus and Chrome-trace exporters,
   the per-query event log (ring eviction, head-based sampling, slow and
   failed overrides), the SLO burn-rate engine, the HTTP server, and the
   monitoring endpoints driven end-to-end over a real middleware
   session. *)

open Tango_obs
open Tango_core
open Tango_monitor
open Tango_workload

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let check_infix what affix s =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S present" what affix)
    true (is_infix ~affix s)

(* ---------------- obs: fixed histogram buckets ---------------- *)

let test_histogram_buckets () =
  let h = Histogram.make "test.monitor_buckets" in
  Histogram.reset h;
  List.iter (Histogram.observe h) [ 0.5; 1.0; 3.0; 1000.0; 1e9 ];
  (* non-cumulative cells: 0.5 and 1.0 land at bound 1, 3.0 at bound 4,
     1000.0 at bound 1024, 1e9 overflows *)
  let counts = Histogram.bucket_counts h in
  Alcotest.(check int) "cells" (Array.length Histogram.bucket_bounds + 1)
    (Array.length counts);
  Alcotest.(check int) "le 1" 2 counts.(0);
  Alcotest.(check int) "le 2" 0 counts.(1);
  Alcotest.(check int) "le 4" 1 counts.(2);
  Alcotest.(check int) "le 1024" 1 counts.(10);
  Alcotest.(check int) "overflow" 1 counts.(Array.length counts - 1);
  (* cumulative series is monotone and closed by (+Inf, count) *)
  let cum = Histogram.cumulative_buckets h in
  let last_bound, last_count = List.nth cum (List.length cum - 1) in
  Alcotest.(check bool) "closed by +Inf" true (last_bound = infinity);
  Alcotest.(check int) "total at +Inf" 5 last_count;
  ignore
    (List.fold_left
       (fun prev (_, c) ->
         Alcotest.(check bool) "monotone" true (c >= prev);
         c)
       0 cum)

let test_registry_diff_histograms () =
  let h = Histogram.make "test.monitor_diff_hist" in
  Histogram.reset h;
  Histogram.observe h 3.0;
  let before = Registry.snapshot () in
  Histogram.observe h 5.0;
  Histogram.observe h 100.0;
  let after = Registry.snapshot () in
  let d = Registry.diff after before in
  let stats = List.assoc "test.monitor_diff_hist" d.Registry.histograms in
  Alcotest.(check int) "count delta" 2 stats.Registry.count;
  Alcotest.(check (float 1e-9)) "sum delta" 105.0 stats.Registry.sum;
  Alcotest.(check (float 1e-9)) "mean of delta" 52.5 stats.Registry.mean;
  (* bucket deltas: 5.0 -> le 8, 100.0 -> le 128; 3.0 cancelled out *)
  Alcotest.(check int) "le 4 delta" 0 (List.assoc 4.0 stats.Registry.buckets);
  Alcotest.(check int) "le 8 delta" 1 (List.assoc 8.0 stats.Registry.buckets);
  Alcotest.(check int) "le 128 delta" 2
    (List.assoc 128.0 stats.Registry.buckets);
  Alcotest.(check int) "+Inf delta" 2
    (List.assoc infinity stats.Registry.buckets)

(* ---------------- prometheus ---------------- *)

let test_prometheus_golden () =
  (* a synthetic snapshot renders to exactly this exposition text *)
  let snapshot =
    {
      Registry.counters = [ ("client.roundtrips", 42) ];
      histograms =
        [
          ( "query.us",
            {
              Registry.count = 3;
              sum = 10.5;
              min = 1.0;
              max = 7.0;
              mean = 3.5;
              p50 = 2.5;
              p95 = 7.0;
              p99 = 7.0;
              buckets = [ (1.0, 0); (2.0, 2); (infinity, 3) ];
              exemplars = [];
            } );
        ];
    }
  in
  let expected =
    "# TYPE tango_client_roundtrips counter\n\
     tango_client_roundtrips 42\n\
     # TYPE tango_query_us histogram\n\
     tango_query_us_bucket{le=\"1\"} 0\n\
     tango_query_us_bucket{le=\"2\"} 2\n\
     tango_query_us_bucket{le=\"+Inf\"} 3\n\
     tango_query_us_sum 10.5\n\
     tango_query_us_count 3\n"
  in
  Alcotest.(check string) "golden" expected (Prometheus.render snapshot)

let test_prometheus_names_and_gauges () =
  Alcotest.(check string) "sanitized" "tango_client_round_trips_"
    (Prometheus.metric_name "client.round-trips!");
  Alcotest.(check string) "custom namespace" "acme_x_y"
    (Prometheus.metric_name ~namespace:"acme" "x.y");
  Alcotest.(check string) "gauge family"
    "# TYPE tango_monitor_slo_state gauge\ntango_monitor_slo_state 2\n"
    (Prometheus.gauge ~name:"monitor.slo_state" 2.0);
  Alcotest.(check string) "gauge labels"
    "# TYPE tango_up gauge\ntango_up{job=\"a\\\"b\"} 1\n"
    (Prometheus.gauge ~name:"up" ~labels:[ ("job", "a\"b") ] 1.0);
  Alcotest.(check string) "+Inf bound" "+Inf" (Prometheus.le_label infinity)

let test_prometheus_exemplars () =
  (* OpenMetrics mode renders a bucket's exemplar after the sample; the
     default 0.0.4 mode drops it; [# EOF] is the caller's terminator *)
  let ex =
    {
      Histogram.ex_seq = 7;
      ex_trace_id = "deadbeef";
      ex_value = 1.5;
      ex_at_us = 2_500_000.0;
    }
  in
  let snapshot =
    {
      Registry.counters = [];
      histograms =
        [
          ( "query.us",
            {
              Registry.count = 3;
              sum = 10.5;
              min = 1.0;
              max = 7.0;
              mean = 3.5;
              p50 = 2.5;
              p95 = 7.0;
              p99 = 7.0;
              buckets = [ (1.0, 0); (2.0, 2); (infinity, 3) ];
              exemplars = [ (2.0, ex) ];
            } );
        ];
    }
  in
  let expected =
    "# TYPE tango_query_us histogram\n\
     tango_query_us_bucket{le=\"1\"} 0\n\
     tango_query_us_bucket{le=\"2\"} 2 # {seq=\"7\",trace_id=\"deadbeef\"} \
     1.5 2.500000\n\
     tango_query_us_bucket{le=\"+Inf\"} 3\n\
     tango_query_us_sum 10.5\n\
     tango_query_us_count 3\n"
  in
  Alcotest.(check string) "golden openmetrics" expected
    (Prometheus.render ~exemplars:true snapshot);
  Alcotest.(check bool) "plain mode drops exemplars" false
    (is_infix ~affix:"# {seq=" (Prometheus.render snapshot));
  Alcotest.(check string) "eof terminator" "# EOF\n" Prometheus.eof;
  check_infix "negotiated content type" "application/openmetrics-text"
    Prometheus.openmetrics_content_type

let test_prometheus_lock_profile () =
  (* a synthetic profile snapshot renders to exactly this text *)
  let snap =
    {
      Dsync.Profile.lock_name = "obs.registry";
      acquires = 5;
      contended = 2;
      wait_us = 12.5;
      hold_us = 20.0;
      wait_buckets = [ (1.0, 0); (infinity, 2) ];
      hold_buckets = [ (1.0, 1); (infinity, 5) ];
    }
  in
  let expected =
    "# TYPE tango_lock_acquires counter\n\
     tango_lock_acquires{lock=\"obs.registry\"} 5\n\
     # TYPE tango_lock_contended counter\n\
     tango_lock_contended{lock=\"obs.registry\"} 2\n\
     # TYPE tango_lock_wait_us histogram\n\
     tango_lock_wait_us_bucket{lock=\"obs.registry\",le=\"1\"} 0\n\
     tango_lock_wait_us_bucket{lock=\"obs.registry\",le=\"+Inf\"} 2\n\
     tango_lock_wait_us_sum{lock=\"obs.registry\"} 12.5\n\
     tango_lock_wait_us_count{lock=\"obs.registry\"} 2\n\
     # TYPE tango_lock_hold_us histogram\n\
     tango_lock_hold_us_bucket{lock=\"obs.registry\",le=\"1\"} 1\n\
     tango_lock_hold_us_bucket{lock=\"obs.registry\",le=\"+Inf\"} 5\n\
     tango_lock_hold_us_sum{lock=\"obs.registry\"} 20\n\
     tango_lock_hold_us_count{lock=\"obs.registry\"} 5\n"
  in
  Alcotest.(check string) "golden lock profile" expected
    (Prometheus.lock_profile [ snap ]);
  Alcotest.(check string) "empty profile renders nothing" ""
    (Prometheus.lock_profile [])

let test_prometheus_runtime_gauges () =
  (* publish this domain's counters so the per-domain families appear *)
  Tango_obs.Runtime.touch ();
  let text = Prometheus.runtime_gauges () in
  check_infix "heap words gauge" "# TYPE tango_gc_heap_words gauge" text;
  check_infix "top heap gauge" "tango_gc_top_heap_words" text;
  check_infix "compactions gauge" "tango_gc_compactions" text;
  check_infix "per-domain alloc family"
    "# TYPE tango_gc_domain_alloc_bytes gauge" text;
  check_infix "per-domain label" "tango_gc_domain_alloc_bytes{domain=\"" text;
  check_infix "per-domain minor family" "tango_gc_domain_minor_collections"
    text

(* ---------------- chrome trace ---------------- *)

(* root(100) with children a(40) and b(20), b holding attrs and a nested
   child c(5): preorder events, children starting at the parent start,
   siblings back to back. *)
let test_chrome_trace_layout () =
  let c = Trace.make ~elapsed_us:5.0 "c" in
  let b =
    Trace.make ~elapsed_us:20.0
      ~attrs:[ ("tuples", Trace.Int 7); ("alg", Trace.Str "sort") ]
      ~children:[ c ] "b"
  in
  let a = Trace.make ~elapsed_us:40.0 "a" in
  let root = Trace.make ~elapsed_us:100.0 ~children:[ a; b ] "root" in
  let events = Chrome_trace.events ~start_us:1000.0 root in
  Alcotest.(check int) "one event per span" 4 (List.length events);
  let field name = function
    | Json.Obj kvs -> List.assoc name kvs
    | _ -> Alcotest.fail "event is not an object"
  in
  let names =
    List.map (fun e -> match field "name" e with
      | Json.String s -> s
      | _ -> "?")
      events
  in
  Alcotest.(check (list string)) "preorder" [ "root"; "a"; "b"; "c" ] names;
  let ts e = match field "ts" e with
    | Json.Float f -> f
    | Json.Int i -> float_of_int i
    | _ -> nan
  in
  let by_name n =
    List.find (fun e -> field "name" e = Json.String n) events
  in
  Alcotest.(check (float 1e-9)) "root at start_us" 1000.0 (ts (by_name "root"));
  Alcotest.(check (float 1e-9)) "first child at parent start" 1000.0
    (ts (by_name "a"));
  Alcotest.(check (float 1e-9)) "sibling laid after" 1040.0 (ts (by_name "b"));
  Alcotest.(check (float 1e-9)) "nested child at b's start" 1040.0
    (ts (by_name "c"));
  (match field "ph" (by_name "root") with
  | Json.String ph -> Alcotest.(check string) "complete events" "X" ph
  | _ -> Alcotest.fail "ph missing");
  match field "args" (by_name "b") with
  | Json.Obj args ->
      Alcotest.(check bool) "attr exported" true
        (List.assoc "tuples" args = Json.Int 7)
  | _ -> Alcotest.fail "args missing"

let test_chrome_trace_json () =
  let root =
    Trace.make ~elapsed_us:10.0
      ~children:[ Trace.make ~elapsed_us:4.0 "child" ]
      "q\"uote"
  in
  let s = Chrome_trace.to_string root in
  check_infix "envelope" "{\"traceEvents\":[" s;
  check_infix "unit" "\"displayTimeUnit\":\"ms\"" s;
  check_infix "escaping" "q\\\"uote" s;
  (* the structural form round-trips through the Json document model *)
  match Chrome_trace.to_json root with
  | Json.Obj kvs -> (
      match List.assoc "traceEvents" kvs with
      | Json.List evs -> Alcotest.(check int) "two events" 2 (List.length evs)
      | _ -> Alcotest.fail "traceEvents is not a list")
  | _ -> Alcotest.fail "not an object"

(* every backend gets its own lane: a thread_name metadata event on tids
   2, 3, ... followed by a transfer slice and a gather-wait slice laid
   back to back from the lane start *)
let test_chrome_backend_lanes () =
  let events =
    Chrome_trace.backend_lanes ~start_us:100.0
      [ ("s0", 40.0, 10.0); ("s1", 5.0, 0.0) ]
  in
  Alcotest.(check int) "three events per backend" 6 (List.length events);
  let field name = function
    | Json.Obj kvs -> List.assoc name kvs
    | _ -> Alcotest.fail "event is not an object"
  in
  let meta = List.nth events 0 in
  Alcotest.(check bool) "metadata event" true
    (field "ph" meta = Json.String "M");
  Alcotest.(check bool) "first lane on tid 2" true
    (field "tid" meta = Json.Int 2);
  (match field "args" meta with
  | Json.Obj args ->
      Alcotest.(check bool) "lane label" true
        (List.assoc "name" args = Json.String "backend:s0")
  | _ -> Alcotest.fail "args missing");
  let transfer = List.nth events 1 and wait = List.nth events 2 in
  Alcotest.(check bool) "transfer slice" true
    (field "name" transfer = Json.String "transfer"
    && field "ts" transfer = Json.Float 100.0
    && field "dur" transfer = Json.Float 40.0);
  Alcotest.(check bool) "gather-wait laid after transfer" true
    (field "name" wait = Json.String "gather-wait"
    && field "ts" wait = Json.Float 140.0
    && field "dur" wait = Json.Float 10.0);
  Alcotest.(check bool) "second lane on tid 3" true
    (field "tid" (List.nth events 3) = Json.Int 3);
  (* lanes ride into the trace envelope after the span events *)
  let root = Trace.make ~elapsed_us:10.0 "root" in
  match Chrome_trace.to_json ~backends:[ ("s0", 4.0, 1.0) ] root with
  | Json.Obj kvs -> (
      match List.assoc "traceEvents" kvs with
      | Json.List evs ->
          Alcotest.(check int) "span + lane events" 4 (List.length evs)
      | _ -> Alcotest.fail "traceEvents is not a list")
  | _ -> Alcotest.fail "not an object"

(* ---------------- event log ---------------- *)

let event ?(kind = "query") ?sql ?(started_us = 0.0) ?(elapsed_us = 100.0)
    ?error () : Middleware.query_event =
  { Middleware.kind; sql; started_us; elapsed_us; cache_hit = false; cache_class = "";
    report = None; error; backends = [];
    resources = Tango_obs.Runtime.zero }

let seqs log = List.map (fun r -> r.Event_log.seq) (Event_log.recent log)

let test_event_log_eviction () =
  let log = Event_log.create ~capacity:4 () in
  for _ = 1 to 6 do
    Event_log.observe log (event ())
  done;
  Alcotest.(check int) "seen" 6 (Event_log.seen log);
  Alcotest.(check int) "kept counts evictions too" 6 (Event_log.kept log);
  (* newest first, oldest two evicted *)
  Alcotest.(check (list int)) "newest first" [ 5; 4; 3; 2 ] (seqs log);
  Alcotest.(check (list int)) "recent ~n" [ 5; 4 ]
    (List.map (fun r -> r.Event_log.seq) (Event_log.recent ~n:2 log))

let test_event_log_sampling () =
  let log = Event_log.create ~sample_every:3 () in
  for _ = 1 to 8 do
    Event_log.observe log (event ())
  done;
  (* deterministic head sampling by arrival ordinal: 0, 3, 6 *)
  Alcotest.(check (list int)) "every 3rd" [ 6; 3; 0 ] (seqs log);
  List.iter
    (fun r ->
      Alcotest.(check bool) "reason" true (r.Event_log.kept = Event_log.Sampled))
    (Event_log.recent log)

let test_event_log_overrides () =
  let log = Event_log.create ~sample_every:1000 ~slow_keep_us:1000.0 () in
  Event_log.observe log (event ());                       (* seq 0: sampled *)
  Event_log.observe log (event ());                       (* seq 1: dropped *)
  Event_log.observe log (event ~elapsed_us:5000.0 ());    (* seq 2: slow *)
  Event_log.observe log (event ~error:"boom" ());         (* seq 3: failed *)
  Event_log.observe log (event ());                       (* seq 4: dropped *)
  Alcotest.(check (list int)) "kept" [ 3; 2; 0 ] (seqs log);
  let reasons = List.map (fun r -> r.Event_log.kept) (Event_log.recent log) in
  Alcotest.(check bool) "reasons" true
    (reasons = [ Event_log.Failed; Event_log.Slow; Event_log.Sampled ]);
  let failed = List.hd (Event_log.recent ~n:1 log) in
  Alcotest.(check (option string)) "error text" (Some "boom")
    failed.Event_log.error

let test_event_log_metrics () =
  Counter.reset Event_log.queries_total;
  Counter.reset Event_log.query_errors;
  Counter.reset Event_log.events_kept;
  Counter.reset Event_log.events_sampled_out;
  let log = Event_log.create ~sample_every:2 () in
  for _ = 1 to 4 do
    Event_log.observe log (event ())
  done;
  Event_log.observe log (event ~error:"x" ());
  Alcotest.(check int) "queries" 5 (Counter.value Event_log.queries_total);
  Alcotest.(check int) "errors" 1 (Counter.value Event_log.query_errors);
  Alcotest.(check int) "kept" 3 (Counter.value Event_log.events_kept);
  Alcotest.(check int) "sampled out" 2
    (Counter.value Event_log.events_sampled_out)

let test_event_log_json () =
  let log = Event_log.create () in
  Event_log.observe log (event ~sql:"VALIDTIME SELECT 1" ());
  match Event_log.to_json log with
  | Json.List [ Json.Obj kvs ] ->
      Alcotest.(check bool) "sql" true
        (List.assoc "sql" kvs = Json.String "VALIDTIME SELECT 1");
      Alcotest.(check bool) "kept" true
        (List.assoc "kept" kvs = Json.String "sampled")
  | _ -> Alcotest.fail "expected a one-record JSON array"

let test_event_log_tail_exemplars () =
  Histogram.reset Event_log.query_us;
  let log = Event_log.create ~sample_every:1000 () in
  (* 40 fast queries settle the histogram's idea of the p99... *)
  for _ = 1 to 40 do
    Event_log.observe log (event ~elapsed_us:100.0 ())
  done;
  (* ...then one lands whole latency bands above it: kept as Tail even
     though sampling would have dropped it *)
  Event_log.observe log (event ~elapsed_us:1.0e6 ());
  (match Event_log.find log 40 with
  | Some r ->
      Alcotest.(check bool) "tail reason" true
        (r.Event_log.kept = Event_log.Tail)
  | None -> Alcotest.fail "tail record not kept");
  (* the exemplar on the tail bucket resolves back to that record *)
  let exs = Histogram.exemplar_list Event_log.query_us in
  let _, e = List.find (fun (_, e) -> e.Histogram.ex_value = 1.0e6) exs in
  Alcotest.(check int) "exemplar seq" 40 e.Histogram.ex_seq;
  Alcotest.(check string) "trace id falls back to kind" "query"
    e.Histogram.ex_trace_id;
  Alcotest.(check bool) "resolves through find" true
    (Event_log.find log e.Histogram.ex_seq <> None);
  (* dropped events never leave an exemplar: only seq 0 (sampled) and
     the tail outlier were kept, so only their buckets carry one *)
  Alcotest.(check int) "exemplars only for kept" 2 (List.length exs);
  Histogram.reset Event_log.query_us

(* ---------------- slo ---------------- *)

let slo_objective =
  {
    Slo.latency_us = 1000.0;
    latency_goal = 0.95;
    error_goal = 0.99;
    short_window_us = 10. *. 1e6;
    long_window_us = 100. *. 1e6;
    warn_burn = 1.0;
    critical_burn = 4.0;
  }

let test_slo_transitions () =
  let t = Slo.create ~objective:slo_objective () in
  (* 100 fast, healthy queries over the first 10s *)
  for i = 0 to 99 do
    Slo.observe t ~now_us:(float_of_int i *. 1e5) ~latency_us:100.0 ~ok:true
  done;
  let v = Slo.evaluate t ~now_us:9.9e6 in
  Alcotest.(check bool) "healthy" true (v.Slo.state = Slo.Ok);
  Alcotest.(check int) "short total" 100 v.Slo.short.Slo.total;
  (* 10 slow queries at t=50s: the short window sees only them (burn 20),
     the long window dilutes to 10/110 -> burn ~1.8 — Warning, not
     Critical: the two-window rule needs both windows above threshold *)
  for i = 0 to 9 do
    Slo.observe t
      ~now_us:(5e7 +. (float_of_int i *. 1e5))
      ~latency_us:5000.0 ~ok:true
  done;
  let v = Slo.evaluate t ~now_us:5.5e7 in
  Alcotest.(check bool) "warning" true (v.Slo.state = Slo.Warning);
  Alcotest.(check bool) "short burns hot" true
    (v.Slo.latency_burn_short >= 4.0);
  Alcotest.(check bool) "long still below critical" true
    (v.Slo.latency_burn_long < 4.0);
  (* 60 more slow queries push the long window over critical too *)
  for i = 0 to 59 do
    Slo.observe t
      ~now_us:(6e7 +. (float_of_int i *. 1e5))
      ~latency_us:5000.0 ~ok:true
  done;
  let v = Slo.evaluate t ~now_us:6.65e7 in
  Alcotest.(check bool) "critical" true (v.Slo.state = Slo.Critical);
  (* once both windows slide past the bad period, the state recovers *)
  let v = Slo.evaluate t ~now_us:3e8 in
  Alcotest.(check bool) "recovered" true (v.Slo.state = Slo.Ok);
  Alcotest.(check int) "windows empty" 0 v.Slo.long.Slo.total

let test_slo_availability () =
  let t = Slo.create ~objective:slo_objective () in
  for i = 0 to 9 do
    Slo.observe t
      ~now_us:(float_of_int i *. 1e5)
      ~latency_us:100.0
      ~ok:(i mod 2 = 0)
  done;
  (* 50% failures against a 1% budget: burn 50 in both windows *)
  let v = Slo.evaluate t ~now_us:1e6 in
  Alcotest.(check bool) "critical on errors" true (v.Slo.state = Slo.Critical);
  Alcotest.(check (float 1e-6)) "error burn" 50.0 v.Slo.error_burn_short;
  Alcotest.(check int) "failed counted" 5 v.Slo.short.Slo.failed

let test_slo_json_and_gauges () =
  let t = Slo.create ~objective:slo_objective () in
  Slo.observe t ~now_us:0.0 ~latency_us:100.0 ~ok:true;
  let s = Json.to_string (Slo.to_json t ~now_us:1e6) in
  check_infix "state" "\"state\":\"ok\"" s;
  check_infix "windows" "\"short_window\":" s;
  let gauges = Slo.prometheus_gauges (Slo.evaluate t ~now_us:1e6) in
  Alcotest.(check (float 1e-9)) "state gauge" 0.0
    (List.assoc "monitor.slo_state" gauges);
  Alcotest.(check int) "five gauges" 5 (List.length gauges);
  Alcotest.(check bool) "rejects empty budget" true
    (try
       ignore (Slo.create ~objective:{ slo_objective with Slo.latency_goal = 1.0 } ());
       false
     with Invalid_argument _ -> true)

(* ---------------- watchdog ---------------- *)

let cache_stats ?(replans = 0) ?(max_replans = 0) ~hits ~misses () =
  {
    Tango_cache.Plan_cache.hits;
    template_hits = 0;
    exact_hits = hits;
    misses;
    evictions = 0;
    invalidations = 0;
    replans;
    max_replans;
    last_invalidation = None;
  }

let signal (v : Watchdog.verdict) name =
  List.find (fun (s : Watchdog.signal) -> s.Watchdog.name = name)
    v.Watchdog.signals

(* A single entry accumulating sensitivity-guard replans is flagged as a
   parameter-sensitive plan; scattered one-off replans are not. *)
let test_watchdog_parameter_sensitivity () =
  Histogram.reset Event_log.query_us;
  let slo = Slo.create ~objective:slo_objective () in
  Slo.observe slo ~now_us:0.0 ~latency_us:100.0 ~ok:true;
  let log = Event_log.create () in
  Event_log.observe log (event ~elapsed_us:100.0 ());
  let wd = Watchdog.create ~generation:0 () in
  let eval cache = Watchdog.evaluate wd ~now_us:1e6 ~slo ~log ~generation:0 ?cache () in
  let v = eval None in
  let s = signal v "parameter_sensitive_plan" in
  Alcotest.(check bool) "silent without a cache" false s.Watchdog.firing;
  let v =
    eval (Some (cache_stats ~hits:9 ~misses:1 ~replans:2 ~max_replans:1 ()))
  in
  Alcotest.(check bool) "one region plan per entry is normal" false
    (signal v "parameter_sensitive_plan").Watchdog.firing;
  let v =
    eval (Some (cache_stats ~hits:9 ~misses:1 ~replans:3 ~max_replans:2 ()))
  in
  let s = signal v "parameter_sensitive_plan" in
  Alcotest.(check bool) "an entry accumulating replans fires" true
    s.Watchdog.firing;
  Alcotest.(check bool) "detail carries the evidence" true
    (s.Watchdog.detail = "3 replans total; worst entry holds 2 region plans");
  Alcotest.(check bool) "firing signal raises the verdict" true
    (v.Watchdog.state <> Slo.Ok);
  (* a stricter threshold is available for noisy workloads *)
  let wd = Watchdog.create ~generation:0 ~replan_warn:5 () in
  let v =
    Watchdog.evaluate wd ~now_us:1e6 ~slo ~log ~generation:0
      ~cache:(cache_stats ~hits:9 ~misses:1 ~replans:3 ~max_replans:2 ())
      ()
  in
  Alcotest.(check bool) "below a raised threshold" false
    (signal v "parameter_sensitive_plan").Watchdog.firing

let test_watchdog_transitions () =
  Histogram.reset Event_log.query_us;
  let now_us = 1e6 in
  let slo = Slo.create ~objective:slo_objective () in
  Slo.observe slo ~now_us:0.0 ~latency_us:100.0 ~ok:true;
  let log = Event_log.create () in
  (* nine fast runs and one 100x outlier: the tail analysis covers
     exactly the outlier *)
  for _ = 1 to 9 do
    Event_log.observe log (event ~elapsed_us:100.0 ())
  done;
  Event_log.observe log (event ~elapsed_us:10_000.0 ());
  let wd = Watchdog.create ~generation:5 () in
  (* quiet: same generation, healthy slo, no cache or profiling wired *)
  let v = Watchdog.evaluate wd ~now_us ~slo ~log ~generation:5 () in
  Alcotest.(check bool) "quiet" true (v.Watchdog.state = Slo.Ok);
  Alcotest.(check bool) "nothing firing" false
    (List.exists (fun (s : Watchdog.signal) -> s.Watchdog.firing)
       v.Watchdog.signals);
  Alcotest.(check int) "tail covers the outlier" 1 v.Watchdog.tail_records;
  (* a topology bump fires once and lifts the state to warning... *)
  let v = Watchdog.evaluate wd ~now_us ~slo ~log ~generation:6 () in
  Alcotest.(check bool) "topology firing" true
    (signal v "topology_generation").Watchdog.firing;
  Alcotest.(check bool) "lifted to warning" true
    (v.Watchdog.state = Slo.Warning);
  (* ...and clears at the next check of the same generation *)
  let v =
    Watchdog.evaluate wd ~now_us ~slo ~log
      ~cache:(cache_stats ~hits:90 ~misses:10 ())
      ~generation:6 ()
  in
  Alcotest.(check bool) "topology cleared" false
    (signal v "topology_generation").Watchdog.firing;
  Alcotest.(check bool) "back to ok" true (v.Watchdog.state = Slo.Ok);
  (* the hit rate collapsing since the previous check fires the cache
     signal: 0.90 -> 0.45 against a 0.2 threshold *)
  let v =
    Watchdog.evaluate wd ~now_us ~slo ~log
      ~cache:(cache_stats ~hits:90 ~misses:110 ())
      ~generation:6 ()
  in
  Alcotest.(check bool) "cache firing" true
    (signal v "cache_hit_rate").Watchdog.firing;
  Alcotest.(check bool) "warning again" true (v.Watchdog.state = Slo.Warning);
  (* a steady rate clears it *)
  let v =
    Watchdog.evaluate wd ~now_us ~slo ~log
      ~cache:(cache_stats ~hits:90 ~misses:110 ())
      ~generation:6 ()
  in
  Alcotest.(check bool) "cache cleared" false
    (signal v "cache_hit_rate").Watchdog.firing;
  Alcotest.(check bool) "ok after recovery" true (v.Watchdog.state = Slo.Ok);
  let s = Json.to_string (Watchdog.verdict_to_json v) in
  check_infix "json state" "\"state\":" s;
  check_infix "json signals" "\"signal\":\"slo_burn\"" s;
  check_infix "json tail" "\"tail_records\":" s;
  Histogram.reset Event_log.query_us

(* ---------------- attribution over a sharded topology ---------------- *)

let test_sharded_attribution_conservation () =
  Histogram.reset Event_log.query_us;
  let topo =
    Uis.load_sharded ~scale:0.003 ~roundtrip_spins:[ 0; 0 ] ~shards:2 ()
  in
  let config = Middleware.Config.(default |> with_tracing true) in
  let mw = Middleware.connect_topology ~config topo in
  let log = Event_log.create () in
  Middleware.set_query_observer mw (Some (Event_log.observe log));
  let sql =
    "VALIDTIME SELECT PosID, COUNT(*) AS CNT FROM POSITION GROUP BY PosID"
  in
  for _ = 1 to 12 do
    ignore (Middleware.query mw sql)
  done;
  Middleware.set_query_observer mw None;
  let records = Event_log.recent log in
  Alcotest.(check int) "every run kept" 12 (List.length records);
  let phase_sum (r : Event_log.record) =
    r.Event_log.parse_us +. r.Event_log.optimize_us
    +. r.Event_log.translate_us +. r.Event_log.mw_exec_us
    +. r.Event_log.transfer_us +. r.Event_log.gather_wait_us
  in
  List.iter
    (fun (r : Event_log.record) ->
      (* POSITION is range-partitioned, so the scan crosses both shards *)
      Alcotest.(check bool) "touches both shards" true
        (List.mem_assoc "shard0" r.Event_log.backends
        && List.mem_assoc "shard1" r.Event_log.backends);
      (* the roll-up phases are exactly the per-backend sums *)
      let sum f =
        List.fold_left (fun acc (_, b) -> acc +. f b) 0.0 r.Event_log.backends
      in
      Alcotest.(check (float 1e-6)) "transfer rolls up"
        r.Event_log.transfer_us
        (sum (fun (b : Middleware.backend_breakdown) -> b.Middleware.us));
      Alcotest.(check (float 1e-6)) "gather-wait rolls up"
        r.Event_log.gather_wait_us
        (sum (fun (b : Middleware.backend_breakdown) -> b.Middleware.wait_us)))
    records;
  (* conservation: the six phases partition the wall time — mw-exec is
     derived as the remainder of execute, so the sum only falls short by
     pipeline overhead outside the measured spans *)
  let sums = List.fold_left (fun acc r -> acc +. phase_sum r) 0.0 records in
  let walls =
    List.fold_left
      (fun acc (r : Event_log.record) -> acc +. r.Event_log.total_us)
      0.0 records
  in
  let ratio = sums /. walls in
  Alcotest.(check bool)
    (Printf.sprintf "phases sum ~ wall (ratio %.3f)" ratio)
    true
    (ratio > 0.5 && ratio <= 1.001);
  (* the watchdog's tail analysis names a backend and a phase *)
  let slo = Slo.create ~objective:slo_objective () in
  Slo.observe slo ~now_us:0.0 ~latency_us:100.0 ~ok:true;
  let generation = Tango_dbms.Topology.generation topo in
  let wd = Watchdog.create ~generation () in
  let v = Watchdog.evaluate wd ~now_us:1e6 ~slo ~log ~generation () in
  (match v.Watchdog.dominant_backend with
  | Some (name, share) ->
      Alcotest.(check bool) "dominant backend is a shard" true
        (name = "shard0" || name = "shard1");
      Alcotest.(check bool) "share in (0,1]" true
        (share > 0.0 && share <= 1.0)
  | None -> Alcotest.fail "no dominant backend");
  Alcotest.(check bool) "dominant phase named" true
    (v.Watchdog.dominant_phase <> None);
  Alcotest.(check bool) "tail non-empty" true (v.Watchdog.tail_records >= 1);
  Histogram.reset Event_log.query_us

(* ---------------- http ---------------- *)

(* Run one request through Http.handle_connection over a socketpair:
   the request fits in the socket buffer and so does the response, so a
   single thread can play both sides. *)
let roundtrip ?(handler = fun (_ : Http.request) -> Http.response "hi\n") raw =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close client with _ -> ());
      try Unix.close server with _ -> ())
    (fun () ->
      let b = Bytes.of_string raw in
      ignore (Unix.write client b 0 (Bytes.length b));
      Unix.shutdown client Unix.SHUTDOWN_SEND;
      Http.handle_connection server handler;
      Unix.shutdown server Unix.SHUTDOWN_SEND;
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read client chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf)

let test_http_parse_and_respond () =
  let seen = ref None in
  let handler (req : Http.request) =
    seen := Some req;
    Http.response ("path=" ^ req.Http.path ^ "\n")
  in
  let out =
    roundtrip ~handler
      "GET /queries?n=5&q=a%20b+c HTTP/1.1\r\nHost: x\r\nX-Tag: v\r\n\r\n"
  in
  check_infix "status line" "HTTP/1.1 200 OK" out;
  check_infix "connection close" "Connection: close" out;
  check_infix "body" "path=/queries" out;
  match !seen with
  | None -> Alcotest.fail "handler not invoked"
  | Some req ->
      Alcotest.(check string) "method" "GET" req.Http.meth;
      Alcotest.(check (option string)) "query n" (Some "5")
        (List.assoc_opt "n" req.Http.query);
      Alcotest.(check (option string)) "percent+plus decoding" (Some "a b c")
        (List.assoc_opt "q" req.Http.query);
      Alcotest.(check (option string)) "header lowercased" (Some "v")
        (List.assoc_opt "x-tag" req.Http.headers)

let test_http_post_body () =
  let handler (req : Http.request) =
    Http.response ~status:200 ("got:" ^ req.Http.body)
  in
  let body = "VALIDTIME SELECT 1" in
  let raw =
    Printf.sprintf "POST /query HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
      (String.length body) body
  in
  check_infix "body delivered" "got:VALIDTIME SELECT 1"
    (roundtrip ~handler raw)

let test_http_errors () =
  check_infix "malformed request line" "HTTP/1.1 400"
    (roundtrip "NONSENSE\r\n\r\n");
  check_infix "handler exception is a 500" "HTTP/1.1 500"
    (roundtrip ~handler:(fun _ -> failwith "boom") "GET / HTTP/1.1\r\n\r\n");
  check_infix "truncated body is a 400" "HTTP/1.1 400"
    (roundtrip "POST /q HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")

(* a real accept loop over a loopback socket, exercised from a forked
   client process (the server runs in this process) *)
let test_http_live_socket () =
  let sock = Http.listen ~port:0 () in
  let port = Http.bound_port sock in
  let requests = 3 in
  match Unix.fork () with
  | 0 ->
      (* child: play HTTP client, then exit without alcotest teardown *)
      let ok = ref true in
      (try
         for _ = 1 to requests do
           let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
           Unix.connect fd
             (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
           let raw = "GET /healthz HTTP/1.1\r\n\r\n" in
           let b = Bytes.of_string raw in
           ignore (Unix.write fd b 0 (Bytes.length b));
           let buf = Buffer.create 128 in
           let chunk = Bytes.create 1024 in
           (try
              let rec drain () =
                let n = Unix.read fd chunk 0 (Bytes.length chunk) in
                if n > 0 then begin
                  Buffer.add_subbytes buf chunk 0 n;
                  drain ()
                end
              in
              drain ()
            with _ -> ());
           Unix.close fd;
           if not (is_infix ~affix:"HTTP/1.1 200 OK" (Buffer.contents buf))
           then ok := false
         done
       with _ -> ok := false);
      Unix._exit (if !ok then 0 else 1)
  | pid ->
      Http.accept_loop ~max_requests:requests sock (fun _ ->
          Http.response "ok\n");
      Unix.close sock;
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "client saw 200s" true (status = Unix.WEXITED 0)

(* ---------------- endpoints over a live middleware ---------------- *)

let make_endpoints ?log ?slo () =
  let db = Tango_dbms.Database.create () in
  Uis.load ~scale:0.003 db;
  let config =
    Middleware.Config.(
      default |> with_roundtrip_spin 0 |> with_tracing true
      |> with_profiling true)
  in
  let mw = Middleware.connect ~config db in
  Endpoints.create ?log ?slo mw

let get ep path =
  Endpoints.handler ep
    { Http.meth = "GET"; path; query = []; headers = []; body = "" }

let post ep path body =
  Endpoints.handler ep
    { Http.meth = "POST"; path; query = []; headers = []; body }

let counter_sample body name =
  (* the un-labelled sample line "NAME <int>" of a family *)
  let v = ref None in
  List.iter
    (fun line ->
      match String.index_opt line ' ' with
      | Some i when String.sub line 0 i = name ->
          v :=
            int_of_string_opt
              (String.sub line (i + 1) (String.length line - i - 1))
      | _ -> ())
    (String.split_on_char '\n' body);
  !v

let get_q ep path query headers =
  Endpoints.handler ep
    { Http.meth = "GET"; path; query; headers; body = "" }

let test_endpoints_end_to_end () =
  Counter.reset Event_log.queries_total;
  Counter.reset Event_log.query_errors;
  Histogram.reset Event_log.query_us;
  let ep = make_endpoints ~log:(Event_log.create ~capacity:64 ()) () in
  Alcotest.(check int) "healthz" 200 (get ep "/healthz").Http.status;
  check_infix "healthz json" "\"topology_generation\":"
    (get ep "/healthz").Http.body;
  check_infix "healthz build identity" "\"ocaml_version\":"
    (get ep "/healthz").Http.body;
  check_infix "healthz git describe" "\"git\":" (get ep "/healthz").Http.body;
  check_infix "healthz domain count" "\"domains\":"
    (get ep "/healthz").Http.body;
  Alcotest.(check string) "healthz plain for probes" "ok\n"
    (get_q ep "/healthz" [ ("plain", "1") ] []).Http.body;
  (* drive >= 100 queries through POST /query, one of them invalid *)
  let sql = "VALIDTIME SELECT PosID, COUNT(*) AS CNT FROM POSITION GROUP BY PosID" in
  for _ = 1 to 100 do
    let resp = post ep "/query" sql in
    Alcotest.(check int) "query ok" 200 resp.Http.status;
    check_infix "result json" "\"rows\":" resp.Http.body
  done;
  let bad = post ep "/query" "SELECT FROM WHERE" in
  Alcotest.(check int) "bad sql is a 400" 400 bad.Http.status;
  check_infix "error json" "\"error\":" bad.Http.body;
  Alcotest.(check int) "empty body is a 400" 400
    (post ep "/query" "  ").Http.status;
  (* /metrics reflects exactly the observed runs, with latency buckets *)
  let metrics = get ep "/metrics" in
  Alcotest.(check int) "metrics ok" 200 metrics.Http.status;
  Alcotest.(check string) "content type" Prometheus.content_type
    metrics.Http.content_type;
  Alcotest.(check (option int)) "queries counted" (Some 101)
    (counter_sample metrics.Http.body "tango_monitor_queries");
  Alcotest.(check (option int)) "errors counted" (Some 1)
    (counter_sample metrics.Http.body "tango_monitor_query_errors");
  check_infix "latency buckets"
    "tango_monitor_query_us_bucket{le=\"+Inf\"} 101" metrics.Http.body;
  check_infix "slo gauges" "tango_monitor_slo_state" metrics.Http.body;
  check_infix "middleware counters too" "tango_client_roundtrips"
    metrics.Http.body;
  (* the telemetry families: per-lock contention, build identity, and
     GC/alloc attribution (whole-run counters plus per-domain gauges) *)
  check_infix "lock acquire counters" "tango_lock_acquires{lock="
    metrics.Http.body;
  check_infix "lock wait histograms" "tango_lock_wait_us_bucket{lock="
    metrics.Http.body;
  check_infix "build info gauge" "tango_build_info{ocaml=" metrics.Http.body;
  check_infix "heap gauges" "tango_gc_heap_words" metrics.Http.body;
  check_infix "per-domain gc gauges" "tango_gc_domain_alloc_bytes{domain="
    metrics.Http.body;
  check_infix "allocation attribution counters" "tango_alloc_mw_exec_bytes"
    metrics.Http.body;
  (* openmetrics negotiation: exemplars appear and # EOF closes the
     exposition; both the Accept header and ?format=openmetrics work *)
  let om =
    get_q ep "/metrics" []
      [ ("accept", "application/openmetrics-text; version=1.0.0") ]
  in
  Alcotest.(check string) "openmetrics content type"
    Prometheus.openmetrics_content_type om.Http.content_type;
  check_infix "exemplar syntax" "# {seq=\"" om.Http.body;
  Alcotest.(check string) "eof is the last line" "# EOF\n"
    (String.sub om.Http.body (String.length om.Http.body - 6) 6);
  Alcotest.(check string) "format param negotiates too"
    Prometheus.openmetrics_content_type
    (get_q ep "/metrics" [ ("format", "openmetrics") ] []).Http.content_type;
  Alcotest.(check string) "plain scrape unchanged" Prometheus.content_type
    (get ep "/metrics").Http.content_type;
  (* /queries returns the sampled log, newest first *)
  let queries = get ep "/queries" in
  Alcotest.(check int) "queries ok" 200 queries.Http.status;
  check_infix "log has the statement" "VALIDTIME SELECT" queries.Http.body;
  check_infix "failures kept" "\"kept\":\"failed\"" queries.Http.body;
  Alcotest.(check int) "log saw every run" 101
    (Event_log.seen (Endpoints.event_log ep));
  (* /queries/<seq> drill-down: full record, phases, grafted trace *)
  let kept_record =
    List.find
      (fun (r : Event_log.record) -> r.Event_log.error = None)
      (Event_log.recent (Endpoints.event_log ep))
  in
  let drill =
    get ep (Printf.sprintf "/queries/%d" kept_record.Event_log.seq)
  in
  Alcotest.(check int) "drill-down ok" 200 drill.Http.status;
  check_infix "phase breakdown" "\"phases\":" drill.Http.body;
  check_infix "per-phase allocation" "\"mw_exec_alloc_bytes\":" drill.Http.body;
  check_infix "whole-run gc deltas" "\"gc\":" drill.Http.body;
  check_infix "per-backend breakdown" "\"backends\":" drill.Http.body;
  check_infix "grafted trace" "\"traceEvents\":" drill.Http.body;
  Alcotest.(check int) "non-numeric seq" 400
    (get ep "/queries/abc").Http.status;
  Alcotest.(check int) "unknown seq" 404
    (get ep "/queries/999999").Http.status;
  (* /debug/watchdog correlates the drill-down signals *)
  let wd = get ep "/debug/watchdog" in
  Alcotest.(check int) "watchdog ok" 200 wd.Http.status;
  check_infix "watchdog state" "\"state\":" wd.Http.body;
  check_infix "watchdog signals" "\"signal\":\"slo_burn\"" wd.Http.body;
  check_infix "watchdog names the sensitivity signal"
    "\"signal\":\"parameter_sensitive_plan\"" wd.Http.body;
  check_infix "watchdog tail" "\"tail_records\":" wd.Http.body;
  (* /debug/contention ranks the named locks by wait share *)
  let cont = get ep "/debug/contention" in
  Alcotest.(check int) "contention ok" 200 cont.Http.status;
  check_infix "profiling enabled" "\"enabled\":true" cont.Http.body;
  check_infix "total wait" "\"total_wait_us\":" cont.Http.body;
  check_infix "per-lock entries" "\"locks\":" cont.Http.body;
  check_infix "a named serve-path lock" "\"name\":\"monitor.event_log\""
    cont.Http.body;
  check_infix "derived wait share" "\"wait_share\":" cont.Http.body;
  Alcotest.(check int) "contention wrong method" 405
    (post ep "/debug/contention" "").Http.status;
  (* /slo, /trace, dispatch edges *)
  Alcotest.(check int) "slo ok" 200 (get ep "/slo").Http.status;
  check_infix "slo verdict" "\"state\":" (get ep "/slo").Http.body;
  Alcotest.(check int) "trace present" 200 (get ep "/trace").Http.status;
  check_infix "chrome envelope" "traceEvents" (get ep "/trace").Http.body;
  Alcotest.(check int) "unknown path" 404 (get ep "/nope").Http.status;
  Alcotest.(check int) "wrong method" 405 (post ep "/metrics" "").Http.status

let test_endpoints_slo_degrades () =
  (* a synthetic 1us latency objective: every real query is "slow", so
     sustained traffic drives the verdict to critical *)
  let slo =
    Slo.create
      ~objective:{ slo_objective with Slo.latency_us = 1.0 }
      ()
  in
  let ep = make_endpoints ~slo () in
  for _ = 1 to 10 do
    ignore (post ep "/query" "VALIDTIME SELECT PosID FROM POSITION")
  done;
  let v =
    Slo.evaluate (Endpoints.slo ep) ~now_us:(Tango_obs.now_us ())
  in
  Alcotest.(check bool) "degraded under slow traffic" true
    (v.Slo.state = Slo.Critical);
  check_infix "reported over http" "\"state\":\"critical\""
    (get ep "/slo").Http.body

let () =
  Alcotest.run "tango_monitor"
    [
      ( "obs buckets",
        [
          Alcotest.test_case "fixed exponential buckets" `Quick
            test_histogram_buckets;
          Alcotest.test_case "registry diff of histograms" `Quick
            test_registry_diff_histograms;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "golden exposition text" `Quick
            test_prometheus_golden;
          Alcotest.test_case "names, gauges, labels" `Quick
            test_prometheus_names_and_gauges;
          Alcotest.test_case "lock profile families" `Quick
            test_prometheus_lock_profile;
          Alcotest.test_case "runtime gauges" `Quick
            test_prometheus_runtime_gauges;
          Alcotest.test_case "openmetrics exemplars" `Quick
            test_prometheus_exemplars;
        ] );
      ( "chrome trace",
        [
          Alcotest.test_case "event layout" `Quick test_chrome_trace_layout;
          Alcotest.test_case "json envelope" `Quick test_chrome_trace_json;
          Alcotest.test_case "backend lanes" `Quick test_chrome_backend_lanes;
        ] );
      ( "event log",
        [
          Alcotest.test_case "ring eviction" `Quick test_event_log_eviction;
          Alcotest.test_case "head sampling" `Quick test_event_log_sampling;
          Alcotest.test_case "slow/failed overrides" `Quick
            test_event_log_overrides;
          Alcotest.test_case "aggregate metrics" `Quick test_event_log_metrics;
          Alcotest.test_case "json" `Quick test_event_log_json;
          Alcotest.test_case "tail keep and exemplars" `Quick
            test_event_log_tail_exemplars;
        ] );
      ( "slo",
        [
          Alcotest.test_case "latency transitions" `Quick test_slo_transitions;
          Alcotest.test_case "availability" `Quick test_slo_availability;
          Alcotest.test_case "json and gauges" `Quick test_slo_json_and_gauges;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "signal transitions" `Quick
            test_watchdog_transitions;
          Alcotest.test_case "parameter sensitivity signal" `Quick
            test_watchdog_parameter_sensitivity;
          Alcotest.test_case "sharded attribution conservation" `Quick
            test_sharded_attribution_conservation;
        ] );
      ( "http",
        [
          Alcotest.test_case "parse and respond" `Quick
            test_http_parse_and_respond;
          Alcotest.test_case "post body" `Quick test_http_post_body;
          Alcotest.test_case "errors" `Quick test_http_errors;
          Alcotest.test_case "live socket" `Quick test_http_live_socket;
        ] );
      ( "endpoints",
        [
          Alcotest.test_case "100 queries end to end" `Quick
            test_endpoints_end_to_end;
          Alcotest.test_case "slo degrades under slow traffic" `Quick
            test_endpoints_slo_degrades;
        ] );
    ]
