(* Tests for the Tango_profile subsystem: q-error math, plan-fragment
   fingerprint stability, the feedback store, the regression sentinel,
   adaptive refitting, and the end-to-end analysis field on middleware
   reports. *)

open Tango_rel
open Tango_algebra
open Tango_core
open Tango_workload
open Tango_profile

module Ast = Tango_sql.Ast
module Physical = Tango_volcano.Physical

(* ---------------- q-error ---------------- *)

let test_q_error () =
  Alcotest.(check (float 1e-9)) "perfect" 1.0
    (Analyze.q_error ~est:42.0 ~actual:42.0 ());
  Alcotest.(check (float 1e-9)) "2x over" 2.0
    (Analyze.q_error ~est:10.0 ~actual:5.0 ());
  Alcotest.(check (float 1e-9)) "symmetric" 2.0
    (Analyze.q_error ~est:5.0 ~actual:10.0 ());
  (* the floor keeps empty results from exploding the metric *)
  Alcotest.(check (float 1e-9)) "both zero" 1.0
    (Analyze.q_error ~est:0.0 ~actual:0.0 ());
  Alcotest.(check (float 1e-9)) "zero actual, floored" 7.0
    (Analyze.q_error ~est:7.0 ~actual:0.0 ());
  Alcotest.(check (float 1e-9)) "custom floor" 3.5
    (Analyze.q_error ~floor:2.0 ~est:7.0 ~actual:0.0 ())

(* ---------------- fingerprints ---------------- *)

let scan ?alias () = Op.scan ?alias "POSITION" Uis.position_schema

let sel ?alias ~value base =
  Op.select
    (Ast.Binop
       (Ast.Lt, Ast.Col (alias, "PosID"), Ast.Lit (Value.Int value)))
    base

let test_fingerprint_alias_insensitive () =
  (* the same query under different table aliases is the same fragment *)
  let a = sel ~alias:"A" ~value:10 (scan ~alias:"A" ()) in
  let b = sel ~alias:"B" ~value:10 (scan ~alias:"B" ()) in
  Alcotest.(check string) "alias renames do not change the fingerprint"
    (Physical.op_fingerprint a) (Physical.op_fingerprint b)

let test_fingerprint_strips_literals () =
  (* different constants of a parameterized query share a fingerprint *)
  let a = sel ~value:10 (scan ()) in
  let b = sel ~value:99 (scan ()) in
  Alcotest.(check string) "literals are stripped"
    (Physical.op_fingerprint a) (Physical.op_fingerprint b)

let test_fingerprint_distinguishes_shapes () =
  let plain = scan () in
  let filtered = sel ~value:10 (scan ()) in
  Alcotest.(check bool) "select vs scan differ" true
    (Physical.op_fingerprint plain <> Physical.op_fingerprint filtered);
  let other = Op.scan "EMPLOYEE" Uis.employee_schema in
  Alcotest.(check bool) "different tables differ" true
    (Physical.op_fingerprint plain <> Physical.op_fingerprint other)

(* ---------------- sentinel ---------------- *)

let test_sentinel_slow_query () =
  let s = Sentinel.create () in
  let events =
    Sentinel.observe s ~fingerprint:"q1" ~signature:"planA"
      ~slow_threshold_us:1000.0 ~elapsed_us:500.0 ()
  in
  Alcotest.(check int) "fast run not flagged" 0 (List.length events);
  let events =
    Sentinel.observe s ~fingerprint:"q1" ~signature:"planA"
      ~slow_threshold_us:1000.0 ~elapsed_us:5000.0 ()
  in
  (match events with
  | [ Sentinel.Slow { elapsed_us; threshold_us } ] ->
      Alcotest.(check (float 1e-9)) "elapsed" 5000.0 elapsed_us;
      Alcotest.(check (float 1e-9)) "threshold" 1000.0 threshold_us
  | _ -> Alcotest.fail "expected one Slow event");
  Alcotest.(check int) "logged" 1 (List.length (Sentinel.log s))

let test_sentinel_regression () =
  let s = Sentinel.create ~regression_ratio:1.5 () in
  (* establish a best plan *)
  ignore
    (Sentinel.observe s ~fingerprint:"q" ~signature:"planA" ~elapsed_us:100.0 ());
  Alcotest.(check bool) "best recorded" true
    (Sentinel.best s "q" = Some ("planA", 100.0));
  (* same plan slower: variance, not a regression *)
  let ev =
    Sentinel.observe s ~fingerprint:"q" ~signature:"planA" ~elapsed_us:400.0 ()
  in
  Alcotest.(check int) "same plan never regresses" 0 (List.length ev);
  (* different plan, under the ratio: fine *)
  let ev =
    Sentinel.observe s ~fingerprint:"q" ~signature:"planB" ~elapsed_us:140.0 ()
  in
  Alcotest.(check int) "within ratio" 0 (List.length ev);
  (* different plan, past the ratio: regression *)
  let ev =
    Sentinel.observe s ~fingerprint:"q" ~signature:"planB" ~elapsed_us:400.0 ()
  in
  (match ev with
  | [ Sentinel.Regression { best_signature; chosen_signature; best_us; _ } ] ->
      Alcotest.(check string) "best plan named" "planA" best_signature;
      Alcotest.(check string) "chosen plan named" "planB" chosen_signature;
      Alcotest.(check (float 1e-9)) "best latency" 100.0 best_us
  | _ -> Alcotest.fail "expected one Regression event");
  (* a faster run improves the best *)
  ignore
    (Sentinel.observe s ~fingerprint:"q" ~signature:"planB" ~elapsed_us:50.0 ());
  Alcotest.(check bool) "best advanced" true
    (Sentinel.best s "q" = Some ("planB", 50.0));
  (* separate queries do not interact *)
  let ev =
    Sentinel.observe s ~fingerprint:"other" ~signature:"planZ"
      ~elapsed_us:9999.0 ()
  in
  Alcotest.(check int) "fresh query never regresses" 0 (List.length ev)

(* ---------------- feedback store + adaptation ---------------- *)

let run_profiled mw sql =
  match (Middleware.query mw sql).Middleware.analysis with
  | Some a -> a
  | None -> Alcotest.fail "profiling enabled but no analysis on the report"

let setup ?(config = Middleware.Config.default) () =
  let db = Tango_dbms.Database.create () in
  Uis.load ~scale:0.005 db;
  let config = Middleware.Config.with_roundtrip_spin 0 config in
  Middleware.connect ~config db

let test_feedback_store_accumulates () =
  let mw =
    setup ~config:Middleware.Config.(default |> with_profiling true) ()
  in
  let a1 = run_profiled mw Queries.q1_sql in
  let a2 = run_profiled mw Queries.q1_sql in
  Alcotest.(check string) "stable plan fingerprint" a1.Analyze.fingerprint
    a2.Analyze.fingerprint;
  let store = Middleware.profile_store mw in
  Alcotest.(check int) "two queries recorded" 2 (Feedback.queries store);
  (* every fragment of the analyzed plan is aggregated with 2 executions *)
  List.iter
    (fun (r : Analyze.record) ->
      match Feedback.find store r.Analyze.fingerprint with
      | Some s ->
          Alcotest.(check int)
            (r.Analyze.operator ^ " executions")
            2 s.Feedback.executions;
          Alcotest.(check bool) "q >= 1" true (s.Feedback.mean_q_cost >= 1.0)
      | None -> Alcotest.fail ("fragment not aggregated: " ^ r.Analyze.operator))
    a1.Analyze.records;
  Alcotest.(check bool) "observations collected" true
    (Feedback.observations store <> [])

let test_analysis_report_sanity () =
  let mw =
    setup ~config:Middleware.Config.(default |> with_profiling true) ()
  in
  let a = run_profiled mw Queries.q1_sql in
  Alcotest.(check bool) "has per-operator records" true
    (List.length a.Analyze.records > 1);
  let root = List.hd a.Analyze.records in
  Alcotest.(check int) "root at depth 0" 0 root.Analyze.depth;
  List.iter
    (fun (r : Analyze.record) ->
      Alcotest.(check bool) (r.Analyze.operator ^ " q_rows >= 1") true
        (r.Analyze.q_rows >= 1.0);
      Alcotest.(check bool) (r.Analyze.operator ^ " q_cost >= 1") true
        (r.Analyze.q_cost >= 1.0))
    a.Analyze.records;
  (* the transfer operator carries roundtrip accounting *)
  Alcotest.(check bool) "a transfer with roundtrips" true
    (List.exists
       (fun (r : Analyze.record) ->
         r.Analyze.operator = "TRANSFER^M" && r.Analyze.act_roundtrips > 0
         && r.Analyze.est_roundtrips > 0.0)
       a.Analyze.records);
  (* rendering works and mentions every operator *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  let txt = Analyze.to_string a in
  List.iter
    (fun (r : Analyze.record) ->
      Alcotest.(check bool) ("render mentions " ^ r.Analyze.operator) true
        (contains txt r.Analyze.operator))
    a.Analyze.records

let test_profiling_off_no_analysis () =
  let mw = setup () in
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "no analysis by default" true
    (r.Middleware.analysis = None);
  Alcotest.(check int) "store untouched" 0
    (Feedback.queries (Middleware.profile_store mw))

let test_adaptive_refit_triggers () =
  let mw =
    setup ~config:Middleware.Config.(default |> with_adaptive_costs true) ()
  in
  (* make the cost model wildly optimistic about transfers so the
     misestimation threshold is certainly crossed *)
  let factors = Middleware.factors mw in
  ignore (Tango_cost.Factors.set_by_name factors "p_tm" 1e-6);
  let before = Tango_cost.Factors.get_by_name factors "p_tm" in
  for _ = 1 to 4 do
    ignore (Middleware.query mw Queries.q1_sql)
  done;
  let after = Tango_cost.Factors.get_by_name factors "p_tm" in
  (match (before, after) with
  | Some b, Some a ->
      Alcotest.(check bool) "p_tm refitted upward" true (a > b)
  | _ -> Alcotest.fail "factor lookup failed");
  (* the refit cleared the evidence window (queries counter restarted) *)
  Alcotest.(check bool) "window cleared after refit" true
    (Feedback.queries (Middleware.profile_store mw) < 4)

let test_adapt_noop_when_accurate () =
  (* synthetic store where estimates are perfect: no refit *)
  let store = Feedback.create () in
  let factors = Tango_cost.Factors.default () in
  let report =
    {
      Analyze.records = [];
      fingerprint = "x";
      mean_q_rows = 1.0;
      mean_q_cost = 1.0;
      max_q_rows = 1.0;
      max_q_cost = 1.0;
      total_est_us = 1.0;
      total_act_us = 1.0;
      observations = [];
    }
  in
  Feedback.record store report;
  Alcotest.(check bool) "no refit on empty evidence" true
    (Adapt.maybe_refit store ~factors = None)

let () =
  Alcotest.run "profile"
    [
      ( "q-error",
        [ Alcotest.test_case "definition" `Quick test_q_error ] );
      ( "fingerprint",
        [
          Alcotest.test_case "alias insensitive" `Quick
            test_fingerprint_alias_insensitive;
          Alcotest.test_case "literals stripped" `Quick
            test_fingerprint_strips_literals;
          Alcotest.test_case "shapes distinguished" `Quick
            test_fingerprint_distinguishes_shapes;
        ] );
      ( "sentinel",
        [
          Alcotest.test_case "slow query" `Quick test_sentinel_slow_query;
          Alcotest.test_case "plan regression" `Quick test_sentinel_regression;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "store accumulates" `Quick
            test_feedback_store_accumulates;
          Alcotest.test_case "analysis sanity" `Quick
            test_analysis_report_sanity;
          Alcotest.test_case "off by default" `Quick
            test_profiling_off_no_analysis;
          Alcotest.test_case "adaptive refit" `Quick
            test_adaptive_refit_triggers;
          Alcotest.test_case "no-op when accurate" `Quick
            test_adapt_noop_when_accurate;
        ] );
    ]
