(* Tests for the static plan verifier (Tango_verify.Check) and the
   per-rule soundness gate (Tango_verify.Gate): clean plans verify clean,
   broken plans are diagnosed, mis-ordered inputs to order-sensitive
   middleware algorithms are flagged, and an injected unsound
   transformation rule is caught and attributed by name. *)

open Tango_rel
open Tango_sql
open Tango_algebra
open Tango_volcano
open Tango_verify

let col ?q c = Ast.Col (q, c)

let pos_schema =
  Schema.make
    [ ("PosID", Value.TInt); ("EmpName", Value.TStr);
      ("PayRate", Value.TFloat); ("T1", Value.TDate); ("T2", Value.TDate) ]

let scan ?alias () = Op.scan ?alias "POSITION" pos_schema

let errors_of ds = List.filter Diag.is_error ds
let errors_in family ds =
  List.filter (fun d -> Diag.is_error d && String.equal d.Diag.family family) ds

let check_family name family ds =
  Alcotest.(check bool)
    (Printf.sprintf "%s: has %s error" name family)
    true
    (errors_in family ds <> [])

(* ---------- logical checks ---------- *)

let test_logical_clean () =
  let op =
    Op.to_mw
      (Op.select (Ast.Binop (Ast.Eq, col ~q:"POSITION" "PosID", Ast.Lit (Value.Int 7)))
         (scan ()))
  in
  let ds = Check.check_logical ~expect_root:Op.Mw op in
  Alcotest.(check int) "no errors" 0 (Diag.count_errors ds)

let test_unresolved_attribute () =
  let op = Op.to_mw (Op.select (col "NoSuchColumn") (scan ())) in
  let ds = Check.check_logical op in
  check_family "unresolved" "schema" ds

let test_bad_transfer_pairing () =
  (* T^M over an already-middleware-resident subtree: built with the raw
     constructors, since the smart constructors refuse it. *)
  let op = Op.To_mw (Op.To_mw (scan ())) in
  let ds = Check.check_logical op in
  check_family "tm-over-mw" "boundary" ds

let test_untranslatable_subtree () =
  (* COALESCE has no SQL rendering, so a DBMS-resident coalesce under a
     T^M must be diagnosed as untranslatable. *)
  let op = Op.To_mw (Op.Coalesce (scan ())) in
  let ds = Check.check_logical op in
  check_family "coalesce-in-db" "boundary" ds

let test_root_location_mismatch () =
  let op = scan () in
  let ds = Check.check_logical ~expect_root:Op.Mw op in
  check_family "db-root" "boundary" ds

(* ---------- physical plan helpers ---------- *)

let pplan ?(own = 1.0) ?(order = []) ?(loc = Op.Mw) algorithm op children =
  let total =
    own +. List.fold_left (fun a c -> a +. c.Physical.total_cost) 0.0 children
  in
  {
    Physical.algorithm;
    op;
    children;
    own_cost = own;
    total_cost = total;
    out_order = order;
    location = loc;
    shards = [];
  }

let leaf ?alias () = pplan ~loc:Op.Db Physical.Table_scan_d (scan ?alias ()) []

let tm ?alias () =
  let child = leaf ?alias () in
  pplan Physical.Transfer_m_algo (Op.to_mw child.Physical.op) [ child ]

let sort_m order child =
  pplan ~order Physical.Sort_m
    (Op.Sort { order; arg = child.Physical.op })
    [ child ]

(* ---------- physical checks: ordering dataflow ---------- *)

let join_pred = Ast.Binop (Ast.Eq, col ~q:"A" "PosID", col ~q:"B" "PosID")

let merge_join left right ~order =
  pplan ~order Physical.Merge_join_m
    (Op.Join { pred = join_pred; left = left.Physical.op; right = right.Physical.op })
    [ left; right ]

let test_merge_join_unordered_flagged () =
  let p = merge_join (tm ~alias:"A" ()) (tm ~alias:"B" ()) ~order:[] in
  let ds = Check.check_physical p in
  check_family "merge join over unsorted inputs" "ordering" ds

let test_merge_join_sorted_clean () =
  let left = sort_m [ Order.asc "A.PosID" ] (tm ~alias:"A" ()) in
  let right = sort_m [ Order.asc "B.PosID" ] (tm ~alias:"B" ()) in
  let p = merge_join left right ~order:[ Order.asc "A.PosID" ] in
  let ds = Check.check_physical p in
  Alcotest.(check int) "no errors" 0 (Diag.count_errors ds)

let test_bogus_order_claim_flagged () =
  (* The node claims an output order the dataflow cannot confirm. *)
  let p = pplan ~order:[ Order.asc "A.PosID" ] Physical.Transfer_m_algo
      (Op.to_mw (scan ~alias:"A" ()))
      [ leaf ~alias:"A" () ]
  in
  let ds = Check.check_physical p in
  check_family "bogus claimed order" "ordering" ds

let taggr ~group_by child ~order =
  pplan ~order Physical.Taggr_m
    (Op.Temporal_aggregate
       { group_by; aggs = [ Op.count_star "CNT" ]; arg = child.Physical.op })
    [ child ]

let test_taggr_misordered_flagged () =
  (* Input sorted on T1 only; TAGGR^M needs (EmpName, T1). *)
  let child = sort_m [ Order.asc "POSITION.T1" ] (tm ()) in
  let group_by = [ "POSITION.EmpName" ] in
  let p =
    taggr ~group_by child
      ~order:(Tango_xxl.Ordering.taggr_output ~group_by)
  in
  let ds = Check.check_physical p in
  check_family "taggr over mis-ordered input" "ordering" ds

let test_taggr_ordered_clean () =
  let group_by = [ "POSITION.EmpName" ] in
  let input_order =
    Tango_xxl.Ordering.taggr_input
      (Op.schema (Op.to_mw (scan ()))) ~group_by
  in
  let child = sort_m input_order (tm ()) in
  let p =
    taggr ~group_by child
      ~order:(Tango_xxl.Ordering.taggr_output ~group_by)
  in
  let ds = Check.check_physical p in
  Alcotest.(check int) "no errors" 0 (Diag.count_errors ds)

let test_dupelim_unsorted_flagged () =
  let child = tm () in
  let p =
    pplan Physical.Dupelim_m (Op.Dup_elim child.Physical.op) [ child ]
  in
  let ds = Check.check_physical p in
  check_family "dupelim over unsorted input" "ordering" ds

let test_dupelim_sorted_clean () =
  let child0 = tm () in
  let order =
    Tango_xxl.Ordering.dup_elim_input (Op.schema child0.Physical.op)
  in
  let child = sort_m order child0 in
  let p =
    pplan ~order Physical.Dupelim_m (Op.Dup_elim child.Physical.op) [ child ]
  in
  let ds = Check.check_physical p in
  Alcotest.(check int) "no errors" 0 (Diag.count_errors ds)

(* ---------- physical checks: estimates ---------- *)

let test_nan_cost_flagged () =
  let child = leaf () in
  let p =
    {
      (pplan Physical.Transfer_m_algo (Op.to_mw child.Physical.op) [ child ]) with
      Physical.own_cost = Float.nan;
      total_cost = Float.nan;
    }
  in
  let ds = Check.check_physical p in
  check_family "NaN cost" "estimates" ds

(* ---------- the tjoin output-order regression ---------- *)

(* A temporal merge join on a *period* attribute must not claim output
   order on that attribute: the output period is the intersection, so the
   input's T1 order does not survive.  (Found by the per-rule gate work;
   previously the planner claimed [asc "A.T1"] here because the base-name
   lookup resolved "A.T1" to the output's unqualified "T1".) *)
let tjoin_out_schema =
  Schema.make
    [ ("A.PosID", Value.TInt); ("B.PosID", Value.TInt);
      ("T1", Value.TDate); ("T2", Value.TDate) ]

let test_tjoin_period_key_claims_no_order () =
  Alcotest.(check bool) "period join key: no order claim" true
    (Tango_xxl.Ordering.merge_join_output ~temporal:true tjoin_out_schema
       ~left_key:"A.T1"
     = []);
  Alcotest.(check bool) "surviving non-period key: order claimed" true
    (Tango_xxl.Ordering.merge_join_output ~temporal:true tjoin_out_schema
       ~left_key:"A.PosID"
     = [ Order.asc "A.PosID" ])

(* ---------- Tango_xxl.Sort satisfies the inferred order ---------- *)

let test_sort_satisfies_inferred_order () =
  let tuples =
    List.init 97 (fun i ->
        Tuple.of_list
          [ Value.Int (i * 37 mod 17); Value.Str (Printf.sprintf "e%d" (i mod 5));
            Value.Float (float_of_int (i * 13 mod 7));
            Value.Date (i * 11 mod 23); Value.Date (100 + (i mod 3)) ])
  in
  let r = Relation.of_list pos_schema tuples in
  let order = Tango_xxl.Ordering.dup_elim_input pos_schema in
  let out =
    Tango_xxl.Cursor.to_relation
      (Tango_xxl.Sort.sort order (Tango_xxl.Cursor.of_relation r))
  in
  let cmp = Order.comparator order pos_schema in
  let ts = Relation.tuples out in
  let ok = ref true in
  Array.iteri (fun i t -> if i > 0 && cmp ts.(i - 1) t > 0 then ok := false) ts;
  Alcotest.(check bool) "output satisfies declared order" true !ok;
  Alcotest.(check int) "cardinality preserved" (List.length tuples)
    (Relation.cardinality out)

(* ---------- the per-rule gate ---------- *)

(* An intentionally unsound rule: "commutes" a join by swapping its
   children without compensating, so the new element's output schema is
   the reverse concatenation — not equivalent to the rest of the class. *)
let bad_commute : Rules.rule =
  {
    Rules.name = "X-bad-commute";
    apply =
      (fun m c el ->
        match el with
        | Memo.N_join { pred; left; right } when left <> right ->
            Memo.add_to_class m c (Memo.N_join { pred; left = right; right = left })
        | _ -> false);
  }

let join_op () =
  Op.join join_pred (scan ~alias:"A" ()) (scan ~alias:"B" ())

let test_gate_catches_injected_rule () =
  let m = Memo.create () in
  let _c = Memo.insert_op m (join_op ()) in
  let g = Gate.create () in
  Rules.saturate ~rules:(Rules.all @ [ bad_commute ]) ~observer:(Gate.observer g) m;
  let ds = Gate.diagnostics g in
  Alcotest.(check bool) "gate fired" true (Gate.checked g > 0);
  Alcotest.(check bool) "gate reports errors" true (Diag.has_errors ds);
  let attributed =
    List.exists
      (fun d -> Diag.is_error d && d.Diag.rule = Some "X-bad-commute")
      ds
  in
  Alcotest.(check bool) "attributed to the injected rule" true attributed;
  (* No sound rule gets blamed. *)
  List.iter
    (fun d ->
      match d.Diag.rule with
      | Some r ->
          Alcotest.(check string) "only the injected rule is blamed"
            "X-bad-commute" r
      | None -> ())
    (errors_of ds)

let test_gate_clean_on_sound_rules () =
  let m = Memo.create () in
  let _c = Memo.insert_op m (Op.to_mw (join_op ())) in
  let g = Gate.create () in
  Rules.saturate ~observer:(Gate.observer g) m;
  Alcotest.(check bool) "gate examined rule applications" true (Gate.checked g > 0);
  Alcotest.(check int) "no diagnostics from the stock rules" 0
    (List.length (Gate.diagnostics g))

(* ---------- the full pipeline under the per-rule gate ---------- *)

(* Every workload query must optimize cleanly with verification at its
   strictest setting (this is the rule-soundness sweep of the whole stock
   rule set over realistic plans). *)
let test_workload_verifies_clean () =
  let db = Tango_dbms.Database.create () in
  Tango_workload.Uis.load ~scale:0.002 db;
  let config =
    Tango_core.Middleware.Config.(
      default |> with_verify_plans Verify_per_rule)
  in
  let mw = Tango_core.Middleware.connect ~config db in
  List.iter
    (fun (name, sql) ->
      let initial =
        Tango_tsql.Compile.compile
          ~lookup:(Tango_core.Middleware.schema_lookup mw) sql
      in
      let _result = Tango_core.Middleware.optimize mw initial in
      let ds = Tango_core.Middleware.last_diagnostics mw in
      Alcotest.(check int)
        (name ^ ": no verification errors")
        0 (Diag.count_errors ds))
    Tango_workload.Queries.workload

(* ---------- diagnostics rendering ---------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_diag_json () =
  let d =
    Diag.v ~hint:"insert a SORT" ~rule:"T5" Diag.Error "ordering"
      ~path:"/T^M/JOIN" "input not sorted on \"A.PosID\""
  in
  let j = Diag.to_json d in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" needle)
        true (contains ~needle j))
    [ "\"severity\":\"error\""; "\"family\":\"ordering\""; "\"rule\":\"T5\"";
      "\\\"A.PosID\\\"" ]

let () =
  Alcotest.run "tango_verify"
    [
      ( "logical",
        [
          Alcotest.test_case "clean plan" `Quick test_logical_clean;
          Alcotest.test_case "unresolved attribute" `Quick test_unresolved_attribute;
          Alcotest.test_case "bad transfer pairing" `Quick test_bad_transfer_pairing;
          Alcotest.test_case "untranslatable subtree" `Quick test_untranslatable_subtree;
          Alcotest.test_case "root location" `Quick test_root_location_mismatch;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "merge join unordered" `Quick test_merge_join_unordered_flagged;
          Alcotest.test_case "merge join sorted" `Quick test_merge_join_sorted_clean;
          Alcotest.test_case "bogus order claim" `Quick test_bogus_order_claim_flagged;
          Alcotest.test_case "taggr mis-ordered" `Quick test_taggr_misordered_flagged;
          Alcotest.test_case "taggr ordered" `Quick test_taggr_ordered_clean;
          Alcotest.test_case "dupelim unsorted" `Quick test_dupelim_unsorted_flagged;
          Alcotest.test_case "dupelim sorted" `Quick test_dupelim_sorted_clean;
          Alcotest.test_case "tjoin period-key order regression" `Quick
            test_tjoin_period_key_claims_no_order;
          Alcotest.test_case "xxl sort satisfies order" `Quick
            test_sort_satisfies_inferred_order;
        ] );
      ( "estimates",
        [ Alcotest.test_case "NaN cost" `Quick test_nan_cost_flagged ] );
      ( "gate",
        [
          Alcotest.test_case "injected unsound rule" `Quick test_gate_catches_injected_rule;
          Alcotest.test_case "sound rules clean" `Quick test_gate_clean_on_sound_rules;
          Alcotest.test_case "workload clean under per-rule gate" `Quick
            test_workload_verifies_clean;
        ] );
      ( "diagnostics",
        [ Alcotest.test_case "json rendering" `Quick test_diag_json ] );
    ]
