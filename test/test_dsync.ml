(* Multi-domain stress for the Dsync-guarded hot path: OCaml 5 domains
   hammer the sharded counters, a histogram, the plan cache and the
   event log at once; every assertion is an exact conservation law
   (nothing lost, nothing double-counted), and a concurrent reader
   checks that snapshots are internally consistent (never torn). *)

open Tango_obs
module Plan_cache = Tango_cache.Plan_cache
module Event_log = Tango_monitor.Event_log
module Middleware = Tango_core.Middleware

let domains = 4
let iters = 5_000

let spawn_all f =
  let ds = List.init domains (fun i -> Domain.spawn (fun () -> f i)) in
  List.iter Domain.join ds

(* ---------------- Dsync primitives ---------------- *)

let test_sharded_counter () =
  let cells = Dsync.Sharded.create () in
  spawn_all (fun _ ->
      for _ = 1 to iters do
        Dsync.Sharded.add cells 1
      done);
  Alcotest.(check int)
    "every increment lands exactly once" (domains * iters)
    (Dsync.Sharded.value cells)

let test_protect_exclusion () =
  (* a plain int mutated only under the lock: the lock must make the
     read-modify-write atomic, or increments get lost *)
  let lock = Dsync.lock () in
  let n = ref 0 in
  spawn_all (fun _ ->
      for _ = 1 to iters do
        Dsync.protect lock (fun () -> n := !n + 1)
      done);
  Alcotest.(check int) "mutual exclusion" (domains * iters) !n

let test_protect_exception_safe () =
  let lock = Dsync.lock () in
  (try Dsync.protect lock (fun () -> failwith "boom") with Failure _ -> ());
  (* lock must have been released on the exception path *)
  Alcotest.(check int) "lock released after raise" 7
    (Dsync.protect lock (fun () -> 7))

(* ---------------- contention profiling ---------------- *)

let find_snapshot name =
  List.find_opt
    (fun (s : Dsync.Profile.snapshot) -> String.equal s.Dsync.Profile.lock_name name)
    (Dsync.Profile.snapshot ())

(* A lock only one domain ever touches: the try_lock fast path always
   wins, so the profile must show zero contended acquires and zero
   accumulated wait — an idle lock must not look busy. *)
let test_profile_uncontended () =
  let lock = Dsync.named_lock "test.uncontended" in
  for _ = 1 to 1_000 do
    Dsync.protect lock (fun () -> ())
  done;
  match find_snapshot "test.uncontended" with
  | None -> Alcotest.fail "no profile for test.uncontended"
  | Some s ->
      Alcotest.(check int) "every acquire counted" 1_000
        s.Dsync.Profile.acquires;
      Alcotest.(check int) "no contended acquires" 0 s.Dsync.Profile.contended;
      Alcotest.(check (float 0.0)) "no wait recorded" 0.0
        s.Dsync.Profile.wait_us;
      (match List.rev s.Dsync.Profile.hold_buckets with
      | (inf, total) :: _ ->
          Alcotest.(check bool) "+inf hold bound" true (inf = infinity);
          Alcotest.(check int) "hold histogram counts every acquire" 1_000
            total
      | [] -> Alcotest.fail "no hold buckets")

(* Contention, made deterministic (the test box may have one core, so
   short critical sections never overlap by luck): a holder takes the
   lock and keeps it until a waiter has announced it is about to
   acquire, plus a couple of milliseconds for the waiter's failed
   try_lock to land — so the waiter's acquire MUST contend.  Then
   domains hammer the same lock for the conservation bounds: acquires
   conserve exactly, and the accumulated wait is physically bounded —
   no lock can make a domain wait longer than the wall time, so
   Σ wait <= wall x domains. *)
let test_profile_contention_stress () =
  let lock = Dsync.named_lock "test.contended" in
  let holder_in = Atomic.make false in
  let waiter_trying = Atomic.make false in
  let t0 = Tango_obs.mono_us () in
  let holder =
    Domain.spawn (fun () ->
        Dsync.protect lock (fun () ->
            Atomic.set holder_in true;
            while not (Atomic.get waiter_trying) do
              Domain.cpu_relax ()
            done;
            (* hold through the waiter's try_lock attempt *)
            let u0 = Tango_obs.mono_us () in
            while Tango_obs.mono_us () -. u0 < 2_000.0 do
              Domain.cpu_relax ()
            done))
  in
  let waiter =
    Domain.spawn (fun () ->
        while not (Atomic.get holder_in) do
          Domain.cpu_relax ()
        done;
        Atomic.set waiter_trying true;
        Dsync.protect lock (fun () -> ()))
  in
  Domain.join holder;
  Domain.join waiter;
  let n = ref 0 in
  let iters = 2_000 in
  spawn_all (fun _ ->
      for _ = 1 to iters do
        Dsync.protect lock (fun () -> n := !n + 1)
      done);
  let wall_us = Tango_obs.mono_us () -. t0 in
  Alcotest.(check int) "mutual exclusion held" (domains * iters) !n;
  match find_snapshot "test.contended" with
  | None -> Alcotest.fail "no profile for test.contended"
  | Some s ->
      Alcotest.(check int) "every acquire counted"
        ((domains * iters) + 2)
        s.Dsync.Profile.acquires;
      Alcotest.(check bool) "some acquires contended" true
        (s.Dsync.Profile.contended > 0);
      Alcotest.(check bool) "wait accumulated on contention" true
        (s.Dsync.Profile.wait_us > 0.0);
      Alcotest.(check bool) "wait bounded by wall x domains" true
        (s.Dsync.Profile.wait_us <= wall_us *. float_of_int domains);
      (match List.rev s.Dsync.Profile.wait_buckets with
      | (inf, total) :: _ ->
          Alcotest.(check bool) "+inf wait bound" true (inf = infinity);
          Alcotest.(check int) "wait histogram counts contended acquires"
            s.Dsync.Profile.contended total
      | [] -> Alcotest.fail "no wait buckets")

(* With profiling off, protect must still guard but record nothing. *)
let test_profile_disabled () =
  let lock = Dsync.named_lock "test.disabled" in
  Dsync.Profile.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Dsync.Profile.set_enabled true)
    (fun () ->
      Alcotest.(check int) "protect still works" 7
        (Dsync.protect lock (fun () -> 7));
      match find_snapshot "test.disabled" with
      | None -> ()
      | Some s ->
          Alcotest.(check int) "nothing recorded while disabled" 0
            s.Dsync.Profile.acquires)

(* ---------------- counters and histograms ---------------- *)

let test_counter_conservation () =
  let c = Counter.make "dsync.stress_counter" in
  Counter.reset c;
  spawn_all (fun _ ->
      for _ = 1 to iters do
        Counter.incr c
      done);
  Alcotest.(check int) "counter conserves increments" (domains * iters)
    (Counter.value c)

let histogram_stats_consistent (name, (h : Registry.histogram_stats)) =
  (* cumulative buckets close with (infinity, count): a torn snapshot
     (count bumped between the bucket fold and the count read) breaks
     this identity *)
  (match List.rev h.Registry.buckets with
  | (inf_bound, inf_count) :: _ ->
      Alcotest.(check bool)
        (name ^ ": +inf bucket bound") true
        (inf_bound = infinity);
      Alcotest.(check int)
        (name ^ ": +inf bucket equals count")
        h.Registry.count inf_count
  | [] -> Alcotest.fail (name ^ ": no buckets"));
  (* cumulative counts must be monotone *)
  ignore
    (List.fold_left
       (fun prev (_, c) ->
         Alcotest.(check bool) (name ^ ": cumulative monotone") true (c >= prev);
         c)
       0 h.Registry.buckets);
  if h.Registry.count > 0 then begin
    let expected_mean = h.Registry.sum /. float_of_int h.Registry.count in
    Alcotest.(check (float 1e-6)) (name ^ ": mean = sum/count") expected_mean
      h.Registry.mean
  end

let test_histogram_conservation_and_snapshots () =
  let h = Histogram.make "dsync.stress_hist" in
  Histogram.reset h;
  let stop = Atomic.make false in
  (* a reader domain snapshotting while writers observe: every snapshot
     must be internally consistent, whatever instant it lands on *)
  let reader =
    Domain.spawn (fun () ->
        let snaps = ref 0 in
        while not (Atomic.get stop) do
          let s = Registry.snapshot () in
          (match
             List.assoc_opt "dsync.stress_hist" s.Registry.histograms
           with
          | Some hs ->
              incr snaps;
              histogram_stats_consistent ("dsync.stress_hist", hs)
          | None -> ());
          Domain.cpu_relax ()
        done;
        !snaps)
  in
  spawn_all (fun d ->
      for i = 1 to iters do
        Histogram.observe h (float_of_int (((d * iters) + i) mod 1000))
      done);
  Atomic.set stop true;
  let snaps = Domain.join reader in
  Alcotest.(check bool) "reader actually snapshotted" true (snaps > 0);
  Alcotest.(check int) "histogram count conserves observations"
    (domains * iters) (Histogram.count h);
  let expected_sum =
    let s = ref 0.0 in
    for d = 0 to domains - 1 do
      for i = 1 to iters do
        s := !s +. float_of_int (((d * iters) + i) mod 1000)
      done
    done;
    !s
  in
  Alcotest.(check (float 1e-3)) "histogram sum conserves observations"
    expected_sum (Histogram.sum h);
  let bucket_total = Array.fold_left ( + ) 0 (Histogram.bucket_counts h) in
  Alcotest.(check int) "bucket counts sum to count" (domains * iters)
    bucket_total

(* ---------------- plan cache ---------------- *)

let test_plan_cache_stress () =
  let cache = Plan_cache.create ~capacity:8 () in
  let finds = domains * iters in
  spawn_all (fun d ->
      for i = 1 to iters do
        (* 16 distinct queries over capacity 8: constant eviction churn *)
        let sql = Printf.sprintf "SELECT %d" (((d * iters) + i) mod 16) in
        match Plan_cache.find cache ~sql with
        | Some _ -> ()
        | None -> Plan_cache.add cache ~sql (d, i)
      done);
  let s = Plan_cache.stats cache in
  Alcotest.(check int) "hits + misses = finds" finds
    (s.Plan_cache.hits + s.Plan_cache.misses);
  Alcotest.(check bool) "length bounded by capacity" true
    (Plan_cache.length cache <= Plan_cache.capacity cache);
  Alcotest.(check bool) "evictions happened under churn" true
    (s.Plan_cache.evictions > 0)

(* ---------------- event log ---------------- *)

let event () : Middleware.query_event =
  {
    Middleware.kind = "query";
    sql = Some "SELECT 1";
    started_us = 0.0;
    elapsed_us = 100.0;
    cache_class = "";
    cache_hit = false;
    report = None;
    error = None;
    backends = [];
    resources = Tango_obs.Runtime.zero;
  }

let test_event_log_stress () =
  let log = Event_log.create ~capacity:64 () in
  spawn_all (fun _ ->
      for _ = 1 to iters do
        Event_log.observe log (event ())
      done);
  Alcotest.(check int) "every offer counted once" (domains * iters)
    (Event_log.seen log);
  Alcotest.(check int) "sample_every=1 keeps everything" (domains * iters)
    (Event_log.kept log);
  let recent = Event_log.recent log in
  Alcotest.(check int) "ring full" 64 (List.length recent);
  (* admission assigns each kept record a unique seq under the lock *)
  let seqs = List.map (fun r -> r.Event_log.seq) recent in
  Alcotest.(check int) "no duplicated seq in the ring"
    (List.length seqs)
    (List.length (List.sort_uniq compare seqs));
  List.iter
    (fun s ->
      Alcotest.(check bool) "seq within range" true
        (s >= 0 && s < domains * iters))
    seqs

let () =
  Alcotest.run "tango_dsync"
    [
      ( "primitives",
        [
          Alcotest.test_case "sharded counter conservation" `Quick
            test_sharded_counter;
          Alcotest.test_case "protect mutual exclusion" `Quick
            test_protect_exclusion;
          Alcotest.test_case "protect releases on raise" `Quick
            test_protect_exception_safe;
        ] );
      ( "profile",
        [
          Alcotest.test_case "uncontended lock records zero waits" `Quick
            test_profile_uncontended;
          Alcotest.test_case "contention stress (4 domains)" `Quick
            test_profile_contention_stress;
          Alcotest.test_case "disabled profiling records nothing" `Quick
            test_profile_disabled;
        ] );
      ( "stress",
        [
          Alcotest.test_case "counter conservation (4 domains)" `Quick
            test_counter_conservation;
          Alcotest.test_case "histogram conservation, no torn snapshots"
            `Quick test_histogram_conservation_and_snapshots;
          Alcotest.test_case "plan cache LRU under churn" `Quick
            test_plan_cache_stress;
          Alcotest.test_case "event log admission" `Quick
            test_event_log_stress;
        ] );
    ]
