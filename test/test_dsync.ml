(* Multi-domain stress for the Dsync-guarded hot path: OCaml 5 domains
   hammer the sharded counters, a histogram, the plan cache and the
   event log at once; every assertion is an exact conservation law
   (nothing lost, nothing double-counted), and a concurrent reader
   checks that snapshots are internally consistent (never torn). *)

open Tango_obs
module Plan_cache = Tango_cache.Plan_cache
module Event_log = Tango_monitor.Event_log
module Middleware = Tango_core.Middleware

let domains = 4
let iters = 5_000

let spawn_all f =
  let ds = List.init domains (fun i -> Domain.spawn (fun () -> f i)) in
  List.iter Domain.join ds

(* ---------------- Dsync primitives ---------------- *)

let test_sharded_counter () =
  let cells = Dsync.Sharded.create () in
  spawn_all (fun _ ->
      for _ = 1 to iters do
        Dsync.Sharded.add cells 1
      done);
  Alcotest.(check int)
    "every increment lands exactly once" (domains * iters)
    (Dsync.Sharded.value cells)

let test_protect_exclusion () =
  (* a plain int mutated only under the lock: the lock must make the
     read-modify-write atomic, or increments get lost *)
  let lock = Dsync.lock () in
  let n = ref 0 in
  spawn_all (fun _ ->
      for _ = 1 to iters do
        Dsync.protect lock (fun () -> n := !n + 1)
      done);
  Alcotest.(check int) "mutual exclusion" (domains * iters) !n

let test_protect_exception_safe () =
  let lock = Dsync.lock () in
  (try Dsync.protect lock (fun () -> failwith "boom") with Failure _ -> ());
  (* lock must have been released on the exception path *)
  Alcotest.(check int) "lock released after raise" 7
    (Dsync.protect lock (fun () -> 7))

(* ---------------- counters and histograms ---------------- *)

let test_counter_conservation () =
  let c = Counter.make "dsync.stress_counter" in
  Counter.reset c;
  spawn_all (fun _ ->
      for _ = 1 to iters do
        Counter.incr c
      done);
  Alcotest.(check int) "counter conserves increments" (domains * iters)
    (Counter.value c)

let histogram_stats_consistent (name, (h : Registry.histogram_stats)) =
  (* cumulative buckets close with (infinity, count): a torn snapshot
     (count bumped between the bucket fold and the count read) breaks
     this identity *)
  (match List.rev h.Registry.buckets with
  | (inf_bound, inf_count) :: _ ->
      Alcotest.(check bool)
        (name ^ ": +inf bucket bound") true
        (inf_bound = infinity);
      Alcotest.(check int)
        (name ^ ": +inf bucket equals count")
        h.Registry.count inf_count
  | [] -> Alcotest.fail (name ^ ": no buckets"));
  (* cumulative counts must be monotone *)
  ignore
    (List.fold_left
       (fun prev (_, c) ->
         Alcotest.(check bool) (name ^ ": cumulative monotone") true (c >= prev);
         c)
       0 h.Registry.buckets);
  if h.Registry.count > 0 then begin
    let expected_mean = h.Registry.sum /. float_of_int h.Registry.count in
    Alcotest.(check (float 1e-6)) (name ^ ": mean = sum/count") expected_mean
      h.Registry.mean
  end

let test_histogram_conservation_and_snapshots () =
  let h = Histogram.make "dsync.stress_hist" in
  Histogram.reset h;
  let stop = Atomic.make false in
  (* a reader domain snapshotting while writers observe: every snapshot
     must be internally consistent, whatever instant it lands on *)
  let reader =
    Domain.spawn (fun () ->
        let snaps = ref 0 in
        while not (Atomic.get stop) do
          let s = Registry.snapshot () in
          (match
             List.assoc_opt "dsync.stress_hist" s.Registry.histograms
           with
          | Some hs ->
              incr snaps;
              histogram_stats_consistent ("dsync.stress_hist", hs)
          | None -> ());
          Domain.cpu_relax ()
        done;
        !snaps)
  in
  spawn_all (fun d ->
      for i = 1 to iters do
        Histogram.observe h (float_of_int (((d * iters) + i) mod 1000))
      done);
  Atomic.set stop true;
  let snaps = Domain.join reader in
  Alcotest.(check bool) "reader actually snapshotted" true (snaps > 0);
  Alcotest.(check int) "histogram count conserves observations"
    (domains * iters) (Histogram.count h);
  let expected_sum =
    let s = ref 0.0 in
    for d = 0 to domains - 1 do
      for i = 1 to iters do
        s := !s +. float_of_int (((d * iters) + i) mod 1000)
      done
    done;
    !s
  in
  Alcotest.(check (float 1e-3)) "histogram sum conserves observations"
    expected_sum (Histogram.sum h);
  let bucket_total = Array.fold_left ( + ) 0 (Histogram.bucket_counts h) in
  Alcotest.(check int) "bucket counts sum to count" (domains * iters)
    bucket_total

(* ---------------- plan cache ---------------- *)

let test_plan_cache_stress () =
  let cache = Plan_cache.create ~capacity:8 () in
  let finds = domains * iters in
  spawn_all (fun d ->
      for i = 1 to iters do
        (* 16 distinct queries over capacity 8: constant eviction churn *)
        let sql = Printf.sprintf "SELECT %d" (((d * iters) + i) mod 16) in
        match Plan_cache.find cache ~sql with
        | Some _ -> ()
        | None -> Plan_cache.add cache ~sql (d, i)
      done);
  let s = Plan_cache.stats cache in
  Alcotest.(check int) "hits + misses = finds" finds
    (s.Plan_cache.hits + s.Plan_cache.misses);
  Alcotest.(check bool) "length bounded by capacity" true
    (Plan_cache.length cache <= Plan_cache.capacity cache);
  Alcotest.(check bool) "evictions happened under churn" true
    (s.Plan_cache.evictions > 0)

(* ---------------- event log ---------------- *)

let event () : Middleware.query_event =
  {
    Middleware.kind = "query";
    sql = Some "SELECT 1";
    started_us = 0.0;
    elapsed_us = 100.0;
    cache_hit = false;
    report = None;
    error = None;
    backends = [];
  }

let test_event_log_stress () =
  let log = Event_log.create ~capacity:64 () in
  spawn_all (fun _ ->
      for _ = 1 to iters do
        Event_log.observe log (event ())
      done);
  Alcotest.(check int) "every offer counted once" (domains * iters)
    (Event_log.seen log);
  Alcotest.(check int) "sample_every=1 keeps everything" (domains * iters)
    (Event_log.kept log);
  let recent = Event_log.recent log in
  Alcotest.(check int) "ring full" 64 (List.length recent);
  (* admission assigns each kept record a unique seq under the lock *)
  let seqs = List.map (fun r -> r.Event_log.seq) recent in
  Alcotest.(check int) "no duplicated seq in the ring"
    (List.length seqs)
    (List.length (List.sort_uniq compare seqs));
  List.iter
    (fun s ->
      Alcotest.(check bool) "seq within range" true
        (s >= 0 && s < domains * iters))
    seqs

let () =
  Alcotest.run "tango_dsync"
    [
      ( "primitives",
        [
          Alcotest.test_case "sharded counter conservation" `Quick
            test_sharded_counter;
          Alcotest.test_case "protect mutual exclusion" `Quick
            test_protect_exclusion;
          Alcotest.test_case "protect releases on raise" `Quick
            test_protect_exception_safe;
        ] );
      ( "stress",
        [
          Alcotest.test_case "counter conservation (4 domains)" `Quick
            test_counter_conservation;
          Alcotest.test_case "histogram conservation, no torn snapshots"
            `Quick test_histogram_conservation_and_snapshots;
          Alcotest.test_case "plan cache LRU under churn" `Quick
            test_plan_cache_stress;
          Alcotest.test_case "event log admission" `Quick
            test_event_log_stress;
        ] );
    ]
