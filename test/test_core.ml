(* End-to-end integration tests for the TANGO middleware: full pipeline
   (temporal SQL -> optimize -> split -> SQL + middleware algorithms ->
   result), consistency of all hand-built experiment plans, and the
   feedback loop. *)

open Tango_rel
open Tango_algebra
open Tango_core
open Tango_workload

(* A small UIS instance: POSITION ~400 tuples, EMPLOYEE ~250. *)
let setup () =
  let db = Tango_dbms.Database.create () in
  Uis.load ~scale:0.005 db;
  let mw = Middleware.connect ~roundtrip_spin:0 db in
  (db, mw)

let lookup_rel db name = Tango_dbms.Database.query db ("SELECT * FROM " ^ name)

(* Reference evaluation of a plan tree (transfers are identities there). *)
let reference db op =
  Reference.eval
    (fun name ->
      let r = lookup_rel db name in
      Relation.make (Schema.unqualify (Relation.schema r)) (Relation.tuples r))
    op

let test_query1_end_to_end () =
  let db, mw = setup () in
  let report = Middleware.query mw Queries.q1_sql in
  let expected =
    reference db
      (Tango_tsql.Compile.compile
         ~lookup:(Middleware.schema_lookup mw)
         Queries.q1_sql)
  in
  Alcotest.(check bool) "nonempty" true (Relation.cardinality report.Middleware.result > 0);
  Alcotest.(check bool) "matches reference semantics" true
    (Relation.equal_multiset expected report.Middleware.result);
  (* sorted by PosID as requested *)
  let col = Relation.column report.Middleware.result "PosID" in
  let sorted = ref true in
  Array.iteri
    (fun i v -> if i > 0 && Value.compare col.(i - 1) v > 0 then sorted := false)
    col;
  Alcotest.(check bool) "ordered by PosID" true !sorted;
  Alcotest.(check bool) "memo explored" true (report.Middleware.elements > 0)

let test_query1_plans_agree () =
  let db, mw = setup () in
  let results =
    List.map
      (fun (name, tree) ->
        (name, (Middleware.run_fixed mw ~required_order:Queries.q1_order tree).Middleware.result))
      (Queries.q1_plans ~position:"POSITION" ())
  in
  let expected = reference db (Queries.q1_plan3 ~position:"POSITION" ()) in
  List.iter
    (fun (name, r) ->
      Alcotest.(check bool) (name ^ " agrees") true (Relation.equal_multiset expected r))
    results

let test_query2_plans_agree () =
  let db, mw = setup () in
  let period_end = "1997-01-01" in
  let plans = Queries.q2_plans ~position:"POSITION" ~period_end () in
  let expected = reference db (snd (List.hd plans)) in
  Alcotest.(check bool) "query 2 selects something" true (Relation.cardinality expected > 0);
  List.iter
    (fun (name, tree) ->
      let r = (Middleware.run_fixed mw ~required_order:Queries.q2_order tree).Middleware.result in
      Alcotest.(check bool)
        (Printf.sprintf "%s agrees (%d tuples)" name (Relation.cardinality r))
        true
        (Relation.equal_multiset expected r))
    plans

let test_query2_plan_semantics () =
  (* Plan 1 (reduced aggregation argument) and Plan 5 (unreduced) agree:
     the semantic reduction of the taggr argument is sound for this query. *)
  let db, _mw = setup () in
  let p1 = reference db (Queries.q2_plan1 ~position:"POSITION" ~period_end:"1997-01-01" ()) in
  let p5 = reference db (Queries.q2_plan5 ~position:"POSITION" ~period_end:"1997-01-01" ()) in
  Alcotest.(check bool) "reduction sound" true (Relation.equal_multiset p1 p5)

let test_query3_plans_agree () =
  let db, mw = setup () in
  let plans = Queries.q3_plans ~position:"POSITION" ~start_bound:"1996-01-01" () in
  let expected = reference db (snd (List.hd plans)) in
  List.iter
    (fun (name, tree) ->
      let r = (Middleware.run_fixed mw ~required_order:Queries.q3_order tree).Middleware.result in
      Alcotest.(check bool) (name ^ " agrees") true (Relation.equal_multiset expected r))
    plans

let test_query4_plans_agree () =
  let db, mw = setup () in
  let expected = reference db (Queries.q4_plan_dbms ~position:"POSITION" ~employee:"EMPLOYEE" ()) in
  let r1 =
    (Middleware.run_fixed mw ~required_order:Queries.q4_order
       (Queries.q4_plan1 ~position:"POSITION" ~employee:"EMPLOYEE" ()))
      .Middleware.result
  in
  Tango_dbms.Database.set_join_method db Tango_dbms.Executor.Force_nested_loop;
  let r2 =
    (Middleware.run_fixed mw ~required_order:Queries.q4_order
       (Queries.q4_plan_dbms ~position:"POSITION" ~employee:"EMPLOYEE" ()))
      .Middleware.result
  in
  Tango_dbms.Database.set_join_method db Tango_dbms.Executor.Force_sort_merge;
  let r3 =
    (Middleware.run_fixed mw ~required_order:Queries.q4_order
       (Queries.q4_plan_dbms ~position:"POSITION" ~employee:"EMPLOYEE" ()))
      .Middleware.result
  in
  Tango_dbms.Database.set_join_method db Tango_dbms.Executor.Auto;
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "plan %d agrees" (i + 1))
        true
        (Relation.equal_multiset expected r))
    [ r1; r2; r3 ]

let test_optimizer_runs_q2_sql () =
  let _db, mw = setup () in
  let report = Middleware.query mw (Queries.q2_sql ~period_end:"1997-01-01") in
  Alcotest.(check bool) "produced rows" true
    (Relation.cardinality report.Middleware.result > 0);
  Alcotest.(check bool) "classes counted" true (report.Middleware.classes > 10)

let test_optimizer_result_correct_q3 () =
  let db, mw = setup () in
  let sql = Queries.q3_sql ~start_bound:"1996-01-01" in
  let report = Middleware.query mw sql in
  let expected =
    reference db (Tango_tsql.Compile.compile ~lookup:(Middleware.schema_lookup mw) sql)
  in
  Alcotest.(check bool) "matches reference" true
    (Relation.equal_multiset expected report.Middleware.result)

let test_temp_tables_dropped () =
  let db, mw = setup () in
  ignore
    (Middleware.run_fixed mw ~required_order:Queries.q1_order
       (Queries.q2_plan1 ~position:"POSITION" ~period_end:"1997-01-01" ()));
  let leftovers =
    List.filter
      (fun t -> String.length t >= 9 && String.sub t 0 9 = "TANGO_TMP")
      (Tango_dbms.Catalog.table_names (Tango_dbms.Database.catalog db))
  in
  Alcotest.(check (list string)) "no temp tables remain" [] leftovers

let test_feedback_adapts () =
  let _db, mw = setup () in
  Middleware.set_config mw
    Middleware.Config.(with_feedback true (Middleware.config mw));
  let before = (Middleware.factors mw).Tango_cost.Factors.p_tm in
  ignore (Middleware.query mw Queries.q1_sql);
  let after = (Middleware.factors mw).Tango_cost.Factors.p_tm in
  Alcotest.(check bool) "p_tm adapted" true (before <> after)

let test_calibration_produces_sane_factors () =
  let _db, mw = setup () in
  Middleware.calibrate ~sizes:{ Tango_cost.Calibrate.small = 200; large = 800 } mw;
  let f = Middleware.factors mw in
  Alcotest.(check bool) "all positive" true
    (f.Tango_cost.Factors.p_tm > 0.0 && f.Tango_cost.Factors.p_td > 0.0
    && f.Tango_cost.Factors.p_sortm > 0.0 && f.Tango_cost.Factors.p_taggd1 > 0.0);
  (* DBMS temporal aggregation must look far more expensive per byte than
     the middleware's - that asymmetry is the paper's core finding. *)
  Alcotest.(check bool) "taggr asymmetry" true
    (f.Tango_cost.Factors.p_taggd1 > f.Tango_cost.Factors.p_taggm1)

let test_config_round_trip () =
  let db = Tango_dbms.Database.create () in
  Uis.load ~scale:0.005 db;
  let config =
    Middleware.Config.(
      default
      |> with_row_prefetch 25
      |> with_roundtrip_spin 0
      |> with_selectivity_mode Tango_stats.Selectivity.Naive
      |> with_histograms false
      |> with_feedback ~alpha:0.5 true
      |> with_max_memo_elements 1_000
      |> with_transfer_sharing false
      |> with_tracing true)
  in
  let mw = Middleware.connect ~config db in
  (* the config rides through connect unchanged... *)
  Alcotest.(check bool) "config round-trips" true (Middleware.config mw = config);
  (* ...and the client boundary picked up the connection fields *)
  Alcotest.(check int) "row prefetch applied" 25
    (Tango_dbms.Client.row_prefetch (Middleware.client mw));
  (* explicit connect args override config fields *)
  let mw2 = Middleware.connect ~config ~row_prefetch:7 db in
  Alcotest.(check int) "explicit arg wins" 7
    (Middleware.config mw2).Middleware.Config.row_prefetch;
  (* deprecated setters are shims over the immutable config *)
  Middleware.set_config mw
    Middleware.Config.(with_feedback false (Middleware.config mw));
  Alcotest.(check bool) "setter updates config" false
    (Middleware.config mw).Middleware.Config.feedback;
  Alcotest.(check (float 1e-9)) "other fields untouched" 0.5
    (Middleware.config mw).Middleware.Config.feedback_alpha;
  (* a traced query works under this config and reports a trace *)
  let r = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "trace collected" true (r.Middleware.trace <> None)

let test_histogram_toggle () =
  let _db, mw = setup () in
  Middleware.set_config mw
    Middleware.Config.(with_histograms false (Middleware.config mw));
  let r1 = Middleware.query mw Queries.q1_sql in
  Middleware.set_config mw
    Middleware.Config.(with_histograms true (Middleware.config mw));
  let r2 = Middleware.query mw Queries.q1_sql in
  Alcotest.(check bool) "same result either way" true
    (Relation.equal_multiset r1.Middleware.result r2.Middleware.result)

let test_distinct_through_middleware () =
  let db, mw = setup () in
  let sql = "SELECT DISTINCT Dept FROM POSITION ORDER BY Dept" in
  let report = Middleware.query mw sql in
  let expected =
    reference db (Tango_tsql.Compile.compile ~lookup:(Middleware.schema_lookup mw) sql)
  in
  Alcotest.(check bool) "distinct matches reference" true
    (Relation.equal_multiset expected report.Middleware.result);
  Alcotest.(check int) "10 departments" 10
    (Relation.cardinality report.Middleware.result)

let test_coalesce_through_middleware () =
  let db, mw = setup () in
  (* employment spells per employee coalesce into maximal periods *)
  let sql =
    "VALIDTIME COALESCE SELECT EmpID FROM POSITION ORDER BY EmpID"
  in
  let report = Middleware.query mw sql in
  let expected =
    reference db (Tango_tsql.Compile.compile ~lookup:(Middleware.schema_lookup mw) sql)
  in
  Alcotest.(check bool) "nonempty" true
    (Relation.cardinality report.Middleware.result > 0);
  Alcotest.(check bool) "coalesce matches reference" true
    (Relation.equal_multiset expected report.Middleware.result);
  (* coalesced periods per employee never overlap or meet *)
  let r = report.Middleware.result in
  let srt = Relation.sort [ Order.asc "EmpID"; Order.asc "T1" ] r in
  let sch = Relation.schema srt in
  let ts = Relation.tuples srt in
  for i = 1 to Array.length ts - 1 do
    let same =
      Value.equal (Tuple.field sch ts.(i) "EmpID") (Tuple.field sch ts.(i - 1) "EmpID")
    in
    if same then begin
      let prev_t2 = Value.to_int (Tuple.field sch ts.(i - 1) "T2") in
      let cur_t1 = Value.to_int (Tuple.field sch ts.(i) "T1") in
      if cur_t1 <= prev_t2 then Alcotest.fail "periods not maximal"
    end
  done

(* End-to-end property: for random small relations and random windows, the
   full middleware pipeline returns exactly what the reference semantics
   prescribe. *)
let prop_middleware_matches_reference =
  QCheck.Test.make ~name:"middleware pipeline = reference semantics" ~count:12
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 5 60)
           (QCheck.make
              QCheck.Gen.(
                map
                  (fun (k, v, t1, d) -> (k, v, t1, t1 + 1 + d))
                  (quad (int_range 1 6) (int_range 0 50) (int_range 0 60)
                     (int_range 0 25)))))
        (int_range 0 60))
    (fun (rows, cut) ->
      let schema =
        Schema.make
          [ ("K", Value.TInt); ("V", Value.TInt);
            ("T1", Value.TDate); ("T2", Value.TDate) ]
      in
      let rel =
        Relation.of_list schema
          (List.map
             (fun (k, v, a, b) ->
               Tuple.of_list [ Value.Int k; Value.Int v; Value.Date a; Value.Date b ])
             rows)
      in
      let db = Tango_dbms.Database.create () in
      Tango_dbms.Database.load_relation db "R" rel;
      Tango_dbms.Database.analyze_all db ();
      let mw = Middleware.connect ~roundtrip_spin:0 db in
      let sql =
        Printf.sprintf
          "VALIDTIME SELECT K, COUNT(*) AS CNT, SUM(V) AS S FROM R WHERE T1            < %d GROUP BY K ORDER BY K"
          (cut + 30)
      in
      let report = Middleware.query mw sql in
      let expected =
        Reference.eval
          (fun _ -> rel)
          (Tango_tsql.Compile.compile ~lookup:(fun _ -> schema) sql)
      in
      Relation.equal_multiset expected report.Middleware.result)

let test_difference_end_to_end () =
  (* positions held in 1996 minus positions held in 1999, via the algebra
     (difference is a middleware-only algorithm the optimizer must place) *)
  let db, mw = setup () in
  let proj alias bound1 bound2 =
    Op.project
      [ (Tango_sql.Ast.Col (Some alias, "PosID"), "PosID") ]
      (Op.select
         (Tango_sql.Ast.Binop
            (Tango_sql.Ast.And,
             Tango_sql.Ast.Binop
               (Tango_sql.Ast.Lt, Tango_sql.Ast.Col (Some alias, "T1"),
                Tango_sql.Ast.Lit (Value.Date (Tango_temporal.Chronon.of_string bound2))),
             Tango_sql.Ast.Binop
               (Tango_sql.Ast.Gt, Tango_sql.Ast.Col (Some alias, "T2"),
                Tango_sql.Ast.Lit (Value.Date (Tango_temporal.Chronon.of_string bound1)))))
         (Op.scan ~alias "POSITION" Uis.position_schema))
  in
  let diff =
    Op.Difference
      { left = Op.Dup_elim (proj "A" "1996-01-01" "1997-01-01");
        right = Op.Dup_elim (proj "B" "1999-01-01" "2000-01-01") }
  in
  let report = Middleware.run_plan mw (Op.to_mw diff) in
  let expected = reference db diff in
  Alcotest.(check bool) "difference matches reference" true
    (Relation.equal_multiset expected report.Middleware.result)

let test_three_way_temporal_join () =
  (* three temporal sources chained through temporal joins, end to end *)
  let db, mw = setup () in
  let sql =
    "VALIDTIME SELECT A.PosID AS PosID, A.EmpName AS E1, B.EmpName AS E2,      C.EmpName AS E3 FROM POSITION A, POSITION B, POSITION C WHERE A.PosID      = B.PosID AND B.PosID = C.PosID AND A.EmpID < B.EmpID AND B.EmpID <      C.EmpID AND A.T1 < DATE '1997-01-01' ORDER BY PosID"
  in
  let report = Middleware.query mw sql in
  let expected =
    reference db (Tango_tsql.Compile.compile ~lookup:(Middleware.schema_lookup mw) sql)
  in
  Alcotest.(check bool) "nonempty" true
    (Relation.cardinality report.Middleware.result > 0);
  Alcotest.(check bool) "3-way join matches reference" true
    (Relation.equal_multiset expected report.Middleware.result)

let test_alpha_normalize () =
  let q1 =
    Tango_sql.Parser.query
      "SELECT A.PosID AS A__PosID, A.T1 AS A__T1 FROM POSITION A WHERE        A.PayRate > 10 ORDER BY A__PosID"
  in
  let q2 =
    Tango_sql.Parser.query
      "SELECT B.PosID AS B__PosID, B.T1 AS B__T1 FROM POSITION B WHERE        B.PayRate > 10 ORDER BY B__PosID"
  in
  let q3 =
    Tango_sql.Parser.query
      "SELECT B.PosID AS B__PosID, B.T1 AS B__T1 FROM POSITION B WHERE        B.PayRate > 11 ORDER BY B__PosID"
  in
  Alcotest.(check bool) "alpha-equivalent statements normalize equal" true
    (Exec_plan.alpha_normalize q1 = Exec_plan.alpha_normalize q2);
  Alcotest.(check bool) "different literals stay different" false
    (Exec_plan.alpha_normalize q1 = Exec_plan.alpha_normalize q3)

let test_transfer_sharing () =
  (* Query 3's two sides are alpha-equivalent sorted selections of
     POSITION: with sharing, the second TRANSFER^M costs no round trips. *)
  let _db, mw = setup () in
  let tree = Queries.q3_plan2 ~position:"POSITION" ~start_bound:"1997-01-01" () in
  Middleware.set_config mw
    Middleware.Config.(with_transfer_sharing false (Middleware.config mw));
  Tango_dbms.Client.reset_counters (Middleware.client mw);
  let unshared = Middleware.run_fixed mw ~required_order:Queries.q3_order tree in
  let rt_unshared = Tango_dbms.Client.roundtrips (Middleware.client mw) in
  Middleware.set_config mw
    Middleware.Config.(with_transfer_sharing true (Middleware.config mw));
  Tango_dbms.Client.reset_counters (Middleware.client mw);
  let shared = Middleware.run_fixed mw ~required_order:Queries.q3_order tree in
  let rt_shared = Tango_dbms.Client.roundtrips (Middleware.client mw) in
  Alcotest.(check bool) "same result" true
    (Relation.equal_multiset unshared.Middleware.result shared.Middleware.result);
  Alcotest.(check bool)
    (Printf.sprintf "fewer round trips (%d vs %d)" rt_shared rt_unshared)
    true
    (rt_shared < rt_unshared)

(* Random algebra trees through the FULL optimizer + executor, checked
   against reference semantics.  Trees combine scans of two tables,
   selections, sorts, temporal joins, temporal aggregation, duplicate
   elimination and coalescing. *)
let random_tree_property =
  let tbl_schema =
    Schema.make
      [ ("K", Value.TInt); ("V", Value.TInt);
        ("T1", Value.TDate); ("T2", Value.TDate) ]
  in
  let mk_rel seed n =
    let st = ref seed in
    let rand bound =
      st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
      (!st lsr 13) mod bound
    in
    Relation.of_list tbl_schema
      (List.init n (fun _ ->
           let t1 = rand 60 in
           Tuple.of_list
             [ Value.Int (1 + rand 5); Value.Int (rand 40);
               Value.Date t1; Value.Date (t1 + 1 + rand 20) ]))
  in
  let open QCheck.Gen in
  let pred_gen schema =
    (* a comparison on some numeric attribute of the schema *)
    let numeric =
      List.filter
        (fun (a : Schema.attribute) ->
          match a.Schema.dtype with
          | Value.TInt | Value.TDate -> true
          | _ -> false)
        (Schema.attributes schema)
    in
    let* a = oneofl numeric in
    let* v = int_bound 60 in
    let lit =
      match a.Schema.dtype with
      | Value.TDate -> Tango_sql.Ast.Lit (Value.Date v)
      | _ -> Tango_sql.Ast.Lit (Value.Int (v mod 8))
    in
    let col = Tango_sql.Ast.Col (None, a.Schema.name) in
    oneofl
      [ Tango_sql.Ast.Binop (Tango_sql.Ast.Lt, col, lit);
        Tango_sql.Ast.Binop (Tango_sql.Ast.Ge, col, lit);
        Tango_sql.Ast.Binop (Tango_sql.Ast.Eq, col, lit) ]
  in
  let rec tree_gen depth =
    let leaf =
      oneofl
        [ Op.scan "L" tbl_schema; Op.scan "R" tbl_schema ]
    in
    if depth <= 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            let* arg = tree_gen (depth - 1) in
            let* p = pred_gen (Op.schema arg) in
            return (Op.select p arg) );
          ( 1,
            let* arg = tree_gen (depth - 1) in
            let s = Op.schema arg in
            let keys = [ Order.asc (Schema.name_at s 0) ] in
            return (Op.sort keys arg) );
          ( 2,
            let* arg = tree_gen (depth - 1) in
            let s = Op.schema arg in
            match Op.period_attrs s with
            | Some _ ->
                let k =
                  List.find_opt
                    (fun (a : Schema.attribute) ->
                      String.equal (Schema.base_name a.Schema.name) "K")
                    (Schema.attributes s)
                in
                let group =
                  match k with Some a -> [ a.Schema.name ] | None -> []
                in
                return (Op.temporal_aggregate group [ Op.count_star "CNT" ] arg)
            | None -> return arg );
          ( 1,
            let* arg = tree_gen (depth - 1) in
            return (Op.Dup_elim arg) );
          ( 1,
            let* arg = tree_gen (depth - 1) in
            match Op.period_attrs (Op.schema arg) with
            | Some _ -> return (Op.Coalesce arg)
            | None -> return arg );
          ( 2,
            (* temporal join of the two base tables (unique names) *)
            let* pl = pred_gen tbl_schema in
            let l = Op.select pl (Op.scan "L" tbl_schema) in
            let r = Op.scan "R" tbl_schema in
            let pred =
              Tango_sql.Ast.Binop
                (Tango_sql.Ast.Eq,
                 Tango_sql.Ast.Col (Some "L", "K"),
                 Tango_sql.Ast.Col (Some "R", "K"))
            in
            return (Op.temporal_join pred l r) );
        ]
  in
  QCheck.Test.make ~name:"random plans: optimizer+executor = reference"
    ~count:25
    (QCheck.make
       QCheck.Gen.(pair (tree_gen 3) (pair (int_range 5 40) (int_range 5 40))))
    (fun (tree, (nl, nr)) ->
      let rel_l = mk_rel 7 nl and rel_r = mk_rel 11 nr in
      let db = Tango_dbms.Database.create () in
      Tango_dbms.Database.load_relation db "L" rel_l;
      Tango_dbms.Database.load_relation db "R" rel_r;
      Tango_dbms.Database.analyze_all db ();
      let mw = Middleware.connect ~roundtrip_spin:0 db in
      let expected =
        Reference.eval
          (fun name -> if name = "L" then rel_l else rel_r)
          tree
      in
      let report = Middleware.run_plan mw (Op.to_mw tree) in
      Relation.equal_multiset expected report.Middleware.result)

let test_exec_plan_instrumentation () =
  let _db, mw = setup () in
  let report = Middleware.query mw Queries.q1_sql in
  let total = ref 0.0 in
  Exec_plan.iter
    (fun n -> total := !total +. n.Exec_plan.elapsed_us)
    report.Middleware.exec;
  Alcotest.(check bool) "time recorded" true (!total > 0.0);
  Alcotest.(check bool) "tuples recorded" true
    (report.Middleware.exec.Exec_plan.out_tuples
    = Relation.cardinality report.Middleware.result)

(* Batching is a pure execution-strategy change: the full pipeline must
   return the identical relation for every workload query with batch
   execution on and off, and the client-boundary accounting must agree. *)
let test_batching_differential () =
  let run batching =
    let _db, mw = setup () in
    Middleware.set_config mw
      (Middleware.Config.with_batching batching (Middleware.config mw));
    List.map
      (fun (name, sql) ->
        Tango_dbms.Client.reset_counters (Middleware.client mw);
        let r = Middleware.query mw sql in
        let client = Middleware.client mw in
        ( name,
          r.Middleware.result,
          Tango_dbms.Client.roundtrips client,
          Tango_dbms.Client.tuples_shipped client,
          Tango_dbms.Client.bytes_shipped client ))
      Queries.workload
  in
  let batched = run true and tuple = run false in
  List.iter2
    (fun (name, rb, rtb, tub, byb) (_, rt, rtt, tut, byt) ->
      Alcotest.(check bool)
        (name ^ ": batched result = tuple result")
        true
        (Relation.equal_list rb rt);
      Alcotest.(check int) (name ^ ": roundtrips agree") rtt rtb;
      Alcotest.(check int) (name ^ ": tuples shipped agree") tut tub;
      Alcotest.(check int) (name ^ ": bytes shipped agree") byt byb)
    batched tuple

let () =
  Alcotest.run "tango_core"
    [
      ( "pipeline",
        [
          Alcotest.test_case "query 1 end to end" `Quick test_query1_end_to_end;
          Alcotest.test_case "query 2 via optimizer" `Quick test_optimizer_runs_q2_sql;
          Alcotest.test_case "query 3 via optimizer" `Quick test_optimizer_result_correct_q3;
          Alcotest.test_case "3-way temporal join" `Quick test_three_way_temporal_join;
          Alcotest.test_case "difference end to end" `Quick test_difference_end_to_end;
        ] );
      ( "plan consistency",
        [
          Alcotest.test_case "query 1 plans agree" `Quick test_query1_plans_agree;
          Alcotest.test_case "query 2 plans agree" `Quick test_query2_plans_agree;
          Alcotest.test_case "query 2 reduction sound" `Quick test_query2_plan_semantics;
          Alcotest.test_case "query 3 plans agree" `Quick test_query3_plans_agree;
          Alcotest.test_case "query 4 plans agree" `Quick test_query4_plans_agree;
        ] );
      ( "housekeeping",
        [
          Alcotest.test_case "temp tables dropped" `Quick test_temp_tables_dropped;
          Alcotest.test_case "feedback adapts factors" `Quick test_feedback_adapts;
          Alcotest.test_case "calibration sane" `Quick test_calibration_produces_sane_factors;
          Alcotest.test_case "config round trip" `Quick test_config_round_trip;
          Alcotest.test_case "histogram toggle" `Quick test_histogram_toggle;
          Alcotest.test_case "instrumentation" `Quick test_exec_plan_instrumentation;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "DISTINCT end to end" `Quick test_distinct_through_middleware;
          Alcotest.test_case "COALESCE end to end" `Quick test_coalesce_through_middleware;
          Alcotest.test_case "alpha normalization" `Quick test_alpha_normalize;
          Alcotest.test_case "transfer sharing" `Quick test_transfer_sharing;
          Alcotest.test_case "batching differential" `Quick test_batching_differential;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_middleware_matches_reference;
          QCheck_alcotest.to_alcotest random_tree_property;
        ] );
    ]
