(* Auto-parameterization: template extraction and natural typing, plus a
   QCheck differential — any literal-varying workload query run through
   the template path (auto-parameterized, then instantiated at bind
   time) must return the same rows and ship the same tuples as the
   literal-inlined path, on one backend and sharded. *)

open Tango_rel
open Tango_sql
open Tango_core
open Tango_workload
open Tango_dbms

let scale = 0.005

let has_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---- extraction ---- *)

let test_extract () =
  (match Parameterize.extract (Queries.q2_sql ~period_end:"1996-01-01") with
  | None -> Alcotest.fail "q2 carries literals and must parameterize"
  | Some e ->
      Alcotest.(check bool) "literals replaced by markers" true
        (has_sub ~sub:"$1" e.Parameterize.template
        && not (has_sub ~sub:"1996-01-01" e.Parameterize.template));
      Alcotest.(check int) "rate bound and two dates extracted" 3
        (List.length e.Parameterize.values);
      Alcotest.(check bool) "values keep their types" true
        (match e.Parameterize.values with
        | [ Value.Int 10; Value.Date _; Value.Date _ ] -> true
        | _ -> false);
      (* same shape, different literals: one template *)
      match Parameterize.extract (Queries.q2_sql ~period_end:"1997-06-15") with
      | None -> Alcotest.fail "same shape must parameterize"
      | Some e' ->
          Alcotest.(check string) "literal-varying spellings share a template"
            e.Parameterize.template e'.Parameterize.template);
  Alcotest.(check bool) "no literals, nothing to do" true
    (Parameterize.extract Queries.q1_sql = None);
  Alcotest.(check bool) "explicit bind variables are left alone" true
    (Parameterize.extract "SELECT A FROM T WHERE A < $1" = None);
  Alcotest.(check bool) "non-SELECT stays literal" true
    (Parameterize.extract "INSERT INTO T VALUES (1, 'x')" = None);
  Alcotest.(check bool) "garbage is rejected, not mangled" true
    (Parameterize.extract "SELECT 'unterminated" = None)

let test_value_of_string () =
  let check_v label s v =
    Alcotest.(check bool) label true (Parameterize.value_of_string s = v)
  in
  check_v "int" "42" (Value.Int 42);
  check_v "negative int" "-7" (Value.Int (-7));
  check_v "float" "3.5" (Value.Float 3.5);
  check_v "bool" "true" (Value.Bool true);
  check_v "null" "null" Value.Null;
  check_v "date" "1996-01-01"
    (Value.Date (Tango_temporal.Chronon.of_string "1996-01-01"));
  check_v "string fallback" "Boss" (Value.Str "Boss")

(* ---- QCheck differential: template path = literal-inlined path ---- *)

let fresh ~shard () =
  if shard then
    let topo =
      Uis.load_sharded ~scale ~roundtrip_spins:[ 0; 0; 0 ] ~shards:3 ()
    in
    Middleware.connect_topology topo
  else begin
    let db = Database.create () in
    Uis.load ~scale db;
    Middleware.connect ~roundtrip_spin:0 db
  end

let counters mw =
  List.map
    (fun b -> (Backend.name b, Backend.roundtrips b, Backend.tuples_shipped b))
    (Topology.backends (Middleware.topology mw))

let delta before after =
  List.map2
    (fun (n0, r0, t0) (n1, r1, t1) ->
      assert (String.equal n0 n1);
      (n0, r1 - r0, t1 - t0))
    before after

let pp_delta d =
  String.concat ","
    (List.map (fun (n, r, t) -> Printf.sprintf "%s:rt=%d,tup=%d" n r t) d)

let class_of (r : Middleware.report) =
  match r.Middleware.cache with
  | Some c -> c.Middleware.cache_class
  | None -> ""

let sql_of qi off =
  let date =
    Tango_temporal.Chronon.to_string
      (Tango_temporal.Chronon.of_string "1975-06-01" + off)
  in
  match qi with
  | 0 -> Queries.q2_sql ~period_end:date
  | 1 -> Queries.q3_sql ~start_bound:date
  | _ ->
      Printf.sprintf
        "VALIDTIME SELECT PosID, PayRate FROM POSITION WHERE PayRate > %d"
        (off mod 40)

(* The differential proper.  Four runs of the same query:

   - [plain]: no cache — parse, optimize with literals inline, execute;
   - [miss]:  template path, first sighting — the generic plan is
     optimized with the parameters unresolved, then instantiated;
   - [hit]:   template hit — the cached generic plan is instantiated
     under the binding and executed; the hair-trigger sensitivity guard
     then judges the binding's selectivity bucket and stores a region
     plan (re-optimized with the values bound);
   - [region]: second hit — served by the region plan.

   Rows must agree everywhere.  The generic plan may legitimately differ
   from the literal-bound plan (that is the phenomenon the guard
   exists for), so tuple-shipping counters are compared where plans must
   coincide: hit = miss (bind-time instantiation is transparent), and
   region = plain (a region plan is optimized under the same bound
   values the literal path inlines, so it ships what the literal path
   ships). *)
let prop_template_equals_literal =
  QCheck.Test.make ~count:8 ~name:"template path = literal-inlined path"
    QCheck.(triple (int_range 0 2) (int_range 0 7500) bool)
    (fun (qi, off, shard) ->
      let sql = sql_of qi off in
      let plain = fresh ~shard () in
      let tmpl = fresh ~shard () in
      Middleware.set_config tmpl
        Middleware.Config.(
          with_replan_q_error 1.0
            (with_plan_cache true (Middleware.config tmpl)));
      let c0 = counters plain in
      let rp = Middleware.query plain sql in
      let dp = delta c0 (counters plain) in
      let c1 = counters tmpl in
      let rm = Middleware.query tmpl sql in
      let dm = delta c1 (counters tmpl) in
      let c2 = counters tmpl in
      let rh = Middleware.query tmpl sql in
      let dh = delta c2 (counters tmpl) in
      let c3 = counters tmpl in
      let rr = Middleware.query tmpl sql in
      let dr = delta c3 (counters tmpl) in
      let close mw = Topology.close (Middleware.topology mw) in
      close plain;
      close tmpl;
      let rows_agree r =
        Relation.equal_multiset rp.Middleware.result r.Middleware.result
      in
      if not (String.equal (class_of rm) "miss") then
        QCheck.Test.fail_reportf "expected miss, got %S for %s" (class_of rm)
          sql
      else if
        not
          (String.equal (class_of rh) "template-hit"
          && String.equal (class_of rr) "template-hit")
      then
        QCheck.Test.fail_reportf "expected template-hits, got %S/%S for %s"
          (class_of rh) (class_of rr) sql
      else if not (rows_agree rm && rows_agree rh && rows_agree rr) then
        QCheck.Test.fail_reportf
          "rows diverge for %s (shard=%b): plain=%d miss=%d hit=%d region=%d"
          sql shard
          (Relation.cardinality rp.Middleware.result)
          (Relation.cardinality rm.Middleware.result)
          (Relation.cardinality rh.Middleware.result)
          (Relation.cardinality rr.Middleware.result)
      else if dh <> dm then
        QCheck.Test.fail_reportf
          "instantiation not transparent for %s (shard=%b): miss=[%s] hit=[%s]"
          sql shard (pp_delta dm) (pp_delta dh)
      else if dr <> dp then
        QCheck.Test.fail_reportf
          "region plan ships differently from literal plan for %s (shard=%b): \
           plain=[%s] region=[%s]"
          sql shard (pp_delta dp) (pp_delta dr)
      else true)

let () =
  Alcotest.run "tango_parameterize"
    [
      ( "extraction",
        [
          Alcotest.test_case "extract" `Quick test_extract;
          Alcotest.test_case "value typing" `Quick test_value_of_string;
        ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_template_equals_literal ] );
    ]
