(* Tests for the simulated DBMS: DDL/DML, the SQL executor (selection,
   projection, joins, grouping, subqueries, unions), ANALYZE statistics,
   and the client transfer boundary. *)

open Tango_rel
open Tango_dbms

let pos_schema =
  Schema.make
    [ ("PosID", Value.TInt); ("EmpName", Value.TStr);
      ("T1", Value.TDate); ("T2", Value.TDate) ]

(* The paper's Figure 3(a) POSITION relation. *)
let position_rows =
  [ (1, "Tom", 2, 20); (1, "Jane", 5, 25); (2, "Tom", 5, 10) ]

let make_db () =
  let db = Database.create () in
  Database.load_relation db "POSITION"
    (Relation.of_list pos_schema
       (List.map
          (fun (p, n, a, b) ->
            Tuple.of_list [ Value.Int p; Value.Str n; Value.Date a; Value.Date b ])
          position_rows));
  db

let ints r name = Array.to_list (Array.map Value.to_int (Relation.column r name))

let test_ddl_dml () =
  let db = Database.create () in
  (match Database.execute db "CREATE TABLE T (A INT, B VARCHAR)" with
  | Database.Ok_count 0 -> ()
  | _ -> Alcotest.fail "create failed");
  (match Database.execute db "INSERT INTO T VALUES (1, 'x'), (2, 'y')" with
  | Database.Ok_count 2 -> ()
  | _ -> Alcotest.fail "insert failed");
  let r = Database.query db "SELECT A FROM T" in
  Alcotest.(check (list int)) "rows" [ 1; 2 ] (ints r "A");
  ignore (Database.execute db "DROP TABLE T");
  Alcotest.(check bool) "dropped" false (Database.table_exists db "T");
  Alcotest.check_raises "duplicate table" (Catalog.Table_exists "Z") (fun () ->
      ignore (Database.execute db "CREATE TABLE Z (A INT)");
      ignore (Database.execute db "CREATE TABLE Z (A INT)"))

let test_select_where () =
  let db = make_db () in
  let r = Database.query db "SELECT EmpName FROM POSITION WHERE PosID = 1" in
  Alcotest.(check int) "two rows" 2 (Relation.cardinality r);
  let r = Database.query db "SELECT * FROM POSITION WHERE T1 >= DATE '1970-01-06'" in
  Alcotest.(check int) "two start at chronon 5" 2 (Relation.cardinality r);
  let r = Database.query db "SELECT * FROM POSITION WHERE T1 >= DATE '1970-02-01'" in
  Alcotest.(check int) "none start that late" 0 (Relation.cardinality r)

let test_projection_expressions () =
  let db = make_db () in
  let r =
    Database.query db "SELECT PosID * 10 AS X, T2 - T1 AS Dur FROM POSITION"
  in
  Alcotest.(check (list int)) "computed" [ 10; 10; 20 ] (ints r "X");
  Alcotest.(check (list int)) "duration" [ 18; 20; 5 ] (ints r "Dur")

let test_order_by () =
  let db = make_db () in
  let r = Database.query db "SELECT PosID, T1 FROM POSITION ORDER BY PosID DESC, T1" in
  Alcotest.(check (list int)) "desc order" [ 2; 1; 1 ] (ints r "PosID")

let test_distinct () =
  let db = make_db () in
  let r = Database.query db "SELECT DISTINCT PosID FROM POSITION" in
  Alcotest.(check int) "two distinct" 2 (Relation.cardinality r)

let test_group_by () =
  let db = make_db () in
  let r =
    Database.query db
      "SELECT PosID, COUNT(*) AS C, MIN(T1) AS MinT FROM POSITION GROUP BY \
       PosID ORDER BY PosID"
  in
  Alcotest.(check (list int)) "counts" [ 2; 1 ] (ints r "C");
  Alcotest.(check (list int)) "mins" [ 2; 5 ] (ints r "MinT")

let test_group_having () =
  let db = make_db () in
  let r =
    Database.query db
      "SELECT PosID FROM POSITION GROUP BY PosID HAVING COUNT(*) > 1"
  in
  Alcotest.(check (list int)) "only pos 1" [ 1 ] (ints r "PosID")

let test_global_aggregate () =
  let db = make_db () in
  let r = Database.query db "SELECT COUNT(*) AS N, MAX(T2) AS M FROM POSITION" in
  Alcotest.(check (list int)) "count" [ 3 ] (ints r "N");
  Alcotest.(check (list int)) "max" [ 25 ] (ints r "M");
  (* Aggregates over empty input yield one row; COUNT = 0. *)
  let r = Database.query db "SELECT COUNT(*) AS N FROM POSITION WHERE PosID = 99" in
  Alcotest.(check (list int)) "empty count" [ 0 ] (ints r "N")

let test_join_product () =
  let db = make_db () in
  let r = Database.query db "SELECT A.PosID FROM POSITION A, POSITION B" in
  Alcotest.(check int) "product" 9 (Relation.cardinality r)

let test_equi_join () =
  let db = make_db () in
  let r =
    Database.query db
      "SELECT A.EmpName, B.EmpName FROM POSITION A, POSITION B WHERE \
       A.PosID = B.PosID AND A.T1 < B.T1"
  in
  (* Pairs within same position where A starts strictly earlier: only
     (Tom pos1 t1=2, Jane pos1 t1=5). *)
  Alcotest.(check int) "one pair" 1 (Relation.cardinality r)

let test_join_methods_agree () =
  let db = make_db () in
  let sql =
    "SELECT A.PosID, A.EmpName, B.EmpName FROM POSITION A, POSITION B WHERE \
     A.PosID = B.PosID ORDER BY A.PosID"
  in
  Database.set_join_method db Executor.Force_nested_loop;
  let nl = Database.query db sql in
  Database.set_join_method db Executor.Force_sort_merge;
  let sm = Database.query db sql in
  Database.set_join_method db Executor.Auto;
  Alcotest.(check bool) "same multiset" true (Relation.equal_multiset nl sm);
  Alcotest.(check int) "5 matches" 5 (Relation.cardinality nl)

let test_temporal_join_sql () =
  (* The Figure 5 temporal-join SQL shape: intersection via GREATEST/LEAST
     plus an overlap predicate. *)
  let db = make_db () in
  let r =
    Database.query db
      "SELECT A.PosID AS PosID, A.EmpName AS E1, B.EmpName AS E2, \
       GREATEST(A.T1, B.T1) AS T1, LEAST(A.T2, B.T2) AS T2 FROM POSITION A, \
       POSITION B WHERE A.PosID = B.PosID AND A.T1 < B.T2 AND A.T2 > B.T1 \
       AND A.EmpName < B.EmpName ORDER BY PosID"
  in
  Alcotest.(check int) "one overlapping pair" 1 (Relation.cardinality r);
  let t = (Relation.tuples r).(0) in
  Alcotest.(check int) "t1 = 5" 5 (Value.to_int (Tuple.field (Relation.schema r) t "T1"));
  Alcotest.(check int) "t2 = 20" 20 (Value.to_int (Tuple.field (Relation.schema r) t "T2"))

let test_scalar_subquery_correlated () =
  let db = make_db () in
  (* For each tuple, the next larger start time within the same position. *)
  let r =
    Database.query db
      "SELECT EmpName, (SELECT MIN(B.T1) FROM POSITION B WHERE B.PosID = \
       A.PosID AND B.T1 > A.T1) AS NextT1 FROM POSITION A ORDER BY EmpName"
  in
  let vals = Array.to_list (Relation.column r "NextT1") in
  (* Jane: none after 5 in pos 1 -> NULL; Tom(pos1,T1=2) -> 5; Tom(pos2) -> NULL *)
  Alcotest.(check bool) "jane null" true (Value.is_null (List.nth vals 0));
  Alcotest.(check int) "tom next" 5 (Value.to_int (List.nth vals 1));
  Alcotest.(check bool) "tom pos2 null" true (Value.is_null (List.nth vals 2))

let test_exists_in () =
  let db = make_db () in
  let r =
    Database.query db
      "SELECT EmpName FROM POSITION A WHERE EXISTS (SELECT * FROM POSITION \
       B WHERE B.PosID = A.PosID AND B.EmpName <> A.EmpName)"
  in
  Alcotest.(check int) "shared positions" 2 (Relation.cardinality r);
  let r =
    Database.query db
      "SELECT DISTINCT PosID FROM POSITION WHERE PosID IN (SELECT PosID \
       FROM POSITION WHERE EmpName = 'Jane')"
  in
  Alcotest.(check (list int)) "in subquery" [ 1 ] (ints r "PosID")

let test_union () =
  let db = make_db () in
  let r =
    Database.query db
      "SELECT PosID, T1 AS T FROM POSITION UNION SELECT PosID, T2 AS T FROM \
       POSITION"
  in
  (* Endpoint pairs: (1,2) (1,5) (1,20) (1,25) (2,5) (2,10) = 6 distinct. *)
  Alcotest.(check int) "distinct endpoints" 6 (Relation.cardinality r);
  let r_all =
    Database.query db
      "SELECT PosID, T1 AS T FROM POSITION UNION ALL SELECT PosID, T2 AS T \
       FROM POSITION"
  in
  Alcotest.(check int) "union all keeps dups" 6 (Relation.cardinality r_all)

let test_derived_table () =
  let db = make_db () in
  let r =
    Database.query db
      "SELECT g.PosID, g.C FROM (SELECT PosID, COUNT(*) AS C FROM POSITION \
       GROUP BY PosID) g WHERE g.C > 1"
  in
  Alcotest.(check (list int)) "derived" [ 1 ] (ints r "PosID")

(* The temporal-aggregation-in-SQL shape (paper Section 3.4): constant
   intervals via endpoint UNION + correlated MIN, then overlap join and
   GROUP BY.  Expected result is Figure 3(c). *)
let taggr_sql =
  "SELECT g.PosID AS PosID, g.TS AS T1, g.TE AS T2, COUNT(*) AS CNT \
   FROM (SELECT p1.PosID AS PosID, p1.T AS TS, \
           (SELECT MIN(p2.T) FROM (SELECT PosID, T1 AS T FROM POSITION \
            UNION SELECT PosID, T2 AS T FROM POSITION) p2 \
            WHERE p2.PosID = p1.PosID AND p2.T > p1.T) AS TE \
         FROM (SELECT PosID, T1 AS T FROM POSITION \
               UNION SELECT PosID, T2 AS T FROM POSITION) p1) g, \
        POSITION r \
   WHERE g.TE IS NOT NULL AND r.PosID = g.PosID AND r.T1 <= g.TS \
     AND r.T2 >= g.TE \
   GROUP BY g.PosID, g.TS, g.TE ORDER BY PosID, T1"

let test_temporal_aggregation_sql () =
  let db = make_db () in
  let r = Database.query db taggr_sql in
  let expect = [ (1, 2, 5, 1); (1, 5, 20, 2); (1, 20, 25, 1); (2, 5, 10, 1) ] in
  Alcotest.(check int) "four intervals" (List.length expect) (Relation.cardinality r);
  List.iteri
    (fun i (p, a, b, c) ->
      let t = (Relation.tuples r).(i) in
      let get n = Value.to_int (Tuple.field (Relation.schema r) t n) in
      Alcotest.(check (list int))
        (Printf.sprintf "row %d" i)
        [ p; a; b; c ]
        [ get "PosID"; get "T1"; get "T2"; get "CNT" ])
    expect

let test_index_scan_agrees_with_full_scan () =
  let db = Database.create () in
  let schema = Schema.make [ ("K", Value.TInt); ("V", Value.TStr) ] in
  let rows =
    List.init 500 (fun i ->
        Tuple.of_list [ Value.Int (i mod 50); Value.Str ("v" ^ string_of_int i) ])
  in
  Database.load_relation db "T" (Relation.of_list schema rows);
  let sql = "SELECT V FROM T WHERE K = 7" in
  let without_index = Database.query db sql in
  Database.create_index db "T" "K";
  let with_index = Database.query db sql in
  Alcotest.(check bool) "same result" true
    (Relation.equal_multiset without_index with_index);
  (* And a range predicate. *)
  let sql = "SELECT V FROM T WHERE K < 5" in
  let with_index_range = Database.query db sql in
  Alcotest.(check int) "range via index" 50 (Relation.cardinality with_index_range)

let test_null_semantics () =
  let db = Database.create () in
  ignore (Database.execute db "CREATE TABLE N (A INT, B INT)");
  ignore (Database.execute db "INSERT INTO N VALUES (1, 10), (2, NULL), (NULL, 30)");
  (* comparisons with NULL are false *)
  let r = Database.query db "SELECT A FROM N WHERE B > 5" in
  Alcotest.(check (list int)) "null comparison false" [ 1; 3 ]
    (Array.to_list
       (Array.map
          (fun t -> try Value.to_int t.(0) with _ -> 3)
          (Relation.tuples r)));
  (* IS NULL / IS NOT NULL *)
  let r = Database.query db "SELECT B FROM N WHERE A IS NULL" in
  Alcotest.(check int) "is null" 1 (Relation.cardinality r);
  let r = Database.query db "SELECT A FROM N WHERE B IS NOT NULL" in
  Alcotest.(check int) "is not null" 2 (Relation.cardinality r);
  (* aggregates skip NULL arguments; COUNT(col) counts non-null *)
  let r =
    Database.query db "SELECT COUNT(*) AS N, COUNT(B) AS NB, SUM(B) AS S FROM N"
  in
  let t = (Relation.tuples r).(0) in
  Alcotest.(check int) "count star" 3 (Value.to_int t.(0));
  Alcotest.(check int) "count col" 2 (Value.to_int t.(1));
  Alcotest.(check int) "sum skips null" 40 (Value.to_int t.(2));
  (* NULL join keys never match *)
  let r =
    Database.query db "SELECT X.A FROM N X, N Y WHERE X.A = Y.B"
  in
  Alcotest.(check int) "no null matches" 0 (Relation.cardinality r)

let test_arithmetic_in_where () =
  let db = make_db () in
  let r =
    Database.query db
      "SELECT EmpName FROM POSITION WHERE T2 - T1 > 15 ORDER BY EmpName"
  in
  (* durations: Tom 18, Jane 20, Tom 5 *)
  Alcotest.(check int) "two long assignments" 2 (Relation.cardinality r);
  let r = Database.query db "SELECT PosID FROM POSITION WHERE PosID * 2 = 4" in
  Alcotest.(check int) "computed equality" 1 (Relation.cardinality r)

let test_between_and_nested_derived () =
  let db = make_db () in
  let r = Database.query db "SELECT PosID FROM POSITION WHERE T1 BETWEEN 3 AND 6" in
  Alcotest.(check int) "between" 2 (Relation.cardinality r);
  (* two levels of derived tables *)
  let r =
    Database.query db
      "SELECT z.C FROM (SELECT y.PosID AS P, COUNT(*) AS C FROM (SELECT        PosID FROM POSITION WHERE PosID = 1) y GROUP BY y.PosID) z"
  in
  Alcotest.(check int) "nested derived" 1 (Relation.cardinality r);
  Alcotest.(check int) "count through layers" 2
    (Value.to_int (Relation.tuples r).(0).(0))

let test_index_nested_loop_join () =
  (* With an index on the inner join attribute, the executor probes instead
     of scanning; results must match the other join methods. *)
  let db = Database.create () in
  let dim_schema = Schema.make [ ("K", Value.TInt); ("Label", Value.TStr) ] in
  let fact_schema = Schema.make [ ("FK", Value.TInt); ("V", Value.TInt) ] in
  Database.load_relation db "DIM"
    (Relation.of_list dim_schema
       (List.init 50 (fun i ->
            Tuple.of_list [ Value.Int i; Value.Str ("L" ^ string_of_int i) ])));
  Database.load_relation db "FACT"
    (Relation.of_list fact_schema
       (List.init 300 (fun i ->
            Tuple.of_list [ Value.Int (i mod 60); Value.Int i ])));
  let sql = "SELECT F.V, D.Label FROM FACT F, DIM D WHERE F.FK = D.K" in
  Database.set_join_method db Executor.Force_sort_merge;
  let merge = Database.query db sql in
  Database.create_index db "DIM" "K";
  Database.set_join_method db Executor.Auto;
  let before = (Database.io_stats db).Tango_storage.Io_stats.index_lookups in
  let inl = Database.query db sql in
  let after = (Database.io_stats db).Tango_storage.Io_stats.index_lookups in
  Alcotest.(check bool) "probed the index" true (after - before >= 300);
  Alcotest.(check bool) "same result" true (Relation.equal_multiset merge inl);
  (* keys 50..59 have no DIM match and must be dropped *)
  Alcotest.(check int) "only matched keys" 250 (Relation.cardinality inl);
  (* forced NL also uses the probe *)
  Database.set_join_method db Executor.Force_nested_loop;
  let nl = Database.query db sql in
  Alcotest.(check bool) "forced NL agrees" true (Relation.equal_multiset merge nl)

let test_inl_with_residual_filter () =
  (* residual single-table predicates are re-applied after the probe *)
  let db = Database.create () in
  let dim_schema = Schema.make [ ("K", Value.TInt); ("Flag", Value.TInt) ] in
  Database.load_relation db "DIM"
    (Relation.of_list dim_schema
       (List.init 40 (fun i -> Tuple.of_list [ Value.Int i; Value.Int (i mod 2) ])));
  Database.load_relation db "FACT"
    (Relation.of_list (Schema.make [ ("FK", Value.TInt) ])
       (List.init 40 (fun i -> Tuple.of_list [ Value.Int i ])));
  Database.create_index db "DIM" "K";
  let r =
    Database.query db
      "SELECT F.FK FROM FACT F, DIM D WHERE F.FK = D.K AND D.Flag = 1"
  in
  Alcotest.(check int) "half survive" 20 (Relation.cardinality r)

let test_analyze_stats () =
  let db = make_db () in
  let st = Database.analyze db "POSITION" in
  Alcotest.(check int) "cardinality" 3 st.Stat.cardinality;
  Alcotest.(check bool) "blocks > 0" true (st.Stat.blocks > 0);
  Alcotest.(check bool) "avg size > 0" true (st.Stat.avg_tuple_size > 0.0);
  let c = Option.get (Stat.column_stats st "PosID") in
  Alcotest.(check int) "distinct" 2 c.Stat.distinct;
  Alcotest.(check bool) "min" true (Value.equal (Option.get c.Stat.min_value) (Value.Int 1));
  Alcotest.(check bool) "max" true (Value.equal (Option.get c.Stat.max_value) (Value.Int 2));
  Alcotest.(check bool) "histogram built" true (c.Stat.histogram <> None);
  (* Histograms can be disabled — the Query 2 experiment depends on this. *)
  let st = Database.analyze db ~histograms:`None "POSITION" in
  let c = Option.get (Stat.column_stats st "T1") in
  Alcotest.(check bool) "no histogram" true (c.Stat.histogram = None)

let test_client_transfer () =
  let db = make_db () in
  let client = Client.connect ~row_prefetch:2 ~roundtrip_spin:0 db in
  let cur = Client.execute_query client "SELECT PosID, EmpName FROM POSITION ORDER BY PosID" in
  let r = Client.fetch_all cur in
  Alcotest.(check int) "all rows" 3 (Relation.cardinality r);
  Alcotest.(check int) "tuples shipped" 3 (Client.tuples_shipped client);
  (* 3 rows at prefetch 2 -> 2 round trips *)
  Alcotest.(check int) "round trips" 2 (Client.roundtrips client)

let test_client_bulk_load () =
  let db = make_db () in
  let client = Client.connect ~roundtrip_spin:0 db in
  let schema = Schema.make [ ("A", Value.TInt) ] in
  let tuples = List.to_seq (List.init 25 (fun i -> Tuple.of_list [ Value.Int i ])) in
  let name = Client.bulk_load client ~table:"LOADED" schema tuples in
  Alcotest.(check string) "table name" "LOADED" name;
  Alcotest.(check int) "loaded rows" 25 (Database.table_cardinality db "LOADED");
  let r = Database.query db "SELECT A FROM LOADED WHERE A < 3" in
  Alcotest.(check int) "queryable" 3 (Relation.cardinality r)

(* The two cursor-drain protocols must ship the same rows at the same
   accounted cost: [fetch_batch] surfaces the prefetch buffer as an array
   but refills through the same path as [fetch]. *)
let test_fetch_batch_counters_agree () =
  let db = make_db () in
  Database.load_relation db "BIG"
    (Relation.of_list pos_schema
       (List.init 53 (fun i ->
            Tuple.of_list
              [ Value.Int i; Value.Str "x"; Value.Date i; Value.Date (i + 1) ])));
  let sql = "SELECT PosID, EmpName, T1, T2 FROM BIG ORDER BY PosID" in
  let run drain =
    let client = Client.connect ~row_prefetch:7 ~roundtrip_spin:0 db in
    let cur = Client.execute_query client sql in
    let rows = drain cur in
    ( rows,
      Client.cursor_roundtrips cur,
      Client.cursor_tuples cur,
      Client.cursor_bytes cur )
  in
  let via_fetch cur =
    let rec go acc =
      match Client.fetch cur with Some t -> go (t :: acc) | None -> List.rev acc
    in
    go []
  in
  let via_fetch_batch cur =
    let rec go acc =
      match Client.fetch_batch cur with
      | Some b -> go (List.rev_append (Array.to_list b) acc)
      | None -> List.rev acc
    in
    go []
  in
  (* interleaved: per-tuple pulls into a buffered batch and back *)
  let mixed cur =
    match Client.fetch cur with
    | None -> []
    | Some t0 -> t0 :: via_fetch_batch cur
  in
  let rows_f, rt_f, tu_f, by_f = run via_fetch in
  let rows_b, rt_b, tu_b, by_b = run via_fetch_batch in
  let rows_m, rt_m, tu_m, by_m = run mixed in
  let eq_rows a b = List.length a = List.length b && List.for_all2 Tuple.equal a b in
  Alcotest.(check bool) "batch rows = tuple rows" true (eq_rows rows_f rows_b);
  Alcotest.(check bool) "mixed rows = tuple rows" true (eq_rows rows_f rows_m);
  Alcotest.(check int) "roundtrips agree" rt_f rt_b;
  Alcotest.(check int) "tuples agree" tu_f tu_b;
  Alcotest.(check int) "bytes agree" by_f by_b;
  Alcotest.(check int) "mixed roundtrips agree" rt_f rt_m;
  Alcotest.(check int) "mixed tuples agree" tu_f tu_m;
  Alcotest.(check int) "mixed bytes agree" by_f by_m;
  (* 53 rows at prefetch 7 -> 8 refills under either protocol *)
  Alcotest.(check int) "expected roundtrips" 8 rt_f

let test_schema_generation () =
  let db = make_db () in
  let g0 = Database.schema_generation db in
  ignore (Database.analyze db "POSITION");
  let g1 = Database.schema_generation db in
  Alcotest.(check bool) "ANALYZE bumps" true (g1 > g0);
  (* internal statistics collection must not look like DDL *)
  ignore (Database.analyze db ~bump:false "POSITION");
  Alcotest.(check int) "bump:false is silent" g1 (Database.schema_generation db);
  Database.create_table db "G" (Schema.make [ ("A", Value.TInt) ]);
  let g2 = Database.schema_generation db in
  Alcotest.(check bool) "CREATE TABLE bumps" true (g2 > g1);
  Database.drop_table db "G";
  let g3 = Database.schema_generation db in
  Alcotest.(check bool) "DROP TABLE bumps" true (g3 > g2);
  (* per-query TANGO_TMP_* churn is invisible to the generation *)
  let tmp = Database.fresh_temp_name db in
  Database.create_table db tmp (Schema.make [ ("A", Value.TInt) ]);
  Database.drop_table db tmp;
  Alcotest.(check int) "temp tables are silent" g3 (Database.schema_generation db)

let test_sql_errors () =
  let db = make_db () in
  let fails sql =
    match Database.query db sql with
    | exception Executor.Sql_error _ -> true
    | exception Catalog.No_such_table _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown table" true (fails "SELECT * FROM NOPE");
  Alcotest.(check bool) "unknown column" true (fails "SELECT Nope FROM POSITION");
  Alcotest.(check bool) "union arity" true
    (fails "SELECT PosID FROM POSITION UNION SELECT PosID, T1 FROM POSITION")

(* Property: executor selection agrees with a reference filter over a random
   relation, for random range predicates. *)
let prop_selection_agrees =
  QCheck.Test.make ~name:"SQL selection = reference filter" ~count:50
    QCheck.(pair (list (pair (int_bound 100) (int_bound 100))) (int_bound 100))
    (fun (rows, bound) ->
      let db = Database.create () in
      let schema = Schema.make [ ("A", Value.TInt); ("B", Value.TInt) ] in
      Database.load_relation db "R"
        (Relation.of_list schema
           (List.map (fun (a, b) -> Tuple.of_list [ Value.Int a; Value.Int b ]) rows));
      let r =
        Database.query db (Printf.sprintf "SELECT A, B FROM R WHERE A < %d" bound)
      in
      let expected = List.length (List.filter (fun (a, _) -> a < bound) rows) in
      Relation.cardinality r = expected)

(* Property: sort-merge and nested-loop joins agree on random equi-joins. *)
let prop_join_methods_agree =
  QCheck.Test.make ~name:"join methods agree" ~count:30
    QCheck.(pair (list (int_bound 10)) (list (int_bound 10)))
    (fun (ks1, ks2) ->
      let db = Database.create () in
      let schema = Schema.make [ ("K", Value.TInt) ] in
      let rel ks = Relation.of_list schema (List.map (fun k -> Tuple.of_list [ Value.Int k ]) ks) in
      Database.load_relation db "R1" (rel ks1);
      Database.load_relation db "R2" (rel ks2);
      let sql = "SELECT A.K FROM R1 A, R2 B WHERE A.K = B.K" in
      Database.set_join_method db Executor.Force_nested_loop;
      let nl = Database.query db sql in
      Database.set_join_method db Executor.Force_sort_merge;
      let sm = Database.query db sql in
      Relation.equal_multiset nl sm)

let () =
  Alcotest.run "tango_dbms"
    [
      ( "ddl",
        [
          Alcotest.test_case "create/insert/drop" `Quick test_ddl_dml;
        ] );
      ( "executor",
        [
          Alcotest.test_case "select/where" `Quick test_select_where;
          Alcotest.test_case "projection exprs" `Quick test_projection_expressions;
          Alcotest.test_case "order by" `Quick test_order_by;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "having" `Quick test_group_having;
          Alcotest.test_case "global aggregate" `Quick test_global_aggregate;
          Alcotest.test_case "cartesian product" `Quick test_join_product;
          Alcotest.test_case "equi join" `Quick test_equi_join;
          Alcotest.test_case "join methods agree" `Quick test_join_methods_agree;
          Alcotest.test_case "temporal join SQL" `Quick test_temporal_join_sql;
          Alcotest.test_case "correlated scalar subquery" `Quick test_scalar_subquery_correlated;
          Alcotest.test_case "exists / in" `Quick test_exists_in;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "derived table" `Quick test_derived_table;
          Alcotest.test_case "temporal aggregation SQL" `Quick test_temporal_aggregation_sql;
          Alcotest.test_case "index scan correctness" `Quick test_index_scan_agrees_with_full_scan;
          Alcotest.test_case "index nested-loop join" `Quick test_index_nested_loop_join;
          Alcotest.test_case "INL residual filter" `Quick test_inl_with_residual_filter;
          Alcotest.test_case "null semantics" `Quick test_null_semantics;
          Alcotest.test_case "arithmetic in WHERE" `Quick test_arithmetic_in_where;
          Alcotest.test_case "between & nested derived" `Quick test_between_and_nested_derived;
          Alcotest.test_case "errors" `Quick test_sql_errors;
        ] );
      ( "catalog",
        [ Alcotest.test_case "analyze" `Quick test_analyze_stats ] );
      ( "client",
        [
          Alcotest.test_case "cursor transfer" `Quick test_client_transfer;
          Alcotest.test_case "bulk load" `Quick test_client_bulk_load;
          Alcotest.test_case "fetch/fetch_batch counters agree" `Quick
            test_fetch_batch_counters_agree;
          Alcotest.test_case "schema generation" `Quick test_schema_generation;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_selection_agrees;
          QCheck_alcotest.to_alcotest prop_join_methods_agree;
        ] );
    ]
