(* tango — command-line front end to the TANGO temporal middleware.

   The embedded DBMS is in-memory, so every invocation builds its database
   from generator options and/or CSV files, then runs queries against it.

   Examples:

     # staffing counts over time on a generated UIS workload
     tango run --scale 0.01 \
       "VALIDTIME SELECT PosID, COUNT(*) AS CNT FROM POSITION GROUP BY PosID ORDER BY PosID"

     # just show the chosen plan and the SQL shipped to the DBMS
     tango explain --scale 0.01 "VALIDTIME SELECT ..."

     # interactive session (one query per line, 'quit' exits)
     tango repl --scale 0.01

   CSV tables: --csv NAME=FILE loads FILE as table NAME; the header must be
   "Col:TYPE,Col:TYPE,..." with TYPE one of INT, FLOAT, VARCHAR, DATE,
   BOOL.  DATE cells are ISO dates (1997-02-01). *)

open Tango_rel
open Tango_core
open Cmdliner

(* ---------------- database setup ---------------- *)

let parse_typed_header line =
  List.map
    (fun cell ->
      match String.split_on_char ':' cell with
      | [ name; ty ] -> (String.trim name, Value.dtype_of_name (String.trim ty))
      | _ -> failwith ("header cell must be Name:TYPE, got " ^ cell))
    (String.split_on_char ',' line)

let load_csv db spec =
  match String.index_opt spec '=' with
  | None -> failwith ("--csv expects NAME=FILE, got " ^ spec)
  | Some i ->
      let name = String.sub spec 0 i in
      let path = String.sub spec (i + 1) (String.length spec - i - 1) in
      let ic = open_in path in
      let header = input_line ic in
      close_in ic;
      let schema = Schema.make (parse_typed_header header) in
      (* re-read with plain names for the Csv module *)
      let tmp = Filename.temp_file "tango" ".csv" in
      Fun.protect
        ~finally:(fun () -> Sys.remove tmp)
        (fun () ->
          let ic = open_in path and oc = open_out tmp in
          ignore (input_line ic);
          output_string oc (String.concat "," (Schema.names schema));
          output_char oc '\n';
          (try
             while true do
               output_string oc (input_line ic);
               output_char oc '\n'
             done
           with End_of_file -> ());
          close_in ic;
          close_out oc;
          let rel =
            Csv.read_file schema tmp
          in
          (* ISO date cells: Csv parses TDate from ints; fix up strings *)
          Tango_dbms.Database.load_relation db name rel);
      ignore (Tango_dbms.Database.analyze db name)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  if verbose then Logs.Src.set_level Middleware.log_src (Some Logs.Debug)

let setup ~scale ~csvs ~shards ~prefetch ~no_histograms ~calibrate ~trace
    ?(profiling = false) ?(plan_cache = false) () =
  let config =
    Middleware.Config.default
    |> Middleware.Config.with_histograms (not no_histograms)
    |> Middleware.Config.with_tracing trace
    |> Middleware.Config.with_profiling profiling
    |> Middleware.Config.with_plan_cache plan_cache
    |> fun c ->
    match prefetch with
    | None -> c
    | Some n -> Middleware.Config.with_row_prefetch n c
  in
  let mw =
    if shards > 1 then begin
      if scale <= 0.0 then
        failwith "--shards needs a generated workload (give --scale > 0)";
      let topo =
        Tango_workload.Uis.load_sharded ~scale
          ~histograms:(if no_histograms then `None else `All)
          ~shards ()
      in
      (* CSV tables are replicated to every backend, like EMPLOYEE *)
      List.iter
        (fun b ->
          (match Tango_dbms.Backend.database b with
          | Some db -> List.iter (load_csv db) csvs
          | None -> ());
          match prefetch with
          | Some n -> Tango_dbms.Backend.set_row_prefetch b n
          | None -> ())
        (Tango_dbms.Topology.backends topo);
      Middleware.connect_topology ~config topo
    end
    else begin
      let db = Tango_dbms.Database.create () in
      if scale > 0.0 then Tango_workload.Uis.load ~scale db;
      List.iter (load_csv db) csvs;
      Middleware.connect ~config db
    end
  in
  if calibrate then begin
    Fmt.epr "calibrating cost factors...@.";
    Middleware.calibrate mw
  end;
  mw

(* ---------------- machine-readable output ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Every subcommand takes the same flag: bare [--json] prints the summary
   to stdout, [--json FILE] writes it to FILE. *)
let json_arg =
  Arg.(value
       & opt ~vopt:(Some "-") (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Emit a machine-readable JSON summary to $(docv); omit \
                 $(docv) (or pass '-') for stdout.")

let emit_json dest body =
  match dest with
  | None -> ()
  | Some "-" ->
      print_string body;
      print_newline ()
  | Some path ->
      let oc = open_out path in
      output_string oc body;
      output_char oc '\n';
      close_out oc

(* Per-backend traffic, for sharded sessions: name, roundtrips, tuples. *)
let backends_json mw =
  String.concat ","
    (List.map
       (fun b ->
         Printf.sprintf
           "{\"name\":\"%s\",\"roundtrips\":%d,\"tuples_shipped\":%d,\
            \"bytes_shipped\":%d}"
           (json_escape (Tango_dbms.Backend.name b))
           (Tango_dbms.Backend.roundtrips b)
           (Tango_dbms.Backend.tuples_shipped b)
           (Tango_dbms.Backend.bytes_shipped b))
       (Tango_dbms.Topology.backends (Middleware.topology mw)))

let report_json mw (report : Middleware.report) =
  let cache =
    match report.Middleware.cache with
    | None -> "null"
    | Some c ->
        Printf.sprintf "{\"hit\":%b,\"class\":\"%s\"}" c.Middleware.cache_hit
          (json_escape c.Middleware.cache_class)
  in
  Printf.sprintf
    "{\"rows\":%d,\"optimize_us\":%.1f,\"execute_us\":%.1f,\
     \"estimated_cost_us\":%.1f,\"classes\":%d,\"elements\":%d,\
     \"plan\":\"%s\",\"cache\":%s,\"backends\":[%s]}"
    (Relation.cardinality report.Middleware.result)
    report.Middleware.optimize_us report.Middleware.execute_us
    report.Middleware.estimated_cost_us report.Middleware.classes
    report.Middleware.elements
    (json_escape (Tango_volcano.Physical.signature report.Middleware.physical))
    cache (backends_json mw)

(* ---------------- output ---------------- *)

let print_result ?(limit = 40) (r : Relation.t) =
  let n = Relation.cardinality r in
  let shown =
    if n <= limit then r
    else Relation.of_list (Relation.schema r)
        (List.filteri (fun i _ -> i < limit) (Relation.to_list r))
  in
  Fmt.pr "%a" Relation.pp shown;
  if n > limit then Fmt.pr "... (%d rows total)@." n
  else Fmt.pr "(%d rows)@." n

let print_analysis (report : Middleware.report) =
  match report.Middleware.analysis with
  | Some a ->
      Fmt.pr "@.estimated vs actual:@.%s@?" (Tango_profile.Analyze.to_string a)
  | None -> ()

let run_query ?json ?(params = []) mw ~explain_only ~analyze ~verbose sql =
  if explain_only then begin
    if analyze then begin
      (* EXPLAIN ANALYZE: execute the query (profiling is on) and print
         the annotated plan instead of the result rows *)
      let report = Middleware.query_params mw sql params in
      Fmt.pr "physical plan (estimated %.0f us, actual %.0f us):@.%s@."
        report.Middleware.estimated_cost_us report.Middleware.execute_us
        (Tango_volcano.Physical.to_string report.Middleware.physical);
      print_analysis report;
      emit_json json (report_json mw report)
    end
    else begin
      let initial =
        Tango_tsql.Compile.initial_plan ~lookup:(Middleware.schema_lookup mw)
          sql
      in
      let order = Tango_tsql.Compile.required_order sql in
      let res = Middleware.optimize mw ~required_order:order initial in
      match res.Tango_volcano.Search.plan with
      | None ->
          Fmt.pr "no feasible plan@.";
          emit_json json "{\"feasible\":false}"
      | Some plan ->
          Fmt.pr "physical plan (estimated %.0f us):@.%s@."
            plan.Tango_volcano.Physical.total_cost
            (Tango_volcano.Physical.to_string plan);
          let exec, _ = Exec_plan.of_physical (Middleware.database mw) plan in
          Fmt.pr "execution-ready plan:@.%s@." (Exec_plan.to_string exec);
          Fmt.pr "%d classes, %d elements, optimized in %.1f ms@."
            res.Tango_volcano.Search.classes res.Tango_volcano.Search.elements
            (res.Tango_volcano.Search.time_us /. 1000.0);
          emit_json json
            (Printf.sprintf
               "{\"feasible\":true,\"estimated_cost_us\":%.1f,\
                \"optimize_us\":%.1f,\"classes\":%d,\"elements\":%d,\
                \"plan\":\"%s\"}"
               plan.Tango_volcano.Physical.total_cost
               res.Tango_volcano.Search.time_us
               res.Tango_volcano.Search.classes
               res.Tango_volcano.Search.elements
               (json_escape (Tango_volcano.Physical.signature plan)))
    end
  end
  else begin
    let report = Middleware.query_params mw sql params in
    if verbose then begin
      Fmt.pr "plan:@.%s@."
        (Tango_volcano.Physical.to_string report.Middleware.physical);
      Fmt.pr "optimization: %.1f ms (%d classes, %d elements)@."
        (report.Middleware.optimize_us /. 1000.0)
        report.Middleware.classes report.Middleware.elements
    end;
    print_result report.Middleware.result;
    Fmt.pr "executed in %.1f ms@." (report.Middleware.execute_us /. 1000.0);
    if analyze then print_analysis report;
    (match report.Middleware.trace with
    | Some span -> Fmt.pr "@.%s@?" (Tango_obs.Trace.to_string span)
    | None -> ());
    emit_json json (report_json mw report)
  end

let catch_errors f =
  try
    f ();
    0
  with
  | Tango_sql.Parser.Parse_error m -> Fmt.epr "parse error: %s@." m; 1
  | Tango_sql.Lexer.Lex_error m -> Fmt.epr "lex error: %s@." m; 1
  | Tango_tsql.Compile.Unsupported m -> Fmt.epr "unsupported: %s@." m; 1
  | Tango_dbms.Executor.Sql_error m -> Fmt.epr "SQL error: %s@." m; 1
  | Tango_dbms.Catalog.No_such_table t -> Fmt.epr "no such table: %s@." t; 1
  | Tango_algebra.Op.Ill_formed m -> Fmt.epr "ill-formed query: %s@." m; 1
  | Middleware.No_plan m -> Fmt.epr "no plan: %s@." m; 1
  | Failure m -> Fmt.epr "error: %s@." m; 1

(* ---------------- commands ---------------- *)

let scale_arg =
  Arg.(value & opt float 0.01
       & info [ "scale" ] ~docv:"S"
           ~doc:"Generate the UIS workload (POSITION, EMPLOYEE) scaled by $(docv); 0 disables generation.")

let csv_arg =
  Arg.(value & opt_all string []
       & info [ "csv" ] ~docv:"NAME=FILE"
           ~doc:"Load a CSV file as a table (typed header Col:TYPE,...). Repeatable.")

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Shard the generated POSITION table across $(docv) \
                 in-process backends, range-partitioned on the period \
                 start T1 at the data's quantiles; EMPLOYEE and CSV \
                 tables are replicated to every backend.")

let prefetch_arg =
  Arg.(value & opt (some int) None
       & info [ "row-prefetch" ] ~docv:"N" ~doc:"Client row-prefetch setting.")

let no_hist_arg =
  Arg.(value & flag
       & info [ "no-histograms" ] ~doc:"Collect statistics without histograms.")

let calibrate_arg =
  Arg.(value & flag & info [ "calibrate" ] ~doc:"Calibrate cost factors before running.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Also print the chosen plan.")

let trace_arg =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Collect and print an EXPLAIN-ANALYZE-style trace of the \
                 pipeline: parse/optimize/translate/execute phases with the \
                 measured operator tree (wall time, tuples, page reads, \
                 round trips per operator).")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the pipeline trace as Chrome trace-event JSON to \
                 $(docv) (open in chrome://tracing or Perfetto).  Implies \
                 $(b,--trace).")

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")

let analyze_arg =
  Arg.(value & flag
       & info [ "analyze" ]
           ~doc:"Profile the execution and print the annotated plan: \
                 per-operator estimated vs actual rows, time, page reads \
                 and round trips, with q-errors.")

let param_arg =
  Arg.(value & opt_all string []
       & info [ "param" ] ~docv:"VALUE"
           ~doc:"Bind a parameter value, positionally ($(docv) binds \
                 \\$1, the next --param \\$2, ...), for SQL carrying ? \
                 or \\$n markers.  Values type naturally: integers, \
                 floats, true/false, null, YYYY-MM-DD dates; anything \
                 else is a string.  Repeatable.")

let plan_cache_arg =
  Arg.(value & flag
       & info [ "plan-cache" ]
           ~doc:"Cache optimized plans keyed by normalized query text; a \
                 re-submitted query skips parse and optimize.  Always on \
                 for $(b,serve).")

let run_term =
  let f scale csvs shards prefetch no_histograms calibrate verbose trace
      trace_out analyze plan_cache params json sql =
    catch_errors (fun () ->
        setup_logs verbose;
        let trace = trace || trace_out <> None in
        let mw =
          setup ~scale ~csvs ~shards ~prefetch ~no_histograms ~calibrate
            ~trace ~profiling:analyze ~plan_cache ()
        in
        let params = List.map Tango_sql.Parameterize.value_of_string params in
        run_query ?json ~params mw ~explain_only:false ~analyze ~verbose sql;
        match trace_out with
        | None -> ()
        | Some path -> (
            match Middleware.last_trace mw with
            | None -> Fmt.epr "no trace collected@."
            | Some span ->
                let oc = open_out path in
                output_string oc (Tango_monitor.Chrome_trace.to_string span);
                output_char oc '\n';
                close_out oc;
                Fmt.pr "trace written to %s@." path))
  in
  Term.(const f $ scale_arg $ csv_arg $ shards_arg $ prefetch_arg $ no_hist_arg
        $ calibrate_arg $ verbose_arg $ trace_arg $ trace_out_arg
        $ analyze_arg $ plan_cache_arg $ param_arg $ json_arg $ sql_arg)

let run_cmd =
  let doc = "Run a temporal SQL query through the middleware." in
  Cmd.v (Cmd.info "run" ~doc) run_term

let explain_cmd =
  let doc =
    "Optimize a query and print the chosen plan.  With $(b,--analyze), also \
     execute it and annotate every operator with estimated vs actual \
     cardinality, time and q-error."
  in
  let f scale csvs shards prefetch no_histograms calibrate analyze plan_cache
      json sql =
    catch_errors (fun () ->
        let mw =
          setup ~scale ~csvs ~shards ~prefetch ~no_histograms ~calibrate
            ~trace:false ~profiling:analyze ~plan_cache ()
        in
        run_query ?json mw ~explain_only:true ~analyze ~verbose:false sql)
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const f $ scale_arg $ csv_arg $ shards_arg $ prefetch_arg
          $ no_hist_arg $ calibrate_arg $ analyze_arg $ plan_cache_arg
          $ json_arg $ sql_arg)

let repl_cmd =
  let doc = "Interactive session: one query per line; 'quit' exits." in
  let f scale csvs shards prefetch no_histograms calibrate verbose trace
      plan_cache =
    let mw =
      setup ~scale ~csvs ~shards ~prefetch ~no_histograms ~calibrate ~trace
        ~plan_cache ()
    in
    Fmt.pr "tango> @?";
    (try
       let rec loop () =
         match String.trim (input_line stdin) with
         | "quit" | "exit" -> ()
         | "" ->
             Fmt.pr "tango> @?";
             loop ()
         | sql ->
             ignore
               (catch_errors (fun () ->
                    run_query mw ~explain_only:false ~analyze:false ~verbose sql));
             Fmt.pr "tango> @?";
             loop ()
       in
       loop ()
     with End_of_file -> ());
    0
  in
  Cmd.v (Cmd.info "repl" ~doc)
    Term.(const f $ scale_arg $ csv_arg $ shards_arg $ prefetch_arg
          $ no_hist_arg $ calibrate_arg $ verbose_arg $ trace_arg
          $ plan_cache_arg)

(* ---------------- check (plan verification) ---------------- *)

module Diag = Tango_verify.Diag

(* Lint one query: the initial logical plan, then (via the session's
   verify_plans mode) every rule application and the chosen physical plan.
   Never raises — failures become diagnostics so --all keeps going. *)
let check_one mw sql : Diag.t list =
  match
    ( Tango_tsql.Compile.initial_plan ~lookup:(Middleware.schema_lookup mw) sql,
      Tango_tsql.Compile.required_order sql )
  with
  | exception Tango_sql.Parser.Parse_error m ->
      [ Diag.v Diag.Error "schema" ~path:"<query>" ("does not parse: " ^ m) ]
  | exception Tango_sql.Lexer.Lex_error m ->
      [ Diag.v Diag.Error "schema" ~path:"<query>" ("does not lex: " ^ m) ]
  | exception Tango_tsql.Compile.Unsupported m ->
      [ Diag.v Diag.Error "schema" ~path:"<query>" ("unsupported: " ^ m) ]
  | exception Tango_dbms.Catalog.No_such_table t ->
      [ Diag.v Diag.Error "schema" ~path:"<query>" ("no such table: " ^ t) ]
  | initial, required_order -> (
      let logical =
        Tango_verify.Check.check_logical
          ~stats_env:(Middleware.stats_env mw)
          ~expect_root:Tango_algebra.Op.Mw initial
      in
      match Middleware.optimize mw ~required_order initial with
      | exception Tango_algebra.Op.Ill_formed m ->
          logical
          @ [ Diag.v Diag.Error "schema" ~path:"<query>" ("ill-formed: " ^ m) ]
      | res ->
          logical
          @ Middleware.last_diagnostics mw
          @
          (match res.Tango_volcano.Search.plan with
          | Some _ -> []
          | None ->
              [
                Diag.v Diag.Error "boundary" ~path:"<query>"
                  ~hint:"no physical plan satisfies the root requirement"
                  "optimizer found no feasible plan";
              ]))

let all_arg =
  Arg.(value & flag
       & info [ "all" ]
           ~doc:"Check the whole built-in UIS workload instead of one query.")

let per_rule_arg =
  Arg.(value & flag
       & info [ "per-rule" ]
           ~doc:"Additionally verify the memo after every transformation-rule \
                 application and attribute findings to the offending rule \
                 (verify_plans=per-rule).")

let check_sql_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")

let check_cmd =
  let doc =
    "Statically verify query plans: schema/type well-formedness, transfer \
     boundaries and SQL translatability, ordering-property propagation, and \
     estimate sanity.  Exits nonzero when any error-severity diagnostic is \
     found."
  in
  let f scale csvs shards all per_rule json sql =
    setup_logs false;
    let queries =
      match (all, sql) with
      | true, _ -> Tango_workload.Queries.workload
      | false, Some sql -> [ ("query", sql) ]
      | false, None ->
          Fmt.epr "tango check: give a SQL argument or --all@.";
          exit 2
    in
    let mw =
      setup ~scale ~csvs ~shards ~prefetch:None ~no_histograms:false
        ~calibrate:false ~trace:false ()
    in
    Middleware.set_config mw
      (Middleware.Config.with_verify_plans
         (if per_rule then Middleware.Config.Verify_per_rule
          else Middleware.Config.Verify_final)
         (Middleware.config mw));
    let results = List.map (fun (name, sql) -> (name, check_one mw sql)) queries in
    let total_errors = ref 0 and total_warnings = ref 0 in
    List.iter
      (fun (name, diags) ->
        let errors = Diag.count_errors diags in
        let warnings =
          List.length
            (List.filter (fun d -> d.Diag.severity = Diag.Warning) diags)
        in
        total_errors := !total_errors + errors;
        total_warnings := !total_warnings + warnings;
        if errors > 0 then
          Fmt.pr "%s: FAILED (%d error%s, %d warning%s)@." name errors
            (if errors = 1 then "" else "s")
            warnings
            (if warnings = 1 then "" else "s")
        else Fmt.pr "%s: ok (%d warning%s)@." name warnings
            (if warnings = 1 then "" else "s");
        List.iter (fun d -> Fmt.pr "  %s@." (Diag.to_string d)) diags)
      results;
    Fmt.pr "%d quer%s checked: %d error%s, %d warning%s@."
      (List.length results)
      (if List.length results = 1 then "y" else "ies")
      !total_errors
      (if !total_errors = 1 then "" else "s")
      !total_warnings
      (if !total_warnings = 1 then "" else "s");
    emit_json json
      ("["
      ^ String.concat ","
          (List.map
             (fun (name, diags) ->
               Printf.sprintf
                 "{\"query\":\"%s\",\"errors\":%d,\"diagnostics\":%s}"
                 (json_escape name)
                 (Diag.count_errors diags)
                 (Diag.list_to_json diags))
             results)
      ^ "]");
    if !total_errors > 0 then 1 else 0
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const f $ scale_arg $ csv_arg $ shards_arg $ all_arg $ per_rule_arg
          $ json_arg $ check_sql_arg)

let tables_cmd =
  let doc = "List the tables of the generated/loaded database with statistics." in
  let f scale csvs shards =
    catch_errors (fun () ->
        let mw =
          setup ~scale ~csvs ~shards ~prefetch:None ~no_histograms:false
            ~calibrate:false ~trace:false ()
        in
        let db = Middleware.database mw in
        List.iter
          (fun name ->
            match Tango_dbms.Database.stats_of db name with
            | Some st -> Fmt.pr "%a@.@." Tango_dbms.Stat.pp st
            | None -> Fmt.pr "%s (not analyzed)@." name)
          (Tango_dbms.Catalog.table_names (Tango_dbms.Database.catalog db)))
  in
  Cmd.v (Cmd.info "tables" ~doc)
    Term.(const f $ scale_arg $ csv_arg $ shards_arg)

(* ---------------- serve (monitoring endpoint) ---------------- *)

let port_arg =
  Arg.(value & opt int 7117
       & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port to listen on; 0 picks a free port.")

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")

let slo_latency_arg =
  Arg.(value & opt float 100.0
       & info [ "slo-latency-ms" ] ~docv:"MS"
           ~doc:"Per-query latency objective in milliseconds.")

let sample_every_arg =
  Arg.(value & opt int 1
       & info [ "sample-every" ] ~docv:"N"
           ~doc:"Keep every $(docv)-th query in the event log (1 = all); \
                 failures and slow queries are always kept.")

let log_capacity_arg =
  Arg.(value & opt int 256
       & info [ "log-capacity" ] ~docv:"N"
           ~doc:"Event-log ring capacity (oldest records evicted first).")

let slow_keep_arg =
  Arg.(value & opt float 0.0
       & info [ "slow-keep-ms" ] ~docv:"MS"
           ~doc:"Always keep queries at least this slow in the event log, \
                 regardless of sampling (0 disables the override).")

let max_requests_arg =
  Arg.(value & opt (some int) None
       & info [ "max-requests" ] ~docv:"N"
           ~doc:"Exit after serving $(docv) connections (for smoke tests).")

let serve_cmd =
  let doc =
    "Serve the monitoring endpoint over HTTP: GET /metrics (Prometheus), \
     /healthz, /slo (burn-rate verdict), /queries?n=K (sampled per-query \
     event log), /trace (Chrome trace JSON of the last run), and POST \
     /query to run temporal SQL from the request body."
  in
  let f scale csvs shards prefetch no_histograms calibrate port host
      slo_latency_ms sample_every log_capacity slow_keep_ms max_requests =
    catch_errors (fun () ->
        (* Validate flags up front: a bad value should produce one clear
           line, not an [Invalid_argument] backtrace from deep inside
           Event_log or the socket bind. *)
        if port < 0 || port > 65535 then
          failwith
            (Printf.sprintf "--port must be in 0..65535 (got %d)" port);
        if log_capacity <= 0 then
          failwith
            (Printf.sprintf "--log-capacity must be positive (got %d)"
               log_capacity);
        if sample_every <= 0 then
          failwith
            (Printf.sprintf "--sample-every must be positive (got %d)"
               sample_every);
        (match max_requests with
        | Some n when n <= 0 ->
            failwith
              (Printf.sprintf "--max-requests must be positive (got %d)" n)
        | _ -> ());
        if slo_latency_ms <= 0.0 then
          failwith
            (Printf.sprintf "--slo-latency-ms must be positive (got %g)"
               slo_latency_ms);
        if slow_keep_ms < 0.0 then
          failwith
            (Printf.sprintf "--slow-keep-ms must be non-negative (got %g)"
               slow_keep_ms);
        setup_logs false;
        (* one session serves every request: the plan cache persists
           across POST /query submissions *)
        let mw =
          setup ~scale ~csvs ~shards ~prefetch ~no_histograms ~calibrate
            ~trace:true ~profiling:true ~plan_cache:true ()
        in
        let log =
          Tango_monitor.Event_log.create ~capacity:log_capacity ~sample_every
            ~slow_keep_us:(slow_keep_ms *. 1000.0) ()
        in
        let slo =
          Tango_monitor.Slo.create
            ~objective:
              {
                Tango_monitor.Slo.default_objective with
                Tango_monitor.Slo.latency_us = slo_latency_ms *. 1000.0;
              }
            ()
        in
        let endpoints = Tango_monitor.Endpoints.create ~log ~slo mw in
        let sock = Tango_monitor.Http.listen ~host ~port () in
        (* SIGINT/SIGTERM set a flag; the blocking accept returns with
           EINTR and the loop re-checks it — the in-flight request (the
           loop is sequential) is drained first, then we fall through to
           the final snapshot below. *)
        let stop = ref false in
        let stop_handler = Sys.Signal_handle (fun _ -> stop := true) in
        Sys.set_signal Sys.sigint stop_handler;
        Sys.set_signal Sys.sigterm stop_handler;
        Fmt.pr "tango: serving monitoring endpoint on http://%s:%d@." host
          (Tango_monitor.Http.bound_port sock);
        Fmt.pr
          "  GET /metrics /healthz /slo /queries?n=K /queries/SEQ \
           /debug/watchdog /debug/contention /trace — POST /query@.";
        Fmt.pr "%!";
        Fun.protect
          ~finally:(fun () -> try Unix.close sock with _ -> ())
          (fun () ->
            Tango_monitor.Http.accept_loop ?max_requests
              ~should_stop:(fun () -> !stop)
              sock
              (Tango_monitor.Endpoints.handler endpoints));
        if !stop then
          Fmt.pr "@.tango: signal received, in-flight request drained@.";
        Fmt.pr "@.final registry snapshot:@.%a@." Tango_obs.Registry.pp
          (Tango_obs.Registry.snapshot ()))
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const f $ scale_arg $ csv_arg $ shards_arg $ prefetch_arg
          $ no_hist_arg $ calibrate_arg $ port_arg $ host_arg
          $ slo_latency_arg $ sample_every_arg $ log_capacity_arg
          $ slow_keep_arg $ max_requests_arg)

(* ---------------- lint (domain-safety analyzer) ---------------- *)

let lint_cmd =
  let doc =
    "Run the domain-safety lint over the compiled tree: inventory \
     module-level mutable state, flag mutation sites not guarded by \
     Mutex.protect/Dsync.protect, and check interface hygiene.  Exits \
     nonzero when an error-severity finding is neither annotated with \
     [\\@tango.unguarded] nor covered by the allow file."
  in
  let build_arg =
    Arg.(value & opt string "_build/default"
         & info [ "build" ] ~docv:"DIR"
             ~doc:"Dune build context holding the .cmt files.")
  in
  let src_arg =
    Arg.(value & opt string "."
         & info [ "src" ] ~docv:"DIR"
             ~doc:"Repository root (for hygiene checks and the allow file).")
  in
  let allow_arg =
    Arg.(value & opt string "lint-allow"
         & info [ "allow" ] ~docv:"FILE"
             ~doc:"Allowlist path, relative to $(b,--src).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as JSON on stdout.")
  in
  let github_arg =
    Arg.(value & flag
         & info [ "github" ]
             ~doc:"Also emit GitHub workflow-command annotations \
                   (::error file=...) for failing findings.")
  in
  let verbose_arg =
    Arg.(value & flag
         & info [ "verbose"; "v" ]
             ~doc:"Show every finding, including the Info-severity state \
                   inventory and allowed findings.")
  in
  let f build src allow json github verbose =
    let report =
      Tango_lint.Lint.run
        { Tango_lint.Lint.default_config with
          Tango_lint.Lint.build_dir = build; src_dir = src; allow_file = allow }
    in
    if json then print_string (Tango_lint.Lint.to_json report ^ "\n")
    else Tango_lint.Lint.render ~verbose Fmt.stdout report;
    if github then
      List.iter print_endline (Tango_lint.Lint.github_annotations report);
    if Tango_lint.Lint.failing report = [] then 0 else 1
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const f $ build_arg $ src_arg $ allow_arg $ json_arg $ github_arg
          $ verbose_arg)

let main =
  let doc = "TANGO: adaptable temporal query middleware on a conventional DBMS" in
  (* [run] is the default subcommand: `tango --trace "SQL"` works. *)
  Cmd.group ~default:run_term
    (Cmd.info "tango" ~version:"1.0.0" ~doc)
    [ run_cmd; explain_cmd; repl_cmd; tables_cmd; check_cmd; serve_cmd;
      lint_cmd ]

let () = exit (Cmd.eval' main)
