(* Adaptation: cost-factor feedback re-partitions subsequent queries.

   The paper's middleware "uses performance feedback from the DBMS to adapt
   its partitioning of subsequent queries".  This example demonstrates it
   on the regular join of POSITION and EMPLOYEE (the paper's Query 4):

   - the middleware's merge join must transfer BOTH argument relations out
     of the DBMS (~100 bytes/tuple in total);
   - the DBMS join transfers only the three projected result columns.

   On a fast network the optimizer may still favour the middleware join
   (our EMPLOYEE is unindexed here, so the DBMS join is a generic one).
   As the network degrades — simulated by growing the per-round-trip cost
   of the client boundary — feedback inflates the transfer factor p_tm,
   and the optimizer moves the join back into the DBMS, because shipping
   two whole relations no longer pays off.

   Run with:  dune exec examples/adaptive_offload.exe *)

open Tango_rel
open Tango_core
open Tango_workload

let join_runs_in report =
  let open Tango_volcano.Physical in
  let rec go p =
    if p.algorithm = Merge_join_m then "MERGEJOIN^M (middleware)"
    else if p.algorithm = Join_d then "JOIN^D (DBMS)"
    else
      List.fold_left (fun acc c -> if acc = "" then go c else acc) "" p.children
  in
  go report.Middleware.physical

let () =
  let db = Tango_dbms.Database.create () in
  (* Load without the EmpID index: the DBMS join is a generic one, so the
     placement decision hinges on transfer costs alone. *)
  Tango_dbms.Database.load_relation db "POSITION" (Uis.position ~n:900 ~employees:500 ());
  Tango_dbms.Database.load_relation db "EMPLOYEE" (Uis.employee ~n:500 ());
  Tango_dbms.Database.analyze_all db ();
  let mw = Middleware.connect ~row_prefetch:16 db in
  Middleware.calibrate mw;
  Middleware.set_config mw
    Middleware.Config.(with_feedback true (Middleware.config mw));

  Fmt.pr "Feedback-driven adaptation (same query, degrading network):@.@.";
  Fmt.pr "%-6s %-12s %-10s %-26s %s@." "round" "spin/rt" "p_tm" "join runs in" "exec ms";
  let spins = [ 0; 0; 0 ] @ List.init 5 (fun _ -> 3_000_000) in
  List.iteri
    (fun i spin ->
      Tango_dbms.Client.set_roundtrip_spin (Middleware.client mw) spin;
      let report = Middleware.query mw Queries.q4_sql in
      Fmt.pr "%-6d %-12d %-10.4f %-26s %.1f@." (i + 1) spin
        (Middleware.factors mw).Tango_cost.Factors.p_tm
        (join_runs_in report)
        (report.Middleware.execute_us /. 1000.0);
      ignore (Relation.cardinality report.Middleware.result))
    spins;
  Fmt.pr
    "@.The transfer factor p_tm grows as transfers slow down; once shipping \
     both@.argument relations costs more than shipping the projected join \
     result, the@.optimizer moves the join back into the DBMS.@."
