examples/adaptive_offload.ml: Fmt List Middleware Queries Relation Tango_core Tango_cost Tango_dbms Tango_rel Tango_volcano Tango_workload Uis
