examples/quickstart.ml: Database Exec_plan Fmt Middleware Relation Tango_core Tango_dbms Tango_rel Tango_volcano
