examples/payroll_overlap.ml: Array Fmt List Middleware Queries Relation Sys Tango_core Tango_dbms Tango_rel Tango_volcano Tango_workload Tuple Uis Value
