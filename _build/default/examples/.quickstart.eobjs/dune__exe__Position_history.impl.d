examples/position_history.ml: Array Fmt List Middleware Queries Relation Sys Tango_core Tango_cost Tango_dbms Tango_rel Tango_volcano Tango_workload Uis
