examples/adaptive_offload.mli:
