examples/room_bookings.ml: Fmt List Middleware Relation Schema Tango_core Tango_dbms Tango_rel Tango_temporal Tango_volcano Tuple Value
