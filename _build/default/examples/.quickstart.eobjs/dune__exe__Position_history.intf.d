examples/position_history.mli:
