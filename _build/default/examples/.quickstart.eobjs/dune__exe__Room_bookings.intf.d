examples/room_bookings.mli:
