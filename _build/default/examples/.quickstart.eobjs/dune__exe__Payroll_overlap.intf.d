examples/payroll_overlap.mli:
