examples/quickstart.mli:
