(* Finding overlapping job assignments — a temporal self-join.

   Audit scenario: which pairs of employees occupied the same position at
   the same time (paper Query 3)?  The answer is a temporal self-join of
   POSITION, and where it should run depends on the data: when the result
   outgrows the arguments, the middleware's sort-merge temporal join beats
   shipping the (large) joined result out of the DBMS.

   Run with:  dune exec examples/payroll_overlap.exe *)

open Tango_rel
open Tango_core
open Tango_workload

let () =
  let scale = try float_of_string Sys.argv.(1) with _ -> 0.02 in
  let db = Tango_dbms.Database.create () in
  Uis.load ~scale db;
  let mw = Middleware.connect db in
  Middleware.calibrate mw;

  let sql = Queries.q3_sql ~start_bound:"1997-01-01" in
  Fmt.pr "Query:@.  %s@.@." sql;
  let report = Middleware.query mw sql in
  Fmt.pr "Optimizer-chosen plan:@.%s@."
    (Tango_volcano.Physical.to_string report.Middleware.physical);
  Fmt.pr "%d overlapping assignment pairs in %.1f ms@.@."
    (Relation.cardinality report.Middleware.result)
    (report.Middleware.execute_us /. 1000.0);

  (* Show the overlap audit for the busiest position. *)
  let r = report.Middleware.result in
  let s = Relation.schema r in
  (match Relation.to_list r with
  | [] -> Fmt.pr "No overlaps found.@."
  | first :: _ ->
      let pos = Tuple.field s first "PosID" in
      let busiest =
        Relation.filter (fun t -> Value.equal (Tuple.field s t "PosID") pos) r
      in
      Fmt.pr "Overlaps for position %a:@.%a@." Value.pp pos Relation.pp
        (Relation.of_list s
           (List.filteri (fun i _ -> i < 6) (Relation.to_list busiest))));

  (* Compare both plan placements, as the paper does in Figure 11(a). *)
  Fmt.pr "Plan placement comparison (Figure 11(a) style):@.";
  List.iter
    (fun (name, tree) ->
      let rep = Middleware.run_fixed mw ~required_order:Queries.q3_order tree in
      Fmt.pr "  %-16s %8.1f ms (%d tuples)@." name
        (rep.Middleware.execute_us /. 1000.0)
        (Relation.cardinality rep.Middleware.result))
    (Queries.q3_plans ~position:"POSITION" ~start_bound:"1997-01-01" ())
