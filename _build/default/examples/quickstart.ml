(* Quickstart: the paper's running example (Section 2.2, Figure 3).

   Builds the POSITION relation in the embedded DBMS, connects the TANGO
   middleware on top, and runs the temporal aggregation + temporal join
   query: "for each position tuple, the number of employees assigned to
   that position over time".

   Run with:  dune exec examples/quickstart.exe *)

open Tango_rel
open Tango_dbms
open Tango_core

let () =
  (* 1. A conventional DBMS with the POSITION relation of Figure 3(a).
     Time values are plain day numbers in the paper's example; we use
     January 1970 days so chronon = day number. *)
  let db = Database.create () in
  ignore (Database.execute db
    "CREATE TABLE POSITION (PosID INT, EmpName VARCHAR, T1 DATE, T2 DATE)");
  ignore (Database.execute db
    "INSERT INTO POSITION VALUES (1, 'Tom', 2, 20), (1, 'Jane', 5, 25), (2, 'Tom', 5, 10)");
  Database.analyze_all db ();

  (* 2. TANGO on top. *)
  let mw = Middleware.connect db in

  (* 3. Temporal SQL in; the middleware parses, optimizes, splits the plan
     between itself and the DBMS, and executes. *)
  let sql =
    "VALIDTIME SELECT A.PosID AS PosID, B.EmpName AS EmpName, A.CNT AS \
     COUNTofPosID FROM (VALIDTIME SELECT PosID, COUNT(*) AS CNT FROM \
     POSITION GROUP BY PosID) A, POSITION B WHERE A.PosID = B.PosID ORDER \
     BY PosID"
  in
  let report = Middleware.query mw sql in

  Fmt.pr "Query:@.  %s@.@." sql;
  Fmt.pr "Result (the paper's Figure 3(b)):@.%a@."
    Relation.pp report.Middleware.result;
  Fmt.pr "Chosen physical plan (estimated %.0f us):@.%s@."
    report.Middleware.estimated_cost_us
    (Tango_volcano.Physical.to_string report.Middleware.physical);
  Fmt.pr "Execution-ready plan (cf. paper Figure 5):@.%s@."
    (Exec_plan.to_string report.Middleware.exec);
  Fmt.pr "Optimizer explored %d equivalence classes / %d elements in %.1f ms@."
    report.Middleware.classes report.Middleware.elements
    (report.Middleware.optimize_us /. 1000.0);
  Fmt.pr "Executed in %.1f ms@." (report.Middleware.execute_us /. 1000.0)
