(* Staffing history over a realistic workload.

   Loads a scaled UIS-like database (the paper's EMPLOYEE/POSITION shapes),
   then asks the middleware for per-position staffing levels over time —
   the paper's Query 1.  The interesting part is *where* the work runs:
   with calibrated cost factors the optimizer assigns temporal aggregation
   to the middleware (its sort-merge algorithm) while leaving the sort in
   the DBMS, which the paper shows is up to 10x faster than evaluating the
   aggregation as SQL.  For contrast, the all-DBMS plan is also timed.

   Run with:  dune exec examples/position_history.exe *)

open Tango_rel
open Tango_core
open Tango_workload

let () =
  let scale = try float_of_string Sys.argv.(1) with _ -> 0.02 in
  Fmt.pr "Loading UIS workload at scale %.3f...@." scale;
  let db = Tango_dbms.Database.create () in
  Uis.load ~scale db;
  Fmt.pr "  POSITION: %d tuples, EMPLOYEE: %d tuples@.@."
    (Tango_dbms.Database.table_cardinality db "POSITION")
    (Tango_dbms.Database.table_cardinality db "EMPLOYEE");

  let mw = Middleware.connect db in
  Fmt.pr "Calibrating cost factors against this DBMS...@.";
  Middleware.calibrate mw;
  Fmt.pr "  %a@.@." Tango_cost.Factors.pp (Middleware.factors mw);

  (* The middleware picks the plan. *)
  let report = Middleware.query mw Queries.q1_sql in
  Fmt.pr "Optimizer-chosen plan:@.%s@."
    (Tango_volcano.Physical.to_string report.Middleware.physical);
  Fmt.pr "%d result tuples in %.1f ms (optimization %.1f ms)@.@."
    (Relation.cardinality report.Middleware.result)
    (report.Middleware.execute_us /. 1000.0)
    (report.Middleware.optimize_us /. 1000.0);

  (* First rows of the staffing history. *)
  let preview =
    Relation.of_list
      (Relation.schema report.Middleware.result)
      (List.filteri (fun i _ -> i < 8) (Relation.to_list report.Middleware.result))
  in
  Fmt.pr "First rows:@.%a@." Relation.pp preview;

  (* Compare against forcing everything into the DBMS (paper Fig. 8 plan 3). *)
  Fmt.pr "Timing the same query with all processing forced into the DBMS...@.";
  let forced =
    Middleware.run_fixed mw ~required_order:Queries.q1_order
      (Queries.q1_plan3 ~position:"POSITION" ())
  in
  Fmt.pr "  all-DBMS: %.1f ms  |  middleware plan: %.1f ms  (%.1fx)@."
    (forced.Middleware.execute_us /. 1000.0)
    (report.Middleware.execute_us /. 1000.0)
    (forced.Middleware.execute_us /. report.Middleware.execute_us);
  (* Same content modulo column order (the SQL front end projects
     PosID, CNT, T1, T2; the raw plan emits the aggregation's natural
     PosID, T1, T2, CNT). *)
  let normalize r =
    Relation.project [ "PosID"; "CNT"; "T1"; "T2" ] r
  in
  assert
    (Relation.equal_multiset
       (normalize forced.Middleware.result)
       (normalize report.Middleware.result))
