(* Coalescing bookings into occupancy spans, and spotting full rooms.

   A meeting-room system stores one row per booking (Room, Team, [T1, T2)).
   Two temporal questions:

   1. When is each room occupied at all?  Back-to-back and overlapping
      bookings should merge — that is coalescing (VALIDTIME COALESCE
      SELECT), one of the paper's planned operator additions, implemented
      here with a middleware algorithm and its own move-to-middleware rule.

   2. How many concurrent bookings does each room carry over time?  That is
      temporal aggregation (the paper's headline operator).

   Run with:  dune exec examples/room_bookings.exe *)

open Tango_rel
open Tango_core

let day = Tango_temporal.Chronon.of_string

let bookings =
  (* (room, team, from, to) — deliberately overlapping and adjacent *)
  [
    ("Blue", "Compilers", "2026-07-06", "2026-07-08");
    ("Blue", "Databases", "2026-07-08", "2026-07-10");   (* adjacent: merges *)
    ("Blue", "Systems", "2026-07-09", "2026-07-12");     (* overlaps *)
    ("Blue", "Theory", "2026-07-20", "2026-07-22");      (* separate span *)
    ("Red", "Compilers", "2026-07-06", "2026-07-09");
    ("Red", "Databases", "2026-07-07", "2026-07-08");    (* nested *)
    ("Red", "Theory", "2026-07-15", "2026-07-16");
  ]

let () =
  let db = Tango_dbms.Database.create () in
  let schema =
    Schema.make
      [ ("Room", Value.TStr); ("Team", Value.TStr);
        ("T1", Value.TDate); ("T2", Value.TDate) ]
  in
  Tango_dbms.Database.load_relation db "BOOKING"
    (Relation.of_list schema
       (List.map
          (fun (room, team, a, b) ->
            Tuple.of_list
              [ Value.Str room; Value.Str team;
                Value.Date (day a); Value.Date (day b) ])
          bookings));
  Tango_dbms.Database.analyze_all db ();
  let mw = Middleware.connect db in

  Fmt.pr "Bookings:@.%a@."
    Relation.pp (Tango_dbms.Database.query db "SELECT * FROM BOOKING");

  (* 1. occupancy spans per room: project away the team, then coalesce *)
  let occupancy =
    Middleware.query mw
      "VALIDTIME COALESCE SELECT Room FROM BOOKING ORDER BY Room"
  in
  Fmt.pr "Occupancy spans (VALIDTIME COALESCE — adjacent/overlapping bookings merge):@.%a@."
    Relation.pp occupancy.Middleware.result;

  (* 2. concurrency: how many bookings are live in each room over time *)
  let load =
    Middleware.query mw
      "VALIDTIME SELECT Room, COUNT(*) AS Concurrent FROM BOOKING GROUP BY \
       Room ORDER BY Room"
  in
  Fmt.pr "Concurrent bookings over time (temporal aggregation):@.%a@."
    Relation.pp load.Middleware.result;

  (* 3. double-booked moments: timeslice the aggregation result *)
  let clashes =
    Middleware.query mw
      "VALIDTIME SELECT A.Room, A.Concurrent FROM (VALIDTIME SELECT Room, \
       COUNT(*) AS Concurrent FROM BOOKING GROUP BY Room) A WHERE \
       A.Concurrent > 1 ORDER BY A.Room"
  in
  Fmt.pr "Double-booked periods:@.%a@." Relation.pp clashes.Middleware.result;
  Fmt.pr "Plan for the double-booking query:@.%s@."
    (Tango_volcano.Physical.to_string clashes.Middleware.physical)
