(** In-memory relations: a schema plus a sequence of tuples.

    Relations are {e lists} in the paper's sense — duplicates are retained
    and tuple order is significant; a known sort order may be attached as a
    property. *)

type t = {
  schema : Schema.t;
  tuples : Tuple.t array;
  order : Order.t;  (** known sort order, [[]] when unknown *)
}

val make : ?order:Order.t -> Schema.t -> Tuple.t array -> t
val of_list : ?order:Order.t -> Schema.t -> Tuple.t list -> t

val schema : t -> Schema.t
val tuples : t -> Tuple.t array
val order : t -> Order.t
val cardinality : t -> int
val is_empty : t -> bool
val to_list : t -> Tuple.t list

val byte_size : t -> int
(** Total bytes — the [size(r)] statistic. *)

val avg_tuple_size : t -> float

val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val map_tuples : (Tuple.t -> Tuple.t) -> t -> Tuple.t array
val column : t -> string -> Value.t array

val sort : Order.t -> t -> t
(** Stable sort; records the resulting order property. *)

val filter : (Tuple.t -> bool) -> t -> t
(** Order-preserving. *)

val project : string list -> t -> t

val equal_multiset : t -> t -> bool
(** Same tuples with the same multiplicities (order ignored). *)

val equal_list : t -> t -> bool
(** Same tuples in the same positions. *)

val distinct_count : t -> string -> int
(** The [distinct(A, r)] statistic. *)

val min_value : t -> string -> Value.t option
val max_value : t -> string -> Value.t option

val pp : Format.formatter -> t -> unit
(** Aligned tabular rendering. *)

val to_string : t -> string
