(** In-memory relations: a schema plus a sequence of tuples.

    Relations are *lists* in the sense of the paper's algebra: duplicates are
    retained and tuple order is significant (an order property may be
    attached).  Most operators in the middleware work on cursors
    ({!Tango_xxl}); this module is the materialized form used by tests, the
    workload generators, and small intermediate results. *)

type t = {
  schema : Schema.t;
  tuples : Tuple.t array;
  order : Order.t;  (** known sort order, [[]] when unknown *)
}

let make ?(order = []) schema tuples = { schema; tuples; order }

let of_list ?(order = []) schema tuples =
  { schema; tuples = Array.of_list tuples; order }

let schema r = r.schema
let tuples r = r.tuples
let order r = r.order
let cardinality r = Array.length r.tuples
let is_empty r = cardinality r = 0
let to_list r = Array.to_list r.tuples

(** Total size in bytes — the [size(r)] statistic of the cost formulas. *)
let byte_size r =
  Array.fold_left (fun acc t -> acc + Tuple.byte_size t) 0 r.tuples

let avg_tuple_size r =
  let n = cardinality r in
  if n = 0 then 0.0 else float_of_int (byte_size r) /. float_of_int n

let iter f r = Array.iter f r.tuples
let fold f init r = Array.fold_left f init r.tuples
let map_tuples f r = Array.map f r.tuples

let column r name =
  let i = Schema.index r.schema name in
  Array.map (fun t -> t.(i)) r.tuples

(** Stable sort by [order]; records the resulting order property. *)
let sort order_ r =
  let cmp = Order.comparator order_ r.schema in
  let tuples = Array.copy r.tuples in
  (* Array.stable_sort preserves the relative order of equal tuples, which
     matters for list equivalence of the sort operator. *)
  Array.stable_sort cmp tuples;
  { r with tuples; order = order_ }

let filter pred r =
  (* Filtering preserves order. *)
  { r with tuples = Array.of_seq (Seq.filter pred (Array.to_seq r.tuples)) }

let project names r =
  let schema' = Schema.project r.schema names in
  let idxs = List.map (Schema.index r.schema) names in
  let proj t = Array.of_list (List.map (fun i -> t.(i)) idxs) in
  let order' =
    if List.for_all (fun k -> List.mem (Schema.base_name k.Order.attr)
                                (List.map Schema.base_name names)) r.order
    then r.order
    else []
  in
  { schema = schema'; tuples = Array.map proj r.tuples; order = order' }

(** Multiset equality: same tuples with the same multiplicities. *)
let equal_multiset a b =
  Schema.union_compatible a.schema b.schema
  && cardinality a = cardinality b
  &&
  let sa = Array.copy a.tuples and sb = Array.copy b.tuples in
  Array.sort Tuple.compare sa;
  Array.sort Tuple.compare sb;
  Array.for_all2 Tuple.equal sa sb

(** List equality: same tuples in the same positions. *)
let equal_list a b =
  Schema.union_compatible a.schema b.schema
  && cardinality a = cardinality b
  && Array.for_all2 Tuple.equal a.tuples b.tuples

(** Count of distinct values in a named attribute — the [distinct(A, r)]
    statistic. *)
let distinct_count r name =
  let vs = Array.copy (column r name) in
  Array.sort Value.compare vs;
  let n = Array.length vs in
  if n = 0 then 0
  else begin
    let count = ref 1 in
    for i = 1 to n - 1 do
      if Value.compare vs.(i) vs.(i - 1) <> 0 then incr count
    done;
    !count
  end

let min_value r name =
  Array.fold_left
    (fun acc v ->
      if Value.is_null v then acc
      else
        match acc with
        | None -> Some v
        | Some m -> Some (if Value.compare v m < 0 then v else m))
    None (column r name)

let max_value r name =
  Array.fold_left
    (fun acc v ->
      if Value.is_null v then acc
      else
        match acc with
        | None -> Some v
        | Some m -> Some (if Value.compare v m > 0 then v else m))
    None (column r name)

let pp ppf r =
  let widths =
    Array.map (fun a -> String.length a.Schema.name) r.schema
  in
  Array.iter
    (fun t ->
      Array.iteri
        (fun i v ->
          widths.(i) <- max widths.(i) (String.length (Value.to_string v)))
        t)
    r.tuples;
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  Fmt.pf ppf "%s@."
    (String.concat " | "
       (List.mapi
          (fun i a -> pad a.Schema.name widths.(i))
          (Array.to_list r.schema)));
  Array.iter
    (fun t ->
      Fmt.pf ppf "%s@."
        (String.concat " | "
           (List.mapi
              (fun i v -> pad (Value.to_string v) widths.(i))
              (Array.to_list t))))
    r.tuples

let to_string r = Fmt.str "%a" pp r
