(** Minimal CSV import/export for relations (comma separator, double-quote
    escaping, header line).  Values are written in a plain syntax and
    parsed back against a schema. *)

val set_date_parser : (string -> int) -> unit
(** Override how DATE cells parse (default: raw chronon integers).
    {!Tango_temporal.Chronon} installs a parser that also accepts ISO
    dates. *)

val write_channel : out_channel -> Relation.t -> unit
val write_file : string -> Relation.t -> unit

val read_file : Schema.t -> string -> Relation.t
(** Parse a CSV whose header lists exactly the schema's attribute names
    (order may differ); empty cells become [Null].  Raises [Failure] on
    missing columns. *)
