(** Tuples: flat arrays of values, positionally matching a {!Schema.t}. *)

type t = Value.t array

val arity : t -> int
val get : t -> int -> Value.t
val of_list : Value.t list -> t
val to_list : t -> Value.t list

val field : Schema.t -> t -> string -> Value.t
(** Field access by (possibly qualified) attribute name. *)

val concat : t -> t -> t

val project : Schema.t -> string list -> t -> t
(** Sub-tuple with the named attributes, in the given order. *)

val compare : t -> t -> int
(** Lexicographic by {!Value.compare}. *)

val equal : t -> t -> bool

val byte_size : t -> int
(** Total bytes, the per-tuple contribution to [size(r)]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val serialize : Buffer.t -> t -> unit
val deserialize : string -> int -> t * int

val marshal_roundtrip : t -> t
(** Serialize to a wire buffer and parse back — the marshalling work paid
    by every tuple crossing the middleware/DBMS boundary. *)
