(** Minimal CSV import/export for relations, used by examples and the CLI.

    The dialect is deliberately simple: comma separator, double-quote
    escaping for fields containing commas/quotes/newlines, first line is the
    header.  Values are written in a typed syntax and parsed back against a
    schema. *)

let escape_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let split_line line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let rec go i in_quotes =
    if i >= n then fields := Buffer.contents buf :: !fields
    else
      let c = line.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else if c = '"' then go (i + 1) true
      else if c = ',' then begin
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf;
        go (i + 1) false
      end
      else begin
        Buffer.add_char buf c;
        go (i + 1) false
      end
  in
  go 0 false;
  List.rev !fields

let field_of_value = function
  | Value.Null -> ""
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.17g" f
  | Value.Str s -> s
  | Value.Date d -> string_of_int d

(* DATE cells parse as raw chronons by default; {!Tango_temporal.Chronon}
   installs a parser that also accepts ISO dates (1997-02-01). *)
let date_parser : (string -> int) ref = ref int_of_string

let set_date_parser f = date_parser := f

let value_of_field dtype s =
  if s = "" then Value.Null
  else
    match dtype with
    | Value.TBool -> Value.Bool (bool_of_string s)
    | Value.TInt -> Value.Int (int_of_string s)
    | Value.TFloat -> Value.Float (float_of_string s)
    | Value.TStr -> Value.Str s
    | Value.TDate -> Value.Date (!date_parser s)

let write_channel oc r =
  output_string oc
    (String.concat "," (List.map escape_field (Schema.names (Relation.schema r))));
  output_char oc '\n';
  Relation.iter
    (fun t ->
      output_string oc
        (String.concat ","
           (List.map (fun v -> escape_field (field_of_value v)) (Tuple.to_list t)));
      output_char oc '\n')
    r

let write_file path r =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc r)

let read_lines ic =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

(** [read_file schema path] parses a CSV whose header must list exactly the
    schema's attribute names (order may differ). *)
let read_file schema path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      match read_lines ic with
      | [] -> Relation.of_list schema []
      | header :: rows ->
          let cols = split_line header in
          let positions =
            List.map
              (fun name ->
                match List.find_index (String.equal name) cols with
                | Some i -> i
                | None -> failwith ("Csv.read_file: missing column " ^ name))
              (Schema.names schema)
          in
          let parse_row line =
            let fields = Array.of_list (split_line line) in
            Array.of_list
              (List.mapi
                 (fun attr_i col_i ->
                   value_of_field (Schema.dtype_at schema attr_i) fields.(col_i))
                 positions)
          in
          Relation.of_list schema (List.map parse_row rows))
