(** Sort orders: lists of attributes with directions.

    The middleware algebra tracks order as a first-class plan property
    (list vs multiset equivalence in the paper, Section 4); this module is
    the shared vocabulary for those properties and for sort operators. *)

type direction = Asc | Desc

type key = { attr : string; dir : direction }

(** An order specification; the empty list means "no known order". *)
type t = key list

let asc attr = { attr; dir = Asc }
let desc attr = { attr; dir = Desc }

let of_attrs attrs = List.map asc attrs
let attrs (o : t) = List.map (fun k -> k.attr) o

let key_equal a b =
  (* Unqualified and qualified spellings of the same attribute compare
     equal, mirroring Schema.index resolution. *)
  a.dir = b.dir
  && (String.equal a.attr b.attr
     || String.equal (Schema.base_name a.attr) (Schema.base_name b.attr))

let equal (a : t) (b : t) =
  List.length a = List.length b && List.for_all2 key_equal a b

(** [is_prefix a b]: the paper's [IsPrefixOf(A, B)] predicate, used by
    rules T10 and T12. *)
let rec is_prefix (a : t) (b : t) =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | ka :: ta, kb :: tb -> key_equal ka kb && is_prefix ta tb

(** [satisfies actual required]: does a relation ordered by [actual] satisfy
    a requirement of [required]?  True when [required] is a prefix of
    [actual]. *)
let satisfies ~actual ~required = is_prefix required actual

(** Comparator over tuples for this order under the given schema. *)
let comparator (o : t) schema : Tuple.t -> Tuple.t -> int =
  let keys =
    List.map
      (fun k ->
        let idx = Schema.index schema k.attr in
        (idx, k.dir))
      o
  in
  fun a b ->
    let rec go = function
      | [] -> 0
      | (idx, dir) :: rest -> (
          let c = Value.compare a.(idx) b.(idx) in
          let c = match dir with Asc -> c | Desc -> -c in
          match c with 0 -> go rest | c -> c)
    in
    go keys

let pp_key ppf k =
  Fmt.pf ppf "%s%s" k.attr (match k.dir with Asc -> "" | Desc -> " DESC")

let pp ppf (o : t) = Fmt.(list ~sep:(any ", ") pp_key) ppf o
let to_string o = Fmt.str "%a" pp o
