(** Attribute histograms, as maintained by conventional DBMSs and consumed
    by the middleware's selectivity estimation (paper Section 3.3).

    Buckets cover the numeric view of values; for bucket [i], [b1]/[b2]
    give its bounds and [b_val] its value count — the paper's [b1(i,H)],
    [b2(i,H)], [bVal(i,H)] accessors. *)

type kind = Height_balanced | Width_balanced

type t

val kind : t -> kind
val bucket_count : t -> int
val total : t -> int

val b1 : t -> int -> float
val b2 : t -> int -> float
val b_val : t -> int -> int

val bucket_no : t -> float -> int
(** Bucket containing a value — the paper's [bNo(A,H)].  Values outside the
    covered range clamp to the first/last bucket.  Raises
    [Invalid_argument] on an empty histogram. *)

val height_balanced : buckets:int -> Value.t array -> t
(** Equi-depth histogram; nulls are excluded. *)

val width_balanced : buckets:int -> Value.t array -> t
(** Equi-width histogram; nulls are excluded. *)

val count_below : t -> float -> float
(** Estimated number of values strictly below the argument: full preceding
    buckets plus a uniform fraction of the containing bucket — the
    histogram branch of [StartBefore]/[EndBefore]. *)

val pp : Format.formatter -> t -> unit
