(** Sort orders: lists of attributes with directions.

    Order is a first-class plan property in the middleware (the paper's
    list vs multiset equivalence); this module is the shared vocabulary for
    those properties and for sort operators. *)

type direction = Asc | Desc

type key = { attr : string; dir : direction }

type t = key list
(** The empty list means "no known order". *)

val asc : string -> key
val desc : string -> key
val of_attrs : string list -> t
val attrs : t -> string list

val key_equal : key -> key -> bool
(** Keys compare with base-name fallback, mirroring {!Schema.index}. *)

val equal : t -> t -> bool

val is_prefix : t -> t -> bool
(** The paper's [IsPrefixOf(A, B)] (rules T10, T12). *)

val satisfies : actual:t -> required:t -> bool
(** Does a relation ordered by [actual] satisfy a requirement of
    [required]?  True when [required] is a prefix of [actual]. *)

val comparator : t -> Schema.t -> Tuple.t -> Tuple.t -> int

val pp_key : Format.formatter -> key -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
