(** Atomic values stored in tuples.

    Dates are represented as chronons — integer day numbers since
    1970-01-01 — which the relational layer does not interpret; calendar
    conversion lives in {!Tango_temporal.Chronon}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of int  (** chronon: day number *)

(** Data types for schema declarations. *)
type dtype = TBool | TInt | TFloat | TStr | TDate

val dtype_name : dtype -> string
(** SQL spelling of a type ([INT], [VARCHAR], …). *)

val dtype_of_name : string -> dtype
(** Inverse of {!dtype_name}; accepts common synonyms ([INTEGER],
    [TEXT], …).  Raises [Invalid_argument] on unknown names. *)

val type_of : t -> dtype
(** Type of a value.  Raises [Invalid_argument] on [Null]. *)

val is_null : t -> bool

val compare : t -> t -> int
(** Total order over values.  [Null] sorts first; [Int] and [Float]
    compare numerically with each other; values of unrelated types compare
    by a fixed type rank. *)

val equal : t -> t -> bool

val to_float : t -> float
(** Numeric view: dates yield their chronon, booleans 0/1.  Raises
    [Invalid_argument] on strings and [Null]. *)

val to_int : t -> int
(** Like {!to_float} but truncating. *)

val byte_size : t -> int
(** Bytes this value contributes to [size(r)] statistics: 8 for numerics
    and dates, 1 for booleans/null, length+4 for strings. *)

(** {1 Arithmetic}

    SQL semantics: [Null] operands propagate; division by zero yields
    [Null]; [Date + Int] and [Date - Int] shift dates, [Date - Date] is a
    day count. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

val greatest : t -> t -> t
(** SQL [GREATEST]: [Null] if either argument is [Null]. *)

val least : t -> t -> t
(** SQL [LEAST]: [Null] if either argument is [Null]. *)

val set_date_printer : (int -> string) -> unit
(** Override how [Date] values render (default: [#<day number>]).
    {!Tango_temporal.Chronon} installs an ISO printer when linked. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Binary serialization}

    Used by storage pages and the middleware⇄DBMS transfer boundary, where
    marshalling is deliberately real work. *)

val serialize : Buffer.t -> t -> unit

val deserialize : string -> int -> t * int
(** [deserialize s pos] reads one value at [pos]; returns it and the
    position after it. *)
