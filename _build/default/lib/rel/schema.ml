(** Relation schemas: ordered lists of named, typed attributes.

    Attribute names may be qualified ([POS.T1]) or unqualified ([T1]).
    Lookup by an unqualified name succeeds when exactly one attribute's
    base name (the part after the last dot) matches. *)

type attribute = { name : string; dtype : Value.dtype }

type t = attribute array

let make pairs : t =
  Array.of_list (List.map (fun (name, dtype) -> { name; dtype }) pairs)

let arity (s : t) = Array.length s
let attributes (s : t) = Array.to_list s
let names (s : t) = Array.to_list (Array.map (fun a -> a.name) s)
let dtype_at (s : t) i = s.(i).dtype
let name_at (s : t) i = s.(i).name

(** Base name of a possibly qualified attribute name. *)
let base_name name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

(** Index of attribute [name] in schema [s].  An exact match wins; otherwise
    an unqualified [name] matches a unique attribute with that base name.
    Raises [Not_found] when the attribute is missing or ambiguous. *)
let index (s : t) name =
  let exact = ref (-1) in
  Array.iteri (fun i a -> if !exact < 0 && String.equal a.name name then exact := i) s;
  if !exact >= 0 then !exact
  else begin
    let matches = ref [] in
    Array.iteri
      (fun i a -> if String.equal (base_name a.name) name then matches := i :: !matches)
      s;
    match !matches with
    | [ i ] -> i
    | [] -> raise Not_found
    | _ -> raise Not_found (* ambiguous *)
  end

let index_opt s name = try Some (index s name) with Not_found -> None
let mem s name = index_opt s name <> None

let dtype_of s name = (s.(index s name)).dtype

(** Concatenation for joins and products. *)
let concat (a : t) (b : t) : t = Array.append a b

(** [project s names] keeps the named attributes, in the given order. *)
let project (s : t) names_ : t =
  Array.of_list (List.map (fun n -> s.(index s n)) names_)

(** [qualify alias s] prefixes every attribute base name with [alias.]. *)
let qualify alias (s : t) : t =
  Array.map (fun a -> { a with name = alias ^ "." ^ base_name a.name }) s

(** [unqualify s] strips qualifiers; used when materializing a derived table
    whose column names must be plain. *)
let unqualify (s : t) : t =
  Array.map (fun a -> { a with name = base_name a.name }) s

(** [rename s from to_] renames a single attribute. *)
let rename (s : t) from to_ : t =
  let i = index s from in
  Array.mapi (fun j a -> if j = i then { a with name = to_ } else a) s

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> String.equal x.name y.name && x.dtype = y.dtype) a b

(** Schemas are union-compatible when arities and types agree (names may
    differ), as required by difference and union. *)
let union_compatible (a : t) (b : t) =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> x.dtype = y.dtype) a b

let pp ppf (s : t) =
  Fmt.pf ppf "(%a)"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf a ->
         Fmt.pf ppf "%s %s" a.name (Value.dtype_name a.dtype)))
    (Array.to_list s)

let to_string s = Fmt.str "%a" pp s
