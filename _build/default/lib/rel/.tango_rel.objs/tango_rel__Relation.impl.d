lib/rel/relation.ml: Array Fmt List Order Schema Seq String Tuple Value
