lib/rel/histogram.mli: Format Value
