lib/rel/value.ml: Bool Buffer Float Fmt Int Int64 Printf String
