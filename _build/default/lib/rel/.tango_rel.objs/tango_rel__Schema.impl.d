lib/rel/schema.ml: Array Fmt List String Value
