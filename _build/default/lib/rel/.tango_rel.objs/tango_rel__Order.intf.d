lib/rel/order.mli: Format Schema Tuple
