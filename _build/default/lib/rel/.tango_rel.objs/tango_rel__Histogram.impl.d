lib/rel/histogram.ml: Array Float Fmt Seq Value
