lib/rel/tuple.ml: Array Buffer Fmt Int32 List Schema String Value
