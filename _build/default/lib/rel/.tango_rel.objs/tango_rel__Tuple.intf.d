lib/rel/tuple.mli: Buffer Format Schema Value
