lib/rel/csv.mli: Relation Schema
