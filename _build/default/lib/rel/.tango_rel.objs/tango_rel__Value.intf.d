lib/rel/value.mli: Buffer Format
