lib/rel/relation.mli: Format Order Schema Tuple Value
