lib/rel/order.ml: Array Fmt List Schema String Tuple Value
