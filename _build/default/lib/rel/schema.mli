(** Relation schemas: ordered lists of named, typed attributes.

    Attribute names may be qualified ([POS.T1]) or unqualified ([T1]);
    lookup by an unqualified name succeeds when exactly one attribute's
    base name matches. *)

type attribute = { name : string; dtype : Value.dtype }

type t = attribute array

val make : (string * Value.dtype) list -> t
val arity : t -> int
val attributes : t -> attribute list
val names : t -> string list
val dtype_at : t -> int -> Value.dtype
val name_at : t -> int -> string

val base_name : string -> string
(** Base name of a possibly qualified attribute ([A.PosID] → [PosID]). *)

val index : t -> string -> int
(** Position of an attribute: an exact name match wins; otherwise an
    unqualified name matches a unique attribute with that base name.
    Raises [Not_found] when missing or ambiguous. *)

val index_opt : t -> string -> int option
val mem : t -> string -> bool
val dtype_of : t -> string -> Value.dtype

val concat : t -> t -> t
(** Concatenation, for joins and products. *)

val project : t -> string list -> t
(** Keep the named attributes, in the given order. *)

val qualify : string -> t -> t
(** [qualify alias s] prefixes every attribute base name with [alias.]. *)

val unqualify : t -> t
(** Strip all qualifiers (e.g. when materializing a derived table). *)

val rename : t -> string -> string -> t

val equal : t -> t -> bool
(** Same names and types, positionally. *)

val union_compatible : t -> t -> bool
(** Same arity and types (names may differ) — the requirement of union and
    difference. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
