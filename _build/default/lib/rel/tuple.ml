(** Tuples are flat arrays of values, positionally matching a {!Schema.t}. *)

type t = Value.t array

let arity = Array.length
let get (t : t) i = t.(i)
let of_list = Array.of_list
let to_list = Array.to_list

(** Field access by name through a schema. *)
let field schema (t : t) name = t.(Schema.index schema name)

(** Concatenation, used by join and product. *)
let concat (a : t) (b : t) : t = Array.append a b

(** [project schema names t] builds the sub-tuple with the given attributes. *)
let project schema names (t : t) : t =
  Array.of_list (List.map (fun n -> t.(Schema.index schema n)) names)

let compare (a : t) (b : t) =
  let n = Array.length a and m = Array.length b in
  let rec go i =
    if i >= n && i >= m then 0
    else if i >= n then -1
    else if i >= m then 1
    else
      match Value.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let equal a b = compare a b = 0

(** Total tuple size in bytes, the per-tuple contribution to [size(r)]. *)
let byte_size (t : t) =
  Array.fold_left (fun acc v -> acc + Value.byte_size v) 0 t

let pp ppf (t : t) =
  Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") Value.pp) (to_list t)

let to_string t = Fmt.str "%a" pp t

(* --- marshalling: a tuple serializes as a value-count header followed by
   each value; used by storage pages and the DBMS client boundary --- *)

let serialize buf (t : t) =
  Buffer.add_int32_le buf (Int32.of_int (Array.length t));
  Array.iter (Value.serialize buf) t

let deserialize s pos : t * int =
  let n = Int32.to_int (String.get_int32_le s pos) in
  let pos = ref (pos + 4) in
  let t =
    Array.init n (fun _ ->
        let v, p = Value.deserialize s !pos in
        pos := p;
        v)
  in
  (t, !pos)

(** Round-trip through bytes: the "marshalling work" performed for every
    tuple that crosses the middleware/DBMS boundary. *)
let marshal_roundtrip (t : t) : t =
  let buf = Buffer.create 64 in
  serialize buf t;
  fst (deserialize (Buffer.contents buf) 0)
