(** Attribute histograms, as maintained by conventional DBMSs and consumed by
    the middleware's selectivity estimation (paper Section 3.3).

    Both kinds the paper mentions are supported:
    - {e height-balanced} (equi-depth): every bucket holds the same number of
      attribute values;
    - {e width-balanced} (equi-width): every bucket spans the same value
      range.

    Buckets are over the numeric view of values (ints, floats, dates).  For
    bucket [i], [b1 i] and [b2 i] give its start and end values and [b_val i]
    the number of attribute values that fall inside — exactly the paper's
    [b1(i,H)], [b2(i,H)], [bVal(i,H)] accessor functions. *)

type kind = Height_balanced | Width_balanced

type bucket = { lo : float; hi : float; count : int }

type t = { kind : kind; buckets : bucket array; total : int }

let kind h = h.kind
let bucket_count h = Array.length h.buckets
let total h = h.total
let b1 h i = h.buckets.(i).lo
let b2 h i = h.buckets.(i).hi
let b_val h i = h.buckets.(i).count

(** [bucket_no h v]: index of the bucket containing value [v] — the paper's
    [bNo(A,H)].  Values below the first bucket map to bucket 0, values above
    the last to the last bucket. *)
let bucket_no h v =
  let n = Array.length h.buckets in
  if n = 0 then invalid_arg "Histogram.bucket_no: empty histogram";
  if v < h.buckets.(0).lo then 0
  else begin
    (* binary search for the bucket with lo <= v < hi (last bucket is
       closed on both ends) *)
    let rec go lo hi =
      if lo >= hi then min lo (n - 1)
      else
        let mid = (lo + hi) / 2 in
        let b = h.buckets.(mid) in
        if v < b.lo then go lo mid
        else if v >= b.hi && mid < n - 1 then go (mid + 1) hi
        else mid
    in
    go 0 n
  end

let sorted_numeric values =
  let xs =
    Array.of_seq
      (Seq.filter_map
         (fun v -> if Value.is_null v then None else Some (Value.to_float v))
         (Array.to_seq values))
  in
  Array.sort Float.compare xs;
  xs

(** Build a height-balanced histogram with (up to) [buckets] buckets from raw
    attribute values.  Nulls are excluded. *)
let height_balanced ~buckets values =
  let xs = sorted_numeric values in
  let n = Array.length xs in
  if n = 0 then { kind = Height_balanced; buckets = [||]; total = 0 }
  else begin
    let nb = min buckets n in
    let bs =
      Array.init nb (fun i ->
          let start = i * n / nb and stop = (i + 1) * n / nb in
          let lo = xs.(start) in
          let hi = if stop >= n then xs.(n - 1) else xs.(stop) in
          { lo; hi; count = stop - start })
    in
    { kind = Height_balanced; buckets = bs; total = n }
  end

(** Build a width-balanced histogram with [buckets] equal-width buckets. *)
let width_balanced ~buckets values =
  let xs = sorted_numeric values in
  let n = Array.length xs in
  if n = 0 then { kind = Width_balanced; buckets = [||]; total = 0 }
  else begin
    let lo = xs.(0) and hi = xs.(n - 1) in
    if lo = hi then
      { kind = Width_balanced; buckets = [| { lo; hi; count = n } |]; total = n }
    else begin
      let nb = max 1 buckets in
      let width = (hi -. lo) /. float_of_int nb in
      let counts = Array.make nb 0 in
      Array.iter
        (fun x ->
          let i =
            min (nb - 1) (int_of_float ((x -. lo) /. width))
          in
          counts.(i) <- counts.(i) + 1)
        xs;
      let bs =
        Array.init nb (fun i ->
            {
              lo = lo +. (width *. float_of_int i);
              hi = lo +. (width *. float_of_int (i + 1));
              count = counts.(i);
            })
      in
      { kind = Width_balanced; buckets = bs; total = n }
    end
  end

(** Estimated number of values strictly below [v]: sum of the preceding
    buckets plus a uniform fraction of [v]'s bucket — the histogram branch of
    the paper's [StartBefore]/[EndBefore] functions. *)
let count_below h v =
  if Array.length h.buckets = 0 then 0.0
  else begin
    let i = bucket_no h v in
    let before = ref 0 in
    for j = 0 to i - 1 do
      before := !before + h.buckets.(j).count
    done;
    let b = h.buckets.(i) in
    let frac =
      if v <= b.lo then 0.0
      else if v >= b.hi then 1.0
      else (v -. b.lo) /. (b.hi -. b.lo)
    in
    float_of_int !before +. (frac *. float_of_int b.count)
  end

let pp ppf h =
  Fmt.pf ppf "%s[%a]"
    (match h.kind with
    | Height_balanced -> "equi-depth"
    | Width_balanced -> "equi-width")
    (Fmt.array ~sep:(Fmt.any " ") (fun ppf b ->
         Fmt.pf ppf "(%g..%g:%d)" b.lo b.hi b.count))
    h.buckets
