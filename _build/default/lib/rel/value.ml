(** Atomic values stored in tuples.

    Dates are represented as chronons: integer day numbers (days since
    1970-01-01, negative before).  The relational layer does not interpret
    them; conversion to and from calendar dates lives in
    {!Tango_temporal.Chronon}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of int  (** chronon: day number *)

(** Data types for schema declarations. *)
type dtype = TBool | TInt | TFloat | TStr | TDate

let dtype_name = function
  | TBool -> "BOOL"
  | TInt -> "INT"
  | TFloat -> "FLOAT"
  | TStr -> "VARCHAR"
  | TDate -> "DATE"

let dtype_of_name s =
  match String.uppercase_ascii s with
  | "BOOL" | "BOOLEAN" -> TBool
  | "INT" | "INTEGER" | "NUMBER" -> TInt
  | "FLOAT" | "REAL" | "DOUBLE" -> TFloat
  | "VARCHAR" | "STRING" | "CHAR" | "TEXT" -> TStr
  | "DATE" -> TDate
  | other -> invalid_arg ("Value.dtype_of_name: unknown type " ^ other)

(** Type of a value; [Null] has no type and raises. *)
let type_of = function
  | Null -> invalid_arg "Value.type_of: Null"
  | Bool _ -> TBool
  | Int _ -> TInt
  | Float _ -> TFloat
  | Str _ -> TStr
  | Date _ -> TDate

let is_null = function Null -> true | _ -> false

(* Rank used to give a deterministic order across types; Null sorts first,
   as in most DBMS ascending NULLS FIRST conventions. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2 (* numerics compare with each other *)
  | Date _ -> 3
  | Str _ -> 4

(** Total order over values.  Numeric values ([Int], [Float]) compare by
    numeric value regardless of representation. *)
let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Date x, Date y -> Int.compare x y
  (* dates are numeric chronons: integer literals compare with them
     numerically, as in the SQL subset (DATE columns accept INT values) *)
  | Date x, Int y -> Int.compare x y
  | Int x, Date y -> Int.compare x y
  | Date x, Float y -> Float.compare (float_of_int x) y
  | Float x, Date y -> Float.compare x (float_of_int y)
  | a, b -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(** Numeric view used by arithmetic and statistics.  Dates are numeric (their
    chronon), booleans are 0/1.  Raises [Invalid_argument] on strings/null. *)
let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Date d -> float_of_int d
  | Bool b -> if b then 1.0 else 0.0
  | Null -> invalid_arg "Value.to_float: Null"
  | Str s -> invalid_arg ("Value.to_float: string " ^ s)

let to_int = function
  | Int i -> i
  | Date d -> d
  | Bool b -> if b then 1 else 0
  | Float f -> int_of_float f
  | Null -> invalid_arg "Value.to_int: Null"
  | Str s -> invalid_arg ("Value.to_int: string " ^ s)

(** Size in bytes used for [size(r)] statistics: fixed 8 bytes for numerics
    and dates, 1 for booleans and nulls, length+4 for strings (length
    prefix). *)
let byte_size = function
  | Null -> 1
  | Bool _ -> 1
  | Int _ | Float _ | Date _ -> 8
  | Str s -> String.length s + 4

let add a b =
  match (a, b) with
  | Int x, Int y -> Int (x + y)
  | Date x, Int y | Int y, Date x -> Date (x + y)
  | (Float _ | Int _), (Float _ | Int _) -> Float (to_float a +. to_float b)
  | Null, _ | _, Null -> Null
  | _ -> invalid_arg "Value.add"

let sub a b =
  match (a, b) with
  | Int x, Int y -> Int (x - y)
  | Date x, Int y -> Date (x - y)
  | Date x, Date y -> Int (x - y)
  | (Float _ | Int _), (Float _ | Int _) -> Float (to_float a -. to_float b)
  | Null, _ | _, Null -> Null
  | _ -> invalid_arg "Value.sub"

let mul a b =
  match (a, b) with
  | Int x, Int y -> Int (x * y)
  | (Float _ | Int _), (Float _ | Int _) -> Float (to_float a *. to_float b)
  | Null, _ | _, Null -> Null
  | _ -> invalid_arg "Value.mul"

let div a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | (Float _ | Int _ | Date _), (Float _ | Int _) ->
      let d = to_float b in
      if d = 0.0 then Null else Float (to_float a /. d)
  | _ -> invalid_arg "Value.div"

(** GREATEST / LEAST with SQL semantics: NULL if any argument is NULL. *)
let greatest a b =
  if is_null a || is_null b then Null else if compare a b >= 0 then a else b

let least a b =
  if is_null a || is_null b then Null else if compare a b <= 0 then a else b

(* How [Date] values render.  The relational layer cannot depend on the
   calendar; {!Tango_temporal.Chronon} installs an ISO printer when it is
   linked, so dates print as 1997-02-01 instead of raw day numbers. *)
let date_printer : (int -> string) ref = ref (fun d -> "#" ^ string_of_int d)

let set_date_printer f = date_printer := f

let pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Str s -> Fmt.pf ppf "'%s'" s
  | Date d -> Fmt.string ppf (!date_printer d)

let to_string v = Fmt.str "%a" pp v

(* --- binary (de)serialization, used by the storage and transfer layers to
   make boundary crossings cost real marshalling work --- *)

let write_int64 buf (i : int) =
  Buffer.add_int64_le buf (Int64.of_int i)

let serialize buf = function
  | Null -> Buffer.add_char buf '\000'
  | Bool b ->
      Buffer.add_char buf '\001';
      Buffer.add_char buf (if b then '\001' else '\000')
  | Int i ->
      Buffer.add_char buf '\002';
      write_int64 buf i
  | Float f ->
      Buffer.add_char buf '\003';
      Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Str s ->
      Buffer.add_char buf '\004';
      write_int64 buf (String.length s);
      Buffer.add_string buf s
  | Date d ->
      Buffer.add_char buf '\005';
      write_int64 buf d

(** [deserialize s pos] reads one value starting at [pos]; returns the value
    and the position after it. *)
let deserialize s pos =
  let tag = s.[pos] in
  let read_int64 p = Int64.to_int (String.get_int64_le s p) in
  match tag with
  | '\000' -> (Null, pos + 1)
  | '\001' -> (Bool (s.[pos + 1] = '\001'), pos + 2)
  | '\002' -> (Int (read_int64 (pos + 1)), pos + 9)
  | '\003' ->
      (Float (Int64.float_of_bits (String.get_int64_le s (pos + 1))), pos + 9)
  | '\004' ->
      let len = read_int64 (pos + 1) in
      (Str (String.sub s (pos + 9) len), pos + 9 + len)
  | '\005' -> (Date (read_int64 (pos + 1)), pos + 9)
  | c -> invalid_arg (Printf.sprintf "Value.deserialize: bad tag %C" c)
