lib/tsql/compile.mli: Op Order Schema Tango_algebra Tango_rel
