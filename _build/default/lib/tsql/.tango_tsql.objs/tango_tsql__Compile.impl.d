lib/tsql/compile.ml: Ast Format List Op Option Order Parser Scalar Schema String Tango_algebra Tango_rel Tango_sql Value
