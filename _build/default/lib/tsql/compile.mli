(** The temporal-SQL front end: parses a VALIDTIME SQL subset (the parser
    module the paper left unimplemented) and compiles it to an initial
    algebraic query plan that assigns all processing to the DBMS with a
    single [T^M] on top (paper §2.1).

    [VALIDTIME SELECT] has sequenced semantics: every source must be
    temporal (carry T1/T2); multiple sources combine with temporal joins;
    [GROUP BY] plus aggregates denote temporal aggregation; [DISTINCT]
    denotes duplicate elimination and [VALIDTIME COALESCE SELECT]
    coalescing; the result is temporal (T1/T2 appended when unlisted).
    Without [VALIDTIME], the query is regular SQL. *)

open Tango_rel
open Tango_algebra

exception Unsupported of string

val compile : lookup:(string -> Schema.t) -> string -> Op.t
(** Parse and compile temporal SQL to an algebra tree (no transfer).
    [lookup] resolves base-table schemas. *)

val initial_plan : lookup:(string -> Schema.t) -> string -> Op.t
(** {!compile} wrapped in the top [T^M]. *)

val required_order : string -> Order.t
(** The query's outermost ORDER BY, as the root's required physical
    property. *)
