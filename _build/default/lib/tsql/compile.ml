(** The temporal-SQL front end: parses a VALIDTIME SQL subset (the parser
    module the paper left unimplemented) and compiles it to an initial
    algebraic query plan that assigns all processing to the DBMS, with a
    single [T^M] on top (paper Section 2.1).

    Semantics of [VALIDTIME SELECT] (sequenced valid time):
    - every FROM source must be temporal (carry T1/T2);
    - multiple sources combine with temporal joins: join predicates come
      from WHERE, and the result period is the intersection of the operand
      periods;
    - GROUP BY with aggregates denotes temporal aggregation over constant
      intervals;
    - the result is temporal: [T1]/[T2] are part of the output (implicitly
      appended when not listed).

    A SELECT without [VALIDTIME] is a regular query (scans, σ, π, ⋈, sort)
    evaluated with ordinary SQL semantics. *)

open Tango_rel
open Tango_sql
open Tango_algebra

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let col_full q c = match q with None -> c | Some q -> q ^ "." ^ c

(* ------------------------------------------------------------------ *)
(* FROM sources                                                          *)
(* ------------------------------------------------------------------ *)

(* Compile one FROM source to an operator exposing alias-qualified
   attributes. *)
let rec compile_source ~lookup (tref : Ast.table_ref) : Op.t =
  match tref with
  | Ast.Table (name, alias) -> Op.scan ?alias name (lookup name)
  | Ast.Derived (q, alias) ->
      let sub = compile_query ~lookup q in
      let s = Op.schema sub in
      (* Re-qualify the derived table's outputs under its alias. *)
      let items =
        List.map
          (fun (a : Schema.attribute) ->
            ( Ast.Col (None, a.Schema.name),
              alias ^ "." ^ Schema.base_name a.Schema.name ))
          (Schema.attributes s)
      in
      Op.project items sub

(* ------------------------------------------------------------------ *)
(* SELECT blocks                                                         *)
(* ------------------------------------------------------------------ *)

and compile_query ~lookup (q : Ast.query) : Op.t =
  match q with
  | Ast.Select s -> compile_select ~lookup s
  | Ast.Union _ | Ast.Union_all _ ->
      unsupported "UNION is not supported in temporal SQL"

and compile_select ~lookup (s : Ast.select) : Op.t =
  if s.Ast.having <> None then unsupported "HAVING is not supported";
  let sources = List.map (compile_source ~lookup) s.Ast.from in
  if sources = [] then unsupported "FROM is required";
  if s.Ast.validtime then
    List.iter
      (fun src ->
        if Op.period_attrs (Op.schema src) = None then
          unsupported "VALIDTIME requires temporal sources (T1/T2)")
      sources;
  let conjuncts = match s.Ast.where with None -> [] | Some w -> Ast.conjuncts w in
  (* Push single-source conjuncts below the joins. *)
  let conjuncts, sources =
    List.fold_left_map
      (fun remaining src ->
        let schema = Op.schema src in
        let mine, rest =
          List.partition (fun c -> Scalar.covers schema c) remaining
        in
        match Ast.conj mine with
        | None -> (rest, src)
        | Some p -> (rest, Op.select p src))
      conjuncts sources
  in
  (* Left-deep join tree; join predicates attach as they become
     applicable. *)
  let tree, leftover =
    match sources with
    | [ one ] -> (one, conjuncts)
    | first :: rest ->
        List.fold_left
          (fun (acc, remaining) src ->
            let joined_schema = Schema.concat (Op.schema acc) (Op.schema src) in
            let applicable, rest =
              List.partition (fun c -> Scalar.covers joined_schema c) remaining
            in
            let pred =
              Option.value (Ast.conj applicable)
                ~default:(Ast.Lit (Value.Bool true))
            in
            let j =
              if s.Ast.validtime then Op.temporal_join pred acc src
              else if applicable = [] then Op.Product { left = acc; right = src }
              else Op.join pred acc src
            in
            (j, rest))
          (first, conjuncts) rest
    | [] -> assert false
  in
  let tree =
    match Ast.conj leftover with None -> tree | Some p -> Op.select p tree
  in
  (* Aggregation? *)
  let has_agg =
    s.Ast.group_by <> []
    || List.exists
         (function Ast.Expr (e, _) -> Ast.contains_agg e | Ast.Star -> false)
         s.Ast.items
  in
  let body =
    if not has_agg then project_items ~validtime:s.Ast.validtime s.Ast.items tree
    else begin
      if not s.Ast.validtime then
        unsupported "GROUP BY without VALIDTIME: use the DBMS directly";
      compile_taggr s tree
    end
  in
  (* DISTINCT denotes duplicate elimination; VALIDTIME COALESCE coalesces
     value-equivalent result tuples (both below the final sort). *)
  let body = if s.Ast.distinct then Op.Dup_elim body else body in
  let body = if s.Ast.coalesce then Op.Coalesce body else body in
  (* ORDER BY: keys resolve against the projected output; a qualified
     source name (A.PosID) that was projected away falls back to its base
     name when that is unambiguous in the output. *)
  match s.Ast.order_by with
  | [] -> body
  | keys ->
      let body_schema = Op.schema body in
      let resolve_key name =
        if Schema.mem body_schema name then name
        else begin
          let base = Schema.base_name name in
          if Schema.mem body_schema base then base
          else unsupported "ORDER BY attribute %s does not resolve" name
        end
      in
      let order =
        List.map
          (fun (e, asc) ->
            match e with
            | Ast.Col (q, c) ->
                { Order.attr = resolve_key (col_full q c);
                  dir = (if asc then Order.Asc else Order.Desc) }
            | _ -> unsupported "ORDER BY must use columns")
          keys
      in
      Op.sort order body

and project_items ~validtime items tree : Op.t =
  let schema = Op.schema tree in
  match items with
  | [ Ast.Star ] -> tree
  | _ ->
      let explicit =
        List.concat_map
          (function
            | Ast.Star ->
                List.map
                  (fun (a : Schema.attribute) ->
                    (Ast.Col (None, a.Schema.name), a.Schema.name))
                  (Schema.attributes schema)
            | Ast.Expr (e, alias) ->
                let name =
                  match (alias, e) with
                  | Some a, _ -> a
                  | None, Ast.Col (q, c) -> Schema.base_name (col_full q c)
                  | None, _ -> unsupported "computed items need AS aliases"
                in
                [ (e, name) ])
          items
      in
      (* Sequenced semantics: the result of a VALIDTIME query is temporal,
         so the period attributes ride along even when not listed. *)
      let explicit =
        if not validtime then explicit
        else
          let listed base =
            List.exists (fun (_, n) -> String.equal (Schema.base_name n) base) explicit
          in
          let add base =
            match Op.period_attrs schema with
            | Some (t1, t2) ->
                let attr = if String.equal base "T1" then t1 else t2 in
                [ (Ast.Col (None, attr), base) ]
            | None -> []
          in
          explicit
          @ (if listed "T1" then [] else add "T1")
          @ if listed "T2" then [] else add "T2"
      in
      Op.project explicit tree

and compile_taggr (s : Ast.select) tree : Op.t =
  let schema = Op.schema tree in
  let group_by =
    List.map
      (function
        | Ast.Col (q, c) ->
            let name = col_full q c in
            Schema.name_at schema (Schema.index schema name)
        | _ -> unsupported "GROUP BY must use columns")
      s.Ast.group_by
  in
  let aggs, out_names =
    List.fold_left
      (fun (aggs, outs) item ->
        match item with
        | Ast.Star -> unsupported "SELECT * with GROUP BY"
        | Ast.Expr (Ast.Agg (fn, arg), alias) ->
            let arg_attr =
              match arg with
              | None -> None
              | Some (Ast.Col (q, c)) ->
                  Some (Schema.name_at schema (Schema.index schema (col_full q c)))
              | Some _ -> unsupported "aggregate arguments must be columns"
            in
            let out =
              match alias with
              | Some a -> a
              | None -> Ast.aggfun_name fn
            in
            (aggs @ [ { Op.fn; arg = arg_attr; out } ], outs @ [ `Agg out ])
        | Ast.Expr (Ast.Col (q, c), alias) ->
            let name = col_full q c in
            let resolved = Schema.name_at schema (Schema.index schema name) in
            if
              not
                (List.exists
                   (fun g -> String.equal g resolved)
                   group_by
                || String.equal (Schema.base_name resolved) "T1"
                || String.equal (Schema.base_name resolved) "T2")
            then unsupported "non-aggregated item %s must be grouped" name;
            ( aggs,
              outs
              @ [ `Col (resolved, Option.value alias ~default:(Schema.base_name name)) ] )
        | Ast.Expr (_, _) ->
            unsupported "grouped items must be columns or aggregates")
      ([], []) s.Ast.items
  in
  let ag = Op.temporal_aggregate group_by aggs tree in
  (* Natural ξᵀ output: groups, T1, T2, aggs.  Add a projection when the
     SELECT list reorders or renames. *)
  let natural = Schema.names (Op.schema ag) in
  let wanted =
    List.map (function `Agg o -> o | `Col (c, out) -> ignore c; out) out_names
  in
  let wanted_full =
    (* append implicit period attrs *)
    wanted
    @ (if List.exists (fun n -> String.equal (Schema.base_name n) "T1") wanted
       then []
       else [ "T1" ])
    @
    if List.exists (fun n -> String.equal (Schema.base_name n) "T2") wanted
    then []
    else [ "T2" ]
  in
  if
    List.length wanted_full = List.length natural
    && List.for_all2
         (fun w n -> String.equal (Schema.base_name w) (Schema.base_name n))
         wanted_full natural
  then ag
  else begin
    let items =
      List.map
        (fun (spec : [ `Agg of string | `Col of string * string ]) ->
          match spec with
          | `Agg out -> (Ast.Col (None, out), out)
          | `Col (resolved, out) ->
              (Ast.Col (None, Schema.base_name resolved), out))
        out_names
    in
    let items =
      items
      @ (if List.exists (fun (_, n) -> String.equal (Schema.base_name n) "T1") items
         then []
         else [ (Ast.Col (None, "T1"), "T1") ])
      @
      if List.exists (fun (_, n) -> String.equal (Schema.base_name n) "T2") items
      then []
      else [ (Ast.Col (None, "T2"), "T2") ]
    in
    Op.project items ag
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                          *)
(* ------------------------------------------------------------------ *)

(** Parse and compile temporal SQL to an algebra tree (no transfer). *)
let compile ~(lookup : string -> Schema.t) (sql : string) : Op.t =
  compile_query ~lookup (Parser.query sql)

(** The initial query plan the optimizer receives: everything assigned to
    the DBMS, one [T^M] at the top. *)
let initial_plan ~lookup (sql : string) : Op.t =
  Op.to_mw (compile ~lookup sql)

(** Final order requested by the query (its outermost ORDER BY), used as the
    root's required physical property. *)
let required_order (sql : string) : Order.t =
  match Parser.query sql with
  | Ast.Select s ->
      List.map
        (fun (e, asc) ->
          match e with
          | Ast.Col (q, c) ->
              { Order.attr = col_full q c;
                dir = (if asc then Order.Asc else Order.Desc) }
          | _ -> unsupported "ORDER BY must use columns")
        s.Ast.order_by
  | _ -> []
