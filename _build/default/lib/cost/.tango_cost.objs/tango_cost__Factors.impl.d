lib/cost/factors.ml: Fmt
