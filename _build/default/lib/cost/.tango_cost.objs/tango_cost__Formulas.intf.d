lib/cost/formulas.mli: Ast Factors Tango_sql
