lib/cost/calibrate.mli: Client Factors Tango_dbms
