lib/cost/formulas.ml: Ast Factors Float Tango_sql
