(** Cost-factor calibration — the Cost Estimator's calibration phase.

    Like Du et al. [4], factors are deduced by running designed probe
    queries against the actual substrate and fitting the formula
    coefficients to measured times.  Probes use synthetic relations, so
    calibration is independent of user data; it takes a few hundred
    milliseconds at the default sizes and is run once per DBMS
    installation. *)

open Tango_dbms

type probe_sizes = { small : int; large : int }

val default_sizes : probe_sizes

val run : ?sizes:probe_sizes -> Client.t -> Factors.t
(** Calibrate against the client's database; returns fresh factors and
    leaves no tables behind. *)
