(** The uniform temporal relation of the paper's §3.3 worked example:
    [n] tuples (100,000 in the paper) with [duration]-day periods (7)
    starting uniformly so that periods fall within 1995–2000. *)

open Tango_rel
open Tango_temporal

val schema : Schema.t

val generate : ?n:int -> ?duration:int -> unit -> Relation.t

val actual_overlaps : Relation.t -> a:Chronon.t -> b:Chronon.t -> int
(** Exact number of tuples overlapping [\[a, b)] — ground truth for the
    selectivity experiment. *)
