(** The uniform temporal relation of the paper's Section 3.3 worked example:
    [n] tuples (100,000 in the paper) whose periods last [duration] days
    (7) and start uniformly between 1995-01-01 and 1999-12-25, so that
    periods fall inside the five years 1995–2000. *)

open Tango_rel
open Tango_temporal

let schema =
  Schema.make
    [ ("ID", Value.TInt); ("Payload", Value.TStr);
      ("T1", Value.TDate); ("T2", Value.TDate) ]

let generate ?(n = 100_000) ?(duration = 7) () : Relation.t =
  let lo = Chronon.of_string "1995-01-01" in
  let hi = Chronon.of_string "2000-01-01" in
  let span = hi - lo - duration in
  let state = ref 42 in
  let next bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (!state lsr 13) mod bound
  in
  let tuples =
    List.init n (fun i ->
        let t1 = lo + next span in
        Tuple.of_list
          [
            Value.Int (i + 1);
            Value.Str (Printf.sprintf "p%06d" (next 1000000));
            Value.Date t1;
            Value.Date (t1 + duration);
          ])
  in
  Relation.of_list schema tuples

(** Exact number of tuples overlapping [\[a, b)] — ground truth for the
    selectivity experiment. *)
let actual_overlaps (r : Relation.t) ~(a : Chronon.t) ~(b : Chronon.t) : int =
  let s = Relation.schema r in
  Relation.fold
    (fun acc t ->
      let t1 = Chronon.of_value (Tuple.field s t "T1") in
      let t2 = Chronon.of_value (Tuple.field s t "T2") in
      if t1 < b && t2 > a then acc + 1 else acc)
    0 r
