lib/workload/uniform.ml: Chronon List Printf Relation Schema Tango_rel Tango_temporal Tuple Value
