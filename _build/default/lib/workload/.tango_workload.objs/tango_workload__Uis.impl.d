lib/workload/uis.ml: Chronon List Printf Relation Schema String Tango_dbms Tango_rel Tango_temporal Tuple Value
