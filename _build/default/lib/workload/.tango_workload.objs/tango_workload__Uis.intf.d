lib/workload/uis.mli: Relation Schema Tango_dbms Tango_rel
