lib/workload/queries.ml: Ast Chronon Op Order Printf Tango_algebra Tango_rel Tango_sql Tango_temporal Uis Value
