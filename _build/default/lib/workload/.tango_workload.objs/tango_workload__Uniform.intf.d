lib/workload/uniform.mli: Chronon Relation Schema Tango_rel Tango_temporal
