lib/temporal/period.mli: Chronon Format
