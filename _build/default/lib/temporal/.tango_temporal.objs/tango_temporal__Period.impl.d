lib/temporal/period.ml: Chronon Fmt List Printf
