lib/temporal/chronon.mli: Format Tango_rel
