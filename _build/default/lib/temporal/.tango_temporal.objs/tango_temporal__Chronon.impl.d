lib/temporal/chronon.ml: Fmt Int Printf String Tango_rel
