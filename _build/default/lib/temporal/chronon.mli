(** Chronons: the discrete time points of the temporal model.

    A chronon is one day, counted from 1970-01-01 (negative earlier),
    matching the paper's day-granularity examples.  Calendar conversion is
    proleptic Gregorian. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool

val of_ymd : y:int -> m:int -> d:int -> t
val to_ymd : t -> int * int * int

val of_string : string -> t
(** Parse ["YYYY-MM-DD"].  Raises [Invalid_argument] on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val min_chronon : t
(** 0001-01-01, the "beginning" sentinel. *)

val max_chronon : t
(** 9999-12-31, the "forever" sentinel. *)

val succ : t -> t
val pred : t -> t

val value : t -> Tango_rel.Value.t
(** As a [Date] value. *)

val of_value : Tango_rel.Value.t -> t
(** From a [Date] (or [Int]) value; raises [Invalid_argument] otherwise. *)
