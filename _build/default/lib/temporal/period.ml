(** Closed-open time periods [\[t1, t2)], the paper's representation for the
    T1/T2 attribute pair.  A period is valid when [t1 < t2]; the empty period
    is not representable (operations that would produce one return
    [None]). *)

type t = { t1 : Chronon.t; t2 : Chronon.t }

let make t1 t2 =
  if t1 >= t2 then
    invalid_arg
      (Printf.sprintf "Period.make: empty period [%s, %s)"
         (Chronon.to_string t1) (Chronon.to_string t2));
  { t1; t2 }

let make_opt t1 t2 = if t1 < t2 then Some { t1; t2 } else None

let t1 p = p.t1
let t2 p = p.t2

(** Number of chronons covered. *)
let duration p = p.t2 - p.t1

let equal a b = a.t1 = b.t1 && a.t2 = b.t2

let compare a b =
  match Chronon.compare a.t1 b.t1 with
  | 0 -> Chronon.compare a.t2 b.t2
  | c -> c

(** [overlaps a b]: the periods share at least one chronon —
    [a.t1 < b.t2 && a.t2 > b.t1], the predicate of the paper's temporal
    join. *)
let overlaps a b = a.t1 < b.t2 && a.t2 > b.t1

(** [contains p c]: chronon [c] lies within [p] (timeslice predicate
    [t1 <= c && t2 > c]). *)
let contains p (c : Chronon.t) = p.t1 <= c && p.t2 > c

(** [intersect a b]: overlap of the two periods, the result period of a
    temporal join ([GREATEST(t1s), LEAST(t2s)]). *)
let intersect a b =
  make_opt (max a.t1 b.t1) (min a.t2 b.t2)

(** [adjacent a b]: periods meet without overlapping. *)
let adjacent a b = a.t2 = b.t1 || b.t2 = a.t1

(** [merge a b]: union of overlapping or adjacent periods. *)
let merge a b =
  if overlaps a b || adjacent a b then
    Some { t1 = min a.t1 b.t1; t2 = max a.t2 b.t2 }
  else None

(** Allen-style relationships, useful for tests and predicates. *)
let before a b = a.t2 <= b.t1
let after a b = before b a
let during a b = a.t1 >= b.t1 && a.t2 <= b.t2 && not (equal a b)

let pp ppf p =
  Fmt.pf ppf "[%a, %a)" Chronon.pp p.t1 Chronon.pp p.t2

let to_string p = Fmt.str "%a" pp p

(** [coalesce periods]: minimal set of maximal periods covering the same
    chronons (value-equivalent tuples are assumed).  Input in any order;
    output sorted by start time. *)
let coalesce periods =
  let sorted = List.sort compare periods in
  let rec go acc = function
    | [] -> List.rev acc
    | p :: rest -> (
        match acc with
        | prev :: acc' when overlaps prev p || adjacent prev p ->
            go ({ t1 = prev.t1; t2 = max prev.t2 p.t2 } :: acc') rest
        | _ -> go (p :: acc) rest)
  in
  go [] sorted

(** [constant_intervals periods]: split the covered timeline into the maximal
    intervals over which the set of covering periods is constant.  These are
    the "constant periods" underlying temporal aggregation: within each
    returned period, the count of overlapping input periods does not change.
    Returns periods with their cover counts, sorted by start, covering only
    instants where at least one input period is active. *)
let constant_intervals periods =
  match periods with
  | [] -> []
  | _ ->
      (* Sweep over the sorted multiset of endpoints. *)
      let points =
        List.sort_uniq Chronon.compare
          (List.concat_map (fun p -> [ p.t1; p.t2 ]) periods)
      in
      let rec windows = function
        | a :: (b :: _ as rest) -> (a, b) :: windows rest
        | _ -> []
      in
      List.filter_map
        (fun (a, b) ->
          let n =
            List.length
              (List.filter (fun p -> p.t1 <= a && p.t2 >= b) periods)
          in
          if n > 0 then Some ({ t1 = a; t2 = b }, n) else None)
        (windows points)

(** Total covered chronons of a period list (after coalescing). *)
let covered periods =
  List.fold_left (fun acc p -> acc + duration p) 0 (coalesce periods)
