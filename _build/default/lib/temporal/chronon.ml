(** Chronons: the discrete time points of the temporal model.

    A chronon is a day, represented as the number of days since 1970-01-01
    (negative for earlier dates), matching the paper's day-granularity
    examples.  Conversion to and from proleptic-Gregorian calendar dates uses
    Howard Hinnant's civil-date algorithms. *)

type t = int

let compare = Int.compare
let equal = Int.equal

(** [of_ymd ~y ~m ~d]: day number of a calendar date.  [m] is 1..12,
    [d] 1..31. *)
let of_ymd ~y ~m ~d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

(** Inverse of {!of_ymd}. *)
let to_ymd (z : t) =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (y, m, d)

(** Parse "YYYY-MM-DD". *)
let of_string s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      try of_ymd ~y:(int_of_string y) ~m:(int_of_string m) ~d:(int_of_string d)
      with Failure _ -> invalid_arg ("Chronon.of_string: " ^ s))
  | _ -> invalid_arg ("Chronon.of_string: " ^ s)

let to_string (c : t) =
  let y, m, d = to_ymd c in
  Printf.sprintf "%04d-%02d-%02d" y m d

let pp ppf c = Fmt.string ppf (to_string c)

(** The "beginning" and "forever" sentinels used for now-relative and
    open-ended data.  Kept well inside [int] range so arithmetic is safe. *)
let min_chronon : t = of_ymd ~y:1 ~m:1 ~d:1
let max_chronon : t = of_ymd ~y:9999 ~m:12 ~d:31

let succ (c : t) : t = c + 1
let pred (c : t) : t = c - 1

(* Linking the temporal library upgrades Date rendering everywhere, and
   lets CSV DATE cells be ISO dates as well as raw chronons. *)
let () = Tango_rel.Value.set_date_printer to_string

let () =
  Tango_rel.Csv.set_date_parser (fun s ->
      if String.contains s '-' && String.length s > 4 then of_string s
      else int_of_string s)

let value (c : t) = Tango_rel.Value.Date c

let of_value = function
  | Tango_rel.Value.Date d -> d
  | Tango_rel.Value.Int i -> i
  | v ->
      invalid_arg
        ("Chronon.of_value: not a date: " ^ Tango_rel.Value.to_string v)
