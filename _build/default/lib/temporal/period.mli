(** Closed-open time periods [\[t1, t2)] — the paper's representation for
    the T1/T2 attribute pair.  A period is valid when [t1 < t2]; empty
    periods are unrepresentable. *)

type t

val make : Chronon.t -> Chronon.t -> t
(** Raises [Invalid_argument] when the period would be empty. *)

val make_opt : Chronon.t -> Chronon.t -> t option

val t1 : t -> Chronon.t
val t2 : t -> Chronon.t

val duration : t -> int
(** Number of chronons covered. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val overlaps : t -> t -> bool
(** [a.t1 < b.t2 && a.t2 > b.t1] — the temporal join predicate. *)

val contains : t -> Chronon.t -> bool
(** Timeslice predicate: [t1 <= c && t2 > c]. *)

val intersect : t -> t -> t option
(** Overlap of the two periods ([GREATEST]/[LEAST] of the bounds) — the
    result period of a temporal join. *)

val adjacent : t -> t -> bool
val merge : t -> t -> t option
(** Union of overlapping or adjacent periods. *)

val before : t -> t -> bool
val after : t -> t -> bool
val during : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val coalesce : t list -> t list
(** Minimal set of maximal periods covering the same chronons, sorted by
    start. *)

val constant_intervals : t list -> (t * int) list
(** Split the covered timeline into maximal intervals over which the set of
    covering periods is constant — the "constant periods" of temporal
    aggregation.  Returns each interval with its cover count, sorted by
    start; gaps (cover 0) are omitted. *)

val covered : t list -> int
(** Total covered chronons. *)
