(** ANALYZE: compute catalog statistics for a table — exactly what the
    paper's middleware consumes: cardinality, blocks, average tuple size;
    per-column min/max, distinct and null counts, optional equi-depth
    histograms; index availability and clustering. *)

val default_buckets : int

val run :
  ?histograms:[ `All | `Cols of string list | `None ] ->
  ?buckets:int ->
  Catalog.table ->
  Stat.table_stats
(** Scan the table once, attach fresh statistics to it, and return them.
    The with/without-histograms optimizer comparison (paper Query 2)
    toggles [histograms]. *)
