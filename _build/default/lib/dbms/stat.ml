(** Catalog statistics, in the shapes the paper says the middleware consumes
    (Section 3): "block counts, numbers of tuples, and average tuple sizes
    for relations; minimum values, maximum values, numbers of distinct
    values, histograms, and index availability for attributes; and
    clusterings for indexes." *)

open Tango_rel

type column_stats = {
  col : string;
  min_value : Value.t option;
  max_value : Value.t option;
  distinct : int;
  nulls : int;
  histogram : Histogram.t option;
  indexed : bool;
  clustered : bool;  (** true when an index on this column is clustered *)
}

type table_stats = {
  table : string;
  cardinality : int;
  blocks : int;
  avg_tuple_size : float;
  columns : column_stats list;
}

let column_stats ts name =
  List.find_opt (fun c -> String.equal c.col name) ts.columns

(** [size_bytes ts]: the [size(r)] statistic — cardinality × average tuple
    size — that the cost formulas weigh. *)
let size_bytes ts = float_of_int ts.cardinality *. ts.avg_tuple_size

let pp_column ppf c =
  Fmt.pf ppf "%s: min=%a max=%a distinct=%d nulls=%d%s%s%s" c.col
    (Fmt.option ~none:(Fmt.any "-") Value.pp)
    c.min_value
    (Fmt.option ~none:(Fmt.any "-") Value.pp)
    c.max_value c.distinct c.nulls
    (if c.histogram <> None then " hist" else "")
    (if c.indexed then " indexed" else "")
    (if c.clustered then " clustered" else "")

let pp ppf ts =
  Fmt.pf ppf "%s: card=%d blocks=%d avg_size=%.1f@.%a" ts.table ts.cardinality
    ts.blocks ts.avg_tuple_size
    (Fmt.list ~sep:Fmt.cut pp_column)
    ts.columns
