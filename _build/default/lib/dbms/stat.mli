(** Catalog statistics, in the shapes the paper's middleware consumes
    (Section 3): block counts, tuple counts and average tuple sizes for
    relations; min/max, distinct counts, histograms and index availability
    for attributes; clusterings for indexes. *)

open Tango_rel

type column_stats = {
  col : string;
  min_value : Value.t option;
  max_value : Value.t option;
  distinct : int;
  nulls : int;
  histogram : Histogram.t option;
  indexed : bool;
  clustered : bool;
}

type table_stats = {
  table : string;
  cardinality : int;
  blocks : int;
  avg_tuple_size : float;
  columns : column_stats list;
}

val column_stats : table_stats -> string -> column_stats option

val size_bytes : table_stats -> float
(** The [size(r)] statistic: cardinality × average tuple size. *)

val pp_column : Format.formatter -> column_stats -> unit
val pp : Format.formatter -> table_stats -> unit
