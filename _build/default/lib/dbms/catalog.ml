(** The DBMS catalog: tables, their heap files, indexes, and ANALYZE-produced
    statistics. *)

open Tango_rel
open Tango_storage

type table = {
  name : string;
  file : Heap_file.t;
  mutable indexes : Ordered_index.t list;
  mutable stats : Stat.table_stats option;  (** set by ANALYZE *)
}

type t = {
  tables : (string, table) Hashtbl.t;
  io : Io_stats.t;
  pool : Buffer_pool.t;  (** shared LRU buffer pool for all tables *)
}

exception Table_exists of string
exception No_such_table of string

(** Default pool: 1024 pages (8 MB at the default page size). *)
let default_pool_pages = 1_024

let create ?(pool_pages = default_pool_pages) () =
  {
    tables = Hashtbl.create 16;
    io = Io_stats.create ();
    pool = Buffer_pool.create ~capacity:pool_pages;
  }

let key name = String.uppercase_ascii name

let mem c name = Hashtbl.mem c.tables (key name)

let find c name =
  match Hashtbl.find_opt c.tables (key name) with
  | Some t -> t
  | None -> raise (No_such_table name)

let find_opt c name = Hashtbl.find_opt c.tables (key name)

let add c name schema =
  if mem c name then raise (Table_exists name);
  let table =
    {
      name;
      file = Heap_file.create ~pool:c.pool ~stats:c.io schema;
      indexes = [];
      stats = None;
    }
  in
  Hashtbl.replace c.tables (key name) table;
  table

let drop c name =
  let t = find c name in
  Heap_file.invalidate t.file;
  Hashtbl.remove c.tables (key name)

let table_names c =
  Hashtbl.fold (fun _ t acc -> t.name :: acc) c.tables []
  |> List.sort String.compare

(** Register an index on [attr]; replaces any previous index on the same
    attribute. *)
let add_index c name ?(clustered = false) attr =
  let t = find c name in
  let idx = Ordered_index.build ~clustered ~stats:c.io t.file attr in
  t.indexes <-
    idx :: List.filter (fun i -> not (String.equal (Ordered_index.attr i) attr)) t.indexes;
  idx

let index_on t attr =
  List.find_opt
    (fun i -> String.equal (Ordered_index.attr i) (Schema.base_name attr))
    t.indexes
