lib/dbms/executor.mli: Ast Catalog Relation Tango_rel Tango_sql
