lib/dbms/client.mli: Ast Database Relation Schema Seq Tango_rel Tango_sql Tuple
