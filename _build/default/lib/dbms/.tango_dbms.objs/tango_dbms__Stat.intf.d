lib/dbms/stat.mli: Format Histogram Tango_rel Value
