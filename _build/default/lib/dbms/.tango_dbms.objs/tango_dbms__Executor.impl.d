lib/dbms/executor.ml: Array Ast Catalog Format Hashtbl Int Lazy List Option Relation Schema Tango_rel Tango_sql Tango_storage Tuple Value
