lib/dbms/analyze.ml: Array Catalog Histogram List Relation Schema Stat Tango_rel Tango_storage Value
