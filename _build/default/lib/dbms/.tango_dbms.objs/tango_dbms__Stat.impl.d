lib/dbms/stat.ml: Fmt Histogram List String Tango_rel Value
