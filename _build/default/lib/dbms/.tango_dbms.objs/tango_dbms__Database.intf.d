lib/dbms/database.mli: Ast Catalog Executor Relation Schema Stat Tango_rel Tango_sql Tango_storage
