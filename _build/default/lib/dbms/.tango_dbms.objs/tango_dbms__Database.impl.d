lib/dbms/database.ml: Analyze Ast Catalog Executor List Parser Printf Relation Schema Stat Tango_rel Tango_sql Tango_storage Tuple Value
