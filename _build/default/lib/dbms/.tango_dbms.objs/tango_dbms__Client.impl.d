lib/dbms/client.ml: Array Ast Buffer Catalog Database List Relation Schema Seq Sys Tango_rel Tango_sql Tango_storage Tuple
