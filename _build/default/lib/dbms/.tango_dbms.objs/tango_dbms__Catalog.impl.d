lib/dbms/catalog.ml: Buffer_pool Hashtbl Heap_file Io_stats List Ordered_index Schema Stat String Tango_rel Tango_storage
