lib/dbms/analyze.mli: Catalog Stat
