lib/dbms/catalog.mli: Buffer_pool Hashtbl Heap_file Io_stats Ordered_index Schema Stat Tango_rel Tango_storage
