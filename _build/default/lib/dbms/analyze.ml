(** ANALYZE: compute catalog statistics for a table.

    Produces exactly the statistics the paper's middleware consumes: table
    cardinality, block count, average tuple size; per-column min/max,
    distinct count, null count, and (optionally) an equi-depth histogram;
    plus index availability and clustering flags. *)

open Tango_rel

(** Number of histogram buckets, matching typical DBMS defaults. *)
let default_buckets = 32

(** [run ?histograms ?buckets table] scans the table once and attaches fresh
    statistics to it.  [histograms] lists the columns that get histograms
    ([`All] for every column, [`None] to skip, [`Cols names] to select);
    the with/without-histogram optimizer comparison of the paper's Query 2
    experiment toggles this. *)
let run ?(histograms = `All) ?(buckets = default_buckets)
    (table : Catalog.table) : Stat.table_stats =
  let file = table.file in
  let schema = Tango_storage.Heap_file.schema file in
  let rel = Tango_storage.Heap_file.to_relation file in
  let wants_histogram name =
    match histograms with
    | `All -> true
    | `None -> false
    | `Cols names -> List.mem name names
  in
  let columns =
    List.map
      (fun (a : Schema.attribute) ->
        let vals = Relation.column rel a.name in
        let nulls =
          Array.fold_left
            (fun acc v -> if Value.is_null v then acc + 1 else acc)
            0 vals
        in
        let numeric =
          match a.dtype with
          | Value.TInt | Value.TFloat | Value.TDate -> true
          | Value.TBool | Value.TStr -> false
        in
        let histogram =
          if numeric && wants_histogram a.name && Array.length vals > 0 then
            Some (Histogram.height_balanced ~buckets vals)
          else None
        in
        let index = Catalog.index_on table a.name in
        {
          Stat.col = a.name;
          min_value = Relation.min_value rel a.name;
          max_value = Relation.max_value rel a.name;
          distinct = Relation.distinct_count rel a.name;
          nulls;
          histogram;
          indexed = index <> None;
          clustered =
            (match index with
            | Some i -> Tango_storage.Ordered_index.clustered i
            | None -> false);
        })
      (Schema.attributes schema)
  in
  let stats =
    {
      Stat.table = table.name;
      cardinality = Tango_storage.Heap_file.tuple_count file;
      blocks = Tango_storage.Heap_file.block_count file;
      avg_tuple_size = Tango_storage.Heap_file.avg_tuple_size file;
      columns;
    }
  in
  table.stats <- Some stats;
  stats
