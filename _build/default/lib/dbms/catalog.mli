(** The DBMS catalog: tables, their heap files, indexes, and
    ANALYZE-produced statistics, sharing one I/O accounting record and one
    buffer pool. *)

open Tango_rel
open Tango_storage

type table = {
  name : string;
  file : Heap_file.t;
  mutable indexes : Ordered_index.t list;
  mutable stats : Stat.table_stats option;  (** set by ANALYZE *)
}

type t = {
  tables : (string, table) Hashtbl.t;
  io : Io_stats.t;
  pool : Buffer_pool.t;
}

exception Table_exists of string
exception No_such_table of string

val default_pool_pages : int

val create : ?pool_pages:int -> unit -> t

val mem : t -> string -> bool
val find : t -> string -> table
val find_opt : t -> string -> table option

val add : t -> string -> Schema.t -> table
val drop : t -> string -> unit
val table_names : t -> string list

val add_index : t -> string -> ?clustered:bool -> string -> Ordered_index.t
(** Build an index on the named attribute (replacing any previous index on
    it). *)

val index_on : table -> string -> Ordered_index.t option
