(** The DBMS's SQL execution engine.

    Queries compile to closures once (column references become positional),
    then run.  Behaviour mirrors a circa-2000 relational DBMS:

    - base-table access picks an index range/point scan when a conjunct
      matches an indexed attribute, else a full scan;
    - equi-joins default to sort-merge, or an index nested loop when the
      inner side is a base table with an index on its join attribute; a
      session can force a method (the Oracle-hint stand-in);
    - grouping and DISTINCT are sort-based;
    - derived tables materialize once per statement (memoized), while
      correlated scalar subqueries re-evaluate per outer row — which is
      precisely why temporal aggregation expressed in SQL is slow. *)

open Tango_rel
open Tango_sql

exception Sql_error of string

type join_method = Auto | Force_nested_loop | Force_sort_merge

type settings = { mutable join_method : join_method }

val default_settings : unit -> settings

type ctx

val make_ctx : ?settings:settings -> Catalog.t -> ctx

val run_query : ?settings:settings -> Catalog.t -> Ast.query -> Relation.t
(** Execute a query AST against a catalog.  Raises {!Sql_error} on
    unresolvable columns, arity mismatches, or unsupported constructs
    (e.g. VALIDTIME, which only the middleware evaluates). *)
