lib/volcano/search.ml: Derive Factors Memo Op Order Physical Rules Tango_algebra Tango_cost Tango_rel Tango_stats Unix
