lib/volcano/rules.ml: Ast List Memo Op Option Order Scalar Schema String Tango_algebra Tango_rel Tango_sql
