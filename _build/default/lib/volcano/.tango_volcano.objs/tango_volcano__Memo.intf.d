lib/volcano/memo.mli: Op Order Schema Tango_algebra Tango_rel Tango_sql
