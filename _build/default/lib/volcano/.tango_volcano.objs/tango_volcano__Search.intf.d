lib/volcano/search.mli: Op Order Physical Rules Tango_algebra Tango_cost Tango_rel Tango_stats
