lib/volcano/physical.mli: Format Hashtbl Memo Op Order Tango_algebra Tango_cost Tango_rel Tango_stats
