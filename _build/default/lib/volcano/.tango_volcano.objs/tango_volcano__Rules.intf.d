lib/volcano/rules.mli: Ast Memo Order Schema Tango_rel Tango_sql
