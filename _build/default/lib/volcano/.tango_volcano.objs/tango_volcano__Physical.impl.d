lib/volcano/physical.ml: Derive Factors Float Fmt Formulas Hashtbl List Memo Op Option Order Rel_stats Rules Schema String Tango_algebra Tango_cost Tango_rel Tango_sql Tango_stats
