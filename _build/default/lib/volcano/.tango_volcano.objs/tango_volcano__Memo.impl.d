lib/volcano/memo.ml: Array Ast Fun Hashtbl Int List Op Order Schema Tango_algebra Tango_rel Tango_sql
