(** The Volcano optimizer's memo: equivalence classes of query
    subexpressions.

    Each class stores {e elements} — operators whose arguments are (ids of)
    other classes.  Rules add elements to classes or merge classes proved
    equivalent (union-find; resolve ids through {!find}).  The per-query
    class/element counts the paper reports are {!class_count} and
    {!element_count}. *)

open Tango_rel
open Tango_algebra

(** An operator with child classes, mirroring {!Op.t}. *)
type node =
  | N_scan of { table : string; alias : string option; schema : Schema.t }
  | N_select of { pred : Tango_sql.Ast.expr; arg : int }
  | N_project of { items : (Tango_sql.Ast.expr * string) list; arg : int }
  | N_sort of { order : Order.t; arg : int }
  | N_product of { left : int; right : int }
  | N_join of { pred : Tango_sql.Ast.expr; left : int; right : int }
  | N_tjoin of { pred : Tango_sql.Ast.expr; left : int; right : int }
  | N_taggr of { group_by : string list; aggs : Op.agg list; arg : int }
  | N_dupelim of int
  | N_coalesce of int
  | N_difference of { left : int; right : int }
  | N_tm of int
  | N_td of int

type t

val create : unit -> t

val find : t -> int -> int
(** Canonical class id (union-find root). *)

val canon : t -> node -> node
(** Canonicalize a node's child class ids. *)

val elements : t -> int -> node list
(** Elements of a class, canonicalized. *)

val class_count : t -> int
val element_count : t -> int
val classes : t -> int list

val union : t -> int -> int -> int
(** Merge two classes proved equivalent; returns the surviving root. *)

val insert : t -> node -> int
(** Class holding the node, creating one if new (structural dedup). *)

val add_to_class : t -> int -> node -> bool
(** Record a node as equivalent to a class; merges classes when the node
    already lives elsewhere.  True when the memo changed. *)

val insert_op : t -> Op.t -> int
(** Insert a whole operator tree; returns the root class. *)

exception Cyclic

val extract : t -> ?visiting:int list -> int -> Op.t
(** One representative operator tree of a class (transfers deprioritized);
    raises {!Cyclic} only if every element is cyclically self-referential. *)

val schema_of : t -> int -> Schema.t
val location : t -> ?visiting:int list -> int -> Op.location
