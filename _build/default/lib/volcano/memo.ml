(** The Volcano optimizer's memo: equivalence classes of query
    subexpressions (paper Section 5.2).

    Each class stores a list of {e elements}; an element is an operator
    whose arguments are (ids of) other classes.  Transformation rules add
    elements to existing classes or merge two classes that are proved
    equivalent (e.g. rule T7, [T^M(T^D(r)) → r]).  Merging uses union-find;
    class ids must be resolved through {!find} before use.

    The class/element counts the paper reports per query (e.g. "12
    equivalence classes with 29 class elements" for Query 1) are exposed by
    {!class_count} and {!element_count}. *)

open Tango_rel
open Tango_sql
open Tango_algebra

(** An operator with child classes — the memo's element shape.  Mirrors
    {!Op.t}. *)
type node =
  | N_scan of { table : string; alias : string option; schema : Schema.t }
  | N_select of { pred : Ast.expr; arg : int }
  | N_project of { items : (Ast.expr * string) list; arg : int }
  | N_sort of { order : Order.t; arg : int }
  | N_product of { left : int; right : int }
  | N_join of { pred : Ast.expr; left : int; right : int }
  | N_tjoin of { pred : Ast.expr; left : int; right : int }
  | N_taggr of { group_by : string list; aggs : Op.agg list; arg : int }
  | N_dupelim of int
  | N_coalesce of int
  | N_difference of { left : int; right : int }
  | N_tm of int
  | N_td of int

type t = {
  mutable parent : int array;  (** union-find *)
  mutable elements : node list array;  (** per class, newest first *)
  node_class : (node, int) Hashtbl.t;  (** dedup: node -> class *)
  mutable class_cnt : int;
  mutable element_cnt : int;
  mutable capacity : int;
}

let create () =
  {
    parent = Array.init 64 Fun.id;
    elements = Array.make 64 [];
    node_class = Hashtbl.create 256;
    class_cnt = 0;
    element_cnt = 0;
    capacity = 64;
  }

let rec find m i =
  let p = m.parent.(i) in
  if p = i then i
  else begin
    let root = find m p in
    m.parent.(i) <- root;
    root
  end

(* Canonicalize a node's child class ids. *)
let canon m (n : node) : node =
  match n with
  | N_scan _ -> n
  | N_select s -> N_select { s with arg = find m s.arg }
  | N_project p -> N_project { p with arg = find m p.arg }
  | N_sort s -> N_sort { s with arg = find m s.arg }
  | N_product { left; right } ->
      N_product { left = find m left; right = find m right }
  | N_join j -> N_join { j with left = find m j.left; right = find m j.right }
  | N_tjoin j ->
      N_tjoin { j with left = find m j.left; right = find m j.right }
  | N_taggr a -> N_taggr { a with arg = find m a.arg }
  | N_dupelim c -> N_dupelim (find m c)
  | N_coalesce c -> N_coalesce (find m c)
  | N_difference { left; right } ->
      N_difference { left = find m left; right = find m right }
  | N_tm c -> N_tm (find m c)
  | N_td c -> N_td (find m c)

let grow m =
  if m.class_cnt >= m.capacity then begin
    let cap = 2 * m.capacity in
    let parent = Array.init cap (fun i -> if i < m.capacity then m.parent.(i) else i) in
    let elements = Array.make cap [] in
    Array.blit m.elements 0 elements 0 m.capacity;
    m.parent <- parent;
    m.elements <- elements;
    m.capacity <- cap
  end

let new_class m =
  grow m;
  let id = m.class_cnt in
  m.class_cnt <- m.class_cnt + 1;
  id

(** Elements of a class (canonicalized child ids). *)
let elements m i = List.map (canon m) m.elements.(find m i)

let class_count m =
  (* live root classes *)
  let n = ref 0 in
  for i = 0 to m.class_cnt - 1 do
    if find m i = i then incr n
  done;
  !n

let element_count m = m.element_cnt

(** All live class ids. *)
let classes m =
  List.filter (fun i -> find m i = i) (List.init m.class_cnt Fun.id)

(** Merge two classes proved equivalent; returns the surviving root. *)
let rec union m a b =
  let ra = find m a and rb = find m b in
  if ra = rb then ra
  else begin
    (* keep the smaller id as root for stable reporting *)
    let root, other = if ra < rb then (ra, rb) else (rb, ra) in
    m.parent.(other) <- root;
    m.elements.(root) <- m.elements.(other) @ m.elements.(root);
    m.elements.(other) <- [];
    (* Re-canonicalize the dedup table lazily: entries pointing at [other]
       now resolve to [root] through find. Merging may make two previously
       distinct nodes equal; fix up collisions. *)
    rehash m;
    root
  end

(* After a union, canonical forms change; rebuild the dedup table and merge
   classes that now contain identical nodes. *)
and rehash m =
  Hashtbl.reset m.node_class;
  let pending = ref [] in
  for i = 0 to m.class_cnt - 1 do
    if find m i = i then
      List.iter
        (fun n ->
          let cn = canon m n in
          match Hashtbl.find_opt m.node_class cn with
          | Some j when find m j <> i -> pending := (i, j) :: !pending
          | Some _ -> ()
          | None -> Hashtbl.replace m.node_class cn i)
        m.elements.(i)
  done;
  match !pending with
  | [] -> ()
  | (a, b) :: _ -> ignore (union m a b)

(** [insert m node]: return the class holding [node], creating one if new. *)
let insert m (n : node) : int =
  let n = canon m n in
  match Hashtbl.find_opt m.node_class n with
  | Some c -> find m c
  | None ->
      let c = new_class m in
      m.elements.(c) <- [ n ];
      m.element_cnt <- m.element_cnt + 1;
      Hashtbl.replace m.node_class n c;
      c

(** [add_to_class m c node]: record that [node] is equivalent to class [c].
    If [node] already lives in another class, the classes merge.  Returns
    true when the memo changed. *)
let add_to_class m c (n : node) : bool =
  let c = find m c in
  let n = canon m n in
  match Hashtbl.find_opt m.node_class n with
  | Some c' when find m c' = c -> false
  | Some c' ->
      ignore (union m c c');
      true
  | None ->
      m.elements.(c) <- n :: m.elements.(c);
      m.element_cnt <- m.element_cnt + 1;
      Hashtbl.replace m.node_class n c;
      true

(* ------------------------------------------------------------------ *)
(* Conversion from/to operator trees                                    *)
(* ------------------------------------------------------------------ *)

(** Insert a whole operator tree; returns the root class. *)
let rec insert_op m (op : Op.t) : int =
  match op with
  | Op.Scan { table; alias; schema } -> insert m (N_scan { table; alias; schema })
  | Op.Select { pred; arg } -> insert m (N_select { pred; arg = insert_op m arg })
  | Op.Project { items; arg } ->
      insert m (N_project { items; arg = insert_op m arg })
  | Op.Sort { order; arg } -> insert m (N_sort { order; arg = insert_op m arg })
  | Op.Product { left; right } ->
      insert m (N_product { left = insert_op m left; right = insert_op m right })
  | Op.Join { pred; left; right } ->
      insert m (N_join { pred; left = insert_op m left; right = insert_op m right })
  | Op.Temporal_join { pred; left; right } ->
      insert m (N_tjoin { pred; left = insert_op m left; right = insert_op m right })
  | Op.Temporal_aggregate { group_by; aggs; arg } ->
      insert m (N_taggr { group_by; aggs; arg = insert_op m arg })
  | Op.Dup_elim arg -> insert m (N_dupelim (insert_op m arg))
  | Op.Coalesce arg -> insert m (N_coalesce (insert_op m arg))
  | Op.Difference { left; right } ->
      insert m
        (N_difference { left = insert_op m left; right = insert_op m right })
  | Op.To_mw arg -> insert m (N_tm (insert_op m arg))
  | Op.To_db arg -> insert m (N_td (insert_op m arg))

exception Cyclic

(** Extract one representative operator tree from a class (the first
    element acyclically reachable; transfers are deprioritized so the
    representative is the "plain" logical expression when one exists).
    Used for schema and statistics derivation — all elements are
    equivalent, so any representative works. *)
let rec extract m ?(visiting = []) (c : int) : Op.t =
  let c = find m c in
  if List.mem c visiting then raise Cyclic;
  let visiting = c :: visiting in
  let els = elements m c in
  let rank = function N_tm _ | N_td _ -> 1 | _ -> 0 in
  let els = List.stable_sort (fun a b -> Int.compare (rank a) (rank b)) els in
  let rec try_els = function
    | [] -> raise Cyclic
    | n :: rest -> (
        try extract_node m ~visiting n with Cyclic -> try_els rest)
  in
  try_els els

and extract_node m ~visiting (n : node) : Op.t =
  let sub c = extract m ~visiting c in
  match n with
  | N_scan { table; alias; schema } -> Op.Scan { table; alias; schema }
  | N_select { pred; arg } -> Op.Select { pred; arg = sub arg }
  | N_project { items; arg } -> Op.Project { items; arg = sub arg }
  | N_sort { order; arg } -> Op.Sort { order; arg = sub arg }
  | N_product { left; right } -> Op.Product { left = sub left; right = sub right }
  | N_join { pred; left; right } ->
      Op.Join { pred; left = sub left; right = sub right }
  | N_tjoin { pred; left; right } ->
      Op.Temporal_join { pred; left = sub left; right = sub right }
  | N_taggr { group_by; aggs; arg } ->
      Op.Temporal_aggregate { group_by; aggs; arg = sub arg }
  | N_dupelim c -> Op.Dup_elim (sub c)
  | N_coalesce c -> Op.Coalesce (sub c)
  | N_difference { left; right } ->
      Op.Difference { left = sub left; right = sub right }
  | N_tm c -> Op.To_mw (sub c)
  | N_td c -> Op.To_db (sub c)

(** Output schema of a class (derived from a representative). *)
let schema_of m c = Op.schema (extract m c)

(** Result location of a class.  Invariant: all elements of a class share a
    location (rules never mix them). *)
let rec location m ?(visiting = []) (c : int) : Op.location =
  let c = find m c in
  if List.mem c visiting then raise Cyclic;
  let visiting = c :: visiting in
  let rec of_node = function
    | [] -> raise Cyclic
    | n :: rest -> (
        match n with
        | N_scan _ | N_td _ -> Op.Db
        | N_tm _ -> Op.Mw
        | N_select { arg; _ } | N_project { arg; _ } | N_sort { arg; _ }
        | N_taggr { arg; _ } | N_dupelim arg | N_coalesce arg -> (
            try location m ~visiting arg with Cyclic -> of_node rest)
        | N_product { left; _ } | N_join { left; _ } | N_tjoin { left; _ }
        | N_difference { left; _ } -> (
            try location m ~visiting left with Cyclic -> of_node rest))
  in
  of_node (elements m c)
