(** TANGO — the temporal middleware session (paper Figure 1).

    A session owns a client connection to the conventional DBMS and drives
    the full pipeline: parse temporal SQL into the initial plan, collect
    statistics, optimize (transformation rules + cost-based physical
    search), translate DBMS-resident parts to SQL, execute through the
    iterator engine, and optionally adapt cost factors from measured
    times. *)

open Tango_rel
open Tango_algebra

type t

val log_src : Logs.src
(** The middleware's log source ([tango.middleware]); set its level to see
    chosen plans, execution times and feedback updates. *)

val connect : ?row_prefetch:int -> ?roundtrip_spin:int -> Tango_dbms.Database.t -> t
(** Open a session over a DBMS.  [row_prefetch] and [roundtrip_spin]
    configure the client boundary (see {!Tango_dbms.Client}). *)

val client : t -> Tango_dbms.Client.t
val database : t -> Tango_dbms.Database.t

val factors : t -> Tango_cost.Factors.t
(** The session's (mutable) cost factors. *)

val set_selectivity_mode : t -> Tango_stats.Selectivity.mode -> unit
(** [Temporal] (default) or [Naive] — the §3.3 comparison toggle. *)

val set_feedback : t -> bool -> unit
(** Enable adaptation of cost factors from measured per-algorithm times
    after each execution (off by default). *)

val set_transfer_sharing : t -> bool -> unit
(** Fetch alpha-equivalent `TRANSFER^M` statements only once per query
    (on by default) — the paper's §7 "issue only one T^M" refinement. *)

val set_histograms : t -> bool -> unit
(** Collect histograms during ANALYZE (on by default); invalidates cached
    statistics. *)

val calibrate : ?sizes:Tango_cost.Calibrate.probe_sizes -> t -> unit
(** Run cost-factor calibration against the connected DBMS and adopt the
    measured factors. *)

val adopt_factors : t -> Tango_cost.Factors.t -> unit
(** Adopt previously calibrated factors (e.g. shared across sessions). *)

val refresh_statistics : t -> unit
(** Invalidate cached statistics (after loads or ANALYZE). *)

val base_stats : t -> qualifier:string -> string -> Tango_stats.Rel_stats.t
(** The Statistics Collector hook: statistics for a base table under a
    qualifier, cached per session. *)

val stats_env : t -> Tango_stats.Derive.env
val schema_lookup : t -> string -> Schema.t

(** {1 Optimization} *)

val optimize : t -> ?required_order:Order.t -> Op.t -> Tango_volcano.Search.result
(** Optimize an initial algebra plan (which must carry its top [T^M]). *)

val cost_plan :
  t -> ?required_order:Order.t -> Op.t -> Tango_volcano.Physical.plan option
(** Cost a fixed plan tree without exploring alternatives. *)

(** {1 Execution} *)

type report = {
  result : Relation.t;
  physical : Tango_volcano.Physical.plan;  (** the chosen plan *)
  exec : Exec_plan.node;  (** with per-algorithm measured times *)
  optimize_us : float;
  execute_us : float;
  classes : int;  (** memo equivalence classes explored *)
  elements : int;  (** memo class elements explored *)
  estimated_cost_us : float;
}

exception No_plan of string

val execute_physical :
  t -> Tango_volcano.Physical.plan -> Relation.t * Exec_plan.node * float
(** Execute a chosen physical plan; returns result, instrumented exec plan,
    and elapsed microseconds.  Temp tables are dropped afterwards. *)

val run_plan : t -> ?required_order:Order.t -> Op.t -> report
(** Optimize and execute an initial algebra plan. *)

val query : t -> string -> report
(** The full pipeline: temporal SQL in, relation out. *)

val run_fixed : t -> ?required_order:Order.t -> Op.t -> report
(** Execute a {e fixed} plan tree (used by the experiments to time the
    paper's hand-enumerated plan alternatives); raises {!No_plan} when the
    tree is not executable as written. *)
