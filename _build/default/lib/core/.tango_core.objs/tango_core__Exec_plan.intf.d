lib/core/exec_plan.mli: Ast Format Op Order Schema Tango_algebra Tango_dbms Tango_rel Tango_sql Tango_volcano Tango_xxl
