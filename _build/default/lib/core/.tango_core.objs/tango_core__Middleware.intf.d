lib/core/middleware.mli: Exec_plan Logs Op Order Relation Schema Tango_algebra Tango_cost Tango_dbms Tango_rel Tango_stats Tango_volcano
