(** TANGO — the temporal middleware session (paper Figure 1).

    A session owns a client connection to the conventional DBMS and drives
    the full pipeline:

    + parse temporal SQL into the initial plan (all processing in the DBMS,
      one [T^M] on top) — {!Tango_tsql.Compile};
    + collect statistics from the DBMS catalog — {!Tango_stats.Collector};
    + calibrate cost factors — {!Tango_cost.Calibrate};
    + optimize: transformation rules + cost-based physical search —
      {!Tango_volcano.Search};
    + translate DBMS-resident parts to SQL and execute the plan through the
      iterator engine — {!Exec_plan};
    + optionally adapt cost factors from measured per-algorithm times
      (the paper's performance-feedback loop). *)

open Tango_rel
open Tango_algebra
open Tango_stats
open Tango_cost
open Tango_volcano
open Tango_dbms

type t = {
  client : Client.t;
  factors : Factors.t;
  mutable selectivity_mode : Selectivity.mode;
  mutable histograms : bool;  (** collect histograms during ANALYZE *)
  mutable feedback : bool;  (** adapt cost factors from executions *)
  mutable feedback_alpha : float;
  mutable max_memo_elements : int;
  mutable share_transfers : bool;
  stats_cache : (string * string, Rel_stats.t) Hashtbl.t;
}

let connect ?row_prefetch ?roundtrip_spin (db : Database.t) : t =
  {
    client = Client.connect ?row_prefetch ?roundtrip_spin db;
    factors = Factors.default ();
    selectivity_mode = Selectivity.Temporal;
    histograms = true;
    feedback = false;
    feedback_alpha = 0.3;
    max_memo_elements = 5_000;
    share_transfers = true;
    stats_cache = Hashtbl.create 16;
  }

let client t = t.client
let database t = Client.database t.client
let factors t = t.factors

let set_selectivity_mode t m = t.selectivity_mode <- m
let set_feedback t b = t.feedback <- b
let set_transfer_sharing t b = t.share_transfers <- b

let set_histograms t b =
  t.histograms <- b;
  Hashtbl.reset t.stats_cache

(** Run cost-factor calibration against the connected DBMS and adopt the
    measured factors. *)
let calibrate ?sizes t =
  let measured = Calibrate.run ?sizes t.client in
  Factors.blend ~alpha:1.0 t.factors measured

(** Adopt previously calibrated factors (e.g. shared across sessions against
    the same DBMS installation). *)
let adopt_factors t (f : Factors.t) = Factors.blend ~alpha:1.0 t.factors f

(** Invalidate cached statistics (after loads or ANALYZE). *)
let refresh_statistics t = Hashtbl.reset t.stats_cache

(* The Statistics Collector hook used for optimization. *)
let base_stats t ~qualifier table : Rel_stats.t =
  match Hashtbl.find_opt t.stats_cache (qualifier, table) with
  | Some s -> s
  | None ->
      let histograms = if t.histograms then `All else `None in
      let s = Collector.collect ~histograms (database t) ~qualifier table in
      Hashtbl.replace t.stats_cache (qualifier, table) s;
      s

let stats_env t : Derive.env =
  Derive.env ~mode:t.selectivity_mode (fun ~qualifier table ->
      base_stats t ~qualifier table)

let schema_lookup t name = Database.table_schema (database t) name

(* ------------------------------------------------------------------ *)
(* Optimization                                                          *)
(* ------------------------------------------------------------------ *)

(** Optimize an initial algebra plan (which must already carry its top
    [T^M]). *)
let optimize t ?(required_order : Order.t = []) (initial : Op.t) :
    Search.result =
  Search.optimize ~factors:t.factors ~stats_env:(stats_env t) ~required_order
    ~max_elements:t.max_memo_elements initial

(** Cost a fixed plan without exploring alternatives. *)
let cost_plan t ?(required_order : Order.t = []) (plan : Op.t) :
    Physical.plan option =
  Search.cost_plan ~factors:t.factors ~stats_env:(stats_env t) ~required_order
    plan

(* ------------------------------------------------------------------ *)
(* Execution                                                             *)
(* ------------------------------------------------------------------ *)

type report = {
  result : Relation.t;
  physical : Physical.plan;
  exec : Exec_plan.node;
  optimize_us : float;
  execute_us : float;
  classes : int;
  elements : int;
  estimated_cost_us : float;
}

let now_us () = Unix.gettimeofday () *. 1_000_000.0

exception No_plan of string

(* Log source for the middleware pipeline; enable with
   [Logs.Src.set_level Middleware.log_src (Some Logs.Debug)]. *)
let log_src = Logs.Src.create "tango.middleware" ~doc:"TANGO middleware pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Feedback: turn measured per-node times into factor observations and
   blend them in.  Dividing TRANSFER^M time between the transfer and the
   DBMS work below it is not possible from out here (the paper calls this
   an "interesting challenge"), so the whole time is attributed to the
   transfer factor. *)
let apply_feedback t (root : Exec_plan.node) =
  let observed = Factors.copy t.factors in
  let sum_children n =
    List.fold_left
      (fun acc (c : Exec_plan.node) -> acc +. c.Exec_plan.elapsed_us)
      0.0 (Exec_plan.children n)
  in
  let in_bytes n =
    match Exec_plan.children n with
    | [] -> n.Exec_plan.out_bytes
    | cs ->
        List.fold_left
          (fun acc (c : Exec_plan.node) -> acc +. c.Exec_plan.out_bytes)
          0.0 cs
  in
  Exec_plan.iter
    (fun n ->
      let own = Float.max 0.0 (n.Exec_plan.elapsed_us -. sum_children n) in
      let ib = Float.max 1.0 (in_bytes n) in
      let ob = Float.max 1.0 n.Exec_plan.out_bytes in
      match n.Exec_plan.kind with
      | Exec_plan.Transfer_m _ -> observed.Factors.p_tm <- own /. ob
      | Exec_plan.Sort _ ->
          observed.Factors.p_sortm <-
            own /. (ib *. Formulas.sort_levels ~size:ib)
      | Exec_plan.Filter _ -> observed.Factors.p_sem <- own /. ib
      | Exec_plan.Project _ -> observed.Factors.p_pm <- own /. ib
      | Exec_plan.Taggr _ -> observed.Factors.p_taggm1 <- own /. ib
      | Exec_plan.Merge_join _ -> observed.Factors.p_mjm1 <- own /. ib
      | Exec_plan.Tjoin _ -> observed.Factors.p_tjm1 <- own /. ib
      | Exec_plan.Sort_noop _ | Exec_plan.Dupelim _ | Exec_plan.Coalesce _
      | Exec_plan.Difference _ ->
          ())
    root;
  Factors.blend ~alpha:t.feedback_alpha t.factors observed;
  Log.debug (fun m -> m "feedback: %a" Factors.pp t.factors)

(** Execute a chosen physical plan; returns the result and measured times.
    Temp tables created by `TRANSFER^D` steps are dropped afterwards. *)
let execute_physical t (physical : Physical.plan) : Relation.t * Exec_plan.node * float =
  let exec, temp_tables = Exec_plan.of_physical (database t) physical in
  let t0 = now_us () in
  let result =
    Fun.protect
      ~finally:(fun () ->
        List.iter (Tango_xxl.Transfer.drop_temp_table t.client) temp_tables)
      (fun () ->
        let ctx = Exec_plan.run_ctx ~share_transfers:t.share_transfers t.client in
        Tango_xxl.Cursor.to_relation (Exec_plan.build_cursor ctx exec))
  in
  let elapsed = now_us () -. t0 in
  if t.feedback then apply_feedback t exec;
  (result, exec, elapsed)

(** Optimize and execute an initial algebra plan. *)
let run_plan t ?(required_order : Order.t = []) (initial : Op.t) : report =
  let r = optimize t ~required_order initial in
  match r.Search.plan with
  | None -> raise (No_plan "optimizer found no feasible plan")
  | Some physical ->
      Log.debug (fun m ->
          m "optimized in %.1f ms (%d classes, %d elements): %s est=%.0fus"
            (r.Search.time_us /. 1000.0) r.Search.classes r.Search.elements
            (Physical.signature physical) physical.Physical.total_cost);
      let result, exec, execute_us = execute_physical t physical in
      Log.info (fun m ->
          m "executed %s: %d tuples in %.1f ms (estimated %.1f ms)"
            (Physical.algorithm_name physical.Physical.algorithm)
            (Relation.cardinality result) (execute_us /. 1000.0)
            (physical.Physical.total_cost /. 1000.0));
      {
        result;
        physical;
        exec;
        optimize_us = r.Search.time_us;
        execute_us;
        classes = r.Search.classes;
        elements = r.Search.elements;
        estimated_cost_us = physical.Physical.total_cost;
      }

(** The full pipeline: temporal SQL in, relation out. *)
let query t (sql : string) : report =
  Log.debug (fun m -> m "query: %s" sql);
  let initial = Tango_tsql.Compile.initial_plan ~lookup:(schema_lookup t) sql in
  let required_order = Tango_tsql.Compile.required_order sql in
  run_plan t ~required_order initial

(** Execute a {e fixed} plan tree (used by the experiments to time the
    paper's hand-enumerated plan alternatives). *)
let run_fixed t ?(required_order : Order.t = []) (plan_tree : Op.t) : report =
  match cost_plan t ~required_order plan_tree with
  | None -> raise (No_plan "plan tree is not executable as written")
  | Some physical ->
      let result, exec, execute_us = execute_physical t physical in
      {
        result;
        physical;
        exec;
        optimize_us = 0.0;
        execute_us;
        classes = 0;
        elements = 0;
        estimated_cost_us = physical.Physical.total_cost;
      }
