(** Reference (naive, in-memory) semantics of the algebra.

    Defines the meaning of every operator directly over materialized
    relations, ignoring locations (transfers are identities).  This is the
    ground truth the middleware algorithms, the Translator-To-SQL output,
    and the optimizer's transformations are all tested against. *)

open Tango_rel

val eval : (string -> Relation.t) -> Op.t -> Relation.t
(** [eval lookup op] with [lookup] resolving base-table names.  The result
    schema is [Op.schema op]. *)

val temporal_aggregate :
  Schema.t -> string list -> Op.agg list -> Relation.t -> Relation.t
(** Temporal aggregation over a materialized relation: per group, aggregate
    the tuples covering each constant interval (paper §3.4, Figure 3(c)).
    Output sorted by (grouping attributes, T1). *)

val coalesce : Schema.t -> Relation.t -> Relation.t
(** Merge periods of value-equivalent tuples that overlap or meet. *)
