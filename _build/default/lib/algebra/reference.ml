(** Reference (naive, in-memory) semantics of the algebra.

    This evaluator defines the meaning of every operator directly over
    materialized relations, ignoring locations (transfers are identities).
    It is the ground truth against which the middleware algorithms, the
    Translator-To-SQL output, and the optimizer's plan transformations are
    tested: all of them must be list- or multiset-equivalent to this. *)

open Tango_rel
open Tango_sql

let period_of schema t =
  match Op.period_attrs schema with
  | None -> Op.ill_formed "expected a temporal relation"
  | Some (a1, a2) ->
      let c1 = Tango_temporal.Chronon.of_value (Tuple.field schema t a1) in
      let c2 = Tango_temporal.Chronon.of_value (Tuple.field schema t a2) in
      Tango_temporal.Period.make c1 c2

let non_period_values schema t =
  List.map
    (fun (a : Schema.attribute) -> Tuple.field schema t a.name)
    (Op.non_period_attrs schema)

(** [eval lookup op]: evaluate [op] with [lookup] resolving base-table
    names to relations. *)
let rec eval (lookup : string -> Relation.t) (op : Op.t) : Relation.t =
  let out_schema = Op.schema op in
  match op with
  | Op.Scan { table; _ } ->
      let r = lookup table in
      Relation.make out_schema (Relation.tuples r)
  | Op.Select { pred; arg } ->
      let r = eval lookup arg in
      let p = Scalar.compile_pred (Relation.schema r) pred in
      Relation.filter p r
  | Op.Project { items; arg } ->
      let r = eval lookup arg in
      let fns = List.map (fun (e, _) -> Scalar.compile (Relation.schema r) e) items in
      Relation.make out_schema
        (Array.map
           (fun t -> Array.of_list (List.map (fun f -> f t) fns))
           (Relation.tuples r))
  | Op.Sort { order; arg } ->
      let r = eval lookup arg in
      Relation.make out_schema
        (Relation.tuples (Relation.sort order r))
  | Op.Product { left; right } ->
      let l = eval lookup left and r = eval lookup right in
      let out = ref [] in
      Relation.iter
        (fun lt ->
          Relation.iter (fun rt -> out := Tuple.concat lt rt :: !out) r)
        l;
      Relation.of_list out_schema (List.rev !out)
  | Op.Join { pred; left; right } ->
      let l = eval lookup left and r = eval lookup right in
      let p = Scalar.compile_pred out_schema pred in
      let out = ref [] in
      Relation.iter
        (fun lt ->
          Relation.iter
            (fun rt ->
              let t = Tuple.concat lt rt in
              if p t then out := t :: !out)
            r)
        l;
      Relation.of_list out_schema (List.rev !out)
  | Op.Temporal_join { pred; left; right } ->
      let l = eval lookup left and r = eval lookup right in
      let sl = Relation.schema l and sr = Relation.schema r in
      let concat_schema = Schema.concat sl sr in
      let p = Scalar.compile_pred concat_schema pred in
      let out = ref [] in
      Relation.iter
        (fun lt ->
          let pl = period_of sl lt in
          Relation.iter
            (fun rt ->
              let pr = period_of sr rt in
              match Tango_temporal.Period.intersect pl pr with
              | Some i when p (Tuple.concat lt rt) ->
                  let vals =
                    non_period_values sl lt @ non_period_values sr rt
                    @ [
                        Value.Date (Tango_temporal.Period.t1 i);
                        Value.Date (Tango_temporal.Period.t2 i);
                      ]
                  in
                  out := Tuple.of_list vals :: !out
              | _ -> ())
            r)
        l;
      Relation.of_list out_schema (List.rev !out)
  | Op.Temporal_aggregate { group_by; aggs; arg } ->
      let r = eval lookup arg in
      temporal_aggregate out_schema group_by aggs r
  | Op.Dup_elim arg ->
      let r = eval lookup arg in
      let seen = Hashtbl.create 64 in
      let out = ref [] in
      Relation.iter
        (fun t ->
          if not (Hashtbl.mem seen t) then begin
            Hashtbl.replace seen t ();
            out := t :: !out
          end)
        r;
      Relation.of_list out_schema (List.rev !out)
  | Op.Coalesce arg ->
      let r = eval lookup arg in
      coalesce out_schema r
  | Op.Difference { left; right } ->
      let l = eval lookup left and r = eval lookup right in
      (* Multiset difference preserving left order: each right tuple removes
         one matching left occurrence. *)
      let budget = Hashtbl.create 64 in
      Relation.iter
        (fun t ->
          let k = Array.to_list t in
          Hashtbl.replace budget k (1 + Option.value ~default:0 (Hashtbl.find_opt budget k)))
        r;
      let out = ref [] in
      Relation.iter
        (fun t ->
          let k = Array.to_list t in
          match Hashtbl.find_opt budget k with
          | Some n when n > 0 -> Hashtbl.replace budget k (n - 1)
          | _ -> out := t :: !out)
        l;
      Relation.of_list out_schema (List.rev !out)
  | Op.To_mw arg | Op.To_db arg ->
      let r = eval lookup arg in
      Relation.make out_schema (Relation.tuples r)

(** Temporal aggregation over a materialized relation: for each group, split
    the timeline at period endpoints and aggregate the tuples covering each
    constant interval (paper Section 3.4; result as in Figure 3(c)).
    Output is sorted by grouping attributes, then interval start. *)
and temporal_aggregate out_schema group_by aggs (r : Relation.t) : Relation.t =
  let s = Relation.schema r in
  let group_key t = List.map (fun g -> Tuple.field s t g) group_by in
  (* Partition tuples by group key, preserving first-occurrence order of
     keys for determinism before the final sort. *)
  let groups : (Value.t list, Tuple.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let key_order = ref [] in
  Relation.iter
    (fun t ->
      let k = group_key t in
      match Hashtbl.find_opt groups k with
      | Some cell -> cell := t :: !cell
      | None ->
          Hashtbl.replace groups k (ref [ t ]);
          key_order := k :: !key_order)
    r;
  let compute_agg (members : Tuple.t list) (a : Op.agg) : Value.t =
    let arg_values attr =
      List.filter_map
        (fun t ->
          let v = Tuple.field s t attr in
          if Value.is_null v then None else Some v)
        members
    in
    match (a.Op.fn, a.Op.arg) with
    | Ast.Count_star, _ -> Value.Int (List.length members)
    | Ast.Count, Some attr -> Value.Int (List.length (arg_values attr))
    | Ast.Count, None -> Value.Int (List.length members)
    | Ast.Sum, Some attr -> (
        match arg_values attr with
        | [] -> Value.Null
        | v :: rest -> List.fold_left Value.add v rest)
    | Ast.Avg, Some attr -> (
        match arg_values attr with
        | [] -> Value.Null
        | vs ->
            Value.Float
              (List.fold_left (fun acc v -> acc +. Value.to_float v) 0.0 vs
              /. float_of_int (List.length vs)))
    | Ast.Min, Some attr -> (
        match arg_values attr with
        | [] -> Value.Null
        | v :: rest ->
            List.fold_left
              (fun a b -> if Value.compare b a < 0 then b else a)
              v rest)
    | Ast.Max, Some attr -> (
        match arg_values attr with
        | [] -> Value.Null
        | v :: rest ->
            List.fold_left
              (fun a b -> if Value.compare b a > 0 then b else a)
              v rest)
    | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), None ->
        Op.ill_formed "aggregate needs an argument"
  in
  let out = ref [] in
  List.iter
    (fun key ->
      let members = List.rev !(Hashtbl.find groups key) in
      let periods = List.map (period_of s) members in
      let intervals = Tango_temporal.Period.constant_intervals periods in
      List.iter
        (fun (interval, _count) ->
          let covering =
            List.filter
              (fun t ->
                let p = period_of s t in
                Tango_temporal.Period.t1 p <= Tango_temporal.Period.t1 interval
                && Tango_temporal.Period.t2 p >= Tango_temporal.Period.t2 interval)
              members
          in
          let tuple =
            Array.of_list
              (key
              @ [
                  Value.Date (Tango_temporal.Period.t1 interval);
                  Value.Date (Tango_temporal.Period.t2 interval);
                ]
              @ List.map (compute_agg covering) aggs)
          in
          out := tuple :: !out)
        intervals)
    (List.rev !key_order);
  let rel = Relation.of_list out_schema (List.rev !out) in
  let order =
    List.map Order.asc (group_by @ [ "T1" ])
  in
  (* Normalize output order to (G..., T1): both TAGGR implementations
     produce it, and the paper relies on it (Query 1 needs no final sort). *)
  Relation.sort
    (List.map
       (fun k -> { k with Order.attr = Schema.base_name k.Order.attr })
       order)
    rel

(** Coalescing: merge periods of value-equivalent tuples (same non-period
    attributes) that overlap or are adjacent. *)
and coalesce out_schema (r : Relation.t) : Relation.t =
  let s = Relation.schema r in
  let t1_name, t2_name =
    match Op.period_attrs s with
    | Some p -> p
    | None -> Op.ill_formed "coalesce argument must be temporal"
  in
  let groups : (Value.t list, Tango_temporal.Period.t list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let key_order = ref [] in
  Relation.iter
    (fun t ->
      let k = non_period_values s t in
      let p = period_of s t in
      match Hashtbl.find_opt groups k with
      | Some cell -> cell := p :: !cell
      | None ->
          Hashtbl.replace groups k (ref [ p ]);
          key_order := k :: !key_order)
    r;
  let t1_idx = Schema.index s t1_name and t2_idx = Schema.index s t2_name in
  let nonperiod_idxs =
    List.map
      (fun (a : Schema.attribute) -> Schema.index s a.name)
      (Op.non_period_attrs s)
  in
  let out = ref [] in
  List.iter
    (fun key ->
      let merged = Tango_temporal.Period.coalesce !(Hashtbl.find groups key) in
      List.iter
        (fun p ->
          let t = Array.make (Schema.arity s) Value.Null in
          List.iteri (fun i idx -> t.(idx) <- List.nth key i) nonperiod_idxs;
          t.(t1_idx) <- Value.Date (Tango_temporal.Period.t1 p);
          t.(t2_idx) <- Value.Date (Tango_temporal.Period.t2 p);
          out := t :: !out)
        merged)
    (List.rev !key_order);
  Relation.of_list out_schema (List.rev !out)
