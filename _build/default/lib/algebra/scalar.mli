(** Scalar expressions of the middleware algebra.

    The algebra reuses the SQL expression AST for predicates and projection
    functions, which makes the Translator-To-SQL a plain embedding.
    Middleware-side evaluation lives here; subqueries and aggregates are
    invalid in this position and raise {!Unsupported}. *)

open Tango_rel
open Tango_sql

exception Unsupported of string

val truthy : Value.t -> bool
(** SQL boolean view: [Null] is false, non-booleans are true. *)

val compare_op : Ast.binop -> Value.t -> Value.t -> Value.t
(** SQL comparison semantics: any [Null] operand yields false. *)

val compile : Schema.t -> Ast.expr -> Tuple.t -> Value.t
(** Resolve all column references against the schema once; returns an
    evaluator over tuples. *)

val eval : Schema.t -> Ast.expr -> Tuple.t -> Value.t

val compile_pred : Schema.t -> Ast.expr -> Tuple.t -> bool

val attrs : Ast.expr -> string list
(** Attribute names referenced (qualified spelling preserved). *)

val covers : Schema.t -> Ast.expr -> bool
(** Do all references resolve in the schema? *)

val dtype : Schema.t -> Ast.expr -> Value.dtype
(** Static type under the schema. *)

val map_cols :
  (string option -> string -> Ast.expr) -> Ast.expr -> Ast.expr
(** Substitute column references (used for renaming through projections). *)

val to_string : Ast.expr -> string
