lib/algebra/scalar.mli: Ast Schema Tango_rel Tango_sql Tuple Value
