lib/algebra/reference.mli: Op Relation Schema Tango_rel
