lib/algebra/op.ml: Ast Fmt Format List Option Order Printf Scalar Schema String Tango_rel Tango_sql Value
