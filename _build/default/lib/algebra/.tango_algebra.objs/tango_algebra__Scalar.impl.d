lib/algebra/scalar.ml: Array Ast List Option Printer Schema String Tango_rel Tango_sql Tuple Value
