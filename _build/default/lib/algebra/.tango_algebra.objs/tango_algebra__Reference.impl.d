lib/algebra/reference.ml: Array Ast Hashtbl List Op Option Order Relation Scalar Schema Tango_rel Tango_sql Tango_temporal Tuple Value
