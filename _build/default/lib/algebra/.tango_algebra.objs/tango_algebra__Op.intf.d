lib/algebra/op.mli: Format Order Schema Tango_rel Tango_sql Value
