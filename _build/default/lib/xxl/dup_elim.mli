(** `DUPELIM^M`, `DIFFERENCE^M` and `COALESCE^M` — the additional
    middleware algorithms the paper lists as future additions (§3.1).
    One-pass, order-preserving algorithms over sorted input (difference
    materializes its right side at [init]). *)

val dup_elim : Cursor.t -> Cursor.t
(** Drop adjacent duplicates; input must be sorted on all attributes. *)

val difference : Cursor.t -> Cursor.t -> Cursor.t
(** Multiset difference preserving the left input's order. *)

val coalesce : Cursor.t -> Cursor.t
(** Merge periods of value-equivalent adjacent tuples; input must be
    sorted on (non-period attributes, T1). *)
