(** The iterator (cursor) framework of the middleware execution engine.

    Modeled on the XXL library the paper builds on: every algorithm is a
    result set with [init]/[next] methods, enabling pipelined execution
    (paper Figure 2).  [init] prepares inner structures — and for some
    algorithms does real work up front (sorting materializes runs; the
    `TRANSFER^D` algorithm copies its whole input into the DBMS). *)

open Tango_rel

type t = {
  schema : Schema.t;
  init : unit -> unit;
  next : unit -> Tuple.t option;
}

let make ~schema ~init ~next = { schema; init; next }

let schema c = c.schema
let init c = c.init ()
let next c = c.next ()

(** Cursor over a materialized relation. *)
let of_relation (r : Relation.t) : t =
  let pos = ref 0 in
  {
    schema = Relation.schema r;
    init = (fun () -> pos := 0);
    next =
      (fun () ->
        let ts = Relation.tuples r in
        if !pos >= Array.length ts then None
        else begin
          let t = ts.(!pos) in
          incr pos;
          Some t
        end);
  }

(** Cursor over a thunked relation, materialized at [init] time. *)
let of_relation_lazy schema (produce : unit -> Relation.t) : t =
  let state = ref None in
  let pos = ref 0 in
  {
    schema;
    init =
      (fun () ->
        state := Some (produce ());
        pos := 0);
    next =
      (fun () ->
        match !state with
        | None -> invalid_arg "Cursor: next before init"
        | Some r ->
            let ts = Relation.tuples r in
            if !pos >= Array.length ts then None
            else begin
              let t = ts.(!pos) in
              incr pos;
              Some t
            end);
  }

(** [init] then drain into a relation. *)
let to_relation (c : t) : Relation.t =
  c.init ();
  let rec go acc =
    match c.next () with None -> List.rev acc | Some t -> go (t :: acc)
  in
  Relation.of_list c.schema (go [])

(** Drain without init (when the caller already initialized). *)
let drain (c : t) : Tuple.t list =
  let rec go acc =
    match c.next () with None -> List.rev acc | Some t -> go (t :: acc)
  in
  go []

let iter f (c : t) =
  c.init ();
  let rec go () =
    match c.next () with
    | None -> ()
    | Some t ->
        f t;
        go ()
  in
  go ()
