lib/xxl/dup_elim.ml: Array Cursor Hashtbl List Op Option Schema Tango_algebra Tango_rel Tuple Value
