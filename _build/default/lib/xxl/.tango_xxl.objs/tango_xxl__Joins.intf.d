lib/xxl/joins.mli: Ast Cursor Tango_sql
