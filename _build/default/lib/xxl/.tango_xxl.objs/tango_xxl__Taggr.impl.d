lib/xxl/taggr.ml: Agg_state Array Cursor List Op Option Schema Tango_algebra Tango_rel Tuple Value
