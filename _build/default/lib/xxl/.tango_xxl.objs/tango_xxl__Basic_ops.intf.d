lib/xxl/basic_ops.mli: Ast Cursor Tango_sql
