lib/xxl/cursor.ml: Array List Relation Schema Tango_rel Tuple
