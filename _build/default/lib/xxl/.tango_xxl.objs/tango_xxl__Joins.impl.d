lib/xxl/joins.ml: Array Ast Chronon Cursor List Op Relation Scalar Schema Tango_algebra Tango_rel Tango_sql Tango_temporal Tuple
