lib/xxl/dup_elim.mli: Cursor
