lib/xxl/sort.ml: Array Cursor Int List Order Tango_rel Tuple
