lib/xxl/transfer.mli: Ast Client Cursor Schema Tango_dbms Tango_rel Tango_sql
