lib/xxl/agg_state.ml: Ast Map Tango_rel Tango_sql Value
