lib/xxl/taggr.mli: Cursor Op Tango_algebra
