lib/xxl/cursor.mli: Relation Schema Tango_rel Tuple
