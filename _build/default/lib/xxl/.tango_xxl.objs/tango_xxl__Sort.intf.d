lib/xxl/sort.mli: Cursor Order Tango_rel
