lib/xxl/transfer.ml: Ast Client Cursor Database Schema Seq Tango_dbms Tango_rel Tango_sql
