lib/xxl/agg_state.mli: Ast Tango_rel Tango_sql Value
