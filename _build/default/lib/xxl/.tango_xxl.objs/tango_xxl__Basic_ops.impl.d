lib/xxl/basic_ops.ml: Array Ast Cursor List Scalar Schema Tango_algebra Tango_rel Tango_sql
