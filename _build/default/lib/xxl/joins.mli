(** Middleware join algorithms: `MERGEJOIN^M` and `TJOIN^M`, both
    sort-merge over inputs sorted on the join attributes (paper rules
    T2/T3), plus nested-loop fallbacks for joins without an equi-key.

    The temporal join concatenates the non-period attributes of both inputs
    and appends the period intersection as unqualified [T1]/[T2], matching
    {!Tango_algebra.Op.Temporal_join}'s schema. *)

open Tango_sql

val merge_join :
  ?pred:Ast.expr ->
  left_keys:string list ->
  right_keys:string list ->
  Cursor.t ->
  Cursor.t ->
  Cursor.t
(** Equi-join of inputs sorted on the key attributes; [pred] is a residual
    predicate over the concatenated schema.  Output follows the left
    input's key order. *)

val temporal_merge_join :
  ?pred:Ast.expr ->
  left_keys:string list ->
  right_keys:string list ->
  Cursor.t ->
  Cursor.t ->
  Cursor.t
(** Temporal equi-join (period overlap implicit) of sorted inputs. *)

val nested_loop_join : ?pred:Ast.expr -> Cursor.t -> Cursor.t -> Cursor.t
(** No order requirement; the right input is materialized at [init]. *)

val temporal_nested_loop_join :
  ?pred:Ast.expr -> Cursor.t -> Cursor.t -> Cursor.t
