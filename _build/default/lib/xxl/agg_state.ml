(** Incremental aggregate state for `TAGGR^M`.

    The temporal aggregation sweep adds a tuple's contribution when its
    period starts and removes it when its period ends; between events the
    state yields the aggregate value for the current constant interval.
    MIN/MAX need a multiset of live values (a count-map) so removals are
    exact. *)

open Tango_rel
open Tango_sql

module VMap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

type t = {
  fn : Ast.aggfun;
  int_result : bool;  (** SUM over an INT column yields INT *)
  mutable members : int;  (** live tuples (for COUNT(STAR)) *)
  mutable non_null : int;  (** live non-null argument values *)
  mutable isum : int;
  mutable fsum : float;
  mutable bag : int VMap.t;  (** live values, for MIN/MAX *)
}

let create (fn : Ast.aggfun) ~(arg_dtype : Value.dtype option) : t =
  {
    fn;
    int_result = arg_dtype = Some Value.TInt;
    members = 0;
    non_null = 0;
    isum = 0;
    fsum = 0.0;
    bag = VMap.empty;
  }

let add (s : t) (v : Value.t) =
  s.members <- s.members + 1;
  if not (Value.is_null v) then begin
    s.non_null <- s.non_null + 1;
    (match s.fn with
    | Ast.Sum | Ast.Avg ->
        if s.int_result then s.isum <- s.isum + Value.to_int v
        else s.fsum <- s.fsum +. Value.to_float v
    | Ast.Min | Ast.Max ->
        s.bag <-
          VMap.update v
            (function None -> Some 1 | Some n -> Some (n + 1))
            s.bag
    | Ast.Count | Ast.Count_star -> ())
  end

let remove (s : t) (v : Value.t) =
  s.members <- s.members - 1;
  if not (Value.is_null v) then begin
    s.non_null <- s.non_null - 1;
    (match s.fn with
    | Ast.Sum | Ast.Avg ->
        if s.int_result then s.isum <- s.isum - Value.to_int v
        else s.fsum <- s.fsum -. Value.to_float v
    | Ast.Min | Ast.Max ->
        s.bag <-
          VMap.update v
            (function
              | None | Some 1 -> None
              | Some n -> Some (n - 1))
            s.bag
    | Ast.Count | Ast.Count_star -> ())
  end

(** Current aggregate value for the live set. *)
let value (s : t) : Value.t =
  match s.fn with
  | Ast.Count_star -> Value.Int s.members
  | Ast.Count -> Value.Int s.non_null
  | Ast.Sum ->
      if s.non_null = 0 then Value.Null
      else if s.int_result then Value.Int s.isum
      else Value.Float s.fsum
  | Ast.Avg ->
      if s.non_null = 0 then Value.Null
      else
        let total = if s.int_result then float_of_int s.isum else s.fsum in
        Value.Float (total /. float_of_int s.non_null)
  | Ast.Min -> ( match VMap.min_binding_opt s.bag with
      | Some (v, _) -> v
      | None -> Value.Null)
  | Ast.Max -> (
      match VMap.max_binding_opt s.bag with
      | Some (v, _) -> v
      | None -> Value.Null)
