(** `TAGGR^M`: the middleware temporal-aggregation algorithm (paper §3.4).

    Requires its argument sorted on (grouping attributes, T1).  A second
    copy of each group is sorted internally on T2; the two orderings are
    swept like a sort-merge, adding a tuple's contribution when its period
    starts and removing it when it ends, producing each constant interval
    in one pass.  Output is ordered on (grouping attributes, T1). *)

open Tango_algebra

val taggr : group_by:string list -> aggs:Op.agg list -> Cursor.t -> Cursor.t
