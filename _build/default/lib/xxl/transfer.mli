(** The transfer algorithms, `TRANSFER^M` and `TRANSFER^D` (paper §3.2).

    `TRANSFER^M` issues a SELECT through the client boundary and streams
    the result into the middleware (paying marshalling and round-trip
    costs).  `TRANSFER^D` bulk-loads its whole argument into a
    uniquely-named DBMS table at [init] time — the direct-path-load
    analogue; its cursor yields nothing, the data being consumed by SQL
    referencing the created table (the dashed sequence edges of paper
    Figure 5). *)

open Tango_rel
open Tango_sql
open Tango_dbms

val transfer_m : Client.t -> schema:Schema.t -> Ast.query -> Cursor.t
(** [schema] is the expected output schema (from the algebra); the SQL's
    column order must match positionally. *)

val transfer_d : Client.t -> table:string -> Cursor.t -> Cursor.t

val drop_temp_table : Client.t -> string -> unit
(** Drop a temp table if it exists ("the table must be dropped at the end
    of the query"). *)
