(** `SORT^M`: stable external merge sort in the middleware.

    The input is consumed at [init] into sorted runs of at most [run_size]
    tuples; [next] merges the runs through a binary heap.  Stability is
    relied on by the rule set's list-equivalence reasoning. *)

open Tango_rel

val default_run_size : int

val sort : ?run_size:int -> Order.t -> Cursor.t -> Cursor.t
