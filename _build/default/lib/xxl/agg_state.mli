(** Incremental aggregate state for `TAGGR^M`: a tuple's contribution is
    added when its period starts and removed when it ends; between events
    the state yields the aggregate value for the current constant interval.
    MIN/MAX track a multiset of live values so removals are exact. *)

open Tango_rel
open Tango_sql

type t

val create : Ast.aggfun -> arg_dtype:Value.dtype option -> t
(** [arg_dtype] decides whether SUM yields INT or FLOAT. *)

val add : t -> Value.t -> unit
val remove : t -> Value.t -> unit

val value : t -> Value.t
(** Aggregate over the live set; [Null] when the function has no non-null
    inputs (except COUNT, which yields 0). *)
