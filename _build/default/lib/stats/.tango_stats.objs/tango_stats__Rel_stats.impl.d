lib/stats/rel_stats.ml: Float Fmt Histogram List Printf Schema String Tango_rel Value
