lib/stats/selectivity.mli: Ast Rel_stats Tango_sql
