lib/stats/rel_stats.mli: Format Histogram Tango_rel Value
