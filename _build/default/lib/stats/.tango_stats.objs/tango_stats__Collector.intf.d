lib/stats/collector.mli: Database Rel_stats Stat Tango_dbms Tango_rel Value
