lib/stats/selectivity.ml: Ast Float Histogram List Option Rel_stats Schema String Tango_rel Tango_sql Value
