lib/stats/collector.ml: Database List Option Rel_stats Stat Tango_dbms Tango_rel Value
