lib/stats/derive.ml: Ast Float List Op Option Rel_stats Schema Selectivity String Tango_algebra Tango_rel Tango_sql
