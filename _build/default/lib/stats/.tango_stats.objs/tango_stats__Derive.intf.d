lib/stats/derive.mli: Ast Op Rel_stats Selectivity Tango_algebra Tango_sql
