(** The Statistics Collector (paper Figure 1): obtains statistics on base
    relations and attributes from the DBMS catalog and converts them to the
    middleware's {!Rel_stats.t} form, qualified the way the algebra's
    [Scan] qualifies its output schema. *)

open Tango_rel
open Tango_dbms

val numeric_view : Value.t -> float option

val of_table_stats : qualifier:string -> Stat.table_stats -> Rel_stats.t

val collect :
  ?histograms:[ `All | `Cols of string list | `None ] ->
  Database.t ->
  qualifier:string ->
  string ->
  Rel_stats.t
(** Collect for one table, running ANALYZE when the catalog has no
    statistics (or when a specific [histograms] setting is requested). *)
