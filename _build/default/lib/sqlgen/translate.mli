(** The Translator-To-SQL component (paper Figure 1): converts
    DBMS-resident plan parts — subtrees below a [T^M] that reach base
    relations or [T^D] boundaries — into SQL.

    Output columns carry sanitized algebra names ([A.PosID] → [A__PosID])
    in schema order, so `TRANSFER^M` consumes results positionally.  Scans
    and selections over scans inline into FROM/WHERE (view merging), so the
    DBMS keeps its access paths.  Temporal aggregation becomes the
    constant-interval correlated-subquery SQL (the paper's "50-line
    query").  [Coalesce] and [Difference] have no DBMS translation. *)

open Tango_rel
open Tango_sql
open Tango_algebra

exception Untranslatable of string

val sql_name : string -> string
(** SQL-safe column name for an algebra attribute. *)

val temp_table_schema : Schema.t -> Schema.t
(** Column names of the temp table a [T^D] creates for a middleware
    relation with this schema. *)

val translate : ?temp_name:(Op.t -> string) -> Op.t -> Ast.query
(** Translate a DBMS-resident subtree; [temp_name] assigns every [To_db]
    node its temp-table name. *)

val to_sql : ?temp_name:(Op.t -> string) -> Op.t -> string
