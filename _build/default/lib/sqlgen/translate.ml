(** The Translator-To-SQL component (paper Figure 1): converts the
    DBMS-resident parts of a chosen plan — subtrees below a [T^M] that reach
    either base relations or [T^D] boundaries — into SQL for the DBMS.

    Algebra attribute names may be qualified ([A.PosID]); SQL column aliases
    cannot contain dots, so names are sanitized with [__].  Every generated
    SELECT lists its output columns explicitly, in the subtree's schema
    order, so the middleware's `TRANSFER^M` can consume results
    positionally.

    Base-table scans (and [T^D] temp tables) are {e inlined} into the FROM
    clause of the operator above them rather than wrapped in derived
    tables — the view-merging a real DBMS performs — so the DBMS can use its
    access paths (index scans, index nested-loop joins) on them.

    Temporal aggregation translates to the constant-interval SQL (a
    correlated-subquery formulation in the style of Kline & Snodgrass /
    Snodgrass's book — the paper's "50-line SQL query"), which is exactly
    what makes `TAGGR^D` slow.

    [Difference] and [Coalesce] have no DBMS translation here (the paper
    treats them as middleware-only additions); translating them raises
    {!Untranslatable}. *)

open Tango_rel
open Tango_sql
open Tango_algebra

exception Untranslatable of string

let untranslatable fmt =
  Format.kasprintf (fun s -> raise (Untranslatable s)) fmt

(** SQL-safe column name for an algebra attribute. *)
let sql_name (attr : string) : string =
  String.concat "__" (String.split_on_char '.' attr)

(** Column names of a temp table created by [T^D] for a middleware relation
    with this schema (used by both the translator and the execution
    engine). *)
let temp_table_schema (s : Schema.t) : Schema.t =
  Schema.make
    (List.map
       (fun (a : Schema.attribute) -> (sql_name a.name, a.dtype))
       (Schema.attributes s))

type ctx = {
  mutable fresh : int;
  temp_name : Op.t -> string;
      (** name of the temp table materializing a given [T^D] node *)
}

let fresh_alias ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s%d" prefix ctx.fresh

(* A child operator viewed as a FROM item: how to reference it in FROM and
   how to turn an algebra attribute of its schema into a SQL expression. *)
type source = {
  from_ref : Ast.table_ref;
  col : string (* algebra attr name, as in the child schema *) -> Ast.expr;
  schema : Schema.t;  (* the child's algebra schema *)
  where : Ast.expr list;
      (* predicates of inlined selections, to conjoin into the consumer's
         WHERE (selection merging keeps base tables visible to the DBMS's
         access paths) *)
}

(* Rewrite an algebra expression into SQL, resolving each column reference
   against the sources' algebra schemas in order. *)
let rewrite (sources : source list) (e : Ast.expr) : Ast.expr =
  Scalar.map_cols
    (fun q c ->
      let name = match q with None -> c | Some q -> q ^ "." ^ c in
      let rec find = function
        | [] -> untranslatable "column %s does not resolve" name
        | src :: rest -> (
            match Schema.index_opt src.schema name with
            | Some i -> src.col (Schema.name_at src.schema i)
            | None -> find rest)
      in
      find sources)
    e

(* Standard output items: every attribute of [src.schema], sanitized, in
   schema order. *)
let all_items (src : source) =
  List.map
    (fun (a : Schema.attribute) ->
      Ast.Expr (src.col a.name, Some (sql_name a.name)))
    (Schema.attributes src.schema)

(* View a child operator as a FROM item.  Scans and T^D temp tables inline
   as base tables; everything else becomes a derived table whose output
   columns carry sanitized algebra names. *)
let rec source_of ctx (op : Op.t) : source =
  match op with
  | Op.Scan { table; alias; schema = base } ->
      let qual = Option.value alias ~default:table in
      let out_schema = Op.schema op in
      ignore base;
      {
        from_ref = Ast.Table (table, Some qual);
        col = (fun attr -> Ast.Col (Some qual, Schema.base_name attr));
        schema = out_schema;
        where = [];
      }
  | Op.To_db arg ->
      let table = ctx.temp_name op in
      let s = Op.schema arg in
      let alias = fresh_alias ctx "td" in
      {
        from_ref = Ast.Table (table, Some alias);
        col = (fun attr -> Ast.Col (Some alias, sql_name attr));
        schema = s;
        where = [];
      }
  | Op.Select { pred; arg } -> (
      (* Selection merging: keep selecting from the inlined base table and
         push the predicate into the consumer's WHERE. *)
      let src = source_of ctx arg in
      match src.from_ref with
      | Ast.Table _ -> { src with where = src.where @ [ rewrite [ src ] pred ] }
      | Ast.Derived _ -> derived_source ctx op)
  | _ -> derived_source ctx op

and derived_source ctx op =
  let q = translate_node ctx op in
  let alias = fresh_alias ctx "q" in
  {
    from_ref = Ast.Derived (q, alias);
    col = (fun attr -> Ast.Col (Some alias, sql_name attr));
    schema = Op.schema op;
    where = [];
  }

(* A translated node: a query whose output columns are the sanitized names
   of [Op.schema node], in order. *)
and translate_node ctx (op : Op.t) : Ast.query =
  match op with
  | Op.Scan _ | Op.To_db _ ->
      let src = source_of ctx op in
      Ast.select (all_items src) [ src.from_ref ] ~where:(Ast.conj src.where)
  | Op.Select { pred; arg } ->
      let src = source_of ctx arg in
      Ast.select (all_items src) [ src.from_ref ]
        ~where:(Ast.conj (src.where @ [ rewrite [ src ] pred ]))
  | Op.To_mw _ -> untranslatable "T^M inside a DBMS-resident subtree"
  | Op.Project { items; arg } ->
      let src = source_of ctx arg in
      let sql_items =
        List.map
          (fun (e, name) -> Ast.Expr (rewrite [ src ] e, Some (sql_name name)))
          items
      in
      Ast.select sql_items [ src.from_ref ] ~where:(Ast.conj src.where)
  | Op.Sort { order; arg } ->
      let src = source_of ctx arg in
      let order_by =
        List.map
          (fun k ->
            let resolved =
              Schema.name_at src.schema (Schema.index src.schema k.Order.attr)
            in
            (src.col resolved, k.Order.dir = Order.Asc))
          order
      in
      Ast.select (all_items src) [ src.from_ref ] ~order_by
        ~where:(Ast.conj src.where)
  | Op.Product { left; right } -> translate_join ctx None left right
  | Op.Join { pred; left; right } -> translate_join ctx (Some pred) left right
  | Op.Temporal_join { pred; left; right } ->
      translate_temporal_join ctx pred left right
  | Op.Temporal_aggregate { group_by; aggs; arg } ->
      translate_taggr ctx group_by aggs arg
  | Op.Dup_elim arg ->
      let src = source_of ctx arg in
      Ast.Select
        {
          validtime = false;
          coalesce = false;
          distinct = true;
          items = all_items src;
          from = [ src.from_ref ];
          where = Ast.conj src.where;
          group_by = [];
          having = None;
          order_by = [];
        }
  | Op.Coalesce _ -> untranslatable "coalesce has no DBMS translation"
  | Op.Difference _ -> untranslatable "difference has no DBMS translation"

and check_distinct_columns sl sr =
  let names s =
    List.map (fun (a : Schema.attribute) -> sql_name a.name) (Schema.attributes s)
  in
  let nl = names sl and nr = names sr in
  List.iter
    (fun n ->
      if List.mem n nr then
        untranslatable "column %s appears on both sides of a join" n)
    nl

and translate_join ctx pred left right : Ast.query =
  let sl = source_of ctx left and sr = source_of ctx right in
  check_distinct_columns sl.schema sr.schema;
  let where =
    Ast.conj
      (sl.where @ sr.where
      @ match pred with None -> [] | Some p -> [ rewrite [ sl; sr ] p ])
  in
  Ast.select (all_items sl @ all_items sr) [ sl.from_ref; sr.from_ref ] ~where

and translate_temporal_join ctx pred left right : Ast.query =
  let sl = source_of ctx left and sr = source_of ctx right in
  let period (src : source) =
    match Op.period_attrs src.schema with
    | Some p -> p
    | None -> untranslatable "temporal join over a non-temporal argument"
  in
  let l1, l2 = period sl and r1, r2 = period sr in
  let keep (src : source) =
    List.map
      (fun (a : Schema.attribute) ->
        Ast.Expr (src.col a.name, Some (sql_name a.name)))
      (Op.non_period_attrs src.schema)
  in
  (* Output columns: non-period of both sides, then the intersection period
     as T1/T2 — the paper's GREATEST/LEAST pattern (Figure 5). *)
  let items =
    keep sl @ keep sr
    @ [
        Ast.Expr (Ast.Greatest [ sl.col l1; sr.col r1 ], Some "T1");
        Ast.Expr (Ast.Least [ sl.col l2; sr.col r2 ], Some "T2");
      ]
  in
  let overlap =
    Ast.Binop
      ( Ast.And,
        Ast.Binop (Ast.Lt, sl.col l1, sr.col r2),
        Ast.Binop (Ast.Gt, sl.col l2, sr.col r1) )
  in
  let pred_sql = rewrite [ sl; sr ] pred in
  Ast.select items
    [ sl.from_ref; sr.from_ref ]
    ~where:(Ast.conj (sl.where @ sr.where @ [ pred_sql; overlap ]))

(* Temporal aggregation in SQL: endpoints per group, constant intervals via
   a correlated MIN, join back, GROUP BY. *)
and translate_taggr ctx group_by aggs arg : Ast.query =
  let s = Op.schema arg in
  (* Translate the argument once and share the AST value: the DBMS
     materializes structurally identical derived tables once per statement,
     so every reference below reuses the same computation.  (Plain scans
     stay plain: sharing matters for computed arguments.) *)
  (* For computed arguments, one shared derived query (the DBMS
     materializes structurally identical derived tables once).  An inlined
     Select-over-Scan would need its WHERE re-rewritten per alias, so the
     taggr argument is always translated as one derived query here. *)
  let shared_q =
    match arg with
    | Op.Scan _ -> None
    | _ -> Some (translate_node ctx arg)
  in
  let fresh_src () =
    match (arg, shared_q) with
    | Op.Scan { table; _ }, _ ->
        let a = fresh_alias ctx "r" in
        {
          from_ref = Ast.Table (table, Some a);
          col = (fun attr -> Ast.Col (Some a, Schema.base_name attr));
          schema = Op.schema arg;
          where = [];
        }
    | _, Some q ->
        let a = fresh_alias ctx "r" in
        {
          from_ref = Ast.Derived (q, a);
          col = (fun attr -> Ast.Col (Some a, sql_name attr));
          schema = Op.schema arg;
          where = [];
        }
    | _, None -> assert false
  in
  let t1, t2 =
    match Op.period_attrs s with
    | Some p -> p
    | None -> untranslatable "temporal aggregation over a non-temporal argument"
  in
  let group_cols =
    List.map (fun g -> Schema.name_at s (Schema.index s g)) group_by
  in
  (* points = SELECT G..., T1 AS PT FROM arg UNION SELECT G..., T2 FROM arg *)
  let points_select t_attr =
    let src = fresh_src () in
    let items =
      List.map
        (fun g -> Ast.Expr (src.col g, Some (sql_name g)))
        group_cols
      @ [ Ast.Expr (src.col t_attr, Some "PT") ]
    in
    Ast.select items [ src.from_ref ]
  in
  let points = Ast.Union (points_select t1, points_select t2) in
  (* intervals g: for each point, the next point within the same group *)
  let p1 = fresh_alias ctx "p" and p2 = fresh_alias ctx "p" in
  let same_group a b =
    List.map
      (fun g ->
        Ast.Binop
          (Ast.Eq, Ast.Col (Some a, sql_name g), Ast.Col (Some b, sql_name g)))
      group_cols
  in
  let next_point =
    Ast.Scalar_subquery
      (Ast.select
         [ Ast.Expr (Ast.Agg (Ast.Min, Some (Ast.Col (Some p2, "PT"))), Some "M") ]
         [ Ast.Derived (points, p2) ]
         ~where:
           (Ast.conj
              (same_group p2 p1
              @ [
                  Ast.Binop
                    (Ast.Gt, Ast.Col (Some p2, "PT"), Ast.Col (Some p1, "PT"));
                ])))
  in
  let intervals =
    Ast.select
      (List.map
         (fun g ->
           Ast.Expr (Ast.Col (Some p1, sql_name g), Some (sql_name g)))
         group_cols
      @ [
          Ast.Expr (Ast.Col (Some p1, "PT"), Some "TS");
          Ast.Expr (next_point, Some "TE");
        ])
      [ Ast.Derived (points, p1) ]
  in
  (* join back to the argument and aggregate per constant interval *)
  let g = fresh_alias ctx "g" in
  let rsrc = fresh_src () in
  let agg_expr (a : Op.agg) =
    match (a.Op.fn, a.Op.arg) with
    | Ast.Count_star, _ -> Ast.Agg (Ast.Count_star, None)
    | fn, Some attr ->
        let resolved = Schema.name_at s (Schema.index s attr) in
        Ast.Agg (fn, Some (rsrc.col resolved))
    | fn, None ->
        untranslatable "aggregate %s needs an argument" (Ast.aggfun_name fn)
  in
  let cover =
    [
      Ast.Is_not_null (Ast.Col (Some g, "TE"));
      Ast.Binop (Ast.Le, rsrc.col t1, Ast.Col (Some g, "TS"));
      Ast.Binop (Ast.Ge, rsrc.col t2, Ast.Col (Some g, "TE"));
    ]
    @ List.map
        (fun gc ->
          Ast.Binop (Ast.Eq, rsrc.col gc, Ast.Col (Some g, sql_name gc)))
        group_cols
  in
  let out_group_names = List.combine group_by group_cols in
  let items =
    List.map
      (fun (gb, gc) ->
        Ast.Expr (Ast.Col (Some g, sql_name gc), Some (sql_name gb)))
      out_group_names
    @ [
        Ast.Expr (Ast.Col (Some g, "TS"), Some "T1");
        Ast.Expr (Ast.Col (Some g, "TE"), Some "T2");
      ]
    @ List.map (fun a -> Ast.Expr (agg_expr a, Some (sql_name a.Op.out))) aggs
  in
  let group_by_sql =
    List.map (fun gc -> Ast.Col (Some g, sql_name gc)) group_cols
    @ [ Ast.Col (Some g, "TS"); Ast.Col (Some g, "TE") ]
  in
  let order_by =
    List.map
      (fun (gb, _) -> (Ast.Col (None, sql_name gb), true))
      out_group_names
    @ [ (Ast.Col (None, "T1"), true) ]
  in
  Ast.select items
    [ Ast.Derived (intervals, g); rsrc.from_ref ]
    ~where:(Ast.conj cover) ~group_by:group_by_sql ~order_by

(** Translate a DBMS-resident subtree.  [temp_name] assigns every [To_db]
    node its temp-table name. *)
let translate ?(temp_name = fun _ -> "TANGO_TMP") (op : Op.t) : Ast.query =
  let ctx = { fresh = 0; temp_name } in
  translate_node ctx op

let to_sql ?temp_name op = Printer.query_to_sql (translate ?temp_name op)
