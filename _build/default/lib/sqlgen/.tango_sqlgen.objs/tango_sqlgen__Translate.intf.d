lib/sqlgen/translate.mli: Ast Op Schema Tango_algebra Tango_rel Tango_sql
