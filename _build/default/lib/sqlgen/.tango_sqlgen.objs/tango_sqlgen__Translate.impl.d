lib/sqlgen/translate.ml: Ast Format List Op Option Order Printer Printf Scalar Schema String Tango_algebra Tango_rel Tango_sql
