(** Fixed-size storage pages holding serialized tuples.

    Tuples are appended as length-prefixed byte strings; deserialization on
    read makes page access cost real CPU work, standing in for the I/O the
    paper's DBMS would perform. *)

open Tango_rel

val default_size : int
(** 8192 bytes. *)

type t

val create : ?capacity:int -> unit -> t
val tuple_count : t -> int
val bytes_used : t -> int
val capacity : t -> int

val append : t -> Tuple.t -> bool
(** [false] when the page is full.  Raises [Invalid_argument] for a tuple
    larger than an entire page. *)

val get : t -> int -> Tuple.t
(** Deserialize one slot; raises [Invalid_argument] when out of range. *)

val iter : (Tuple.t -> unit) -> t -> unit
val to_seq : t -> Tuple.t Seq.t
