(** A shared LRU buffer pool over (file, page) identities.

    A hit means the page was resident (no I/O charged); a miss charges a
    page read and may evict the least-recently-used page.  O(1) touch and
    evict via an intrusive doubly-linked recency list. *)

type key = { file_id : int; page_no : int }

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] on non-positive capacity. *)

val capacity : t -> int
val resident : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val hit_ratio : t -> float

val touch : t -> key -> bool
(** Record an access: [true] on a hit, [false] on a miss (the page becomes
    resident, evicting the LRU page if the pool was full). *)

val invalidate_file : t -> int -> unit
(** Drop every page of a file (table drop). *)

val reset_counters : t -> unit
val pp : Format.formatter -> t -> unit
