(** Ordered secondary indexes over a heap-file attribute — the behavioural
    stand-in for a B-tree: point and range lookups in O(log n), one page
    read per fetched tuple.  An index may be {e clustered}; the catalog
    records this, as the paper's statistics require. *)

open Tango_rel

type t

val build :
  ?clustered:bool -> stats:Io_stats.t -> Heap_file.t -> string -> t
(** Build an index on the named attribute by scanning the file. *)

val attr : t -> string
val clustered : t -> bool
val entry_count : t -> int

val lookup : t -> Value.t -> Heap_file.rid list
(** Rids with key equal to the argument. *)

val range : t -> ?lo:Value.t -> ?hi:Value.t -> unit -> Heap_file.rid list
(** Rids with [lo <= key <= hi]; omitted bounds are open. *)

val range_count : t -> ?lo:Value.t -> ?hi:Value.t -> unit -> int
(** Count of keys in the closed range without fetching tuples. *)
