(** Heap files: unordered collections of pages holding one table's tuples.

    Page accesses go through the file's {!Io_stats.t} (and optionally a
    shared {!Buffer_pool.t}: only misses pay a page read).  Record ids are
    (page, slot) pairs; indexes store them. *)

open Tango_rel

type rid = { page : int; slot : int }

type t

val create :
  ?page_capacity:int -> ?pool:Buffer_pool.t -> stats:Io_stats.t -> Schema.t -> t

val schema : t -> Schema.t
val file_id : t -> int
val block_count : t -> int
val tuple_count : t -> int
val byte_count : t -> int
val avg_tuple_size : t -> float

val append : t -> Tuple.t -> rid
(** Append, allocating a fresh page when the last one is full. *)

val read_page : t -> int -> Page.t
(** Charges one page read (unless resident in the pool). *)

val fetch : t -> rid -> Tuple.t
(** Fetch a single tuple (one page read). *)

val scan : t -> Tuple.t Seq.t
(** Full scan; each page charged once, each tuple deserialized. *)

val iter : (Tuple.t -> unit) -> t -> unit

val invalidate : t -> unit
(** Drop this file's pages from the shared buffer pool (table drop). *)

val of_relation :
  ?page_capacity:int -> ?pool:Buffer_pool.t -> stats:Io_stats.t -> Relation.t -> t

val to_relation : t -> Relation.t
