(** I/O accounting for the simulated storage layer.

    Every component that touches pages increments these counters; experiments
    and the cost calibrator read them to reason about work performed (the
    substitute for Oracle's block-read statistics). *)

type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable tuples_read : int;
  mutable tuples_written : int;
  mutable index_lookups : int;
}

let create () =
  {
    page_reads = 0;
    page_writes = 0;
    tuples_read = 0;
    tuples_written = 0;
    index_lookups = 0;
  }

let reset s =
  s.page_reads <- 0;
  s.page_writes <- 0;
  s.tuples_read <- 0;
  s.tuples_written <- 0;
  s.index_lookups <- 0

let copy s =
  {
    page_reads = s.page_reads;
    page_writes = s.page_writes;
    tuples_read = s.tuples_read;
    tuples_written = s.tuples_written;
    index_lookups = s.index_lookups;
  }

(** [diff later earlier]: counter deltas between two snapshots. *)
let diff a b =
  {
    page_reads = a.page_reads - b.page_reads;
    page_writes = a.page_writes - b.page_writes;
    tuples_read = a.tuples_read - b.tuples_read;
    tuples_written = a.tuples_written - b.tuples_written;
    index_lookups = a.index_lookups - b.index_lookups;
  }

let pp ppf s =
  Fmt.pf ppf
    "reads=%d writes=%d tuples_read=%d tuples_written=%d index_lookups=%d"
    s.page_reads s.page_writes s.tuples_read s.tuples_written s.index_lookups
