(** I/O accounting for the simulated storage layer — the substitute for
    Oracle's block-read statistics.  Every component that touches pages
    increments these counters. *)

type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable tuples_read : int;
  mutable tuples_written : int;
  mutable index_lookups : int;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val diff : t -> t -> t
(** [diff later earlier]: counter deltas between two snapshots. *)

val pp : Format.formatter -> t -> unit
