(** Fixed-size storage pages holding serialized tuples.

    Tuples are appended as length-prefixed byte strings.  Deserialization on
    read makes page access cost real CPU work, standing in for the I/O the
    paper's DBMS would perform. *)

open Tango_rel

(** Default page size, bytes. *)
let default_size = 8192

type t = {
  capacity : int;
  mutable data : Bytes.t;
  mutable used : int;  (** bytes written *)
  mutable slots : int array;  (** byte offset of each tuple *)
  mutable count : int;  (** number of tuples stored *)
}

let create ?(capacity = default_size) () =
  { capacity; data = Bytes.create capacity; used = 0; slots = Array.make 16 0; count = 0 }

let tuple_count p = p.count
let bytes_used p = p.used
let capacity p = p.capacity

let ensure_slots p =
  if p.count >= Array.length p.slots then begin
    let slots = Array.make (2 * Array.length p.slots) 0 in
    Array.blit p.slots 0 slots 0 p.count;
    p.slots <- slots
  end

(** [append p t]: store tuple [t]; returns [false] when the page is full.  A
    tuple larger than an entire page is rejected with [Invalid_argument]. *)
let append p (t : Tuple.t) =
  let buf = Buffer.create 64 in
  Tuple.serialize buf t;
  let s = Buffer.contents buf in
  let len = String.length s in
  if len > p.capacity then
    invalid_arg "Page.append: tuple larger than page";
  if p.used + len > p.capacity then false
  else begin
    Bytes.blit_string s 0 p.data p.used len;
    ensure_slots p;
    p.slots.(p.count) <- p.used;
    p.used <- p.used + len;
    p.count <- p.count + 1;
    true
  end

(** [get p i]: deserialize the [i]-th tuple. *)
let get p i =
  if i < 0 || i >= p.count then invalid_arg "Page.get: slot out of range";
  let s = Bytes.unsafe_to_string p.data in
  fst (Tuple.deserialize s p.slots.(i))

(** Iterate tuples in slot order. *)
let iter f p =
  let s = Bytes.unsafe_to_string p.data in
  for i = 0 to p.count - 1 do
    f (fst (Tuple.deserialize s p.slots.(i)))
  done

let to_seq p =
  let s = Bytes.unsafe_to_string p.data in
  Seq.init p.count (fun i -> fst (Tuple.deserialize s p.slots.(i)))
