lib/storage/buffer_pool.ml: Fmt Hashtbl List
