lib/storage/page.mli: Seq Tango_rel Tuple
