lib/storage/ordered_index.mli: Heap_file Io_stats Tango_rel Value
