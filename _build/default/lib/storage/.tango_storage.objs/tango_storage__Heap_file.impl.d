lib/storage/heap_file.ml: Array Buffer_pool Io_stats List Page Relation Schema Seq Tango_rel Tuple
