lib/storage/ordered_index.ml: Array Heap_file Io_stats List Page Schema Tango_rel Value
