lib/storage/heap_file.mli: Buffer_pool Io_stats Page Relation Schema Seq Tango_rel Tuple
