lib/storage/page.ml: Array Buffer Bytes Seq String Tango_rel Tuple
