lib/sql/parser.ml: Ast Lexer List Printf String Tango_rel Tango_temporal Value
