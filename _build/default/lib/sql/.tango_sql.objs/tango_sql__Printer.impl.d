lib/sql/printer.ml: Ast Buffer List Printf String Tango_rel Tango_temporal Value
