lib/sql/printer.mli: Ast Tango_rel
