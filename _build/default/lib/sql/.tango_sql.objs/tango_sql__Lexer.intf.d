lib/sql/lexer.mli:
