lib/sql/ast.ml: List Tango_rel Value
