(** Recursive-descent parser for the SQL subset (see {!Ast}), including the
    temporal-SQL extensions ([VALIDTIME [COALESCE] SELECT]). *)

exception Parse_error of string

val statement : string -> Ast.statement
(** Parse one SQL statement (a trailing [;] is allowed).  Raises
    {!Parse_error} or {!Lexer.Lex_error}. *)

val query : string -> Ast.query
(** Parse a query (SELECT/UNION); raises {!Parse_error} on DDL/DML. *)
