(** Render SQL ASTs back to text — how the middleware ships SQL strings to
    the DBMS (as TANGO shipped them over JDBC). *)

val binop_name : Ast.binop -> string
val value_to_sql : Tango_rel.Value.t -> string
val expr_to_sql : Ast.expr -> string
val query_to_sql : Ast.query -> string
val statement_to_sql : Ast.statement -> string
