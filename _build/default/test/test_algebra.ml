(* Tests for the logical algebra: schema/location inference, validation,
   and the reference evaluator (which defines operator semantics). *)

open Tango_rel
open Tango_sql
open Tango_algebra

let pos_schema =
  Schema.make
    [ ("PosID", Value.TInt); ("EmpName", Value.TStr);
      ("T1", Value.TDate); ("T2", Value.TDate) ]

(* Figure 3(a) POSITION. *)
let position =
  Relation.of_list pos_schema
    (List.map
       (fun (p, n, a, b) ->
         Tuple.of_list [ Value.Int p; Value.Str n; Value.Date a; Value.Date b ])
       [ (1, "Tom", 2, 20); (1, "Jane", 5, 25); (2, "Tom", 5, 10) ])

let lookup = function
  | "POSITION" -> position
  | t -> failwith ("unknown table " ^ t)

let col ?q c = Ast.Col (q, c)
let eval = Reference.eval lookup
let scan ?alias () = Op.scan ?alias "POSITION" pos_schema

let test_scan_schema () =
  let s = Op.schema (scan ()) in
  Alcotest.(check (list string)) "qualified by table"
    [ "POSITION.PosID"; "POSITION.EmpName"; "POSITION.T1"; "POSITION.T2" ]
    (Schema.names s);
  let s = Op.schema (scan ~alias:"A" ()) in
  Alcotest.(check bool) "alias qualification" true (Schema.mem s "A.PosID")

let test_period_attrs () =
  (match Op.period_attrs (Op.schema (scan ~alias:"A" ())) with
  | Some ("A.T1", "A.T2") -> ()
  | _ -> Alcotest.fail "period attrs not found");
  Alcotest.(check bool) "non temporal" true
    (Op.period_attrs (Schema.make [ ("X", Value.TInt) ]) = None)

let taggr_op =
  Op.temporal_aggregate [ "PosID" ] [ Op.count_star "CNT" ] (scan ())

let test_taggr_schema () =
  let s = Op.schema taggr_op in
  Alcotest.(check (list string)) "taggr schema"
    [ "PosID"; "T1"; "T2"; "CNT" ] (Schema.names s);
  Alcotest.(check bool) "count is int" true
    (Schema.dtype_of s "CNT" = Value.TInt)

let test_tjoin_schema () =
  let tj =
    Op.temporal_join
      (Ast.Binop (Ast.Eq, col "PosID", col ~q:"B" "PosID"))
      taggr_op
      (scan ~alias:"B" ())
  in
  let s = Op.schema tj in
  Alcotest.(check (list string)) "tjoin schema"
    [ "PosID"; "CNT"; "B.PosID"; "B.EmpName"; "T1"; "T2" ]
    (Schema.names s)

let test_ill_formed () =
  let fails op =
    match Op.validate op with
    | exception Op.Ill_formed _ -> true
    | () -> false
  in
  Alcotest.(check bool) "bad predicate attr" true
    (fails (Op.select (Ast.Binop (Ast.Eq, col "Nope", Ast.Lit (Value.Int 1))) (scan ())));
  Alcotest.(check bool) "bad group attr" true
    (fails (Op.temporal_aggregate [ "Nope" ] [ Op.count_star "C" ] (scan ())));
  Alcotest.(check bool) "taggr over non-temporal" true
    (fails
       (Op.temporal_aggregate [ "PosID" ] [ Op.count_star "C" ]
          (Op.project_attrs [ "PosID" ] (scan ()))));
  (* T^D over a DBMS-resident relation is ill-formed. *)
  Alcotest.(check bool) "T^D over DB" true (fails (Op.to_db (scan ())));
  (* Mixed-location join. *)
  Alcotest.(check bool) "mixed locations" true
    (fails
       (Op.join (Ast.Lit (Value.Bool true)) (scan ()) (Op.to_mw (scan ~alias:"B" ()))))

let test_locations () =
  Alcotest.(check bool) "scan in db" true (Op.location (scan ()) = Op.Db);
  Alcotest.(check bool) "tm in mw" true (Op.location (Op.to_mw (scan ())) = Op.Mw);
  let plan = Op.to_db (Op.select (Ast.Lit (Value.Bool true)) (Op.to_mw (scan ()))) in
  Alcotest.(check bool) "td back to db" true (Op.location plan = Op.Db);
  Op.validate plan

(* --- reference semantics --- *)

let test_ref_select_project () =
  let op =
    Op.project_attrs [ "EmpName" ]
      (Op.select
         (Ast.Binop (Ast.Eq, col "PosID", Ast.Lit (Value.Int 1)))
         (scan ()))
  in
  let r = eval op in
  Alcotest.(check int) "two tuples" 2 (Relation.cardinality r);
  Alcotest.(check (list string)) "schema" [ "EmpName" ]
    (Schema.names (Relation.schema r))

let test_ref_sort () =
  let op = Op.sort [ Order.desc "T1" ] (scan ()) in
  let r = eval op in
  let t1s = Array.to_list (Array.map Value.to_int (Relation.column r "T1")) in
  Alcotest.(check (list int)) "desc" [ 5; 5; 2 ] t1s

(* Figure 3(c): the temporal aggregation result. *)
let test_ref_taggr_figure3c () =
  let r = eval taggr_op in
  let rows =
    Array.to_list
      (Array.map
         (fun t -> Array.to_list (Array.map Value.to_int t))
         (Relation.tuples r))
  in
  Alcotest.(check (list (list int))) "figure 3(c)"
    [ [ 1; 2; 5; 1 ]; [ 1; 5; 20; 2 ]; [ 1; 20; 25; 1 ]; [ 2; 5; 10; 1 ] ]
    rows

(* Figure 3(b): temporal aggregation ⋈ᵀ POSITION, sorted by position. *)
let test_ref_query_figure3b () =
  let tj =
    Op.temporal_join
      (Ast.Binop (Ast.Eq, col "PosID", col ~q:"B" "PosID"))
      taggr_op
      (scan ~alias:"B" ())
  in
  let final =
    Op.sort
      [ Order.asc "PosID" ]
      (Op.project
         [ (col "PosID", "PosID"); (col ~q:"B" "EmpName", "EmpName");
           (col "T1", "T1"); (col "T2", "T2"); (col "CNT", "COUNTofPosID") ]
         tj)
  in
  let r = eval final in
  let rows =
    Array.to_list
      (Array.map
         (fun t ->
           ( Value.to_int t.(0),
             Value.to_string t.(1),
             Value.to_int t.(2),
             Value.to_int t.(3),
             Value.to_int t.(4) ))
         (Relation.tuples r))
  in
  let expected =
    [ (1, "'Tom'", 2, 5, 1); (1, "'Tom'", 5, 20, 2); (1, "'Jane'", 5, 20, 2);
      (1, "'Jane'", 20, 25, 1); (2, "'Tom'", 5, 10, 1) ]
  in
  Alcotest.(check int) "five tuples" 5 (List.length rows);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        "expected tuple present" true (List.mem e rows))
    expected

let test_ref_join_vs_product () =
  let pred = Ast.Binop (Ast.Eq, col ~q:"A" "PosID", col ~q:"B" "PosID") in
  let j = eval (Op.join pred (scan ~alias:"A" ()) (scan ~alias:"B" ())) in
  let p =
    eval
      (Op.select pred
         (Op.Product { left = scan ~alias:"A" (); right = scan ~alias:"B" () }))
  in
  Alcotest.(check bool) "join = select over product" true
    (Relation.equal_multiset j p);
  Alcotest.(check int) "5 matches" 5 (Relation.cardinality j)

let test_ref_dup_elim () =
  let doubled =
    Op.Difference
      {
        left = scan ();
        right = Op.select (Ast.Lit (Value.Bool false)) (scan ~alias:"B" ());
      }
  in
  ignore doubled;
  let r = eval (Op.Dup_elim (Op.project_attrs [ "EmpName" ] (scan ()))) in
  Alcotest.(check int) "tom and jane" 2 (Relation.cardinality r)

let test_ref_difference () =
  let minus_pos1 =
    Op.Difference
      {
        left = scan ();
        right =
          Op.select
            (Ast.Binop (Ast.Eq, col "PosID", Ast.Lit (Value.Int 1)))
            (scan ~alias:"B" ());
      }
  in
  let r = eval minus_pos1 in
  Alcotest.(check int) "only pos 2 left" 1 (Relation.cardinality r)

let test_ref_coalesce () =
  (* Value-equivalent tuples with adjacent/overlapping periods merge. *)
  let schema = Schema.make [ ("K", Value.TStr); ("T1", Value.TDate); ("T2", Value.TDate) ] in
  let rel =
    Relation.of_list schema
      (List.map
         (fun (k, a, b) -> Tuple.of_list [ Value.Str k; Value.Date a; Value.Date b ])
         [ ("x", 1, 5); ("x", 5, 9); ("x", 20, 25); ("y", 3, 6) ])
  in
  let lookup = function "R" -> rel | _ -> failwith "?" in
  let r = Reference.eval lookup (Op.Coalesce (Op.scan "R" schema)) in
  Alcotest.(check int) "three tuples" 3 (Relation.cardinality r);
  let xs =
    List.filter
      (fun t -> Value.equal t.(0) (Value.Str "x"))
      (Relation.to_list r)
  in
  Alcotest.(check bool) "x merged [1,9)" true
    (List.exists
       (fun t -> Value.to_int t.(1) = 1 && Value.to_int t.(2) = 9)
       xs)

(* property: temporal join periods always overlap both inputs *)
let period_row_gen =
  QCheck.Gen.(
    map
      (fun (p, t1, d) -> (p, t1, t1 + 1 + d))
      (triple (int_range 1 3) (int_range 0 30) (int_range 0 10)))

let rel_of_rows rows =
  let schema =
    Schema.make [ ("K", Value.TInt); ("T1", Value.TDate); ("T2", Value.TDate) ]
  in
  Relation.of_list schema
    (List.map
       (fun (k, a, b) -> Tuple.of_list [ Value.Int k; Value.Date a; Value.Date b ])
       rows)

let prop_tjoin_intersections =
  QCheck.Test.make ~name:"temporal join emits true intersections" ~count:100
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 8) (QCheck.make period_row_gen))
        (list_of_size (QCheck.Gen.int_bound 8) (QCheck.make period_row_gen)))
    (fun (lrows, rrows) ->
      let l = rel_of_rows lrows and r = rel_of_rows rrows in
      let schema = Relation.schema l in
      let lookup = function "L" -> l | "R" -> r | _ -> failwith "?" in
      let op =
        Op.temporal_join
          (Ast.Binop (Ast.Eq, col ~q:"A" "K", col ~q:"B" "K"))
          (Op.scan ~alias:"A" "L" (Schema.unqualify schema))
          (Op.scan ~alias:"B" "R" (Schema.unqualify schema))
      in
      let out = Reference.eval lookup op in
      (* every output period is non-empty and within both K-matched pairs *)
      Array.for_all
        (fun t ->
          let s = Relation.schema out in
          let t1 = Value.to_int (Tuple.field s t "T1")
          and t2 = Value.to_int (Tuple.field s t "T2") in
          t1 < t2)
        (Relation.tuples out)
      &&
      (* output count equals brute-force count *)
      let brute =
        List.length
          (List.concat_map
             (fun (k1, a1, b1) ->
               List.filter
                 (fun (k2, a2, b2) -> k1 = k2 && a1 < b2 && b1 > a2)
                 rrows)
             lrows)
      in
      Relation.cardinality out = brute)

let prop_taggr_counts_cover =
  QCheck.Test.make ~name:"taggr counts = covering tuples at midpoint" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) (QCheck.make period_row_gen))
    (fun rows ->
      let r = rel_of_rows rows in
      let lookup = function "R" -> r | _ -> failwith "?" in
      let op =
        Op.temporal_aggregate [ "R.K" ] [ Op.count_star "CNT" ]
          (Op.scan "R" (Schema.unqualify (Relation.schema r)))
      in
      let out = Reference.eval lookup op in
      let s = Relation.schema out in
      Array.for_all
        (fun t ->
          let k = Value.to_int (Tuple.field s t "R.K") in
          let t1 = Value.to_int (Tuple.field s t "T1") in
          let cnt = Value.to_int (Tuple.field s t "CNT") in
          let cover =
            List.length
              (List.filter (fun (k', a, b) -> k' = k && a <= t1 && b > t1) rows)
          in
          cover = cnt)
        (Relation.tuples out))

let () =
  Alcotest.run "tango_algebra"
    [
      ( "schema",
        [
          Alcotest.test_case "scan qualification" `Quick test_scan_schema;
          Alcotest.test_case "period attrs" `Quick test_period_attrs;
          Alcotest.test_case "taggr schema" `Quick test_taggr_schema;
          Alcotest.test_case "tjoin schema" `Quick test_tjoin_schema;
          Alcotest.test_case "ill-formed plans" `Quick test_ill_formed;
          Alcotest.test_case "locations" `Quick test_locations;
        ] );
      ( "reference",
        [
          Alcotest.test_case "select/project" `Quick test_ref_select_project;
          Alcotest.test_case "sort" `Quick test_ref_sort;
          Alcotest.test_case "taggr = figure 3(c)" `Quick test_ref_taggr_figure3c;
          Alcotest.test_case "query = figure 3(b)" `Quick test_ref_query_figure3b;
          Alcotest.test_case "join = select(product)" `Quick test_ref_join_vs_product;
          Alcotest.test_case "dup elim" `Quick test_ref_dup_elim;
          Alcotest.test_case "difference" `Quick test_ref_difference;
          Alcotest.test_case "coalesce" `Quick test_ref_coalesce;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_tjoin_intersections;
          QCheck_alcotest.to_alcotest prop_taggr_counts_cover;
        ] );
    ]
