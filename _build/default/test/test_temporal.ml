(* Tests for chronons and periods. *)

open Tango_temporal

let chr = Chronon.of_string

let test_chronon_epoch () =
  Alcotest.(check int) "epoch" 0 (Chronon.of_ymd ~y:1970 ~m:1 ~d:1);
  Alcotest.(check int) "next day" 1 (Chronon.of_ymd ~y:1970 ~m:1 ~d:2);
  Alcotest.(check int) "before epoch" (-1) (Chronon.of_ymd ~y:1969 ~m:12 ~d:31)

let test_chronon_roundtrip () =
  let dates =
    [ "1970-01-01"; "1995-01-01"; "2000-01-01"; "1997-02-08"; "1600-02-29";
      "2000-02-29"; "1999-12-31"; "0001-01-01" ]
  in
  List.iter
    (fun d -> Alcotest.(check string) d d (Chronon.to_string (chr d)))
    dates

let test_chronon_known_spans () =
  (* The paper's Section 3.3 example: Jan 1 1995 .. Jan 1 2000 spans 1826
     days; T1 ranges over 1819 distinct values when durations are 7. *)
  let span = chr "2000-01-01" - chr "1995-01-01" in
  Alcotest.(check int) "5-year span" 1826 span;
  Alcotest.(check int) "t1 domain" 1819 (chr "1999-12-25" - chr "1995-01-01")

let test_chronon_leap_years () =
  Alcotest.(check int) "1996 is leap" 366 (chr "1997-01-01" - chr "1996-01-01");
  Alcotest.(check int) "1900 not leap" 365 (chr "1901-01-01" - chr "1900-01-01");
  Alcotest.(check int) "2000 is leap" 366 (chr "2001-01-01" - chr "2000-01-01")

let p a b = Period.make a b

let test_period_validity () =
  Alcotest.check_raises "empty period"
    (Invalid_argument "Period.make: empty period [1970-01-11, 1970-01-11)")
    (fun () -> ignore (Period.make 10 10));
  Alcotest.(check bool) "make_opt none" true (Period.make_opt 10 5 = None)

let test_period_overlaps () =
  Alcotest.(check bool) "overlap" true (Period.overlaps (p 1 10) (p 5 15));
  Alcotest.(check bool) "meets is not overlap" false (Period.overlaps (p 1 5) (p 5 10));
  Alcotest.(check bool) "contained" true (Period.overlaps (p 1 10) (p 3 4));
  Alcotest.(check bool) "disjoint" false (Period.overlaps (p 1 3) (p 7 9))

let test_period_intersect () =
  (match Period.intersect (p 1 10) (p 5 15) with
  | Some i ->
      Alcotest.(check int) "t1" 5 (Period.t1 i);
      Alcotest.(check int) "t2" 10 (Period.t2 i)
  | None -> Alcotest.fail "expected overlap");
  Alcotest.(check bool) "no intersect" true (Period.intersect (p 1 5) (p 5 9) = None)

let test_period_contains () =
  Alcotest.(check bool) "start in" true (Period.contains (p 2 5) 2);
  Alcotest.(check bool) "end out" false (Period.contains (p 2 5) 5);
  Alcotest.(check bool) "mid in" true (Period.contains (p 2 5) 4)

let test_period_coalesce () =
  let out = Period.coalesce [ p 5 10; p 1 6; p 12 15; p 15 20 ] in
  Alcotest.(check int) "two groups" 2 (List.length out);
  Alcotest.(check bool) "first" true (Period.equal (List.nth out 0) (p 1 10));
  Alcotest.(check bool) "second" true (Period.equal (List.nth out 1) (p 12 20))

let test_constant_intervals () =
  (* The paper's POSITION example for PosID 1: Tom [2,20), Jane [5,25)
     decomposes into [2,5):1, [5,20):2, [20,25):1. *)
  let out = Period.constant_intervals [ p 2 20; p 5 25 ] in
  Alcotest.(check int) "three intervals" 3 (List.length out);
  let check i a b n =
    let pi, c = List.nth out i in
    Alcotest.(check bool) (Printf.sprintf "interval %d" i) true
      (Period.equal pi (p a b) && c = n)
  in
  check 0 2 5 1;
  check 1 5 20 2;
  check 2 20 25 1

let test_constant_intervals_gap () =
  (* Disjoint periods produce no interval for the gap. *)
  let out = Period.constant_intervals [ p 1 3; p 7 9 ] in
  Alcotest.(check int) "two intervals" 2 (List.length out);
  List.iter
    (fun (pi, c) ->
      Alcotest.(check int) "count 1" 1 c;
      Alcotest.(check bool) "no gap interval" false (Period.equal pi (p 3 7)))
    out

let test_covered () =
  Alcotest.(check int) "covered" 9 (Period.covered [ p 1 6; p 4 8; p 10 12 ])

(* Linking this library upgrades Date rendering and CSV date parsing. *)
let test_value_hooks () =
  Alcotest.(check string) "dates print ISO" "1997-02-01"
    (Tango_rel.Value.to_string (Tango_rel.Value.Date (chr "1997-02-01")));
  let schema =
    Tango_rel.Schema.make
      [ ("K", Tango_rel.Value.TInt); ("D", Tango_rel.Value.TDate) ]
  in
  let path = Filename.temp_file "tango_dates" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "K,D
1,1997-02-01
2,9999
";
      close_out oc;
      let r = Tango_rel.Csv.read_file schema path in
      let d1 = Tango_rel.Tuple.field schema (Tango_rel.Relation.tuples r).(0) "D" in
      let d2 = Tango_rel.Tuple.field schema (Tango_rel.Relation.tuples r).(1) "D" in
      Alcotest.(check int) "ISO cell" (chr "1997-02-01") (Tango_rel.Value.to_int d1);
      Alcotest.(check int) "raw chronon cell" 9999 (Tango_rel.Value.to_int d2))

(* property tests *)

let period_gen =
  QCheck.Gen.(
    map
      (fun (a, d) -> Period.make a (a + 1 + d))
      (pair (int_bound 100) (int_bound 50)))

let arbitrary_period = QCheck.make ~print:Period.to_string period_gen

let prop_intersect_symmetric =
  QCheck.Test.make ~name:"intersect symmetric" ~count:500
    QCheck.(pair arbitrary_period arbitrary_period)
    (fun (a, b) ->
      match (Period.intersect a b, Period.intersect b a) with
      | None, None -> true
      | Some x, Some y -> Period.equal x y
      | _ -> false)

let prop_overlaps_iff_intersect =
  QCheck.Test.make ~name:"overlaps iff intersect" ~count:500
    QCheck.(pair arbitrary_period arbitrary_period)
    (fun (a, b) -> Period.overlaps a b = (Period.intersect a b <> None))

let prop_coalesce_preserves_cover =
  QCheck.Test.make ~name:"coalesce preserves covered chronons" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_bound 10) arbitrary_period)
    (fun ps ->
      let covered_by ps c = List.exists (fun p -> Period.contains p c) ps in
      let out = Period.coalesce ps in
      let all = List.init 160 (fun i -> i) in
      List.for_all (fun c -> covered_by ps c = covered_by out c) all)

let prop_constant_intervals_counts =
  QCheck.Test.make ~name:"constant intervals count covering periods" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 8) arbitrary_period)
    (fun ps ->
      let out = Period.constant_intervals ps in
      List.for_all
        (fun (pi, n) ->
          let mid = Period.t1 pi in
          let cover = List.length (List.filter (fun p -> Period.contains p mid) ps) in
          cover = n)
        out)

let () =
  Alcotest.run "tango_temporal"
    [
      ( "chronon",
        [
          Alcotest.test_case "epoch" `Quick test_chronon_epoch;
          Alcotest.test_case "roundtrip" `Quick test_chronon_roundtrip;
          Alcotest.test_case "known spans" `Quick test_chronon_known_spans;
          Alcotest.test_case "leap years" `Quick test_chronon_leap_years;
        ] );
      ( "period",
        [
          Alcotest.test_case "validity" `Quick test_period_validity;
          Alcotest.test_case "overlaps" `Quick test_period_overlaps;
          Alcotest.test_case "intersect" `Quick test_period_intersect;
          Alcotest.test_case "contains" `Quick test_period_contains;
          Alcotest.test_case "coalesce" `Quick test_period_coalesce;
          Alcotest.test_case "constant intervals" `Quick test_constant_intervals;
          Alcotest.test_case "constant intervals gap" `Quick test_constant_intervals_gap;
          Alcotest.test_case "covered" `Quick test_covered;
          Alcotest.test_case "value/csv hooks" `Quick test_value_hooks;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_intersect_symmetric;
          QCheck_alcotest.to_alcotest prop_overlaps_iff_intersect;
          QCheck_alcotest.to_alcotest prop_coalesce_preserves_cover;
          QCheck_alcotest.to_alcotest prop_constant_intervals_counts;
        ] );
    ]
