(* Tests for the cost model: factors, the Figure-6 formulas, calibration
   against a live substrate, and feedback blending. *)

open Tango_rel
open Tango_sql
open Tango_cost

let f = Factors.default ()

let test_formula_linearity () =
  (* transfers and filters are linear in size *)
  Alcotest.(check (float 1e-9)) "transfer_m doubles"
    (2.0 *. Formulas.transfer_m f ~size:1000.0)
    (Formulas.transfer_m f ~size:2000.0);
  Alcotest.(check (float 1e-9)) "transfer_d doubles"
    (2.0 *. Formulas.transfer_d f ~size:1000.0)
    (Formulas.transfer_d f ~size:2000.0)

let test_predicate_coefficient () =
  let col c = Ast.Col (None, c) in
  let cmp a = Ast.Binop (Ast.Lt, col a, Ast.Lit (Value.Int 1)) in
  Alcotest.(check (float 0.001)) "single term" 1.0
    (Formulas.predicate_coefficient (cmp "A"));
  Alcotest.(check (float 0.001)) "conjunction" 3.0
    (Formulas.predicate_coefficient
       (Ast.Binop (Ast.And, cmp "A", Ast.Binop (Ast.Or, cmp "B", cmp "C"))));
  (* f(P) scales FILTER^M cost *)
  let c1 = Formulas.filter_m f ~pred:(cmp "A") ~size:1000.0 in
  let c3 =
    Formulas.filter_m f
      ~pred:(Ast.Binop (Ast.And, cmp "A", Ast.Binop (Ast.And, cmp "B", cmp "C")))
      ~size:1000.0
  in
  Alcotest.(check (float 1e-6)) "3 terms cost 3x" (3.0 *. c1) c3

let test_sort_formula_superlinear () =
  (* sorting is size * levels; levels grow with size *)
  let small = Formulas.sort_m f ~size:10_000.0 in
  let big = Formulas.sort_m f ~size:1_000_000.0 in
  Alcotest.(check bool) "more than 100x for 100x size" true (big > 100.0 *. small)

let test_taggr_formula_includes_sort () =
  let plain = (f.Factors.p_taggm1 *. 10_000.0) +. (f.Factors.p_taggm2 *. 5_000.0) in
  let full = Formulas.taggr_m f ~in_size:10_000.0 ~out_size:5_000.0 in
  Alcotest.(check (float 1e-6)) "internal sort added"
    (Formulas.sort_m f ~size:10_000.0) (full -. plain)

let test_db_freebies () =
  Alcotest.(check (float 0.0)) "DBMS selection free" 0.0 (Formulas.select_d ~size:1e6);
  Alcotest.(check (float 0.0)) "DBMS projection free" 0.0 (Formulas.project_d ~size:1e6)

let test_index_join_cheaper () =
  (* with a large inner and small output, the indexed formula must win *)
  let generic = Formulas.join_d f ~left_size:1e4 ~right_size:1e7 ~out_size:2e4 in
  let indexed = Formulas.index_join_d f ~outer_size:1e4 ~out_size:2e4 in
  Alcotest.(check bool) "indexed wins on big inner" true (indexed < generic)

let test_blend () =
  let current = Factors.default () in
  let observed = Factors.default () in
  observed.Factors.p_tm <- 10.0;
  let before = current.Factors.p_tm in
  Factors.blend ~alpha:0.5 current observed;
  Alcotest.(check (float 1e-9)) "halfway" ((before +. 10.0) /. 2.0)
    current.Factors.p_tm;
  Factors.blend ~alpha:1.0 current observed;
  Alcotest.(check (float 1e-9)) "full adoption" 10.0 current.Factors.p_tm

let test_copy_independent () =
  let a = Factors.default () in
  let b = Factors.copy a in
  b.Factors.p_tm <- 99.0;
  Alcotest.(check bool) "copy is independent" true (a.Factors.p_tm <> 99.0)

(* --- calibration against the live substrate --- *)

let calibrated =
  lazy
    (let db = Tango_dbms.Database.create () in
     (* default round-trip latency: transfers must cost real work *)
     let client = Tango_dbms.Client.connect db in
     Calibrate.run ~sizes:{ Calibrate.small = 300; large = 1200 } client)

let test_calibration_all_positive () =
  let f = Lazy.force calibrated in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " > 0") true (v > 0.0))
    [
      ("p_tm", f.Factors.p_tm); ("p_td", f.Factors.p_td);
      ("p_sem", f.Factors.p_sem); ("p_pm", f.Factors.p_pm);
      ("p_sortm", f.Factors.p_sortm); ("p_mjm1", f.Factors.p_mjm1);
      ("p_tjm1", f.Factors.p_tjm1); ("p_taggm1", f.Factors.p_taggm1);
      ("p_scan", f.Factors.p_scan); ("p_sortd", f.Factors.p_sortd);
      ("p_joind1", f.Factors.p_joind1); ("p_taggd1", f.Factors.p_taggd1);
    ]

let test_calibration_asymmetries () =
  let f = Lazy.force calibrated in
  (* The paper's central asymmetry: DBMS temporal aggregation costs far
     more per byte than the middleware algorithm. *)
  Alcotest.(check bool) "taggd >> taggm" true
    (f.Factors.p_taggd1 > 10.0 *. f.Factors.p_taggm1);
  (* Transfers cost more per byte than local filtering. *)
  Alcotest.(check bool) "transfer > filter" true (f.Factors.p_tm > f.Factors.p_sem)

let test_calibration_cleans_up () =
  let db = Tango_dbms.Database.create () in
  let client = Tango_dbms.Client.connect ~roundtrip_spin:0 db in
  ignore (Calibrate.run ~sizes:{ Calibrate.small = 200; large = 500 } client);
  Alcotest.(check (list string)) "no leftover tables" []
    (Tango_dbms.Catalog.table_names (Tango_dbms.Database.catalog db))

let () =
  Alcotest.run "tango_cost"
    [
      ( "formulas",
        [
          Alcotest.test_case "linearity" `Quick test_formula_linearity;
          Alcotest.test_case "predicate coefficient" `Quick test_predicate_coefficient;
          Alcotest.test_case "sort superlinear" `Quick test_sort_formula_superlinear;
          Alcotest.test_case "taggr includes internal sort" `Quick test_taggr_formula_includes_sort;
          Alcotest.test_case "DBMS select/project free" `Quick test_db_freebies;
          Alcotest.test_case "index join cheaper" `Quick test_index_join_cheaper;
        ] );
      ( "factors",
        [
          Alcotest.test_case "blend" `Quick test_blend;
          Alcotest.test_case "copy" `Quick test_copy_independent;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "all positive" `Quick test_calibration_all_positive;
          Alcotest.test_case "asymmetries" `Quick test_calibration_asymmetries;
          Alcotest.test_case "cleans up" `Quick test_calibration_cleans_up;
        ] );
    ]
