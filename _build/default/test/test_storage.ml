(* Tests for pages, heap files, ordered indexes, and I/O accounting. *)

open Tango_rel
open Tango_storage

let schema = Schema.make [ ("ID", Value.TInt); ("Name", Value.TStr) ]
let tup i name = Tuple.of_list [ Value.Int i; Value.Str name ]

let test_page_append_get () =
  let p = Page.create () in
  Alcotest.(check bool) "append 1" true (Page.append p (tup 1 "a"));
  Alcotest.(check bool) "append 2" true (Page.append p (tup 2 "b"));
  Alcotest.(check int) "count" 2 (Page.tuple_count p);
  Alcotest.(check bool) "get 0" true (Tuple.equal (Page.get p 0) (tup 1 "a"));
  Alcotest.(check bool) "get 1" true (Tuple.equal (Page.get p 1) (tup 2 "b"))

let test_page_overflow () =
  let p = Page.create ~capacity:64 () in
  let rec fill i = if Page.append p (tup i "xxxxxxxx") then fill (i + 1) else i in
  let n = fill 0 in
  Alcotest.(check bool) "page fills" true (n > 0);
  Alcotest.(check int) "count matches" n (Page.tuple_count p);
  Alcotest.check_raises "oversized tuple"
    (Invalid_argument "Page.append: tuple larger than page") (fun () ->
      ignore (Page.append p (tup 1 (String.make 100 'x'))))

let test_heap_file_roundtrip () =
  let stats = Io_stats.create () in
  let f = Heap_file.create ~stats schema in
  for i = 1 to 100 do
    ignore (Heap_file.append f (tup i ("name" ^ string_of_int i)))
  done;
  Alcotest.(check int) "tuple count" 100 (Heap_file.tuple_count f);
  let back = List.of_seq (Heap_file.scan f) in
  Alcotest.(check int) "scanned all" 100 (List.length back);
  Alcotest.(check bool) "first" true (Tuple.equal (List.hd back) (tup 1 "name1"))

let test_heap_file_blocks () =
  let stats = Io_stats.create () in
  let f = Heap_file.create ~page_capacity:256 ~stats schema in
  for i = 1 to 100 do
    ignore (Heap_file.append f (tup i "0123456789"))
  done;
  Alcotest.(check bool) "multiple blocks" true (Heap_file.block_count f > 1);
  let before = Io_stats.copy stats in
  ignore (List.of_seq (Heap_file.scan f));
  let d = Io_stats.diff stats before in
  Alcotest.(check int) "page reads = blocks" (Heap_file.block_count f) d.Io_stats.page_reads;
  Alcotest.(check int) "tuples read" 100 d.Io_stats.tuples_read

let test_heap_file_fetch () =
  let stats = Io_stats.create () in
  let f = Heap_file.create ~stats schema in
  let rids = List.init 10 (fun i -> Heap_file.append f (tup i "x")) in
  List.iteri
    (fun i rid ->
      Alcotest.(check bool) "fetch" true
        (Tuple.equal (Heap_file.fetch f rid) (tup i "x")))
    rids

let test_heap_file_avg_size () =
  let stats = Io_stats.create () in
  let f = Heap_file.create ~stats schema in
  ignore (Heap_file.append f (tup 1 "ab"));
  ignore (Heap_file.append f (tup 2 "cdef"));
  (* Int = 8 bytes, Str = len + 4. *)
  let expected = float_of_int ((8 + 6) + (8 + 8)) /. 2.0 in
  Alcotest.(check (float 0.001)) "avg size" expected (Heap_file.avg_tuple_size f)

let make_indexed n =
  let stats = Io_stats.create () in
  let f = Heap_file.create ~stats schema in
  (* keys inserted in scrambled order, with duplicates every 10 *)
  for i = 0 to n - 1 do
    let k = (i * 7) mod n / 1 in
    ignore (Heap_file.append f (tup (k mod (n / 2)) ("v" ^ string_of_int i)))
  done;
  let idx = Ordered_index.build ~stats f "ID" in
  (f, idx, stats)

let test_index_lookup () =
  let f, idx, _ = make_indexed 100 in
  let rids = Ordered_index.lookup idx (Value.Int 7) in
  List.iter
    (fun rid ->
      let t = Heap_file.fetch f rid in
      Alcotest.(check bool) "key matches" true (Value.equal t.(0) (Value.Int 7)))
    rids;
  (* Every tuple with ID=7 is found. *)
  let expected =
    Seq.fold_left
      (fun acc t -> if Value.equal t.(0) (Value.Int 7) then acc + 1 else acc)
      0 (Heap_file.scan f)
  in
  Alcotest.(check int) "all found" expected (List.length rids)

let test_index_range () =
  let f, idx, _ = make_indexed 100 in
  let rids = Ordered_index.range idx ~lo:(Value.Int 10) ~hi:(Value.Int 20) () in
  List.iter
    (fun rid ->
      let v = Value.to_int (Heap_file.fetch f rid).(0) in
      Alcotest.(check bool) "in range" true (v >= 10 && v <= 20))
    rids;
  let expected =
    Seq.fold_left
      (fun acc t ->
        let v = Value.to_int t.(0) in
        if v >= 10 && v <= 20 then acc + 1 else acc)
      0 (Heap_file.scan f)
  in
  Alcotest.(check int) "range complete" expected (List.length rids);
  Alcotest.(check int) "range_count agrees" expected
    (Ordered_index.range_count idx ~lo:(Value.Int 10) ~hi:(Value.Int 20) ())

let test_index_open_ranges () =
  let _, idx, _ = make_indexed 50 in
  let all = Ordered_index.range idx () in
  Alcotest.(check int) "open range = all" (Ordered_index.entry_count idx)
    (List.length all);
  let lo_only = Ordered_index.range_count idx ~lo:(Value.Int 0) () in
  Alcotest.(check int) "lo 0 = all" (Ordered_index.entry_count idx) lo_only

let test_index_lookup_counter () =
  let _, idx, stats = make_indexed 20 in
  let before = stats.Io_stats.index_lookups in
  ignore (Ordered_index.lookup idx (Value.Int 1));
  ignore (Ordered_index.range idx ~lo:(Value.Int 1) ());
  Alcotest.(check int) "lookups counted" (before + 2) stats.Io_stats.index_lookups

(* ---- buffer pool ---- *)

let test_pool_hit_miss () =
  let pool = Buffer_pool.create ~capacity:2 in
  let k i = { Buffer_pool.file_id = 1; page_no = i } in
  Alcotest.(check bool) "first access misses" false (Buffer_pool.touch pool (k 0));
  Alcotest.(check bool) "second access hits" true (Buffer_pool.touch pool (k 0));
  ignore (Buffer_pool.touch pool (k 1));
  (* capacity 2: page 0 and 1 resident; touching 2 evicts LRU (page 0) *)
  ignore (Buffer_pool.touch pool (k 2));
  Alcotest.(check int) "one eviction" 1 (Buffer_pool.evictions pool);
  Alcotest.(check bool) "page 0 evicted" false (Buffer_pool.touch pool (k 0));
  Alcotest.(check int) "resident bounded" 2 (Buffer_pool.resident pool)

let test_pool_lru_order () =
  let pool = Buffer_pool.create ~capacity:2 in
  let k i = { Buffer_pool.file_id = 1; page_no = i } in
  ignore (Buffer_pool.touch pool (k 0));
  ignore (Buffer_pool.touch pool (k 1));
  (* touch 0 again: now 1 is the LRU *)
  ignore (Buffer_pool.touch pool (k 0));
  ignore (Buffer_pool.touch pool (k 2));
  Alcotest.(check bool) "0 stayed resident" true (Buffer_pool.touch pool (k 0));
  Alcotest.(check bool) "1 was evicted" false (Buffer_pool.touch pool (k 1))

let test_pool_invalidate () =
  let pool = Buffer_pool.create ~capacity:8 in
  let k f i = { Buffer_pool.file_id = f; page_no = i } in
  ignore (Buffer_pool.touch pool (k 1 0));
  ignore (Buffer_pool.touch pool (k 1 1));
  ignore (Buffer_pool.touch pool (k 2 0));
  Buffer_pool.invalidate_file pool 1;
  Alcotest.(check int) "only file 2 remains" 1 (Buffer_pool.resident pool);
  Alcotest.(check bool) "file 2 still resident" true (Buffer_pool.touch pool (k 2 0))

let test_heap_file_with_pool () =
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create ~capacity:64 in
  let f = Heap_file.create ~page_capacity:256 ~pool ~stats schema in
  for i = 1 to 100 do
    ignore (Heap_file.append f (tup i "0123456789"))
  done;
  (* first scan: all misses -> page reads charged *)
  let before = stats.Io_stats.page_reads in
  ignore (List.of_seq (Heap_file.scan f));
  let cold = stats.Io_stats.page_reads - before in
  Alcotest.(check int) "cold scan reads all blocks" (Heap_file.block_count f) cold;
  (* second scan: everything resident -> no page reads *)
  let before = stats.Io_stats.page_reads in
  ignore (List.of_seq (Heap_file.scan f));
  Alcotest.(check int) "warm scan reads nothing" 0 (stats.Io_stats.page_reads - before);
  Alcotest.(check bool) "pool saw hits" true (Buffer_pool.hits pool > 0)

(* property: resident never exceeds capacity; hit+miss = touches *)
let prop_pool_invariants =
  QCheck.Test.make ~name:"buffer pool invariants" ~count:200
    QCheck.(pair (int_range 1 8) (list (pair (int_range 1 3) (int_range 0 20))))
    (fun (cap, accesses) ->
      let pool = Buffer_pool.create ~capacity:cap in
      List.iter
        (fun (f, p) ->
          ignore (Buffer_pool.touch pool { Buffer_pool.file_id = f; page_no = p }))
        accesses;
      Buffer_pool.resident pool <= cap
      && Buffer_pool.hits pool + Buffer_pool.misses pool = List.length accesses
      && Buffer_pool.resident pool
         = Buffer_pool.misses pool - Buffer_pool.evictions pool)

(* property: heap-file roundtrip preserves tuples in order *)
let prop_heap_roundtrip =
  QCheck.Test.make ~name:"heap file preserves tuple sequence" ~count:100
    QCheck.(list (pair small_signed_int (string_of_size (QCheck.Gen.int_bound 20))))
    (fun rows ->
      let stats = Io_stats.create () in
      let f = Heap_file.create ~page_capacity:512 ~stats schema in
      let input = List.map (fun (i, s) -> tup i s) rows in
      List.iter (fun t -> ignore (Heap_file.append f t)) input;
      let out = List.of_seq (Heap_file.scan f) in
      List.length out = List.length input
      && List.for_all2 Tuple.equal input out)

let prop_index_finds_all =
  QCheck.Test.make ~name:"index range agrees with scan filter" ~count:100
    QCheck.(pair (list small_nat) (pair small_nat small_nat))
    (fun (keys, (a, b)) ->
      let lo = min a b and hi = max a b in
      let stats = Io_stats.create () in
      let f = Heap_file.create ~stats schema in
      List.iteri (fun i k -> ignore (Heap_file.append f (tup k ("r" ^ string_of_int i)))) keys;
      let idx = Ordered_index.build ~stats f "ID" in
      let via_index =
        Ordered_index.range idx ~lo:(Value.Int lo) ~hi:(Value.Int hi) ()
        |> List.length
      in
      let via_scan =
        List.length (List.filter (fun k -> k >= lo && k <= hi) keys)
      in
      via_index = via_scan)

let () =
  Alcotest.run "tango_storage"
    [
      ( "page",
        [
          Alcotest.test_case "append/get" `Quick test_page_append_get;
          Alcotest.test_case "overflow" `Quick test_page_overflow;
        ] );
      ( "heap_file",
        [
          Alcotest.test_case "roundtrip" `Quick test_heap_file_roundtrip;
          Alcotest.test_case "blocks & io accounting" `Quick test_heap_file_blocks;
          Alcotest.test_case "fetch by rid" `Quick test_heap_file_fetch;
          Alcotest.test_case "avg tuple size" `Quick test_heap_file_avg_size;
        ] );
      ( "index",
        [
          Alcotest.test_case "point lookup" `Quick test_index_lookup;
          Alcotest.test_case "range lookup" `Quick test_index_range;
          Alcotest.test_case "open ranges" `Quick test_index_open_ranges;
          Alcotest.test_case "lookup counter" `Quick test_index_lookup_counter;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "hit/miss/evict" `Quick test_pool_hit_miss;
          Alcotest.test_case "LRU order" `Quick test_pool_lru_order;
          Alcotest.test_case "invalidate file" `Quick test_pool_invalidate;
          Alcotest.test_case "heap file integration" `Quick test_heap_file_with_pool;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_heap_roundtrip;
          QCheck_alcotest.to_alcotest prop_index_finds_all;
          QCheck_alcotest.to_alcotest prop_pool_invariants;
        ] );
    ]
