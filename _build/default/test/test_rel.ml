(* Tests for the relational foundation: values, schemas, tuples, orders,
   relations, histograms, CSV. *)

open Tango_rel

let v_int i = Value.Int i
let v_str s = Value.Str s

(* ------------- Value ------------- *)

let test_value_compare () =
  Alcotest.(check int) "int lt" (-1) (compare (Value.compare (Value.Int 1) (Value.Int 2)) 0);
  Alcotest.(check bool) "int/float eq" true (Value.equal (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool) "null lt int" true (Value.compare Value.Null (Value.Int 0) < 0);
  Alcotest.(check bool) "str order" true (Value.compare (v_str "abc") (v_str "abd") < 0);
  Alcotest.(check bool) "date order" true (Value.compare (Value.Date 10) (Value.Date 11) < 0)

let test_value_arith () =
  Alcotest.(check bool) "add ints" true (Value.equal (Value.add (v_int 2) (v_int 3)) (v_int 5));
  Alcotest.(check bool) "date + int" true
    (Value.equal (Value.add (Value.Date 10) (v_int 5)) (Value.Date 15));
  Alcotest.(check bool) "date - date" true
    (Value.equal (Value.sub (Value.Date 15) (Value.Date 10)) (v_int 5));
  Alcotest.(check bool) "div by zero is null" true
    (Value.is_null (Value.div (v_int 1) (v_int 0)));
  Alcotest.(check bool) "null propagates" true (Value.is_null (Value.add Value.Null (v_int 1)))

let test_value_greatest_least () =
  Alcotest.(check bool) "greatest" true
    (Value.equal (Value.greatest (v_int 3) (v_int 7)) (v_int 7));
  Alcotest.(check bool) "least" true
    (Value.equal (Value.least (v_int 3) (v_int 7)) (v_int 3));
  Alcotest.(check bool) "greatest null" true
    (Value.is_null (Value.greatest Value.Null (v_int 7)))

let test_value_serialize_roundtrip () =
  let vs =
    [ Value.Null; Value.Bool true; Value.Int (-42); Value.Float 3.25;
      Value.Str "hello, world"; Value.Str ""; Value.Date 9954 ]
  in
  List.iter
    (fun v ->
      let buf = Buffer.create 16 in
      Value.serialize buf v;
      let v', _ = Value.deserialize (Buffer.contents buf) 0 in
      Alcotest.(check bool) (Value.to_string v) true (Value.equal v v')
      (* Null = Null under Value.equal *))
    vs

(* ------------- Schema ------------- *)

let s_pos =
  Schema.make
    [ ("PosID", Value.TInt); ("EmpName", Value.TStr);
      ("T1", Value.TDate); ("T2", Value.TDate) ]

let test_schema_lookup () =
  Alcotest.(check int) "by name" 0 (Schema.index s_pos "PosID");
  Alcotest.(check int) "T2" 3 (Schema.index s_pos "T2");
  Alcotest.check Alcotest.bool "missing" false (Schema.mem s_pos "Nope")

let test_schema_qualify () =
  let q = Schema.qualify "A" s_pos in
  Alcotest.(check int) "qualified exact" 1 (Schema.index q "A.EmpName");
  Alcotest.(check int) "base-name fallback" 1 (Schema.index q "EmpName");
  let u = Schema.unqualify q in
  Alcotest.(check bool) "unqualify" true (Schema.equal u s_pos)

let test_schema_ambiguity () =
  let q = Schema.concat (Schema.qualify "A" s_pos) (Schema.qualify "B" s_pos) in
  Alcotest.check_raises "ambiguous base name" Not_found (fun () ->
      ignore (Schema.index q "PosID"));
  Alcotest.(check int) "qualified resolves" 4 (Schema.index q "B.PosID")

let test_schema_project_rename () =
  let p = Schema.project s_pos [ "T1"; "PosID" ] in
  Alcotest.(check (list string)) "order kept" [ "T1"; "PosID" ] (Schema.names p);
  let r = Schema.rename s_pos "PosID" "ID" in
  Alcotest.(check bool) "renamed" true (Schema.mem r "ID")

(* ------------- Tuple ------------- *)

let t1 = Tuple.of_list [ v_int 1; v_str "Tom"; Value.Date 2; Value.Date 20 ]

let test_tuple_basics () =
  Alcotest.(check int) "arity" 4 (Tuple.arity t1);
  Alcotest.(check bool) "field" true (Value.equal (Tuple.field s_pos t1 "EmpName") (v_str "Tom"));
  let p = Tuple.project s_pos [ "T2"; "PosID" ] t1 in
  Alcotest.(check bool) "project" true
    (Tuple.equal p (Tuple.of_list [ Value.Date 20; v_int 1 ]))

let test_tuple_marshal () =
  let t' = Tuple.marshal_roundtrip t1 in
  Alcotest.(check bool) "roundtrip" true (Tuple.equal t1 t')

(* ------------- Order / Relation ------------- *)

let mk_rel rows =
  Relation.of_list s_pos
    (List.map
       (fun (p, n, a, b) ->
         Tuple.of_list [ v_int p; v_str n; Value.Date a; Value.Date b ])
       rows)

let sample =
  mk_rel [ (2, "Tom", 5, 10); (1, "Tom", 2, 20); (1, "Jane", 5, 25) ]

let test_relation_sort () =
  let sorted = Relation.sort [ Order.asc "PosID"; Order.asc "T1" ] sample in
  let ids = Array.to_list (Relation.column sorted "PosID") in
  Alcotest.(check bool) "sorted ids" true
    (List.map Value.to_int ids = [ 1; 1; 2 ]);
  Alcotest.(check bool) "order property" true
    (Order.equal (Relation.order sorted) [ Order.asc "PosID"; Order.asc "T1" ])

let test_relation_sort_stable () =
  (* Two tuples with the same key keep their input order. *)
  let r = mk_rel [ (1, "B", 1, 2); (1, "A", 1, 2) ] in
  let sorted = Relation.sort [ Order.asc "PosID" ] r in
  let names = Array.to_list (Relation.column sorted "EmpName") in
  Alcotest.(check bool) "stable" true
    (names = [ v_str "B"; v_str "A" ])

let test_relation_filter_project () =
  let f =
    Relation.filter
      (fun t -> Value.to_int (Tuple.field s_pos t "PosID") = 1)
      sample
  in
  Alcotest.(check int) "filter count" 2 (Relation.cardinality f);
  let p = Relation.project [ "PosID"; "T1" ] sample in
  Alcotest.(check int) "project arity" 2 (Schema.arity (Relation.schema p))

let test_relation_equal_multiset () =
  let a = mk_rel [ (1, "X", 1, 2); (2, "Y", 3, 4) ] in
  let b = mk_rel [ (2, "Y", 3, 4); (1, "X", 1, 2) ] in
  Alcotest.(check bool) "multiset eq" true (Relation.equal_multiset a b);
  Alcotest.(check bool) "list neq" false (Relation.equal_list a b)

let test_relation_stats () =
  Alcotest.(check int) "distinct PosID" 2 (Relation.distinct_count sample "PosID");
  Alcotest.(check bool) "min T1" true
    (Value.equal (Option.get (Relation.min_value sample "T1")) (Value.Date 2));
  Alcotest.(check bool) "max T2" true
    (Value.equal (Option.get (Relation.max_value sample "T2")) (Value.Date 25))

let test_order_prefix () =
  let o1 = [ Order.asc "A"; Order.asc "B" ] in
  Alcotest.(check bool) "prefix yes" true (Order.is_prefix [ Order.asc "A" ] o1);
  Alcotest.(check bool) "prefix no" false (Order.is_prefix [ Order.asc "B" ] o1);
  Alcotest.(check bool) "satisfies" true
    (Order.satisfies ~actual:o1 ~required:[ Order.asc "A" ]);
  Alcotest.(check bool) "desc differs" false
    (Order.is_prefix [ Order.desc "A" ] o1)

(* ------------- Histogram ------------- *)

let values_1_to n = Array.init n (fun i -> Value.Int (i + 1))

let test_histogram_equidepth () =
  let h = Histogram.height_balanced ~buckets:4 (values_1_to 100) in
  Alcotest.(check int) "buckets" 4 (Histogram.bucket_count h);
  Alcotest.(check int) "total" 100 (Histogram.total h);
  (* Every bucket has 25 values. *)
  for i = 0 to 3 do
    Alcotest.(check int) "bucket size" 25 (Histogram.b_val h i)
  done

let test_histogram_count_below () =
  let h = Histogram.height_balanced ~buckets:10 (values_1_to 1000) in
  let below = Histogram.count_below h 500.0 in
  Alcotest.(check bool) "count below ~ 500" true (abs_float (below -. 500.0) < 20.0);
  Alcotest.(check bool) "below min" true (Histogram.count_below h 0.0 < 2.0);
  Alcotest.(check bool) "above max" true
    (abs_float (Histogram.count_below h 2000.0 -. 1000.0) < 2.0)

let test_histogram_width_balanced () =
  let h = Histogram.width_balanced ~buckets:5 (values_1_to 100) in
  Alcotest.(check int) "buckets" 5 (Histogram.bucket_count h);
  let total = ref 0 in
  for i = 0 to Histogram.bucket_count h - 1 do
    total := !total + Histogram.b_val h i
  done;
  Alcotest.(check int) "total preserved" 100 !total

let test_histogram_skewed () =
  (* Skew: 90 copies of 1, 10 distinct high values — equi-depth adapts. *)
  let vs =
    Array.append (Array.make 90 (Value.Int 1)) (Array.init 10 (fun i -> Value.Int (100 + i)))
  in
  let h = Histogram.height_balanced ~buckets:5 vs in
  let below = Histogram.count_below h 50.0 in
  Alcotest.(check bool) "skew captured" true (below >= 85.0 && below <= 95.0)

(* ------------- CSV ------------- *)

let test_csv_roundtrip () =
  let path = Filename.temp_file "tango_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let r = mk_rel [ (1, "with, comma", 1, 2); (2, "quote\"inside", 3, 4) ] in
      Csv.write_file path r;
      let r' = Csv.read_file s_pos path in
      Alcotest.(check bool) "roundtrip" true (Relation.equal_list r r'))

(* ------------- property tests ------------- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) small_signed_int;
        map (fun f -> Value.Float f) (float_bound_inclusive 1000.0);
        map (fun s -> Value.Str s) (string_size (int_bound 12));
        map (fun d -> Value.Date d) (int_bound 10000);
      ])

let arbitrary_value = QCheck.make ~print:Value.to_string value_gen

let prop_value_roundtrip =
  QCheck.Test.make ~name:"value serialize/deserialize roundtrip" ~count:500
    arbitrary_value (fun v ->
      let buf = Buffer.create 16 in
      Value.serialize buf v;
      let v', pos = Value.deserialize (Buffer.contents buf) 0 in
      Value.equal v v' && pos = Buffer.length buf)

let prop_compare_total_order =
  QCheck.Test.make ~name:"value compare is antisymmetric/transitive-ish"
    ~count:500
    QCheck.(triple arbitrary_value arbitrary_value arbitrary_value)
    (fun (a, b, c) ->
      let ab = Value.compare a b and ba = Value.compare b a in
      let anti = compare ab 0 = compare 0 ba in
      let trans =
        if Value.compare a b <= 0 && Value.compare b c <= 0 then
          Value.compare a c <= 0
        else true
      in
      anti && trans)

let prop_sort_is_ordered =
  QCheck.Test.make ~name:"relation sort yields ordered column" ~count:200
    QCheck.(list (pair small_signed_int small_signed_int))
    (fun rows ->
      let schema = Schema.make [ ("A", Value.TInt); ("B", Value.TInt) ] in
      let r =
        Relation.of_list schema
          (List.map (fun (a, b) -> Tuple.of_list [ Value.Int a; Value.Int b ]) rows)
      in
      let sorted = Relation.sort [ Order.asc "A" ] r in
      let col = Relation.column sorted "A" in
      let ok = ref true in
      for i = 1 to Array.length col - 1 do
        if Value.compare col.(i - 1) col.(i) > 0 then ok := false
      done;
      !ok && Relation.cardinality sorted = Relation.cardinality r)

let () =
  Alcotest.run "tango_rel"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "arithmetic" `Quick test_value_arith;
          Alcotest.test_case "greatest/least" `Quick test_value_greatest_least;
          Alcotest.test_case "serialize roundtrip" `Quick test_value_serialize_roundtrip;
        ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "qualify" `Quick test_schema_qualify;
          Alcotest.test_case "ambiguity" `Quick test_schema_ambiguity;
          Alcotest.test_case "project/rename" `Quick test_schema_project_rename;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "basics" `Quick test_tuple_basics;
          Alcotest.test_case "marshal" `Quick test_tuple_marshal;
        ] );
      ( "relation",
        [
          Alcotest.test_case "sort" `Quick test_relation_sort;
          Alcotest.test_case "sort stability" `Quick test_relation_sort_stable;
          Alcotest.test_case "filter/project" `Quick test_relation_filter_project;
          Alcotest.test_case "multiset equality" `Quick test_relation_equal_multiset;
          Alcotest.test_case "column stats" `Quick test_relation_stats;
          Alcotest.test_case "order prefix" `Quick test_order_prefix;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "equi-depth" `Quick test_histogram_equidepth;
          Alcotest.test_case "count_below" `Quick test_histogram_count_below;
          Alcotest.test_case "equi-width" `Quick test_histogram_width_balanced;
          Alcotest.test_case "skewed data" `Quick test_histogram_skewed;
        ] );
      ("csv", [ Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_value_roundtrip;
          QCheck_alcotest.to_alcotest prop_compare_total_order;
          QCheck_alcotest.to_alcotest prop_sort_is_ordered;
        ] );
    ]
