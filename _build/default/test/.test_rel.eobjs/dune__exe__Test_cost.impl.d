test/test_cost.ml: Alcotest Ast Calibrate Factors Formulas Lazy List Tango_cost Tango_dbms Tango_rel Tango_sql Value
