test/test_sqlgen.ml: Alcotest Ast Database List Op Order Printer QCheck QCheck_alcotest Reference Relation Schema Tango_algebra Tango_dbms Tango_rel Tango_sql Tango_sqlgen Tuple Value
