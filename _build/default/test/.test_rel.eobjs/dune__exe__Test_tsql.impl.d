test/test_tsql.ml: Alcotest Array List Op Order Reference Relation Schema Tango_algebra Tango_rel Tango_tsql Tuple Value
