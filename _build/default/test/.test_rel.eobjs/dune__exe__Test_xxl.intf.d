test/test_xxl.mli:
