test/test_rel.ml: Alcotest Array Buffer Csv Filename Fun Histogram List Option Order QCheck QCheck_alcotest Relation Schema Sys Tango_rel Tuple Value
