test/test_volcano.ml: Alcotest Ast Derive Factors List Memo Op Order Physical Rel_stats Rules Schema Search Tango_algebra Tango_cost Tango_rel Tango_sql Tango_stats Tango_volcano Tango_workload Value
