test/test_temporal.ml: Alcotest Array Chronon Filename Fun List Period Printf QCheck QCheck_alcotest Sys Tango_rel Tango_temporal
