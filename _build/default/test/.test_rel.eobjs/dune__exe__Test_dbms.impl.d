test/test_dbms.ml: Alcotest Array Catalog Client Database Executor List Option Printf QCheck QCheck_alcotest Relation Schema Stat Tango_dbms Tango_rel Tango_storage Tuple Value
