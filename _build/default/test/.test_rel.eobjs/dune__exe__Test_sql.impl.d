test/test_sql.ml: Alcotest Ast Lexer List Parser Printer QCheck QCheck_alcotest Tango_rel Tango_sql Tango_temporal Value
