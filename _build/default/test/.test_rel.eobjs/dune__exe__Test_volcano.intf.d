test/test_volcano.mli:
