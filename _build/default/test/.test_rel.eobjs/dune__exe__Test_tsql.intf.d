test/test_tsql.mli:
