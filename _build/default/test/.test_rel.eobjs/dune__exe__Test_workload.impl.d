test/test_workload.ml: Alcotest List Op Option Printf Queries Relation Schema Tango_algebra Tango_dbms Tango_rel Tango_temporal Tango_tsql Tango_workload Tuple Uis Uniform Value
