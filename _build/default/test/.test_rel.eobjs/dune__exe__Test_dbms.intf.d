test/test_dbms.mli:
