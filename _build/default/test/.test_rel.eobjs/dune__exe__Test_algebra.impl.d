test/test_algebra.ml: Alcotest Array Ast List Op Order QCheck QCheck_alcotest Reference Relation Schema Tango_algebra Tango_rel Tango_sql Tuple Value
