test/test_storage.ml: Alcotest Array Buffer_pool Heap_file Io_stats List Ordered_index Page QCheck QCheck_alcotest Schema Seq String Tango_rel Tango_storage Tuple Value
