(* Tests for the temporal-SQL front end: parsing + compilation to the
   initial algebra plan, checked against reference semantics. *)

open Tango_rel
open Tango_algebra

let pos_schema =
  Schema.make
    [ ("PosID", Value.TInt); ("EmpName", Value.TStr);
      ("PayRate", Value.TFloat); ("T1", Value.TDate); ("T2", Value.TDate) ]

let position =
  Relation.of_list pos_schema
    (List.map
       (fun (p, n, pay, a, b) ->
         Tuple.of_list
           [ Value.Int p; Value.Str n; Value.Float pay; Value.Date a; Value.Date b ])
       [ (1, "Tom", 12.0, 2, 20); (1, "Jane", 9.0, 5, 25); (2, "Tom", 15.0, 5, 10) ])

let lookup_schema = function
  | "POSITION" -> pos_schema
  | t -> failwith ("no schema for " ^ t)

let lookup_rel = function
  | "POSITION" -> position
  | t -> failwith ("no table " ^ t)

let compile sql = Tango_tsql.Compile.compile ~lookup:lookup_schema sql
let eval sql = Reference.eval lookup_rel (compile sql)

let test_plain_select () =
  let r = eval "SELECT PosID, EmpName FROM POSITION WHERE PayRate > 10" in
  Alcotest.(check int) "two rows" 2 (Relation.cardinality r);
  Alcotest.(check (list string)) "schema" [ "PosID"; "EmpName" ]
    (Schema.names (Relation.schema r))

let test_initial_plan_shape () =
  let plan =
    Tango_tsql.Compile.initial_plan ~lookup:lookup_schema
      "SELECT PosID FROM POSITION"
  in
  (match plan with
  | Op.To_mw _ -> ()
  | _ -> Alcotest.fail "initial plan must be T^M-rooted");
  Op.validate plan;
  Alcotest.(check bool) "everything below is DBMS" true
    (match plan with Op.To_mw inner -> Op.location inner = Op.Db | _ -> false)

let test_validtime_taggr () =
  let r =
    eval
      "VALIDTIME SELECT PosID, COUNT(*) AS CNT FROM POSITION GROUP BY PosID \
       ORDER BY PosID"
  in
  (* Figure 3(c) with the PayRate column present: same four intervals. *)
  Alcotest.(check int) "four rows" 4 (Relation.cardinality r);
  Alcotest.(check (list string)) "schema" [ "PosID"; "CNT"; "T1"; "T2" ]
    (Schema.names (Relation.schema r))

let test_validtime_join () =
  let r =
    eval
      "VALIDTIME SELECT A.PosID, A.EmpName AS E1, B.EmpName AS E2 FROM \
       POSITION A, POSITION B WHERE A.PosID = B.PosID AND A.EmpName < \
       B.EmpName ORDER BY A.PosID"
  in
  (* Jane+Tom overlap on position 1 -> one pair (E1 < E2). *)
  Alcotest.(check int) "one pair" 1 (Relation.cardinality r);
  let s = Relation.schema r in
  Alcotest.(check bool) "period attrs appended" true
    (Schema.mem s "T1" && Schema.mem s "T2");
  let t = (Relation.tuples r).(0) in
  Alcotest.(check int) "intersection start" 5
    (Value.to_int (Tuple.field s t "T1"));
  Alcotest.(check int) "intersection end" 20
    (Value.to_int (Tuple.field s t "T2"))

let test_derived_source () =
  let r =
    eval
      "VALIDTIME SELECT A.PosID, A.CNT FROM (VALIDTIME SELECT PosID, \
       COUNT(*) AS CNT FROM POSITION GROUP BY PosID) A, POSITION B WHERE \
       A.PosID = B.PosID ORDER BY A.PosID"
  in
  (* This is the paper's Figure 3(b) query modulo projection: 5 tuples. *)
  Alcotest.(check int) "five rows" 5 (Relation.cardinality r)

let test_selection_pushdown_shape () =
  (* single-source conjuncts must sit below the join in the initial plan *)
  let plan =
    compile
      "VALIDTIME SELECT A.PosID FROM POSITION A, POSITION B WHERE A.PosID = \
       B.PosID AND B.PayRate > 10"
  in
  let rec has_select_below_join = function
    | Op.Temporal_join { left; right; _ } ->
        let is_selected = function
          | Op.Select _ -> true
          | _ -> false
        in
        is_selected left || is_selected right
    | op -> List.exists has_select_below_join (Op.children op)
  in
  Alcotest.(check bool) "pushdown happened" true (has_select_below_join plan)

let test_order_by_direction () =
  let r = eval "SELECT PosID, T1 FROM POSITION ORDER BY T1 DESC" in
  let t1s = Array.to_list (Array.map Value.to_int (Relation.column r "T1")) in
  Alcotest.(check (list int)) "descending" [ 5; 5; 2 ] t1s

let test_required_order () =
  let o = Tango_tsql.Compile.required_order "SELECT PosID FROM POSITION ORDER BY PosID, T1 DESC" in
  Alcotest.(check bool) "two keys" true
    (Order.equal o [ Order.asc "PosID"; Order.desc "T1" ])

let test_unsupported () =
  let fails sql =
    match compile sql with
    | exception Tango_tsql.Compile.Unsupported _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "group without validtime" true
    (fails "SELECT PosID, COUNT(*) AS C FROM POSITION GROUP BY PosID");
  Alcotest.(check bool) "union" true
    (fails "SELECT PosID FROM POSITION UNION SELECT PosID FROM POSITION");
  Alcotest.(check bool) "validtime over non-temporal" true
    (fails
       "VALIDTIME SELECT X.PosID FROM (SELECT PosID FROM POSITION) X")

let test_aggregates_variants () =
  let r =
    eval
      "VALIDTIME SELECT PosID, COUNT(*) AS C, SUM(PayRate) AS S, \
       MIN(PayRate) AS MN FROM POSITION GROUP BY PosID ORDER BY PosID"
  in
  let s = Relation.schema r in
  Alcotest.(check (list string)) "schema"
    [ "PosID"; "C"; "S"; "MN"; "T1"; "T2" ] (Schema.names s);
  (* interval [5,20) of position 1 has Tom+Jane: sum 21, min 9 *)
  let row =
    Array.to_list (Relation.tuples r)
    |> List.find (fun t ->
           Value.to_int (Tuple.field s t "PosID") = 1
           && Value.to_int (Tuple.field s t "T1") = 5)
  in
  Alcotest.(check (float 0.01)) "sum" 21.0 (Value.to_float (Tuple.field s row "S"));
  Alcotest.(check (float 0.01)) "min" 9.0 (Value.to_float (Tuple.field s row "MN"))

let () =
  Alcotest.run "tango_tsql"
    [
      ( "compile",
        [
          Alcotest.test_case "plain select" `Quick test_plain_select;
          Alcotest.test_case "initial plan shape" `Quick test_initial_plan_shape;
          Alcotest.test_case "validtime aggregation" `Quick test_validtime_taggr;
          Alcotest.test_case "validtime join" `Quick test_validtime_join;
          Alcotest.test_case "derived source" `Quick test_derived_source;
          Alcotest.test_case "selection pushdown" `Quick test_selection_pushdown_shape;
          Alcotest.test_case "order by desc" `Quick test_order_by_direction;
          Alcotest.test_case "required order" `Quick test_required_order;
          Alcotest.test_case "unsupported constructs" `Quick test_unsupported;
          Alcotest.test_case "aggregate variants" `Quick test_aggregates_variants;
        ] );
    ]
