(* Tests for the Volcano-style optimizer: memo mechanics, transformation
   rules, and cost-based physical planning. *)

open Tango_rel
open Tango_sql
open Tango_algebra
open Tango_stats
open Tango_cost
open Tango_volcano

let col ?q c = Ast.Col (q, c)

let pos_schema =
  Schema.make
    [ ("PosID", Value.TInt); ("EmpName", Value.TStr);
      ("PayRate", Value.TFloat); ("T1", Value.TDate); ("T2", Value.TDate) ]

let scan ?alias () = Op.scan ?alias "POSITION" pos_schema

(* Synthetic statistics: 10k tuples, PosID with 100 distinct values. *)
let stats_env =
  Derive.env (fun ~qualifier _table ->
      let q n = qualifier ^ "." ^ n in
      {
        Rel_stats.card = 10_000.0;
        cols =
          [
            (q "PosID",
             { Rel_stats.distinct = 100.0; min_v = Some 1.0; max_v = Some 100.0;
               histogram = None; avg_width = 8.0; indexed = false });
            (q "EmpName", { (Rel_stats.col_default 10_000.0) with Rel_stats.distinct = 500.0; avg_width = 14.0 });
            (q "PayRate",
             { Rel_stats.distinct = 2500.0; min_v = Some 5.0; max_v = Some 30.0;
               histogram = None; avg_width = 8.0; indexed = false });
            (q "T1",
             { Rel_stats.distinct = 1800.0; min_v = Some 3650.0; max_v = Some 10950.0;
               histogram = None; avg_width = 8.0; indexed = false });
            (q "T2",
             { Rel_stats.distinct = 1800.0; min_v = Some 3700.0; max_v = Some 11300.0;
               histogram = None; avg_width = 8.0; indexed = false });
          ];
      })

let factors = Factors.default ()

let optimize ?required_order op =
  Search.optimize ~factors ~stats_env ?required_order op

(* ---------- memo ---------- *)

let test_memo_dedup () =
  let m = Memo.create () in
  let c1 = Memo.insert_op m (scan ()) in
  let c2 = Memo.insert_op m (scan ()) in
  Alcotest.(check int) "same class" c1 c2;
  let c3 = Memo.insert_op m (Op.select (col "PosID") (scan ())) in
  Alcotest.(check bool) "new class" true (c3 <> c1);
  Alcotest.(check int) "three elements" 2 (Memo.element_count m)

let test_memo_union () =
  let m = Memo.create () in
  let a = Memo.insert_op m (scan ()) in
  let b = Memo.insert_op m (Op.select (col "PosID") (scan ~alias:"X" ())) in
  let root = Memo.union m a b in
  Alcotest.(check int) "find a" root (Memo.find m a);
  Alcotest.(check int) "find b" root (Memo.find m b);
  Alcotest.(check int) "merged elements" 2 (List.length (Memo.elements m root))

let test_memo_extract () =
  let m = Memo.create () in
  let op = Op.sort [ Order.asc "PosID" ] (Op.select (col "PosID") (scan ())) in
  let c = Memo.insert_op m op in
  Alcotest.(check bool) "roundtrip" true (Memo.extract m c = op)

let test_memo_location () =
  let m = Memo.create () in
  let c_db = Memo.insert_op m (scan ()) in
  let c_mw = Memo.insert_op m (Op.to_mw (scan ())) in
  Alcotest.(check bool) "db" true (Memo.location m c_db = Op.Db);
  Alcotest.(check bool) "mw" true (Memo.location m c_mw = Op.Mw)

(* ---------- rules ---------- *)

let taggr_q1 =
  Op.temporal_aggregate [ "POSITION.PosID" ] [ Op.count_star "CNT" ] (scan ())

let initial_q1 = Op.to_mw (Op.sort [ Order.asc "POSITION.PosID" ] taggr_q1)

let saturated_memo op =
  let m = Memo.create () in
  let root = Memo.insert_op m op in
  Rules.saturate m;
  (m, root)

let class_has m c pred = List.exists pred (Memo.elements m c)

let test_t1_applies () =
  let m, _root = saturated_memo initial_q1 in
  (* somewhere in the memo, the taggr class gained a T^D alternative *)
  let found =
    List.exists
      (fun c ->
        class_has m c (function Memo.N_taggr _ -> true | _ -> false)
        && class_has m c (function Memo.N_td _ -> true | _ -> false))
      (Memo.classes m)
  in
  Alcotest.(check bool) "T^D variant exists alongside taggr" true found

let test_t7_t8_cancel () =
  let m = Memo.create () in
  (* T^M(T^D(T^M(scan))) should collapse to T^M(scan)'s class *)
  let inner = Op.to_mw (scan ()) in
  let c1 = Memo.insert_op m (Op.to_mw (Op.to_db inner)) in
  let c2 = Memo.insert_op m inner in
  Rules.saturate m;
  Alcotest.(check int) "classes merged" (Memo.find m c1) (Memo.find m c2)

let test_t9_identity_project () =
  let m = Memo.create () in
  let s = Op.schema (scan ()) in
  let items =
    List.map
      (fun (a : Schema.attribute) -> (Ast.Col (None, a.Schema.name), a.Schema.name))
      (Schema.attributes s)
  in
  let c1 = Memo.insert_op m (Op.project items (scan ())) in
  let c2 = Memo.insert_op m (scan ()) in
  Rules.saturate m;
  Alcotest.(check int) "identity removed" (Memo.find m c1) (Memo.find m c2)

let test_counts_grow () =
  let m, _ = saturated_memo initial_q1 in
  Alcotest.(check bool) "classes" true (Memo.class_count m >= 5);
  Alcotest.(check bool) "elements grew" true (Memo.element_count m > 4)

(* T4/T5/T6: selections, projections, sorts move above T^M. *)
let test_t4_t6_pull_above_tm () =
  let pred = Ast.Binop (Ast.Gt, col "PayRate", Ast.Lit (Value.Float 10.0)) in
  let m, _ = saturated_memo (Op.to_mw (Op.select pred (scan ()))) in
  let found =
    List.exists
      (fun c ->
        class_has m c (function Memo.N_tm _ -> true | _ -> false)
        && class_has m c (function
             | Memo.N_select { arg; _ } -> (
                 try Memo.location m arg = Op.Mw with Memo.Cyclic -> false)
             | _ -> false))
      (Memo.classes m)
  in
  Alcotest.(check bool) "selection moved above T^M" true found;
  let m, _ =
    saturated_memo (Op.to_mw (Op.sort [ Order.asc "POSITION.PosID" ] (scan ())))
  in
  let found =
    List.exists
      (fun c ->
        class_has m c (function
          | Memo.N_sort { arg; _ } -> (
              try Memo.location m arg = Op.Mw with Memo.Cyclic -> false)
          | _ -> false))
      (Memo.classes m)
  in
  Alcotest.(check bool) "sort moved above T^M" true found

(* T12: a sort whose argument-sort is a prefix is subsumed. *)
let test_t12_subsumed_sort () =
  let inner = Op.sort [ Order.asc "POSITION.PosID" ] (scan ()) in
  let outer =
    Op.sort [ Order.asc "POSITION.PosID"; Order.asc "POSITION.T1" ] inner
  in
  let m, root = saturated_memo outer in
  let found =
    class_has m root (function
      | Memo.N_sort { order; arg } ->
          List.length order = 2
          && class_has m arg (function Memo.N_scan _ -> true | _ -> false)
      | _ -> false)
  in
  Alcotest.(check bool) "outer sort applies directly to the scan" true found

(* C1: adjacent selections merge. *)
let test_c1_combine_selects () =
  let p1 = Ast.Binop (Ast.Gt, col "PayRate", Ast.Lit (Value.Float 10.0)) in
  let p2 = Ast.Binop (Ast.Eq, col "PosID", Ast.Lit (Value.Int 1)) in
  let m, root = saturated_memo (Op.select p1 (Op.select p2 (scan ()))) in
  let found =
    class_has m root (function
      | Memo.N_select { pred = Ast.Binop (Ast.And, _, _); arg } ->
          class_has m arg (function Memo.N_scan _ -> true | _ -> false)
      | _ -> false)
  in
  Alcotest.(check bool) "merged conjunction over the scan" true found

(* R1: selection conjuncts push below a join. *)
let test_r1_push_below_join () =
  let jp = Ast.Binop (Ast.Eq, col ~q:"A" "PosID", col ~q:"B" "PosID") in
  let sp = Ast.Binop (Ast.Gt, col ~q:"A" "PayRate", Ast.Lit (Value.Float 10.0)) in
  let m, root =
    saturated_memo
      (Op.select sp (Op.join jp (scan ~alias:"A" ()) (scan ~alias:"B" ())))
  in
  let found =
    class_has m root (function
      | Memo.N_join { left; _ } ->
          class_has m left (function Memo.N_select _ -> true | _ -> false)
      | _ -> false)
  in
  Alcotest.(check bool) "selection below the join" true found

(* R2: group-attribute selections push below temporal aggregation. *)
let test_r2_push_below_taggr () =
  let sp = Ast.Binop (Ast.Eq, col "PosID", Ast.Lit (Value.Int 3)) in
  let m, root = saturated_memo (Op.select sp taggr_q1) in
  let found =
    class_has m root (function
      | Memo.N_taggr { arg; _ } ->
          class_has m arg (function Memo.N_select _ -> true | _ -> false)
      | _ -> false)
  in
  Alcotest.(check bool) "selection below the aggregation" true found

(* R3: a time window above a temporal join seeds both arguments. *)
let test_r3_window_below_tjoin () =
  let jp = Ast.Binop (Ast.Eq, col ~q:"A" "PosID", col ~q:"B" "PosID") in
  let w =
    Ast.Binop
      (Ast.And,
       Ast.Binop (Ast.Lt, col "T1", Ast.Lit (Value.Date 9000)),
       Ast.Binop (Ast.Gt, col "T2", Ast.Lit (Value.Date 8000)))
  in
  let m, root =
    saturated_memo
      (Op.select w
         (Op.temporal_join jp (scan ~alias:"A" ()) (scan ~alias:"B" ())))
  in
  let found =
    class_has m root (function
      | Memo.N_select { arg; _ } ->
          class_has m arg (function
            | Memo.N_tjoin { left; right; _ } ->
                class_has m left (function Memo.N_select _ -> true | _ -> false)
                && class_has m right (function Memo.N_select _ -> true | _ -> false)
            | _ -> false)
      | _ -> false)
  in
  Alcotest.(check bool) "window seeded into both tjoin sides" true found

(* E2: commuted join exists modulo a reordering projection. *)
let test_e2_commute () =
  let jp = Ast.Binop (Ast.Eq, col ~q:"A" "PosID", col ~q:"B" "PosID") in
  let m, root = saturated_memo (Op.join jp (scan ~alias:"A" ()) (scan ~alias:"B" ())) in
  let found =
    class_has m root (function
      | Memo.N_project { arg; _ } ->
          class_has m arg (function Memo.N_join _ -> true | _ -> false)
      | _ -> false)
  in
  Alcotest.(check bool) "reordering projection over swapped join" true found

(* T1b/T1c: dup-elim and coalesce move to the middleware. *)
let test_dupelim_coalesce_to_mw () =
  let m, root = saturated_memo (Op.Dup_elim (scan ())) in
  Alcotest.(check bool) "dupelim gains a T^D variant" true
    (class_has m root (function Memo.N_td _ -> true | _ -> false));
  let m, root = saturated_memo (Op.Coalesce (scan ())) in
  Alcotest.(check bool) "coalesce gains a T^D variant" true
    (class_has m root (function Memo.N_td _ -> true | _ -> false));
  (* and the coalesce plan is actually executable (MW-only algorithm) *)
  let r =
    Search.optimize ~factors ~stats_env (Op.to_mw (Op.Coalesce (scan ())))
  in
  Alcotest.(check bool) "coalesce plan found" true (r.Search.plan <> None)

(* R4: the aggregation argument is pruned to the needed attributes. *)
let test_r4_prune_taggr_argument () =
  let m, root = saturated_memo initial_q1 in
  ignore root;
  let found =
    List.exists
      (fun c ->
        class_has m c (function
          | Memo.N_taggr { arg; _ } ->
              class_has m arg (function
                | Memo.N_project { items; _ } -> List.length items = 3
                | _ -> false)
          | _ -> false))
      (Memo.classes m)
  in
  Alcotest.(check bool) "taggr over a 3-column projection exists" true found;
  (* and the chosen plan's transfer carries only PosID, T1, T2 *)
  match
    (Search.optimize ~factors ~stats_env ~required_order:[ Order.asc "PosID" ]
       initial_q1).Search.plan
  with
  | None -> Alcotest.fail "no plan"
  | Some plan ->
      let rec db_subtree p =
        if p.Physical.algorithm = Physical.Transfer_m_algo then
          Some (List.hd p.Physical.children)
        else List.find_map db_subtree p.Physical.children
      in
      (match db_subtree plan with
      | Some db_part ->
          let out = Op.schema db_part.Physical.op in
          Alcotest.(check int) "3 columns cross the boundary" 3 (Schema.arity out)
      | None -> Alcotest.fail "no transfer in plan")

(* T1d: a DBMS-located difference becomes plannable via the middleware. *)
let test_difference_to_mw () =
  let diff = Op.Difference { left = scan ~alias:"A" (); right = scan ~alias:"B" () } in
  let r = Search.optimize ~factors ~stats_env (Op.to_mw diff) in
  (match r.Search.plan with
  | Some p ->
      let rec uses q =
        q.Physical.algorithm = Physical.Difference_m
        || List.exists uses q.Physical.children
      in
      Alcotest.(check bool) "uses DIFFERENCE^M" true (uses p)
  | None -> Alcotest.fail "difference should be plannable")

(* ---------- physical planning ---------- *)

let test_q1_plan_found_and_uses_mw_taggr () =
  let r = optimize ~required_order:[ Order.asc "PosID" ] initial_q1 in
  match r.Search.plan with
  | None -> Alcotest.fail "no plan"
  | Some plan ->
      let sign = Physical.signature plan in
      Alcotest.(check bool)
        ("chose TAGGR^M: " ^ sign)
        true
        (let rec uses p =
           p.Physical.algorithm = Physical.Taggr_m
           || List.exists uses p.Physical.children
         in
         uses plan);
      Alcotest.(check bool) "cost positive" true (plan.Physical.total_cost > 0.0);
      Alcotest.(check bool) "root in middleware" true
        (plan.Physical.location = Op.Mw)

let test_q1_dbms_wins_when_mw_expensive () =
  (* If middleware aggregation were extremely expensive, the DBMS plan must
     win: cost-based choice actually reacts to factors. *)
  let f = Factors.default () in
  f.Factors.p_taggm1 <- 1e6;
  f.Factors.p_tm <- 1e6;
  let r =
    Search.optimize ~factors:f ~stats_env
      ~required_order:[ Order.asc "PosID" ] initial_q1
  in
  match r.Search.plan with
  | None -> Alcotest.fail "no plan"
  | Some plan ->
      let rec uses_mw_taggr p =
        p.Physical.algorithm = Physical.Taggr_m
        || List.exists uses_mw_taggr p.Physical.children
      in
      Alcotest.(check bool) "avoids TAGGR^M" false (uses_mw_taggr plan)

let test_sort_passthrough () =
  (* Sorting an already-sorted input must cost nothing. *)
  let op = Op.to_mw (Op.sort [ Order.asc "POSITION.PosID" ]
                       (Op.sort [ Order.asc "POSITION.PosID"; Order.asc "POSITION.T1" ] (scan ()))) in
  match Search.cost_plan ~factors ~stats_env ~required_order:[ Order.asc "PosID" ] op with
  | None -> Alcotest.fail "no plan"
  | Some plan ->
      let rec find_noop p =
        p.Physical.algorithm = Physical.Sort_passthrough
        || List.exists find_noop p.Physical.children
      in
      Alcotest.(check bool) "outer sort is a no-op" true (find_noop plan)

let test_required_order_enforced () =
  (* Without any sort in the tree, an ordered requirement is infeasible
     for a bare scan... unless the DBMS part ends with a sort. *)
  let bare = Op.to_mw (scan ()) in
  let r = optimize ~required_order:[ Order.asc "PosID" ] bare in
  Alcotest.(check bool) "no plan without sort" true (r.Search.plan = None);
  let sorted = Op.to_mw (Op.sort [ Order.asc "POSITION.PosID" ] (scan ())) in
  let r = optimize ~required_order:[ Order.asc "PosID" ] sorted in
  Alcotest.(check bool) "plan with sort" true (r.Search.plan <> None)

let test_join_plans () =
  let pred = Ast.Binop (Ast.Eq, col ~q:"A" "PosID", col ~q:"B" "PosID") in
  let initial =
    Op.to_mw
      (Op.sort [ Order.asc "A.PosID" ]
         (Op.temporal_join pred (scan ~alias:"A" ()) (scan ~alias:"B" ())))
  in
  let r = optimize ~required_order:[ Order.asc "PosID" ] initial in
  (match r.Search.plan with
  | None -> Alcotest.fail "no plan"
  | Some plan ->
      Alcotest.(check bool) "plan exists" true (plan.Physical.total_cost > 0.0));
  Alcotest.(check bool) "explored enough" true (r.Search.elements > 5)

let test_cost_plan_fixed_trees () =
  (* the hand-built experiment plans must all be executable as written *)
  let plans =
    Tango_workload.Queries.q1_plans ~position:"POSITION" ()
    @ Tango_workload.Queries.q2_plans ~position:"POSITION" ~period_end:"1990-01-01" ()
    @ Tango_workload.Queries.q3_plans ~position:"POSITION" ~start_bound:"1990-01-01" ()
  in
  let env =
    Derive.env (fun ~qualifier _ ->
        let q n = qualifier ^ "." ^ n in
        {
          Rel_stats.card = 1000.0;
          cols =
            List.map
              (fun (a : Schema.attribute) ->
                (q a.Schema.name, Rel_stats.col_default ~width:10.0 100.0))
              (Schema.attributes Tango_workload.Uis.position_schema);
        })
  in
  List.iter
    (fun (name, tree) ->
      match
        Search.cost_plan ~factors ~stats_env:env
          ~required_order:[ Order.asc "PosID" ] tree
      with
      | Some p ->
          Alcotest.(check bool) (name ^ " cost > 0") true (p.Physical.total_cost > 0.0)
      | None -> Alcotest.fail (name ^ ": not executable as written"))
    plans

let test_memo_counts_reported () =
  let r = optimize ~required_order:[ Order.asc "PosID" ] initial_q1 in
  Alcotest.(check bool) "classes reported" true (r.Search.classes > 0);
  Alcotest.(check bool) "elements >= classes" true (r.Search.elements >= r.Search.classes);
  Alcotest.(check bool) "time measured" true (r.Search.time_us >= 0.0)

let () =
  Alcotest.run "tango_volcano"
    [
      ( "memo",
        [
          Alcotest.test_case "dedup" `Quick test_memo_dedup;
          Alcotest.test_case "union" `Quick test_memo_union;
          Alcotest.test_case "extract" `Quick test_memo_extract;
          Alcotest.test_case "location" `Quick test_memo_location;
        ] );
      ( "rules",
        [
          Alcotest.test_case "T1 taggr to MW" `Quick test_t1_applies;
          Alcotest.test_case "T7/T8 cancel transfers" `Quick test_t7_t8_cancel;
          Alcotest.test_case "T9 identity projection" `Quick test_t9_identity_project;
          Alcotest.test_case "memo grows" `Quick test_counts_grow;
          Alcotest.test_case "T4-T6 pull above T^M" `Quick test_t4_t6_pull_above_tm;
          Alcotest.test_case "T12 subsumed sort" `Quick test_t12_subsumed_sort;
          Alcotest.test_case "C1 combine selects" `Quick test_c1_combine_selects;
          Alcotest.test_case "R1 push below join" `Quick test_r1_push_below_join;
          Alcotest.test_case "R2 push below taggr" `Quick test_r2_push_below_taggr;
          Alcotest.test_case "R3 window below tjoin" `Quick test_r3_window_below_tjoin;
          Alcotest.test_case "E2 commute" `Quick test_e2_commute;
          Alcotest.test_case "dupelim/coalesce to MW" `Quick test_dupelim_coalesce_to_mw;
          Alcotest.test_case "difference to MW" `Quick test_difference_to_mw;
          Alcotest.test_case "R4 prune taggr argument" `Quick test_r4_prune_taggr_argument;
        ] );
      ( "physical",
        [
          Alcotest.test_case "Q1 chooses TAGGR^M" `Quick test_q1_plan_found_and_uses_mw_taggr;
          Alcotest.test_case "factors flip the choice" `Quick test_q1_dbms_wins_when_mw_expensive;
          Alcotest.test_case "sort passthrough (T10)" `Quick test_sort_passthrough;
          Alcotest.test_case "required order enforced" `Quick test_required_order_enforced;
          Alcotest.test_case "temporal join plans" `Quick test_join_plans;
          Alcotest.test_case "fixed experiment trees cost" `Quick test_cost_plan_fixed_trees;
          Alcotest.test_case "counts reported" `Quick test_memo_counts_reported;
        ] );
    ]
