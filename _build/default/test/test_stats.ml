(* Tests for statistics: the collector, StartBefore/EndBefore selectivity
   (the paper's Section 3.3 worked example), and cardinality derivation
   (including the temporal aggregation bounds of Section 3.4). *)

open Tango_rel
open Tango_sql
open Tango_algebra
open Tango_stats
open Tango_workload

let col ?q c = Ast.Col (q, c)
let date s = Ast.Lit (Value.Date (Tango_temporal.Chronon.of_string s))

(* The Section 3.3 relation: 100k tuples (scaled to 20k for test speed),
   7-day periods uniform over 1995..2000. *)
let n_uniform = 20_000
let uniform_rel = Uniform.generate ~n:n_uniform ()

let stats_of ?(histograms = `All) rel name qualifier =
  let db = Tango_dbms.Database.create () in
  Tango_dbms.Database.load_relation db name rel;
  Collector.collect ~histograms db ~qualifier name

let uniform_stats = stats_of uniform_rel "R" "R"
let uniform_stats_nohist = stats_of ~histograms:`None uniform_rel "R" "R"

let overlap_pred =
  (* T1 < 1997-02-08 AND T2 > 1997-02-01 *)
  Ast.Binop
    ( Ast.And,
      Ast.Binop (Ast.Lt, col "T1", date "1997-02-08"),
      Ast.Binop (Ast.Gt, col "T2", date "1997-02-01") )

let actual_fraction =
  let a = Tango_temporal.Chronon.of_string "1997-02-01" in
  let b = Tango_temporal.Chronon.of_string "1997-02-08" in
  float_of_int (Uniform.actual_overlaps uniform_rel ~a ~b)
  /. float_of_int n_uniform

(* Paper: actual result is ~0.4-0.8% of the relation; the naive estimate is
   ~24.7% ("a factor of 40 too high"); the temporal estimate is ~0.8%. *)
let test_naive_overestimates () =
  let naive = Selectivity.selectivity ~mode:Selectivity.Naive uniform_stats_nohist overlap_pred in
  Alcotest.(check bool)
    (Printf.sprintf "naive=%.4f ~ 0.247" naive)
    true
    (naive > 0.20 && naive < 0.30);
  Alcotest.(check bool) "naive far above actual" true (naive > 10.0 *. actual_fraction)

let test_temporal_estimate_close () =
  List.iter
    (fun stats ->
      let est = Selectivity.selectivity ~mode:Selectivity.Temporal stats overlap_pred in
      Alcotest.(check bool)
        (Printf.sprintf "temporal=%.4f vs actual=%.4f" est actual_fraction)
        true
        (est < 3.0 *. actual_fraction +. 0.002 && est > actual_fraction /. 3.0 -. 0.002))
    [ uniform_stats; uniform_stats_nohist ]

let test_timeslice () =
  let a = float_of_int (Tango_temporal.Chronon.of_string "1997-06-15") in
  let est = Selectivity.timeslice_cardinality uniform_stats ~a in
  (* each day intersects ~ n*7/1819 tuples *)
  let expected = float_of_int n_uniform *. 7.0 /. 1819.0 in
  Alcotest.(check bool)
    (Printf.sprintf "timeslice %.1f ~ %.1f" est expected)
    true
    (est > expected /. 3.0 && est < expected *. 3.0)

let test_start_end_before_monotone () =
  let s = uniform_stats in
  let d x = float_of_int (Tango_temporal.Chronon.of_string x) in
  Alcotest.(check bool) "monotone" true
    (Selectivity.start_before s (d "1996-01-01")
    <= Selectivity.start_before s (d "1998-01-01"));
  Alcotest.(check bool) "bounded by card" true
    (Selectivity.start_before s (d "2001-01-01")
    <= float_of_int n_uniform +. 1.0);
  Alcotest.(check bool) "zero before min" true
    (Selectivity.start_before s (d "1990-01-01") < 1.0)

(* --- standard (non-temporal) selectivity --- *)

let test_equality_selectivity () =
  let sel =
    Selectivity.selectivity uniform_stats
      (Ast.Binop (Ast.Eq, col "ID", Ast.Lit (Value.Int 5)))
  in
  Alcotest.(check bool) "1/distinct" true
    (abs_float (sel -. (1.0 /. float_of_int n_uniform)) < 1e-6)

let test_range_selectivity () =
  let sel =
    Selectivity.selectivity uniform_stats
      (Ast.Binop (Ast.Lt, col "ID", Ast.Lit (Value.Int (n_uniform / 2))))
  in
  Alcotest.(check bool) (Printf.sprintf "~0.5, got %.3f" sel) true
    (sel > 0.45 && sel < 0.55)

let test_or_not () =
  let p = Ast.Binop (Ast.Lt, col "ID", Ast.Lit (Value.Int (n_uniform / 2))) in
  let sel_or = Selectivity.selectivity uniform_stats (Ast.Binop (Ast.Or, p, p)) in
  let sel_not = Selectivity.selectivity uniform_stats (Ast.Not p) in
  Alcotest.(check bool) "or bounded" true (sel_or >= 0.45 && sel_or <= 1.0);
  Alcotest.(check bool) "not complements" true (abs_float (sel_not +. 0.5) -. 1.0 < 0.1)

(* --- derivation --- *)

let pos_rel = Uis.position ~n:2000 ()

let env =
  let db = Tango_dbms.Database.create () in
  Tango_dbms.Database.load_relation db "POSITION" pos_rel;
  Derive.env (fun ~qualifier table -> Collector.collect db ~qualifier table)

let scan = Op.scan "POSITION" Uis.position_schema

let test_derive_scan () =
  let s = Derive.derive env scan in
  Alcotest.(check bool) "card" true (abs_float (s.Rel_stats.card -. 2000.0) < 1.0);
  Alcotest.(check bool) "size close to real" true
    (let est = Rel_stats.size s in
     let real = float_of_int (Relation.byte_size pos_rel) in
     est > 0.8 *. real && est < 1.2 *. real)

let test_derive_select () =
  let op =
    Op.select (Ast.Binop (Ast.Gt, col "PayRate", Ast.Lit (Value.Float 17.5))) scan
  in
  let s = Derive.derive env op in
  (* PayRate uniform on [5, 30): above 17.5 is ~half *)
  Alcotest.(check bool)
    (Printf.sprintf "halved: %.0f" s.Rel_stats.card)
    true
    (s.Rel_stats.card > 700.0 && s.Rel_stats.card < 1300.0)

let test_derive_join () =
  let op =
    Op.join
      (Ast.Binop (Ast.Eq, col ~q:"A" "PosID", col ~q:"B" "PosID"))
      (Op.scan ~alias:"A" "POSITION" Uis.position_schema)
      (Op.scan ~alias:"B" "POSITION" Uis.position_schema)
  in
  let s = Derive.derive env op in
  (* self-join on key with d distinct values: n^2/d *)
  let d = float_of_int (Relation.distinct_count pos_rel "PosID") in
  let expected = 2000.0 *. 2000.0 /. d in
  Alcotest.(check bool)
    (Printf.sprintf "join card %.0f ~ %.0f" s.Rel_stats.card expected)
    true
    (s.Rel_stats.card > expected /. 3.0 && s.Rel_stats.card < expected *. 3.0)

let test_derive_taggr_bounds () =
  let s_in = Derive.derive env scan in
  let min_c, max_c, est = Derive.taggr_cardinality s_in [ "PosID" ] in
  Alcotest.(check bool) "min <= est <= max" true (min_c <= est && est <= max_c);
  Alcotest.(check bool) "max <= 2n-1" true (max_c <= (2.0 *. 2000.0) -. 1.0);
  (* actual result size falls within the bounds *)
  let actual =
    Relation.cardinality
      (Reference.eval
         (fun _ -> pos_rel)
         (Op.temporal_aggregate [ "POSITION.PosID" ] [ Op.count_star "C" ] scan))
  in
  Alcotest.(check bool)
    (Printf.sprintf "actual %d within [%.0f, %.0f]" actual min_c max_c)
    true
    (float_of_int actual >= min_c && float_of_int actual <= max_c)

let test_derive_taggr_no_groups () =
  let s_in = Derive.derive env scan in
  let _, max_c, _ = Derive.taggr_cardinality s_in [] in
  let d1 = Rel_stats.distinct_of s_in "T1" and d2 = Rel_stats.distinct_of s_in "T2" in
  Alcotest.(check bool) "max = d1+d2+1" true (abs_float (max_c -. (d1 +. d2 +. 1.0)) < 1.0)

let test_derive_temporal_join_factor () =
  let l = Derive.derive env scan and r = Derive.derive env scan in
  let f = Derive.temporal_overlap_factor l r in
  Alcotest.(check bool) "factor in (0,1]" true (f > 0.0 && f <= 1.0)

let test_derive_project_transfers () =
  let op = Op.to_mw (Op.project [ (col "PosID", "P") ] scan) in
  let s = Derive.derive env op in
  Alcotest.(check bool) "card preserved" true (abs_float (s.Rel_stats.card -. 2000.0) < 1.0);
  Alcotest.(check bool) "narrower" true
    (Rel_stats.avg_tuple_size s < Rel_stats.avg_tuple_size (Derive.derive env scan))

(* property: temporal estimate is never worse than naive by more than 2x on
   uniform overlap queries, and is within 10x of actual *)
let prop_temporal_beats_naive =
  QCheck.Test.make ~name:"temporal estimate beats naive on overlap windows"
    ~count:40
    QCheck.(pair (int_range 0 1700) (int_range 1 60))
    (fun (off, len) ->
      let lo = Tango_temporal.Chronon.of_string "1995-01-01" in
      let a = lo + off and b = lo + off + len in
      let pred =
        Ast.Binop
          ( Ast.And,
            Ast.Binop (Ast.Lt, col "T1", Ast.Lit (Value.Date b)),
            Ast.Binop (Ast.Gt, col "T2", Ast.Lit (Value.Date a)) )
      in
      let actual =
        float_of_int (Uniform.actual_overlaps uniform_rel ~a ~b)
        /. float_of_int n_uniform
      in
      let t = Selectivity.selectivity ~mode:Selectivity.Temporal uniform_stats pred in
      let n = Selectivity.selectivity ~mode:Selectivity.Naive uniform_stats pred in
      abs_float (t -. actual) <= abs_float (n -. actual) +. 0.01)

let () =
  Alcotest.run "tango_stats"
    [
      ( "selectivity",
        [
          Alcotest.test_case "naive overestimates (sec 3.3)" `Quick test_naive_overestimates;
          Alcotest.test_case "temporal estimate close" `Quick test_temporal_estimate_close;
          Alcotest.test_case "timeslice" `Quick test_timeslice;
          Alcotest.test_case "start/end before monotone" `Quick test_start_end_before_monotone;
          Alcotest.test_case "equality" `Quick test_equality_selectivity;
          Alcotest.test_case "range" `Quick test_range_selectivity;
          Alcotest.test_case "or/not" `Quick test_or_not;
        ] );
      ( "derivation",
        [
          Alcotest.test_case "scan" `Quick test_derive_scan;
          Alcotest.test_case "select" `Quick test_derive_select;
          Alcotest.test_case "join" `Quick test_derive_join;
          Alcotest.test_case "taggr bounds" `Quick test_derive_taggr_bounds;
          Alcotest.test_case "taggr no groups" `Quick test_derive_taggr_no_groups;
          Alcotest.test_case "temporal join factor" `Quick test_derive_temporal_join_factor;
          Alcotest.test_case "project & transfers" `Quick test_derive_project_transfers;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_temporal_beats_naive ] );
    ]
