(* Tests for the SQL lexer, parser, and printer. *)

open Tango_rel
open Tango_sql

let parse = Parser.query
let print = Printer.query_to_sql

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT a, 1 + 2.5 FROM t WHERE x <= 'it''s'" in
  Alcotest.(check int) "token count" 13 (List.length toks);
  (match toks with
  | Lexer.KW "SELECT" :: Lexer.IDENT "a" :: _ -> ()
  | _ -> Alcotest.fail "unexpected token head");
  match List.filter (function Lexer.STRING _ -> true | _ -> false) toks with
  | [ Lexer.STRING s ] -> Alcotest.(check string) "escaped quote" "it's" s
  | _ -> Alcotest.fail "string literal not lexed"

let test_lexer_comments_and_symbols () =
  let toks = Lexer.tokenize "x -- comment\n <> y" in
  Alcotest.(check int) "comment skipped" 4 (List.length toks);
  match toks with
  | [ Lexer.IDENT "x"; Lexer.SYM "<>"; Lexer.IDENT "y"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "symbols mis-lexed"

let test_parse_simple_select () =
  match parse "SELECT PosID, EmpName FROM POSITION WHERE PosID = 1" with
  | Ast.Select s ->
      Alcotest.(check int) "items" 2 (List.length s.items);
      Alcotest.(check int) "from" 1 (List.length s.from);
      Alcotest.(check bool) "where" true (s.where <> None)
  | _ -> Alcotest.fail "expected select"

let test_parse_qualified_and_alias () =
  match parse "SELECT A.PosID AS P FROM POSITION A, EMPLOYEE B" with
  | Ast.Select s -> (
      (match s.items with
      | [ Ast.Expr (Ast.Col (Some "A", "PosID"), Some "P") ] -> ()
      | _ -> Alcotest.fail "qualified column not parsed");
      match s.from with
      | [ Ast.Table ("POSITION", Some "A"); Ast.Table ("EMPLOYEE", Some "B") ] -> ()
      | _ -> Alcotest.fail "aliases not parsed")
  | _ -> Alcotest.fail "expected select"

let test_parse_precedence () =
  (* a = 1 OR b = 2 AND c = 3  parses as  a=1 OR (b=2 AND c=3) *)
  match parse "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3" with
  | Ast.Select { where = Some (Ast.Binop (Ast.Or, _, Ast.Binop (Ast.And, _, _))); _ } -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_arith_precedence () =
  match parse "SELECT 1 + 2 * 3 FROM t" with
  | Ast.Select { items = [ Ast.Expr (e, _) ]; _ } ->
      (match e with
      | Ast.Binop (Ast.Add, Ast.Lit (Value.Int 1), Ast.Binop (Ast.Mul, _, _)) -> ()
      | _ -> Alcotest.fail "mul should bind tighter")
  | _ -> Alcotest.fail "expected select"

let test_parse_date_literal () =
  match parse "SELECT * FROM t WHERE T1 < DATE '1997-02-08'" with
  | Ast.Select { where = Some (Ast.Binop (Ast.Lt, _, Ast.Lit (Value.Date d))); _ } ->
      Alcotest.(check string) "date value" "1997-02-08"
        (Tango_temporal.Chronon.to_string d)
  | _ -> Alcotest.fail "date literal not parsed"

let test_parse_group_order () =
  match
    parse
      "SELECT PosID, COUNT(*) AS C FROM POSITION GROUP BY PosID HAVING \
       COUNT(*) > 1 ORDER BY PosID DESC, C"
  with
  | Ast.Select s ->
      Alcotest.(check int) "group by" 1 (List.length s.group_by);
      Alcotest.(check bool) "having" true (s.having <> None);
      (match s.order_by with
      | [ (_, false); (_, true) ] -> ()
      | _ -> Alcotest.fail "order directions wrong")
  | _ -> Alcotest.fail "expected select"

let test_parse_derived_and_subquery () =
  let sql =
    "SELECT g.PosID FROM (SELECT PosID, T1 AS T FROM POSITION UNION SELECT \
     PosID, T2 AS T FROM POSITION) g WHERE (SELECT MIN(p2.T) FROM POSITION \
     p2 WHERE p2.PosID = g.PosID) IS NOT NULL"
  in
  match parse sql with
  | Ast.Select s -> (
      (match s.from with
      | [ Ast.Derived (Ast.Union _, "g") ] -> ()
      | _ -> Alcotest.fail "derived union not parsed");
      match s.where with
      | Some (Ast.Is_not_null (Ast.Scalar_subquery _)) -> ()
      | _ -> Alcotest.fail "scalar subquery not parsed")
  | _ -> Alcotest.fail "expected select"

let test_parse_greatest_least () =
  match parse "SELECT GREATEST(A.T1, B.T1), LEAST(A.T2, B.T2) FROM t A, t B" with
  | Ast.Select { items = [ Ast.Expr (Ast.Greatest [ _; _ ], _);
                           Ast.Expr (Ast.Least [ _; _ ], _) ]; _ } -> ()
  | _ -> Alcotest.fail "greatest/least not parsed"

let test_parse_between_in_exists () =
  match
    parse
      "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (SELECT x FROM u) \
       AND EXISTS (SELECT * FROM v)"
  with
  | Ast.Select { where = Some w; _ } ->
      let cs = Ast.conjuncts w in
      Alcotest.(check int) "three conjuncts" 3 (List.length cs);
      Alcotest.(check bool) "between" true
        (List.exists (function Ast.Between _ -> true | _ -> false) cs);
      Alcotest.(check bool) "in" true
        (List.exists (function Ast.In_subquery _ -> true | _ -> false) cs);
      Alcotest.(check bool) "exists" true
        (List.exists (function Ast.Exists _ -> true | _ -> false) cs)
  | _ -> Alcotest.fail "expected select"

let test_parse_create_insert_drop () =
  (match Parser.statement "CREATE TABLE TMP (PosID INT, T1 DATE, Name VARCHAR(32))" with
  | Ast.Create_table ("TMP", cols) ->
      Alcotest.(check int) "columns" 3 (List.length cols);
      Alcotest.(check bool) "types" true
        (List.map (fun c -> c.Ast.col_type) cols
        = [ Value.TInt; Value.TDate; Value.TStr ])
  | _ -> Alcotest.fail "create not parsed");
  (match Parser.statement "INSERT INTO TMP VALUES (1, DATE '1995-01-01', 'x'), (2, NULL, 'y')" with
  | Ast.Insert ("TMP", [ _; _ ]) -> ()
  | _ -> Alcotest.fail "insert not parsed");
  match Parser.statement "DROP TABLE TMP" with
  | Ast.Drop_table "TMP" -> ()
  | _ -> Alcotest.fail "drop not parsed"

let test_parse_errors () =
  let fails sql =
    match Parser.statement sql with
    | exception Parser.Parse_error _ -> true
    | exception Lexer.Lex_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing from" true (fails "SELECT a");
  Alcotest.(check bool) "trailing junk" true (fails "SELECT a FROM t extra junk ,");
  Alcotest.(check bool) "bad char" true (fails "SELECT @ FROM t");
  Alcotest.(check bool) "unterminated string" true (fails "SELECT 'abc FROM t")

(* Printer roundtrip: print → reparse → same AST. *)
let roundtrip sql =
  let q = parse sql in
  let q' = parse (print q) in
  Alcotest.(check bool) ("roundtrip: " ^ sql) true (q = q')

let test_printer_roundtrip () =
  List.iter roundtrip
    [
      "SELECT PosID, EmpName FROM POSITION WHERE PosID = 1 ORDER BY PosID";
      "SELECT A.PosID AS PosID, EmpName, GREATEST(A.T1, B.T1) AS T1, \
       LEAST(A.T2, B.T2) AS T2 FROM TMP A, POSITION B WHERE A.PosID = \
       B.PosID AND A.T1 < B.T2 AND A.T2 > B.T1 ORDER BY PosID";
      "SELECT PosID, T1, T2 FROM POSITION ORDER BY PosID, T1";
      "SELECT DISTINCT PosID FROM POSITION";
      "SELECT PosID, COUNT(*) AS C FROM POSITION GROUP BY PosID HAVING \
       COUNT(*) > 1";
      "SELECT PosID, T1 AS T FROM POSITION UNION SELECT PosID, T2 AS T FROM \
       POSITION";
      "SELECT x FROM t WHERE a BETWEEN 1 AND 2 OR NOT b = 3";
      "SELECT SUM(PayRate), AVG(PayRate), MIN(T1), MAX(T2), COUNT(PosID) \
       FROM POSITION";
      "SELECT * FROM (SELECT PosID FROM POSITION) p WHERE PosID IS NOT NULL";
    ]

(* Random query ASTs must survive print -> parse unchanged. *)
let query_ast_gen =
  let open QCheck.Gen in
  let name_g = oneofl [ "A"; "B"; "T"; "Col1"; "x" ] in
  let lit_g =
    oneof
      [ map (fun i -> Ast.Lit (Value.Int i)) (int_range 0 99);
        map (fun d -> Ast.Lit (Value.Date d)) (int_range 0 9999);
        return (Ast.Lit (Value.Str "it's"));
        return (Ast.Lit Value.Null) ]
  in
  let rec expr_g depth =
    if depth <= 0 then
      oneof [ lit_g; map (fun c -> Ast.Col (None, c)) name_g ]
    else
      oneof
        [
          lit_g;
          map (fun c -> Ast.Col (Some "Q", c)) name_g;
          map3
            (fun op a b -> Ast.Binop (op, a, b))
            (oneofl Ast.[ Add; Sub; Mul; Eq; Lt; Ge; And; Or ])
            (expr_g (depth - 1)) (expr_g (depth - 1));
          map (fun a -> Ast.Not a) (expr_g (depth - 1));
          map (fun a -> Ast.Is_null a) (expr_g (depth - 1));
          map2 (fun a b -> Ast.Greatest [ a; b ]) (expr_g (depth - 1)) (expr_g (depth - 1));
        ]
  in
  let item_g =
    QCheck.Gen.map2
      (fun e a -> Ast.Expr (e, Some a))
      (expr_g 2) name_g
  in
  let* items = list_size (int_range 1 3) item_g in
  let* where = opt (expr_g 2) in
  let* order_col = name_g in
  let* asc = bool in
  let* distinct = bool in
  return
    (Ast.select ~distinct items
       [ Ast.Table ("T", Some "Q") ]
       ~where
       ~order_by:[ (Ast.Col (None, order_col), asc) ])

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"random ASTs: print then parse is identity" ~count:300
    (QCheck.make query_ast_gen ~print:Printer.query_to_sql)
    (fun q ->
      let q' = Parser.query (Printer.query_to_sql q) in
      q' = q)

let test_statement_printer () =
  let sql = "CREATE TABLE T (A INT, B DATE)" in
  let printed = Printer.statement_to_sql (Parser.statement sql) in
  Alcotest.(check bool) "create roundtrip" true
    (Parser.statement printed = Parser.statement sql)

let () =
  Alcotest.run "tango_sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "comments/symbols" `Quick test_lexer_comments_and_symbols;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple select" `Quick test_parse_simple_select;
          Alcotest.test_case "qualified & alias" `Quick test_parse_qualified_and_alias;
          Alcotest.test_case "bool precedence" `Quick test_parse_precedence;
          Alcotest.test_case "arith precedence" `Quick test_parse_arith_precedence;
          Alcotest.test_case "date literal" `Quick test_parse_date_literal;
          Alcotest.test_case "group/order" `Quick test_parse_group_order;
          Alcotest.test_case "derived & subquery" `Quick test_parse_derived_and_subquery;
          Alcotest.test_case "greatest/least" `Quick test_parse_greatest_least;
          Alcotest.test_case "between/in/exists" `Quick test_parse_between_in_exists;
          Alcotest.test_case "ddl & dml" `Quick test_parse_create_insert_drop;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "printer",
        [
          Alcotest.test_case "query roundtrips" `Quick test_printer_roundtrip;
          Alcotest.test_case "statement roundtrip" `Quick test_statement_printer;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_print_parse_roundtrip ] );
    ]
