(* Tests for the workload generators: published shapes (cardinalities,
   tuple sizes, time skew), determinism, and the integrity of the paper's
   query/plan definitions. *)

open Tango_rel
open Tango_algebra
open Tango_workload

let position = Uis.position ~n:2_000 ()
let employee = Uis.employee ~n:500 ()

let test_position_shape () =
  Alcotest.(check int) "cardinality" 2_000 (Relation.cardinality position);
  Alcotest.(check int) "8 attributes" 8 (Schema.arity (Relation.schema position));
  (* tuple size close to the published ~80 bytes *)
  let avg = Relation.avg_tuple_size position in
  Alcotest.(check bool) (Printf.sprintf "avg size %.1f in 60..100" avg) true
    (avg > 60.0 && avg < 100.0)

let test_employee_shape () =
  Alcotest.(check int) "cardinality" 500 (Relation.cardinality employee);
  Alcotest.(check int) "31 attributes" 31 (Schema.arity (Relation.schema employee));
  let avg = Relation.avg_tuple_size employee in
  (* published: ~276 bytes *)
  Alcotest.(check bool) (Printf.sprintf "avg size %.1f in 220..340" avg) true
    (avg > 220.0 && avg < 340.0)

let test_time_skew () =
  (* ~65% of periods start in 1995 or later (paper Section 5.2, Query 3) *)
  let cutoff = Tango_temporal.Chronon.of_string "1995-01-01" in
  let s = Relation.schema position in
  let late =
    Relation.fold
      (fun acc t ->
        if Value.to_int (Tuple.field s t "T1") >= cutoff then acc + 1 else acc)
      0 position
  in
  let frac = float_of_int late /. 2000.0 in
  Alcotest.(check bool) (Printf.sprintf "late fraction %.2f ~ 0.65" frac) true
    (frac > 0.58 && frac < 0.72)

let test_periods_valid () =
  let s = Relation.schema position in
  Relation.iter
    (fun t ->
      let t1 = Value.to_int (Tuple.field s t "T1") in
      let t2 = Value.to_int (Tuple.field s t "T2") in
      if t1 >= t2 then Alcotest.fail "empty period generated")
    position

let test_determinism () =
  let a = Uis.position ~n:300 () and b = Uis.position ~n:300 () in
  Alcotest.(check bool) "same data every time" true (Relation.equal_list a b)

let test_uniform_relation () =
  let r = Uniform.generate ~n:5_000 ~duration:7 () in
  let s = Relation.schema r in
  let lo = Tango_temporal.Chronon.of_string "1995-01-01" in
  let hi = Tango_temporal.Chronon.of_string "2000-01-01" in
  Relation.iter
    (fun t ->
      let t1 = Value.to_int (Tuple.field s t "T1") in
      let t2 = Value.to_int (Tuple.field s t "T2") in
      if t2 - t1 <> 7 then Alcotest.fail "duration must be 7";
      if t1 < lo || t2 > hi then Alcotest.fail "period out of range")
    r;
  (* actual_overlaps agrees with a manual count *)
  let a = Tango_temporal.Chronon.of_string "1997-01-01" in
  let b = Tango_temporal.Chronon.of_string "1997-02-01" in
  let manual =
    Relation.fold
      (fun acc t ->
        let t1 = Value.to_int (Tuple.field s t "T1") in
        let t2 = Value.to_int (Tuple.field s t "T2") in
        if t1 < b && t2 > a then acc + 1 else acc)
      0 r
  in
  Alcotest.(check int) "actual_overlaps" manual (Uniform.actual_overlaps r ~a ~b)

let test_load_creates_tables () =
  let db = Tango_dbms.Database.create () in
  Uis.load ~scale:0.002 db;
  Alcotest.(check bool) "POSITION exists" true
    (Tango_dbms.Database.table_exists db "POSITION");
  Alcotest.(check bool) "EMPLOYEE exists" true
    (Tango_dbms.Database.table_exists db "EMPLOYEE");
  (* statistics were collected, with the EmpID index flagged *)
  match Tango_dbms.Database.stats_of db "EMPLOYEE" with
  | Some st ->
      let c = Option.get (Tango_dbms.Stat.column_stats st "EmpID") in
      Alcotest.(check bool) "EmpID indexed" true c.Tango_dbms.Stat.indexed;
      Alcotest.(check bool) "clustered" true c.Tango_dbms.Stat.clustered
  | None -> Alcotest.fail "EMPLOYEE not analyzed"

(* every published plan tree must be well-formed *)
let test_plan_trees_validate () =
  let all =
    List.map snd (Queries.q1_plans ~position:"POSITION" ())
    @ List.map snd (Queries.q2_plans ~position:"POSITION" ~period_end:"1995-06-01" ())
    @ List.map snd (Queries.q3_plans ~position:"POSITION" ~start_bound:"1995-06-01" ())
    @ [
        Queries.q4_plan1 ~position:"POSITION" ~employee:"EMPLOYEE" ();
        Queries.q4_plan_dbms ~position:"POSITION" ~employee:"EMPLOYEE" ();
      ]
  in
  List.iter Op.validate all;
  Alcotest.(check int) "all trees validated" 13 (List.length all)

(* the temporal SQL forms parse and compile *)
let test_query_sql_compiles () =
  let lookup = function
    | "POSITION" -> Uis.position_schema
    | "EMPLOYEE" -> Uis.employee_schema
    | t -> failwith t
  in
  List.iter
    (fun sql -> Op.validate (Tango_tsql.Compile.initial_plan ~lookup sql))
    [
      Queries.q1_sql;
      Queries.q2_sql ~period_end:"1990-01-01";
      Queries.q3_sql ~start_bound:"1990-01-01";
      Queries.q4_sql;
    ]

let () =
  Alcotest.run "tango_workload"
    [
      ( "generators",
        [
          Alcotest.test_case "POSITION shape" `Quick test_position_shape;
          Alcotest.test_case "EMPLOYEE shape" `Quick test_employee_shape;
          Alcotest.test_case "time skew" `Quick test_time_skew;
          Alcotest.test_case "periods valid" `Quick test_periods_valid;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "uniform relation" `Quick test_uniform_relation;
          Alcotest.test_case "load + index + stats" `Quick test_load_creates_tables;
        ] );
      ( "queries",
        [
          Alcotest.test_case "plan trees validate" `Quick test_plan_trees_validate;
          Alcotest.test_case "SQL compiles" `Quick test_query_sql_compiles;
        ] );
    ]
