(** Execution-ready plans (paper Figure 5).

    A chosen physical plan becomes a middleware pipeline whose leaves are
    `TRANSFER^M` algorithms holding SQL for the DBMS-resident parts; a
    transfer's [deps] are `TRANSFER^D` steps that first materialize
    middleware results into temp tables (the dashed "sequence" edges of
    the paper's figure) and run during its [init].

    Execution is instrumented: every node records wall time, bytes and
    tuples produced, feeding the middleware's cost-factor adaptation. *)

open Tango_rel
open Tango_sql
open Tango_algebra

type node = {
  kind : kind;
  schema : Schema.t;
  mutable elapsed_us : float;  (** measured during the last execution *)
  mutable out_bytes : float;
  mutable out_tuples : int;
  mutable page_reads : int;  (** inclusive: DBMS pages read while running *)
  mutable roundtrips : int;  (** inclusive: client round trips while running *)
}

and kind =
  | Transfer_m of { sql : Ast.query; deps : dep list }
  | Scatter of {
      sql : Ast.query;
      deps : dep list;
      shard_names : string list;
      merge_order : Order.t;  (** the DBMS subtree's output order *)
    }
      (** partition-aware transfer: the same SQL on each named shard,
          per-shard streams combined by an ordered {!Tango_xxl.Gather}
          merge *)
  | Filter of Ast.expr * node
  | Project of (Ast.expr * string) list * node
  | Sort of Order.t * node
  | Sort_noop of node
  | Merge_join of {
      pred : Ast.expr;
      left_keys : string list;
      right_keys : string list;
      left : node;
      right : node;
    }
  | Tjoin of {
      pred : Ast.expr;
      left_keys : string list;
      right_keys : string list;
      left : node;
      right : node;
    }
  | Taggr of { group_by : string list; aggs : Op.agg list; arg : node }
  | Dupelim of node
  | Coalesce of node
  | Difference of node * node

and dep = { table : string; source : node }

exception Unbuildable of string

val of_physical :
  Tango_dbms.Database.t -> Tango_volcano.Physical.plan -> node * string list
(** Build from a middleware-resident physical plan; also returns the temp
    tables the plan will create (to drop afterwards). *)

val alpha_normalize : Ast.query -> Ast.query
(** Canonicalize table aliases (and the output column names derived from
    them) so that alpha-equivalent SQL statements compare equal — the key
    under which transfers are shared. *)

(** A per-execution context; when [share_transfers] is set (the default),
    alpha-equivalent dependency-free `TRANSFER^M` statements are fetched
    from the DBMS only once — the paper's §7 "issue only one T^M"
    refinement.  When [batching] is unset, every node is degraded to
    tuple-at-a-time pulls — the classic XXL protocol, kept for
    differential testing and benchmarking. *)
type run_ctx

val run_ctx :
  ?share_transfers:bool -> ?batching:bool -> Tango_dbms.Topology.t -> run_ctx

val build_cursor : run_ctx -> node -> Tango_xxl.Cursor.t

val to_cursor : Tango_dbms.Topology.t -> node -> Tango_xxl.Cursor.t
(** [build_cursor] with a fresh context (sharing on). *)

val to_trace : node -> Tango_obs.Trace.span
(** Convert an executed (measured) plan into a span subtree — one span per
    operator with wall time, tuples/bytes produced, and inclusive page
    reads / client round trips — ready to graft into a query trace. *)

val kind_name : node -> string
val children : node -> node list
val iter : (node -> unit) -> node -> unit
val pp : ?indent:int -> Format.formatter -> node -> unit
val to_string : node -> string
