(** TANGO — the temporal middleware session (paper Figure 1).

    A session owns a client connection to the conventional DBMS and drives
    the full pipeline: parse temporal SQL into the initial plan, collect
    statistics, optimize (transformation rules + cost-based physical
    search), translate DBMS-resident parts to SQL, execute through the
    iterator engine, and optionally adapt cost factors from measured
    times. *)

open Tango_rel
open Tango_algebra

(** Immutable session configuration.  Build one from {!Config.default} with
    the [with_*] combinators and pass it to {!connect}:

    {[
      let config =
        Middleware.Config.(
          default |> with_roundtrip_spin 0 |> with_tracing true)
      in
      let mw = Middleware.connect ~config db in
      ...
    ]} *)
module Config : sig
  (** How much plan verification ({!Tango_verify}) to run per query. *)
  type verify_mode =
    | Verify_off  (** no verification (the default) *)
    | Verify_final  (** verify the chosen physical plan *)
    | Verify_per_rule
        (** additionally gate every transformation-rule application
            ({!Tango_verify.Gate}) — a debug mode *)

  type t = {
    row_prefetch : int;  (** client rows fetched per round trip *)
    roundtrip_spin : int;  (** simulated per-round-trip latency spin *)
    selectivity_mode : Tango_stats.Selectivity.mode;
        (** [Temporal] (default) or [Naive] — the §3.3 comparison toggle *)
    histograms : bool;  (** collect histograms during ANALYZE *)
    feedback : bool;  (** adapt cost factors from measured times *)
    feedback_alpha : float;  (** blending weight for feedback *)
    max_memo_elements : int;  (** optimizer memo growth bound *)
    share_transfers : bool;
        (** fetch alpha-equivalent `TRANSFER^M` statements once per query
            (the paper's §7 "issue only one T^M" refinement) *)
    tracing : bool;
        (** collect a {!Tango_obs.Trace} for each pipeline run *)
    profiling : bool;
        (** EXPLAIN-ANALYZE every execution: per-operator estimated vs
            actual records ({!report.analysis}) folded into the session's
            feedback store *)
    adaptive_costs : bool;
        (** close the loop: refit cost factors when the feedback store
            shows sustained misestimation (implies [profiling]) *)
    slow_query_threshold_us : float;
        (** log executions at least this slow (0 = disabled; implies
            [profiling] when positive) *)
    verify_plans : verify_mode;
        (** statically verify plans; findings surface in
            {!report.diagnostics} / {!last_diagnostics} *)
    plan_cache : bool;
        (** cache optimized physical plans keyed by normalized query text;
            a re-submitted {!query} skips parse and optimize *)
    plan_cache_capacity : int;  (** LRU capacity of the plan cache *)
    auto_parameterize : bool;
        (** with [plan_cache] on, fold an incoming query's constant
            literals into bind variables before the cache lookup, so
            literal-varying repetitions of one query shape share a single
            {e template} entry (on by default; moot while [plan_cache] is
            off) *)
    param_buckets : int;
        (** selectivity-bucket count of the parameter-sensitivity guard:
            bound values are placed in their column's distribution and
            quantized to this many regions (default 8) *)
    replan_q_error : float;
        (** parameter-sensitivity guard threshold: when a template hit's
            measured cardinality q-error reaches it, the template is
            re-optimized with the bound values and the result stored as
            that selectivity bucket's region plan (0 = guard off;
            a positive value implies [profiling]) *)
    batch_execution : bool;
        (** pull tuples through the middleware pipeline in array batches
            (default); unset to force the classic tuple-at-a-time XXL
            protocol *)
    telemetry : bool;
        (** capture GC/allocation deltas per pipeline phase and per query
            ({!Tango_obs.Runtime}) and feed the [tango_alloc_*] /
            [tango_gc_*] counter families (on by default) *)
  }

  val default : t

  val with_row_prefetch : int -> t -> t
  val with_roundtrip_spin : int -> t -> t
  val with_selectivity_mode : Tango_stats.Selectivity.mode -> t -> t
  val with_histograms : bool -> t -> t

  val with_feedback : ?alpha:float -> bool -> t -> t
  (** [alpha] additionally overrides the blending weight. *)

  val with_max_memo_elements : int -> t -> t
  val with_transfer_sharing : bool -> t -> t
  val with_tracing : bool -> t -> t
  val with_profiling : bool -> t -> t

  val with_adaptive_costs : bool -> t -> t
  (** Enabling adaptation also enables [profiling]. *)

  val with_slow_query_threshold : float -> t -> t
  (** Threshold in microseconds; a positive value also enables
      [profiling]. *)

  val with_verify_plans : verify_mode -> t -> t

  val with_plan_cache : ?capacity:int -> bool -> t -> t
  (** Enable/disable the plan cache; [capacity] additionally overrides
      the LRU capacity (default 128 entries). *)

  val with_auto_parameterize : bool -> t -> t
  (** Auto-parameterization of literal constants (on by default; only
      takes effect while [plan_cache] is on). *)

  val with_param_buckets : int -> t -> t
  (** Selectivity-bucket count of the sensitivity guard (clamped to
      at least 1). *)

  val with_replan_q_error : float -> t -> t
  (** Sensitivity-guard q-error threshold; a positive value also enables
      [profiling] (the guard judges plans by measured q-errors). *)

  val with_batching : bool -> t -> t
  (** Batch-at-a-time execution (on by default); unset for the classic
      tuple-at-a-time protocol — used by differential tests and the
      [throughput] benchmark. *)

  val with_telemetry : bool -> t -> t
  (** GC/allocation attribution (on by default); unset to skip every
      [Gc.quick_stat] capture — used by the [telemetry] benchmark to
      price the observability stack itself. *)
end

type t

val log_src : Logs.src
(** The middleware's log source ([tango.middleware]); set its level to see
    chosen plans, execution times and feedback updates. *)

val connect :
  ?config:Config.t ->
  ?row_prefetch:int ->
  ?roundtrip_spin:int ->
  Tango_dbms.Database.t ->
  t
(** Open a session over one in-process DBMS (a {!Tango_dbms.Topology.single}
    topology) with the given configuration ({!Config.default} if omitted).
    [row_prefetch] and [roundtrip_spin] override the corresponding [config]
    fields (legacy convenience). *)

val connect_topology : ?config:Config.t -> Tango_dbms.Topology.t -> t
(** Open a session over an existing topology — possibly several backends
    range-partitioning a table (see {!Tango_dbms.Topology}).  Transfers out
    of sharded subtrees become partition-aware scatter/gather plans. *)

val topology : t -> Tango_dbms.Topology.t
val primary : t -> Tango_dbms.Backend.t

val client : t -> Tango_dbms.Client.t
(** The primary backend's in-process client; raises [Invalid_argument] if
    the primary backend is not in-process. *)

val database : t -> Tango_dbms.Database.t
(** The primary backend's in-process database; raises [Invalid_argument]
    if the primary backend is not in-process. *)

val factors : t -> Tango_cost.Factors.t
(** The session's (mutable) cost factors. *)

val backend_factors : t -> Tango_profile.Backend_factors.t
(** Per-backend calibrated cost factors, keyed by backend name; backends
    that have not calibrated fall back to {!factors}. *)

val partition_layout : t -> Tango_volcano.Partition.layout option
(** The optimizer's view of the topology: shard names and numeric bounds
    on the partition column.  [None] for a single-DBMS session. *)

val config : t -> Config.t
(** The session's current configuration. *)

val set_config : t -> Config.t -> unit
(** Replace the session configuration; applies [row_prefetch] and
    [roundtrip_spin] to every live backend and invalidates cached
    statistics when the [histograms] flag changes. *)

val last_trace : t -> Tango_obs.Trace.span option
(** The trace of the most recent {!query} / {!run_plan} / {!run_fixed}
    call; [None] unless the configuration has [tracing] set. *)

val last_analysis : t -> Tango_profile.Analyze.report option
(** The EXPLAIN-ANALYZE report of the most recent execution; [None]
    unless the configuration has [profiling] set. *)

val last_diagnostics : t -> Tango_verify.Diag.t list
(** Findings of the most recent plan verification ({!optimize} or
    {!run_fixed}); [[]] unless the configuration has [verify_plans] on. *)

val profile_store : t -> Tango_profile.Feedback.t
(** The session's feedback store: per-fragment misestimation statistics
    accumulated across profiled executions. *)

val sentinel : t -> Tango_profile.Sentinel.t
(** The session's plan-regression sentinel and slow-query log. *)

val calibrate : ?sizes:Tango_cost.Calibrate.probe_sizes -> t -> unit
(** Run cost-factor calibration against every connected backend; each
    backend's measured factors are stored in {!backend_factors} under its
    name, and the primary's are adopted as the session's globals. *)

val adopt_factors : t -> Tango_cost.Factors.t -> unit
(** Adopt previously calibrated factors (e.g. shared across sessions). *)

val refresh_statistics : t -> unit
(** Invalidate cached statistics (after loads or ANALYZE); also flushes
    the plan cache, whose plans were chosen under the old statistics. *)

val plan_cache_stats : t -> Tango_cache.Plan_cache.stats
(** Hit/miss/eviction/invalidation totals of the session's plan cache. *)

val invalidate_plan_cache : t -> reason:string -> unit
(** Explicitly flush the plan cache (a no-op when it is empty).  Called
    internally on statistics refresh, calibration, factor adoption,
    adaptive cost refits, and detected DDL. *)

val base_stats : t -> qualifier:string -> string -> Tango_stats.Rel_stats.t
(** The Statistics Collector hook: statistics for a base table under a
    qualifier, cached per session. *)

val stats_env : ?binding:Value.t array -> t -> Tango_stats.Derive.env
(** The optimizer's statistics environment.  [binding] closes [Param n]
    to its bound value before estimating — the sensitivity guard's
    value-specific re-optimization. *)

val schema_lookup : t -> string -> Schema.t

(** {1 Optimization} *)

val optimize :
  t ->
  ?required_order:Order.t ->
  ?binding:Value.t array ->
  Op.t ->
  Tango_volcano.Search.result
(** Optimize an initial algebra plan (which must carry its top [T^M]).
    When [verify_plans] is on, the chosen plan — and with
    [Verify_per_rule], every rule application — is verified; findings are
    in {!last_diagnostics}.  [binding] makes parameterized predicates
    estimate under the given values instead of generic defaults. *)

val cost_plan :
  t -> ?required_order:Order.t -> Op.t -> Tango_volcano.Physical.plan option
(** Cost a fixed plan tree without exploring alternatives. *)

(** {1 Execution} *)

(** Plan-cache outcome attached to a {!report} (present only for {!query}
    runs with the configuration's [plan_cache] on). *)
type cache_report = {
  cache_hit : bool;  (** this query was answered from the cache *)
  cache_class : string;
      (** ["template-hit"] — a parameterized template entry served this
          query (the plan was instantiated under the binding);
          ["exact-hit"] — the full text matched an exact entry;
          ["miss"] — parse + optimize ran *)
  cache_hits : int;  (** session totals since connect *)
  cache_template_hits : int;
  cache_exact_hits : int;
  cache_misses : int;
  cache_invalidations : int;
  cache_replans : int;
      (** parameter-sensitivity re-optimizations (region plans stored) *)
  cache_entries : int;  (** entries resident after this query *)
}

type backend_breakdown = Tango_xxl.Attribution.breakdown = {
  rows : int;  (** tuples that crossed this backend's client boundary *)
  bytes : int;  (** their marshalled volume *)
  us : float;  (** transfer time: time inside boundary calls *)
  wait_us : float;
      (** gather-wait time: how long the merge sat blocked on this
          backend beyond the transfer time those pulls recorded *)
  alloc_bytes : int;
      (** bytes allocated on the pulling domain inside those boundary
          calls *)
}
(** Per-backend latency attribution for one query (re-exported from
    {!Tango_xxl.Attribution}).  Summing [us +. wait_us] over all
    backends gives the sharded execution's total boundary contribution. *)

(** Per-phase GC/allocation attribution, mirroring the wall-time
    breakdown (zero when the configuration's [telemetry] is off). *)
type phase_resources = {
  parse_res : Tango_obs.Runtime.delta;
  optimize_res : Tango_obs.Runtime.delta;
  translate_res : Tango_obs.Runtime.delta;
  execute_res : Tango_obs.Runtime.delta;  (** contains the next two *)
  transfer_alloc_bytes : int;  (** Σ backend boundary allocation *)
  mw_exec_alloc_bytes : int;
      (** middleware-side execution allocation:
          [execute − transfer], clamped at zero *)
}

val no_resources : phase_resources

(** Phase breakdown of one pipeline run.  The phases are designed to be
    {e conservative}: [parse + optimize + translate + mw_exec + transfer
    + gather_wait] approximates the pipeline wall time, because
    [mw_exec_us] is derived as the execute-phase remainder after
    subtracting boundary time. *)
type phases = {
  parse_us : float;
  optimize_us : float;
  translate_us : float;
  execute_us : float;  (** whole execute phase (contains the next three) *)
  transfer_us : float;  (** Σ backend transfer time *)
  gather_wait_us : float;  (** Σ backend gather-wait time *)
  mw_exec_us : float;
      (** middleware-side execution: [execute - transfer - gather_wait],
          clamped at zero *)
  res : phase_resources;  (** per-phase GC/allocation attribution *)
}

val no_phases : phases
(** All-zero phases (used for synthesized or failed reports). *)

type report = {
  result : Relation.t;
  physical : Tango_volcano.Physical.plan;  (** the chosen plan *)
  exec : Exec_plan.node;  (** with per-algorithm measured times *)
  optimize_us : float;
  execute_us : float;
  classes : int;  (** memo equivalence classes explored *)
  elements : int;  (** memo class elements explored *)
  estimated_cost_us : float;
  trace : Tango_obs.Trace.span option;
      (** the collected trace when the configuration has [tracing] set:
          parse / optimize / translate / execute phases, with the measured
          operator tree grafted under the execute span *)
  analysis : Tango_profile.Analyze.report option;
      (** per-operator estimated-vs-actual records with q-errors, when the
          configuration has [profiling] set *)
  diagnostics : Tango_verify.Diag.t list;
      (** plan-verification findings, when the configuration has
          [verify_plans] on: the per-rule gate's (in [Verify_per_rule]
          mode) plus the final plan's.  On a plan-cache hit these are the
          findings recorded when the plan was first optimized. *)
  cache : cache_report option;
      (** plan-cache outcome; [None] unless this was a {!query} run with
          [plan_cache] on *)
  phases : phases;  (** per-phase latency breakdown of this run *)
  backends : (string * backend_breakdown) list;
      (** per-backend attribution, in first-touch order; [[]] when the
          plan never crossed a client boundary *)
}

exception No_plan of string

(** {2 Pipeline observation}

    One event per top-level pipeline run, successful or not — the feed
    for monitoring surfaces ({!Tango_monitor}: per-query event logs, SLO
    burn-rate tracking). *)
type query_event = {
  kind : string;  (** ["query"] | ["run_plan"] | ["run_fixed"] *)
  sql : string option;  (** the temporal SQL text, for {!query} *)
  started_us : float;  (** wall clock ({!Tango_obs.now_us}) at entry *)
  elapsed_us : float;
      (** total pipeline duration, parse to result (monotonic clock) *)
  cache_hit : bool;
      (** answered from the plan cache — no parse or optimize ran (so a
          zero [optimize_us] means "skipped", not "instantaneous") *)
  cache_class : string;
      (** ["template-hit"] | ["exact-hit"] | ["miss"]; [""] when the run
          was not a cache-eligible query *)
  report : report option;  (** [None] when the pipeline raised *)
  error : string option;  (** the exception text when the pipeline raised *)
  backends : (string * backend_breakdown) list;
      (** the report's per-backend attribution ([[]] when the pipeline
          raised), duplicated here so observers need not destructure the
          report *)
  resources : Tango_obs.Runtime.delta;
      (** whole-pipeline GC/allocation delta on the serving domain
          (zero when the configuration's [telemetry] is off) *)
}

val set_query_observer : t -> (query_event -> unit) option -> unit
(** Install (or with [None] remove) a callback invoked after every
    {!query} / {!run_plan} / {!run_fixed}, including runs that raise (the
    event then carries the exception text and no report, and the
    exception is re-raised).  One observer per session; exceptions the
    observer itself raises are swallowed — monitoring must never break
    the query path. *)

val execute_physical :
  t -> Tango_volcano.Physical.plan -> Relation.t * Exec_plan.node * float
(** Execute a chosen physical plan; returns result, instrumented exec plan,
    and elapsed microseconds.  Temp tables are dropped afterwards. *)

val run_plan : t -> ?required_order:Order.t -> Op.t -> report
(** Optimize and execute an initial algebra plan. *)

val query : t -> string -> report
(** The full pipeline: temporal SQL in, relation out.  With [plan_cache]
    on, a re-submitted text skips parse and optimize; with
    [auto_parameterize] additionally on, constant literals are folded
    into bind variables first, so literal-varying repetitions of one
    query shape share a single template entry whose plan is instantiated
    per binding. *)

val query_params : t -> string -> Value.t list -> report
(** The parameterized pipeline: temporal SQL carrying bind variables
    ([?] markers, numbered left to right, or explicit [$n]) plus the
    values to bind, positionally ([$1] first).  The parameterized text is
    the cache key, so every binding of one statement shares a single
    template entry; at execution time the cached plan template is
    instantiated under the binding (literals substituted, partition
    pruning re-run).  With an empty value list this is {!query}. *)

val run_fixed : t -> ?required_order:Order.t -> Op.t -> report
(** Execute a {e fixed} plan tree (used by the experiments to time the
    paper's hand-enumerated plan alternatives); raises {!No_plan} when the
    tree is not executable as written. *)
