(** Execution-ready plans (paper Figure 5).

    A chosen physical plan is translated into a middleware pipeline whose
    leaves are `TRANSFER^M` algorithms holding SQL for the DBMS-resident
    parts.  A `TRANSFER^M` may depend on `TRANSFER^D` steps that first
    materialize middleware results into uniquely-named DBMS temp tables (the
    dashed "algorithm sequence" edges in the paper's figure); dependencies
    run during the transfer's [init].

    Execution is instrumented: every node records wall time and bytes
    produced, which feeds the middleware's cost-factor adaptation. *)

open Tango_rel
open Tango_sql
open Tango_algebra
open Tango_volcano
open Tango_xxl
open Tango_dbms

type node = {
  kind : kind;
  schema : Schema.t;  (** output schema *)
  mutable elapsed_us : float;  (** measured during the last execution *)
  mutable out_bytes : float;
  mutable out_tuples : int;
  mutable page_reads : int;  (** inclusive: DBMS pages read while running *)
  mutable roundtrips : int;  (** inclusive: client round trips while running *)
}

and kind =
  | Transfer_m of { sql : Ast.query; deps : dep list }
  | Scatter of {
      sql : Ast.query;
      deps : dep list;
      shard_names : string list;
      merge_order : Order.t;  (** the DBMS subtree's output order *)
    }
      (** partition-aware transfer: the same SQL on each named shard,
          per-shard streams combined by an ordered {!Tango_xxl.Gather}
          merge *)
  | Filter of Ast.expr * node
  | Project of (Ast.expr * string) list * node
  | Sort of Order.t * node
  | Sort_noop of node
  | Merge_join of {
      pred : Ast.expr;
      left_keys : string list;
      right_keys : string list;
      left : node;
      right : node;
    }
  | Tjoin of {
      pred : Ast.expr;
      left_keys : string list;
      right_keys : string list;
      left : node;
      right : node;
    }
  | Taggr of { group_by : string list; aggs : Op.agg list; arg : node }
  | Dupelim of node
  | Coalesce of node
  | Difference of node * node

and dep = { table : string; source : node }

exception Unbuildable of string

let unbuildable fmt = Format.kasprintf (fun s -> raise (Unbuildable s)) fmt

(* ------------------------------------------------------------------ *)
(* Building from a physical plan                                        *)
(* ------------------------------------------------------------------ *)

type build_ctx = {
  mutable temp_names : (Op.t * string) list;  (* To_db op -> temp table *)
  mutable counter : int;
  db : Database.t;
}

let temp_name_of ctx (op : Op.t) : string =
  match List.assoc_opt op ctx.temp_names with
  | Some n -> n
  | None ->
      let n = Database.fresh_temp_name ctx.db in
      ctx.temp_names <- (op, n) :: ctx.temp_names;
      n

let mk kind schema =
  {
    kind;
    schema;
    elapsed_us = 0.0;
    out_bytes = 0.0;
    out_tuples = 0;
    page_reads = 0;
    roundtrips = 0;
  }

(* Collect the TRANSFER^D plan nodes inside a DBMS-resident physical
   subtree (stopping at them — anything below belongs to the middleware
   pipeline feeding the temp table). *)
let rec collect_tds (plan : Physical.plan) : Physical.plan list =
  match plan.Physical.algorithm with
  | Physical.Transfer_d_algo -> [ plan ]
  | _ -> List.concat_map collect_tds plan.Physical.children

(** Build an execution-ready plan from a middleware-resident physical
    plan. *)
let rec build ctx (plan : Physical.plan) : node =
  let schema = Op.schema plan.Physical.op in
  (* Translate a DBMS subtree to SQL; its TRANSFER^D leaves become
     dependencies executed first. *)
  let translate_db_child (db_child : Physical.plan) =
    let tds = collect_tds db_child in
    let deps =
      List.map
        (fun (td : Physical.plan) ->
          match (td.Physical.op, td.Physical.children) with
          | Op.To_db _, [ mw_child ] ->
              { table = temp_name_of ctx td.Physical.op; source = build ctx mw_child }
          | _ -> unbuildable "malformed TRANSFER^D plan node")
        tds
    in
    let sql =
      Tango_sqlgen.Translate.translate
        ~temp_name:(fun op -> temp_name_of ctx op)
        db_child.Physical.op
    in
    (sql, deps)
  in
  match (plan.Physical.algorithm, plan.Physical.children) with
  | Physical.Transfer_m_algo, [ db_child ] ->
      let sql, deps = translate_db_child db_child in
      mk (Transfer_m { sql; deps }) schema
  | Physical.Scatter_gather_m, [ db_child ] ->
      let sql, deps = translate_db_child db_child in
      mk
        (Scatter
           {
             sql;
             deps;
             shard_names = plan.Physical.shards;
             merge_order = db_child.Physical.out_order;
           })
        schema
  | Physical.Filter_m, [ c ] -> (
      match plan.Physical.op with
      | Op.Select { pred; _ } -> mk (Filter (pred, build ctx c)) schema
      | _ -> unbuildable "filter algorithm on a non-select")
  | Physical.Project_m, [ c ] -> (
      match plan.Physical.op with
      | Op.Project { items; _ } -> mk (Project (items, build ctx c)) schema
      | _ -> unbuildable "project algorithm on a non-project")
  | Physical.Sort_m, [ c ] -> (
      match plan.Physical.op with
      | Op.Sort { order; _ } -> mk (Sort (order, build ctx c)) schema
      | _ -> unbuildable "sort algorithm on a non-sort")
  | Physical.Sort_passthrough, [ c ] -> mk (Sort_noop (build ctx c)) schema
  | Physical.Merge_join_m, [ l; r ] | Physical.Tjoin_m, [ l; r ] -> (
      let temporal = plan.Physical.algorithm = Physical.Tjoin_m in
      let pred =
        match plan.Physical.op with
        | Op.Join { pred; _ } | Op.Temporal_join { pred; _ } -> pred
        | _ -> unbuildable "join algorithm on a non-join"
      in
      let sl = Op.schema l.Physical.op and sr = Op.schema r.Physical.op in
      match Rules.equi_pair sl sr pred with
      | None -> unbuildable "middleware merge join without an equi key"
      | Some (ja1, ja2) ->
          let lk = [ ja1 ] and rk = [ ja2 ] in
          let ln = build ctx l and rn = build ctx r in
          if temporal then
            mk (Tjoin { pred; left_keys = lk; right_keys = rk; left = ln; right = rn }) schema
          else
            mk
              (Merge_join
                 { pred; left_keys = lk; right_keys = rk; left = ln; right = rn })
              schema)
  | Physical.Taggr_m, [ c ] -> (
      match plan.Physical.op with
      | Op.Temporal_aggregate { group_by; aggs; _ } ->
          mk (Taggr { group_by; aggs; arg = build ctx c }) schema
      | _ -> unbuildable "taggr algorithm on a non-taggr")
  | Physical.Dupelim_m, [ c ] -> mk (Dupelim (build ctx c)) schema
  | Physical.Coalesce_m, [ c ] -> mk (Coalesce (build ctx c)) schema
  | Physical.Difference_m, [ l; r ] ->
      mk (Difference (build ctx l, build ctx r)) schema
  | algo, _ ->
      unbuildable "algorithm %s cannot head a middleware pipeline"
        (Physical.algorithm_name algo)

(** Entry point: [of_physical db plan] for a middleware-resident root. *)
let of_physical (db : Database.t) (plan : Physical.plan) : node * string list =
  let ctx = { temp_names = []; counter = 0; db } in
  ignore ctx.counter;
  let node = build ctx plan in
  (node, List.map snd ctx.temp_names)

(* ------------------------------------------------------------------ *)
(* Cursor construction                                                  *)
(* ------------------------------------------------------------------ *)

let now_us () = Unix.gettimeofday () *. 1_000_000.0

(* ------------------------------------------------------------------ *)
(* Transfer sharing                                                     *)
(* ------------------------------------------------------------------ *)

(* The paper's Section 7 refinement: "if a query is to access the same DBMS
   relation twice (even if the projected attributes are different), it
   would be beneficial to issue only one T^M operation."  Two TRANSFER^M
   SQL statements that are alpha-equivalent (identical up to the renaming
   of table aliases, which also flows into sanitized output column names)
   produce positionally identical tuples, so the second can reuse the
   first's fetched rows without another round trip.

   Alpha-normalization: rename table aliases in first-FROM-occurrence
   order to canonical a0, a1, ...; rewrite qualified column references and
   alias-prefixed output names ("A__K" -> "a0__K") accordingly. *)

let alpha_normalize (q : Ast.query) : Ast.query =
  let mapping : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let counter = ref 0 in
  let canon alias =
    match Hashtbl.find_opt mapping alias with
    | Some c -> c
    | None ->
        let c = Printf.sprintf "a%d" !counter in
        incr counter;
        Hashtbl.replace mapping alias c;
        c
  in
  let rename_name (name : string) =
    (* output names embed the alias as a sanitized prefix *)
    match String.index_opt name '_' with
    | Some i when i + 1 < String.length name && name.[i + 1] = '_' ->
        let prefix = String.sub name 0 i in
        (match Hashtbl.find_opt mapping prefix with
        | Some c -> c ^ String.sub name i (String.length name - i)
        | None -> name)
    | _ -> name
  in
  let rec expr (e : Ast.expr) =
    match e with
    | Ast.Lit _ | Ast.Param _ -> e
    | Ast.Col (Some q, c) -> (
        match Hashtbl.find_opt mapping q with
        | Some cq -> Ast.Col (Some cq, rename_name c)
        | None -> Ast.Col (Some q, rename_name c))
    | Ast.Col (None, c) -> Ast.Col (None, rename_name c)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, expr a, expr b)
    | Ast.Not a -> Ast.Not (expr a)
    | Ast.Is_null a -> Ast.Is_null (expr a)
    | Ast.Is_not_null a -> Ast.Is_not_null (expr a)
    | Ast.Between (a, b, c) -> Ast.Between (expr a, expr b, expr c)
    | Ast.Greatest es -> Ast.Greatest (List.map expr es)
    | Ast.Least es -> Ast.Least (List.map expr es)
    | Ast.Agg (f, a) -> Ast.Agg (f, Option.map expr a)
    | Ast.Scalar_subquery sq -> Ast.Scalar_subquery (query sq)
    | Ast.In_subquery (a, sq) -> Ast.In_subquery (expr a, query sq)
    | Ast.Exists sq -> Ast.Exists (query sq)
  and table_ref = function
    | Ast.Table (t, Some a) -> Ast.Table (t, Some (canon a))
    | Ast.Table (t, None) -> Ast.Table (t, None)
    | Ast.Derived (sq, a) -> Ast.Derived (query sq, canon a)
  and item = function
    | Ast.Star -> Ast.Star
    | Ast.Expr (e, alias) -> Ast.Expr (expr e, Option.map rename_name alias)
  and query (q : Ast.query) =
    match q with
    | Ast.Union (a, b) -> Ast.Union (query a, query b)
    | Ast.Union_all (a, b) -> Ast.Union_all (query a, query b)
    | Ast.Select sel ->
        (* visit FROM first so aliases are bound before references *)
        let from = List.map table_ref sel.Ast.from in
        Ast.Select
          {
            sel with
            Ast.from;
            items = List.map item sel.Ast.items;
            where = Option.map expr sel.Ast.where;
            group_by = List.map expr sel.Ast.group_by;
            having = Option.map expr sel.Ast.having;
            order_by = List.map (fun (e, asc) -> (expr e, asc)) sel.Ast.order_by;
          }
  in
  query q

(** A per-execution context; when [share_transfers] is set, alpha-equivalent
    dependency-free `TRANSFER^M` statements are fetched once.  When
    [batching] is unset, every node is degraded to tuple-at-a-time pulls
    (see {!Tango_xxl.Cursor.tuple_at_a_time}) — the classic XXL protocol,
    kept for differential testing and benchmarking. *)
type run_ctx = {
  topology : Topology.t;
  share_transfers : bool;
  batching : bool;
  fetched : (Ast.query * string list, Relation.t) Hashtbl.t;
      (** keyed by normalized SQL {e and} the shard list: a scatter and a
          single-backend transfer of the same statement read different
          data *)
}

let run_ctx ?(share_transfers = true) ?(batching = true) topology =
  { topology; share_transfers; batching; fetched = Hashtbl.create 4 }

(* Global counters snapshotted around each node's init/next to attribute
   inclusive page reads and client round trips to operators (same
   inclusive convention as [elapsed_us]).  These are the storage and
   client layers' own counters, shared by name. *)
let c_page_reads = Tango_obs.Counter.make "storage.page_reads"
let c_roundtrips = Tango_obs.Counter.make "client.roundtrips"

(* Wrap a cursor with per-node instrumentation; both pull protocols are
   forwarded natively (a batch costs one counter snapshot). *)
let instrument (n : node) (c : Cursor.t) : Cursor.t =
  n.elapsed_us <- 0.0;
  n.out_bytes <- 0.0;
  n.out_tuples <- 0;
  n.page_reads <- 0;
  n.roundtrips <- 0;
  (* Snapshot the global counters around [f] and attribute the deltas. *)
  let measured f =
    let t0 = now_us () in
    let pr0 = Tango_obs.Counter.value c_page_reads in
    let rt0 = Tango_obs.Counter.value c_roundtrips in
    let r = f () in
    n.page_reads <- n.page_reads + Tango_obs.Counter.value c_page_reads - pr0;
    n.roundtrips <- n.roundtrips + Tango_obs.Counter.value c_roundtrips - rt0;
    n.elapsed_us <- n.elapsed_us +. (now_us () -. t0);
    r
  in
  Cursor.make_full ~schema:(Cursor.schema c)
    ~init:(fun () -> measured (fun () -> Cursor.init c))
    ~next:(fun () ->
      let r = measured (fun () -> Cursor.next c) in
      (match r with
      | Some t ->
          n.out_tuples <- n.out_tuples + 1;
          n.out_bytes <- n.out_bytes +. float_of_int (Tuple.byte_size t)
      | None -> ());
      r)
    ~next_batch:(fun () ->
      let r = measured (fun () -> Cursor.next_batch c) in
      (match r with
      | Some b ->
          n.out_tuples <- n.out_tuples + Array.length b;
          Array.iter
            (fun t ->
              n.out_bytes <- n.out_bytes +. float_of_int (Tuple.byte_size t))
            b
      | None -> ());
      r)

(* Rename a cursor's schema to the sanitized temp-table column names. *)
let with_schema schema (c : Cursor.t) : Cursor.t =
  Cursor.make_full ~schema
    ~init:(fun () -> Cursor.init c)
    ~next:(fun () -> Cursor.next c)
    ~next_batch:(fun () -> Cursor.next_batch c)

let rec build_cursor (ctx : run_ctx) (n : node) : Cursor.t =
  let c =
    match n.kind with
    | Transfer_m { sql; deps } ->
        transfer_cursor ctx n ~sql ~deps ~shard_key:[]
          (Transfer.transfer_m
             (Topology.primary ctx.topology)
             ~schema:n.schema sql)
    | Scatter { sql; deps; shard_names; merge_order } ->
        let sources =
          List.map
            (fun name ->
              match Topology.find ctx.topology name with
              | Some b -> Transfer.transfer_m b ~schema:n.schema sql
              | None -> unbuildable "scatter names unknown shard %s" name)
            shard_names
        in
        transfer_cursor ctx n ~sql ~deps ~shard_key:shard_names
          (Gather.merge ~order:merge_order ~names:shard_names ~schema:n.schema
             sources)
    | Filter (pred, arg) -> Basic_ops.filter pred (build_cursor ctx arg)
    | Project (items, arg) -> Basic_ops.project items (build_cursor ctx arg)
    | Sort (order, arg) -> Sort.sort order (build_cursor ctx arg)
    | Sort_noop arg -> build_cursor ctx arg
    | Merge_join { pred; left_keys; right_keys; left; right } ->
        Joins.merge_join ~pred ~left_keys ~right_keys (build_cursor ctx left)
          (build_cursor ctx right)
    | Tjoin { pred; left_keys; right_keys; left; right } ->
        Joins.temporal_merge_join ~pred ~left_keys ~right_keys
          (build_cursor ctx left) (build_cursor ctx right)
    | Taggr { group_by; aggs; arg } ->
        Taggr.taggr ~group_by ~aggs (build_cursor ctx arg)
    | Dupelim arg -> Dup_elim.dup_elim (build_cursor ctx arg)
    | Coalesce arg -> Dup_elim.coalesce (build_cursor ctx arg)
    | Difference (l, r) ->
        Dup_elim.difference (build_cursor ctx l) (build_cursor ctx r)
  in
  let c = if ctx.batching then c else Cursor.tuple_at_a_time c in
  instrument n c

and transfer_cursor ctx (n : node) ~sql ~deps ~shard_key (tm : Cursor.t) :
    Cursor.t =
  let shared_key =
    if ctx.share_transfers && deps = [] then
      Some (alpha_normalize sql, shard_key)
    else None
  in
  let replay : Cursor.t option ref = ref None in
  Cursor.make_full ~schema:n.schema
    ~init:(fun () ->
      match shared_key with
      | Some key when Hashtbl.mem ctx.fetched key ->
          (* alpha-equivalent statement already fetched from the same
             shard set: replay its rows, skipping the DBMS and the wire *)
          let r = Hashtbl.find ctx.fetched key in
          let c = Cursor.of_relation (Relation.make n.schema (Relation.tuples r)) in
          Cursor.init c;
          replay := Some c
      | Some key ->
          List.iter (fun dep -> run_dep ctx dep) deps;
          Cursor.init tm;
          (* drain eagerly so the rows are shareable *)
          let rows = Cursor.drain tm in
          let r = Relation.of_list n.schema rows in
          Hashtbl.replace ctx.fetched key r;
          let c = Cursor.of_relation r in
          Cursor.init c;
          replay := Some c
      | None ->
          List.iter (fun dep -> run_dep ctx dep) deps;
          Cursor.init tm;
          replay := None)
    ~next:(fun () ->
      match !replay with
      | Some c -> Cursor.next c
      | None -> Cursor.next tm)
    ~next_batch:(fun () ->
      match !replay with
      | Some c -> Cursor.next_batch c
      | None -> Cursor.next_batch tm)

and run_dep ctx dep =
  (* temp tables referenced from shard-local SQL must exist everywhere:
     replicate the middleware result to every backend *)
  let backends = Topology.backends ctx.topology in
  List.iter (fun b -> Transfer.drop_temp_table b dep.table) backends;
  let source = build_cursor ctx dep.source in
  let sanitized = Tango_sqlgen.Translate.temp_table_schema dep.source.schema in
  let td =
    Transfer.transfer_d_all backends ~table:dep.table
      (with_schema sanitized source)
  in
  Cursor.init td

(** Instantiate as an instrumented cursor (transfer sharing on). *)
let to_cursor (topology : Topology.t) (n : node) : Cursor.t =
  build_cursor (run_ctx topology) n

(* ------------------------------------------------------------------ *)
(* Introspection                                                        *)
(* ------------------------------------------------------------------ *)

let kind_name (n : node) =
  match n.kind with
  | Transfer_m _ -> "TRANSFER^M"
  | Scatter _ -> "SCATTER^M"
  | Filter _ -> "FILTER^M"
  | Project _ -> "PROJECT^M"
  | Sort _ -> "SORT^M"
  | Sort_noop _ -> "SORT(noop)"
  | Merge_join _ -> "MERGEJOIN^M"
  | Tjoin _ -> "TJOIN^M"
  | Taggr _ -> "TAGGR^M"
  | Dupelim _ -> "DUPELIM^M"
  | Coalesce _ -> "COALESCE^M"
  | Difference _ -> "DIFFERENCE^M"

let children (n : node) : node list =
  match n.kind with
  | Transfer_m { deps; _ } | Scatter { deps; _ } ->
      List.map (fun d -> d.source) deps
  | Filter (_, a) | Project (_, a) | Sort (_, a) | Sort_noop a
  | Taggr { arg = a; _ } | Dupelim a | Coalesce a ->
      [ a ]
  | Merge_join { left; right; _ } | Tjoin { left; right; _ }
  | Difference (left, right) ->
      [ left; right ]

let rec iter f (n : node) =
  f n;
  List.iter (iter f) (children n)

(** Convert an executed (measured) plan into a {!Tango_obs.Trace} span
    subtree — one span per operator, carrying the measured wall time,
    tuples and bytes produced, and inclusive page reads / round trips. *)
let rec to_trace (n : node) : Tango_obs.Trace.span =
  let open Tango_obs.Trace in
  make (kind_name n) ~elapsed_us:n.elapsed_us
    ~attrs:
      [
        ("tuples", Int n.out_tuples);
        ("bytes", Int (int_of_float n.out_bytes));
        ("page_reads", Int n.page_reads);
        ("roundtrips", Int n.roundtrips);
      ]
    ~children:(List.map to_trace (children n))

let rec pp ?(indent = 0) ppf (n : node) =
  let pp_deps deps =
    List.iter
      (fun d ->
        Fmt.pf ppf "%s  after loading %s via TRANSFER^D:@."
          (String.make indent ' ') d.table;
        pp ~indent:(indent + 4) ppf d.source)
      deps
  in
  (match n.kind with
  | Transfer_m { sql; deps } ->
      Fmt.pf ppf "%sTRANSFER^M@.%s  SQL: %s@." (String.make indent ' ')
        (String.make indent ' ')
        (Printer.query_to_sql sql);
      pp_deps deps
  | Scatter { sql; deps; shard_names; _ } ->
      Fmt.pf ppf "%sSCATTER^M {%s}@.%s  SQL: %s@." (String.make indent ' ')
        (String.concat "," shard_names)
        (String.make indent ' ')
        (Printer.query_to_sql sql);
      pp_deps deps
  | _ ->
      Fmt.pf ppf "%s%s@." (String.make indent ' ') (kind_name n);
      List.iter (pp ~indent:(indent + 2) ppf) (children n))

let to_string n = Fmt.str "%a" (pp ~indent:0) n
