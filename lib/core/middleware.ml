(** TANGO — the temporal middleware session (paper Figure 1).

    A session owns a client connection to the conventional DBMS and drives
    the full pipeline:

    + parse temporal SQL into the initial plan (all processing in the DBMS,
      one [T^M] on top) — {!Tango_tsql.Compile};
    + collect statistics from the DBMS catalog — {!Tango_stats.Collector};
    + calibrate cost factors — {!Tango_cost.Calibrate};
    + optimize: transformation rules + cost-based physical search —
      {!Tango_volcano.Search};
    + translate DBMS-resident parts to SQL and execute the plan through the
      iterator engine — {!Exec_plan};
    + optionally adapt cost factors from measured per-algorithm times
      (the paper's performance-feedback loop). *)

open Tango_rel
open Tango_algebra
open Tango_stats
open Tango_cost
open Tango_volcano
open Tango_dbms

(* ------------------------------------------------------------------ *)
(* Session configuration                                                 *)
(* ------------------------------------------------------------------ *)

module Config = struct
  type verify_mode = Verify_off | Verify_final | Verify_per_rule

  type t = {
    row_prefetch : int;
    roundtrip_spin : int;
    selectivity_mode : Selectivity.mode;
    histograms : bool;
    feedback : bool;
    feedback_alpha : float;
    max_memo_elements : int;
    share_transfers : bool;
    tracing : bool;
    profiling : bool;
    adaptive_costs : bool;
    slow_query_threshold_us : float;
    verify_plans : verify_mode;
    plan_cache : bool;
    plan_cache_capacity : int;
    auto_parameterize : bool;
    param_buckets : int;
    replan_q_error : float;
    batch_execution : bool;
    telemetry : bool;
  }

  let default =
    {
      row_prefetch = Client.default_row_prefetch;
      roundtrip_spin = Client.default_roundtrip_spin;
      selectivity_mode = Selectivity.Temporal;
      histograms = true;
      feedback = false;
      feedback_alpha = 0.3;
      max_memo_elements = 5_000;
      share_transfers = true;
      tracing = false;
      profiling = false;
      adaptive_costs = false;
      slow_query_threshold_us = 0.0;
      verify_plans = Verify_off;
      plan_cache = false;
      plan_cache_capacity = 128;
      auto_parameterize = true;
      param_buckets = 8;
      replan_q_error = 0.0;
      batch_execution = true;
      telemetry = true;
    }

  let with_row_prefetch n c = { c with row_prefetch = n }
  let with_roundtrip_spin n c = { c with roundtrip_spin = n }
  let with_selectivity_mode m c = { c with selectivity_mode = m }
  let with_histograms b c = { c with histograms = b }
  let with_feedback ?alpha b c =
    {
      c with
      feedback = b;
      feedback_alpha = Option.value ~default:c.feedback_alpha alpha;
    }
  let with_max_memo_elements n c = { c with max_memo_elements = n }
  let with_transfer_sharing b c = { c with share_transfers = b }
  let with_tracing b c = { c with tracing = b }

  let with_profiling b c = { c with profiling = b }

  let with_adaptive_costs b c =
    (* adaptation consumes profiling records, so it implies them *)
    { c with adaptive_costs = b; profiling = b || c.profiling }

  let with_slow_query_threshold us c =
    { c with slow_query_threshold_us = us; profiling = (us > 0.0) || c.profiling }

  let with_verify_plans m c = { c with verify_plans = m }

  let with_plan_cache ?capacity b c =
    {
      c with
      plan_cache = b;
      plan_cache_capacity =
        Option.value ~default:c.plan_cache_capacity capacity;
    }

  let with_auto_parameterize b c = { c with auto_parameterize = b }
  let with_param_buckets n c = { c with param_buckets = max 1 n }

  let with_replan_q_error q c =
    (* the guard judges plans by their measured q-errors, so it needs the
       per-execution analysis *)
    { c with replan_q_error = q; profiling = (q > 0.0) || c.profiling }

  let with_batching b c = { c with batch_execution = b }
  let with_telemetry b c = { c with telemetry = b }
end

module Ast = Tango_sql.Ast
module Parameterize = Tango_sql.Parameterize

(* What the plan cache stores for a query text: everything needed to skip
   parse + optimize on a hit.  Translation (Exec_plan.of_physical) still
   runs per execution — temp-table names must be fresh.

   Template entries (keyed on parameterized text) additionally carry the
   initial logical plan (for sensitivity-guard re-optimization under a
   binding), the parameterized comparison slots the guard buckets on, and
   the per-bucket region plans it has accumulated.  Exact entries leave
   all three empty. *)
type cache_entry = {
  cached_physical : Physical.plan;
  cached_required_order : Order.t;
  cached_classes : int;
  cached_elements : int;
  cached_diagnostics : Tango_verify.Diag.t list;
  cached_generation : int;  (* DBMS schema generation at plan time *)
  cached_topology_gen : int;  (* topology generation at plan time *)
  cached_fp : string;  (* query fingerprint, for the sentinel *)
  cached_template : Op.t option;  (* initial plan with parameters intact *)
  cached_slots : (Rel_stats.t * string * Ast.binop * int) list;
      (* (input stats, attr, op, $n) per parameterized comparison *)
  cached_buckets : (string * Physical.plan) list;
      (* selectivity-region plans the guard re-optimized; still templates *)
}

(* Plan-cache outcome attached to a report (only for {!query} with the
   cache enabled). *)
type cache_report = {
  cache_hit : bool;  (** this query was answered from the cache *)
  cache_class : string;  (** ["template-hit"] | ["exact-hit"] | ["miss"] *)
  cache_hits : int;  (** session totals since connect *)
  cache_template_hits : int;
  cache_exact_hits : int;
  cache_misses : int;
  cache_invalidations : int;
  cache_replans : int;  (** sensitivity-guard re-optimizations *)
  cache_entries : int;  (** entries resident after this query *)
}

(* Per-backend latency attribution, as collected by the transfer/gather
   layers during one execution ({!Tango_xxl.Attribution}). *)
type backend_breakdown = Tango_xxl.Attribution.breakdown = {
  rows : int;
  bytes : int;
  us : float;
  wait_us : float;
  alloc_bytes : int;
}

(* Where one run's allocation went, mirroring the wall-time breakdown:
   the four measured phases carry full GC deltas; the transfer share is
   the Σ of per-backend boundary allocation, and [mw_exec_alloc_bytes]
   is the remainder of the execute delta — allocation by
   middleware-resident operators. *)
type phase_resources = {
  parse_res : Tango_obs.Runtime.delta;
  optimize_res : Tango_obs.Runtime.delta;
  translate_res : Tango_obs.Runtime.delta;
  execute_res : Tango_obs.Runtime.delta;
  transfer_alloc_bytes : int;  (** Σ backend boundary allocation *)
  mw_exec_alloc_bytes : int;  (** execute alloc − transfer alloc, clamped *)
}

let no_resources =
  {
    parse_res = Tango_obs.Runtime.zero;
    optimize_res = Tango_obs.Runtime.zero;
    translate_res = Tango_obs.Runtime.zero;
    execute_res = Tango_obs.Runtime.zero;
    transfer_alloc_bytes = 0;
    mw_exec_alloc_bytes = 0;
  }

(* Where one pipeline run's wall time went, phase by phase.  The first
   four are measured directly; [transfer_us]/[gather_wait_us] are the
   per-backend attribution totals, and [mw_exec_us] is the remainder of
   [execute_us] — middleware-resident operator work.  parse + optimize +
   translate + mw-exec + transfer + gather-wait ≈ pipeline wall time. *)
type phases = {
  parse_us : float;
  optimize_us : float;
  translate_us : float;
  execute_us : float;  (** whole execution (= the last three summands) *)
  transfer_us : float;  (** Σ backend transfer time *)
  gather_wait_us : float;  (** Σ gather-merge blocked time *)
  mw_exec_us : float;  (** execute − transfer − gather-wait, clamped *)
  res : phase_resources;  (** per-phase GC/allocation attribution *)
}

let no_phases =
  {
    parse_us = 0.0;
    optimize_us = 0.0;
    translate_us = 0.0;
    execute_us = 0.0;
    transfer_us = 0.0;
    gather_wait_us = 0.0;
    mw_exec_us = 0.0;
    res = no_resources;
  }

let make_phases ?(parse_us = 0.0) ?(optimize_us = 0.0)
    ?(parse_res = Tango_obs.Runtime.zero) ?(optimize_res = Tango_obs.Runtime.zero)
    ?(translate_res = Tango_obs.Runtime.zero)
    ?(execute_res = Tango_obs.Runtime.zero) ~translate_us ~execute_us
    (backends : (string * backend_breakdown) list) : phases =
  let t = Tango_xxl.Attribution.totals backends in
  {
    parse_us;
    optimize_us;
    translate_us;
    execute_us;
    transfer_us = t.us;
    gather_wait_us = t.wait_us;
    mw_exec_us = Float.max 0.0 (execute_us -. t.us -. t.wait_us);
    res =
      {
        parse_res;
        optimize_res;
        translate_res;
        execute_res;
        transfer_alloc_bytes = t.alloc_bytes;
        mw_exec_alloc_bytes =
          max 0 (execute_res.Tango_obs.Runtime.alloc_bytes - t.alloc_bytes);
      };
  }

(* The execution report, defined ahead of the session type so pipeline
   events (which carry one) can be observed through a session field. *)
type report = {
  result : Relation.t;
  physical : Physical.plan;
  exec : Exec_plan.node;
  optimize_us : float;
  execute_us : float;
  classes : int;
  elements : int;
  estimated_cost_us : float;
  trace : Tango_obs.Trace.span option;
  analysis : Tango_profile.Analyze.report option;
  diagnostics : Tango_verify.Diag.t list;
  cache : cache_report option;
  phases : phases;
  backends : (string * backend_breakdown) list;
      (** per-backend latency attribution, first-touched first *)
}

(* One top-level pipeline run ({!query} / {!run_plan} / {!run_fixed}),
   successful or not — the feed for monitoring (event logs, SLO engines). *)
type query_event = {
  kind : string;  (** ["query"] | ["run_plan"] | ["run_fixed"] *)
  sql : string option;  (** the temporal SQL text, for {!query} *)
  started_us : float;  (** wall clock ({!Tango_obs.now_us}) at entry *)
  elapsed_us : float;  (** total pipeline wall time, parse to result *)
  cache_hit : bool;  (** answered from the plan cache (no parse/optimize) *)
  cache_class : string;
      (** ["template-hit"] | ["exact-hit"] | ["miss"]; [""] when the run
          was not a cache-eligible query *)
  report : report option;  (** [None] when the pipeline raised *)
  error : string option;  (** the exception text when the pipeline raised *)
  backends : (string * backend_breakdown) list;
      (** the report's per-backend attribution; [[]] when the pipeline
          raised *)
  resources : Tango_obs.Runtime.delta;
      (** whole-pipeline GC/allocation delta on the serving domain
          (zero when telemetry is off) *)
}

type t = {
  topology : Topology.t;
  factors : Factors.t;
  backend_factors : Tango_profile.Backend_factors.t;
  mutable plan_cache : cache_entry Tango_cache.Plan_cache.t;
  mutable config : Config.t;
  mutable last_trace : Tango_obs.Trace.span option;
  mutable last_analysis : Tango_profile.Analyze.report option;
  mutable last_diagnostics : Tango_verify.Diag.t list;
  mutable query_observer : (query_event -> unit) option;
  profile : Tango_profile.Feedback.t;
  sentinel : Tango_profile.Sentinel.t;
  stats_cache : (string * string, Rel_stats.t) Hashtbl.t;
}

(** Attach a session to an existing topology ({!Topology.single} for the
    classical one-DBMS architecture, or a sharded one from the loaders). *)
let connect_topology ?(config = Config.default) (topology : Topology.t) : t =
  let factors = Factors.default () in
  {
    topology;
    factors;
    backend_factors =
      Tango_profile.Backend_factors.create ~base:(fun () -> factors);
    plan_cache =
      Tango_cache.Plan_cache.create
        ~capacity:config.Config.plan_cache_capacity ();
    config;
    last_trace = None;
    last_analysis = None;
    last_diagnostics = [];
    query_observer = None;
    profile = Tango_profile.Feedback.create ();
    sentinel = Tango_profile.Sentinel.create ();
    stats_cache = Hashtbl.create 16;
  }

let connect ?(config = Config.default) ?row_prefetch ?roundtrip_spin
    (db : Database.t) : t =
  let config =
    {
      config with
      Config.row_prefetch =
        Option.value ~default:config.Config.row_prefetch row_prefetch;
      roundtrip_spin =
        Option.value ~default:config.Config.roundtrip_spin roundtrip_spin;
    }
  in
  connect_topology ~config
    (Topology.single
       (Backend.in_process ~row_prefetch:config.Config.row_prefetch
          ~roundtrip_spin:config.Config.roundtrip_spin db))

let topology t = t.topology
let primary t = Topology.primary t.topology

let client t =
  match Backend.client (primary t) with
  | Some c -> c
  | None -> invalid_arg "Middleware.client: primary backend is not in-process"

let database t =
  match Backend.database (primary t) with
  | Some db -> db
  | None ->
      invalid_arg "Middleware.database: primary backend is not in-process"

let factors t = t.factors
let backend_factors t = t.backend_factors
let config t = t.config
let last_trace t = t.last_trace
let last_analysis t = t.last_analysis
let last_diagnostics t = t.last_diagnostics
let profile_store t = t.profile
let sentinel t = t.sentinel
let set_query_observer t obs = t.query_observer <- obs

(* Plan-cache helpers.  Any change that can alter which plan is best for a
   cached query flushes the whole cache (coarse, always sound). *)
let invalidate_plan_cache t ~reason =
  if Tango_cache.Plan_cache.length t.plan_cache > 0 then
    Tango_cache.Plan_cache.invalidate_all ~reason t.plan_cache

let plan_cache_stats t = Tango_cache.Plan_cache.stats t.plan_cache

let set_config t (c : Config.t) =
  if c.Config.histograms <> t.config.Config.histograms then begin
    Hashtbl.reset t.stats_cache;
    invalidate_plan_cache t ~reason:"config-histograms"
  end;
  if c.Config.plan_cache_capacity <> t.config.Config.plan_cache_capacity then
    t.plan_cache <-
      Tango_cache.Plan_cache.create ~capacity:c.Config.plan_cache_capacity ();
  (* row_prefetch / roundtrip_spin do apply to the live backends — but
     only when changed: backends of a sharded topology may carry their own
     per-shard settings the session config knows nothing about *)
  if c.Config.row_prefetch <> t.config.Config.row_prefetch then
    List.iter
      (fun b -> Backend.set_row_prefetch b c.Config.row_prefetch)
      (Topology.backends t.topology);
  if c.Config.roundtrip_spin <> t.config.Config.roundtrip_spin then
    List.iter
      (fun b -> Backend.set_roundtrip_spin b c.Config.roundtrip_spin)
      (Topology.backends t.topology);
  t.config <- c

(** Run cost-factor calibration against every connected backend; each
    backend's measured factors are stored under its name (the cost-factor
    handle), and the primary's are adopted as the session's globals. *)
let calibrate ?sizes t =
  let prim = primary t in
  List.iter
    (fun b ->
      match Backend.client b with
      | None -> ()  (* nothing to microbenchmark against *)
      | Some c ->
          let measured = Calibrate.run ?sizes c in
          Tango_profile.Backend_factors.set t.backend_factors (Backend.name b)
            measured;
          if b == prim then Factors.blend ~alpha:1.0 t.factors measured)
    (Topology.backends t.topology);
  invalidate_plan_cache t ~reason:"calibrate"

(** Adopt previously calibrated factors (e.g. shared across sessions against
    the same DBMS installation). *)
let adopt_factors t (f : Factors.t) =
  Factors.blend ~alpha:1.0 t.factors f;
  invalidate_plan_cache t ~reason:"adopt-factors"

(** Invalidate cached statistics (after loads or ANALYZE); cached plans
    were chosen under the old statistics and go with them. *)
let refresh_statistics t =
  Hashtbl.reset t.stats_cache;
  invalidate_plan_cache t ~reason:"stats-refresh"

(* The Statistics Collector hook used for optimization.  For the
   partitioned table the per-shard catalogs are merged into whole-table
   statistics ({!Rel_stats.merge}); everything else is replicated, so the
   primary's catalog is authoritative. *)
let base_stats t ~qualifier table : Rel_stats.t =
  match Hashtbl.find_opt t.stats_cache (qualifier, table) with
  | Some s -> s
  | None ->
      let histograms = if t.config.Config.histograms then `All else `None in
      let collect db = Collector.collect ~histograms db ~qualifier table in
      let s =
        match Topology.partitioned_table t.topology with
        | Some (ptable, _)
          when Topology.is_sharded t.topology && String.equal ptable table -> (
            match
              List.filter_map Backend.database (Topology.backends t.topology)
            with
            | [] -> collect (database t)
            | dbs -> Rel_stats.merge (List.map collect dbs))
        | _ -> collect (database t)
      in
      Hashtbl.replace t.stats_cache (qualifier, table) s;
      s

let stats_env ?binding t : Derive.env =
  Derive.env ~mode:t.config.Config.selectivity_mode ?binding
    (fun ~qualifier table -> base_stats t ~qualifier table)

let schema_lookup t name = Database.table_schema (database t) name

(* The optimizer's view of the topology: shard names and numeric bounds
   on the partition column.  [None] for a classical single-DBMS session. *)
let partition_layout t : Partition.layout option =
  match Topology.partitioned_table t.topology with
  | Some (table, column) when Topology.is_sharded t.topology ->
      Some
        {
          Partition.table;
          column;
          shards =
            List.map
              (fun (b, (bounds : Topology.bounds)) ->
                {
                  Partition.shard_name = Backend.name b;
                  lo = Option.map float_of_int bounds.Topology.lo;
                  hi = Option.map float_of_int bounds.Topology.hi;
                })
              (Topology.shards t.topology);
          generation = Topology.generation t.topology;
        }
  | _ -> None

let shard_factors t name = Tango_profile.Backend_factors.get t.backend_factors name

(* Log source for the middleware pipeline; enable with
   [Logs.Src.set_level Middleware.log_src (Some Logs.Debug)]. *)
let log_src = Logs.Src.create "tango.middleware" ~doc:"TANGO middleware pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Optimization                                                          *)
(* ------------------------------------------------------------------ *)

(* Verify a chosen plan against the query's required root properties,
   per the session's [verify_plans] mode. *)
let verify_final t ~(required_order : Order.t) (physical : Physical.plan) :
    Tango_verify.Diag.t list =
  match t.config.Config.verify_plans with
  | Config.Verify_off -> []
  | Config.Verify_final | Config.Verify_per_rule ->
      Tango_verify.Check.check_physical ~stats_env:(stats_env t)
        ?partition:(partition_layout t)
        ~required:{ Physical.loc = Op.Mw; order = required_order }
        physical

let log_diagnostics diags =
  List.iter
    (fun d ->
      if Tango_verify.Diag.is_error d then
        Log.warn (fun m -> m "verify: %s" (Tango_verify.Diag.to_string d)))
    diags

(** Optimize an initial algebra plan (which must already carry its top
    [T^M]).  When the session's [verify_plans] mode is on, the final plan
    (and, per-rule, every saturation step) is verified; findings land in
    {!last_diagnostics}. *)
let optimize t ?(required_order : Order.t = []) ?binding (initial : Op.t) :
    Search.result =
  let gate =
    match t.config.Config.verify_plans with
    | Config.Verify_per_rule -> Some (Tango_verify.Gate.create ())
    | Config.Verify_off | Config.Verify_final -> None
  in
  let rule_observer =
    Option.map
      (fun g ~rule m c -> Tango_verify.Gate.observer g ~rule m c)
      gate
  in
  let partition = partition_layout t in
  let r =
    Search.optimize ~factors:t.factors ~stats_env:(stats_env ?binding t)
      ~required_order
      ~max_elements:t.config.Config.max_memo_elements ?rule_observer ?partition
      ~shard_factors:(shard_factors t) initial
  in
  (* partition pruning: drop shards the query's period predicates exclude *)
  let r =
    match (partition, r.Search.plan) with
    | Some layout, Some plan ->
        { r with Search.plan = Some (Physical.prune_scatter layout plan) }
    | _ -> r
  in
  let diags =
    (match gate with Some g -> Tango_verify.Gate.diagnostics g | None -> [])
    @
    match r.Search.plan with
    | Some physical -> verify_final t ~required_order physical
    | None -> []
  in
  log_diagnostics diags;
  t.last_diagnostics <- diags;
  r

(** Cost a fixed plan without exploring alternatives. *)
let cost_plan t ?(required_order : Order.t = []) (plan : Op.t) :
    Physical.plan option =
  let partition = partition_layout t in
  Search.cost_plan ~factors:t.factors ~stats_env:(stats_env t) ~required_order
    ?partition ~shard_factors:(shard_factors t) plan
  |> Option.map (fun p ->
         match partition with
         | Some layout -> Physical.prune_scatter layout p
         | None -> p)

(* ------------------------------------------------------------------ *)
(* Execution                                                             *)
(* ------------------------------------------------------------------ *)

let now_us () = Tango_obs.now_us ()

(* Durations below are monotonic-clock differences; [now_us] (wall) is
   kept only for the [started_us] timestamp observers export. *)
let mono_us () = Tango_obs.mono_us ()

let telemetry_on t = t.config.Config.telemetry

(* GC capture around a phase, gated so telemetry-off pays one branch. *)
let gc_point enabled = if enabled then Some (Tango_obs.Runtime.point ()) else None

let gc_delta = function
  | Some p -> Tango_obs.Runtime.delta_since p
  | None -> Tango_obs.Runtime.zero

(* Process-wide allocation/GC accounting, fed once per top-level run.
   Dotted names render as [tango_alloc_*] / [tango_gc_*] families. *)
let c_alloc_bytes = Tango_obs.Counter.make "alloc.bytes"
let c_gc_minor = Tango_obs.Counter.make "gc.minor_collections"
let c_gc_major = Tango_obs.Counter.make "gc.major_collections"
let c_gc_promoted = Tango_obs.Counter.make "gc.promoted_words"
let c_alloc_parse = Tango_obs.Counter.make "alloc.parse_bytes"
let c_alloc_optimize = Tango_obs.Counter.make "alloc.optimize_bytes"
let c_alloc_translate = Tango_obs.Counter.make "alloc.translate_bytes"
let c_alloc_transfer = Tango_obs.Counter.make "alloc.transfer_bytes"
let c_alloc_mw_exec = Tango_obs.Counter.make "alloc.mw_exec_bytes"

exception No_plan of string

(* Feed the process-wide allocation/GC counters and the per-domain
   table with one completed run's resource usage. *)
let account_resources report (res : Tango_obs.Runtime.delta) =
  Tango_obs.Counter.add c_alloc_bytes res.Tango_obs.Runtime.alloc_bytes;
  Tango_obs.Counter.add c_gc_minor res.Tango_obs.Runtime.minor_collections;
  Tango_obs.Counter.add c_gc_major res.Tango_obs.Runtime.major_collections;
  Tango_obs.Counter.add c_gc_promoted res.Tango_obs.Runtime.promoted_words;
  (match report with
  | None -> ()
  | Some r ->
      let p = r.phases.res in
      Tango_obs.Counter.add c_alloc_parse
        p.parse_res.Tango_obs.Runtime.alloc_bytes;
      Tango_obs.Counter.add c_alloc_optimize
        p.optimize_res.Tango_obs.Runtime.alloc_bytes;
      Tango_obs.Counter.add c_alloc_translate
        p.translate_res.Tango_obs.Runtime.alloc_bytes;
      Tango_obs.Counter.add c_alloc_transfer p.transfer_alloc_bytes;
      Tango_obs.Counter.add c_alloc_mw_exec p.mw_exec_alloc_bytes);
  Tango_obs.Runtime.touch ()

(* Notify the session's query observer (if any) of one top-level pipeline
   run.  Observer failures are swallowed: monitoring must never break the
   query path.  With telemetry on, the whole-run GC delta is measured
   and accounted here whether or not an observer is attached. *)
let observed t ~kind ?sql (f : unit -> report) : report =
  let g0 = gc_point (telemetry_on t) in
  match t.query_observer with
  | None -> (
      match f () with
      | r ->
          if telemetry_on t then account_resources (Some r) (gc_delta g0);
          r
      | exception e ->
          if telemetry_on t then account_resources None (gc_delta g0);
          raise e)
  | Some notify ->
      let started_us = now_us () in
      let m0 = mono_us () in
      let emit report error =
        let resources = gc_delta g0 in
        if telemetry_on t then account_resources report resources;
        let cache_hit, cache_class =
          match report with
          | Some { cache = Some c; _ } -> (c.cache_hit, c.cache_class)
          | _ -> (false, "")
        in
        let ev =
          {
            kind;
            sql;
            started_us;
            elapsed_us = mono_us () -. m0;
            cache_hit;
            cache_class;
            report;
            error;
            backends =
              (match report with Some r -> r.backends | None -> []);
            resources;
          }
        in
        try notify ev with _ -> ()
      in
      (match f () with
      | r ->
          emit (Some r) None;
          r
      | exception e ->
          emit None (Some (Printexc.to_string e));
          raise e)

(* Run a top-level pipeline entry under a fresh trace when the session asks
   for tracing.  Nested entries (e.g. [query] calling [run_plan]) see an
   already-active trace and only contribute a span. *)
let with_query_trace t name (f : unit -> report) : report =
  if not t.config.Config.tracing then begin
    t.last_trace <- None;
    f ()
  end
  else if Tango_obs.Trace.active () then Tango_obs.Trace.span name f
  else begin
    Tango_obs.Trace.start ();
    match Tango_obs.Trace.span name f with
    | r ->
        let tr = Tango_obs.Trace.finish () in
        t.last_trace <- tr;
        { r with trace = tr }
    | exception e ->
        ignore (Tango_obs.Trace.finish ());
        raise e
  end

(* Feedback: turn measured per-node times into factor observations and
   blend them in.  Dividing TRANSFER^M time between the transfer and the
   DBMS work below it is not possible from out here (the paper calls this
   an "interesting challenge"), so the whole time is attributed to the
   transfer factor. *)
let apply_feedback t (root : Exec_plan.node) =
  let observed = Factors.copy t.factors in
  let sum_children n =
    List.fold_left
      (fun acc (c : Exec_plan.node) -> acc +. c.Exec_plan.elapsed_us)
      0.0 (Exec_plan.children n)
  in
  let in_bytes n =
    match Exec_plan.children n with
    | [] -> n.Exec_plan.out_bytes
    | cs ->
        List.fold_left
          (fun acc (c : Exec_plan.node) -> acc +. c.Exec_plan.out_bytes)
          0.0 cs
  in
  Exec_plan.iter
    (fun n ->
      let own = Float.max 0.0 (n.Exec_plan.elapsed_us -. sum_children n) in
      let ib = Float.max 1.0 (in_bytes n) in
      let ob = Float.max 1.0 n.Exec_plan.out_bytes in
      match n.Exec_plan.kind with
      | Exec_plan.Transfer_m _ | Exec_plan.Scatter _ ->
          observed.Factors.p_tm <- own /. ob
      | Exec_plan.Sort _ ->
          observed.Factors.p_sortm <-
            own /. (ib *. Formulas.sort_levels ~size:ib)
      | Exec_plan.Filter _ -> observed.Factors.p_sem <- own /. ib
      | Exec_plan.Project _ -> observed.Factors.p_pm <- own /. ib
      | Exec_plan.Taggr _ -> observed.Factors.p_taggm1 <- own /. ib
      | Exec_plan.Merge_join _ -> observed.Factors.p_mjm1 <- own /. ib
      | Exec_plan.Tjoin _ -> observed.Factors.p_tjm1 <- own /. ib
      | Exec_plan.Sort_noop _ | Exec_plan.Dupelim _ | Exec_plan.Coalesce _
      | Exec_plan.Difference _ ->
          ())
    root;
  Factors.blend ~alpha:t.config.Config.feedback_alpha t.factors observed;
  Log.debug (fun m -> m "feedback: %a" Factors.pp t.factors)

(** Execute a chosen physical plan; returns the result, measured times,
    the translate phase time, the per-backend latency attribution, and
    the translate/execute GC deltas.  Temp tables created by
    `TRANSFER^D` steps are dropped afterwards. *)
let execute_physical_full t (physical : Physical.plan) :
    Relation.t
    * Exec_plan.node
    * float
    * float
    * (string * backend_breakdown) list
    * Tango_obs.Runtime.delta
    * Tango_obs.Runtime.delta =
  let telemetry = telemetry_on t in
  let tr0 = mono_us () in
  let g_tr = gc_point telemetry in
  let exec, temp_tables =
    Tango_obs.Trace.span "translate" (fun () ->
        Exec_plan.of_physical (database t) physical)
  in
  let translate_res = gc_delta g_tr in
  let translate_us = mono_us () -. tr0 in
  let collector = Tango_xxl.Attribution.create () in
  let g_ex = gc_point telemetry in
  let t0 = mono_us () in
  let result =
    Tango_obs.Trace.span "execute" (fun () ->
        Fun.protect
          ~finally:(fun () ->
            (* temp tables were replicated to every backend *)
            List.iter
              (fun tbl ->
                List.iter
                  (fun b -> Tango_xxl.Transfer.drop_temp_table b tbl)
                  (Topology.backends t.topology))
              temp_tables)
          (fun () ->
            Tango_xxl.Attribution.with_collector collector (fun () ->
                let ctx =
                  Exec_plan.run_ctx
                    ~share_transfers:t.config.Config.share_transfers
                    ~batching:t.config.Config.batch_execution t.topology
                in
                let r =
                  Tango_xxl.Cursor.to_relation
                    (Exec_plan.build_cursor ctx exec)
                in
                Tango_obs.Trace.attr "tuples"
                  (Tango_obs.Trace.Int (Relation.cardinality r));
                (* graft the measured operator tree under the execute
                   span *)
                Tango_obs.Trace.graft (Exec_plan.to_trace exec);
                r)))
  in
  let elapsed = mono_us () -. t0 in
  let execute_res = gc_delta g_ex in
  if t.config.Config.feedback then apply_feedback t exec;
  ( result,
    exec,
    elapsed,
    translate_us,
    Tango_xxl.Attribution.breakdown collector,
    translate_res,
    execute_res )

let execute_physical t (physical : Physical.plan) :
    Relation.t * Exec_plan.node * float =
  let result, exec, elapsed, _translate_us, _backends, _tres, _eres =
    execute_physical_full t physical
  in
  (result, exec, elapsed)

(* The profiling hook (after execution): pair the chosen physical plan
   with the measured operator trace, fold the per-operator est-vs-actual
   records into the feedback store, maybe refit cost factors, and pass
   the execution by the plan-regression sentinel.  [query_fingerprint]
   identifies the {e query} (pre-optimization), so the sentinel can
   compare plan choices across executions of the same query; on a
   plan-cache hit it comes from the cache entry. *)
let profile_execution t ~(query_fingerprint : string)
    (physical : Physical.plan) (exec : Exec_plan.node) ~execute_us :
    Tango_profile.Analyze.report option =
  if not t.config.Config.profiling then begin
    t.last_analysis <- None;
    None
  end
  else begin
    let analysis =
      Tango_profile.Analyze.analyze ~stats_env:(stats_env t)
        ~factors:t.factors ~row_prefetch:t.config.Config.row_prefetch physical
        (Exec_plan.to_trace exec)
    in
    Tango_profile.Feedback.record t.profile analysis;
    if t.config.Config.adaptive_costs then
      (match Tango_profile.Adapt.maybe_refit t.profile ~factors:t.factors with
      | Some refitted ->
          Log.info (fun m ->
              m "adaptive costs: refitted %s" (String.concat ", " refitted));
          (* refitted factors re-rank plans: cached choices are stale *)
          invalidate_plan_cache t ~reason:"cost-refit"
      | None -> ());
    ignore
      (Tango_profile.Sentinel.observe t.sentinel
         ~fingerprint:query_fingerprint
         ~signature:(Physical.signature physical)
         ~slow_threshold_us:t.config.Config.slow_query_threshold_us
         ~elapsed_us:execute_us ());
    t.last_analysis <- Some analysis;
    Some analysis
  end

(* The shared optimize-then-execute body; the caller owns the trace.
   [parse_us] is the parse phase time when the caller parsed SQL;
   [parse_res] its GC delta. *)
let run_plan_body t ?(parse_us = 0.0)
    ?(parse_res = Tango_obs.Runtime.zero) ?(required_order : Order.t = [])
    (initial : Op.t) : report =
  let g_opt = gc_point (telemetry_on t) in
  let r =
    Tango_obs.Trace.span "optimize" (fun () ->
        let r = optimize t ~required_order initial in
        Tango_obs.Trace.attr "classes" (Tango_obs.Trace.Int r.Search.classes);
        Tango_obs.Trace.attr "elements" (Tango_obs.Trace.Int r.Search.elements);
        r)
  in
  let optimize_res = gc_delta g_opt in
  match r.Search.plan with
  | None -> raise (No_plan "optimizer found no feasible plan")
  | Some physical ->
      Log.debug (fun m ->
          m "optimized in %.1f ms (%d classes, %d elements): %s est=%.0fus"
            (r.Search.time_us /. 1000.0) r.Search.classes r.Search.elements
            (Physical.signature physical) physical.Physical.total_cost);
      let result, exec, execute_us, translate_us, backends, translate_res,
          execute_res =
        execute_physical_full t physical
      in
      Log.info (fun m ->
          m "executed %s: %d tuples in %.1f ms (estimated %.1f ms)"
            (Physical.algorithm_name physical.Physical.algorithm)
            (Relation.cardinality result) (execute_us /. 1000.0)
            (physical.Physical.total_cost /. 1000.0));
      let analysis =
        profile_execution t
          ~query_fingerprint:(Physical.op_fingerprint initial)
          physical exec ~execute_us
      in
      {
        result;
        physical;
        exec;
        optimize_us = r.Search.time_us;
        execute_us;
        classes = r.Search.classes;
        elements = r.Search.elements;
        estimated_cost_us = physical.Physical.total_cost;
        trace = None;
        analysis;
        diagnostics = t.last_diagnostics;
        cache = None;
        phases =
          make_phases ~parse_us ~optimize_us:r.Search.time_us ~parse_res
            ~optimize_res ~translate_res ~execute_res ~translate_us
            ~execute_us backends;
        backends;
      }

(** Optimize and execute an initial algebra plan. *)
let run_plan t ?required_order (initial : Op.t) : report =
  observed t ~kind:"run_plan" (fun () ->
      with_query_trace t "middleware.run_plan" (fun () ->
          run_plan_body t ?required_order initial))

(* Plan-cache lookup for {!query}.  A hit whose entry was planned under an
   older DBMS schema generation means DDL/ANALYZE happened behind our
   back: flush everything and report a miss. *)
let cache_find ?kind t (sql : string) : cache_entry option =
  if not t.config.Config.plan_cache then None
  else
    match Tango_cache.Plan_cache.find ?kind t.plan_cache ~sql with
    | Some entry
      when entry.cached_generation
           <> Database.schema_generation (database t) ->
        invalidate_plan_cache t ~reason:"ddl";
        None
    | Some entry
      when entry.cached_topology_gen <> Topology.generation t.topology ->
        (* the plan baked in a shard layout that no longer exists *)
        invalidate_plan_cache t ~reason:"topology";
        None
    | found -> found

let cache_report_now t ~cls : cache_report option =
  if not t.config.Config.plan_cache then None
  else
    let s = plan_cache_stats t in
    Some
      {
        cache_hit = not (String.equal cls "miss");
        cache_class = cls;
        cache_hits = s.Tango_cache.Plan_cache.hits;
        cache_template_hits = s.Tango_cache.Plan_cache.template_hits;
        cache_exact_hits = s.Tango_cache.Plan_cache.exact_hits;
        cache_misses = s.Tango_cache.Plan_cache.misses;
        cache_invalidations = s.Tango_cache.Plan_cache.invalidations;
        cache_replans = s.Tango_cache.Plan_cache.replans;
        cache_entries = Tango_cache.Plan_cache.length t.plan_cache;
      }

(* Execute an already-chosen plan under a cache entry's metadata — the
   common tail of both hit paths (no parse or optimize phases). *)
let finish_hit t ~(entry : cache_entry) ~(physical : Physical.plan) ~cls :
    report =
  Tango_obs.Trace.attr "cache" (Tango_obs.Trace.Str cls);
  Log.debug (fun m -> m "plan cache %s" cls);
  t.last_diagnostics <- entry.cached_diagnostics;
  let result, exec, execute_us, translate_us, backends, translate_res,
      execute_res =
    execute_physical_full t physical
  in
  let analysis =
    profile_execution t ~query_fingerprint:entry.cached_fp physical exec
      ~execute_us
  in
  {
    result;
    physical;
    exec;
    optimize_us = 0.0;
    execute_us;
    classes = entry.cached_classes;
    elements = entry.cached_elements;
    estimated_cost_us = physical.Physical.total_cost;
    trace = None;
    analysis;
    diagnostics = entry.cached_diagnostics;
    cache = cache_report_now t ~cls;
    phases =
      make_phases ~translate_res ~execute_res ~translate_us ~execute_us
        backends;
    backends;
  }

(* ------------------------------------------------------------------ *)
(* Parameterized queries: templates, binding, sensitivity buckets        *)
(* ------------------------------------------------------------------ *)

(* The parameterized comparison slots of a template's initial plan: for
   each selection conjunct [attr op $n], the statistics of the selection's
   input (so bind-time bucketing sees the same distribution the optimizer
   estimated against). *)
let param_slots t (initial : Op.t) :
    (Rel_stats.t * string * Ast.binop * int) list =
  let env = stats_env t in
  let slots = ref [] in
  let seen = Hashtbl.create 4 in
  let rec walk op =
    (match op with
    | Op.Select { pred; arg } -> (
        match Selectivity.param_bounds pred with
        | [] -> ()
        | bounds ->
            let s = try Some (Derive.derive env arg) with _ -> None in
            Option.iter
              (fun s ->
                List.iter
                  (fun (attr, bop, n) ->
                    if not (Hashtbl.mem seen n) then begin
                      Hashtbl.replace seen n ();
                      slots := (s, attr, bop, n) :: !slots
                    end)
                  bounds)
              s)
    | _ -> ());
    List.iter walk (Op.children op)
  in
  walk initial;
  List.rev !slots

(* Selectivity-region key of a binding: each slot's value is placed in
   its column's distribution (the estimated fraction of tuples below it,
   quantized to [param_buckets] buckets), so bindings with similar
   selectivity share a bucket — and a region plan.  Strings hash to a
   bucket directly; an unbindable slot contributes ["x"]. *)
let bucket_of t (slots : (Rel_stats.t * string * Ast.binop * int) list)
    (values : Value.t array) : string =
  let nb = max 1 t.config.Config.param_buckets in
  String.concat "_"
    (List.map
       (fun (s, attr, _op, n) ->
         if n < 1 || n > Array.length values then "x"
         else
           match values.(n - 1) with
           | Value.Null -> "x"
           | Value.Str _ as v ->
               Printf.sprintf "s%d" (Hashtbl.hash v mod nb)
           | v ->
               let frac =
                 Selectivity.conjunct_selectivity s
                   (Ast.Binop (Ast.Le, Ast.Col (None, attr), Ast.Lit v))
               in
               string_of_int
                 (min (nb - 1) (max 0 (int_of_float (frac *. float_of_int nb)))))
       slots)

(* Instantiate a plan template under a binding: substitute literals for
   parameters, then re-run partition pruning — the template was planned
   with parameterized period predicates unresolved (every shard kept),
   and the bound values may exclude shards. *)
let instantiate_for t (values : Value.t array) (template : Physical.plan) :
    Physical.plan =
  let p = Physical.instantiate values template in
  match partition_layout t with
  | Some layout -> Physical.prune_scatter layout p
  | None -> p

(* The parameter-sensitivity guard.  After a template hit executed the
   generic plan, compare its measured cardinality q-error against the
   threshold; past it, re-optimize the template with the binding's values
   closed in (value-specific selectivities) and store the result as this
   bucket's region plan.  The judgment is made once per bucket — even a
   region plan identical to the generic one is stored, recording "judged,
   generic is fine here". *)
let maybe_replan t ~(template : string) ~(entry : cache_entry)
    ~(bucket : string) ~(values : Value.t array)
    (analysis : Tango_profile.Analyze.report option) : unit =
  let thr = t.config.Config.replan_q_error in
  match analysis with
  | Some a
    when thr > 0.0
         && a.Tango_profile.Analyze.max_q_rows >= thr
         && (not (List.mem_assoc bucket entry.cached_buckets))
         && t.config.Config.plan_cache -> (
      match entry.cached_template with
      | None -> ()
      | Some initial -> (
          Log.info (fun m ->
              m "sensitivity guard: q_rows=%.1f >= %.1f, replanning bucket %s"
                a.Tango_profile.Analyze.max_q_rows thr bucket);
          let r =
            optimize t ~required_order:entry.cached_required_order
              ~binding:values initial
          in
          (* the replan's verification findings are its own; the serving
             query keeps the template's *)
          t.last_diagnostics <- entry.cached_diagnostics;
          match r.Search.plan with
          | Some region_plan ->
              Tango_cache.Plan_cache.add t.plan_cache ~sql:template
                {
                  entry with
                  cached_buckets =
                    (bucket, region_plan) :: entry.cached_buckets;
                };
              Tango_cache.Plan_cache.note_replan t.plan_cache ~sql:template
          | None -> ()))
  | _ -> ()

(* The template pipeline: look the parameterized text up as a template
   entry, pick the bucket's region plan (or the generic one), instantiate
   under the binding and execute.  On a miss, parse + optimize the
   *template* (parameters unresolved — generic estimates), cache it, then
   instantiate and execute. *)
let query_template_body t ~(template : string) ~(values : Value.t array) :
    report =
  match cache_find ~kind:Tango_cache.Plan_cache.Template t template with
  | Some entry ->
      let bucket = bucket_of t entry.cached_slots values in
      let template_plan =
        match List.assoc_opt bucket entry.cached_buckets with
        | Some region_plan -> region_plan
        | None -> entry.cached_physical
      in
      let physical = instantiate_for t values template_plan in
      let report = finish_hit t ~entry ~physical ~cls:"template-hit" in
      maybe_replan t ~template ~entry ~bucket ~values report.analysis;
      report
  | None -> (
      let p0 = mono_us () in
      let g_p = gc_point (telemetry_on t) in
      let initial, required_order =
        Tango_obs.Trace.span "parse" (fun () ->
            ( Tango_tsql.Compile.initial_plan ~lookup:(schema_lookup t)
                template,
              Tango_tsql.Compile.required_order template ))
      in
      let parse_res = gc_delta g_p in
      let parse_us = mono_us () -. p0 in
      let g_opt = gc_point (telemetry_on t) in
      let r =
        Tango_obs.Trace.span "optimize" (fun () ->
            let r = optimize t ~required_order initial in
            Tango_obs.Trace.attr "classes"
              (Tango_obs.Trace.Int r.Search.classes);
            Tango_obs.Trace.attr "elements"
              (Tango_obs.Trace.Int r.Search.elements);
            r)
      in
      let optimize_res = gc_delta g_opt in
      match r.Search.plan with
      | None -> raise (No_plan "optimizer found no feasible plan")
      | Some template_plan ->
          let fp = Physical.op_fingerprint initial in
          if t.config.Config.plan_cache then
            Tango_cache.Plan_cache.add t.plan_cache ~sql:template
              {
                cached_physical = template_plan;
                cached_required_order = required_order;
                cached_classes = r.Search.classes;
                cached_elements = r.Search.elements;
                cached_diagnostics = t.last_diagnostics;
                cached_generation = Database.schema_generation (database t);
                cached_topology_gen = Topology.generation t.topology;
                cached_fp = fp;
                cached_template = Some initial;
                cached_slots = param_slots t initial;
                cached_buckets = [];
              };
          let physical = instantiate_for t values template_plan in
          let result, exec, execute_us, translate_us, backends,
              translate_res, execute_res =
            execute_physical_full t physical
          in
          let analysis =
            profile_execution t ~query_fingerprint:fp physical exec
              ~execute_us
          in
          {
            result;
            physical;
            exec;
            optimize_us = r.Search.time_us;
            execute_us;
            classes = r.Search.classes;
            elements = r.Search.elements;
            estimated_cost_us = physical.Physical.total_cost;
            trace = None;
            analysis;
            diagnostics = t.last_diagnostics;
            cache = cache_report_now t ~cls:"miss";
            phases =
              make_phases ~parse_us ~optimize_us:r.Search.time_us ~parse_res
                ~optimize_res ~translate_res ~execute_res ~translate_us
                ~execute_us backends;
            backends;
          })

(* The exact pipeline — full text (literals included) as the cache key. *)
let query_exact_body t (sql : string) : report =
  match cache_find ~kind:Tango_cache.Plan_cache.Exact t sql with
  | Some entry ->
      finish_hit t ~entry ~physical:entry.cached_physical ~cls:"exact-hit"
  | None ->
      let p0 = mono_us () in
      let g_p = gc_point (telemetry_on t) in
      let initial, required_order =
        Tango_obs.Trace.span "parse" (fun () ->
            ( Tango_tsql.Compile.initial_plan ~lookup:(schema_lookup t) sql,
              Tango_tsql.Compile.required_order sql ))
      in
      let parse_res = gc_delta g_p in
      let parse_us = mono_us () -. p0 in
      let report =
        run_plan_body t ~parse_us ~parse_res ~required_order initial
      in
      if t.config.Config.plan_cache then
        Tango_cache.Plan_cache.add t.plan_cache ~sql
          {
            cached_physical = report.physical;
            cached_required_order = required_order;
            cached_classes = report.classes;
            cached_elements = report.elements;
            cached_diagnostics = report.diagnostics;
            cached_generation = Database.schema_generation (database t);
            cached_topology_gen = Topology.generation t.topology;
            cached_fp = Physical.op_fingerprint initial;
            cached_template = None;
            cached_slots = [];
            cached_buckets = [];
          };
      { report with cache = cache_report_now t ~cls:"miss" }

(** The full pipeline: temporal SQL in, relation out.  With the session's
    [plan_cache] on, a re-submitted query text skips parse and optimize
    entirely and executes the cached physical plan; with
    [auto_parameterize] additionally on, constant literals are folded
    into bind variables first, so literal-varying repetitions of one
    query shape share a single template entry. *)
let query t (sql : string) : report =
  Log.debug (fun m -> m "query: %s" sql);
  observed t ~kind:"query" ~sql (fun () ->
      with_query_trace t "middleware.query" (fun () ->
          let auto =
            if t.config.Config.plan_cache && t.config.Config.auto_parameterize
            then Parameterize.extract sql
            else None
          in
          match auto with
          | Some { Parameterize.template; values } ->
              query_template_body t ~template
                ~values:(Array.of_list values)
          | None -> query_exact_body t sql))

(** The parameterized pipeline: SQL carrying bind variables ([?] or
    [$n]) plus the values to bind, positionally.  The text is the cache
    key, so every binding of one statement shares a single template
    entry; the plan is instantiated under the binding at execution
    time. *)
let query_params t (sql : string) (values : Value.t list) : report =
  Log.debug (fun m ->
      m "query (%d params): %s" (List.length values) sql);
  match values with
  | [] -> query t sql
  | values ->
      observed t ~kind:"query" ~sql (fun () ->
          with_query_trace t "middleware.query" (fun () ->
              query_template_body t ~template:sql
                ~values:(Array.of_list values)))

(** Execute a {e fixed} plan tree (used by the experiments to time the
    paper's hand-enumerated plan alternatives). *)
let run_fixed t ?(required_order : Order.t = []) (plan_tree : Op.t) : report =
  observed t ~kind:"run_fixed" (fun () ->
      with_query_trace t "middleware.run_fixed" (fun () ->
      match cost_plan t ~required_order plan_tree with
      | None -> raise (No_plan "plan tree is not executable as written")
      | Some physical ->
          let diags = verify_final t ~required_order physical in
          log_diagnostics diags;
          t.last_diagnostics <- diags;
          let result, exec, execute_us, translate_us, backends, translate_res,
              execute_res =
            execute_physical_full t physical
          in
          let analysis =
            profile_execution t
              ~query_fingerprint:(Physical.op_fingerprint plan_tree) physical
              exec ~execute_us
          in
          {
            result;
            physical;
            exec;
            optimize_us = 0.0;
            execute_us;
            classes = 0;
            elements = 0;
            estimated_cost_us = physical.Physical.total_cost;
            trace = None;
            analysis;
            diagnostics = t.last_diagnostics;
            cache = None;
            phases =
              make_phases ~translate_res ~execute_res ~translate_us
                ~execute_us backends;
            backends;
          }))
