(** Transformation rules and heuristics (paper Section 4).

    Implemented rules:
    - {b Group 1}: T1 (temporal aggregation to middleware), T2/T3
      ((temporal) join to middleware), T1b/T1c/T1d (duplicate elimination,
      coalescing and difference — the §3.1 "additional algorithms"), T4–T6
      (σ/π/sort above [T^M]).
    - {b Group 2}: T7/T8 (transfer pairs cancel — class merges), T9
      (identity projection), T12 (subsumed sorts); T10/T11 are realized
      during physical planning.
    - {b Equivalences}: E1 (σ/π), E2 (join commutativity modulo a
      column-reordering projection), E3 (product associativity), E4/E5
      (sort/σ and sort/π, middleware side).
    - {b Group 3} (combine, from [20]): C1 merges adjacent selections, C2
      composes adjacent projections.
    - {b Group 4} (reduce expensive-operator arguments, from [20]): R1
      pushes side-resolvable conjuncts below joins/products, R2 pushes
      group-attribute conjuncts below ξᵀ, R3 seeds temporal-join arguments
      with the enclosing selection's time window. *)

open Tango_rel
open Tango_sql

val equi_pair :
  Schema.t -> Schema.t -> Ast.expr -> (string * string) option
(** Equi-join attribute pair resolvable on the given sides. *)

val taggr_order : Schema.t -> string list -> Order.t
(** The (G₁..Gₙ, T1) order `TAGGR^M` requires of its argument. *)

val find_item_by :
  ('a -> string option) -> 'a list -> string -> 'a option
(** Exact-then-unique-base-name item lookup, mirroring {!Schema.index}. *)

type rule = { name : string; apply : Memo.t -> int -> Memo.node -> bool }
(** [apply memo class element] returns whether the memo changed. *)

val all : rule list

type observer = rule:string -> Memo.t -> int -> unit
(** [f ~rule memo cls] is called after every successful rule application
    with the (canonical) class the rule changed — the hook behind the
    per-rule plan-verification gate ({!Tango_verify.Gate}). *)

val saturate :
  ?rules:rule list -> ?max_elements:int -> ?observer:observer -> Memo.t -> unit
(** Apply rules to fixpoint, bounded by [max_elements] (default 5000). *)
