(** Physical plan search (the optimizer's second phase, paper Section 2.1).

    For every memo class we find the cheapest physical plan satisfying a
    {e required property}: where the result must reside (DBMS or
    middleware) and which order it must have.  Each logical element admits
    one or more algorithms; an algorithm determines its own cost (via the
    cost formulas and the derived statistics), its output order, and the
    properties it requires of its inputs — e.g. `TAGGR^M` demands its
    argument middleware-resident and sorted on (grouping attributes, T1).

    Order bookkeeping implements the paper's rules T10/T11 physically: a
    sort whose input already has the needed order costs nothing
    ([Sort_passthrough]), and plans that sort where no order is required
    simply lose on cost. *)

open Tango_rel
open Tango_algebra
open Tango_stats
open Tango_cost

type algorithm =
  | Table_scan_d
  | Filter_d
  | Filter_m
  | Project_d
  | Project_m
  | Sort_d
  | Sort_m
  | Sort_passthrough  (** input already ordered — the physical T10/T11 *)
  | Join_d
  | Merge_join_m
  | Tjoin_d
  | Tjoin_m
  | Product_d
  | Taggr_d
  | Taggr_m
  | Dupelim_d
  | Dupelim_m
  | Coalesce_m
  | Difference_m
  | Transfer_m_algo
  | Transfer_d_algo
  | Scatter_gather_m
      (** partition-aware `T^M`: per-shard transfers merged by an ordered
          gather in the middleware *)

let algorithm_name = function
  | Table_scan_d -> "SCAN^D"
  | Filter_d -> "FILTER^D"
  | Filter_m -> "FILTER^M"
  | Project_d -> "PROJECT^D"
  | Project_m -> "PROJECT^M"
  | Sort_d -> "SORT^D"
  | Sort_m -> "SORT^M"
  | Sort_passthrough -> "SORT(noop)"
  | Join_d -> "JOIN^D"
  | Merge_join_m -> "MERGEJOIN^M"
  | Tjoin_d -> "TJOIN^D"
  | Tjoin_m -> "TJOIN^M"
  | Product_d -> "PRODUCT^D"
  | Taggr_d -> "TAGGR^D"
  | Taggr_m -> "TAGGR^M"
  | Dupelim_d -> "DUPELIM^D"
  | Dupelim_m -> "DUPELIM^M"
  | Coalesce_m -> "COALESCE^M"
  | Difference_m -> "DIFFERENCE^M"
  | Transfer_m_algo -> "TRANSFER^M"
  | Transfer_d_algo -> "TRANSFER^D"
  | Scatter_gather_m -> "SCATTER^M"

type plan = {
  algorithm : algorithm;
  op : Op.t;  (** logical operator with the chosen children substituted *)
  children : plan list;
  own_cost : float;  (** microseconds, this algorithm only *)
  total_cost : float;  (** microseconds, including children *)
  out_order : Order.t;
  location : Op.location;
  shards : string list;
      (** [Scatter_gather_m] only: names of the backends the transfer must
          hit; [[]] for every other algorithm *)
}

(** Required physical properties. *)
type req = { loc : Op.location; order : Order.t }

type t = {
  memo : Memo.t;
  factors : Factors.t;
  stats_env : Derive.env;
  partition : Partition.layout option;
      (** [Some] when the topology shards a table: transfers become
          partition-aware *)
  shard_factors : string -> Factors.t;
      (** per-backend cost factors, keyed by backend name *)
  cache : (int * req, plan option) Hashtbl.t;
  in_progress : (int * req, unit) Hashtbl.t;
  stats_cache : (int, Rel_stats.t option) Hashtbl.t;
  mutable considered : int;  (** algorithm instantiations examined *)
}

let c_considered = Tango_obs.Counter.make "volcano.plans_considered"

let c_infeasible = Tango_obs.Counter.make "volcano.plans_infeasible"
(** class elements rejected (location/order requirement unmet, or cyclic). *)

let create ?partition ?shard_factors ~memo ~factors ~stats_env () =
  {
    memo;
    factors;
    stats_env;
    partition;
    shard_factors =
      (match shard_factors with Some f -> f | None -> fun _ -> factors);
    cache = Hashtbl.create 256;
    in_progress = Hashtbl.create 64;
    stats_cache = Hashtbl.create 64;
    considered = 0;
  }

let class_stats (p : t) (c : int) : Rel_stats.t option =
  let c = Memo.find p.memo c in
  match Hashtbl.find_opt p.stats_cache c with
  | Some s -> s
  | None ->
      let s =
        try Some (Derive.derive p.stats_env (Memo.extract p.memo c))
        with _ -> None
      in
      Hashtbl.replace p.stats_cache c s;
      s

let class_size p c =
  match class_stats p c with Some s -> Rel_stats.size s | None -> 1.0

let satisfies out_order required =
  Order.satisfies ~actual:out_order ~required

let better a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some pa, Some pb -> Some (if pa.total_cost <= pb.total_cost then pa else pb)

(* Map a required order through projection items onto input attribute
   names; None when some key is computed (not a plain column). *)
let map_order_through_items items (order : Order.t) : Order.t option =
  let mapped =
    List.map
      (fun k ->
        match
          Rules.find_item_by (fun (_, out) -> Some out) items k.Order.attr
        with
        | Some (Tango_sql.Ast.Col (q, c), _) ->
            let name = match q with None -> c | Some q -> q ^ "." ^ c in
            Some { k with Order.attr = name }
        | _ -> None)
      order
  in
  if List.for_all Option.is_some mapped then Some (List.map Option.get mapped)
  else None

let rec best (p : t) (c : int) (r : req) : plan option =
  let c = Memo.find p.memo c in
  let key = (c, r) in
  match Hashtbl.find_opt p.cache key with
  | Some res -> res
  | None ->
      if Hashtbl.mem p.in_progress key then None
        (* cyclic through transfer-cancelled classes: no finite plan here *)
      else begin
        Hashtbl.replace p.in_progress key ();
        let result =
          List.fold_left
            (fun acc el ->
              let pl = plan_element p c r el in
              (match pl with
              | None -> Tango_obs.Counter.incr c_infeasible
              | Some _ -> ());
              better acc pl)
            None (Memo.elements p.memo c)
        in
        Hashtbl.remove p.in_progress key;
        Hashtbl.replace p.cache key result;
        result
      end

and mk_plan_sharded p ~shards algorithm op children own out_order location =
  p.considered <- p.considered + 1;
  Tango_obs.Counter.incr c_considered;
  {
    algorithm;
    op;
    children;
    own_cost = own;
    total_cost = own +. List.fold_left (fun a ch -> a +. ch.total_cost) 0.0 children;
    out_order;
    location;
    shards;
  }

and mk_plan p algorithm op children own out_order location =
  mk_plan_sharded p ~shards:[] algorithm op children own out_order location

and plan_element (p : t) (c : int) (r : req) (el : Memo.node) : plan option =
  let f = p.factors in
  let out_size () = class_size p c in
  match el with
  | Memo.N_scan { table; alias; schema } ->
      if r.loc <> Op.Db || r.order <> [] then None
      else
        Some
          (mk_plan p Table_scan_d
             (Op.Scan { table; alias; schema })
             []
             (Formulas.scan_d f ~size:(out_size ()))
             [] Op.Db)
  | Memo.N_tm arg -> (
      if r.loc <> Op.Mw then None
      else
        match best p arg { loc = Op.Db; order = r.order } with
        | None -> None
        | Some child -> (
            let size = class_size p arg in
            match p.partition with
            | None ->
                Some
                  (mk_plan p Transfer_m_algo (Op.To_mw child.op) [ child ]
                     (Formulas.transfer_m f ~size)
                     child.out_order Op.Mw)
            | Some layout -> (
                match Partition.analyze layout child.op with
                | Partition.Unpartitioned ->
                    (* replicated inputs only: the primary has it all *)
                    Some
                      (mk_plan p Transfer_m_algo (Op.To_mw child.op) [ child ]
                         (Formulas.transfer_m f ~size)
                         child.out_order Op.Mw)
                | Partition.Unsafe _ ->
                    (* no correct DBMS-side execution over the shards —
                       the offending operator must move to the middleware *)
                    None
                | Partition.Scatter { shards; _ } ->
                    (* per-shard transfers (the estimated output splits
                       across them) plus the ordered gather merge *)
                    let ways = max 1 (List.length shards) in
                    let per = size /. float_of_int ways in
                    let ship =
                      List.fold_left
                        (fun acc s ->
                          acc
                          +. Formulas.transfer_m
                               (p.shard_factors s.Partition.shard_name)
                               ~size:per)
                        0.0 shards
                    in
                    let own = ship +. Formulas.gather_m f ~size ~ways in
                    Some
                      (mk_plan_sharded p
                         ~shards:
                           (List.map
                              (fun s -> s.Partition.shard_name)
                              shards)
                         Scatter_gather_m (Op.To_mw child.op) [ child ] own
                         child.out_order Op.Mw))))
  | Memo.N_td arg ->
      if r.loc <> Op.Db || r.order <> [] then None
      else
        Option.map
          (fun child ->
            let size = class_size p arg in
            let own =
              match p.partition with
              | None -> Formulas.transfer_d f ~size
              | Some layout ->
                  (* the temporary is replicated: one load per backend *)
                  List.fold_left
                    (fun acc s ->
                      acc
                      +. Formulas.transfer_d
                           (p.shard_factors s.Partition.shard_name)
                           ~size)
                    0.0 layout.Partition.shards
            in
            mk_plan p Transfer_d_algo (Op.To_db child.op) [ child ] own []
              Op.Db)
          (best p arg { loc = Op.Mw; order = [] })
  | Memo.N_select { pred; arg } -> (
      match r.loc with
      | Op.Db ->
          if r.order <> [] then None
          else
            Option.map
              (fun child ->
                mk_plan p Filter_d
                  (Op.Select { pred; arg = child.op })
                  [ child ]
                  (Formulas.select_d ~size:(class_size p arg))
                  [] Op.Db)
              (best p arg { loc = Op.Db; order = [] })
      | Op.Mw ->
          Option.map
            (fun child ->
              mk_plan p Filter_m
                (Op.Select { pred; arg = child.op })
                [ child ]
                (Formulas.filter_m f ~pred ~size:(class_size p arg))
                child.out_order Op.Mw)
            (best p arg { loc = Op.Mw; order = r.order }))
  | Memo.N_project { items; arg } -> (
      match r.loc with
      | Op.Db ->
          if r.order <> [] then None
          else
            Option.map
              (fun child ->
                mk_plan p Project_d
                  (Op.Project { items; arg = child.op })
                  [ child ]
                  (Formulas.project_d ~size:(class_size p arg))
                  [] Op.Db)
              (best p arg { loc = Op.Db; order = [] })
      | Op.Mw -> (
          match map_order_through_items items r.order with
          | None -> None
          | Some child_order ->
              Option.map
                (fun child ->
                  mk_plan p Project_m
                    (Op.Project { items; arg = child.op })
                    [ child ]
                    (Formulas.project_m f ~size:(class_size p arg))
                    r.order Op.Mw)
                (best p arg { loc = Op.Mw; order = child_order })))
  | Memo.N_sort { order; arg } ->
      if not (satisfies order r.order) then None
      else begin
        let loc = r.loc in
        (* option A: input already ordered -> free *)
        let passthrough =
          Option.map
            (fun child ->
              mk_plan p Sort_passthrough
                (Op.Sort { order; arg = child.op })
                [ child ] 0.0 order loc)
            (best p arg { loc; order })
        in
        (* option B: sort here *)
        let sorted =
          Option.map
            (fun child ->
              let size = class_size p arg in
              let own =
                match loc with
                | Op.Db -> Formulas.sort_d f ~size
                | Op.Mw -> Formulas.sort_m f ~size
              in
              mk_plan p
                (match loc with Op.Db -> Sort_d | Op.Mw -> Sort_m)
                (Op.Sort { order; arg = child.op })
                [ child ] own order loc)
            (best p arg { loc; order = [] })
        in
        better passthrough sorted
      end
  | Memo.N_product { left; right } ->
      if r.loc <> Op.Db || r.order <> [] then None
      else
        let pl = best p left { loc = Op.Db; order = [] } in
        let pr = best p right { loc = Op.Db; order = [] } in
        (match (pl, pr) with
        | Some cl, Some cr ->
            Some
              (mk_plan p Product_d
                 (Op.Product { left = cl.op; right = cr.op })
                 [ cl; cr ]
                 (Formulas.product_d f ~out_size:(out_size ()))
                 [] Op.Db)
        | _ -> None)
  | Memo.N_join { pred; left; right } -> (
      match r.loc with
      | Op.Db ->
          if r.order <> [] then None
          else
            let pl = best p left { loc = Op.Db; order = [] } in
            let pr = best p right { loc = Op.Db; order = [] } in
            (match (pl, pr) with
            | Some cl, Some cr ->
                Some
                  (mk_plan p Join_d
                     (Op.Join { pred; left = cl.op; right = cr.op })
                     [ cl; cr ]
                     (db_join_cost p ~pred ~left ~right ~out_size:(out_size ()))
                     [] Op.Db)
            | _ -> None)
      | Op.Mw -> plan_mw_merge_join p c r ~temporal:false pred left right)
  | Memo.N_tjoin { pred; left; right } -> (
      match r.loc with
      | Op.Db ->
          if r.order <> [] then None
          else
            let pl = best p left { loc = Op.Db; order = [] } in
            let pr = best p right { loc = Op.Db; order = [] } in
            (match (pl, pr) with
            | Some cl, Some cr ->
                Some
                  (mk_plan p Tjoin_d
                     (Op.Temporal_join { pred; left = cl.op; right = cr.op })
                     [ cl; cr ]
                     (db_join_cost p ~pred ~left ~right ~out_size:(out_size ()))
                     [] Op.Db)
            | _ -> None)
      | Op.Mw -> plan_mw_merge_join p c r ~temporal:true pred left right)
  | Memo.N_taggr { group_by; aggs; arg } -> (
      let out_order = Tango_xxl.Ordering.taggr_output ~group_by in
      if not (satisfies out_order r.order) then None
      else
        match r.loc with
        | Op.Db ->
            Option.map
              (fun child ->
                mk_plan p Taggr_d
                  (Op.Temporal_aggregate { group_by; aggs; arg = child.op })
                  [ child ]
                  (Formulas.taggr_d f ~in_size:(class_size p arg)
                     ~out_size:(out_size ()))
                  out_order Op.Db)
              (best p arg { loc = Op.Db; order = [] })
        | Op.Mw -> (
            match Memo.schema_of p.memo arg with
            | exception _ -> None
            | arg_schema ->
                let needed = Rules.taggr_order arg_schema group_by in
                Option.map
                  (fun child ->
                    mk_plan p Taggr_m
                      (Op.Temporal_aggregate { group_by; aggs; arg = child.op })
                      [ child ]
                      (Formulas.taggr_m f ~in_size:(class_size p arg)
                         ~out_size:(out_size ()))
                      out_order Op.Mw)
                  (best p arg { loc = Op.Mw; order = needed })))
  | Memo.N_dupelim arg -> (
      match r.loc with
      | Op.Db ->
          if r.order <> [] then None
          else
            Option.map
              (fun child ->
                mk_plan p Dupelim_d (Op.Dup_elim child.op) [ child ]
                  (Formulas.sort_d f ~size:(class_size p arg))
                  [] Op.Db)
              (best p arg { loc = Op.Db; order = [] })
      | Op.Mw -> (
          match Memo.schema_of p.memo arg with
          | exception _ -> None
          | s ->
              let order = Tango_xxl.Ordering.dup_elim_input s in
              if not (satisfies order r.order) then None
              else
                Option.map
                  (fun child ->
                    mk_plan p Dupelim_m (Op.Dup_elim child.op) [ child ]
                      (Formulas.dup_elim_m f ~size:(class_size p arg))
                      order Op.Mw)
                  (best p arg { loc = Op.Mw; order })))
  | Memo.N_coalesce arg -> (
      if r.loc <> Op.Mw then None
      else
        match Memo.schema_of p.memo arg with
        | exception _ -> None
        | s ->
            let order = Tango_xxl.Ordering.coalesce_input s in
            if not (satisfies order r.order) then None
            else
              Option.map
                (fun child ->
                  mk_plan p Coalesce_m (Op.Coalesce child.op) [ child ]
                    (Formulas.coalesce_m f ~size:(class_size p arg))
                    order Op.Mw)
                (best p arg { loc = Op.Mw; order }))
  | Memo.N_difference { left; right } ->
      if r.loc <> Op.Mw then None
      else
        let pl = best p left { loc = Op.Mw; order = r.order } in
        let pr = best p right { loc = Op.Mw; order = [] } in
        (match (pl, pr) with
        | Some cl, Some cr ->
            Some
              (mk_plan p Difference_m
                 (Op.Difference { left = cl.op; right = cr.op })
                 [ cl; cr ]
                 (Formulas.difference_m f
                    ~left_size:(class_size p left)
                    ~right_size:(class_size p right))
                 cl.out_order Op.Mw)
        | _ -> None)

(* Generic DBMS join cost; when one side exposes an index on its join
   attribute (per the catalog statistics), the cheaper index-nested-loop
   formula applies — the DBMS will pick that access path. *)
and db_join_cost p ~pred ~left ~right ~out_size =
  let f = p.factors in
  let left_size = class_size p left and right_size = class_size p right in
  let generic = Formulas.join_d f ~left_size ~right_size ~out_size in
  match
    (Memo.schema_of p.memo left, Memo.schema_of p.memo right,
     class_stats p left, class_stats p right)
  with
  | exception _ -> generic
  | sl, sr, Some stl, Some str -> (
      match Rules.equi_pair sl sr pred with
      | None -> generic
      | Some (ja1, ja2) ->
          let candidates =
            (if Tango_stats.Rel_stats.indexed_on str ja2 then
               [ Formulas.index_join_d f ~outer_size:left_size ~out_size ]
             else [])
            @
            if Tango_stats.Rel_stats.indexed_on stl ja1 then
              [ Formulas.index_join_d f ~outer_size:right_size ~out_size ]
            else []
          in
          List.fold_left Float.min generic candidates)
  | _ -> generic

and plan_mw_merge_join p c r ~temporal pred left right =
  match (Memo.schema_of p.memo left, Memo.schema_of p.memo right) with
  | exception _ -> None
  | sl, sr -> (
      match Rules.equi_pair sl sr pred with
      | None -> None
      | Some (ja1, ja2) ->
          let out_order =
            (* ordered by the left join attribute, if it survives *)
            match Memo.schema_of p.memo c with
            | exception _ -> []
            | out_s ->
                Tango_xxl.Ordering.merge_join_output ~temporal out_s
                  ~left_key:ja1
          in
          if not (satisfies out_order r.order) then None
          else
            let pl =
              best p left
                { loc = Op.Mw; order = Tango_xxl.Ordering.merge_join_input ja1 }
            in
            let pr =
              best p right
                { loc = Op.Mw; order = Tango_xxl.Ordering.merge_join_input ja2 }
            in
            (match (pl, pr) with
            | Some cl, Some cr ->
                let left_size = class_size p left
                and right_size = class_size p right
                and out_size = class_size p c in
                let own, algo, op =
                  if temporal then
                    ( Formulas.temporal_join_m p.factors ~left_size ~right_size
                        ~out_size,
                      Tjoin_m,
                      Op.Temporal_join { pred; left = cl.op; right = cr.op } )
                  else
                    ( Formulas.merge_join_m p.factors ~left_size ~right_size
                        ~out_size,
                      Merge_join_m,
                      Op.Join { pred; left = cl.op; right = cr.op } )
                in
                Some (mk_plan p algo op [ cl; cr ] own out_order Op.Mw)
            | _ -> None))

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                      *)
(* ------------------------------------------------------------------ *)

let rec pp ?(indent = 0) ppf (plan : plan) =
  Fmt.pf ppf "%s%s%s  [%s, cost %.0fus%s]@."
    (String.make indent ' ')
    (algorithm_name plan.algorithm)
    (if plan.shards = [] then ""
     else "{" ^ String.concat "," plan.shards ^ "}")
    (match plan.location with Op.Db -> "DB" | Op.Mw -> "MW")
    plan.total_cost
    (if plan.out_order = [] then ""
     else " order " ^ Order.to_string plan.out_order);
  List.iter (pp ~indent:(indent + 2) ppf) plan.children

let to_string plan = Fmt.str "%a" (pp ~indent:0) plan

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                         *)
(* ------------------------------------------------------------------ *)

(* Canonical plan identity for the profiling feedback store and the
   regression sentinel.  Two normalizations make the fingerprint stable
   under plan-irrelevant differences:

   - {e alias insensitivity}: table aliases, their qualified column
     references ("A.K") and the alias-derived output names the SQL
     generator produces ("A__K") are reduced to the column's base name, so
     re-aliasing a scan does not change the fingerprint;
   - {e literal stripping}: constants in predicates become a "?"
     placeholder (pg_stat_statements-style), so the same query shape over
     different windows accumulates statistics under one key. *)

module Ast = Tango_sql.Ast

let base_name (name : string) : string =
  let after_dot =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  (* alias-derived output names embed the alias as "A__K" *)
  let rec strip s =
    match String.index_opt s '_' with
    | Some i when i + 1 < String.length s && s.[i + 1] = '_' ->
        strip (String.sub s (i + 2) (String.length s - i - 2))
    | _ -> s
  in
  strip after_dot

let rec canon_expr (e : Ast.expr) : string =
  match e with
  | Ast.Lit _ | Ast.Param _ -> "?"
  | Ast.Col (_, c) -> base_name c
  | Ast.Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (canon_expr a)
        (Tango_sql.Printer.binop_name op)
        (canon_expr b)
  | Ast.Not a -> Printf.sprintf "not(%s)" (canon_expr a)
  | Ast.Is_null a -> Printf.sprintf "isnull(%s)" (canon_expr a)
  | Ast.Is_not_null a -> Printf.sprintf "notnull(%s)" (canon_expr a)
  | Ast.Between (a, b, c) ->
      Printf.sprintf "between(%s,%s,%s)" (canon_expr a) (canon_expr b)
        (canon_expr c)
  | Ast.Greatest es ->
      Printf.sprintf "greatest(%s)" (String.concat "," (List.map canon_expr es))
  | Ast.Least es ->
      Printf.sprintf "least(%s)" (String.concat "," (List.map canon_expr es))
  | Ast.Agg (fn, a) ->
      Printf.sprintf "%s(%s)" (Ast.aggfun_name fn)
        (match a with Some a -> canon_expr a | None -> "*")
  | Ast.Scalar_subquery _ | Ast.In_subquery _ | Ast.Exists _ -> "<subquery>"

let canon_order (o : Order.t) : string =
  String.concat ","
    (List.map
       (fun (k : Order.key) ->
         base_name k.Order.attr
         ^ match k.Order.dir with Order.Asc -> "+" | Order.Desc -> "-")
       o)

let rec canon_op (op : Op.t) : string =
  let kids op = String.concat "," (List.map canon_op (Op.children op)) in
  match op with
  | Op.Scan { table; _ } -> Printf.sprintf "scan:%s" table
  | Op.Select { pred; _ } ->
      Printf.sprintf "select[%s](%s)" (canon_expr pred) (kids op)
  | Op.Project { items; _ } ->
      Printf.sprintf "project[%s](%s)"
        (String.concat "," (List.map (fun (e, _) -> canon_expr e) items))
        (kids op)
  | Op.Sort { order; _ } ->
      Printf.sprintf "sort[%s](%s)" (canon_order order) (kids op)
  | Op.Product _ -> Printf.sprintf "product(%s)" (kids op)
  | Op.Join { pred; _ } ->
      Printf.sprintf "join[%s](%s)" (canon_expr pred) (kids op)
  | Op.Temporal_join { pred; _ } ->
      Printf.sprintf "tjoin[%s](%s)" (canon_expr pred) (kids op)
  | Op.Temporal_aggregate { group_by; aggs; _ } ->
      Printf.sprintf "taggr[%s;%s](%s)"
        (String.concat "," (List.map base_name group_by))
        (String.concat ","
           (List.map
              (fun (a : Op.agg) ->
                Ast.aggfun_name a.Op.fn
                ^ "("
                ^ (match a.Op.arg with Some c -> base_name c | None -> "*")
                ^ ")")
              aggs))
        (kids op)
  | Op.Dup_elim _ -> Printf.sprintf "dupelim(%s)" (kids op)
  | Op.Coalesce _ -> Printf.sprintf "coalesce(%s)" (kids op)
  | Op.Difference _ -> Printf.sprintf "difference(%s)" (kids op)
  | Op.To_mw _ -> Printf.sprintf "to_mw(%s)" (kids op)
  | Op.To_db _ -> Printf.sprintf "to_db(%s)" (kids op)

(* FNV-1a over the canonical string, rendered as 16 hex digits. *)
let digest (s : string) : string =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let op_fingerprint (op : Op.t) : string = digest (canon_op op)

(** One-line summary of where the plan's algorithms run. *)
let rec signature (plan : plan) : string =
  match plan.children with
  | [] -> algorithm_name plan.algorithm
  | cs ->
      algorithm_name plan.algorithm
      ^ "("
      ^ String.concat ", " (List.map signature cs)
      ^ ")"

let fingerprint (plan : plan) : string =
  digest (signature plan ^ "|" ^ canon_op plan.op)

(* ------------------------------------------------------------------ *)
(* Partition-aware refinement and checking                              *)
(* ------------------------------------------------------------------ *)

(* Middleware-side predicate knowledge flows DOWN through contexts that
   keep the scatter's output stream intact tuple-for-tuple: filters
   (harvesting their period predicates) and sorts.  Any other operator
   resets the interval to ⊤.  Harvested intervals prune a scatter's shard
   list only when the partition column is traceable to the scatter output
   (see {!Partition.analyze}), where a base-name reference in a predicate
   above can only mean the partition column. *)

let mw_interval layout (plan : plan) : Partition.interval =
  match (plan.algorithm, plan.op) with
  | Filter_m, Op.Select { pred; _ } ->
      Partition.interval_of_pred
        ~column:(Schema.base_name layout.Partition.column)
        pred
  | _ -> Partition.top

let child_interval layout interval (plan : plan) : Partition.interval =
  match plan.algorithm with
  | Filter_m -> Partition.inter interval (mw_interval layout plan)
  | Sort_m | Sort_passthrough -> interval
  | _ -> Partition.top

let scatter_verdict layout (plan : plan) : Partition.verdict option =
  match plan.children with
  | [ child ] -> Some (Partition.analyze layout child.op)
  | _ -> None

(** Drop shards a scatter provably cannot need, using the period
    predicates the middleware applies above it.  Costs are left as
    estimated (pruning only makes execution cheaper). *)
let prune_scatter (layout : Partition.layout) (plan : plan) : plan =
  let rec go interval plan =
    let ci = child_interval layout interval plan in
    let children = List.map (go ci) plan.children in
    let plan = { plan with children } in
    match plan.algorithm with
    | Scatter_gather_m -> (
        match scatter_verdict layout plan with
        | Some (Partition.Scatter { shards; traceable = true }) ->
            {
              plan with
              shards =
                List.map
                  (fun s -> s.Partition.shard_name)
                  (Partition.restrict shards interval);
            }
        | _ -> plan)
    | _ -> plan
  in
  go Partition.top plan

(** Close a plan template over bound parameter values: every [Ast.Param n]
    in every operator's expressions becomes [Lit values.(n-1)].  Costs,
    algorithms and orders are untouched — instantiation must not re-plan;
    re-run {!prune_scatter} afterwards to restore per-binding shard
    pruning (templates are planned with parameters unresolved, so their
    scatter lists are unpruned).  Raises {!Op.Ill_formed} when a
    parameter has no bound value. *)
let instantiate (values : Value.t array) (plan : plan) : plan =
  let subst =
    Ast.map_params (fun n ->
        if n >= 1 && n <= Array.length values then Ast.Lit values.(n - 1)
        else
          Op.ill_formed "parameter $%d has no bound value (%d given)" n
            (Array.length values))
  in
  let rec go p =
    { p with op = Op.map_exprs subst p.op; children = List.map go p.children }
  in
  go plan

(** Partition-safety violations in a physical plan: transfers that would
    read a single shard's slice of partitioned data, scatters over
    non-distributable subtrees, and scatters whose shard list misses a
    shard the predicates cannot exclude (data loss).  Returns
    [(path, message)] pairs; empty means the plan is partition-correct. *)
let scatter_violations (layout : Partition.layout) (plan : plan) :
    (string * string) list =
  let errs = ref [] in
  let rec walk interval path plan =
    let here = path ^ "/" ^ algorithm_name plan.algorithm in
    let err msg = errs := (here, msg) :: !errs in
    (match plan.algorithm with
    | Transfer_m_algo -> (
        match scatter_verdict layout plan with
        | Some (Partition.Scatter _) ->
            err
              "single-backend TRANSFER^M over the partitioned table reads \
               one shard's slice only"
        | Some (Partition.Unsafe msg) ->
            err ("TRANSFER^M over a non-distributable subtree: " ^ msg)
        | Some Partition.Unpartitioned | None -> ())
    | Scatter_gather_m -> (
        match scatter_verdict layout plan with
        | Some (Partition.Unsafe msg) ->
            err ("SCATTER^M over a non-distributable subtree: " ^ msg)
        | Some Partition.Unpartitioned ->
            err "SCATTER^M over an unpartitioned subtree"
        | Some (Partition.Scatter { shards; traceable }) ->
            let required =
              if traceable then Partition.restrict shards interval else shards
            in
            List.iter
              (fun s ->
                if not (List.mem s.Partition.shard_name plan.shards) then
                  err
                    (Printf.sprintf
                       "shard %s can hold matching tuples but is not \
                        transferred (data loss)"
                       s.Partition.shard_name))
              required;
            let known =
              List.map (fun s -> s.Partition.shard_name) layout.Partition.shards
            in
            List.iter
              (fun n ->
                if not (List.mem n known) then err ("unknown shard " ^ n))
              plan.shards
        | None -> err "SCATTER^M without a DBMS child")
    | _ -> ());
    let ci = child_interval layout interval plan in
    List.iter (walk ci here) plan.children
  in
  walk Partition.top "" plan;
  List.rev !errs
