(** Transformation rules and heuristics (paper Section 4).

    Rules operate on memo elements and either add equivalent elements to the
    same class or merge classes.  Implemented rules:

    - {b Group 1} (move beneficial operations to the middleware): T1
      (temporal aggregation), T2 (join), T3 (temporal join) — each wraps the
      operation in [T^M]/[T^D] and inserts the argument sorts its middleware
      algorithm needs; T4–T6 move selection/projection/sorting above [T^M].
    - {b Group 2} (eliminate redundant operations): T7/T8 (transfer pairs
      cancel — class merges), T9 (identity projection), T12 (subsumed
      sorts).  T10/T11 (sort elimination by order properties) are realized
      during physical planning, where output orders are tracked exactly: a
      sort whose input already satisfies its order costs nothing.
    - {b Equivalences}: E1 (σ/π), E2 (commutativity of ×, ⋈, ⋈ᵀ — modulo a
      column-reordering projection, since our relations are lists of
      positional tuples), E3 (associativity of ×), E4 (sort/σ, middleware
      only), E5 (sort/π, middleware only).
    - {b Group 3} (combine operations, from [20]): C1 merges adjacent
      selections, C2 composes adjacent projections.
    - {b Group 4} (reduce arguments of expensive operations, from [20]): R1
      pushes side-resolvable selection conjuncts below ⋈/⋈ᵀ/×, R2 pushes
      group-attribute conjuncts below ξᵀ, R3 seeds both arguments of a
      temporal join with the enclosing selection's time window (overlap
      semijoin reduction). *)

open Tango_rel
open Tango_sql
open Tango_algebra
open Memo

(* ---------- helpers ---------- *)

let col_name = function
  | Ast.Col (None, c) -> Some c
  | Ast.Col (Some q, c) -> Some (q ^ "." ^ c)
  | _ -> None

let covers schema e = Scalar.covers schema e

(* Equi-join attribute pair (left attr, right attr) resolvable on the given
   sides. *)
let equi_pair sl sr pred =
  List.find_map
    (fun c ->
      match c with
      | Ast.Binop (Ast.Eq, a, b) -> (
          match (col_name a, col_name b) with
          | Some ca, Some cb ->
              if Schema.mem sl ca && Schema.mem sr cb then Some (ca, cb)
              else if Schema.mem sl cb && Schema.mem sr ca then Some (cb, ca)
              else None
          | _ -> None)
      | _ -> None)
    (Ast.conjuncts pred)

(* The (G1..Gn, T1) sort order TAGGR^M needs below itself
   (declared centrally in {!Tango_xxl.Ordering}). *)
let taggr_order (arg_schema : Schema.t) group_by =
  Tango_xxl.Ordering.taggr_input arg_schema ~group_by

(* Identity projection items over a schema (preserving exact names). *)
let identity_items (s : Schema.t) =
  List.map
    (fun (a : Schema.attribute) -> (Ast.Col (None, a.Schema.name), a.Schema.name))
    (Schema.attributes s)

let try_schema m c = try Some (Memo.schema_of m c) with _ -> None
let try_location m c = try Some (Memo.location m c) with Memo.Cyclic -> None

(* Find the item whose key (computed by [key_of]) names [name]: an exact
   match wins; otherwise a unique base-name match, mirroring Schema.index
   resolution.  Ambiguity yields None. *)
let find_item_by key_of items name =
  let exact =
    List.find_opt
      (fun it -> match key_of it with Some k -> String.equal k name | None -> false)
      items
  in
  match exact with
  | Some it -> Some it
  | None -> (
      let base = Schema.base_name name in
      match
        List.filter
          (fun it ->
            match key_of it with
            | Some k -> String.equal (Schema.base_name k) base
            | None -> false)
          items
      with
      | [ it ] -> Some it
      | _ -> None)

(* Substitute predicate columns through projection items: a column matching
   an item's output name becomes the item's expression.  None if any column
   is not an item output. *)
let subst_through_items items (e : Ast.expr) : Ast.expr option =
  try
    Some
      (Scalar.map_cols
         (fun q c ->
           let name = match q with None -> c | Some q -> q ^ "." ^ c in
           match find_item_by (fun (_, out) -> Some out) items name with
           | Some (def, _) -> def
           | None -> raise Exit)
         e)
  with Exit | Scalar.Unsupported _ -> None

(* Rewrite predicate columns to item *output* names when the item expression
   is exactly that column. None if some column isn't exposed. *)
let rewrite_to_outputs items (e : Ast.expr) : Ast.expr option =
  try
    Some
      (Scalar.map_cols
         (fun q c ->
           let name = match q with None -> c | Some q -> q ^ "." ^ c in
           match find_item_by (fun (def, _) -> col_name def) items name with
           | Some (_, out) -> Ast.Col (None, out)
           | None -> raise Exit)
         e)
  with Exit | Scalar.Unsupported _ -> None

(* ---------- the rules ---------- *)

type rule = { name : string; apply : Memo.t -> int -> Memo.node -> bool }

(* T1: move temporal aggregation to the middleware. *)
let t1 =
  {
    name = "T1-taggr-to-mw";
    apply =
      (fun m c n ->
        match n with
        | N_taggr { group_by; aggs; arg } when try_location m arg = Some Op.Db
          -> (
            match try_schema m arg with
            | None -> false
            | Some s ->
                let sort_c =
                  Memo.insert m (N_sort { order = taggr_order s group_by; arg })
                in
                let tm_c = Memo.insert m (N_tm sort_c) in
                let ag_c =
                  Memo.insert m (N_taggr { group_by; aggs; arg = tm_c })
                in
                Memo.add_to_class m c (N_td ag_c))
        | _ -> false);
  }

(* T2/T3: move (temporal) join to the middleware via sorted transfers. *)
let join_to_mw ~temporal name =
  {
    name;
    apply =
      (fun m c n ->
        let matches =
          match (n, temporal) with
          | N_join { pred; left; right }, false -> Some (pred, left, right)
          | N_tjoin { pred; left; right }, true -> Some (pred, left, right)
          | _ -> None
        in
        match matches with
        | Some (pred, left, right)
          when try_location m left = Some Op.Db
               && try_location m right = Some Op.Db -> (
            match (try_schema m left, try_schema m right) with
            | Some sl, Some sr -> (
                match equi_pair sl sr pred with
                | None -> false
                | Some (ja1, ja2) ->
                    let sorted_tm key arg =
                      Memo.insert m
                        (N_tm
                           (Memo.insert m
                              (N_sort
                                 {
                                   order = Tango_xxl.Ordering.merge_join_input key;
                                   arg;
                                 })))
                    in
                    let tl = sorted_tm ja1 left in
                    let tr = sorted_tm ja2 right in
                    let j =
                      if temporal then
                        Memo.insert m (N_tjoin { pred; left = tl; right = tr })
                      else Memo.insert m (N_join { pred; left = tl; right = tr })
                    in
                    Memo.add_to_class m c (N_td j))
            | _ -> false)
        | _ -> false);
  }

let t2 = join_to_mw ~temporal:false "T2-join-to-mw"
let t3 = join_to_mw ~temporal:true "T3-tjoin-to-mw"

(* T1-style moves for the "additional algorithms" of Section 3.1: duplicate
   elimination and coalescing.  Both middleware algorithms need sorted
   input; coalescing has no DBMS implementation at all, so this rule is the
   only way a DBMS-located coalesce becomes executable. *)
let unary_to_mw name matches rebuild order_of =
  {
    name;
    apply =
      (fun m c n ->
        match matches n with
        | Some arg when try_location m arg = Some Op.Db -> (
            match try_schema m arg with
            | None -> false
            | Some s ->
                let sort_c =
                  Memo.insert m (N_sort { order = order_of s; arg })
                in
                let tm_c = Memo.insert m (N_tm sort_c) in
                Memo.add_to_class m c (N_td (Memo.insert m (rebuild tm_c))))
        | _ -> false);
  }

let t_dupelim =
  unary_to_mw "T1b-dupelim-to-mw"
    (function N_dupelim a -> Some a | _ -> None)
    (fun arg -> N_dupelim arg)
    Tango_xxl.Ordering.dup_elim_input

(* Difference has no DBMS implementation either; move it wholesale. *)
let t_difference =
  {
    name = "T1d-difference-to-mw";
    apply =
      (fun m c n ->
        match n with
        | N_difference { left; right }
          when try_location m left = Some Op.Db
               && try_location m right = Some Op.Db ->
            let tl = Memo.insert m (N_tm left) in
            let tr = Memo.insert m (N_tm right) in
            Memo.add_to_class m c
              (N_td (Memo.insert m (N_difference { left = tl; right = tr })))
        | _ -> false);
  }

let t_coalesce =
  unary_to_mw "T1c-coalesce-to-mw"
    (function N_coalesce a -> Some a | _ -> None)
    (fun arg -> N_coalesce arg)
    Tango_xxl.Ordering.coalesce_input

(* T4/T5/T6: pull σ/π/sort above T^M. *)
let pull_above_tm name pick =
  {
    name;
    apply =
      (fun m c n ->
        match n with
        | N_tm arg ->
            List.fold_left
              (fun changed el ->
                match pick m el with
                | Some rebuild ->
                    let inner_tm inner = Memo.insert m (N_tm inner) in
                    Memo.add_to_class m c (rebuild inner_tm) || changed
                | None -> changed)
              false (Memo.elements m arg)
        | _ -> false);
  }

let t4 =
  pull_above_tm "T4-select-above-tm" (fun _ el ->
      match el with
      | N_select { pred; arg } ->
          Some (fun tm -> N_select { pred; arg = tm arg })
      | _ -> None)

let t5 =
  pull_above_tm "T5-project-above-tm" (fun _ el ->
      match el with
      | N_project { items; arg } ->
          Some (fun tm -> N_project { items; arg = tm arg })
      | _ -> None)

let t6 =
  pull_above_tm "T6-sort-above-tm" (fun _ el ->
      match el with
      | N_sort { order; arg } -> Some (fun tm -> N_sort { order; arg = tm arg })
      | _ -> None)

(* T7/T8: cancel transfer pairs (class merges). *)
let cancel_transfers name outer inner_match =
  {
    name;
    apply =
      (fun m c n ->
        match outer n with
        | Some arg ->
            List.fold_left
              (fun changed el ->
                match inner_match el with
                | Some r when Memo.find m r <> Memo.find m c ->
                    ignore (Memo.union m c r);
                    true
                | _ -> changed)
              false (Memo.elements m arg)
        | None -> false);
  }

let t7 =
  cancel_transfers "T7-tm-td-cancel"
    (function N_tm a -> Some a | _ -> None)
    (function N_td r -> Some r | _ -> None)

let t8 =
  cancel_transfers "T8-td-tm-cancel"
    (function N_td a -> Some a | _ -> None)
    (function N_tm r -> Some r | _ -> None)

(* T9: identity projection vanishes. *)
let t9 =
  {
    name = "T9-identity-project";
    apply =
      (fun m c n ->
        match n with
        | N_project { items; arg } -> (
            match try_schema m arg with
            | Some s
              when List.length items = Schema.arity s
                   && List.for_all2
                        (fun (e, out) (a : Schema.attribute) ->
                          String.equal out a.Schema.name
                          &&
                          match col_name e with
                          | Some cn -> String.equal cn a.Schema.name
                          | None -> false)
                        items
                        (Schema.attributes s) ->
                if Memo.find m arg <> Memo.find m c then begin
                  ignore (Memo.union m c arg);
                  true
                end
                else false
            | _ -> false)
        | _ -> false);
  }

(* T12: outer sort subsumes an inner sort that is its prefix. *)
let t12 =
  {
    name = "T12-subsumed-sort";
    apply =
      (fun m c n ->
        match n with
        | N_sort { order = a; arg } ->
            List.fold_left
              (fun changed el ->
                match el with
                | N_sort { order = b; arg = inner } when Order.is_prefix b a ->
                    Memo.add_to_class m c (N_sort { order = a; arg = inner })
                    || changed
                | _ -> changed)
              false (Memo.elements m arg)
        | _ -> false);
  }

(* E1: σ/π commute. *)
let e1 =
  {
    name = "E1-select-project";
    apply =
      (fun m c n ->
        match n with
        | N_project { items; arg } ->
            (* lr: π(σ(r)) -> σ'(π(r)) when the predicate survives the
               projection. *)
            List.fold_left
              (fun changed el ->
                match el with
                | N_select { pred; arg = inner } -> (
                    match rewrite_to_outputs items pred with
                    | Some pred' ->
                        let p = Memo.insert m (N_project { items; arg = inner }) in
                        Memo.add_to_class m c (N_select { pred = pred'; arg = p })
                        || changed
                    | None -> changed)
                | _ -> changed)
              false (Memo.elements m arg)
        | N_select { pred; arg } ->
            (* rl: σ(π(r)) -> π(σ'(r)) by substituting definitions. *)
            List.fold_left
              (fun changed el ->
                match el with
                | N_project { items; arg = inner } -> (
                    match subst_through_items items pred with
                    | Some pred' ->
                        let s =
                          Memo.insert m (N_select { pred = pred'; arg = inner })
                        in
                        Memo.add_to_class m c (N_project { items; arg = s })
                        || changed
                    | None -> changed)
                | _ -> changed)
              false (Memo.elements m arg)
        | _ -> false);
  }

(* E2: commutativity modulo a reordering projection. *)
let e2 =
  {
    name = "E2-commute";
    apply =
      (fun m c n ->
        let commute mk left right =
          match (try_schema m left, try_schema m right) with
          | Some _, Some _ -> (
              let swapped = Memo.insert m (mk right left) in
              match try_schema m c with
              | Some out_schema ->
                  Memo.add_to_class m c
                    (N_project { items = identity_items out_schema; arg = swapped })
              | None -> false)
          | _ -> false
        in
        match n with
        | N_product { left; right } ->
            commute (fun l r -> N_product { left = l; right = r }) left right
        | N_join { pred; left; right } ->
            commute (fun l r -> N_join { pred; left = l; right = r }) left right
        | N_tjoin { pred; left; right } ->
            commute (fun l r -> N_tjoin { pred; left = l; right = r }) left right
        | _ -> false);
  }

(* E3: associativity of Cartesian product (schema concat is associative). *)
let e3 =
  {
    name = "E3-product-assoc";
    apply =
      (fun m c n ->
        match n with
        | N_product { left; right = c3 } ->
            List.fold_left
              (fun changed el ->
                match el with
                | N_product { left = c1; right = c2 } ->
                    let inner = Memo.insert m (N_product { left = c2; right = c3 }) in
                    Memo.add_to_class m c (N_product { left = c1; right = inner })
                    || changed
                | _ -> changed)
              false (Memo.elements m left)
        | _ -> false);
  }

(* E4: sort and selection commute (middleware side only). *)
let e4 =
  {
    name = "E4-sort-select";
    apply =
      (fun m c n ->
        match n with
        | N_sort { order; arg } when try_location m c = Some Op.Mw ->
            List.fold_left
              (fun changed el ->
                match el with
                | N_select { pred; arg = inner } ->
                    let s = Memo.insert m (N_sort { order; arg = inner }) in
                    Memo.add_to_class m c (N_select { pred; arg = s }) || changed
                | _ -> changed)
              false (Memo.elements m arg)
        | N_select { pred; arg } when try_location m c = Some Op.Mw ->
            List.fold_left
              (fun changed el ->
                match el with
                | N_sort { order; arg = inner } ->
                    let s = Memo.insert m (N_select { pred; arg = inner }) in
                    Memo.add_to_class m c (N_sort { order; arg = s }) || changed
                | _ -> changed)
              false (Memo.elements m arg)
        | _ -> false);
  }

(* E5: sort and projection commute (middleware side only). *)
let e5 =
  {
    name = "E5-sort-project";
    apply =
      (fun m c n ->
        match n with
        | N_sort { order; arg } when try_location m c = Some Op.Mw ->
            List.fold_left
              (fun changed el ->
                match el with
                | N_project { items; arg = inner } -> (
                    (* map order attrs through item definitions *)
                    let mapped =
                      List.map
                        (fun k ->
                          match
                            List.find_opt
                              (fun (_, out) -> String.equal out k.Order.attr)
                              items
                          with
                          | Some (def, _) -> (
                              match col_name def with
                              | Some dn -> Some { k with Order.attr = dn }
                              | None -> None)
                          | None -> None)
                        order
                    in
                    if List.for_all Option.is_some mapped then begin
                      let order' = List.map Option.get mapped in
                      let s = Memo.insert m (N_sort { order = order'; arg = inner }) in
                      Memo.add_to_class m c (N_project { items; arg = s })
                      || changed
                    end
                    else changed)
                | _ -> changed)
              false (Memo.elements m arg)
        | _ -> false);
  }

(* C1: merge adjacent selections. *)
let c1 =
  {
    name = "C1-combine-selects";
    apply =
      (fun m c n ->
        match n with
        | N_select { pred = p; arg } ->
            List.fold_left
              (fun changed el ->
                match el with
                | N_select { pred = q; arg = inner } ->
                    Memo.add_to_class m c
                      (N_select { pred = Ast.Binop (Ast.And, p, q); arg = inner })
                    || changed
                | _ -> changed)
              false (Memo.elements m arg)
        | _ -> false);
  }

(* C2: compose adjacent projections. *)
let c2 =
  {
    name = "C2-combine-projects";
    apply =
      (fun m c n ->
        match n with
        | N_project { items = outer; arg } ->
            List.fold_left
              (fun changed el ->
                match el with
                | N_project { items = inner_items; arg = inner } -> (
                    let composed =
                      List.map
                        (fun (e, out) ->
                          Option.map (fun e' -> (e', out))
                            (subst_through_items inner_items e))
                        outer
                    in
                    if List.for_all Option.is_some composed then
                      Memo.add_to_class m c
                        (N_project
                           { items = List.map Option.get composed; arg = inner })
                      || changed
                    else changed)
                | _ -> changed)
              false (Memo.elements m arg)
        | _ -> false);
  }

(* R4: project away attributes the temporal aggregation does not need
   (grouping attributes, aggregate arguments and the period).  This is the
   paper's Figure 4(b)/Figure 5 shape: the scan feeding TAGGR^M selects
   only the relevant attributes, shrinking sorts and transfers. *)
let r4 =
  {
    name = "R4-project-taggr-argument";
    apply =
      (fun m c n ->
        match n with
        | N_taggr { group_by; aggs; arg } -> (
            match try_schema m arg with
            | None -> false
            | Some s ->
                let needed =
                  group_by
                  @ List.filter_map (fun (a : Op.agg) -> a.Op.arg) aggs
                  @ (match Op.period_attrs s with
                    | Some (t1, t2) -> [ t1; t2 ]
                    | None -> [])
                in
                let needed =
                  List.sort_uniq String.compare
                    (List.map
                       (fun a -> Schema.name_at s (Schema.index s a))
                       needed)
                in
                if List.length needed >= Schema.arity s then false
                else begin
                  (* identity projection onto the needed attributes, in
                     schema order so the result is deterministic *)
                  let items =
                    List.filter_map
                      (fun (a : Schema.attribute) ->
                        if List.mem a.Schema.name needed then
                          Some (Ast.Col (None, a.Schema.name), a.Schema.name)
                        else None)
                      (Schema.attributes s)
                  in
                  let parg = Memo.insert m (N_project { items; arg }) in
                  Memo.add_to_class m c
                    (N_taggr { group_by; aggs; arg = parg })
                end)
        | _ -> false);
  }

(* R1: push side-resolvable selection conjuncts below joins/products. *)
let r1 =
  {
    name = "R1-select-below-join";
    apply =
      (fun m c n ->
        match n with
        | N_select { pred; arg } ->
            List.fold_left
              (fun changed el ->
                let push mk left right =
                  match (try_schema m left, try_schema m right) with
                  | Some sl, Some sr ->
                      let conjs = Ast.conjuncts pred in
                      let lcs, rest = List.partition (covers sl) conjs in
                      let rcs, rest = List.partition (covers sr) rest in
                      if lcs = [] && rcs = [] then false
                      else begin
                        let wrap side cs =
                          match Ast.conj cs with
                          | None -> side
                          | Some p -> Memo.insert m (N_select { pred = p; arg = side })
                        in
                        let j = Memo.insert m (mk (wrap left lcs) (wrap right rcs)) in
                        let node =
                          match Ast.conj rest with
                          | None ->
                              (* all conjuncts pushed: the join itself is
                                 equivalent to the selection *)
                              None
                          | Some p -> Some (N_select { pred = p; arg = j })
                        in
                        match node with
                        | Some nd -> Memo.add_to_class m c nd
                        | None ->
                            if Memo.find m j <> Memo.find m c then begin
                              ignore (Memo.union m c j);
                              true
                            end
                            else false
                      end
                  | _ -> false
                in
                (match el with
                | N_join { pred = jp; left; right } ->
                    push (fun l r -> N_join { pred = jp; left = l; right = r }) left right
                | N_product { left; right } ->
                    push (fun l r -> N_product { left = l; right = r }) left right
                | _ -> false)
                || changed)
              false (Memo.elements m arg)
        | _ -> false);
  }

(* R2: push group-attribute conjuncts below temporal aggregation. *)
let r2 =
  {
    name = "R2-select-below-taggr";
    apply =
      (fun m c n ->
        match n with
        | N_select { pred; arg } ->
            List.fold_left
              (fun changed el ->
                match el with
                | N_taggr { group_by; aggs; arg = inner } -> (
                    match try_schema m inner with
                    | None -> changed
                    | Some s_in ->
                        let group_schema = Schema.project s_in (List.map (fun g -> Schema.name_at s_in (Schema.index s_in g)) group_by) in
                        let conjs = Ast.conjuncts pred in
                        let pushable, rest =
                          List.partition (covers group_schema) conjs
                        in
                        if pushable = [] then changed
                        else begin
                          let inner' =
                            Memo.insert m
                              (N_select
                                 {
                                   pred = Option.get (Ast.conj pushable);
                                   arg = inner;
                                 })
                          in
                          let ag =
                            Memo.insert m
                              (N_taggr { group_by; aggs; arg = inner' })
                          in
                          (match Ast.conj rest with
                          | Some p ->
                              Memo.add_to_class m c (N_select { pred = p; arg = ag })
                          | None ->
                              if Memo.find m ag <> Memo.find m c then begin
                                ignore (Memo.union m c ag);
                                true
                              end
                              else false)
                          || changed
                        end)
                | _ -> changed)
              false (Memo.elements m arg)
        | _ -> false);
  }

(* R3: seed temporal-join arguments with the enclosing time window.  For
   σ_w(l ⋈ᵀ r) where w bounds the result period (T1 < B ∧ T2 > A), every
   contributing input tuple must itself overlap [A, B), so overlap filters
   can be added to both arguments while keeping the selection on top. *)
let r3 =
  {
    name = "R3-window-below-tjoin";
    apply =
      (fun m c n ->
        match n with
        | N_select { pred; arg } ->
            List.fold_left
              (fun changed el ->
                match el with
                | N_tjoin { pred = jp; left; right } -> (
                    let conjs = Ast.conjuncts pred in
                    let bound upper =
                      List.find_map
                        (fun cj ->
                          match cj with
                          | Ast.Binop ((Ast.Lt | Ast.Le), Ast.Col (q, a), (Ast.Lit _ as v))
                            when upper
                                 && String.equal (Schema.base_name
                                      (match q with None -> a | Some q -> q ^ "." ^ a)) "T1" ->
                              Some v
                          | Ast.Binop ((Ast.Gt | Ast.Ge), Ast.Col (q, a), (Ast.Lit _ as v))
                            when (not upper)
                                 && String.equal (Schema.base_name
                                      (match q with None -> a | Some q -> q ^ "." ^ a)) "T2" ->
                              Some v
                          | _ -> None)
                        conjs
                    in
                    match (bound true, bound false) with
                    | Some b, Some a -> (
                        match (try_schema m left, try_schema m right) with
                        | Some sl, Some sr -> (
                            let window side_schema side =
                              match Op.period_attrs side_schema with
                              | Some (t1, t2) ->
                                  let w =
                                    Ast.Binop
                                      ( Ast.And,
                                        Ast.Binop (Ast.Lt, Ast.Col (None, t1), b),
                                        Ast.Binop (Ast.Gt, Ast.Col (None, t2), a) )
                                  in
                                  Memo.insert m (N_select { pred = w; arg = side })
                              | None -> side
                            in
                            let j =
                              Memo.insert m
                                (N_tjoin
                                   {
                                     pred = jp;
                                     left = window sl left;
                                     right = window sr right;
                                   })
                            in
                            Memo.add_to_class m c (N_select { pred; arg = j })
                            || changed)
                        | _ -> changed)
                    | _ -> changed)
                | _ -> changed)
              false (Memo.elements m arg)
        | _ -> false);
  }

(** All rules, in application order. *)
let all : rule list =
  [ t1; t2; t3; t_dupelim; t_coalesce; t_difference; t4; t5; t6; t7; t8; t9;
    t12; e1; e2; e3; e4; e5; c1; c2; r1; r2; r3; r4 ]

let c_rules_fired = Tango_obs.Counter.make "volcano.rules_fired"
let c_passes = Tango_obs.Counter.make "volcano.saturate_passes"

(** Apply rules to fixpoint (bounded by [max_elements]). *)
type observer = rule:string -> Memo.t -> int -> unit

let saturate ?(rules = all) ?(max_elements = 5_000) ?observer (m : Memo.t) :
    unit =
  let changed = ref true in
  while !changed && Memo.element_count m < max_elements do
    changed := false;
    Tango_obs.Counter.incr c_passes;
    List.iter
      (fun c ->
        let c = Memo.find m c in
        List.iter
          (fun el ->
            if Memo.element_count m < max_elements then
              List.iter
                (fun r ->
                  if r.apply m c el then begin
                    Tango_obs.Counter.incr c_rules_fired;
                    (match observer with
                    | Some f -> f ~rule:r.name m (Memo.find m c)
                    | None -> ());
                    changed := true
                  end)
                rules)
          (Memo.elements m c))
      (Memo.classes m)
  done
