(** The optimizer driver: two-phase optimization as in paper Section 2.1.

    Phase 1 saturates a memo with the transformation rules, producing the
    space of candidate algebraic plans.  Phase 2 finds the cheapest
    physical plan for the root class under the root requirement
    (middleware-resident, with the query's final order). *)

open Tango_rel
open Tango_algebra

type result = {
  plan : Physical.plan option;
  classes : int;  (** equivalence classes generated *)
  elements : int;  (** class elements generated *)
  considered : int;  (** physical algorithm instantiations examined *)
  time_us : float;  (** optimization wall time *)
}

val optimize :
  factors:Tango_cost.Factors.t ->
  stats_env:Tango_stats.Derive.env ->
  ?required_order:Order.t ->
  ?max_elements:int ->
  ?rules:Rules.rule list ->
  ?rule_observer:Rules.observer ->
  ?partition:Partition.layout ->
  ?shard_factors:(string -> Tango_cost.Factors.t) ->
  Op.t ->
  result
(** Optimize an initial plan (validated first).  [rule_observer] is invoked
    after every successful rule application during saturation — the debug
    hook behind {!Tango_verify.Gate}.  With [partition], transfers out of
    the sharded subtrees become partition-aware ({!Physical.Scatter_gather_m}). *)

val cost_plan :
  factors:Tango_cost.Factors.t ->
  stats_env:Tango_stats.Derive.env ->
  ?required_order:Order.t ->
  ?partition:Partition.layout ->
  ?shard_factors:(string -> Tango_cost.Factors.t) ->
  Op.t ->
  Physical.plan option
(** Cost a {e fixed} operator tree without rule exploration — used by the
    experiments to compare the paper's hand-built plan alternatives. *)
