(** Partition analysis: which shards a DBMS-side subtree must run on.

    The topology range-partitions at most one table on a numeric (chronon)
    column; every other table — including [TRANSFER^D] temporaries — is
    replicated.  A DBMS subtree can therefore run {e per shard} with its
    results unioned, provided the partitioned table flows through it in a
    way that distributes over union.  {!analyze} decides this
    conservatively:

    - subtrees that never touch the partitioned table are
      {!Unpartitioned}: any single backend computes them completely;
    - selections, sorts, projections and joins {e against replicated
      inputs} distribute over union, so such subtrees can scatter — and
      period predicates over the partition column, harvested from the
      selections directly above the partitioned scan, prune the shard list
      to those whose bounds the predicates can overlap;
    - aggregation, duplicate elimination, coalescing, difference, and
      joins of the partitioned table with itself do {e not} distribute,
      so the subtree is {!Unsafe}: it has no correct single- or per-shard
      DBMS execution, and the optimizer must place those operators in the
      middleware (above the scatter/gather).

    Bounds and predicate constants are compared in the numeric view of
    {!Tango_rel.Value} (dates as chronons). *)

open Tango_algebra

type shard = {
  shard_name : string;
  lo : float option;  (** inclusive lower bound *)
  hi : float option;  (** exclusive upper bound *)
}

type layout = {
  table : string;  (** the partitioned table *)
  column : string;  (** partition column base name, e.g. ["T1"] *)
  shards : shard list;
  generation : int;  (** topology generation the layout reflects *)
}

type interval = float option * float option
(** Closed interval [\[ge, le\]] a predicate confines the partition column
    to; [None] = unbounded on that side. *)

val top : interval

val inter : interval -> interval -> interval

val interval_of_pred : column:string -> Tango_sql.Ast.expr -> interval
(** Conservative interval implied by the predicate's top-level conjuncts
    that compare [column] (matched by base name) to a literal.  Anything
    unrecognized widens, never narrows. *)

val overlaps : shard -> interval -> bool

val restrict : shard list -> interval -> shard list

type verdict =
  | Unpartitioned  (** complete on any single backend *)
  | Scatter of { shards : shard list; traceable : bool }
      (** must run on (at least) these shards; [traceable] means the
          partition column survives to the subtree's output under its base
          name, so middleware-side predicates above the transfer may prune
          further *)
  | Unsafe of string  (** does not distribute over the partition *)

val analyze : layout -> Op.t -> verdict
(** Analyze a DBMS-side logical subtree (the argument of a [To_mw]). *)
