(** Physical plan search (the optimizer's second phase, paper §2.1).

    For every memo class, find the cheapest physical plan satisfying a
    {e required property}: result location (DBMS or middleware) and output
    order.  Order bookkeeping implements rules T10/T11 physically: a sort
    whose input already has the needed order costs nothing. *)

open Tango_rel
open Tango_algebra

type algorithm =
  | Table_scan_d
  | Filter_d
  | Filter_m
  | Project_d
  | Project_m
  | Sort_d
  | Sort_m
  | Sort_passthrough  (** input already ordered — the physical T10/T11 *)
  | Join_d
  | Merge_join_m
  | Tjoin_d
  | Tjoin_m
  | Product_d
  | Taggr_d
  | Taggr_m
  | Dupelim_d
  | Dupelim_m
  | Coalesce_m
  | Difference_m
  | Transfer_m_algo
  | Transfer_d_algo
  | Scatter_gather_m
      (** partition-aware `T^M`: per-shard transfers merged by an ordered
          gather in the middleware *)

val algorithm_name : algorithm -> string

type plan = {
  algorithm : algorithm;
  op : Op.t;  (** logical operator with the chosen children substituted *)
  children : plan list;
  own_cost : float;  (** microseconds, this algorithm only *)
  total_cost : float;  (** microseconds, including children *)
  out_order : Order.t;
  location : Op.location;
  shards : string list;
      (** [Scatter_gather_m] only: names of the backends the transfer must
          hit; [[]] for every other algorithm *)
}

(** Required physical properties. *)
type req = { loc : Op.location; order : Order.t }

type t = {
  memo : Memo.t;
  factors : Tango_cost.Factors.t;
  stats_env : Tango_stats.Derive.env;
  partition : Partition.layout option;
      (** [Some] when the topology shards a table: transfers become
          partition-aware *)
  shard_factors : string -> Tango_cost.Factors.t;
      (** per-backend cost factors, keyed by backend name *)
  cache : (int * req, plan option) Hashtbl.t;
  in_progress : (int * req, unit) Hashtbl.t;
  stats_cache : (int, Tango_stats.Rel_stats.t option) Hashtbl.t;
  mutable considered : int;  (** algorithm instantiations examined *)
}

val create :
  ?partition:Partition.layout ->
  ?shard_factors:(string -> Tango_cost.Factors.t) ->
  memo:Memo.t ->
  factors:Tango_cost.Factors.t ->
  stats_env:Tango_stats.Derive.env ->
  unit ->
  t

val class_stats : t -> int -> Tango_stats.Rel_stats.t option
val class_size : t -> int -> float

val best : t -> int -> req -> plan option
(** Cheapest plan for the class under the requirement ([None] when
    infeasible).  Memoized; cyclic memo paths are treated as infeasible. *)

val pp : ?indent:int -> Format.formatter -> plan -> unit
val to_string : plan -> string

val signature : plan -> string
(** One-line summary of the plan's algorithms. *)

(** {2 Fingerprints}

    Canonical identities for the profiling feedback store and the plan
    regression sentinel.  Fingerprints are stable under plan-irrelevant
    differences: table aliases (and the alias-derived column names they
    induce) are reduced to base names, and predicate literals are stripped
    to a placeholder, so the same query shape over different constants
    accumulates statistics under one key. *)

val op_fingerprint : Op.t -> string
(** 16-hex-digit digest of a logical operator tree. *)

val fingerprint : plan -> string
(** Digest of a physical plan: the algorithm tree plus the canonicalized
    logical tree, so the same logical fragment under a different algorithm
    choice keys separately. *)

(** {2 Plan templates} *)

val instantiate : Value.t array -> plan -> plan
(** Close a plan template over bound parameter values: every
    [Ast.Param n] in every operator's expressions becomes
    [Lit values.(n-1)].  Costs, algorithms and orders are untouched —
    instantiation must not re-plan; re-run {!prune_scatter} afterwards
    to restore per-binding shard pruning.  Raises {!Op.Ill_formed} when
    a parameter has no bound value. *)

(** {2 Partition-aware refinement} *)

val prune_scatter : Partition.layout -> plan -> plan
(** Drop shards a scatter provably cannot need, using period predicates
    the middleware applies directly above it (through filter/sort
    contexts only).  Sound: a shard is dropped only when its bounds
    cannot overlap the interval the predicates confine the (traceable)
    partition column to. *)

val scatter_violations : Partition.layout -> plan -> (string * string) list
(** Partition-safety violations — single-backend transfers over
    partitioned data, scatters over non-distributable subtrees, shard
    lists that lose data.  [(path, message)] pairs; empty = correct. *)
