(** The optimizer driver: two-phase optimization as in paper Section 2.1.

    Phase 1 inserts the initial plan into the memo and saturates it with the
    transformation rules, producing the space of candidate algebraic plans.
    Phase 2 finds the cheapest physical plan for the root class under the
    root requirement: middleware-resident (results are delivered to the
    client through the middleware) with the query's final order. *)

open Tango_rel
open Tango_algebra
open Tango_stats
open Tango_cost

type result = {
  plan : Physical.plan option;
  classes : int;  (** equivalence classes generated *)
  elements : int;  (** class elements generated *)
  considered : int;  (** physical algorithm instantiations examined *)
  time_us : float;  (** optimization wall time *)
}

let now_us () = Unix.gettimeofday () *. 1_000_000.0

(** Optimize an initial plan.

    @param factors calibrated cost factors
    @param stats_env base-statistics environment (see {!Derive.env})
    @param required_order final order the client asked for (default none)
    @param max_elements memo growth bound
    @param partition partition layout of a sharded topology
    @param shard_factors per-backend cost factors (by backend name) *)
let optimize ~(factors : Factors.t) ~(stats_env : Derive.env)
    ?(required_order : Order.t = []) ?max_elements ?rules ?rule_observer
    ?partition ?shard_factors (initial : Op.t) : result =
  let t0 = now_us () in
  Op.validate initial;
  let memo = Memo.create () in
  let root = Memo.insert_op memo initial in
  Tango_obs.Trace.span "optimize.saturate" (fun () ->
      Rules.saturate ?max_elements ?rules ?observer:rule_observer memo;
      Tango_obs.Trace.attr "classes"
        (Tango_obs.Trace.Int (Memo.class_count memo));
      Tango_obs.Trace.attr "elements"
        (Tango_obs.Trace.Int (Memo.element_count memo)));
  let planner =
    Physical.create ?partition ?shard_factors ~memo ~factors ~stats_env ()
  in
  let plan =
    Tango_obs.Trace.span "optimize.plan" (fun () ->
        let p =
          Physical.best planner (Memo.find memo root)
            { Physical.loc = Op.Mw; order = required_order }
        in
        Tango_obs.Trace.attr "considered"
          (Tango_obs.Trace.Int planner.Physical.considered);
        p)
  in
  {
    plan;
    classes = Memo.class_count memo;
    elements = Memo.element_count memo;
    considered = planner.Physical.considered;
    time_us = now_us () -. t0;
  }

(** Cost a {e fixed} operator tree without rule exploration — used by the
    experiments to compare the hand-built plan alternatives the paper
    reports.  The tree's transfers and sorts are taken as-is. *)
let cost_plan ~(factors : Factors.t) ~(stats_env : Derive.env)
    ?(required_order : Order.t = []) ?partition ?shard_factors
    (plan_tree : Op.t) : Physical.plan option =
  Op.validate plan_tree;
  let memo = Memo.create () in
  let root = Memo.insert_op memo plan_tree in
  (* no rules: the memo holds exactly this plan *)
  let planner =
    Physical.create ?partition ?shard_factors ~memo ~factors ~stats_env ()
  in
  Physical.best planner (Memo.find memo root)
    { Physical.loc = Op.Mw; order = required_order }
