(** Partition analysis for sharded DBMS subtrees.  See the interface for
    the soundness argument per operator. *)

open Tango_rel
open Tango_algebra
open Tango_sql

type shard = { shard_name : string; lo : float option; hi : float option }

type layout = {
  table : string;
  column : string;
  shards : shard list;
  generation : int;
}

type interval = float option * float option

let top : interval = (None, None)

let inter ((ga, la) : interval) ((gb, lb) : interval) : interval =
  let max_o a b =
    match (a, b) with None, x | x, None -> x | Some a, Some b -> Some (max a b)
  in
  let min_o a b =
    match (a, b) with None, x | x, None -> x | Some a, Some b -> Some (min a b)
  in
  (max_o ga gb, min_o la lb)

(* [lo, hi) overlaps [ge, le] — None is unbounded on its side. *)
let overlaps (s : shard) ((ge, le) : interval) =
  (match (s.lo, le) with Some lo, Some le -> lo <= le | _ -> true)
  && match (s.hi, ge) with Some hi, Some ge -> hi > ge | _ -> true

let restrict shards interval = List.filter (fun s -> overlaps s interval) shards

let lit_float = function
  | Value.Int _ | Value.Float _ | Value.Date _ | Value.Bool _ as v ->
      Some (Value.to_float v)
  | Value.Str _ | Value.Null -> None

(* A conjunct narrows the interval only when we positively recognize it:
   <col> <cmp> <literal> (either operand order) or BETWEEN, with the column
   matched by base name.  `<` and `>` are widened to `<=`/`>=`: the
   interval is a superset, which only ever keeps extra shards. *)
let interval_of_conjunct ~column (e : Ast.expr) : interval =
  let is_col = function
    | Ast.Col (_, name) -> Schema.base_name name = column
    | _ -> false
  in
  let lit = function Ast.Lit v -> lit_float v | _ -> None in
  match e with
  | Ast.Binop (op, l, r) when is_col l -> (
      match (op, lit r) with
      | (Ast.Lt | Ast.Le), Some v -> (None, Some v)
      | (Ast.Gt | Ast.Ge), Some v -> (Some v, None)
      | Ast.Eq, Some v -> (Some v, Some v)
      | _ -> top)
  | Ast.Binop (op, l, r) when is_col r -> (
      match (op, lit l) with
      | (Ast.Lt | Ast.Le), Some v -> (Some v, None)
      | (Ast.Gt | Ast.Ge), Some v -> (None, Some v)
      | Ast.Eq, Some v -> (Some v, Some v)
      | _ -> top)
  | Ast.Between (c, a, b) when is_col c -> (
      match (lit a, lit b) with
      | Some a, Some b -> (Some a, Some b)
      | _ -> top)
  | _ -> top

let interval_of_pred ~column (pred : Ast.expr) : interval =
  List.fold_left
    (fun acc c -> inter acc (interval_of_conjunct ~column c))
    top (Ast.conjuncts pred)

type verdict =
  | Unpartitioned
  | Scatter of { shards : shard list; traceable : bool }
  | Unsafe of string

(* Internal walk state over the subtree. *)
type state =
  | NP  (** replicated inputs only *)
  | P of { interval : interval; traceable : bool }
  | Bad of string

let analyze (layout : layout) (op : Op.t) : verdict =
  let column = Schema.base_name layout.column in
  let rec walk (op : Op.t) : state =
    match op with
    | Op.Scan { table; _ } ->
        if table = layout.table then P { interval = top; traceable = true }
        else NP
    | Op.Select { pred; arg } -> (
        match walk arg with
        | P { interval; traceable = true } ->
            P
              {
                interval = inter interval (interval_of_pred ~column pred);
                traceable = true;
              }
        | s -> s)
    | Op.Sort { arg; _ } -> walk arg
    | Op.Project { arg; _ } -> (
        (* projection may drop or recompute the partition column: stays
           partitioned, stops the predicate trace *)
        match walk arg with
        | P { interval; _ } -> P { interval; traceable = false }
        | s -> s)
    | Op.Product { left; right }
    | Op.Join { left; right; _ }
    | Op.Temporal_join { left; right; _ } -> (
        match (walk left, walk right) with
        | (Bad _ as b), _ | _, (Bad _ as b) -> b
        | P _, P _ ->
            Bad
              (Printf.sprintf
                 "join of two %s partitions does not distribute over the \
                  shards"
                 layout.table)
        | P { interval; _ }, NP | NP, P { interval; _ } ->
            (* partitioned ⋈ replicated: distributes over union *)
            P { interval; traceable = false }
        | NP, NP -> NP)
    | Op.Temporal_aggregate { arg; _ } -> (
        match walk arg with
        | P _ -> Bad "temporal aggregation does not distribute over shards"
        | s -> s)
    | Op.Dup_elim arg -> (
        match walk arg with
        | P _ -> Bad "duplicate elimination does not distribute over shards"
        | s -> s)
    | Op.Coalesce arg -> (
        match walk arg with
        | P _ -> Bad "coalescing does not distribute over shards"
        | s -> s)
    | Op.Difference { left; right } -> (
        match (walk left, walk right) with
        | (Bad _ as b), _ | _, (Bad _ as b) -> b
        | (P _, _ | _, P _) ->
            Bad "difference does not distribute over shards"
        | NP, NP -> NP)
    | Op.To_db _ ->
        (* a TRANSFER^D temporary: replicated to every backend *)
        NP
    | Op.To_mw arg ->
        (* not expected inside a DBMS subtree; analyze what it wraps *)
        walk arg
  in
  match walk op with
  | NP -> Unpartitioned
  | Bad msg -> Unsafe msg
  | P { interval; traceable } ->
      Scatter { shards = restrict layout.shards interval; traceable }
