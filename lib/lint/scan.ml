(* The typed-AST walker.  Reads a compiled [.cmt] file (compiler-libs
   [Cmt_format]) and reports, per unit:

   - module-level mutable state ("state" inventory findings);
   - mutation sites not dominated by a recognized guard application
     ("guard" findings);
   - raw [Mutex.lock]/[Mutex.unlock] usage (guards must be
     exception-safe: [Mutex.protect] / [Dsync.protect]).

   Dune wraps libraries, so compilation units are named like
   [Tango_cache__Plan_cache]; every identifier is normalized by
   rewriting ["__"] to ["."] before matching, and stdlib aliases are
   handled by suffix matching (both [Hashtbl.replace] and
   [Stdlib.Hashtbl.replace] match the pattern ["Hashtbl.replace"]). *)

open Typedtree

type unit_info = {
  unit_name : string;  (* raw module name, e.g. Tango_cache__Plan_cache *)
  unit_id : string;  (* normalized dotted id, e.g. Tango_cache.Plan_cache *)
  source : string option;
  imports : string list;  (* normalized *)
  findings : Finding.t list;
}

(* ---------- identifier normalization & matching ---------- *)

let normalize name =
  let buf = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf name.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* [matches_tail name "Hashtbl.replace"] accepts the name itself and
   any dotted elaboration of it ([Stdlib.Hashtbl.replace]). *)
let matches_tail name pat = name = pat || ends_with ~suffix:("." ^ pat) name
let matches_any name pats = List.exists (matches_tail name) pats

(* ---------- what counts as a mutator ---------- *)

(* Function applications that mutate one of their arguments, paired
   with the index of the mutated argument ([Array.sort cmp a] mutates
   its second argument, [Array.blit src sp dst ...] its third).
   Atomic operations are deliberately absent: atomics are a recognized
   guard in their own right.  [incr]/[decr] are pinned to [Stdlib] so
   a counter abstraction's own [incr] does not suffix-match. *)
let mutator_functions =
  [
    (":=", 0);
    ("Stdlib.incr", 0);
    ("Stdlib.decr", 0);
    ("Hashtbl.replace", 0);
    ("Hashtbl.add", 0);
    ("Hashtbl.remove", 0);
    ("Hashtbl.reset", 0);
    ("Hashtbl.clear", 0);
    ("Hashtbl.filter_map_inplace", 1);
    ("Hashtbl.add_seq", 0);
    ("Hashtbl.replace_seq", 0);
    ("Queue.push", 1);
    ("Queue.add", 1);
    ("Queue.pop", 0);
    ("Queue.take", 0);
    ("Queue.clear", 0);
    ("Queue.transfer", 0);
    ("Queue.add_seq", 0);
    ("Stack.push", 1);
    ("Stack.pop", 0);
    ("Stack.clear", 0);
    ("Buffer.add_char", 0);
    ("Buffer.add_string", 0);
    ("Buffer.add_substring", 0);
    ("Buffer.add_bytes", 0);
    ("Buffer.add_buffer", 0);
    ("Buffer.add_channel", 0);
    ("Buffer.clear", 0);
    ("Buffer.reset", 0);
    ("Buffer.truncate", 0);
    ("Array.set", 0);
    ("Array.unsafe_set", 0);
    ("Array.fill", 0);
    ("Array.blit", 2);
    ("Array.sort", 1);
    ("Bytes.set", 0);
    ("Bytes.unsafe_set", 0);
    ("Bytes.fill", 0);
    ("Bytes.blit", 2);
  ]

(* Applications whose dynamic extent counts as guarded. *)
let guard_functions = [ "Mutex.protect"; "Dsync.protect" ]

(* Raw locking primitives: flagged wherever referenced, because a
   manual lock/unlock pair leaks the lock if the critical section
   raises. *)
let raw_lock_functions = [ "Mutex.lock"; "Mutex.unlock"; "Mutex.try_lock" ]

(* ---------- what counts as mutable state ---------- *)

(* Types that are containers of shared mutable state. *)
let mutable_type_heads =
  [ "ref"; "Hashtbl.t"; "Queue.t"; "Buffer.t"; "Stack.t"; "array"; "bytes" ]

(* Types that are mutable but domain-safe by construction; reaching one
   of these stops the walk. *)
let safe_type_heads =
  [
    "Atomic.t";
    "Mutex.t";
    "Condition.t";
    "Semaphore.Counting.t";
    "Semaphore.Binary.t";
    "Domain.DLS.key";
    "Dsync.lock";
    "Dsync.Sharded.t";
  ]

(* Mutable record types declared across the scanned units, keyed by
   normalized dotted id; shared between the two passes. *)
type type_env = (string, string list) Hashtbl.t
(* value: names of the mutable fields *)

let type_env_create () : type_env = Hashtbl.create 64

(* Does this type expression contain reachable shared mutable state?
   Conservative structural walk with a visited set (type_exprs can be
   cyclic through Tconstr arguments). *)
let rec type_is_mutable (env : type_env) ~unit_id ~mod_path visited ty =
  let id = Types.get_id ty in
  if List.mem id !visited then false
  else begin
    visited := id :: !visited;
    match Types.get_desc ty with
    | Types.Tconstr (path, args, _) ->
        let name = normalize (Path.name path) in
        if matches_any name safe_type_heads then false
        else if matches_any name mutable_type_heads then true
        else if
          (* a record type with mutable fields, declared in this repo *)
          Hashtbl.mem env name
          || Hashtbl.mem env (unit_id ^ "." ^ name)
          || mod_path <> []
             && Hashtbl.mem env
                  (String.concat "." ((unit_id :: mod_path) @ [ name ]))
        then true
        else
          List.exists (type_is_mutable env ~unit_id ~mod_path visited) args
    | Types.Ttuple tys ->
        List.exists (type_is_mutable env ~unit_id ~mod_path visited) tys
    | _ -> false
  end

let value_type_is_mutable env ~unit_id ~mod_path ty =
  (* functions are behaviour, not state, even when they return refs *)
  match Types.get_desc ty with
  | Types.Tarrow _ -> false
  | _ -> type_is_mutable env ~unit_id ~mod_path (ref []) ty

(* ---------- [@tango.unguarded "reason"] ---------- *)

let unguarded_reason (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "tango.unguarded" then None
      else
        match a.attr_payload with
        | Parsetree.PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( {
                        pexp_desc =
                          Pexp_constant (Pconst_string (reason, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
            Some reason
        | _ -> Some "(no reason given)")
    attrs

(* ---------- the walker ---------- *)

type ctx = {
  env : type_env;
  unit_id : string;
  src : string;
  mutable mod_path : string list;  (* innermost last *)
  mutable binding : string;  (* enclosing structure-level binding name *)
  mutable guard_depth : int;
  mutable allow : string option;  (* innermost [@tango.unguarded] reason *)
  locals : (string, unit) Hashtbl.t;  (* Ident.unique_name of let-locals *)
  toplevel : (string, unit) Hashtbl.t;  (* structure-level value idents *)
  mutable findings : Finding.t list;
}

let dotted ctx leaf =
  String.concat "." ((ctx.unit_id :: ctx.mod_path) @ [ leaf ])

let emit ctx ?hint severity family ~loc ~leaf message =
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  ctx.findings <-
    Finding.v ?hint ?allowed:ctx.allow severity family ~file:ctx.src ~line
      ~id:(dotted ctx leaf) message
    :: ctx.findings

let guard_hint =
  "wrap the mutation in Dsync.protect/Mutex.protect (or use Atomic), or \
   justify it with [@tango.unguarded \"reason\"] / a lint-allow entry"

(* Walk a mutation target down to its root identifier. *)
let rec mutation_root (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_field (e, _, _) -> mutation_root e
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when matches_tail (normalize (Path.name p)) "!" -> (
      match args with
      | [ (_, Some arg) ] -> mutation_root arg
      | _ -> None)
  | _ -> None

type root_class = Local | Global of string | Instance of string

let classify_root ctx (e : expression) =
  match mutation_root e with
  | Some (Path.Pident id) ->
      let u = Ident.unique_name id in
      if Hashtbl.mem ctx.locals u then Local
      else if Hashtbl.mem ctx.toplevel u then Global (Ident.name id)
      else Instance (Ident.name id)
  | Some p -> Global (normalize (Path.name p))
  | None -> Instance "<computed>"

let flag_mutation ctx ~loc ~kind target_expr =
  if ctx.guard_depth > 0 then ()
  else
    match classify_root ctx target_expr with
    | Local -> ()
    | Global root ->
        emit ctx Finding.Error "guard" ~loc ~leaf:ctx.binding
          ~hint:guard_hint
          (Printf.sprintf "unguarded %s of module-level state [%s]" kind root)
    | Instance root ->
        emit ctx Finding.Error "guard" ~loc ~leaf:ctx.binding
          ~hint:guard_hint
          (Printf.sprintf "unguarded %s of escaping instance state [%s]" kind
             root)

let register_locals ctx vbs =
  List.iter
    (fun vb ->
      List.iter
        (fun id -> Hashtbl.replace ctx.locals (Ident.unique_name id) ())
        (pat_bound_idents vb.vb_pat))
    vbs

let with_allow ctx reason f =
  match reason with
  | None -> f ()
  | Some _ ->
      let saved = ctx.allow in
      ctx.allow <- reason;
      Fun.protect ~finally:(fun () -> ctx.allow <- saved) f

let rec iter_expr ctx sub (e : expression) =
  with_allow ctx (unguarded_reason e.exp_attributes) @@ fun () ->
  match e.exp_desc with
  | Texp_let (_, vbs, _) ->
      register_locals ctx vbs;
      Tast_iterator.default_iterator.expr sub e
  | Texp_setfield (target, _, label, _) ->
      flag_mutation ctx ~loc:e.exp_loc
        ~kind:
          (Printf.sprintf "field assignment [%s <-]"
             label.Types.lbl_name)
        target;
      Tast_iterator.default_iterator.expr sub e
  | Texp_setinstvar (_, _, _, _) ->
      if ctx.guard_depth = 0 then
        emit ctx Finding.Error "guard" ~loc:e.exp_loc ~leaf:ctx.binding
          ~hint:guard_hint "unguarded instance-variable assignment";
      Tast_iterator.default_iterator.expr sub e
  | Texp_ident (p, _, _)
    when matches_any (normalize (Path.name p)) raw_lock_functions ->
      emit ctx Finding.Error "guard" ~loc:e.exp_loc ~leaf:ctx.binding
        ~hint:
          "use Mutex.protect/Dsync.protect: it releases the lock when the \
           critical section raises"
        (Printf.sprintf "raw lock primitive [%s] is not exception-safe"
           (normalize (Path.name p)))
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
      let name = normalize (Path.name p) in
      if matches_any name guard_functions then begin
        ctx.guard_depth <- ctx.guard_depth + 1;
        Fun.protect
          ~finally:(fun () -> ctx.guard_depth <- ctx.guard_depth - 1)
          (fun () -> Tast_iterator.default_iterator.expr sub e)
      end
      else begin
        (match
           List.find_opt (fun (pat, _) -> matches_tail name pat)
             mutator_functions
         with
        | Some (pat, arg_idx) -> (
            let explicit_args =
              List.filter_map (fun (_, arg) -> arg) args
            in
            match List.nth_opt explicit_args arg_idx with
            | Some target ->
                flag_mutation ctx ~loc:e.exp_loc
                  ~kind:(Printf.sprintf "mutation [%s]" pat)
                  target
            | None -> ())
        | None -> ());
        Tast_iterator.default_iterator.expr sub e
      end
  | _ -> Tast_iterator.default_iterator.expr sub e

and iter_structure_item ctx sub (item : structure_item) =
  match item.str_desc with
  | Tstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          let ids = pat_bound_idents vb.vb_pat in
          List.iter
            (fun id -> Hashtbl.replace ctx.toplevel (Ident.unique_name id) ())
            ids;
          let leaf =
            match ids with id :: _ -> Ident.name id | [] -> "_"
          in
          let saved_binding = ctx.binding in
          ctx.binding <- leaf;
          with_allow ctx (unguarded_reason vb.vb_attributes) (fun () ->
              (if
                 value_type_is_mutable ctx.env ~unit_id:ctx.unit_id
                   ~mod_path:ctx.mod_path vb.vb_pat.pat_type
               then
                 let ty =
                   Format.asprintf "%a" Printtyp.type_expr vb.vb_pat.pat_type
                 in
                 emit ctx Finding.Info "state" ~loc:vb.vb_loc ~leaf
                   (Printf.sprintf "module-level mutable value: %s" ty));
              sub.Tast_iterator.expr sub vb.vb_expr);
          ctx.binding <- saved_binding)
        vbs
  | Tstr_module mb -> iter_module_binding ctx sub mb
  | Tstr_recmodule mbs -> List.iter (iter_module_binding ctx sub) mbs
  | Tstr_type (_, decls) ->
      List.iter
        (fun (d : type_declaration) ->
          match d.typ_kind with
          | Ttype_record labels ->
              let mutables =
                List.filter_map
                  (fun (l : label_declaration) ->
                    if l.ld_mutable = Asttypes.Mutable then
                      Some l.ld_name.txt
                    else None)
                  labels
              in
              if mutables <> [] then
                emit ctx Finding.Info "state" ~loc:d.typ_loc
                  ~leaf:d.typ_name.txt
                  (Printf.sprintf "record type with mutable field(s): %s"
                     (String.concat ", " mutables))
          | _ -> ())
        decls
  | _ -> Tast_iterator.default_iterator.structure_item sub item

and iter_module_binding ctx sub (mb : module_binding) =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  with_allow ctx (unguarded_reason mb.mb_attributes) @@ fun () ->
  ctx.mod_path <- ctx.mod_path @ [ name ];
  Fun.protect
    ~finally:(fun () ->
      ctx.mod_path <-
        List.filteri (fun i _ -> i < List.length ctx.mod_path - 1) ctx.mod_path)
    (fun () -> sub.Tast_iterator.module_expr sub mb.mb_expr)

(* ---------- pass 1: collect mutable record types ---------- *)

let collect_types (env : type_env) ~unit_id (str : structure) =
  let mod_path = ref [] in
  let rec item (sub : Tast_iterator.iterator) (it : structure_item) =
    match it.str_desc with
    | Tstr_type (_, decls) ->
        List.iter
          (fun (d : type_declaration) ->
            match d.typ_kind with
            | Ttype_record labels ->
                let mutables =
                  List.filter_map
                    (fun (l : label_declaration) ->
                      if l.ld_mutable = Asttypes.Mutable then
                        Some l.ld_name.txt
                      else None)
                    labels
                in
                if mutables <> [] then
                  let id =
                    String.concat "."
                      ((unit_id :: !mod_path) @ [ d.typ_name.txt ])
                  in
                  Hashtbl.replace env id mutables
            | _ -> ())
          decls
    | Tstr_module mb -> mbind sub mb
    | Tstr_recmodule mbs -> List.iter (mbind sub) mbs
    | _ -> Tast_iterator.default_iterator.structure_item sub it
  and mbind sub (mb : module_binding) =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    mod_path := !mod_path @ [ name ];
    Fun.protect
      ~finally:(fun () ->
        mod_path :=
          List.filteri (fun i _ -> i < List.length !mod_path - 1) !mod_path)
      (fun () -> sub.Tast_iterator.module_expr sub mb.mb_expr)
  in
  let iter = { Tast_iterator.default_iterator with structure_item = item } in
  iter.structure iter str

(* ---------- pass 2: scan a unit ---------- *)

let scan_structure env ~unit_id ~src (str : structure) =
  let ctx =
    {
      env;
      unit_id;
      src;
      mod_path = [];
      binding = "_";
      guard_depth = 0;
      allow = None;
      locals = Hashtbl.create 64;
      toplevel = Hashtbl.create 64;
      findings = [];
    }
  in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr = (fun sub e -> iter_expr ctx sub e);
      structure_item = (fun sub it -> iter_structure_item ctx sub it);
    }
  in
  iter.structure iter str;
  List.rev ctx.findings

(* ---------- cmt plumbing ---------- *)

type cmt = {
  cmt_path : string;
  cmt_unit : string;
  cmt_source : string option;
  cmt_structure : structure option;
  cmt_imports : string list;
}

let read_cmt path =
  let infos = Cmt_format.read_cmt path in
  let structure =
    match infos.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str -> Some str
    | _ -> None
  in
  {
    cmt_path = path;
    cmt_unit = infos.Cmt_format.cmt_modname;
    cmt_source = infos.Cmt_format.cmt_sourcefile;
    cmt_structure = structure;
    cmt_imports =
      List.map (fun (name, _) -> normalize name) infos.Cmt_format.cmt_imports;
  }

(* Dune generates an alias module per wrapped library (from a .ml-gen
   source); those carry no user code. *)
let is_generated cmt =
  match cmt.cmt_source with
  | Some src -> ends_with ~suffix:".ml-gen" src
  | None -> true

let scan_cmts paths =
  let cmts =
    List.filter_map
      (fun p ->
        match read_cmt p with
        | cmt -> if is_generated cmt then None else Some cmt
        | exception _ -> None)
      paths
  in
  let env = type_env_create () in
  List.iter
    (fun cmt ->
      match cmt.cmt_structure with
      | Some str -> collect_types env ~unit_id:(normalize cmt.cmt_unit) str
      | None -> ())
    cmts;
  List.map
    (fun cmt ->
      let unit_id = normalize cmt.cmt_unit in
      let src =
        match cmt.cmt_source with Some s -> s | None -> cmt.cmt_path
      in
      let findings =
        match cmt.cmt_structure with
        | Some str -> scan_structure env ~unit_id ~src str
        | None -> []
      in
      {
        unit_name = cmt.cmt_unit;
        unit_id;
        source = cmt.cmt_source;
        imports = cmt.cmt_imports;
        findings;
      })
    cmts
