(** Structured lint diagnostics, in the style of [Tango_verify.Diag].

    A finding names a source location, a dotted identifier (the unit,
    submodule path and binding it concerns), and a family:

    - ["state"]: module-level shared mutable state inventory (refs,
      mutable record fields, [Hashtbl.t] / [Queue.t] / [Buffer.t] /
      array values bound at structure level);
    - ["guard"]: a mutation site not dominated by a recognized guard
      ([Mutex.protect] / [Dsync.protect]), or a raw [Mutex.lock] /
      [Mutex.unlock] pair (not exception-safe);
    - ["hygiene"]: interface gaps ([.ml] without a sibling [.mli]).

    A finding is {e failing} when it is an [Error] and has not been
    allowed by a [[\@tango.unguarded "reason"]] annotation or by a
    matching entry in the committed allow file. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  family : string;
  file : string;  (** source path, relative to the repo root when known *)
  line : int;
  id : string;  (** dotted id, e.g. ["Tango_cache.Plan_cache.add"] *)
  message : string;
  hint : string option;
  serve_path : bool;  (** the unit is reachable from the serve endpoints *)
  allowed : string option;  (** justification, when suppressed *)
}

val v :
  ?hint:string ->
  ?serve_path:bool ->
  ?allowed:string ->
  severity ->
  string ->
  file:string ->
  line:int ->
  id:string ->
  string ->
  t

val severity_name : severity -> string

val is_failing : t -> bool
(** [Error] severity and not allowed. *)

val failing : t list -> t list
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val json_escape : string -> string
val to_json : t -> string
val list_to_json : t list -> string

val github_annotation : t -> string
(** GitHub Actions workflow-command line ([::error file=...]). *)
