type entry = {
  pattern : string;
  reason : string;
  mutable used : bool;
}

type t = entry list

let parse_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then None
  else
    match String.index_opt line ' ' with
    | None -> Some { pattern = line; reason = "(no reason given)"; used = false }
    | Some i ->
        let pattern = String.sub line 0 i in
        let reason =
          String.trim (String.sub line (i + 1) (String.length line - i - 1))
        in
        let reason = if reason = "" then "(no reason given)" else reason in
        Some { pattern; reason; used = false }

let of_string s =
  String.split_on_char '\n' s |> List.filter_map parse_line

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))
  end

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* A pattern containing '/' matches the finding's file path by prefix;
   otherwise it matches the dotted id by whole-segment prefix, so the
   pattern [Tango_obs.Trace] matches [Tango_obs.Trace.push] but not
   [Tango_obs.Tracer]. *)
let entry_matches e ~file ~id =
  if String.contains e.pattern '/' then starts_with ~prefix:e.pattern file
  else
    id = e.pattern
    || starts_with ~prefix:(e.pattern ^ ".") id

let find (t : t) ~file ~id =
  match List.find_opt (fun e -> entry_matches e ~file ~id) t with
  | Some e ->
      e.used <- true;
      Some e.reason
  | None -> None

let unused (t : t) =
  List.filter_map (fun e -> if e.used then None else Some e.pattern) t
