type severity = Error | Warning | Info

type t = {
  severity : severity;
  family : string;
  file : string;
  line : int;
  id : string;
  message : string;
  hint : string option;
  serve_path : bool;
  allowed : string option;
}

let v ?hint ?(serve_path = false) ?allowed severity family ~file ~line ~id
    message =
  { severity; family; file; line; id; message; hint; serve_path; allowed }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_failing f = f.severity = Error && f.allowed = None
let failing fs = List.filter is_failing fs

let pp ppf f =
  Fmt.pf ppf "%s[%s] %s:%d %s: %s" (severity_name f.severity) f.family f.file
    f.line f.id f.message;
  (match f.allowed with
  | Some reason -> Fmt.pf ppf " (allowed: %s)" reason
  | None -> ());
  match f.hint with
  | Some h when f.allowed = None -> Fmt.pf ppf "@.  hint: %s" h
  | _ -> ()

let to_string f = Fmt.str "%a" pp f

(* Minimal JSON emission, matching the style used elsewhere in the tree
   (no external JSON dependency). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  let opt name = function
    | Some s -> Printf.sprintf ",\"%s\":\"%s\"" name (json_escape s)
    | None -> ""
  in
  Printf.sprintf
    "{\"severity\":\"%s\",\"family\":\"%s\",\"file\":\"%s\",\"line\":%d,\
     \"id\":\"%s\",\"message\":\"%s\",\"serve_path\":%b%s%s}"
    (severity_name f.severity) (json_escape f.family) (json_escape f.file)
    f.line (json_escape f.id) (json_escape f.message) f.serve_path
    (opt "hint" f.hint) (opt "allowed" f.allowed)

let list_to_json fs = "[" ^ String.concat "," (List.map to_json fs) ^ "]"

(* GitHub workflow-command annotation: rendered on failing findings by
   the CI lint job so the finding shows up inline on the PR diff. *)
let github_annotation f =
  Printf.sprintf "::%s file=%s,line=%d::%s: %s [%s]"
    (match f.severity with Error -> "error" | _ -> "warning")
    f.file f.line f.id f.message f.family
