(** The committed allowlist ([lint-allow] at the repo root).

    Line format: [<pattern> <justification...>]; blank lines and [#]
    comments are ignored.  A pattern containing ['/'] matches a
    finding's source path by prefix ([lib/volcano/]); otherwise it
    matches the dotted id by whole-segment prefix ([Tango_obs.Trace]
    matches [Tango_obs.Trace.push] but not [Tango_obs.Tracer]).

    Entries record whether they matched anything, so the driver can
    report stale patterns — an allowlist should shrink, not rot. *)

type entry = { pattern : string; reason : string; mutable used : bool }
type t = entry list

val of_string : string -> t
val load : string -> t
(** [load path] is [[]] when [path] does not exist. *)

val find : t -> file:string -> id:string -> string option
(** First matching entry's reason; marks the entry used. *)

val unused : t -> string list
(** Patterns that never matched a finding. *)
