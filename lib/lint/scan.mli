(** Typed-AST scanner over compiled [.cmt] files.

    One pass collects every record type with mutable fields across the
    given units; a second pass walks each unit's typed tree and emits
    {!Finding.t}s:

    - {b state} (Info): structure-level values whose type transitively
      contains [ref] / [Hashtbl.t] / [Queue.t] / [Buffer.t] / [Stack.t]
      / [array] / [bytes] or a repo-declared mutable record — except
      through [Atomic.t], [Mutex.t], [Domain.DLS.key] or the [Dsync]
      abstractions, which are domain-safe by construction; plus record
      type declarations with mutable fields.
    - {b guard} (Error): mutation sites ([:=], [x.f <- e],
      [Hashtbl.replace], [Queue.push], [Buffer.add_*], [Array.set], …)
      whose target's root is module-level or escapes the current
      function (a parameter or match binding), and which are not in the
      dynamic extent of a [Mutex.protect] / [Dsync.protect]
      application.  Mutation of let-bound locals is not flagged.  Raw
      [Mutex.lock] / [Mutex.unlock] / [Mutex.try_lock] references are
      flagged unconditionally (not exception-safe).

    [[\@tango.unguarded "reason"]] on a value binding, module binding
    or expression pre-allows the findings it dominates (they keep the
    reason in {!Finding.t.allowed}). *)

type unit_info = {
  unit_name : string;  (** raw compilation-unit name *)
  unit_id : string;  (** normalized dotted id ([__] rewritten to [.]) *)
  source : string option;  (** source path recorded in the cmt *)
  imports : string list;  (** normalized imported unit names *)
  findings : Finding.t list;
}

val normalize : string -> string
(** Rewrite dune's wrapped-library separator ["__"] to ["."]. *)

val scan_cmts : string list -> unit_info list
(** Read and scan the given [.cmt] paths.  Unreadable files, interfaces
    and dune-generated alias modules are skipped silently. *)
