(** The lint driver.

    Discovers every [.cmt] under [build_dir]/lib, scans them with
    {!Scan}, adds interface-hygiene findings from the source tree,
    marks findings in units reachable (via [cmt_imports]) from the
    serve roots, applies the committed allowlist, and renders the
    report as text, JSON, or GitHub workflow commands.

    The run {e fails} (nonzero exit in the CLI) iff {!failing} is
    non-empty: an [Error]-severity finding survived both the in-code
    [[\@tango.unguarded]] annotations and the allow file. *)

type config = {
  build_dir : string;  (** dune build context root, e.g. [_build/default] *)
  src_dir : string;  (** repo root, for hygiene checks and the allow file *)
  allow_file : string;  (** path of the allowlist, relative to [src_dir] *)
  serve_roots : string list;
      (** normalized unit ids whose import closure is "the serve path" *)
}

val default_config : config

type report = {
  units : Scan.unit_info list;
  findings : Finding.t list;
  unused_allows : string list;
}

val run : config -> report
val failing : report -> Finding.t list
val summary : report -> string

val render : ?verbose:bool -> Format.formatter -> report -> unit
(** Failing findings (all findings when [verbose]), then unused-allow
    warnings, then the one-line summary. *)

val to_json : report -> string
val github_annotations : report -> string list
