(* The lint driver: cmt discovery, hygiene checks, serve-path
   reachability, allowlist application and report rendering. *)

type config = {
  build_dir : string;
  src_dir : string;
  allow_file : string;
  serve_roots : string list;
}

let default_config =
  {
    build_dir = "_build/default";
    src_dir = ".";
    allow_file = "lint-allow";
    serve_roots = [ "Tango_monitor.Endpoints"; "Tango_core.Middleware" ];
  }

type report = {
  units : Scan.unit_info list;
  findings : Finding.t list;
  unused_allows : string list;
}

(* ---------- file discovery ---------- *)

let rec walk_files dir acc =
  if not (Sys.file_exists dir && Sys.is_directory dir) then acc
  else
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk_files path acc else path :: acc)
      acc (Sys.readdir dir)

let find_cmts build_dir =
  walk_files (Filename.concat build_dir "lib") []
  |> List.filter (fun p -> Filename.check_suffix p ".cmt")
  |> List.sort compare

(* ---------- hygiene: every lib/**/*.ml needs a sibling .mli ---------- *)

let module_id_of_src src_dir path =
  (* lib/cost/factors.ml -> Tango_?.Factors is not derivable without
     the dune file; use directory + capitalized module name. *)
  let rel =
    if String.length path > String.length src_dir
       && String.sub path 0 (String.length src_dir) = src_dir
    then
      String.sub path
        (String.length src_dir + 1)
        (String.length path - String.length src_dir - 1)
    else path
  in
  let base = Filename.remove_extension (Filename.basename rel) in
  (rel, String.capitalize_ascii base)

let hygiene_findings src_dir =
  let libdir = Filename.concat src_dir "lib" in
  walk_files libdir []
  |> List.filter (fun p -> Filename.check_suffix p ".ml")
  |> List.sort compare
  |> List.filter_map (fun ml ->
         let mli = ml ^ "i" in
         if Sys.file_exists mli then None
         else
           let rel, modname = module_id_of_src src_dir ml in
           Some
             (Finding.v Finding.Error "hygiene" ~file:rel ~line:1 ~id:modname
                ~hint:
                  "an .mli pins the exported surface; without one every \
                   binding (including internal mutable state) is public"
                (Printf.sprintf "%s has no interface file (%s.mli)" rel
                   (Filename.remove_extension rel))))

(* ---------- serve-path reachability ---------- *)

let reachable_units (units : Scan.unit_info list) roots =
  let imports = Hashtbl.create 64 in
  List.iter (fun (u : Scan.unit_info) -> Hashtbl.replace imports u.unit_id u.imports) units;
  let seen = Hashtbl.create 64 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match Hashtbl.find_opt imports id with
      | Some deps -> List.iter visit deps
      | None -> ()
    end
  in
  List.iter visit roots;
  seen

(* ---------- source paths relative to the repo root ---------- *)

(* cmt_sourcefile is recorded relative to the dune workspace root, so
   it is already the repo-relative path (e.g. lib/cache/plan_cache.ml). *)

(* ---------- the run ---------- *)

let run (config : config) : report =
  let units = Scan.scan_cmts (find_cmts config.build_dir) in
  let allow = Allow.load (Filename.concat config.src_dir config.allow_file) in
  let reach = reachable_units units config.serve_roots in
  let apply_allow (f : Finding.t) =
    match f.Finding.allowed with
    | Some _ -> f
    | None -> (
        match Allow.find allow ~file:f.Finding.file ~id:f.Finding.id with
        | Some reason -> { f with Finding.allowed = Some reason }
        | None -> f)
  in
  let unit_findings =
    List.concat_map
      (fun (u : Scan.unit_info) ->
        let on_serve_path = Hashtbl.mem reach u.unit_id in
        List.map
          (fun f -> apply_allow { f with Finding.serve_path = on_serve_path })
          u.findings)
      units
  in
  let hygiene = List.map apply_allow (hygiene_findings config.src_dir) in
  {
    units;
    findings = unit_findings @ hygiene;
    unused_allows = Allow.unused allow;
  }

let failing report = Finding.failing report.findings

(* ---------- rendering ---------- *)

let count p l = List.length (List.filter p l)

let summary report =
  let f = report.findings in
  let is fam (x : Finding.t) = x.Finding.family = fam in
  Printf.sprintf
    "lint: %d unit(s) scanned; %d state finding(s) (%d on the serve path), \
     %d guard finding(s) (%d allowed), %d hygiene finding(s); %d failing"
    (List.length report.units)
    (count (is "state") f)
    (count (fun x -> is "state" x && x.Finding.serve_path) f)
    (count (is "guard") f)
    (count (fun x -> is "guard" x && x.Finding.allowed <> None) f)
    (count (is "hygiene") f)
    (List.length (failing report))

let render ?(verbose = false) ppf report =
  let shown =
    if verbose then report.findings
    else List.filter Finding.is_failing report.findings
  in
  List.iter (fun f -> Fmt.pf ppf "%a@." Finding.pp f) shown;
  List.iter
    (fun p -> Fmt.pf ppf "warning: unused lint-allow pattern: %s@." p)
    report.unused_allows;
  Fmt.pf ppf "%s@." (summary report)

let to_json report =
  Printf.sprintf
    "{\"units\":%d,\"failing\":%d,\"unused_allow_patterns\":%s,\"findings\":%s}"
    (List.length report.units)
    (List.length (failing report))
    ("["
    ^ String.concat ","
        (List.map
           (fun p -> "\"" ^ Finding.json_escape p ^ "\"")
           report.unused_allows)
    ^ "]")
    (Finding.list_to_json report.findings)

let github_annotations report =
  List.map Finding.github_annotation (failing report)
