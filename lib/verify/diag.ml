type severity = Error | Warning | Info

type t = {
  severity : severity;
  family : string;
  path : string;
  message : string;
  hint : string option;
  rule : string option;
}

let v ?hint ?rule severity family ~path message =
  { severity; family; path; message; hint; rule }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let has_errors ds = List.exists is_error ds

let count_errors ds = List.length (errors ds)

let pp ppf d =
  Fmt.pf ppf "%s[%s] at %s: %s" (severity_name d.severity) d.family
    (if d.path = "" then "<root>" else d.path)
    d.message;
  (match d.rule with
  | Some r -> Fmt.pf ppf " (introduced by rule %s)" r
  | None -> ());
  match d.hint with Some h -> Fmt.pf ppf "@.  hint: %s" h | None -> ()

let to_string d = Fmt.str "%a" pp d

(* Minimal JSON emission, matching the style used elsewhere in the tree
   (no external JSON dependency). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let opt name = function
    | Some s -> Printf.sprintf ",\"%s\":\"%s\"" name (json_escape s)
    | None -> ""
  in
  Printf.sprintf
    "{\"severity\":\"%s\",\"family\":\"%s\",\"path\":\"%s\",\"message\":\"%s\"%s%s}"
    (severity_name d.severity) (json_escape d.family) (json_escape d.path)
    (json_escape d.message) (opt "hint" d.hint) (opt "rule" d.rule)

let list_to_json ds = "[" ^ String.concat "," (List.map to_json ds) ^ "]"
