(** Structured plan-verification diagnostics.

    Every finding of {!Check} and {!Gate} is one of these: a severity, the
    check {e family} that produced it ([schema], [boundary], [ordering] or
    [estimates]), the operator path from the plan root, a message, and
    optionally a fix hint and the transformation rule that introduced the
    problem (when found by the per-rule gate). *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  family : string;  (** [schema], [boundary], [ordering] or [estimates] *)
  path : string;  (** ["/"]-separated operator path from the plan root *)
  message : string;
  hint : string option;  (** suggested fix *)
  rule : string option;  (** offending transformation rule, when gated *)
}

val v :
  ?hint:string -> ?rule:string -> severity -> string -> path:string ->
  string -> t
(** [v severity family ~path message] builds a diagnostic. *)

val severity_name : severity -> string
val is_error : t -> bool
val errors : t list -> t list
val has_errors : t list -> bool
val count_errors : t list -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_json : t -> string
(** One JSON object; fields [severity], [family], [path], [message] and,
    when present, [hint] and [rule]. *)

val list_to_json : t list -> string
(** JSON array of {!to_json} objects. *)
