(* The static plan verifier: schema/type well-formedness, transfer-boundary
   placement, ordering-property propagation, and estimate sanity, over both
   logical (Op.t) and physical (Physical.plan) trees.  Findings are
   collected as Diag.t values — nothing raises. *)

open Tango_rel
open Tango_sql
open Tango_algebra
module Physical = Tango_volcano.Physical
module Ordering = Tango_xxl.Ordering

(* ------------------------------------------------------------------ *)
(* Diagnostic accumulation                                              *)
(* ------------------------------------------------------------------ *)

type acc = Diag.t list ref

let add (acc : acc) d = acc := d :: !acc

let error acc ?hint family ~path fmt =
  Fmt.kstr (fun m -> add acc (Diag.v ?hint Diag.Error family ~path m)) fmt

let warning acc ?hint family ~path fmt =
  Fmt.kstr (fun m -> add acc (Diag.v ?hint Diag.Warning family ~path m)) fmt

(* Short operator tags for diagnostic paths. *)
let tag = function
  | Op.Scan { table; _ } -> "SCAN(" ^ table ^ ")"
  | Op.Select _ -> "SELECT"
  | Op.Project _ -> "PROJECT"
  | Op.Sort _ -> "SORT"
  | Op.Product _ -> "PRODUCT"
  | Op.Join _ -> "JOIN"
  | Op.Temporal_join _ -> "TJOIN"
  | Op.Temporal_aggregate _ -> "TAGGR"
  | Op.Dup_elim _ -> "DUPELIM"
  | Op.Coalesce _ -> "COALESCE"
  | Op.Difference _ -> "DIFFERENCE"
  | Op.To_mw _ -> "T^M"
  | Op.To_db _ -> "T^D"

let path_of rev = String.concat "/" (List.rev rev)
let down rev op = tag op :: rev

(* ------------------------------------------------------------------ *)
(* Family 1: schema / type well-formedness                              *)
(* ------------------------------------------------------------------ *)

let dtype_name = Value.dtype_name

(* Comparisons mix freely within the numeric/chronon family; strings and
   booleans only compare with themselves. *)
let comparable a b =
  match (a, b) with
  | (Value.TInt | Value.TFloat | Value.TDate),
    (Value.TInt | Value.TFloat | Value.TDate) ->
      true
  | Value.TStr, Value.TStr | Value.TBool, Value.TBool -> true
  | _ -> false

let is_comparison = function
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true
  | _ -> false

(* Static type of an expression, or None when it cannot be computed (the
   reason is reported separately). *)
let dtype_opt s e = try Some (Scalar.dtype s e) with _ -> None

(* Report every unresolved column reference of [e] against schema [s]. *)
let check_refs acc ~path ~what s e =
  List.iter
    (fun a ->
      if not (Schema.mem s a) then
        error acc "schema" ~path
          ~hint:(Fmt.str "available attributes: %s" (Schema.to_string s))
          "%s references %s, which does not resolve in the input schema" what
          a)
    (Scalar.attrs e)

(* Type-check the interior of an expression: comparison/arithmetic operand
   compatibility, and aggregates/subqueries in scalar position. *)
let rec check_expr_types acc ~path ~what s e =
  let recur x = check_expr_types acc ~path ~what s x in
  match e with
  | Ast.Lit _ | Ast.Param _ | Ast.Col _ -> ()
  | Ast.Binop (op, a, b) ->
      recur a;
      recur b;
      (match (dtype_opt s a, dtype_opt s b) with
      | Some da, Some db when is_comparison op && not (comparable da db) ->
          warning acc "schema" ~path
            "%s compares %s with %s" what (dtype_name da) (dtype_name db)
      | _ -> ())
  | Ast.Not a | Ast.Is_null a | Ast.Is_not_null a -> recur a
  | Ast.Between (a, lo, hi) ->
      recur a;
      recur lo;
      recur hi
  | Ast.Greatest es | Ast.Least es -> List.iter recur es
  | Ast.Agg _ ->
      error acc "schema" ~path
        ~hint:"aggregates belong in Temporal_aggregate, not in predicates"
        "%s contains an aggregate in scalar position" what
  | Ast.Scalar_subquery _ | Ast.In_subquery _ | Ast.Exists _ ->
      error acc "schema" ~path
        ~hint:"middleware expressions cannot evaluate subqueries"
        "%s contains a subquery in scalar position" what

(* Full expression check; returns its static type when computable. *)
let check_expr acc ~path ~what s e =
  check_refs acc ~path ~what s e;
  check_expr_types acc ~path ~what s e;
  dtype_opt s e

let check_pred acc ~path ~what s pred =
  match check_expr acc ~path ~what s pred with
  | Some dt when dt <> Value.TBool ->
      warning acc "schema" ~path
        "%s has type %s, not BOOL (SQL truthiness applies)" what
        (dtype_name dt)
  | _ -> ()

let rec dups_of = function
  | [] -> []
  | x :: rest -> if List.mem x rest then x :: dups_of rest else dups_of rest

(* Per-node output schema from already-computed child schemas, with
   diagnostics for everything Op.schema would reject (and a few things it
   would not).  Returns None when the output schema cannot be derived. *)
let node_schema acc ~path (op : Op.t) (children : Schema.t option list) :
    Schema.t option =
  match (op, children) with
  | Op.Scan { table; alias; schema }, [] ->
      if Schema.arity schema = 0 then
        warning acc "schema" ~path "scan of %s has an empty schema" table;
      Some (Schema.qualify (Option.value alias ~default:table) schema)
  | Op.Select { pred; _ }, [ s ] ->
      Option.iter
        (fun s -> check_pred acc ~path ~what:"selection predicate" s pred)
        s;
      s
  | Op.Project { items; _ }, [ s ] -> (
      match s with
      | None -> None
      | Some s ->
          (match dups_of (List.map snd items) with
          | [] -> ()
          | d ->
              error acc "schema" ~path
                ~hint:"rename the colliding projection items"
                "projection emits duplicate output attribute(s) %s"
                (String.concat ", " d));
          let out =
            List.map
              (fun (e, name) ->
                ( name,
                  check_expr acc ~path
                    ~what:(Fmt.str "projection item %s" (Scalar.to_string e))
                    s e ))
              items
          in
          if List.for_all (fun (_, dt) -> dt <> None) out then
            Some
              (Schema.make
                 (List.map (fun (n, dt) -> (n, Option.get dt)) out))
          else None)
  | Op.Sort { order; _ }, [ s ] ->
      Option.iter
        (fun s ->
          List.iter
            (fun (k : Order.key) ->
              if not (Schema.mem s k.Order.attr) then
                error acc "schema" ~path
                  ~hint:(Fmt.str "available attributes: %s" (Schema.to_string s))
                  "sort key %s does not resolve in the input schema"
                  k.Order.attr)
            order)
        s;
      s
  | (Op.Product _ | Op.Join _), [ sl; sr ] -> (
      match (sl, sr) with
      | Some sl, Some sr ->
          let out = Schema.concat sl sr in
          (match dups_of (Schema.names out) with
          | [] -> ()
          | d ->
              warning acc "schema" ~path
                ~hint:"alias one side so attribute names stay distinct"
                "both sides expose attribute(s) %s; references are ambiguous"
                (String.concat ", " d));
          (match op with
          | Op.Join { pred; _ } ->
              check_pred acc ~path ~what:"join predicate" out pred
          | _ -> ());
          Some out
      | _ -> None)
  | Op.Temporal_join { pred; _ }, [ sl; sr ] -> (
      match (sl, sr) with
      | Some sl, Some sr ->
          let temporal side name =
            if Op.period_attrs side = None then
              error acc "schema" ~path
                ~hint:"temporal operators need period attributes T1/T2"
                "temporal join %s argument is not temporal (schema %s)" name
                (Schema.to_string side)
          in
          temporal sl "left";
          temporal sr "right";
          check_pred acc ~path ~what:"temporal-join predicate"
            (Schema.concat sl sr) pred;
          if Op.period_attrs sl = None || Op.period_attrs sr = None then None
          else
            let keep side =
              List.map
                (fun (a : Schema.attribute) -> (a.Schema.name, a.Schema.dtype))
                (Op.non_period_attrs side)
            in
            Some
              (Schema.make
                 (keep sl @ keep sr
                 @ [ ("T1", Value.TDate); ("T2", Value.TDate) ]))
      | _ -> None)
  | Op.Temporal_aggregate { group_by; aggs; _ }, [ s ] -> (
      match s with
      | None -> None
      | Some s ->
          if Op.period_attrs s = None then
            error acc "schema" ~path
              ~hint:"temporal operators need period attributes T1/T2"
              "temporal aggregation argument is not temporal (schema %s)"
              (Schema.to_string s);
          let groups_ok =
            List.for_all
              (fun g ->
                if Schema.mem s g then true
                else begin
                  error acc "schema" ~path
                    ~hint:(Fmt.str "available attributes: %s" (Schema.to_string s))
                    "grouping attribute %s does not resolve" g;
                  false
                end)
              group_by
          in
          let aggs_ok =
            List.for_all
              (fun (a : Op.agg) ->
                try
                  ignore (Op.agg_out_dtype s a);
                  true
                with Op.Ill_formed m ->
                  error acc "schema" ~path "aggregate %s is ill-formed: %s"
                    a.Op.out m;
                  false)
              aggs
          in
          if groups_ok && aggs_ok && Op.period_attrs s <> None then
            Some
              (Schema.make
                 (List.map (fun g -> (g, Schema.dtype_of s g)) group_by
                 @ [ ("T1", Value.TDate); ("T2", Value.TDate) ]
                 @ List.map
                     (fun (a : Op.agg) -> (a.Op.out, Op.agg_out_dtype s a))
                     aggs))
          else None)
  | Op.Dup_elim _, [ s ] -> s
  | Op.Coalesce _, [ s ] ->
      Option.iter
        (fun s ->
          if Op.period_attrs s = None then
            error acc "schema" ~path
              ~hint:"temporal operators need period attributes T1/T2"
              "coalescing argument is not temporal (schema %s)"
              (Schema.to_string s))
        s;
      s
  | Op.Difference _, [ sl; sr ] ->
      (match (sl, sr) with
      | Some sl, Some sr when not (Schema.union_compatible sl sr) ->
          error acc "schema" ~path
            "difference arguments are not union-compatible (%s vs %s)"
            (Schema.to_string sl) (Schema.to_string sr)
      | _ -> ());
      sl
  | (Op.To_mw _ | Op.To_db _), [ s ] -> s
  | _ ->
      error acc "schema" ~path "operator has unexpected arity";
      None

let rec schema_walk acc rev_path (op : Op.t) : Schema.t option =
  let rev_path = down rev_path op in
  let children = List.map (schema_walk acc rev_path) (Op.children op) in
  node_schema acc ~path:(path_of rev_path) op children

(* ------------------------------------------------------------------ *)
(* Family 2: transfer-boundary placement                                *)
(* ------------------------------------------------------------------ *)

(* A subtree is translation-clean when its schema resolves; only then is a
   translatability failure a boundary problem rather than a schema one. *)
let schema_clean op = match Op.schema op with _ -> true | exception _ -> false

let check_translatable acc ~path (arg : Op.t) =
  if schema_clean arg then
    match Tango_sqlgen.Translate.translate arg with
    | (_ : Ast.query) -> ()
    | exception Tango_sqlgen.Translate.Untranslatable msg ->
        error acc "boundary" ~path
          ~hint:
            "move the operator to the middleware (rules T1-T3) or restructure \
             the transfer boundary"
          "DBMS subtree under T^M is not translatable to SQL: %s" msg
    | exception _ -> ()

let rec boundary_walk acc ?(translatable = true) rev_path (op : Op.t) :
    Op.location option =
  let rev_path = down rev_path op in
  let path = path_of rev_path in
  let locs =
    List.map (boundary_walk acc ~translatable rev_path) (Op.children op)
  in
  match (op, locs) with
  | Op.Scan _, [] -> Some Op.Db
  | Op.To_mw arg, [ l ] ->
      if l = Some Op.Mw then
        error acc "boundary" ~path
          ~hint:"T^M transfers DBMS results up; drop it or pair it with T^D"
          "T^M applied to a middleware-resident argument";
      if l = Some Op.Db && translatable then check_translatable acc ~path arg;
      Some Op.Mw
  | Op.To_db _, [ l ] ->
      if l = Some Op.Db then
        error acc "boundary" ~path
          ~hint:"T^D materializes middleware results as a temp table; drop it"
          "T^D applied to a DBMS-resident argument";
      Some Op.Db
  | _, [ l ] -> l
  | _, [ ll; lr ] ->
      (match (ll, lr) with
      | Some a, Some b when a <> b ->
          error acc "boundary" ~path
            ~hint:"insert transfers so both arguments reside at one location"
            "binary operator mixes a DBMS-resident and a middleware-resident \
             argument"
      | _ -> ());
      if ll <> None then ll else lr
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Family 4 (logical part): cardinality-estimate sanity                 *)
(* ------------------------------------------------------------------ *)

let card_of env op =
  match Tango_stats.Derive.derive env op with
  | (s : Tango_stats.Rel_stats.t) -> Some s.Tango_stats.Rel_stats.card
  | exception _ -> None

let rec estimate_walk acc env rev_path (op : Op.t) : unit =
  let rev_path = down rev_path op in
  let path = path_of rev_path in
  (match card_of env op with
  | None -> ()
  | Some card ->
      if Float.is_nan card then
        error acc "estimates" ~path "cardinality estimate is NaN"
      else if card < 0.0 then
        error acc "estimates" ~path "cardinality estimate is negative (%g)"
          card
      else begin
        match op with
        | Op.Join { left; right; _ }
        | Op.Temporal_join { left; right; _ }
        | Op.Product { left; right } -> (
            match (card_of env left, card_of env right) with
            | Some l, Some r
              when (not (Float.is_nan l)) && not (Float.is_nan r) ->
                if card > (l *. r *. 1.000001) +. 1e-6 then
                  error acc "estimates" ~path
                    ~hint:"join selectivity must not exceed 1"
                    "join cardinality estimate %g exceeds the product of its \
                     inputs (%g x %g)"
                    card l r
            | _ -> ())
        | _ -> ()
      end);
  List.iter (estimate_walk acc env rev_path) (Op.children op)

(* ------------------------------------------------------------------ *)
(* Logical entry point                                                  *)
(* ------------------------------------------------------------------ *)

let check_logical ?stats_env ?expect_root ?(translatable = true) (op : Op.t) :
    Diag.t list =
  let acc : acc = ref [] in
  ignore (schema_walk acc [] op);
  let root_loc = boundary_walk acc ~translatable [] op in
  (match (expect_root, root_loc) with
  | Some want, Some got when want <> got ->
      error acc "boundary" ~path:(tag op)
        ~hint:"the query result must reach the middleware: wrap the plan in \
               T^M"
        "plan root resides at the %s, expected the %s"
        (match got with Op.Db -> "DBMS" | Op.Mw -> "middleware")
        (match want with Op.Db -> "DBMS" | Op.Mw -> "middleware")
  | _ -> ());
  (match stats_env with
  | Some env -> estimate_walk acc env [] op
  | None -> ());
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Physical plans                                                       *)
(* ------------------------------------------------------------------ *)

let algo_name = Physical.algorithm_name

(* Expected (operator constructor, node location) for each algorithm; child
   locations follow from the node location except at transfers. *)
let algo_shape (p : Physical.plan) =
  let open Physical in
  match p.algorithm with
  | Table_scan_d ->
      ((function Op.Scan _ -> true | _ -> false), Some Op.Db, Some Op.Db)
  | Filter_d -> ((function Op.Select _ -> true | _ -> false), Some Op.Db, Some Op.Db)
  | Filter_m -> ((function Op.Select _ -> true | _ -> false), Some Op.Mw, Some Op.Mw)
  | Project_d -> ((function Op.Project _ -> true | _ -> false), Some Op.Db, Some Op.Db)
  | Project_m -> ((function Op.Project _ -> true | _ -> false), Some Op.Mw, Some Op.Mw)
  | Sort_d -> ((function Op.Sort _ -> true | _ -> false), Some Op.Db, Some Op.Db)
  | Sort_m -> ((function Op.Sort _ -> true | _ -> false), Some Op.Mw, Some Op.Mw)
  | Sort_passthrough -> ((function Op.Sort _ -> true | _ -> false), None, None)
  | Join_d -> ((function Op.Join _ -> true | _ -> false), Some Op.Db, Some Op.Db)
  | Merge_join_m -> ((function Op.Join _ -> true | _ -> false), Some Op.Mw, Some Op.Mw)
  | Tjoin_d ->
      ((function Op.Temporal_join _ -> true | _ -> false), Some Op.Db, Some Op.Db)
  | Tjoin_m ->
      ((function Op.Temporal_join _ -> true | _ -> false), Some Op.Mw, Some Op.Mw)
  | Product_d -> ((function Op.Product _ -> true | _ -> false), Some Op.Db, Some Op.Db)
  | Taggr_d ->
      ((function Op.Temporal_aggregate _ -> true | _ -> false), Some Op.Db, Some Op.Db)
  | Taggr_m ->
      ((function Op.Temporal_aggregate _ -> true | _ -> false), Some Op.Mw, Some Op.Mw)
  | Dupelim_d -> ((function Op.Dup_elim _ -> true | _ -> false), Some Op.Db, Some Op.Db)
  | Dupelim_m -> ((function Op.Dup_elim _ -> true | _ -> false), Some Op.Mw, Some Op.Mw)
  | Coalesce_m -> ((function Op.Coalesce _ -> true | _ -> false), Some Op.Mw, Some Op.Mw)
  | Difference_m ->
      ((function Op.Difference _ -> true | _ -> false), Some Op.Mw, Some Op.Mw)
  | Transfer_m_algo -> ((function Op.To_mw _ -> true | _ -> false), Some Op.Mw, Some Op.Db)
  | Scatter_gather_m ->
      ((function Op.To_mw _ -> true | _ -> false), Some Op.Mw, Some Op.Db)
  | Transfer_d_algo -> ((function Op.To_db _ -> true | _ -> false), Some Op.Db, Some Op.Mw)

let schema_of_op op = try Some (Op.schema op) with _ -> None

(* Map an input order forward through projection items: the longest prefix
   whose keys are emitted as plain column items survives, renamed to the
   item's output name.  Item lookup mirrors the planner's
   [map_order_through_items] (exact match, then unique base name). *)
let project_order items (order : Order.t) : Order.t =
  let col_name = function
    | Ast.Col (None, c) -> Some c
    | Ast.Col (Some q, c) -> Some (q ^ "." ^ c)
    | _ -> None
  in
  let rec fwd = function
    | [] -> []
    | (k : Order.key) :: rest -> (
        match
          Tango_volcano.Rules.find_item_by
            (fun (e, _) -> col_name e)
            items k.Order.attr
        with
        | Some (_, out) -> { k with Order.attr = out } :: fwd rest
        | None -> [])
  in
  fwd order

(* The input order each middleware algorithm requires, per child (None =
   no requirement), straight from Tango_xxl.Ordering. *)
let input_requirements (p : Physical.plan) : Order.t option list =
  let open Physical in
  match (p.algorithm, p.op) with
  | Sort_passthrough, Op.Sort { order; _ } -> [ Some order ]
  | (Merge_join_m | Tjoin_m), (Op.Join { pred; left; right; _ } | Op.Temporal_join { pred; left; right; _ }) -> (
      match (schema_of_op left, schema_of_op right) with
      | Some sl, Some sr -> (
          match Tango_volcano.Rules.equi_pair sl sr pred with
          | Some (ja1, ja2) ->
              [ Some (Ordering.merge_join_input ja1);
                Some (Ordering.merge_join_input ja2) ]
          | None -> [ None; None ])
      | _ -> [ None; None ])
  | Taggr_m, Op.Temporal_aggregate { group_by; arg; _ } ->
      [ Option.map (fun s -> Ordering.taggr_input s ~group_by) (schema_of_op arg) ]
  | Dupelim_m, Op.Dup_elim arg ->
      [ Option.map Ordering.dup_elim_input (schema_of_op arg) ]
  | Coalesce_m, Op.Coalesce arg ->
      [ Option.map Ordering.coalesce_input (schema_of_op arg) ]
  | _ -> List.map (fun _ -> None) p.children

(* The order an algorithm's output provably has, given the orders its
   children provably have. *)
let produced_order (p : Physical.plan) (children : Order.t list) : Order.t =
  let open Physical in
  let child n = try List.nth children n with _ -> [] in
  match (p.algorithm, p.op) with
  | (Sort_d | Sort_m | Sort_passthrough), Op.Sort { order; _ } -> order
  (* the scatter's ordered gather merge preserves the per-shard streams'
     common order, i.e. the DBMS subtree's *)
  | (Filter_m | Transfer_m_algo | Scatter_gather_m), _ -> child 0
  | Project_m, Op.Project { items; _ } -> project_order items (child 0)
  | (Taggr_d | Taggr_m), Op.Temporal_aggregate { group_by; _ } ->
      Ordering.taggr_output ~group_by
  | (Merge_join_m | Tjoin_m),
    (Op.Join { pred; left; right; _ } | Op.Temporal_join { pred; left; right; _ })
    -> (
      let temporal = p.algorithm = Tjoin_m in
      match (schema_of_op left, schema_of_op right, schema_of_op p.op) with
      | Some sl, Some sr, Some out -> (
          match Tango_volcano.Rules.equi_pair sl sr pred with
          | Some (ja1, _) ->
              Ordering.merge_join_output ~temporal out ~left_key:ja1
          | None -> [])
      | _ -> [])
  | Dupelim_m, Op.Dup_elim arg -> (
      match schema_of_op arg with
      | Some s -> Ordering.dup_elim_input s
      | None -> [])
  | Coalesce_m, Op.Coalesce arg -> (
      match schema_of_op arg with
      | Some s -> Ordering.coalesce_input s
      | None -> [])
  | Difference_m, _ -> child 0
  | _ ->
      (* DBMS-side operators (other than sort/taggr) make no order promise:
         SQL results are multisets. *)
      []

let check_costs acc ~path (p : Physical.plan) =
  let bad name v =
    if Float.is_nan v then
      error acc "estimates" ~path "%s is NaN" name
    else if v < 0.0 then error acc "estimates" ~path "%s is negative (%g)" name v
  in
  bad "own_cost" p.Physical.own_cost;
  bad "total_cost" p.Physical.total_cost;
  let sum =
    List.fold_left
      (fun a (c : Physical.plan) -> a +. c.Physical.total_cost)
      p.Physical.own_cost p.Physical.children
  in
  if
    (not (Float.is_nan sum))
    && Float.abs (p.Physical.total_cost -. sum)
       > 1e-6 *. Float.max 1.0 (Float.abs sum)
  then
    warning acc "estimates" ~path
      "total_cost %g is not own_cost plus children (%g)" p.Physical.total_cost
      sum

let rec physical_walk acc rev_path (p : Physical.plan) : Order.t =
  let open Physical in
  let rev_path = algo_name p.algorithm :: rev_path in
  let path = path_of rev_path in
  let child_orders = List.map (physical_walk acc rev_path) p.children in
  (* structural consistency: the logical op must carry exactly the chosen
     children's logical subtrees *)
  if Op.children p.op <> List.map (fun (c : plan) -> c.op) p.children then
    error acc "schema" ~path
      "plan node's logical operator does not embed its children's subtrees";
  (* algorithm / operator / location agreement *)
  let matches, want_loc, want_child_loc = algo_shape p in
  if not (matches p.op) then
    error acc "schema" ~path "algorithm %s implements a different operator \
                              than %s"
      (algo_name p.algorithm) (Op.op_name p.op);
  (match want_loc with
  | Some l when l <> p.location ->
      error acc "boundary" ~path
        "%s produces a %s-resident result but the plan records %s"
        (algo_name p.algorithm)
        (match l with Op.Db -> "DBMS" | Op.Mw -> "middleware")
        (match p.location with Op.Db -> "DBMS" | Op.Mw -> "middleware")
  | _ -> ());
  (match want_child_loc with
  | Some l ->
      List.iter
        (fun (c : plan) ->
          if c.location <> l then
            error acc "boundary" ~path
              "%s needs %s-resident input but child %s is %s-resident"
              (algo_name p.algorithm)
              (match l with Op.Db -> "DBMS" | Op.Mw -> "middleware")
              (algo_name c.algorithm)
              (match c.location with Op.Db -> "DBMS" | Op.Mw -> "middleware"))
        p.children
  | None ->
      (* sort passthrough: location is inherited *)
      List.iter
        (fun (c : plan) ->
          if c.location <> p.location then
            error acc "boundary" ~path
              "sort passthrough changes location from %s to %s"
              (match c.location with Op.Db -> "DBMS" | Op.Mw -> "middleware")
              (match p.location with Op.Db -> "DBMS" | Op.Mw -> "middleware"))
        p.children);
  (* translatability of the DBMS subtree under each T^M *)
  (match (p.algorithm, p.op) with
  | (Transfer_m_algo | Scatter_gather_m), Op.To_mw arg ->
      check_translatable acc ~path arg
  | _ -> ());
  (* ordering dataflow *)
  let reqs = input_requirements p in
  List.iteri
    (fun i req ->
      match (req, List.nth_opt child_orders i) with
      | Some required, Some actual when required <> [] ->
          if not (Order.satisfies ~actual ~required) then
            error acc "ordering" ~path
              ~hint:
                (Fmt.str "insert a SORT[%s] below (or above T^M as rule \
                          T6 would)"
                   (Order.to_string required))
              "input %d must be ordered by %s but the analysis infers %s" i
              (Order.to_string required)
              (match actual with [] -> "no order" | a -> Order.to_string a)
      | _ -> ())
    reqs;
  let produced = produced_order p child_orders in
  if not (Order.satisfies ~actual:produced ~required:p.out_order) then
    error acc "ordering" ~path
      ~hint:"the optimizer's order bookkeeping disagrees with the dataflow \
             analysis: downstream passthroughs may skip a needed sort"
      "plan claims output order %s but the analysis infers %s"
      (Order.to_string p.out_order)
      (match produced with [] -> "no order" | a -> Order.to_string a);
  (* cost sanity (cardinality sanity runs over the logical tree) *)
  check_costs acc ~path p;
  produced

let check_physical ?stats_env ?partition ?required (p : Physical.plan) :
    Diag.t list =
  let acc : acc = ref [] in
  (* the logical tree the plan implements must itself be sound; skip the
     per-T^M translatability here because the physical walk re-checks it
     with algorithm-level paths *)
  List.iter (add acc)
    (check_logical ?stats_env ~translatable:false p.Physical.op);
  let root_order = physical_walk acc [] p in
  (* partition safety: every transfer over the sharded table must read
     exactly the shards that can hold matching tuples *)
  (match partition with
  | Some layout ->
      List.iter
        (fun (path, msg) -> error acc "partition" ~path "%s" msg)
        (Physical.scatter_violations layout p)
  | None -> ());
  (match required with
  | Some (r : Physical.req) ->
      if p.Physical.location <> r.Physical.loc then
        error acc "boundary" ~path:(algo_name p.Physical.algorithm)
          "plan root resides at the %s but the query requires the %s"
          (match p.Physical.location with
          | Op.Db -> "DBMS"
          | Op.Mw -> "middleware")
          (match r.Physical.loc with Op.Db -> "DBMS" | Op.Mw -> "middleware");
      if not (Order.satisfies ~actual:root_order ~required:r.Physical.order)
      then
        error acc "ordering" ~path:(algo_name p.Physical.algorithm)
          ~hint:"add a final SORT to meet the query's ORDER BY"
          "plan output order %s does not satisfy the required %s"
          (match root_order with [] -> "(none)" | a -> Order.to_string a)
          (Order.to_string r.Physical.order)
  | None -> ());
  List.rev !acc
