(** The static plan verifier.

    Four check families over logical ({!Tango_algebra.Op}) and physical
    ({!Tango_volcano.Physical}) plans:

    + {b schema} — every attribute reference resolves, predicates and
      projection items type-check against the inferred child schemas,
      temporal operators receive temporal inputs;
    + {b boundary} — transfer operators partition the tree into
      DBMS-resident and middleware-resident regions correctly, and every
      DBMS subtree under a [T^M] is expressible in the SQL subset
      ({!Tango_sqlgen.Translate});
    + {b ordering} — a dataflow analysis infers the sort order each
      physical operator provably produces (from the declarations in
      {!Tango_xxl.Ordering}) and diagnoses every operator whose input-order
      requirement is unmet, and every plan node that claims an output order
      the analysis cannot confirm;
    + {b estimates} — cardinalities and costs are nonnegative and non-NaN,
      and join cardinality estimates never exceed the product of their
      inputs.

    Nothing raises: all findings come back as {!Diag.t} values. *)

open Tango_algebra

val check_logical :
  ?stats_env:Tango_stats.Derive.env ->
  ?expect_root:Op.location ->
  ?translatable:bool ->
  Op.t ->
  Diag.t list
(** Verify a logical plan.  [expect_root] additionally requires the root
    to reside at the given location (the initial and final plans are
    middleware-resident).  [translatable] (default true) controls the
    per-[T^M] SQL translatability check.  [stats_env] enables the
    cardinality-estimate checks. *)

val check_physical :
  ?stats_env:Tango_stats.Derive.env ->
  ?partition:Tango_volcano.Partition.layout ->
  ?required:Tango_volcano.Physical.req ->
  Tango_volcano.Physical.plan ->
  Diag.t list
(** Verify a physical plan: the embedded logical tree (as
    {!check_logical}), algorithm/operator/location agreement, the ordering
    dataflow, and cost sanity.  [required] additionally checks the root
    against the query's required properties (location and final order);
    [partition] additionally checks partition safety — every transfer over
    the sharded table must read exactly the shards that can hold matching
    tuples ({!Tango_volcano.Physical.scatter_violations}). *)
