(* The rule-soundness gate: an observer for Rules.saturate that re-checks
   the invariants of every memo class a rule changes, attributing new
   diagnostics to the offending rule.

   The memo's core invariant is that all elements of a class denote the
   same relation — in particular they must agree on output schema and on
   result location, and each element must be locally well-formed.  An
   unsound rule shows up as a violation of one of these immediately after
   it fires. *)

open Tango_rel
open Tango_algebra
module Memo = Tango_volcano.Memo

type t = {
  seen : (string, unit) Hashtbl.t;  (* dedup key: rule + message *)
  poisoned : (int, unit) Hashtbl.t;  (* classes already known inconsistent *)
  mutable diags : Diag.t list;
  mutable fired : int;  (* rule applications examined *)
}

let create () =
  { seen = Hashtbl.create 64; poisoned = Hashtbl.create 8; diags = []; fired = 0 }

let report g ~rule ~path msg =
  let key = rule ^ "|" ^ msg in
  if not (Hashtbl.mem g.seen key) then begin
    Hashtbl.add g.seen key ();
    g.diags <- Diag.v ~rule Diag.Error "schema" ~path msg :: g.diags
  end

(* One representative Op.t per element: the element's own operator over
   extracted child subtrees. *)
let op_of_element m (n : Memo.node) : Op.t =
  let ex c = Memo.extract m c in
  match n with
  | Memo.N_scan { table; alias; schema } -> Op.Scan { table; alias; schema }
  | Memo.N_select { pred; arg } -> Op.Select { pred; arg = ex arg }
  | Memo.N_project { items; arg } -> Op.Project { items; arg = ex arg }
  | Memo.N_sort { order; arg } -> Op.Sort { order; arg = ex arg }
  | Memo.N_product { left; right } ->
      Op.Product { left = ex left; right = ex right }
  | Memo.N_join { pred; left; right } ->
      Op.Join { pred; left = ex left; right = ex right }
  | Memo.N_tjoin { pred; left; right } ->
      Op.Temporal_join { pred; left = ex left; right = ex right }
  | Memo.N_taggr { group_by; aggs; arg } ->
      Op.Temporal_aggregate { group_by; aggs; arg = ex arg }
  | Memo.N_dupelim arg -> Op.Dup_elim (ex arg)
  | Memo.N_coalesce arg -> Op.Coalesce (ex arg)
  | Memo.N_difference { left; right } ->
      Op.Difference { left = ex left; right = ex right }
  | Memo.N_tm arg -> Op.To_mw (ex arg)
  | Memo.N_td arg -> Op.To_db (ex arg)

(* Stored poisoned ids can go stale when a union picks a new root, so
   compare through [find]. *)
let poisoned_class g m id =
  let r = Memo.find m id in
  Hashtbl.mem g.poisoned r
  || Hashtbl.fold (fun p () acc -> acc || Memo.find m p = r) g.poisoned false

let child_classes : Memo.node -> int list = function
  | Memo.N_scan _ -> []
  | Memo.N_select { arg; _ }
  | Memo.N_project { arg; _ }
  | Memo.N_sort { arg; _ }
  | Memo.N_taggr { arg; _ }
  | Memo.N_dupelim arg | Memo.N_coalesce arg | Memo.N_tm arg | Memo.N_td arg
    -> [ arg ]
  | Memo.N_product { left; right }
  | Memo.N_join { left; right; _ }
  | Memo.N_tjoin { left; right; _ }
  | Memo.N_difference { left; right } -> [ left; right ]

let observer g ~rule (m : Memo.t) (c : int) : unit =
  g.fired <- g.fired + 1;
  let c = Memo.find m c in
  (* Once a class is known inconsistent, every later rule touching it —
     or any class built on top of it — would re-trip the same violation;
     only the first attribution names the culprit.  Skip poisoned classes,
     and silently poison classes that merely inherit corruption from a
     poisoned child. *)
  let els = Memo.elements m c in
  let inherits =
    List.exists
      (fun el -> List.exists (poisoned_class g m) (child_classes el))
      els
  in
  if poisoned_class g m c then ()
  else if inherits then Hashtbl.replace g.poisoned c ()
  else begin
  (* Poison on *detected* violations, not reported ones: a rule that
     corrupts two classes the same way produces textually identical
     messages, and the dedup must not leave the second class unpoisoned. *)
  let violated = ref false in
  let report g ~rule ~path msg =
    violated := true;
    report g ~rule ~path msg
  in
  let path = Printf.sprintf "class %d" c in
  let infos =
    List.filter_map
      (fun el ->
        match op_of_element m el with
        | exception Memo.Cyclic -> None
        | op -> (
            match (Op.schema op, Op.location op) with
            | s, l -> Some (op, s, l)
            | exception Op.Ill_formed msg ->
                report g ~rule ~path
                  (Printf.sprintf "rule produced ill-formed element %s: %s"
                     (Op.op_name op) msg);
                None))
      els
  in
  (match infos with
  | [] | [ _ ] -> ()
  | (op0, s0, l0) :: rest ->
      List.iter
        (fun (op, s, l) ->
          if not (Schema.equal s s0) then
            report g ~rule ~path
              (Printf.sprintf
                 "class elements disagree on schema: %s yields %s but %s \
                  yields %s"
                 (Op.op_name op0) (Schema.to_string s0) (Op.op_name op)
                 (Schema.to_string s));
          if l <> l0 then
            report g ~rule ~path
              (Printf.sprintf
                 "class elements disagree on location: %s is %s-resident but \
                  %s is %s-resident"
                 (Op.op_name op0)
                 (match l0 with Op.Db -> "DBMS" | Op.Mw -> "middleware")
                 (Op.op_name op)
                 (match l with Op.Db -> "DBMS" | Op.Mw -> "middleware")))
        rest);
  if !violated then Hashtbl.replace g.poisoned c ()
  end

let diagnostics g = List.rev g.diags
let checked g = g.fired
