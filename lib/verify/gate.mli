(** The per-rule soundness gate.

    A {!Tango_volcano.Rules.observer} that re-verifies every memo class a
    transformation rule changes, immediately after the rule fires: all
    elements of the class must still denote the same relation — agree on
    output schema and result location — and each element must be locally
    well-formed.  Violations become {!Diag.t} errors attributed to the
    offending rule.

    {[
      let gate = Gate.create () in
      let r = Search.optimize ~rule_observer:(Gate.observer gate) ... in
      match Gate.diagnostics gate with [] -> () | ds -> ...
    ]} *)

type t

val create : unit -> t

val observer : t -> rule:string -> Tango_volcano.Memo.t -> int -> unit
(** Pass as [?rule_observer] to {!Tango_volcano.Search.optimize} (or
    [?observer] to {!Tango_volcano.Rules.saturate}). *)

val diagnostics : t -> Diag.t list
(** Accumulated findings, deduplicated, in discovery order. *)

val checked : t -> int
(** Number of rule applications examined. *)
