(** Cost-factor calibration — the Cost Estimator's calibration phase.

    Like Du et al. [4], the middleware deduces cost factors by running a
    small set of designed probe queries against the actual substrate (its
    own algorithms, and the DBMS through the client boundary) and fitting
    the formula coefficients to measured times.  Probes use synthetic
    relations so calibration is independent of user data.

    Calibration takes a few hundred milliseconds at the default probe sizes
    and should be run once per session (the paper calibrates once per DBMS
    installation). *)

open Tango_rel
open Tango_sql
open Tango_dbms
open Tango_xxl

let now_us () = Unix.gettimeofday () *. 1_000_000.0

let time_us f =
  let t0 = now_us () in
  let r = f () in
  (now_us () -. t0, r)

(* Deterministic pseudo-random stream. *)
let lcg seed =
  let state = ref seed in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (!state lsr 13) mod bound

let probe_schema =
  Schema.make
    [ ("K", Value.TInt); ("V", Value.TFloat);
      ("T1", Value.TDate); ("T2", Value.TDate) ]

(* [keys] controls join fan-out: n distinct keys -> unique-key join. *)
let probe_relation ~n ~keys =
  let rand = lcg (n + keys) in
  Relation.of_list probe_schema
    (List.init n (fun i ->
         let t1 = rand 3000 in
         Tuple.of_list
           [
             Value.Int (if keys >= n then i else rand keys);
             Value.Float (float_of_int (rand 1000));
             Value.Date t1;
             Value.Date (t1 + 1 + rand 60);
           ]))

let bytes_of r = float_of_int (Relation.byte_size r)

(* Fit a per-byte slope from two (size, time) observations. *)
let slope (s1, t1) (s2, t2) =
  let d = s2 -. s1 in
  if d <= 0.0 then Float.max 1e-6 (t2 /. s2) else Float.max 1e-6 ((t2 -. t1) /. d)

type probe_sizes = { small : int; large : int }

let default_sizes = { small = 1_000; large = 4_000 }

(* ------------------------------------------------------------------ *)
(* Refitting from observed executions                                   *)
(* ------------------------------------------------------------------ *)

(** One observed execution attributed to a cost factor: the formula's size
    term [x] (bytes, possibly scaled by merge levels or predicate terms —
    the caller evaluates the formula structure) and the measured time.
    The profiling layer produces these from EXPLAIN ANALYZE records. *)
type observation = { factor : string; x : float; elapsed_us : float }

(** Least-squares slope through the origin for [t = p * x] — the same
    single-coefficient model the probe fits use, but over arbitrarily many
    observations instead of two designed sizes.  [None] when the
    observations carry no usable signal. *)
let fit_slope (obs : (float * float) list) : float option =
  let sxx, sxt =
    List.fold_left
      (fun (sxx, sxt) (x, t) ->
        if x > 0.0 && Float.is_finite t && t >= 0.0 then
          (sxx +. (x *. x), sxt +. (x *. t))
        else (sxx, sxt))
      (0.0, 0.0) obs
  in
  if sxx <= 0.0 then None else Some (Float.max 1e-6 (sxt /. sxx))

(** Refit factors from observed executions: every factor name with at
    least [min_samples] observations gets its coefficient re-estimated by
    {!fit_slope}; all others keep their value from [base].  Returns the
    fresh factors plus the names actually refitted — [base] itself is not
    modified, mirroring {!run}. *)
let refit ?(min_samples = 3) ~(base : Factors.t) (obs : observation list) :
    Factors.t * string list =
  let f = Factors.copy base in
  let by_factor : (string, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun o ->
      let cell =
        match Hashtbl.find_opt by_factor o.factor with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.replace by_factor o.factor c;
            c
      in
      cell := (o.x, o.elapsed_us) :: !cell)
    obs;
  let refitted =
    Hashtbl.fold
      (fun name cell acc ->
        if List.length !cell < min_samples then acc
        else
          match fit_slope !cell with
          | Some p when Factors.set_by_name f name p -> name :: acc
          | _ -> acc)
      by_factor []
  in
  (f, List.sort compare refitted)

(** Run calibration against [client]'s database.  Returns fresh factors;
    does not modify any existing ones. *)
let run ?(sizes = default_sizes) (client : Client.t) : Factors.t =
  let db = Client.database client in
  let f = Factors.default () in
  let r_small = probe_relation ~n:sizes.small ~keys:max_int in
  let r_large = probe_relation ~n:sizes.large ~keys:max_int in
  let s_small = bytes_of r_small and s_large = bytes_of r_large in
  let with_tables k =
    Database.load_relation db "CAL_SMALL" r_small;
    Database.load_relation db "CAL_LARGE" r_large;
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun t -> if Database.table_exists db t then Database.drop_table db t)
          [ "CAL_SMALL"; "CAL_LARGE"; "CAL_TD" ])
      k
  in
  with_tables (fun () ->
      (* --- DBMS scan: COUNT(STAR) avoids transfer --- *)
      let scan_time name =
        fst
          (time_us (fun () ->
               Database.query db (Printf.sprintf "SELECT COUNT(*) AS C FROM %s" name)))
      in
      let t_scan_small = scan_time "CAL_SMALL" in
      let t_scan_large = scan_time "CAL_LARGE" in
      f.p_scan <- slope (s_small, t_scan_small) (s_large, t_scan_large);
      f.p_isc <- f.p_scan *. 1.5;
      (* --- TRANSFER^M: fetch everything, minus the scan component --- *)
      let fetch_time name =
        fst
          (time_us (fun () ->
               ignore
                 (Client.fetch_all
                    (Client.execute_query client
                       (Printf.sprintf "SELECT K, V, T1, T2 FROM %s" name)))))
      in
      let t_tm = slope (s_small, fetch_time "CAL_SMALL") (s_large, fetch_time "CAL_LARGE") in
      f.p_tm <- Float.max 1e-6 (t_tm -. f.p_scan);
      (* --- TRANSFER^D: bulk load --- *)
      let load_time r =
        let t, () =
          time_us (fun () ->
              ignore
                (Client.bulk_load client ~table:"CAL_TD" probe_schema
                   (Array.to_seq (Relation.tuples r))))
        in
        Database.drop_table db "CAL_TD";
        t
      in
      f.p_td <- slope (s_small, load_time r_small) (s_large, load_time r_large);
      (* --- SORT^M --- *)
      let sort_time r =
        fst
          (time_us (fun () ->
               ignore
                 (Cursor.to_relation
                    (Sort.sort [ Order.asc "K" ] (Cursor.of_relation r)))))
      in
      f.p_sortm <-
        Float.max 1e-6
          (sort_time r_large /. (s_large *. Formulas.sort_levels ~size:s_large));
      (* --- FILTER^M (single-term predicate) --- *)
      let pred = Ast.Binop (Ast.Lt, Ast.Col (None, "K"), Ast.Lit (Value.Int (sizes.large / 2))) in
      let t_filter =
        fst
          (time_us (fun () ->
               ignore
                 (Cursor.to_relation
                    (Basic_ops.filter pred (Cursor.of_relation r_large)))))
      in
      f.p_sem <- Float.max 1e-6 (t_filter /. s_large);
      (* --- PROJECT^M --- *)
      let t_project =
        fst
          (time_us (fun () ->
               ignore
                 (Cursor.to_relation
                    (Basic_ops.project_attrs [ "K"; "T1" ] (Cursor.of_relation r_large)))))
      in
      f.p_pm <- Float.max 1e-6 (t_project /. s_large);
      (* --- MERGEJOIN^M on unique keys (low output) --- *)
      let qual alias r = Relation.make (Schema.qualify alias probe_schema) (Relation.tuples r) in
      let sorted alias r =
        Sort.sort [ Order.asc (alias ^ ".K") ] (Cursor.of_relation (qual alias r))
      in
      let t_mj, mj_out =
        time_us (fun () ->
            Cursor.to_relation
              (Joins.merge_join ~left_keys:[ "A.K" ] ~right_keys:[ "B.K" ]
                 (sorted "A" r_large) (sorted "B" r_large)))
      in
      let mj_sort = 2.0 *. Formulas.sort_m f ~size:s_large in
      (* Residual fits can dip below zero when the subtracted sort estimate
         overshoots; floor them at a fraction of the raw per-byte time so
         the factors stay meaningful. *)
      let floor_fit ~raw fit = Float.max (0.05 *. raw) fit in
      f.p_mjm2 <- f.p_pm;
      f.p_mjm1 <-
        floor_fit
          ~raw:(t_mj /. (2.0 *. s_large))
          ((t_mj -. mj_sort -. (f.p_mjm2 *. float_of_int (Relation.byte_size mj_out)))
          /. (2.0 *. s_large));
      (* --- TJOIN^M --- *)
      let t_tj, tj_out =
        time_us (fun () ->
            Cursor.to_relation
              (Joins.temporal_merge_join ~pred:(Ast.Lit (Value.Bool true))
                 ~left_keys:[ "A.K" ] ~right_keys:[ "B.K" ]
                 (sorted "A" r_large) (sorted "B" r_large)))
      in
      f.p_tjm2 <- f.p_pm;
      f.p_tjm1 <-
        floor_fit
          ~raw:(t_tj /. (2.0 *. s_large))
          ((t_tj -. mj_sort -. (f.p_tjm2 *. float_of_int (Relation.byte_size tj_out)))
          /. (2.0 *. s_large));
      (* --- TAGGR^M: grouped data (groups of ~8) --- *)
      let r_groups = probe_relation ~n:sizes.large ~keys:(sizes.large / 8) in
      let s_groups = bytes_of r_groups in
      let t_tg, tg_out =
        time_us (fun () ->
            Cursor.to_relation
              (Taggr.taggr ~group_by:[ "K" ]
                 ~aggs:[ Tango_algebra.Op.count_star "CNT" ]
                 (Sort.sort [ Order.asc "K"; Order.asc "T1" ]
                    (Cursor.of_relation r_groups))))
      in
      let tg_sorts =
        (* external argument sort + internal second-copy sort *)
        2.0 *. Formulas.sort_m f ~size:s_groups
      in
      f.p_taggm2 <- f.p_pm;
      f.p_taggm1 <-
        floor_fit ~raw:(t_tg /. s_groups)
          ((t_tg -. tg_sorts
           -. (f.p_taggm2 *. float_of_int (Relation.byte_size tg_out)))
          /. s_groups);
      (* --- SORT^D: ordered derived table under an aggregate --- *)
      let sortd_time name =
        fst
          (time_us (fun () ->
               Database.query db
                 (Printf.sprintf
                    "SELECT COUNT(*) AS C FROM (SELECT K FROM %s ORDER BY K) g"
                    name)))
      in
      let levels = Formulas.sort_levels ~size:s_large in
      let t_sortd = sortd_time "CAL_LARGE" in
      f.p_sortd <-
        floor_fit
          ~raw:(t_sortd /. (s_large *. levels))
          ((t_sortd -. t_scan_large) /. (s_large *. levels));
      (* --- JOIN^D: two runs with different fan-outs to fit both terms --- *)
      let join_time fanout =
        let r1 = probe_relation ~n:sizes.small ~keys:(if fanout then 64 else max_int) in
        Database.load_relation db "CAL_J1" r1;
        let t, out =
          time_us (fun () ->
              Database.query db
                "SELECT COUNT(*) AS C FROM (SELECT A.K AS K FROM CAL_J1 A, \
                 CAL_J1 B WHERE A.K = B.K) g")
        in
        let out_card =
          Value.to_int (Relation.tuples out).(0).(0)
        in
        Database.drop_table db "CAL_J1";
        (t, float_of_int out_card *. 8.0)
      in
      let t_j_low, out_low = join_time false in
      let t_j_high, out_high = join_time true in
      let in_size = 2.0 *. bytes_of (probe_relation ~n:sizes.small ~keys:max_int) in
      (* t = j1*in + j2*out for both runs; same in, different out *)
      let d_out = out_high -. out_low in
      f.p_joind2 <-
        (if d_out > 0.0 then Float.max 1e-6 ((t_j_high -. t_j_low) /. d_out)
         else f.p_joind2);
      f.p_joind1 <-
        Float.max 1e-6 ((t_j_low -. (f.p_joind2 *. out_low)) /. in_size);
      f.p_cartd <- f.p_joind2;
      (* --- TAGGR^D: the 50-line SQL at two small sizes --- *)
      let taggr_sql name =
        Printf.sprintf
          "SELECT g.K AS K, g.TS AS T1, g.TE AS T2, COUNT(*) AS CNT FROM \
           (SELECT p1.K AS K, p1.T AS TS, (SELECT MIN(p2.T) FROM (SELECT K, \
           T1 AS T FROM %s UNION SELECT K, T2 AS T FROM %s) p2 WHERE p2.K = \
           p1.K AND p2.T > p1.T) AS TE FROM (SELECT K, T1 AS T FROM %s UNION \
           SELECT K, T2 AS T FROM %s) p1) g, %s r WHERE g.TE IS NOT NULL AND \
           r.K = g.K AND r.T1 <= g.TS AND r.T2 >= g.TE GROUP BY g.K, g.TS, \
           g.TE ORDER BY K, T1"
          name name name name name
      in
      let taggd_time n =
        let r = probe_relation ~n ~keys:(max 4 (n / 8)) in
        Database.load_relation db "CAL_TG" r;
        let t, _ = time_us (fun () -> Database.query db (taggr_sql "CAL_TG")) in
        Database.drop_table db "CAL_TG";
        (bytes_of r, t)
      in
      let o1 = taggd_time (sizes.small / 4) in
      let o2 = taggd_time (sizes.small / 2) in
      f.p_taggd2 <- f.p_joind2;
      f.p_taggd1 <- slope o1 o2;
      f)
