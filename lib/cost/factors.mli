(** Cost factors — the [p] coefficients of the paper's cost formulas
    (Figure 6 and the "generic" DBMS formulas of [20]).

    Units: microseconds per byte of relation data ([size(r)] is in
    bytes).  The defaults are order-of-magnitude guesses good enough
    for unit tests; real runs determine them with {!Calibrate} and the
    middleware's feedback loop may adapt them after each query.

    Domain safety: a [t] is a plain mutable record with no internal
    lock.  Refit and blend operate on a private {!copy} that is swapped
    in whole; treat a shared [t] as read-only. *)

type t = {
  (* transfers *)
  mutable p_tm : float;  (** [TRANSFER^M] per byte *)
  mutable p_td : float;  (** [TRANSFER^D] per byte *)
  (* middleware algorithms *)
  mutable p_sem : float;  (** [FILTER^M] per byte per predicate term *)
  mutable p_pm : float;  (** [PROJECT^M] per byte *)
  mutable p_sortm : float;  (** [SORT^M] per byte per merge level *)
  mutable p_mjm1 : float;  (** [MERGEJOIN^M] per input byte *)
  mutable p_mjm2 : float;  (** [MERGEJOIN^M] per output byte *)
  mutable p_tjm1 : float;  (** [TJOIN^M] per input byte *)
  mutable p_tjm2 : float;  (** [TJOIN^M] per output byte *)
  mutable p_taggm1 : float;  (** [TAGGR^M] per input byte *)
  mutable p_taggm2 : float;  (** [TAGGR^M] per output byte *)
  mutable p_dupm : float;  (** [DUPELIM^M] per byte *)
  mutable p_coalm : float;  (** [COALESCE^M] per byte *)
  mutable p_diffm : float;  (** [DIFFERENCE^M] per byte *)
  (* generic DBMS algorithms *)
  mutable p_scan : float;  (** full table scan per byte *)
  mutable p_isc : float;  (** index scan per fetched byte *)
  mutable p_sortd : float;  (** DBMS sort per byte per log2(blocks) *)
  mutable p_joind1 : float;  (** DBMS join per input byte *)
  mutable p_joind2 : float;  (** DBMS join per output byte *)
  mutable p_cartd : float;  (** DBMS Cartesian product per output byte *)
  mutable p_taggd1 : float;  (** DBMS temporal aggregation per input byte *)
  mutable p_taggd2 : float;  (** DBMS temporal aggregation per output byte *)
}

val default : unit -> t
val copy : t -> t

val to_assoc : t -> (string * float) list
(** All factors by field name — the stable keys used by the refit and
    profiling machinery ({!Calibrate.refit}, [Tango_profile]) and by
    JSON exports. *)

val get_by_name : t -> string -> float option

val set_by_name : t -> string -> float -> bool
(** Set a factor by field name; [false] when the name is unknown. *)

val to_json : t -> Tango_obs.Json.t

val blend : alpha:float -> t -> t -> unit
(** [blend ~alpha current observed] mixes measured factors into the
    current ones in place ([alpha] = weight of the new observation). *)

val pp : Format.formatter -> t -> unit
