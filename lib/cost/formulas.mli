(** The cost formulas (paper Figure 6 plus the generic DBMS formulas of
    [20]).  All return microseconds; [size] arguments are bytes
    ({!Tango_stats.Rel_stats.size}).

    Paper conventions: initialization costs are zero; output formation is
    free for sorting, selection and projection; selection and projection in
    the DBMS are free. *)

open Tango_sql

val log2 : float -> float

val sort_levels : size:float -> float
(** Merge levels of an external sort over [size] bytes. *)

val transfer_m : Factors.t -> size:float -> float
val transfer_d : Factors.t -> size:float -> float

val gather_m : Factors.t -> size:float -> ways:int -> float
(** Ordered k-way merge of per-shard `TRANSFER^M` streams ([ways]
    sources, [size] total bytes): one merge level at the sort rate. *)

val predicate_coefficient : Ast.expr -> float
(** The selection-condition coefficient f(P): number of atomic terms. *)

val filter_m : Factors.t -> pred:Ast.expr -> size:float -> float
val project_m : Factors.t -> size:float -> float
val sort_m : Factors.t -> size:float -> float
val merge_join_m :
  Factors.t -> left_size:float -> right_size:float -> out_size:float -> float
val temporal_join_m :
  Factors.t -> left_size:float -> right_size:float -> out_size:float -> float

val taggr_m : Factors.t -> in_size:float -> out_size:float -> float
(** `TAGGR^M`: the internal second-copy sort plus linear input/output
    terms.  The {e external} argument sort is a separate plan operator. *)

val dup_elim_m : Factors.t -> size:float -> float
val coalesce_m : Factors.t -> size:float -> float
val difference_m : Factors.t -> left_size:float -> right_size:float -> float

val scan_d : Factors.t -> size:float -> float
val index_scan_d : Factors.t -> fetched_size:float -> float
val select_d : size:float -> float
val project_d : size:float -> float
val sort_d : Factors.t -> size:float -> float

val join_d :
  Factors.t -> left_size:float -> right_size:float -> out_size:float -> float
(** Generic DBMS join: the middleware "does not know which join algorithm
    the DBMS will use". *)

val index_join_d : Factors.t -> outer_size:float -> out_size:float -> float
(** DBMS join when one side has a usable index on the join attribute. *)

val product_d : Factors.t -> out_size:float -> float

val taggr_d : Factors.t -> in_size:float -> out_size:float -> float
(** DBMS temporal aggregation — the simplified linear model of Figure 6
    (the real SQL evaluation is quadratic, which calibration surfaces as a
    very large per-byte factor). *)
