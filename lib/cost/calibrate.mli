(** Cost-factor calibration — the Cost Estimator's calibration phase.

    Like Du et al. [4], factors are deduced by running designed probe
    queries against the actual substrate and fitting the formula
    coefficients to measured times.  Probes use synthetic relations, so
    calibration is independent of user data; it takes a few hundred
    milliseconds at the default sizes and is run once per DBMS
    installation. *)

open Tango_dbms

type probe_sizes = { small : int; large : int }

val default_sizes : probe_sizes

val run : ?sizes:probe_sizes -> Client.t -> Factors.t
(** Calibrate against the client's database; returns fresh factors and
    leaves no tables behind. *)

(** {2 Refitting from observed executions}

    The adaptive half of the paper's calibrate-then-adapt story: instead
    of designed probes, fit coefficients to what real queries measurably
    cost (fed by [Tango_profile]'s EXPLAIN ANALYZE records). *)

type observation = {
  factor : string;  (** a {!Factors.t} field name, e.g. ["p_tm"] *)
  x : float;
      (** the formula's size term for this execution (bytes, possibly
          scaled by merge levels / predicate terms) *)
  elapsed_us : float;  (** measured time attributed to this factor *)
}

val fit_slope : (float * float) list -> float option
(** Least-squares slope through the origin for [(x, t)] pairs; [None]
    without usable signal. *)

val refit :
  ?min_samples:int -> base:Factors.t -> observation list -> Factors.t * string list
(** Re-estimate every factor with at least [min_samples] (default 3)
    observations; others keep their [base] value.  Returns fresh factors
    (base unmodified) and the names refitted. *)
