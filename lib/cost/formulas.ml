(** The cost formulas (paper Figure 6, plus the generic DBMS formulas of
    [20]).  All take and return microseconds; [size] arguments are bytes
    ([Rel_stats.size]).

    Conventions from the paper: initialization costs are zero; output
    formation is free for sorting, selection, and projection; selection and
    projection in the DBMS are free (folded into whatever SQL runs them). *)

open Tango_sql

let log2 x = if x <= 2.0 then 1.0 else Float.log x /. Float.log 2.0

(* Merge levels of an external sort over [size] bytes. *)
let sort_levels ~size =
  let pages = Float.max 2.0 (size /. 8192.0) in
  log2 pages

(* --- transfers --- *)

let transfer_m (f : Factors.t) ~size = f.p_tm *. size
let transfer_d (f : Factors.t) ~size = f.p_td *. size

(* Gathering k per-shard sorted streams is one merge level of a k-way
   external sort: log2(k) comparisons per byte at the sort-merge rate. *)
let gather_m (f : Factors.t) ~size ~ways =
  if ways <= 1 then 0.0 else f.p_sortm *. size *. log2 (float_of_int ways)

(* --- middleware algorithms --- *)

(** Selection-condition coefficient f(P): the number of atomic terms. *)
let rec predicate_coefficient (p : Ast.expr) : float =
  match p with
  | Ast.Binop ((Ast.And | Ast.Or), a, b) ->
      predicate_coefficient a +. predicate_coefficient b
  | Ast.Not a -> predicate_coefficient a
  | _ -> 1.0

let filter_m (f : Factors.t) ~pred ~size =
  f.p_sem *. predicate_coefficient pred *. size

let project_m (f : Factors.t) ~size = f.p_pm *. size

let sort_m (f : Factors.t) ~size = f.p_sortm *. size *. sort_levels ~size

let merge_join_m (f : Factors.t) ~left_size ~right_size ~out_size =
  (f.p_mjm1 *. (left_size +. right_size)) +. (f.p_mjm2 *. out_size)

let temporal_join_m (f : Factors.t) ~left_size ~right_size ~out_size =
  (f.p_tjm1 *. (left_size +. right_size)) +. (f.p_tjm2 *. out_size)

(** `TAGGR^M` (Figure 6): the internal sort of the second argument copy plus
    linear terms in input and output size.  The *external* argument sort is
    a separate plan operator and is costed where it runs. *)
let taggr_m (f : Factors.t) ~in_size ~out_size =
  sort_m f ~size:in_size +. (f.p_taggm1 *. in_size) +. (f.p_taggm2 *. out_size)

let dup_elim_m (f : Factors.t) ~size = f.p_dupm *. size
let coalesce_m (f : Factors.t) ~size = f.p_coalm *. size

let difference_m (f : Factors.t) ~left_size ~right_size =
  f.p_diffm *. (left_size +. right_size)

(* --- generic DBMS algorithms --- *)

let scan_d (f : Factors.t) ~size = f.p_scan *. size
let index_scan_d (f : Factors.t) ~fetched_size = f.p_isc *. fetched_size
let select_d ~size = ignore size; 0.0
let project_d ~size = ignore size; 0.0

let sort_d (f : Factors.t) ~size = f.p_sortd *. size *. sort_levels ~size

(** Generic DBMS join: the middleware "does not know which join algorithm
    the DBMS will use", so one formula covers them all. *)
let join_d (f : Factors.t) ~left_size ~right_size ~out_size =
  (f.p_joind1 *. (left_size +. right_size)) +. (f.p_joind2 *. out_size)

(** DBMS join when one side has a usable index on the join attribute: the
    outer side is scanned and the inner side probed, so the inner's size
    drops out of the formula (catalog "index availability" put to use). *)
let index_join_d (f : Factors.t) ~outer_size ~out_size =
  (f.p_joind1 *. outer_size) +. (f.p_isc *. out_size)

let product_d (f : Factors.t) ~out_size = f.p_cartd *. out_size

(** DBMS temporal aggregation — the simplified linear model of Figure 6.
    The real SQL evaluation is quadratic, which is exactly why calibrating
    this line at moderate sizes yields a very large [p_taggd1] and the
    optimizer learns to avoid `TAGGR^D` except on tiny inputs. *)
let taggr_d (f : Factors.t) ~in_size ~out_size =
  (f.p_taggd1 *. in_size) +. (f.p_taggd2 *. out_size)
