(** Cost factors — the [p] coefficients of the paper's cost formulas
    (Figure 6 and the "generic" DBMS formulas of [20]).

    Units: microseconds per byte of relation data ([size(r)] is in bytes).
    The defaults below are order-of-magnitude guesses good enough for unit
    tests; real runs determine them with {!Calibrate}, the analogue of the
    Cost Estimator module's calibration phase (Du et al. style), and the
    middleware's feedback loop may adapt them after each query. *)

type t = {
  (* transfers *)
  mutable p_tm : float;  (** `TRANSFER^M` per byte *)
  mutable p_td : float;  (** `TRANSFER^D` per byte *)
  (* middleware algorithms *)
  mutable p_sem : float;  (** `FILTER^M` per byte per predicate term *)
  mutable p_pm : float;  (** `PROJECT^M` per byte *)
  mutable p_sortm : float;  (** `SORT^M` per byte per merge level *)
  mutable p_mjm1 : float;  (** `MERGEJOIN^M` per input byte *)
  mutable p_mjm2 : float;  (** `MERGEJOIN^M` per output byte *)
  mutable p_tjm1 : float;  (** `TJOIN^M` per input byte *)
  mutable p_tjm2 : float;  (** `TJOIN^M` per output byte *)
  mutable p_taggm1 : float;  (** `TAGGR^M` per input byte *)
  mutable p_taggm2 : float;  (** `TAGGR^M` per output byte *)
  mutable p_dupm : float;  (** `DUPELIM^M` per byte *)
  mutable p_coalm : float;  (** `COALESCE^M` per byte *)
  mutable p_diffm : float;  (** `DIFFERENCE^M` per byte *)
  (* generic DBMS algorithms *)
  mutable p_scan : float;  (** full table scan per byte *)
  mutable p_isc : float;  (** index scan per fetched byte *)
  mutable p_sortd : float;  (** DBMS sort per byte per log2(blocks) *)
  mutable p_joind1 : float;  (** DBMS join per input byte *)
  mutable p_joind2 : float;  (** DBMS join per output byte *)
  mutable p_cartd : float;  (** DBMS Cartesian product per output byte *)
  mutable p_taggd1 : float;  (** DBMS temporal aggregation per input byte *)
  mutable p_taggd2 : float;  (** DBMS temporal aggregation per output byte *)
}

let default () =
  {
    p_tm = 0.5;
    p_td = 0.6;
    p_sem = 0.02;
    p_pm = 0.02;
    p_sortm = 0.02;
    p_mjm1 = 0.05;
    p_mjm2 = 0.02;
    p_tjm1 = 0.05;
    p_tjm2 = 0.02;
    p_taggm1 = 0.08;
    p_taggm2 = 0.03;
    p_dupm = 0.02;
    p_coalm = 0.02;
    p_diffm = 0.04;
    p_scan = 0.05;
    p_isc = 0.08;
    p_sortd = 0.03;
    p_joind1 = 0.08;
    p_joind2 = 0.03;
    p_cartd = 0.05;
    p_taggd1 = 5.0;
    p_taggd2 = 0.5;
  }

let copy (f : t) = { f with p_tm = f.p_tm }

(** All factors by field name — the stable keys used by the refit and
    profiling machinery ({!Calibrate.refit}, [Tango_profile]) and by JSON
    exports. *)
let to_assoc (f : t) : (string * float) list =
  [
    ("p_tm", f.p_tm); ("p_td", f.p_td); ("p_sem", f.p_sem); ("p_pm", f.p_pm);
    ("p_sortm", f.p_sortm); ("p_mjm1", f.p_mjm1); ("p_mjm2", f.p_mjm2);
    ("p_tjm1", f.p_tjm1); ("p_tjm2", f.p_tjm2); ("p_taggm1", f.p_taggm1);
    ("p_taggm2", f.p_taggm2); ("p_dupm", f.p_dupm); ("p_coalm", f.p_coalm);
    ("p_diffm", f.p_diffm); ("p_scan", f.p_scan); ("p_isc", f.p_isc);
    ("p_sortd", f.p_sortd); ("p_joind1", f.p_joind1); ("p_joind2", f.p_joind2);
    ("p_cartd", f.p_cartd); ("p_taggd1", f.p_taggd1); ("p_taggd2", f.p_taggd2);
  ]

let get_by_name (f : t) name : float option =
  List.assoc_opt name (to_assoc f)

(** Set a factor by field name; [false] when the name is unknown. *)
let set_by_name (f : t) name v : bool =
  match name with
  | "p_tm" -> f.p_tm <- v; true
  | "p_td" -> f.p_td <- v; true
  | "p_sem" -> f.p_sem <- v; true
  | "p_pm" -> f.p_pm <- v; true
  | "p_sortm" -> f.p_sortm <- v; true
  | "p_mjm1" -> f.p_mjm1 <- v; true
  | "p_mjm2" -> f.p_mjm2 <- v; true
  | "p_tjm1" -> f.p_tjm1 <- v; true
  | "p_tjm2" -> f.p_tjm2 <- v; true
  | "p_taggm1" -> f.p_taggm1 <- v; true
  | "p_taggm2" -> f.p_taggm2 <- v; true
  | "p_dupm" -> f.p_dupm <- v; true
  | "p_coalm" -> f.p_coalm <- v; true
  | "p_diffm" -> f.p_diffm <- v; true
  | "p_scan" -> f.p_scan <- v; true
  | "p_isc" -> f.p_isc <- v; true
  | "p_sortd" -> f.p_sortd <- v; true
  | "p_joind1" -> f.p_joind1 <- v; true
  | "p_joind2" -> f.p_joind2 <- v; true
  | "p_cartd" -> f.p_cartd <- v; true
  | "p_taggd1" -> f.p_taggd1 <- v; true
  | "p_taggd2" -> f.p_taggd2 <- v; true
  | _ -> false

let to_json (f : t) : Tango_obs.Json.t =
  Tango_obs.Json.Obj
    (List.map (fun (n, v) -> (n, Tango_obs.Json.Float v)) (to_assoc f))

(** Blend measured factors into the current ones — used by the feedback
    loop ([alpha] = weight of the new observation). *)
let blend ~(alpha : float) (current : t) (observed : t) =
  let mix a b = ((1.0 -. alpha) *. a) +. (alpha *. b) in
  current.p_tm <- mix current.p_tm observed.p_tm;
  current.p_td <- mix current.p_td observed.p_td;
  current.p_sem <- mix current.p_sem observed.p_sem;
  current.p_pm <- mix current.p_pm observed.p_pm;
  current.p_sortm <- mix current.p_sortm observed.p_sortm;
  current.p_mjm1 <- mix current.p_mjm1 observed.p_mjm1;
  current.p_mjm2 <- mix current.p_mjm2 observed.p_mjm2;
  current.p_tjm1 <- mix current.p_tjm1 observed.p_tjm1;
  current.p_tjm2 <- mix current.p_tjm2 observed.p_tjm2;
  current.p_taggm1 <- mix current.p_taggm1 observed.p_taggm1;
  current.p_taggm2 <- mix current.p_taggm2 observed.p_taggm2;
  current.p_scan <- mix current.p_scan observed.p_scan;
  current.p_sortd <- mix current.p_sortd observed.p_sortd;
  current.p_joind1 <- mix current.p_joind1 observed.p_joind1;
  current.p_joind2 <- mix current.p_joind2 observed.p_joind2;
  current.p_taggd1 <- mix current.p_taggd1 observed.p_taggd1;
  current.p_taggd2 <- mix current.p_taggd2 observed.p_taggd2

let pp ppf f =
  Fmt.pf ppf
    "tm=%.4f td=%.4f sem=%.4f sortm=%.4f mjm=%.4f/%.4f tjm=%.4f/%.4f \
     taggm=%.4f/%.4f scan=%.4f sortd=%.4f joind=%.4f/%.4f taggd=%.4f/%.4f"
    f.p_tm f.p_td f.p_sem f.p_sortm f.p_mjm1 f.p_mjm2 f.p_tjm1 f.p_tjm2
    f.p_taggm1 f.p_taggm2 f.p_scan f.p_sortd f.p_joind1 f.p_joind2 f.p_taggd1
    f.p_taggd2
