(** The logical temporal algebra.

    Operator trees describe *what* to compute; *where* each part runs is
    expressed by the two transfer operators ([To_mw] = the paper's [T^M],
    [To_db] = [T^D]).  An operator's result is DBMS-resident or
    middleware-resident depending on the transfers below it; the initial
    plan produced from a query assigns everything to the DBMS and puts a
    single [To_mw] on top (paper Section 2.1).

    Temporal relations carry their valid-time period in two attributes with
    base names [T1] and [T2] (closed-open).  Temporal operators locate them
    by base name. *)

open Tango_rel
open Tango_sql

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

(** Where a relation resides. *)
type location = Db | Mw

(** One aggregate of a temporal aggregation: function, argument attribute
    ([None] for [COUNT(STAR)]), and output attribute name. *)
type agg = { fn : Ast.aggfun; arg : string option; out : string }

type t =
  | Scan of { table : string; alias : string option; schema : Schema.t }
      (** base relation in the DBMS; [schema] is the base (unqualified)
          schema — the node's output schema is qualified by [alias] or
          [table] *)
  | Select of { pred : Ast.expr; arg : t }  (** σ *)
  | Project of { items : (Ast.expr * string) list; arg : t }
      (** generalized π: expressions with output names *)
  | Sort of { order : Order.t; arg : t }
  | Product of { left : t; right : t }  (** Cartesian × *)
  | Join of { pred : Ast.expr; left : t; right : t }  (** ⋈ *)
  | Temporal_join of { pred : Ast.expr; left : t; right : t }
      (** ⋈ᵀ: [pred] plus implicit period overlap; the result period is the
          intersection, exposed as unqualified [T1]/[T2] *)
  | Temporal_aggregate of { group_by : string list; aggs : agg list; arg : t }
      (** ξᵀ over constant intervals *)
  | Dup_elim of t  (** duplicate elimination *)
  | Coalesce of t
      (** coalesce periods of value-equivalent tuples (paper Section 7
          extension) *)
  | Difference of { left : t; right : t }  (** multiset difference *)
  | To_mw of t  (** T^M: DBMS → middleware *)
  | To_db of t  (** T^D: middleware → DBMS *)

(* ------------------------------------------------------------------ *)
(* Schema inference                                                     *)
(* ------------------------------------------------------------------ *)

(** Find the period attributes (base names [T1]/[T2]) of a schema. *)
let period_attrs (s : Schema.t) : (string * string) option =
  let find base =
    List.find_opt
      (fun a -> String.equal (Schema.base_name a.Schema.name) base)
      (Schema.attributes s)
  in
  match (find "T1", find "T2") with
  | Some a1, Some a2 -> Some (a1.Schema.name, a2.Schema.name)
  | _ -> None

let is_temporal (s : Schema.t) = period_attrs s <> None

let non_period_attrs (s : Schema.t) =
  match period_attrs s with
  | None -> Schema.attributes s
  | Some (t1, t2) ->
      List.filter
        (fun a ->
          not (String.equal a.Schema.name t1 || String.equal a.Schema.name t2))
        (Schema.attributes s)

let agg_out_dtype (schema : Schema.t) (a : agg) : Value.dtype =
  match (a.fn, a.arg) with
  | (Ast.Count_star | Ast.Count), _ -> Value.TInt
  | Ast.Avg, _ -> Value.TFloat
  | (Ast.Sum | Ast.Min | Ast.Max), Some attr -> Schema.dtype_of schema attr
  | (Ast.Sum | Ast.Min | Ast.Max), None ->
      ill_formed "aggregate %s needs an argument" (Ast.aggfun_name a.fn)

(** Output schema of an operator tree.  Raises {!Ill_formed} when attribute
    references do not resolve. *)
let rec schema (op : t) : Schema.t =
  match op with
  | Scan { table; alias; schema = s } ->
      Schema.qualify (Option.value alias ~default:table) s
  | Select { pred; arg } ->
      let s = schema arg in
      if not (Scalar.covers s pred) then
        ill_formed "selection predicate %s does not resolve"
          (Scalar.to_string pred);
      s
  | Project { items; arg } ->
      let s = schema arg in
      Schema.make
        (List.map
           (fun (e, name) ->
             if not (Scalar.covers s e) then
               ill_formed "projection %s does not resolve" (Scalar.to_string e);
             (name, Scalar.dtype s e))
           items)
  | Sort { order; arg } ->
      let s = schema arg in
      List.iter
        (fun k ->
          if not (Schema.mem s k.Order.attr) then
            ill_formed "sort attribute %s does not resolve" k.Order.attr)
        order;
      s
  | Product { left; right } | Join { left; right; _ } ->
      Schema.concat (schema left) (schema right)
  | Temporal_join { left; right; pred } ->
      let sl = schema left and sr = schema right in
      let () =
        match (period_attrs sl, period_attrs sr) with
        | Some _, Some _ -> ()
        | _ -> ill_formed "temporal join arguments must both be temporal"
      in
      let keep side =
        List.map (fun (a : Schema.attribute) -> (a.name, a.dtype)) (non_period_attrs side)
      in
      let out =
        Schema.make
          (keep sl @ keep sr @ [ ("T1", Value.TDate); ("T2", Value.TDate) ])
      in
      if not (Scalar.covers (Schema.concat sl sr) pred) then
        ill_formed "temporal join predicate %s does not resolve"
          (Scalar.to_string pred);
      out
  | Temporal_aggregate { group_by; aggs; arg } ->
      let s = schema arg in
      if period_attrs s = None then
        ill_formed "temporal aggregation argument must be temporal";
      let groups =
        List.map
          (fun g ->
            if not (Schema.mem s g) then
              ill_formed "grouping attribute %s does not resolve" g;
            (g, Schema.dtype_of s g))
          group_by
      in
      Schema.make
        (groups
        @ [ ("T1", Value.TDate); ("T2", Value.TDate) ]
        @ List.map (fun a -> (a.out, agg_out_dtype s a)) aggs)
  | Dup_elim arg | Coalesce arg -> schema arg
  | Difference { left; right } ->
      let sl = schema left and sr = schema right in
      if not (Schema.union_compatible sl sr) then
        ill_formed "difference arguments are not union-compatible";
      sl
  | To_mw arg | To_db arg -> schema arg

(* ------------------------------------------------------------------ *)
(* Location inference                                                   *)
(* ------------------------------------------------------------------ *)

(** Residence of an operator's result. *)
let rec location (op : t) : location =
  match op with
  | Scan _ -> Db
  | To_mw _ -> Mw
  | To_db _ -> Db
  | Select { arg; _ } | Project { arg; _ } | Sort { arg; _ }
  | Temporal_aggregate { arg; _ } | Dup_elim arg | Coalesce arg ->
      location arg
  | Product { left; right } | Join { left; right; _ }
  | Temporal_join { left; right; _ } | Difference { left; right } ->
      let ll = location left and lr = location right in
      if ll <> lr then
        ill_formed "binary operator with arguments in different locations";
      ll

(** Validate a whole tree: schemas resolve, binary locations agree, and
    transfers alternate sensibly ([To_mw] takes a DBMS-resident argument,
    [To_db] a middleware-resident one). *)
let rec validate (op : t) : unit =
  ignore (schema op);
  ignore (location op);
  match op with
  | Scan _ -> ()
  | To_mw arg ->
      if location arg <> Db then ill_formed "T^M over a middleware relation";
      validate arg
  | To_db arg ->
      if location arg <> Mw then ill_formed "T^D over a DBMS relation";
      validate arg
  | Select { arg; _ } | Project { arg; _ } | Sort { arg; _ }
  | Temporal_aggregate { arg; _ } | Dup_elim arg | Coalesce arg ->
      validate arg
  | Product { left; right } | Join { left; right; _ }
  | Temporal_join { left; right; _ } | Difference { left; right } ->
      validate left;
      validate right

(* ------------------------------------------------------------------ *)
(* Traversal helpers                                                    *)
(* ------------------------------------------------------------------ *)

let children = function
  | Scan _ -> []
  | Select { arg; _ } | Project { arg; _ } | Sort { arg; _ }
  | Temporal_aggregate { arg; _ } | Dup_elim arg | Coalesce arg | To_mw arg
  | To_db arg ->
      [ arg ]
  | Product { left; right } | Join { left; right; _ }
  | Temporal_join { left; right; _ } | Difference { left; right } ->
      [ left; right ]

let with_children op args =
  match (op, args) with
  | Scan _, [] -> op
  | Select s, [ a ] -> Select { s with arg = a }
  | Project p, [ a ] -> Project { p with arg = a }
  | Sort s, [ a ] -> Sort { s with arg = a }
  | Temporal_aggregate g, [ a ] -> Temporal_aggregate { g with arg = a }
  | Dup_elim _, [ a ] -> Dup_elim a
  | Coalesce _, [ a ] -> Coalesce a
  | To_mw _, [ a ] -> To_mw a
  | To_db _, [ a ] -> To_db a
  | Product _, [ l; r ] -> Product { left = l; right = r }
  | Join j, [ l; r ] -> Join { j with left = l; right = r }
  | Temporal_join j, [ l; r ] -> Temporal_join { j with left = l; right = r }
  | Difference _, [ l; r ] -> Difference { left = l; right = r }
  | _ -> invalid_arg "Op.with_children: arity mismatch"

let rec size (op : t) = 1 + List.fold_left (fun n c -> n + size c) 0 (children op)

(** Rewrite every scalar expression in the tree with [f] (predicates and
    projection items; grouping/aggregate/sort attributes are names, not
    expressions, and pass through). *)
let rec map_exprs f (op : t) : t =
  let op =
    match op with
    | Select s -> Select { s with pred = f s.pred }
    | Project p ->
        Project { p with items = List.map (fun (e, n) -> (f e, n)) p.items }
    | Join j -> Join { j with pred = f j.pred }
    | Temporal_join j -> Temporal_join { j with pred = f j.pred }
    | Scan _ | Sort _ | Product _ | Temporal_aggregate _ | Dup_elim _
    | Coalesce _ | Difference _ | To_mw _ | To_db _ ->
        op
  in
  with_children op (List.map (map_exprs f) (children op))

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                      *)
(* ------------------------------------------------------------------ *)

let op_name = function
  | Scan { table; alias; _ } ->
      Printf.sprintf "SCAN(%s%s)" table
        (match alias with Some a -> " " ^ a | None -> "")
  | Select { pred; _ } -> Printf.sprintf "SELECT[%s]" (Scalar.to_string pred)
  | Project { items; _ } ->
      Printf.sprintf "PROJECT[%s]"
        (String.concat ", "
           (List.map
              (fun (e, n) ->
                let s = Scalar.to_string e in
                if String.equal s n then s else s ^ " AS " ^ n)
              items))
  | Sort { order; _ } -> Printf.sprintf "SORT[%s]" (Order.to_string order)
  | Product _ -> "PRODUCT"
  | Join { pred; _ } -> Printf.sprintf "JOIN[%s]" (Scalar.to_string pred)
  | Temporal_join { pred; _ } ->
      Printf.sprintf "TJOIN[%s]" (Scalar.to_string pred)
  | Temporal_aggregate { group_by; aggs; _ } ->
      Printf.sprintf "TAGGR[%s; %s]"
        (String.concat ", " group_by)
        (String.concat ", "
           (List.map
              (fun a ->
                Printf.sprintf "%s(%s) AS %s" (Ast.aggfun_name a.fn)
                  (Option.value a.arg ~default:"*")
                  a.out)
              aggs))
  | Dup_elim _ -> "DUPELIM"
  | Coalesce _ -> "COALESCE"
  | Difference _ -> "DIFFERENCE"
  | To_mw _ -> "T^M"
  | To_db _ -> "T^D"

let rec pp ?(indent = 0) ppf op =
  Fmt.pf ppf "%s%s@." (String.make indent ' ') (op_name op);
  List.iter (pp ~indent:(indent + 2) ppf) (children op)

let to_string op = Fmt.str "%a" (pp ~indent:0) op

(* Convenience constructors *)

let scan ?alias table schema_ = Scan { table; alias; schema = schema_ }
let select pred arg = Select { pred; arg }
let project items arg = Project { items; arg }

(** Projection onto named attributes (identity expressions). *)
let project_attrs names arg =
  Project
    {
      items =
        List.map (fun n -> (Ast.Col (None, n), Schema.base_name n)) names;
      arg;
    }

let sort order arg = Sort { order; arg }
let join pred left right = Join { pred; left; right }
let temporal_join pred left right = Temporal_join { pred; left; right }

let temporal_aggregate group_by aggs arg =
  Temporal_aggregate { group_by; aggs; arg }

let count_star out = { fn = Ast.Count_star; arg = None; out }
let agg fn arg out = { fn; arg = Some arg; out }
let to_mw arg = To_mw arg
let to_db arg = To_db arg
