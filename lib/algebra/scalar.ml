(** Scalar expressions of the middleware algebra.

    The algebra reuses the SQL expression AST ({!Tango_sql.Ast.expr}) for
    predicates and projection functions, which makes the Translator-To-SQL a
    plain embedding.  Middleware-side evaluation is provided here;
    subqueries and aggregates are not valid in this position and raise. *)

open Tango_rel
open Tango_sql

exception Unsupported of string

let unsupported what = raise (Unsupported what)

let truthy = function Value.Bool b -> b | Value.Null -> false | _ -> true

(* SQL comparison semantics: NULL operands compare to false. *)
let compare_op op a b =
  if Value.is_null a || Value.is_null b then Value.Bool false
  else
    let c = Value.compare a b in
    Value.Bool
      (match op with
      | Ast.Eq -> c = 0
      | Ast.Neq -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0
      | Ast.And | Ast.Or | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
          invalid_arg "Scalar.compare_op")

(** [compile schema e]: resolve all columns of [e] against [schema] and
    return an evaluator over tuples of that schema. *)
let rec compile (schema : Schema.t) (e : Ast.expr) : Tuple.t -> Value.t =
  let recur = compile schema in
  match e with
  | Ast.Lit v -> fun _ -> v
  | Ast.Param n ->
      (* templates are instantiated (Param -> Lit) before any evaluator
         is built; reaching one here means a missing bind *)
      unsupported (Printf.sprintf "unbound parameter $%d" n)
  | Ast.Col (q, c) -> (
      let name = match q with None -> c | Some q -> q ^ "." ^ c in
      match Schema.index_opt schema name with
      | Some i -> fun t -> t.(i)
      | None -> unsupported ("unknown column " ^ name))
  | Ast.Binop (Ast.And, a, b) ->
      let fa = recur a and fb = recur b in
      fun t -> Value.Bool (truthy (fa t) && truthy (fb t))
  | Ast.Binop (Ast.Or, a, b) ->
      let fa = recur a and fb = recur b in
      fun t -> Value.Bool (truthy (fa t) || truthy (fb t))
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op), a, b) ->
      let fa = recur a and fb = recur b in
      let f =
        match op with
        | Ast.Add -> Value.add
        | Ast.Sub -> Value.sub
        | Ast.Mul -> Value.mul
        | Ast.Div -> Value.div
        | _ -> assert false
      in
      fun t -> f (fa t) (fb t)
  | Ast.Binop (op, a, b) ->
      let fa = recur a and fb = recur b in
      fun t -> compare_op op (fa t) (fb t)
  | Ast.Not a ->
      let fa = recur a in
      fun t -> Value.Bool (not (truthy (fa t)))
  | Ast.Is_null a ->
      let fa = recur a in
      fun t -> Value.Bool (Value.is_null (fa t))
  | Ast.Is_not_null a ->
      let fa = recur a in
      fun t -> Value.Bool (not (Value.is_null (fa t)))
  | Ast.Between (a, lo, hi) ->
      let fa = recur a and flo = recur lo and fhi = recur hi in
      fun t ->
        let v = fa t in
        Value.Bool
          (truthy (compare_op Ast.Ge v (flo t))
          && truthy (compare_op Ast.Le v (fhi t)))
  | Ast.Greatest (x :: xs) ->
      let fx = recur x and fxs = List.map recur xs in
      fun t -> List.fold_left (fun acc f -> Value.greatest acc (f t)) (fx t) fxs
  | Ast.Least (x :: xs) ->
      let fx = recur x and fxs = List.map recur xs in
      fun t -> List.fold_left (fun acc f -> Value.least acc (f t)) (fx t) fxs
  | Ast.Greatest [] | Ast.Least [] -> unsupported "empty GREATEST/LEAST"
  | Ast.Agg _ -> unsupported "aggregate in scalar position"
  | Ast.Scalar_subquery _ | Ast.In_subquery _ | Ast.Exists _ ->
      unsupported "subquery in middleware expression"

(** Evaluate once (compile-and-apply); for hot paths, [compile] first. *)
let eval schema e t = compile schema e t

(** Predicate view. *)
let compile_pred schema e =
  let f = compile schema e in
  fun t -> truthy (f t)

(** Attributes referenced by an expression, as resolved base names. *)
let attrs (e : Ast.expr) : string list =
  List.sort_uniq String.compare
    (List.map
       (fun (q, c) -> match q with None -> c | Some q -> q ^ "." ^ c)
       (Ast.columns e))

(** Do all attribute references of [e] resolve in [schema]? *)
let covers (schema : Schema.t) (e : Ast.expr) =
  List.for_all (fun a -> Schema.mem schema a) (attrs e)

(** Static type of a middleware expression under [schema]. *)
let rec dtype (schema : Schema.t) (e : Ast.expr) : Value.dtype =
  match e with
  | Ast.Lit Value.Null -> Value.TInt
  | Ast.Lit v -> Value.type_of v
  | Ast.Param _ ->
      (* like [Lit Null]: the value is unknown while planning a
         template, and comparisons type TBool without consulting it *)
      Value.TInt
  | Ast.Col (q, c) ->
      let name = match q with None -> c | Some q -> q ^ "." ^ c in
      Schema.dtype_of schema name
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op, a, b) -> (
      match (op, dtype schema a, dtype schema b) with
      | _, Value.TFloat, _ | _, _, Value.TFloat | Ast.Div, _, _ -> Value.TFloat
      | Ast.Add, Value.TDate, Value.TInt | Ast.Add, Value.TInt, Value.TDate ->
          Value.TDate
      | Ast.Sub, Value.TDate, Value.TInt -> Value.TDate
      | Ast.Sub, Value.TDate, Value.TDate -> Value.TInt
      | _ -> Value.TInt)
  | Ast.Binop _ | Ast.Not _ | Ast.Is_null _ | Ast.Is_not_null _
  | Ast.Between _ ->
      Value.TBool
  | Ast.Greatest (x :: _) | Ast.Least (x :: _) -> dtype schema x
  | Ast.Greatest [] | Ast.Least [] -> unsupported "empty GREATEST/LEAST"
  | Ast.Agg _ | Ast.Scalar_subquery _ | Ast.In_subquery _ | Ast.Exists _ ->
      unsupported "non-scalar expression"

(** Substitute column references via [f] (used when renaming through
    projections). *)
let rec map_cols f (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Lit _ | Ast.Param _ -> e
  | Ast.Col (q, c) -> f q c
  | Ast.Binop (op, a, b) -> Ast.Binop (op, map_cols f a, map_cols f b)
  | Ast.Not a -> Ast.Not (map_cols f a)
  | Ast.Is_null a -> Ast.Is_null (map_cols f a)
  | Ast.Is_not_null a -> Ast.Is_not_null (map_cols f a)
  | Ast.Between (a, b, c) ->
      Ast.Between (map_cols f a, map_cols f b, map_cols f c)
  | Ast.Greatest es -> Ast.Greatest (List.map (map_cols f) es)
  | Ast.Least es -> Ast.Least (List.map (map_cols f) es)
  | Ast.Agg (fn, a) -> Ast.Agg (fn, Option.map (map_cols f) a)
  | Ast.Scalar_subquery _ | Ast.In_subquery _ | Ast.Exists _ ->
      unsupported "subquery in middleware expression"

let to_string = Printer.expr_to_sql
