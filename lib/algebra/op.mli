(** The logical temporal algebra.

    Operator trees describe {e what} to compute; {e where} each part runs is
    expressed by the two transfer operators ([To_mw] = the paper's [T^M],
    [To_db] = [T^D]).  The initial plan produced from a query assigns
    everything to the DBMS with a single [To_mw] on top (paper §2.1).

    Temporal relations carry their valid-time period in two attributes with
    base names [T1] and [T2] (closed-open); temporal operators locate them
    by base name. *)

open Tango_rel

exception Ill_formed of string

val ill_formed : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Ill_formed} with a formatted message. *)

(** Where a relation resides. *)
type location = Db | Mw

(** One aggregate of a temporal aggregation: function, argument attribute
    ([None] for [COUNT(STAR)]), and output attribute name. *)
type agg = { fn : Tango_sql.Ast.aggfun; arg : string option; out : string }

type t =
  | Scan of { table : string; alias : string option; schema : Schema.t }
      (** base relation in the DBMS; the node's output schema is [schema]
          qualified by [alias] (or the table name) *)
  | Select of { pred : Tango_sql.Ast.expr; arg : t }
  | Project of { items : (Tango_sql.Ast.expr * string) list; arg : t }
      (** generalized projection: expressions with output names *)
  | Sort of { order : Order.t; arg : t }
  | Product of { left : t; right : t }
  | Join of { pred : Tango_sql.Ast.expr; left : t; right : t }
  | Temporal_join of { pred : Tango_sql.Ast.expr; left : t; right : t }
      (** [pred] plus implicit period overlap; the result period is the
          intersection, exposed as unqualified [T1]/[T2] *)
  | Temporal_aggregate of { group_by : string list; aggs : agg list; arg : t }
      (** ξᵀ over constant intervals *)
  | Dup_elim of t
  | Coalesce of t
      (** merge periods of value-equivalent tuples (paper §7 extension) *)
  | Difference of { left : t; right : t }  (** multiset difference *)
  | To_mw of t  (** T^M: DBMS → middleware *)
  | To_db of t  (** T^D: middleware → DBMS *)

(** {1 Schema and period helpers} *)

val period_attrs : Schema.t -> (string * string) option
(** The period attributes (base names [T1]/[T2]) of a schema, if present. *)

val is_temporal : Schema.t -> bool
val non_period_attrs : Schema.t -> Schema.attribute list
val agg_out_dtype : Schema.t -> agg -> Value.dtype

val schema : t -> Schema.t
(** Output schema; raises {!Ill_formed} when attribute references do not
    resolve. *)

val location : t -> location
(** Residence of the operator's result; raises {!Ill_formed} when a binary
    operator mixes locations. *)

val validate : t -> unit
(** Check the whole tree: schemas resolve, binary locations agree, and
    transfers alternate sensibly. *)

(** {1 Traversal} *)

val children : t -> t list
val with_children : t -> t list -> t
val size : t -> int

val map_exprs : (Tango_sql.Ast.expr -> Tango_sql.Ast.expr) -> t -> t
(** Rewrite every scalar expression in the tree with [f] (predicates
    and projection items; grouping/aggregate/sort attributes are names,
    not expressions, and pass through). *)

(** {1 Printing} *)

val op_name : t -> string
val pp : ?indent:int -> Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Constructors} *)

val scan : ?alias:string -> string -> Schema.t -> t
val select : Tango_sql.Ast.expr -> t -> t
val project : (Tango_sql.Ast.expr * string) list -> t -> t

val project_attrs : string list -> t -> t
(** Projection onto named attributes (outputs carry base names). *)

val sort : Order.t -> t -> t
val join : Tango_sql.Ast.expr -> t -> t -> t
val temporal_join : Tango_sql.Ast.expr -> t -> t -> t
val temporal_aggregate : string list -> agg list -> t -> t
val count_star : string -> agg
val agg : Tango_sql.Ast.aggfun -> string -> string -> agg
val to_mw : t -> t
val to_db : t -> t
