/* Monotonic clock for duration measurement.
 *
 * Spans, phase timings and lock wait/hold intervals must not jump when
 * the wall clock steps (NTP, manual adjustment), so durations are taken
 * from CLOCK_MONOTONIC.  Wall time (Unix.gettimeofday) remains the
 * source for timestamps that must be meaningful outside the process.
 */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value tango_clock_monotonic_us(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec * 1e6 +
                          (double)ts.tv_nsec * 1e-3);
}
