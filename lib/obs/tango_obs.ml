(** TANGO observability: spans, counters and histograms for the whole
    middleware stack.

    The paper's thesis is deciding {e where} work runs — middleware or
    DBMS — from cost estimates and measured feedback; this module makes
    those decisions observable.  Three primitives:

    - {b counters} ({!Counter}): monotonic event counts (page reads,
      round trips, tuples shipped, rules fired).  Always live — an
      increment is one atomic add on a domain-local shard — and
      registered by name in a process-wide registry.
    - {b histograms} ({!Histogram}): labeled value distributions
      (per-operator drain times, tuples per cursor open).  Same registry.
    - {b spans} ({!Trace}): a hierarchical timed trace of one query
      (parse/optimize/translate/execute phases, with the executed operator
      tree grafted underneath).  Collection is {e off by default}: when no
      trace is active, [Trace.span] is a single branch and closure call,
      so instrumented code pays near-zero overhead.

    Domain safety: counters are {!Dsync.Sharded} cells (lock-free
    increments, folded at read time), histograms take a per-instance
    {!Dsync} lock around their compound updates, the name registries are
    guarded by one registry lock, and trace collection state lives in
    domain-local storage — every domain collects its own trace.

    Everything is exported three ways: a rendered span tree
    ([Trace.render], the EXPLAIN-ANALYZE-style output of
    [tango --trace]), machine-readable JSON ([Trace.to_json],
    [Registry.to_json], consumed by [bench/main.ml]), and the
    programmatic {!Registry.snapshot} API. *)

module Clock = Clock
module Dsync = Dsync
module Runtime = Runtime

let now_us () = Clock.wall_us ()
let mono_us = Clock.mono_us

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s
  [@@tango.unguarded "renders into a call-local Buffer sink; never shared"]

  let rec emit b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_finite f then
          (* shortest representation that round-trips *)
          Buffer.add_string b (Printf.sprintf "%.17g" f)
        else Buffer.add_string b "null"
    | String s ->
        Buffer.add_char b '"';
        escape b s;
        Buffer.add_char b '"'
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            emit b x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape b k;
            Buffer.add_string b "\":";
            emit b v)
          kvs;
        Buffer.add_char b '}'
  [@@tango.unguarded "renders into a call-local Buffer sink; never shared"]

  let to_string j =
    let b = Buffer.create 256 in
    emit b j;
    Buffer.contents b

  (* Minimal recursive-descent reader for the same document model — just
     enough for request bodies ([POST /query] with bound parameters).
     Numbers with a fraction or exponent become [Float], others [Int];
     the only escapes decoded are the ones [escape] emits (plus [\/] and
     [\b], [\f] passed through; [\uXXXX] below 0x80 decodes, the rest is
     kept verbatim — good enough for SQL text and parameter values). *)
  exception Parse_error of string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let w = String.length word in
      if !pos + w <= n && String.sub s !pos w = word then begin
        pos := !pos + w;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              if !pos + 1 >= n then fail "dangling escape";
              (match s.[!pos + 1] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if !pos + 5 >= n then fail "truncated \\u escape";
                  let hex = String.sub s (!pos + 2) 4 in
                  (match int_of_string_opt ("0x" ^ hex) with
                  | Some code when code < 0x80 ->
                      Buffer.add_char b (Char.chr code)
                  | Some _ -> Buffer.add_string b ("\\u" ^ hex)
                  | None -> fail "bad \\u escape");
                  pos := !pos + 4
              | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
              pos := !pos + 2;
              go ()
          | c ->
              Buffer.add_char b c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      if peek () = Some '-' then incr pos;
      let is_num = ref false in
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' -> true
        | '.' | 'e' | 'E' | '+' | '-' ->
            is_num := true;
            true
        | _ -> false
      do
        incr pos
      done;
      let text = String.sub s start (!pos - start) in
      if !is_num then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  items (v :: acc)
              | Some ']' ->
                  incr pos;
                  List (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            items []
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos < n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg
end

(* One lock guards the find-or-create name registries of both counters
   and histograms (creation is rare; reads fold atomics or take the
   per-instance lock, never this one). *)
let registry_lock = Dsync.named_lock "obs.registry"

(* ------------------------------------------------------------------ *)
(* Counters                                                             *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { name : string; cells : Dsync.Sharded.t }

  (* process-wide registry; [make] is find-or-create so independent
     modules referring to the same name share one counter *)
  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let make name =
    Dsync.protect registry_lock (fun () ->
        match Hashtbl.find_opt registry name with
        | Some c -> c
        | None ->
            let c = { name; cells = Dsync.Sharded.create () } in
            Hashtbl.replace registry name c;
            c)

  let name c = c.name
  let incr c = Dsync.Sharded.incr c.cells
  let add c n = Dsync.Sharded.add c.cells n
  let value c = Dsync.Sharded.value c.cells
  let reset c = Dsync.Sharded.reset c.cells
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                           *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  (* Quantiles come from a fixed-size uniform sample maintained with
     reservoir sampling (Vitter's algorithm R).  The replacement stream is
     a private LCG seeded from the histogram name, so quantiles are
     deterministic across runs — important for tests and for diffing
     metric exports. *)
  let reservoir_capacity = 512

  (* Fixed exponential bucket bounds shared by every histogram: 1, 2, 4,
     ... 2^23 (≈8.4e6).  With the usual microsecond observations that
     spans 1µs to ~8.4s at factor 2; one extra overflow cell catches the
     rest.  Fixed bounds make bucket counts additive — snapshots diff
     elementwise and render directly as Prometheus cumulative buckets. *)
  let bucket_bounds = Array.init 24 (fun i -> float_of_int (1 lsl i))

  (* Exemplar: a concrete observation pinned to the bucket it fell in,
     carrying enough identity (query seq + trace/fingerprint id) to jump
     from an anonymous histogram bucket to the exact query that produced
     it.  Last-exemplar-per-bucket: each new exemplared observation
     overwrites its bucket's cell, so a scrape always sees a recent
     representative of every populated latency band. *)
  type exemplar = {
    ex_seq : int;  (** query sequence number (event-log key) *)
    ex_trace_id : string;  (** fingerprint / trace identity *)
    ex_value : float;  (** the observed value itself *)
    ex_at_us : float;  (** wall-clock time of the observation, µs *)
  }

  type t = {
    name : string;
    lock : Dsync.lock;  (** guards every mutable field below *)
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
    buckets : int array;  (** per-bucket counts; last cell is overflow *)
    exemplars : exemplar option array;  (** last exemplar per bucket *)
    reservoir : float array;  (** first [filled] cells are the sample *)
    mutable filled : int;
    mutable rng : int;  (** LCG state for reservoir replacement *)
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let seed_of name = (Hashtbl.hash name lor 1) land 0x3FFFFFFF

  let make name =
    Dsync.protect registry_lock (fun () ->
        match Hashtbl.find_opt registry name with
        | Some h -> h
        | None ->
            let h =
              {
                name;
                (* every histogram's instance lock aggregates into one
                   contention-profile family *)
                lock = Dsync.named_lock "obs.histogram";
                count = 0;
                sum = 0.0;
                min = infinity;
                max = neg_infinity;
                buckets = Array.make (Array.length bucket_bounds + 1) 0;
                exemplars = Array.make (Array.length bucket_bounds + 1) None;
                reservoir = Array.make reservoir_capacity 0.0;
                filled = 0;
                rng = seed_of name;
              }
            in
            Hashtbl.replace registry name h;
            h)

  let name h = h.name

  (* Index of the first bound >= v, or the overflow cell.  A linear scan
     over 24 bounds beats binary search at this size and the typical
     (small-duration) observation lands in the first few cells anyway. *)
  let bucket_index v =
    let n = Array.length bucket_bounds in
    let rec go i = if i >= n || v <= bucket_bounds.(i) then i else go (i + 1) in
    go 0

  let observe ?exemplar h v =
    Dsync.protect h.lock (fun () ->
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        (let i = bucket_index v in
         h.buckets.(i) <- h.buckets.(i) + 1;
         match exemplar with
         | None -> ()
         | Some ex -> h.exemplars.(i) <- Some ex);
        if v < h.min then h.min <- v;
        if v > h.max then h.max <- v;
        if h.filled < reservoir_capacity then begin
          h.reservoir.(h.filled) <- v;
          h.filled <- h.filled + 1
        end
        else begin
          (* keep each of the [count] observations in the sample with
             equal probability capacity/count (LCG replacement stream) *)
          h.rng <- ((h.rng * 1103515245) + 12345) land 0x3FFFFFFF;
          let j = (h.rng lsr 7) mod h.count in
          if j < reservoir_capacity then h.reservoir.(j) <- v
        end)

  (* Single-word reads: atomic at the hardware level, no lock needed. *)
  let count h = h.count
  let sum h = h.sum
  let min_value h = if h.count = 0 then 0.0 else h.min
  let max_value h = if h.count = 0 then 0.0 else h.max
  let mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

  (* Compound reads copy under the instance lock so concurrent observes
     cannot tear them. *)
  let bucket_counts h = Dsync.protect h.lock (fun () -> Array.copy h.buckets)

  let bucket_exemplars h =
    Dsync.protect h.lock (fun () -> Array.copy h.exemplars)

  (* Unlocked bodies, shared by the public accessors (which take the
     lock) and {!snapshot_stats} (which computes everything under one
     acquisition).  Only called with [h.lock] held. *)

  let exemplar_list_unlocked h =
    let n = Array.length bucket_bounds in
    let acc = ref [] in
    for i = Array.length h.exemplars - 1 downto 0 do
      match h.exemplars.(i) with
      | None -> ()
      | Some ex ->
          let bound = if i >= n then infinity else bucket_bounds.(i) in
          acc := (bound, ex) :: !acc
    done;
    !acc

  let cumulative_buckets_unlocked h =
    let acc = ref 0 in
    let below =
      Array.to_list
        (Array.mapi
           (fun i bound ->
             acc := !acc + h.buckets.(i);
             (bound, !acc))
           bucket_bounds)
    in
    below @ [ (infinity, h.count) ]

  let quantile_unlocked h q =
    if h.filled = 0 then 0.0
    else begin
      let sample = Array.sub h.reservoir 0 h.filled in
      Array.sort compare sample;
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let idx = int_of_float ((q *. float_of_int (h.filled - 1)) +. 0.5) in
      sample.(idx)
    end

  (** The exemplars present, as [(bucket upper bound, exemplar)] pairs in
      bound order; the overflow cell reports bound [infinity]. *)
  let exemplar_list h = Dsync.protect h.lock (fun () -> exemplar_list_unlocked h)

  (** Cumulative (bound, count-of-observations <= bound) pairs over the
      fixed bounds, closed by [(infinity, count)] — the Prometheus
      [le=...] series. *)
  let cumulative_buckets h =
    Dsync.protect h.lock (fun () -> cumulative_buckets_unlocked h)

  let quantile h q = Dsync.protect h.lock (fun () -> quantile_unlocked h q)

  (* Every statistic under one lock acquisition: the registry snapshot
     uses this so a histogram's stats are mutually consistent (count,
     sum, buckets and quantiles all describe the same instant — no torn
     snapshots under concurrent observes). *)
  let snapshot_stats h =
    Dsync.protect h.lock (fun () ->
        ( h.count,
          h.sum,
          (if h.count = 0 then 0.0 else h.min),
          (if h.count = 0 then 0.0 else h.max),
          (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count),
          quantile_unlocked h 0.50,
          quantile_unlocked h 0.95,
          quantile_unlocked h 0.99,
          cumulative_buckets_unlocked h,
          exemplar_list_unlocked h ))

  let reset h =
    Dsync.protect h.lock (fun () ->
        h.count <- 0;
        h.sum <- 0.0;
        h.min <- infinity;
        h.max <- neg_infinity;
        Array.fill h.buckets 0 (Array.length h.buckets) 0;
        Array.fill h.exemplars 0 (Array.length h.exemplars) None;
        h.filled <- 0;
        h.rng <- seed_of h.name)
end

(* ------------------------------------------------------------------ *)
(* Registry snapshots                                                   *)
(* ------------------------------------------------------------------ *)

module Registry = struct
  type histogram_stats = {
    count : int;
    sum : float;
    min : float;
    max : float;
    mean : float;
    p50 : float;  (** reservoir-estimated quantiles *)
    p95 : float;
    p99 : float;
    buckets : (float * int) list;
        (** cumulative [(upper bound, observations <= bound)] over
            {!Histogram.bucket_bounds}, closed by [(infinity, count)] *)
    exemplars : (float * Histogram.exemplar) list;
        (** [(bucket upper bound, last exemplar seen in that bucket)],
            in bound order; overflow reports [infinity] *)
  }

  type snapshot = {
    counters : (string * int) list;  (** sorted by name *)
    histograms : (string * histogram_stats) list;  (** sorted by name *)
  }

  let snapshot () : snapshot =
    (* Collect the instances under the registry lock (a concurrent
       [make] may be resizing the tables), then read each instance
       through its own domain-safe accessors. *)
    let counter_list =
      Dsync.protect registry_lock (fun () ->
          Hashtbl.fold (fun name c acc -> (name, c) :: acc) Counter.registry [])
    and histogram_list =
      Dsync.protect registry_lock (fun () ->
          Hashtbl.fold
            (fun name h acc -> (name, h) :: acc)
            Histogram.registry [])
    in
    let counters =
      List.map (fun (name, c) -> (name, Counter.value c)) counter_list
      |> List.sort compare
    in
    let histograms =
      List.map
        (fun (name, h) ->
          let ( count,
                sum,
                min,
                max,
                mean,
                p50,
                p95,
                p99,
                buckets,
                exemplars ) =
            Histogram.snapshot_stats h
          in
          (name, { count; sum; min; max; mean; p50; p95; p99; buckets; exemplars }))
        histogram_list
      |> List.sort compare
    in
    { counters; histograms }

  let counter_value (s : snapshot) name =
    match List.assoc_opt name s.counters with Some v -> v | None -> 0

  (** [diff later earlier]: per-counter deltas, and per-histogram deltas
      of the additive statistics — count, sum and the fixed-bound bucket
      counts (with the mean recomputed from the deltas).  [min]/[max] and
      the reservoir quantiles cannot be recovered for an interval from
      aggregate state, so they are carried over from [later] verbatim. *)
  let diff (later : snapshot) (earlier : snapshot) : snapshot =
    let diff_hist name (l : histogram_stats) : histogram_stats =
      match List.assoc_opt name earlier.histograms with
      | None -> l
      | Some e ->
          let count = l.count - e.count in
          let sum = l.sum -. e.sum in
          let buckets =
            (* same fixed bounds on both sides; be defensive anyway *)
            if List.length l.buckets = List.length e.buckets then
              List.map2 (fun (b, lc) (_, ec) -> (b, lc - ec)) l.buckets
                e.buckets
            else l.buckets
          in
          {
            l with
            count;
            sum;
            buckets;
            mean = (if count = 0 then 0.0 else sum /. float_of_int count);
          }
    in
    {
      counters =
        List.map
          (fun (name, v) -> (name, v - counter_value earlier name))
          later.counters;
      histograms =
        List.map (fun (name, l) -> (name, diff_hist name l)) later.histograms;
    }

  let reset () =
    let counter_list =
      Dsync.protect registry_lock (fun () ->
          Hashtbl.fold (fun _ c acc -> c :: acc) Counter.registry [])
    and histogram_list =
      Dsync.protect registry_lock (fun () ->
          Hashtbl.fold (fun _ h acc -> h :: acc) Histogram.registry [])
    in
    List.iter Counter.reset counter_list;
    List.iter Histogram.reset histogram_list

  let to_json (s : snapshot) : Json.t =
    Json.Obj
      [
        ( "counters",
          Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters) );
        ( "histograms",
          Json.Obj
            (List.map
               (fun (n, (h : histogram_stats)) ->
                 ( n,
                   Json.Obj
                     ([
                       ("count", Json.Int h.count);
                       ("sum", Json.Float h.sum);
                       ("min", Json.Float h.min);
                       ("max", Json.Float h.max);
                       ("mean", Json.Float h.mean);
                       ("p50", Json.Float h.p50);
                       ("p95", Json.Float h.p95);
                       ("p99", Json.Float h.p99);
                       ( "buckets",
                         Json.Obj
                           (List.map
                              (fun (bound, c) ->
                                ( (if Float.is_finite bound then
                                     Printf.sprintf "%g" bound
                                   else "+Inf"),
                                  Json.Int c ))
                              h.buckets) );
                     ]
                     @
                     (match h.exemplars with
                     | [] -> []
                     | exs ->
                         [
                           ( "exemplars",
                             Json.Obj
                               (List.map
                                  (fun (bound, (ex : Histogram.exemplar)) ->
                                    ( (if Float.is_finite bound then
                                         Printf.sprintf "%g" bound
                                       else "+Inf"),
                                      Json.Obj
                                        [
                                          ("seq", Json.Int ex.ex_seq);
                                          ( "trace_id",
                                            Json.String ex.ex_trace_id );
                                          ("value", Json.Float ex.ex_value);
                                          ("at_us", Json.Float ex.ex_at_us);
                                        ] ))
                                  exs) );
                         ])) ))
               s.histograms) );
      ]

  let pp ppf (s : snapshot) =
    List.iter (fun (n, v) -> Fmt.pf ppf "%-40s %12d@." n v) s.counters;
    List.iter
      (fun (n, (h : histogram_stats)) ->
        Fmt.pf ppf
          "%-40s count=%d mean=%.1f min=%.1f max=%.1f p50=%.1f p95=%.1f \
           p99=%.1f@."
          n h.count h.mean h.min h.max h.p50 h.p95 h.p99)
      s.histograms
end

(* ------------------------------------------------------------------ *)
(* Traces                                                               *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  type value = Int of int | Float of float | Str of string

  type span = {
    name : string;
    mutable elapsed_us : float;
    mutable attrs : (string * value) list;  (** in insertion order *)
    mutable children : span list;  (** in execution order *)
  }

  let make ?(elapsed_us = 0.0) ?(attrs = []) ?(children = []) name : span =
    { name; elapsed_us; attrs; children }

  (* Collection state: a stack of open spans (innermost first) plus the
     root of the finished trace.  Domain-local — each domain collects
     its own trace, so instrumentation points never race across
     domains.  [collecting = false] is the fast path: every
     instrumentation point checks this single flag first. *)
  let collecting : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

  let stack : span list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

  let finished : span option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let active () = Domain.DLS.get collecting

  let start () =
    Domain.DLS.set collecting true;
    Domain.DLS.set stack [];
    Domain.DLS.set finished None

  let attr name v =
    match Domain.DLS.get stack with
    | [] -> ()
    | s :: _ -> s.attrs <- s.attrs @ [ (name, v) ]

  (* Attach a finished span (or a whole pre-built subtree, e.g. the
     executed operator tree) under the innermost open span. *)
  let graft (child : span) =
    if Domain.DLS.get collecting then
      match Domain.DLS.get stack with
      | [] -> ()
      | s :: _ -> s.children <- s.children @ [ child ]

  let close_span s t0 =
    s.elapsed_us <- mono_us () -. t0;
    (match Domain.DLS.get stack with
    | top :: rest when top == s -> Domain.DLS.set stack rest
    | _ -> () (* unbalanced exit; drop silently rather than corrupt *));
    match Domain.DLS.get stack with
    | parent :: _ -> parent.children <- parent.children @ [ s ]
    | [] -> Domain.DLS.set finished (Some s)

  let span name f =
    if not (Domain.DLS.get collecting) then f ()
    else begin
      let s = make name in
      Domain.DLS.set stack (s :: Domain.DLS.get stack);
      let t0 = mono_us () in
      Fun.protect ~finally:(fun () -> close_span s t0) f
    end

  let finish () =
    (* close any spans left open (e.g. an exception unwound past them) *)
    List.iter
      (fun s ->
        match Domain.DLS.get stack with
        | top :: _ when top == s -> close_span s (mono_us ())
        | _ -> ())
      (Domain.DLS.get stack);
    Domain.DLS.set collecting false;
    Domain.DLS.set stack [];
    let r = Domain.DLS.get finished in
    Domain.DLS.set finished None;
    r

  let pp_value ppf = function
    | Int i -> Fmt.pf ppf "%d" i
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.0f" f
        else Fmt.pf ppf "%.1f" f
    | Str s -> Fmt.pf ppf "%s" s

  let pp_attrs ppf = function
    | [] -> ()
    | attrs ->
        Fmt.pf ppf "  [%s]"
          (String.concat ", "
             (List.map
                (fun (k, v) -> Fmt.str "%s=%a" k pp_value v)
                attrs))

  (** EXPLAIN-ANALYZE-style rendering: one line per span with wall time
      and attributes, children indented under box-drawing guides. *)
  let render ppf (root : span) =
    let rec go prefix is_last s =
      let branch, extend =
        if prefix = "" then ("", "")
        else if is_last then ("└─ ", "   ")
        else ("├─ ", "│  ")
      in
      Fmt.pf ppf "%s%s%-24s %9.2f ms%a@." prefix branch s.name
        (s.elapsed_us /. 1000.0) pp_attrs s.attrs;
      let n = List.length s.children in
      List.iteri
        (fun i c ->
          go
            (if prefix = "" then "  " else prefix ^ extend)
            (i = n - 1) c)
        s.children
    in
    go "" true root

  let to_string root = Fmt.str "%a" render root

  let json_value = function
    | Int i -> Json.Int i
    | Float f -> Json.Float f
    | Str s -> Json.String s

  let rec to_json (s : span) : Json.t =
    Json.Obj
      ([
         ("name", Json.String s.name);
         ("elapsed_us", Json.Float s.elapsed_us);
       ]
      @ (match s.attrs with
        | [] -> []
        | attrs ->
            [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, json_value v)) attrs)) ])
      @
      match s.children with
      | [] -> []
      | cs -> [ ("children", Json.List (List.map to_json cs)) ])

  (* tree search helpers, used by tests and the CLI *)
  let rec find name (s : span) : span option =
    if String.equal s.name name then Some s
    else List.find_map (find name) s.children

  let rec fold f acc (s : span) =
    List.fold_left (fold f) (f acc s) s.children

  let attr_int (s : span) name : int option =
    match List.assoc_opt name s.attrs with
    | Some (Int i) -> Some i
    | Some (Float f) -> Some (int_of_float f)
    | _ -> None
end
[@@tango.unguarded
  "trace state is domain-local: collection is DLS-rooted and span trees \
   never cross domains"]
