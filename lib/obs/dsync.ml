(** Domain-safety primitives for the middleware's shared state.

    Two building blocks, matching the two shapes of shared state the
    lint pass ({!Tango_lint}) distinguishes:

    - {!protect}: an exception-safe critical section over a {!lock}.
      This is the {e only} sanctioned way to guard compound mutable
      state (hash tables, rings, queues, multi-field records): raw
      [Mutex.lock]/[Mutex.unlock] pairs leak the lock when the body
      raises and are flagged by the linter.
    - {!Sharded}: a domain-sharded monotonic integer cell for hot
      counters.  Increments go to a per-domain [Atomic] shard with no
      lock and no cross-domain contention in the common case; reads
      fold the shards.  This is exactly the additivity the Prometheus
      exporter already assumes of counters: the folded value is the sum
      of per-shard sums, and concurrent readers may observe a value
      between two increments but never a torn or decreasing one.

    The linter recognizes [Dsync.protect] (and [Mutex.protect]) as a
    guard: mutation sites dominated by one are considered domain-safe. *)

type lock = Mutex.t

let lock () = Mutex.create ()

(* [Mutex.protect] releases the lock on exceptions (OCaml >= 5.1), so
   re-exporting it keeps the guard exception-safe by construction. *)
let protect : lock -> (unit -> 'a) -> 'a = Mutex.protect

module Sharded = struct
  (* A power of two so the shard pick is a mask, not a division.  Eight
     shards cover typical accept-pool sizes; domains beyond that alias
     onto existing shards, which costs contention but never
     correctness. *)
  let width = 8

  type t = int Atomic.t array

  let create () = Array.init width (fun _ -> Atomic.make 0)

  let shard (t : t) = t.((Domain.self () :> int) land (width - 1))

  let add t n = ignore (Atomic.fetch_and_add (shard t) n)
  let incr t = add t 1

  (* Fold at read time.  Each shard read is atomic; the sum is a valid
     linearization point-in-time only once writers are quiescent, but it
     is always the sum of genuinely performed increments (monotone, no
     tearing) — the property counter conservation tests rely on. *)
  let value (t : t) = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t

  (* Not atomic across shards: concurrent adds during a reset may land
     before or after their shard is zeroed.  Reset is a test/bench
     convenience for quiescent registries, not a runtime operation. *)
  let reset (t : t) = Array.iter (fun c -> Atomic.set c 0) t
end
