(** Domain-safety primitives for the middleware's shared state.

    Two building blocks, matching the two shapes of shared state the
    lint pass ({!Tango_lint}) distinguishes:

    - {!protect}: an exception-safe critical section over a {!lock}.
      This is the {e only} sanctioned way to guard compound mutable
      state (hash tables, rings, queues, multi-field records): raw
      [Mutex.lock]/[Mutex.unlock] pairs leak the lock when the body
      raises and are flagged by the linter.
    - {!Sharded}: a domain-sharded monotonic integer cell for hot
      counters.  Increments go to a per-domain [Atomic] shard with no
      lock and no cross-domain contention in the common case; reads
      fold the shards.  This is exactly the additivity the Prometheus
      exporter already assumes of counters: the folded value is the sum
      of per-shard sums, and concurrent readers may observe a value
      between two increments but never a torn or decreasing one.

    Locks created with {!named_lock} additionally feed the contention
    profiler ({!Profile}): each [protect] records whether the acquire
    contended, how long the caller waited, and how long the section
    held the lock, into sharded per-name statistics.  Same-named locks
    aggregate (e.g. every histogram instance lock reports as one
    ["obs.histogram"] family).  Anonymous {!lock}s skip all of it — a
    single [match] on the fast path.

    The linter recognizes [Dsync.protect] (and [Mutex.protect]) as a
    guard: mutation sites dominated by one are considered domain-safe. *)

module Sharded = struct
  (* A power of two so the shard pick is a mask, not a division.  Eight
     shards cover typical accept-pool sizes; domains beyond that alias
     onto existing shards, which costs contention but never
     correctness. *)
  let width = 8

  type t = int Atomic.t array

  let create () = Array.init width (fun _ -> Atomic.make 0)

  let shard (t : t) = t.((Domain.self () :> int) land (width - 1))

  let add t n = ignore (Atomic.fetch_and_add (shard t) n)
  let incr t = add t 1

  (* Fold at read time.  Each shard read is atomic; the sum is a valid
     linearization point-in-time only once writers are quiescent, but it
     is always the sum of genuinely performed increments (monotone, no
     tearing) — the property counter conservation tests rely on. *)
  let value (t : t) = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t

  (* Not atomic across shards: concurrent adds during a reset may land
     before or after their shard is zeroed.  Reset is a test/bench
     convenience for quiescent registries, not a runtime operation. *)
  let reset (t : t) = Array.iter (fun c -> Atomic.set c 0) t
end

module Profile = struct
  (* Per-name lock statistics.  Everything a [protect] touches on the
     record path is a [Sharded] cell or an [Atomic] — the profiler must
     not itself become the contention it measures, so there is no lock
     anywhere on the per-acquire path.  The only mutex in this module
     guards the name -> stats table, taken once per [named_lock]. *)

  (* Same exponential ladder as [Tango_obs.Histogram]: 1µs .. ~8.4s,
     plus an overflow cell.  Duplicated rather than shared because
     [Tango_obs] re-exports this module and must stay downstream. *)
  let bucket_bounds = Array.init 24 (fun i -> float_of_int (1 lsl i))

  let bucket_index v =
    let n = Array.length bucket_bounds in
    let rec go i = if i >= n then n else if v <= bucket_bounds.(i) then i else go (i + 1) in
    go 0

  type stats = {
    name : string;
    acquires : Sharded.t;
    contended : Sharded.t;
    (* Totals in nanoseconds so sub-microsecond waits are not rounded
       away; snapshots convert back to µs. *)
    wait_total_ns : Sharded.t;
    hold_total_ns : Sharded.t;
    wait_buckets : Sharded.t array;
    hold_buckets : Sharded.t array;
  }

  let make_stats name =
    let cells () = Array.init (Array.length bucket_bounds + 1) (fun _ -> Sharded.create ()) in
    {
      name;
      acquires = Sharded.create ();
      contended = Sharded.create ();
      wait_total_ns = Sharded.create ();
      hold_total_ns = Sharded.create ();
      wait_buckets = cells ();
      hold_buckets = cells ();
    }

  let registry : (string, stats) Hashtbl.t = Hashtbl.create 17
  let registry_mutex = Mutex.create ()

  let stats_for name =
    Mutex.protect registry_mutex (fun () ->
        match Hashtbl.find_opt registry name with
        | Some s -> s
        | None ->
            let s = make_stats name in
            Hashtbl.replace registry name s;
            s)

  (* Global switch, read once per profiled [protect].  Off turns a
     named lock back into a plain [Mutex.protect] — the telemetry bench
     flips this to price the profiler itself. *)
  let enabled_flag = Atomic.make true
  let set_enabled b = Atomic.set enabled_flag b
  let enabled () = Atomic.get enabled_flag

  let ns_of_us us = int_of_float (us *. 1_000.0)

  let record s ~contended ~wait_us ~hold_us =
    Sharded.incr s.acquires;
    Sharded.add s.hold_total_ns (ns_of_us hold_us);
    Sharded.incr s.hold_buckets.(bucket_index hold_us);
    if contended then begin
      Sharded.incr s.contended;
      Sharded.add s.wait_total_ns (ns_of_us wait_us);
      Sharded.incr s.wait_buckets.(bucket_index wait_us)
    end

  type snapshot = {
    lock_name : string;
    acquires : int;
    contended : int;
    wait_us : float;
    hold_us : float;
    wait_buckets : (float * int) list;
    hold_buckets : (float * int) list;
  }

  (* Cumulative (Prometheus-shaped) buckets: each entry is
     [(upper_bound_us, count_of_observations <= bound)]; the last entry
     is [(infinity, total)]. *)
  let cumulative cells =
    let acc = ref 0 in
    Array.to_list cells
    |> List.mapi (fun i c ->
           acc := !acc + Sharded.value c;
           let le =
             if i < Array.length bucket_bounds then bucket_bounds.(i) else infinity
           in
           (le, !acc))

  let snapshot_of_stats s =
    {
      lock_name = s.name;
      acquires = Sharded.value s.acquires;
      contended = Sharded.value s.contended;
      wait_us = float_of_int (Sharded.value s.wait_total_ns) /. 1_000.0;
      hold_us = float_of_int (Sharded.value s.hold_total_ns) /. 1_000.0;
      wait_buckets = cumulative s.wait_buckets;
      hold_buckets = cumulative s.hold_buckets;
    }

  let snapshot () =
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.fold (fun _ s acc -> snapshot_of_stats s :: acc) registry [])
    |> List.sort (fun a b -> compare a.lock_name b.lock_name)

  let reset () =
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.iter
          (fun _ (s : stats) ->
            Sharded.reset s.acquires;
            Sharded.reset s.contended;
            Sharded.reset s.wait_total_ns;
            Sharded.reset s.hold_total_ns;
            Array.iter Sharded.reset s.wait_buckets;
            Array.iter Sharded.reset s.hold_buckets)
          registry)
end

type lock = { mutex : Mutex.t; stats : Profile.stats option }

let lock () = { mutex = Mutex.create (); stats = None }
let named_lock name = { mutex = Mutex.create (); stats = Some (Profile.stats_for name) }

(* The guard implementation itself.  [Mutex.protect] covers anonymous
   and profiling-off locks (exception-safe on OCaml >= 5.1).  The
   profiled path needs the raw operations the linter normally forbids:
   [try_lock] distinguishes a contended acquire from a free one without
   paying two clock reads on the uncontended path, and the explicit
   [lock]/[unlock] pair brackets the hold-time measurement.  Release is
   still guaranteed on every path via [Fun.protect]. *)
let protect l f =
  match l.stats with
  | None -> Mutex.protect l.mutex f
  | Some s ->
      if not (Atomic.get Profile.enabled_flag) then Mutex.protect l.mutex f
      else begin
        let contended, wait_us =
          if Mutex.try_lock l.mutex then (false, 0.0)
          else begin
            let t0 = Clock.mono_us () in
            Mutex.lock l.mutex;
            (true, Clock.mono_us () -. t0)
          end
        in
        let h0 = Clock.mono_us () in
        Fun.protect
          ~finally:(fun () ->
            let hold_us = Clock.mono_us () -. h0 in
            Mutex.unlock l.mutex;
            (* Record after release so bookkeeping never extends the
               critical section other domains are waiting on. *)
            Profile.record s ~contended ~wait_us ~hold_us)
          f
      end
[@@tango.unguarded
  "the guard implementation: try_lock/lock/unlock bracket the wait- and \
   hold-time measurements, with release guaranteed on all paths by \
   Fun.protect (and by Mutex.protect on the unprofiled branches)"]
