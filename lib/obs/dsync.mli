(** Domain-safety primitives: exception-safe critical sections and
    domain-sharded counters.

    The middleware's shared state (plan cache, metric registry, event
    log, SLO window, profile stores) is guarded with these two
    primitives; the static analyzer ({!Tango_lint}) recognizes
    {!protect} (and [Mutex.protect]) as the guard that makes a mutation
    site domain-safe, and treats raw [Mutex.lock]/[Mutex.unlock] pairs
    as findings because they are not exception-safe. *)

type lock

val lock : unit -> lock
(** A fresh mutex. *)

val protect : lock -> (unit -> 'a) -> 'a
(** [protect l f] runs [f ()] with [l] held.  Exception-safe: the lock
    is released whether [f] returns or raises ([Mutex.protect]
    semantics). *)

(** Domain-sharded monotonic integer cells for hot counters: increments
    touch a per-domain [Atomic] shard; {!Sharded.value} folds the
    shards.  Additive (the fold is the sum of genuine increments, never
    torn), which is what snapshot diffing and the Prometheus exporter
    assume of counters. *)
module Sharded : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Sum over shards.  Monotone under concurrent increments; exact
      once writers are quiescent. *)

  val reset : t -> unit
  (** Zero every shard.  Not atomic with respect to concurrent adds;
      intended for quiescent registries (tests, bench setup). *)
end
