(** Domain-safety primitives: exception-safe critical sections,
    domain-sharded counters, and a lock-contention profiler.

    The middleware's shared state (plan cache, metric registry, event
    log, SLO window, profile stores) is guarded with these primitives;
    the static analyzer ({!Tango_lint}) recognizes {!protect} (and
    [Mutex.protect]) as the guard that makes a mutation site
    domain-safe, and treats raw [Mutex.lock]/[Mutex.unlock] pairs as
    findings because they are not exception-safe.

    Locks created with {!named_lock} feed the contention profiler:
    every {!protect} on one records acquire counts, contended-acquire
    counts, and wait/hold-time histograms under the lock's name
    (same-named locks aggregate into one family).  Anonymous {!lock}s
    cost one [match] extra over a bare [Mutex.protect]. *)

type lock

val lock : unit -> lock
(** A fresh anonymous mutex.  Not profiled. *)

val named_lock : string -> lock
(** A fresh mutex whose [protect] sections are recorded by {!Profile}
    under [name].  Locks sharing a name share one statistics family —
    use for per-instance locks of the same kind (e.g. every histogram's
    instance lock registers as ["obs.histogram"]). *)

val protect : lock -> (unit -> 'a) -> 'a
(** [protect l f] runs [f ()] with [l] held.  Exception-safe: the lock
    is released whether [f] returns or raises ([Mutex.protect]
    semantics).  On a {!named_lock} with profiling enabled it
    additionally records: an uncontended acquire (the no-wait
    [Mutex.try_lock] fast path) contributes {e zero} wait observations;
    a contended one records the measured wait; every acquire records
    the hold time.  Bookkeeping happens after release, so the profiler
    never lengthens the critical section it measures. *)

(** Domain-sharded monotonic integer cells for hot counters: increments
    touch a per-domain [Atomic] shard; {!Sharded.value} folds the
    shards.  Additive (the fold is the sum of genuine increments, never
    torn), which is what snapshot diffing and the Prometheus exporter
    assume of counters. *)
module Sharded : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Sum over shards.  Monotone under concurrent increments; exact
      once writers are quiescent. *)

  val reset : t -> unit
  (** Zero every shard.  Not atomic with respect to concurrent adds;
      intended for quiescent registries (tests, bench setup). *)
end

(** Contention statistics for {!named_lock}s.  All per-acquire
    bookkeeping is sharded/atomic — the profiler holds no lock on the
    record path, so it cannot become the contention it measures. *)
module Profile : sig
  type snapshot = {
    lock_name : string;
    acquires : int;  (** total [protect] sections completed *)
    contended : int;  (** acquires that had to wait *)
    wait_us : float;  (** total time spent waiting, µs *)
    hold_us : float;  (** total time the lock was held, µs *)
    wait_buckets : (float * int) list;
        (** cumulative histogram of per-acquire wait times:
            [(upper_bound_us, count <= bound)], last entry
            [(infinity, contended)] *)
    hold_buckets : (float * int) list;
        (** cumulative histogram of hold times; last entry
            [(infinity, acquires)] *)
  }

  val set_enabled : bool -> unit
  (** Toggle profiling globally (default on).  Off, a named lock costs
      the same as an anonymous one. *)

  val enabled : unit -> bool

  val snapshot : unit -> snapshot list
  (** All registered lock families, sorted by name. *)

  val reset : unit -> unit
  (** Zero all statistics (names stay registered).  For tests/bench. *)
end
