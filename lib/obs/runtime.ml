(** GC and allocation attribution.

    GC counters are domain-local in OCaml 5, so a delta taken around a
    phase on one domain prices that phase's own allocation — a GC pause
    or an allocation storm becomes attributable to
    parse/optimize/translate/execute instead of being smeared into wall
    time.  Allocated bytes follow the classic identity:
    [(minor + major - promoted) words × word size], read through
    [Gc.allocated_bytes] rather than [Gc.quick_stat]: on OCaml 5 the
    [quick_stat] word counters only advance at collection boundaries,
    so a small phase (parse of a short statement) between two minor
    collections would price as zero, while [Gc.allocated_bytes] reads
    the live young-generation pointer and is exact.

    The module also keeps a per-domain cumulative table ([touch] /
    [domains]) feeding the [tango_gc_domain_*] gauges, and a process
    heap snapshot ([heap]) for [tango_gc_heap_*]. *)

type delta = {
  alloc_bytes : int;
  minor_collections : int;
  major_collections : int;
  promoted_words : int;
}

let zero =
  { alloc_bytes = 0; minor_collections = 0; major_collections = 0; promoted_words = 0 }

let add a b =
  {
    alloc_bytes = a.alloc_bytes + b.alloc_bytes;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
    promoted_words = a.promoted_words + b.promoted_words;
  }

type point = {
  pt_alloc_bytes : float;
  pt_minor : int;
  pt_major : int;
  pt_promoted : float;
}

let point () =
  let s = Gc.quick_stat () in
  {
    (* exact even between collections (reads the young pointer) *)
    pt_alloc_bytes = Gc.allocated_bytes ();
    pt_minor = s.Gc.minor_collections;
    pt_major = s.Gc.major_collections;
    pt_promoted = s.Gc.promoted_words;
  }

(* Clamp at zero: the float counters are monotone per domain, but a
   measure spanning a DLS-initialized domain switch (or float rounding
   at large magnitudes) must never yield a negative charge. *)
let delta_since p =
  let q = point () in
  {
    alloc_bytes = max 0 (int_of_float (q.pt_alloc_bytes -. p.pt_alloc_bytes));
    minor_collections = max 0 (q.pt_minor - p.pt_minor);
    major_collections = max 0 (q.pt_major - p.pt_major);
    promoted_words = max 0 (int_of_float (q.pt_promoted -. p.pt_promoted));
  }

let measure f =
  let p = point () in
  let r = f () in
  (r, delta_since p)

(* --- per-domain cumulative table ------------------------------------- *)

type domain_stats = {
  domain : int;
  d_alloc_bytes : int;
  d_minor_collections : int;
  d_major_collections : int;
  d_promoted_words : int;
}

type slot = {
  s_domain : int;
  s_alloc_bytes : int Atomic.t;
  s_minor : int Atomic.t;
  s_major : int Atomic.t;
  s_promoted : int Atomic.t;
}

let slots : (int, slot) Hashtbl.t = Hashtbl.create 8

(* Named: the runtime-attribution table is itself a profiled serve-path
   lock, taken once per domain at slot creation. *)
let slots_lock = Dsync.named_lock "obs.runtime"

let slot_for id =
  Dsync.protect slots_lock (fun () ->
      match Hashtbl.find_opt slots id with
      | Some s -> s
      | None ->
          let s =
            {
              s_domain = id;
              s_alloc_bytes = Atomic.make 0;
              s_minor = Atomic.make 0;
              s_major = Atomic.make 0;
              s_promoted = Atomic.make 0;
            }
          in
          Hashtbl.replace slots id s;
          s)

let slot_key = Domain.DLS.new_key (fun () -> slot_for (Domain.self () :> int))

(* Publish the calling domain's cumulative counters.  Owner-written,
   scraper-read: the writer is always the slot's own domain, readers
   ([domains]) see whole [Atomic] values. *)
let touch () =
  let s = Domain.DLS.get slot_key in
  let p = point () in
  Atomic.set s.s_alloc_bytes (max 0 (int_of_float p.pt_alloc_bytes));
  Atomic.set s.s_minor p.pt_minor;
  Atomic.set s.s_major p.pt_major;
  Atomic.set s.s_promoted (max 0 (int_of_float p.pt_promoted))

let domains () =
  Dsync.protect slots_lock (fun () ->
      Hashtbl.fold
        (fun _ s acc ->
          {
            domain = s.s_domain;
            d_alloc_bytes = Atomic.get s.s_alloc_bytes;
            d_minor_collections = Atomic.get s.s_minor;
            d_major_collections = Atomic.get s.s_major;
            d_promoted_words = Atomic.get s.s_promoted;
          }
          :: acc)
        slots [])
  |> List.sort (fun a b -> compare a.domain b.domain)

(* --- process heap ----------------------------------------------------- *)

type heap = { heap_words : int; top_heap_words : int; compactions : int }

let heap () =
  let s = Gc.quick_stat () in
  {
    heap_words = s.Gc.heap_words;
    top_heap_words = s.Gc.top_heap_words;
    compactions = s.Gc.compactions;
  }
