(** Two clocks with two jobs.

    [mono_us] is CLOCK_MONOTONIC: unaffected by wall-clock steps, the
    only correct source for {e durations} (span timings, phase
    breakdowns, lock wait/hold intervals, SLO latencies).  Its zero is
    arbitrary — values are only meaningful as differences.

    [wall_us] is the wall clock: the source for {e timestamps} that
    must be interpretable outside the process (event-log [at_us],
    exemplar [ex_at_us], SLO window edges). *)

external mono_us : unit -> float = "tango_clock_monotonic_us"

let wall_us () = Unix.gettimeofday () *. 1_000_000.0
