(** TANGO observability: spans, counters and histograms for the whole
    middleware stack.

    - {!Counter}: monotonic event counts, registered by name in a
      process-wide registry; an increment is a single integer store.
    - {!Histogram}: labeled value distributions (count/sum/min/max/mean).
    - {!Trace}: a hierarchical timed trace of one query.  Collection is
      off by default; with no active trace, {!Trace.span} costs one
      branch, so instrumented code pays near-zero overhead when
      observability is disabled.
    - {!Registry}: programmatic snapshots of every counter and histogram,
      with JSON export (the machine-readable feed for [bench/main.ml]).

    Counter and histogram creation is {e find-or-create} by name, so
    independent modules naming the same metric share one instance.

    Domain safety: counters are {!Dsync.Sharded} cells (lock-free
    per-domain increments, folded at read time), histogram updates and
    compound reads take a per-instance {!Dsync} lock, the name
    registries are guarded, and trace collection state is domain-local
    (each domain collects its own trace). *)

module Clock = Clock
(** Monotonic vs wall clocks — see {!Clock}. *)

module Dsync = Dsync
(** Domain-safety primitives (exception-safe critical sections,
    domain-sharded counters, lock-contention profiling) — see
    {!Dsync}. *)

module Runtime = Runtime
(** GC/allocation attribution: per-phase deltas, per-domain cumulative
    counters, heap snapshots — see {!Runtime}. *)

val now_us : unit -> float
(** Wall time in microseconds.  For {e timestamps} only (event-log
    [at_us], exemplar [ex_at_us]); durations use {!mono_us}. *)

val mono_us : unit -> float
(** Monotonic time in microseconds (arbitrary origin) — the clock every
    span and phase duration uses, immune to wall-clock steps. *)

(** Minimal JSON document model and serializer (no external deps). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact serialization; non-finite floats become [null]. *)

  val parse : string -> (t, string) result
  (** Minimal reader for the same document model (request bodies).
      Numbers with a fraction or exponent parse as [Float], others as
      [Int]; [\uXXXX] escapes decode below 0x80 and are kept verbatim
      otherwise. *)
end

module Counter : sig
  type t

  val make : string -> t
  (** Find-or-create the counter registered under this name. *)

  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Histogram : sig
  type t

  type exemplar = {
    ex_seq : int;  (** query sequence number (event-log key) *)
    ex_trace_id : string;  (** fingerprint / trace identity *)
    ex_value : float;  (** the observed value itself *)
    ex_at_us : float;  (** wall-clock time of the observation, µs *)
  }
  (** A concrete observation pinned to the bucket it fell in, carrying
      enough identity to jump from an anonymous histogram bucket to the
      exact query that produced it (OpenMetrics exemplars). *)

  val make : string -> t
  (** Find-or-create the histogram registered under this name. *)

  val name : t -> string

  val observe : ?exemplar:exemplar -> t -> float -> unit
  (** Record an observation; when [exemplar] is given it becomes the
      bucket's exemplar (last-exemplar-per-bucket wins). *)

  val count : t -> int
  val sum : t -> float

  val bucket_bounds : float array
  (** Fixed exponential bucket bounds shared by every histogram:
      [1, 2, 4, ... 2^23] — with microsecond observations, 1µs to ~8.4s
      at factor 2.  Fixed bounds keep bucket counts additive across
      snapshots and directly renderable as Prometheus cumulative
      buckets. *)

  val bucket_counts : t -> int array
  (** Per-bucket (non-cumulative) observation counts; one cell per
      {!bucket_bounds} entry plus a final overflow cell. *)

  val bucket_index : float -> int
  (** Index into {!bucket_bounds} (or the overflow cell,
      [Array.length bucket_bounds]) that an observation of this value
      falls in — lets callers compare observations by latency band
      (e.g. "is this strictly above the band holding p99?"). *)

  val cumulative_buckets : t -> (float * int) list
  (** Cumulative [(upper bound, observations <= bound)] pairs over
      {!bucket_bounds}, closed by [(infinity, count)] — the Prometheus
      [le=...] series. *)

  val bucket_exemplars : t -> exemplar option array
  (** Per-bucket last exemplar; one cell per {!bucket_bounds} entry plus
      a final overflow cell. *)

  val exemplar_list : t -> (float * exemplar) list
  (** The exemplars present, as [(bucket upper bound, exemplar)] pairs in
      bound order; the overflow cell reports bound [infinity]. *)

  val min_value : t -> float
  val max_value : t -> float
  val mean : t -> float

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [0, 1]: estimated from a fixed-size
      reservoir sample (512 values, Vitter's algorithm R with a
      deterministic per-histogram replacement stream), so it is exact
      until the reservoir overflows and an unbiased estimate afterwards.
      0 when empty. *)

  val reset : t -> unit
end

module Registry : sig
  type histogram_stats = {
    count : int;
    sum : float;
    min : float;
    max : float;
    mean : float;
    p50 : float;  (** reservoir-estimated quantiles (see {!Histogram.quantile}) *)
    p95 : float;
    p99 : float;
    buckets : (float * int) list;
        (** cumulative [(upper bound, observations <= bound)] over
            {!Histogram.bucket_bounds}, closed by [(infinity, count)] *)
    exemplars : (float * Histogram.exemplar) list;
        (** [(bucket upper bound, last exemplar seen in that bucket)],
            in bound order; overflow reports [infinity].  Carried over
            verbatim by {!diff} (they are point-in-time markers, not
            additive state). *)
  }

  type snapshot = {
    counters : (string * int) list;  (** sorted by name *)
    histograms : (string * histogram_stats) list;  (** sorted by name *)
  }

  val snapshot : unit -> snapshot
  (** Point-in-time copy of every registered counter and histogram. *)

  val counter_value : snapshot -> string -> int
  (** 0 when the name is not present. *)

  val diff : snapshot -> snapshot -> snapshot
  (** [diff later earlier]: per-counter deltas, and per-histogram deltas
      of the additive statistics — [count], [sum] and the fixed-bound
      [buckets] (with [mean] recomputed from the deltas).  [min]/[max]
      and the reservoir quantiles [p50]/[p95]/[p99] cannot be recovered
      for an interval from aggregate state; they are carried over from
      [later] verbatim and describe the whole lifetime, not the delta.
      Histograms absent from [earlier] pass through unchanged. *)

  val reset : unit -> unit
  (** Zero every registered counter and histogram. *)

  val to_json : snapshot -> Json.t
  val pp : Format.formatter -> snapshot -> unit
end

module Trace : sig
  type value = Int of int | Float of float | Str of string

  type span = {
    name : string;
    mutable elapsed_us : float;
    mutable attrs : (string * value) list;  (** in insertion order *)
    mutable children : span list;  (** in execution order *)
  }

  val make :
    ?elapsed_us:float -> ?attrs:(string * value) list -> ?children:span list ->
    string -> span
  (** Build a finished span by hand (used to graft pre-measured trees,
      e.g. the executed operator tree). *)

  val active : unit -> bool
  (** Whether a trace is being collected right now. *)

  val start : unit -> unit
  (** Begin collecting a new trace (discards any previous state). *)

  val span : string -> (unit -> 'a) -> 'a
  (** Run the thunk inside a timed span nested under the innermost open
      span.  When no trace is active this is just the thunk call.
      Exception-safe: the span closes even if the thunk raises. *)

  val attr : string -> value -> unit
  (** Attach an attribute to the innermost open span (no-op otherwise). *)

  val graft : span -> unit
  (** Attach a finished span subtree under the innermost open span. *)

  val finish : unit -> span option
  (** Stop collecting and return the root span; [None] if no complete
      span was recorded.  Spans left open (by an escaping exception) are
      closed on the way out. *)

  val render : Format.formatter -> span -> unit
  (** EXPLAIN-ANALYZE-style tree: one line per span with wall time and
      attributes. *)

  val to_string : span -> string
  val to_json : span -> Json.t

  val find : string -> span -> span option
  (** First span with this name, depth-first. *)

  val fold : ('a -> span -> 'a) -> 'a -> span -> 'a
  val attr_int : span -> string -> int option
end
