(** Monotonic vs wall clocks — durations vs timestamps. *)

val mono_us : unit -> float
(** CLOCK_MONOTONIC in microseconds.  Arbitrary origin; immune to
    wall-clock steps.  Use for every duration (span timings, phases,
    lock wait/hold, HTTP service time). *)

val wall_us : unit -> float
(** Wall time in microseconds since the epoch.  Use only for
    timestamps that leave the process (event-log [at_us], exemplar
    [ex_at_us]). *)
