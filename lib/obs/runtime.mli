(** GC and allocation attribution: per-phase deltas, per-domain
    cumulative counters, and process heap snapshots.

    GC counters are domain-local in OCaml 5, so a {!measure} around a
    pipeline phase charges that phase with its own allocation and
    collection counts.  Allocated bytes come from [Gc.allocated_bytes]
    (exact even between collections — it reads the young pointer);
    collection and promotion counts from [Gc.quick_stat]. *)

type delta = {
  alloc_bytes : int;  (** (minor + major - promoted) words × word size *)
  minor_collections : int;
  major_collections : int;
  promoted_words : int;
}

val zero : delta
val add : delta -> delta -> delta

type point
(** An allocation-counter reading ([Gc.allocated_bytes] plus a
    [Gc.quick_stat] projection). *)

val point : unit -> point
val delta_since : point -> delta
(** Counters accumulated on this domain since [point] was taken.
    Components clamp at zero. *)

val measure : (unit -> 'a) -> 'a * delta
(** [measure f] is [f ()] paired with the allocation/GC delta it
    incurred on the calling domain.  Not exception-safe: if [f] raises,
    take {!point} / {!delta_since} around the call instead. *)

(** {1 Per-domain cumulative counters} *)

type domain_stats = {
  domain : int;
  d_alloc_bytes : int;
  d_minor_collections : int;
  d_major_collections : int;
  d_promoted_words : int;
}

val touch : unit -> unit
(** Publish the calling domain's cumulative allocation/GC counters into
    the per-domain table (call periodically, e.g. once per query). *)

val domains : unit -> domain_stats list
(** All domains that have {!touch}ed, sorted by domain id. *)

(** {1 Process heap} *)

type heap = { heap_words : int; top_heap_words : int; compactions : int }

val heap : unit -> heap
