(** The monitoring surface: wires a middleware session to an
    {!Event_log} and an {!Slo} tracker via
    {!Tango_core.Middleware.set_query_observer}, and dispatches HTTP
    requests to the endpoints [tango_cli serve] exposes:

    - [GET /healthz] — liveness;
    - [GET /metrics] — Prometheus exposition of the full
      {!Tango_obs.Registry} snapshot plus SLO gauges;
    - [GET /slo] — burn-rate verdict as JSON;
    - [GET /queries?n=K] — the most recent sampled event-log records;
    - [GET /trace] — Chrome trace JSON of the last pipeline run;
    - [POST /query] — run the temporal SQL in the body, reply with a
      JSON result summary. *)

open Tango_core

type t = {
  mw : Middleware.t;
  log : Event_log.t;
  slo : Slo.t;
  started_us : float;
}

let create ?log ?slo mw =
  let log = match log with Some l -> l | None -> Event_log.create () in
  let slo = match slo with Some s -> s | None -> Slo.create () in
  Middleware.set_query_observer mw
    (Some
       (fun (ev : Middleware.query_event) ->
         Event_log.observe log ev;
         Slo.observe slo
           ~now_us:(ev.Middleware.started_us +. ev.Middleware.elapsed_us)
           ~latency_us:ev.Middleware.elapsed_us
           ~ok:(ev.Middleware.error = None)));
  { mw; log; slo; started_us = Tango_obs.now_us () }

let event_log t = t.log
let slo t = t.slo

let json_response ?status j =
  Http.response ?status ~content_type:"application/json"
    (Tango_obs.Json.to_string j ^ "\n")

let error_response status msg =
  json_response ~status (Tango_obs.Json.Obj [ ("error", Tango_obs.Json.String msg) ])

let metrics t =
  let snapshot = Tango_obs.Registry.snapshot () in
  let verdict = Slo.evaluate t.slo ~now_us:(Tango_obs.now_us ()) in
  let gauges =
    List.map
      (fun (name, v) -> Prometheus.gauge ~name v)
      (Slo.prometheus_gauges verdict)
  in
  let uptime =
    Prometheus.gauge ~name:"monitor.uptime_seconds"
      ((Tango_obs.now_us () -. t.started_us) /. 1e6)
  in
  Http.response ~content_type:Prometheus.content_type
    (String.concat "" (Prometheus.render snapshot :: uptime :: gauges))

let queries t (req : Http.request) =
  let n =
    match List.assoc_opt "n" req.Http.query with
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> Some n
        | _ -> None)
    | None -> Some 20
  in
  match n with
  | None -> error_response 400 "n must be a positive integer"
  | Some n -> json_response (Event_log.to_json ~n t.log)

let trace t =
  match Middleware.last_trace t.mw with
  | None -> error_response 404 "no trace collected (tracing off or no query yet)"
  | Some span ->
      Http.response ~content_type:"application/json"
        (Chrome_trace.to_string span)

(* Known pipeline failures become a 400 with the error text; anything
   else propagates to Http's 500 handler. *)
let query_failure = function
  | Tango_sql.Lexer.Lex_error m -> Some ("lex error: " ^ m)
  | Tango_sql.Parser.Parse_error m -> Some ("parse error: " ^ m)
  | Tango_tsql.Compile.Unsupported m -> Some ("unsupported: " ^ m)
  | Tango_dbms.Catalog.No_such_table m -> Some ("no such table: " ^ m)
  | Tango_dbms.Executor.Sql_error m -> Some ("sql error: " ^ m)
  | Tango_algebra.Op.Ill_formed m -> Some ("ill-formed plan: " ^ m)
  | Middleware.No_plan m -> Some ("no plan: " ^ m)
  | Failure m -> Some m
  | _ -> None

let run_query t (req : Http.request) =
  let sql = String.trim req.Http.body in
  if sql = "" then error_response 400 "empty request body; POST temporal SQL"
  else
    match Middleware.query t.mw sql with
    | report ->
        let open Tango_obs.Json in
        json_response
          (Obj
             [
               ( "rows",
                 Int (Tango_rel.Relation.cardinality report.Middleware.result)
               );
               ("optimize_us", Float report.Middleware.optimize_us);
               ("execute_us", Float report.Middleware.execute_us);
               ( "fingerprint",
                 String
                   (Tango_volcano.Physical.fingerprint
                      report.Middleware.physical) );
               ( "plan",
                 String
                   (Tango_volcano.Physical.signature report.Middleware.physical)
               );
             ])
    | exception e -> (
        match query_failure e with
        | Some msg -> error_response 400 msg
        | None -> raise e)

let handler t (req : Http.request) : Http.response =
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" -> Http.response "ok\n"
  | "GET", "/metrics" -> metrics t
  | "GET", "/slo" ->
      json_response (Slo.to_json t.slo ~now_us:(Tango_obs.now_us ()))
  | "GET", "/queries" -> queries t req
  | "GET", "/trace" -> trace t
  | "POST", "/query" -> run_query t req
  | _, ("/healthz" | "/metrics" | "/slo" | "/queries" | "/trace" | "/query") ->
      Http.response ~status:405 "method not allowed\n"
  | _ -> Http.response ~status:404 "not found\n"
