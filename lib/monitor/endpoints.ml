(** The monitoring surface: wires a middleware session to an
    {!Event_log} and an {!Slo} tracker via
    {!Tango_core.Middleware.set_query_observer}, and dispatches HTTP
    requests to the endpoints [tango_cli serve] exposes:

    - [GET /healthz] — liveness, as JSON (bare ["ok"] under [?plain=1]);
    - [GET /metrics] — Prometheus exposition of the full
      {!Tango_obs.Registry} snapshot plus SLO gauges; OpenMetrics
      exemplar mode under content negotiation;
    - [GET /slo] — burn-rate verdict as JSON;
    - [GET /queries?n=K] — the most recent sampled event-log records;
    - [GET /queries/<seq>] — one record in full: phase breakdown,
      per-backend attribution, and its Chrome trace with backend lanes;
    - [GET /debug/watchdog] — the {!Watchdog} drill-down verdict;
    - [GET /debug/contention] — named-lock wait/hold profile, ranked by
      wait share;
    - [GET /trace] — Chrome trace JSON of the last pipeline run;
    - [POST /query] — run the temporal SQL in the body, reply with a
      JSON result summary. *)

open Tango_core

type t = {
  mw : Middleware.t;
  log : Event_log.t;
  slo : Slo.t;
  watchdog : Watchdog.t;
  started_us : float;  (* wall, for reporting when the server started *)
  started_mono_us : float;  (* monotonic, for uptime arithmetic *)
}

let topology_generation t =
  Tango_dbms.Topology.generation (Middleware.topology t.mw)

let create ?log ?slo ?watchdog mw =
  let log = match log with Some l -> l | None -> Event_log.create () in
  let slo = match slo with Some s -> s | None -> Slo.create () in
  let watchdog =
    match watchdog with
    | Some w -> w
    | None ->
        Watchdog.create
          ~generation:(Tango_dbms.Topology.generation (Middleware.topology mw))
          ()
  in
  Middleware.set_query_observer mw
    (Some
       (fun (ev : Middleware.query_event) ->
         Event_log.observe log ev;
         Slo.observe slo
           ~now_us:(ev.Middleware.started_us +. ev.Middleware.elapsed_us)
           ~latency_us:ev.Middleware.elapsed_us
           ~ok:(ev.Middleware.error = None)));
  {
    mw;
    log;
    slo;
    watchdog;
    started_us = Tango_obs.now_us ();
    started_mono_us = Tango_obs.mono_us ();
  }

let uptime_seconds t = (Tango_obs.mono_us () -. t.started_mono_us) /. 1e6

let event_log t = t.log
let slo t = t.slo
let watchdog t = t.watchdog

let json_response ?status j =
  Http.response ?status ~content_type:"application/json"
    (Tango_obs.Json.to_string j ^ "\n")

let error_response status msg =
  json_response ~status (Tango_obs.Json.Obj [ ("error", Tango_obs.Json.String msg) ])

(* OpenMetrics (exemplar) mode is negotiated: an [Accept] header naming
   [application/openmetrics-text] (what a Prometheus server scraping
   with exemplar support sends), or [?format=openmetrics] for humans
   with curl. *)
let wants_openmetrics (req : Http.request) =
  (match List.assoc_opt "accept" req.Http.headers with
  | Some accept ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      contains (String.lowercase_ascii accept) "application/openmetrics-text"
  | None -> false)
  || List.assoc_opt "format" req.Http.query = Some "openmetrics"

let metrics t (req : Http.request) =
  let openmetrics = wants_openmetrics req in
  let snapshot = Tango_obs.Registry.snapshot () in
  let verdict = Slo.evaluate t.slo ~now_us:(Tango_obs.now_us ()) in
  let gauges =
    List.map
      (fun (name, v) -> Prometheus.gauge ~name v)
      (Slo.prometheus_gauges verdict)
  in
  let uptime =
    Prometheus.gauge ~name:"monitor.uptime_seconds" (uptime_seconds t)
  in
  let build_info =
    Prometheus.gauge ~name:"build_info"
      ~labels:
        [
          ("ocaml", Sys.ocaml_version);
          ("git", Build_info.git_describe);
          ("domains", string_of_int (Domain.recommended_domain_count ()));
        ]
      1.0
  in
  let locks = Prometheus.lock_profile (Tango_obs.Dsync.Profile.snapshot ()) in
  let body =
    (Prometheus.render ~exemplars:openmetrics snapshot
     :: locks :: uptime :: build_info
     :: Prometheus.runtime_gauges ()
     :: gauges)
    @ (if openmetrics then [ Prometheus.eof ] else [])
  in
  Http.response
    ~content_type:
      (if openmetrics then Prometheus.openmetrics_content_type
       else Prometheus.content_type)
    (String.concat "" body)

let queries t (req : Http.request) =
  let n =
    match List.assoc_opt "n" req.Http.query with
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> Some n
        | _ -> None)
    | None -> Some 20
  in
  match n with
  | None -> error_response 400 "n must be a positive integer"
  | Some n -> json_response (Event_log.to_json ~n t.log)

(* The drill-down: one kept record in full — phase breakdown,
   per-backend attribution, and (when the run was traced) its Chrome
   trace with one lane per backend. *)
let query_by_seq t seq =
  match int_of_string_opt seq with
  | None -> error_response 400 "seq must be an integer"
  | Some seq -> (
      match Event_log.find t.log seq with
      | None ->
          error_response 404
            (Printf.sprintf "no record for seq %d (not kept, or evicted)" seq)
      | Some r ->
          let record = Event_log.record_to_json r in
          let fields =
            match record with Tango_obs.Json.Obj fs -> fs | j -> [ ("record", j) ]
          in
          let lanes =
            List.map
              (fun (name, (b : Middleware.backend_breakdown)) ->
                (name, b.Middleware.us, b.Middleware.wait_us))
              r.Event_log.backends
          in
          let trace =
            match r.Event_log.trace with
            | Some span ->
                [ ("trace", Chrome_trace.to_json ~backends:lanes span) ]
            | None -> []
          in
          json_response (Tango_obs.Json.Obj (fields @ trace)))

let watchdog_verdict t =
  let verdict =
    Watchdog.evaluate t.watchdog ~now_us:(Tango_obs.now_us ()) ~slo:t.slo
      ~log:t.log
      ~feedback:(Middleware.profile_store t.mw)
      ~cache:(Middleware.plan_cache_stats t.mw)
      ~generation:(topology_generation t) ()
  in
  json_response (Watchdog.verdict_to_json verdict)

(* Named-lock contention profile, ranked by share of the total wait so
   the hottest lock reads first.  Rates and means are derived here —
   the profiler only keeps raw counters. *)
let contention () =
  let open Tango_obs.Json in
  let module P = Tango_obs.Dsync.Profile in
  let snaps = P.snapshot () in
  let total_wait =
    List.fold_left (fun acc (s : P.snapshot) -> acc +. s.P.wait_us) 0.0 snaps
  in
  let ranked =
    List.sort
      (fun (a : P.snapshot) (b : P.snapshot) -> compare b.P.wait_us a.P.wait_us)
      snaps
  in
  let lock_json (s : P.snapshot) =
    let fdiv num den = if den > 0 then num /. float_of_int den else 0.0 in
    Obj
      [
        ("name", String s.P.lock_name);
        ("acquires", Int s.P.acquires);
        ("contended", Int s.P.contended);
        ( "contention_rate",
          Float (fdiv (float_of_int s.P.contended) s.P.acquires) );
        ("wait_us", Float s.P.wait_us);
        ("hold_us", Float s.P.hold_us);
        ( "wait_share",
          Float (if total_wait > 0.0 then s.P.wait_us /. total_wait else 0.0) );
        ("mean_wait_us", Float (fdiv s.P.wait_us s.P.contended));
        ("mean_hold_us", Float (fdiv s.P.hold_us s.P.acquires));
      ]
  in
  json_response
    (Obj
       [
         ("enabled", Bool (P.enabled ()));
         ("total_wait_us", Float total_wait);
         ("locks", List (List.map lock_json ranked));
       ])

let healthz t (req : Http.request) =
  if List.mem_assoc "plain" req.Http.query then Http.response "ok\n"
  else
    let open Tango_obs.Json in
    let topology = Middleware.topology t.mw in
    json_response
      (Obj
         [
           ("status", String "ok");
           ("uptime_seconds", Float (uptime_seconds t));
           ("ocaml_version", String Sys.ocaml_version);
           ("git", String Build_info.git_describe);
           ("domains", Int (Domain.recommended_domain_count ()));
           ("topology_generation", Int (Tango_dbms.Topology.generation topology));
           ("shards", Int (Tango_dbms.Topology.shard_count topology));
           ("queries_seen", Int (Event_log.seen t.log));
         ])

let trace t =
  match Middleware.last_trace t.mw with
  | None -> error_response 404 "no trace collected (tracing off or no query yet)"
  | Some span ->
      Http.response ~content_type:"application/json"
        (Chrome_trace.to_string span)

(* Known pipeline failures become a 400 with the error text; anything
   else propagates to Http's 500 handler. *)
let query_failure = function
  | Tango_sql.Lexer.Lex_error m -> Some ("lex error: " ^ m)
  | Tango_sql.Parser.Parse_error m -> Some ("parse error: " ^ m)
  | Tango_tsql.Compile.Unsupported m -> Some ("unsupported: " ^ m)
  | Tango_dbms.Catalog.No_such_table m -> Some ("no such table: " ^ m)
  | Tango_dbms.Executor.Sql_error m -> Some ("sql error: " ^ m)
  | Tango_algebra.Op.Ill_formed m -> Some ("ill-formed plan: " ^ m)
  | Middleware.No_plan m -> Some ("no plan: " ^ m)
  | Failure m -> Some m
  | _ -> None

(* A [POST /query] body is either raw temporal SQL (the original
   protocol) or, when it starts with '{', a JSON object
   [{"sql": "...", "params": [...]}] binding parameter values
   positionally.  JSON strings that spell a date become [Date] values so
   clients can bind period predicates. *)
let param_of_json : Tango_obs.Json.t -> (Tango_rel.Value.t, string) result =
  function
  | Tango_obs.Json.Null -> Ok Tango_rel.Value.Null
  | Tango_obs.Json.Bool b -> Ok (Tango_rel.Value.Bool b)
  | Tango_obs.Json.Int i -> Ok (Tango_rel.Value.Int i)
  | Tango_obs.Json.Float f -> Ok (Tango_rel.Value.Float f)
  | Tango_obs.Json.String s -> (
      match Tango_temporal.Chronon.of_string s with
      | c -> Ok (Tango_rel.Value.Date c)
      | exception _ -> Ok (Tango_rel.Value.Str s))
  | Tango_obs.Json.List _ | Tango_obs.Json.Obj _ ->
      Error "params must be scalars (string/number/bool/null)"

let parse_query_body (body : string) :
    (string * Tango_rel.Value.t list, string) result =
  if String.length body > 0 && body.[0] = '{' then
    match Tango_obs.Json.parse body with
    | Error msg -> Error ("bad JSON body: " ^ msg)
    | Ok (Tango_obs.Json.Obj fields) -> (
        match List.assoc_opt "sql" fields with
        | Some (Tango_obs.Json.String sql) -> (
            match List.assoc_opt "params" fields with
            | None -> Ok (sql, [])
            | Some (Tango_obs.Json.List ps) ->
                List.fold_right
                  (fun p acc ->
                    match (acc, param_of_json p) with
                    | Ok vs, Ok v -> Ok (v :: vs)
                    | (Error _ as e), _ -> e
                    | _, Error msg -> Error msg)
                  ps (Ok [])
                |> Result.map (fun vs -> (sql, vs))
            | Some _ -> Error "\"params\" must be a JSON list")
        | Some _ -> Error "\"sql\" must be a JSON string"
        | None -> Error "JSON body needs a \"sql\" field")
    | Ok _ -> Error "JSON body must be an object"
  else Ok (body, [])

let run_query t (req : Http.request) =
  match parse_query_body (String.trim req.Http.body) with
  | Error msg -> error_response 400 msg
  | Ok ("", _) ->
      error_response 400 "empty request body; POST temporal SQL"
  | Ok (sql, params) -> (
    match Middleware.query_params t.mw sql params with
    | report ->
        let open Tango_obs.Json in
        json_response
          (Obj
             [
               ( "rows",
                 Int (Tango_rel.Relation.cardinality report.Middleware.result)
               );
               ("optimize_us", Float report.Middleware.optimize_us);
               ("execute_us", Float report.Middleware.execute_us);
               ( "fingerprint",
                 String
                   (Tango_volcano.Physical.fingerprint
                      report.Middleware.physical) );
               ( "plan",
                 String
                   (Tango_volcano.Physical.signature report.Middleware.physical)
               );
               ( "cache",
                 match report.Middleware.cache with
                 | Some c -> String c.Middleware.cache_class
                 | None -> Null );
             ])
    | exception e -> (
        match query_failure e with
        | Some msg -> error_response 400 msg
        | None -> raise e))

let strip_prefix ~prefix s =
  let np = String.length prefix in
  if String.length s > np && String.sub s 0 np = prefix then
    Some (String.sub s np (String.length s - np))
  else None

let handler t (req : Http.request) : Http.response =
  match (req.Http.meth, req.Http.path, strip_prefix ~prefix:"/queries/" req.Http.path) with
  | "GET", _, Some seq -> query_by_seq t seq
  | "GET", "/healthz", _ -> healthz t req
  | "GET", "/metrics", _ -> metrics t req
  | "GET", "/slo", _ ->
      json_response (Slo.to_json t.slo ~now_us:(Tango_obs.now_us ()))
  | "GET", "/queries", _ -> queries t req
  | "GET", "/debug/watchdog", _ -> watchdog_verdict t
  | "GET", "/debug/contention", _ -> contention ()
  | "GET", "/trace", _ -> trace t
  | "POST", "/query", _ -> run_query t req
  | ( _,
      ( "/healthz" | "/metrics" | "/slo" | "/queries" | "/debug/watchdog"
      | "/debug/contention" | "/trace" | "/query" ),
      _ )
  | _, _, Some _ ->
      Http.response ~status:405 "method not allowed\n"
  | _ -> Http.response ~status:404 "not found\n"
