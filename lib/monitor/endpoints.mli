(** The monitoring surface behind [tango_cli serve]: wires a middleware
    session to an {!Event_log} and an {!Slo} tracker, and dispatches
    HTTP requests to the monitoring endpoints. *)

type t

val create :
  ?log:Event_log.t -> ?slo:Slo.t -> Tango_core.Middleware.t -> t
(** Installs a query observer on the session
    ({!Tango_core.Middleware.set_query_observer}) feeding the event log
    and the SLO tracker; defaults: [Event_log.create ()],
    [Slo.create ()]. *)

val event_log : t -> Event_log.t
val slo : t -> Slo.t

val handler : t -> Http.request -> Http.response
(** Dispatch:

    - [GET /healthz] — ["ok\n"];
    - [GET /metrics] — Prometheus exposition of the registry snapshot,
      plus SLO burn-rate gauges and an uptime gauge;
    - [GET /slo] — the burn-rate verdict as JSON;
    - [GET /queries?n=K] — up to [K] (default 20) most recent event-log
      records, newest first;
    - [GET /trace] — Chrome trace JSON of the last pipeline run (404
      when tracing is off or nothing ran yet);
    - [POST /query] — run the temporal SQL in the body; 200 with a JSON
      summary (rows, times, plan fingerprint), or 400 with
      [{"error": ...}] on lex/parse/compile/execution failures.

    Unknown paths are 404, wrong methods on known paths 405. *)
