(** The monitoring surface behind [tango_cli serve]: wires a middleware
    session to an {!Event_log} and an {!Slo} tracker, and dispatches
    HTTP requests to the monitoring endpoints. *)

type t

val create :
  ?log:Event_log.t ->
  ?slo:Slo.t ->
  ?watchdog:Watchdog.t ->
  Tango_core.Middleware.t ->
  t
(** Installs a query observer on the session
    ({!Tango_core.Middleware.set_query_observer}) feeding the event log
    and the SLO tracker; defaults: [Event_log.create ()],
    [Slo.create ()], a {!Watchdog} baselined at the session topology's
    current generation. *)

val event_log : t -> Event_log.t
val slo : t -> Slo.t
val watchdog : t -> Watchdog.t

val handler : t -> Http.request -> Http.response
(** Dispatch:

    - [GET /healthz] — liveness as JSON (status, uptime, build identity
      — OCaml version, git describe, recommended domain count —
      topology generation, shard count, queries seen); bare ["ok\n"]
      under [?plain=1];
    - [GET /metrics] — Prometheus exposition of the registry snapshot,
      plus per-lock [tango_lock_*] contention families, SLO burn-rate
      gauges, an uptime gauge, a [tango_build_info] gauge and the
      [tango_gc_*] runtime gauges.  With an [Accept] header naming
      [application/openmetrics-text] (or [?format=openmetrics]) the
      exposition switches to OpenMetrics: bucket samples carry
      exemplars and the body ends with [# EOF];
    - [GET /slo] — the burn-rate verdict as JSON;
    - [GET /queries?n=K] — up to [K] (default 20) most recent event-log
      records, newest first;
    - [GET /queries/<seq>] — the kept record with that seq in full —
      phase breakdown, per-backend attribution, and (when traced) its
      Chrome trace with one lane per backend (404 when not kept or
      evicted);
    - [GET /debug/watchdog] — the {!Watchdog} drill-down verdict:
      correlated signals plus the dominant backend and phase of the
      latency tail;
    - [GET /debug/contention] — the named-lock profile as JSON, ranked
      by share of the total wait: per lock, acquire/contended counts,
      cumulative wait and hold time, and derived rates and means;
    - [GET /trace] — Chrome trace JSON of the last pipeline run (404
      when tracing is off or nothing ran yet);
    - [POST /query] — run the temporal SQL in the body; 200 with a JSON
      summary (rows, times, plan fingerprint), or 400 with
      [{"error": ...}] on lex/parse/compile/execution failures.

    Unknown paths are 404, wrong methods on known paths 405. *)
