(** Minimal dependency-free HTTP/1.1 server over Unix sockets.

    Enough protocol for a monitoring surface: one request per
    connection (the response always says [Connection: close]),
    request-line + header parsing, [Content-Length] bodies, and
    percent-decoded query strings.  The accept loop is sequential — the
    middleware session it fronts is single-threaded anyway — and
    [max_requests] bounds it for tests and smoke jobs.

    Nothing here depends on the rest of the middleware; the handler is
    just [request -> response]. *)

type request = {
  meth : string;  (** uppercase, e.g. ["GET"] *)
  path : string;  (** decoded path, no query string *)
  query : (string * string) list;  (** decoded query parameters *)
  headers : (string * string) list;  (** keys lowercased *)
  body : string;
}

type response = { status : int; content_type : string; body : string }

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8")
    body =
  { status; content_type; body }

let reason_phrase = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Content Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let max_body_bytes = 1 lsl 20
let max_line_bytes = 16 * 1024

(* ------------------------------------------------------------------ *)
(* Percent decoding                                                     *)
(* ------------------------------------------------------------------ *)

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (match s.[i] with
      | '+' ->
          Buffer.add_char b ' ';
          go (i + 1)
      | '%' when i + 2 < n -> (
          match (hex_value s.[i + 1], hex_value s.[i + 2]) with
          | Some hi, Some lo ->
              Buffer.add_char b (Char.chr ((hi * 16) + lo));
              go (i + 3)
          | _ ->
              Buffer.add_char b '%';
              go (i + 1))
      | c ->
          Buffer.add_char b c;
          go (i + 1))
    end
  in
  go 0;
  Buffer.contents b

let parse_query s =
  if s = "" then []
  else
    List.filter_map
      (fun kv ->
        if kv = "" then None
        else
          match String.index_opt kv '=' with
          | None -> Some (percent_decode kv, "")
          | Some i ->
              Some
                ( percent_decode (String.sub kv 0 i),
                  percent_decode
                    (String.sub kv (i + 1) (String.length kv - i - 1)) ))
      (String.split_on_char '&' s)

let split_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some i ->
      ( percent_decode (String.sub target 0 i),
        parse_query (String.sub target (i + 1) (String.length target - i - 1))
      )

(* ------------------------------------------------------------------ *)
(* Buffered reading from a socket                                       *)
(* ------------------------------------------------------------------ *)

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
}

let reader fd = { fd; buf = Bytes.create 8192; pos = 0; len = 0 }

(* The reader is connection-local: one domain owns a connection for
   its whole lifetime, so its cursor needs no lock. *)

(* false at EOF *)
let refill r =
  if r.pos < r.len then true
  else begin
    r.pos <- 0;
    r.len <- Unix.read r.fd r.buf 0 (Bytes.length r.buf);
    r.len > 0
  end
[@@tango.unguarded "connection-local reader cursor; one domain per connection"]

(** A line up to ['\n'], with the ['\n'] (and a preceding ['\r'])
    stripped; [None] at EOF before any byte. *)
let read_line r : string option =
  let b = Buffer.create 128 in
  let rec go () =
    if not (refill r) then if Buffer.length b = 0 then None else Some ()
    else begin
      let c = Bytes.get r.buf r.pos in
      r.pos <- r.pos + 1;
      if c = '\n' then Some ()
      else begin
        Buffer.add_char b c;
        if Buffer.length b > max_line_bytes then Some () else go ()
      end
    end
  in
  match go () with
  | None -> None
  | Some () ->
      let s = Buffer.contents b in
      let n = String.length s in
      Some (if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s)
[@@tango.unguarded "connection-local reader cursor; one domain per connection"]

let read_exact r n : string option =
  let b = Buffer.create n in
  let rec go remaining =
    if remaining = 0 then Some (Buffer.contents b)
    else if not (refill r) then None
    else begin
      let take = min remaining (r.len - r.pos) in
      Buffer.add_subbytes b r.buf r.pos take;
      r.pos <- r.pos + take;
      go (remaining - take)
    end
  in
  go n
[@@tango.unguarded "connection-local reader cursor; one domain per connection"]

(* ------------------------------------------------------------------ *)
(* Request parsing / response writing                                   *)
(* ------------------------------------------------------------------ *)

exception Bad_request of string

let parse_request r : request option =
  match read_line r with
  | None -> None (* client closed without sending anything *)
  | Some line -> (
      match String.split_on_char ' ' line with
      | [ meth; target; version ]
        when version = "HTTP/1.1" || version = "HTTP/1.0" ->
          let headers = ref [] in
          let rec read_headers () =
            match read_line r with
            | None | Some "" -> ()
            | Some h ->
                (match String.index_opt h ':' with
                | Some i ->
                    let k = String.lowercase_ascii (String.sub h 0 i) in
                    let v =
                      String.trim
                        (String.sub h (i + 1) (String.length h - i - 1))
                    in
                    headers := (k, v) :: !headers
                | None -> () (* tolerate malformed header lines *));
                read_headers ()
          in
          read_headers ();
          let headers = List.rev !headers in
          let body =
            match List.assoc_opt "content-length" headers with
            | None -> ""
            | Some v -> (
                match int_of_string_opt (String.trim v) with
                | None | Some _ when false -> ""
                | Some n when n < 0 || n > max_body_bytes ->
                    raise (Bad_request "content-length out of bounds")
                | Some n -> (
                    match read_exact r n with
                    | Some b -> b
                    | None -> raise (Bad_request "truncated body"))
                | None -> raise (Bad_request "malformed content-length"))
          in
          let path, query = split_target target in
          Some
            { meth = String.uppercase_ascii meth; path; query; headers; body }
      | _ -> raise (Bad_request "malformed request line"))

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let write_response fd (resp : response) =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      resp.status (reason_phrase resp.status) resp.content_type
      (String.length resp.body)
  in
  write_all fd (head ^ resp.body)

(* Wall time per served request (parse + handler + write), on the
   monotonic clock — this is a duration, so a wall-clock step (NTP,
   suspend) must not bend it. *)
let request_histogram = lazy (Tango_obs.Histogram.make "monitor.http_us")

(** Serve one connection: parse a single request, run the handler, write
    the response, leave the socket open for the caller to close.
    Handler exceptions become a 500, malformed requests a 400. *)
let handle_connection fd (handler : request -> response) : unit =
  let t0 = Tango_obs.mono_us () in
  let resp =
    match parse_request (reader fd) with
    | None -> None
    | Some req -> (
        match handler req with
        | resp -> Some resp
        | exception _ ->
            Some (response ~status:500 "internal server error\n"))
    | exception Bad_request m -> Some (response ~status:400 (m ^ "\n"))
    | exception _ -> Some (response ~status:400 "malformed request\n")
  in
  (match resp with
  | None -> ()
  | Some resp -> ( try write_response fd resp with _ -> ()));
  Tango_obs.Histogram.observe
    (Lazy.force request_histogram)
    (Tango_obs.mono_us () -. t0)

(* ------------------------------------------------------------------ *)
(* Listening / accept loop                                              *)
(* ------------------------------------------------------------------ *)

let listen ?(host = "127.0.0.1") ~port () : Unix.file_descr =
  let addr = Unix.inet_addr_of_string host in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock (Unix.ADDR_INET (addr, port))
   with e ->
     Unix.close sock;
     raise e);
  Unix.listen sock 64;
  sock

let bound_port sock =
  match Unix.getsockname sock with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> invalid_arg "Http.bound_port: not an inet socket"

let accept_loop ?max_requests ?(should_stop = fun () -> false) sock
    (handler : request -> response) : unit =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let served = ref 0 in
  let continue () =
    (not (should_stop ()))
    && match max_requests with None -> true | Some m -> !served < m
  in
  while continue () do
    (* A signal delivered while blocked in [accept] makes it raise
       EINTR (OCaml does not restart syscalls): loop back to re-check
       [should_stop], which is how a signal handler setting a flag
       turns into a graceful exit.  An in-flight request is never cut
       short — the loop is sequential, so by the time we are back in
       [accept] the previous response has been written and closed. *)
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _peer ->
        (try handle_connection fd handler with _ -> ());
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
        (try Unix.close fd with _ -> ());
        incr served
  done

let serve ?host ~port ?max_requests ?should_stop
    (handler : request -> response) : unit =
  let sock = listen ?host ~port () in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () -> accept_loop ?max_requests ?should_stop sock handler)
