(** Chrome trace-event JSON export of {!Tango_obs.Trace} spans.

    Produces the ["traceEvents"] array format that [about:tracing] and
    Perfetto open directly: one complete ("ph":"X") event per span with
    microsecond [ts]/[dur] and the span attributes as [args].

    Spans record durations and ordering but not absolute timestamps, so
    timestamps are reconstructed: a span starts where its parent starts
    and siblings are laid out back to back in execution order.  Within
    the middleware pipeline children run sequentially inside their
    parent, so this reconstruction preserves both nesting and relative
    width — the properties the flame view renders. *)

open Tango_obs

let arg_value = function
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.Str s -> Json.String s

let event ~pid ~tid ~ts (s : Trace.span) : Json.t =
  Json.Obj
    ([
       ("name", Json.String s.Trace.name);
       ("ph", Json.String "X");
       ("ts", Json.Float ts);
       ("dur", Json.Float s.Trace.elapsed_us);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @
    match s.Trace.attrs with
    | [] -> []
    | attrs ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_value v)) attrs)) ])

let events ?(pid = 1) ?(tid = 1) ?(start_us = 0.0) (root : Trace.span) :
    Json.t list =
  let acc = ref [] in
  let rec go ts (s : Trace.span) =
    acc := event ~pid ~tid ~ts s :: !acc;
    ignore
      (List.fold_left
         (fun t (c : Trace.span) ->
           go t c;
           t +. c.Trace.elapsed_us)
         ts s.Trace.children)
  in
  go start_us root;
  List.rev !acc

let to_json ?pid ?tid ?start_us (root : Trace.span) : Json.t =
  Json.Obj
    [
      ("traceEvents", Json.List (events ?pid ?tid ?start_us root));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string ?pid ?tid ?start_us root =
  Json.to_string (to_json ?pid ?tid ?start_us root)
