(** Chrome trace-event JSON export of {!Tango_obs.Trace} spans.

    Produces the ["traceEvents"] array format that [about:tracing] and
    Perfetto open directly: one complete ("ph":"X") event per span with
    microsecond [ts]/[dur] and the span attributes as [args].

    Spans record durations and ordering but not absolute timestamps, so
    timestamps are reconstructed: a span starts where its parent starts
    and siblings are laid out back to back in execution order.  Within
    the middleware pipeline children run sequentially inside their
    parent, so this reconstruction preserves both nesting and relative
    width — the properties the flame view renders. *)

open Tango_obs

let arg_value = function
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.Str s -> Json.String s

let event ~pid ~tid ~ts (s : Trace.span) : Json.t =
  Json.Obj
    ([
       ("name", Json.String s.Trace.name);
       ("ph", Json.String "X");
       ("ts", Json.Float ts);
       ("dur", Json.Float s.Trace.elapsed_us);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @
    match s.Trace.attrs with
    | [] -> []
    | attrs ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_value v)) attrs)) ])

let events ?(pid = 1) ?(tid = 1) ?(start_us = 0.0) (root : Trace.span) :
    Json.t list =
  let acc = ref [] in
  let rec go ts (s : Trace.span) =
    acc := event ~pid ~tid ~ts s :: !acc;
    ignore
      (List.fold_left
         (fun t (c : Trace.span) ->
           go t c;
           t +. c.Trace.elapsed_us)
         ts s.Trace.children)
  in
  go start_us root;
  List.rev !acc

(* "M"-phase metadata event naming a lane in the thread list. *)
let thread_name_event ~pid ~tid name =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let lane_event ~pid ~tid ~name ~ts ~dur =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "X");
      ("ts", Json.Float ts);
      ("dur", Json.Float dur);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
    ]

let backend_lanes ?(pid = 1) ?(start_us = 0.0)
    (backends : (string * float * float) list) : Json.t list =
  List.concat
    (List.mapi
       (fun i (name, transfer_us, wait_us) ->
         let tid = 2 + i in
         thread_name_event ~pid ~tid ("backend:" ^ name)
         :: lane_event ~pid ~tid ~name:"transfer" ~ts:start_us ~dur:transfer_us
         :: [
              lane_event ~pid ~tid ~name:"gather-wait"
                ~ts:(start_us +. transfer_us) ~dur:wait_us;
            ])
       backends)

let to_json ?pid ?tid ?start_us ?(backends = []) (root : Trace.span) : Json.t =
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (events ?pid ?tid ?start_us root
          @ backend_lanes ?pid ?start_us backends) );
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string ?pid ?tid ?start_us ?backends root =
  Json.to_string (to_json ?pid ?tid ?start_us ?backends root)
