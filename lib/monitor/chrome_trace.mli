(** Chrome trace-event JSON export of {!Tango_obs.Trace} spans — opens
    directly in [about:tracing] / Perfetto.

    Timestamps are reconstructed from durations: a span starts where its
    parent starts, and siblings are laid out back to back in execution
    order (children of a pipeline span run sequentially, so nesting and
    relative width are preserved). *)

val events :
  ?pid:int ->
  ?tid:int ->
  ?start_us:float ->
  Tango_obs.Trace.span ->
  Tango_obs.Json.t list
(** One complete ("ph":"X") event per span, preorder; [ts]/[dur] in
    microseconds, span attributes as [args].  [pid]/[tid] default to 1,
    [start_us] (the root timestamp) to 0. *)

val backend_lanes :
  ?pid:int ->
  ?start_us:float ->
  (string * float * float) list ->
  Tango_obs.Json.t list
(** One trace lane {e per backend}: [(name, transfer_us, wait_us)]
    becomes a thread (tids 2, 3, ... — tid 1 is the pipeline) labeled
    ["backend:<name>"] via a thread_name metadata event, holding a
    ["transfer"] slice followed by a ["gather-wait"] slice.  Lane order
    follows list order, so first-touch attribution order is preserved. *)

val to_json :
  ?pid:int ->
  ?tid:int ->
  ?start_us:float ->
  ?backends:(string * float * float) list ->
  Tango_obs.Trace.span ->
  Tango_obs.Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}]; [backends] (default
    none) appends {!backend_lanes} after the span events. *)

val to_string :
  ?pid:int ->
  ?tid:int ->
  ?start_us:float ->
  ?backends:(string * float * float) list ->
  Tango_obs.Trace.span ->
  string
