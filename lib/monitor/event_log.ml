(** Per-query event log: a fixed-capacity ring buffer of structured
    records fed from the middleware pipeline
    ({!Tango_core.Middleware.set_query_observer}).

    Admission is {e head-based}: the keep/drop decision is made when the
    event arrives, deterministically — every [sample_every]-th event is
    kept (by arrival ordinal), and two overrides always keep an event
    regardless of sampling: pipeline failures, and executions at least
    [slow_keep_us] slow.  Once admitted, records evict oldest-first when
    the ring is full.

    Every event (kept or not) also feeds the always-on aggregate
    metrics: [monitor.queries], [monitor.query_errors] and the
    [monitor.query_us] latency histogram, which is what [/metrics]
    exports buckets from.

    Domain safety: admission, ring writes and reads all run inside the
    instance's {!Tango_obs.Dsync} critical section, so one log can be
    fed from a multi-domain accept pool; sequence numbers are assigned
    under the lock and stay unique. *)

open Tango_core
module Dsync = Tango_obs.Dsync

(* aggregate metrics, fed on every event *)
let queries_total = Tango_obs.Counter.make "monitor.queries"
let query_errors = Tango_obs.Counter.make "monitor.query_errors"
let events_kept = Tango_obs.Counter.make "monitor.events_kept"
let events_sampled_out = Tango_obs.Counter.make "monitor.events_sampled_out"
let query_us = Tango_obs.Histogram.make "monitor.query_us"

type keep_reason = Sampled | Slow | Failed | Tail

type record = {
  seq : int;
  at_us : float;
  kind : string;
  sql : string option;
  fingerprint : string option;
  signature : string option;
  total_us : float;
  parse_us : float;
  optimize_us : float;
  translate_us : float;
  execute_us : float;
  mw_exec_us : float;
  transfer_us : float;
  gather_wait_us : float;
  (* per-phase allocation deltas (bytes), plus the whole-run GC counts *)
  parse_alloc_bytes : int;
  optimize_alloc_bytes : int;
  translate_alloc_bytes : int;
  transfer_alloc_bytes : int;
  mw_exec_alloc_bytes : int;
  alloc_bytes : int;
  minor_collections : int;
  major_collections : int;
  promoted_words : int;
  backends : (string * Middleware.backend_breakdown) list;
  trace : Tango_obs.Trace.span option;
  cache_hit : bool;
  cache_class : string;  (** "template-hit" | "exact-hit" | "miss" | "" *)
  rows : int;
  mw_operators : int;
  transfers : int;
  tm_rows : int;
  td_rows : int;
  roundtrips : int;
  q_rows : float option;
  q_cost : float option;
  verify_errors : int;
  verify_warnings : int;
  error : string option;
  kept : keep_reason;
}

type t = {
  capacity : int;
  sample_every : int;
  slow_keep_us : float;
  lock : Dsync.lock;  (** guards the ring and every mutable field *)
  ring : record option array;
  mutable next : int;  (** write position *)
  mutable stored : int;
  mutable seen : int;  (** events offered, kept or not *)
  mutable kept : int;
}

let create ?(capacity = 256) ?(sample_every = 1) ?(slow_keep_us = 0.0) () =
  if capacity <= 0 then invalid_arg "Event_log.create: capacity must be > 0";
  if sample_every <= 0 then
    invalid_arg "Event_log.create: sample_every must be > 0";
  {
    capacity;
    sample_every;
    slow_keep_us;
    lock = Dsync.named_lock "monitor.event_log";
    ring = Array.make capacity None;
    next = 0;
    stored = 0;
    seen = 0;
    kept = 0;
  }

let capacity t = t.capacity
let seen t = Dsync.protect t.lock (fun () -> t.seen)
let kept t = Dsync.protect t.lock (fun () -> t.kept)

(* Walk the executed operator tree for the transfer-boundary numbers:
   rows entering the middleware across TRANSFER^M, rows materialized back
   into the DBMS across TRANSFER^D (transfer dependencies), and the
   middleware-resident operator count. *)
let exec_shape (exec : Exec_plan.node) =
  let mw_operators = ref 0
  and transfers = ref 0
  and tm_rows = ref 0
  and td_rows = ref 0 in
  Exec_plan.iter
    (fun n ->
      incr mw_operators;
      match n.Exec_plan.kind with
      | Exec_plan.Transfer_m { deps; _ } | Exec_plan.Scatter { deps; _ } ->
          incr transfers;
          tm_rows := !tm_rows + n.Exec_plan.out_tuples;
          List.iter
            (fun (d : Exec_plan.dep) ->
              td_rows := !td_rows + d.Exec_plan.source.Exec_plan.out_tuples)
            deps
      | _ -> ())
    exec;
  (!mw_operators, !transfers, !tm_rows, !td_rows)

let record_of_event ?(seq = 0) ?(kept = Sampled)
    (ev : Middleware.query_event) : record =
  let empty =
    {
      seq;
      at_us = ev.Middleware.started_us;
      kind = ev.Middleware.kind;
      sql = ev.Middleware.sql;
      fingerprint = None;
      signature = None;
      total_us = ev.Middleware.elapsed_us;
      parse_us = 0.0;
      optimize_us = 0.0;
      translate_us = 0.0;
      execute_us = 0.0;
      mw_exec_us = 0.0;
      transfer_us = 0.0;
      gather_wait_us = 0.0;
      parse_alloc_bytes = 0;
      optimize_alloc_bytes = 0;
      translate_alloc_bytes = 0;
      transfer_alloc_bytes = 0;
      mw_exec_alloc_bytes = 0;
      alloc_bytes = ev.Middleware.resources.Tango_obs.Runtime.alloc_bytes;
      minor_collections =
        ev.Middleware.resources.Tango_obs.Runtime.minor_collections;
      major_collections =
        ev.Middleware.resources.Tango_obs.Runtime.major_collections;
      promoted_words =
        ev.Middleware.resources.Tango_obs.Runtime.promoted_words;
      backends = [];
      trace = None;
      cache_hit = ev.Middleware.cache_hit;
      cache_class = ev.Middleware.cache_class;
      rows = 0;
      mw_operators = 0;
      transfers = 0;
      tm_rows = 0;
      td_rows = 0;
      roundtrips = 0;
      q_rows = None;
      q_cost = None;
      verify_errors = 0;
      verify_warnings = 0;
      error = ev.Middleware.error;
      kept;
    }
  in
  match ev.Middleware.report with
  | None -> empty
  | Some r ->
      let mw_operators, transfers, tm_rows, td_rows =
        exec_shape r.Middleware.exec
      in
      let q_rows, q_cost =
        match r.Middleware.analysis with
        | Some a ->
            ( Some a.Tango_profile.Analyze.mean_q_rows,
              Some a.Tango_profile.Analyze.mean_q_cost )
        | None -> (None, None)
      in
      {
        empty with
        fingerprint =
          Some (Tango_volcano.Physical.fingerprint r.Middleware.physical);
        signature =
          Some (Tango_volcano.Physical.signature r.Middleware.physical);
        parse_us = r.Middleware.phases.Middleware.parse_us;
        optimize_us = r.Middleware.optimize_us;
        translate_us = r.Middleware.phases.Middleware.translate_us;
        execute_us = r.Middleware.execute_us;
        mw_exec_us = r.Middleware.phases.Middleware.mw_exec_us;
        transfer_us = r.Middleware.phases.Middleware.transfer_us;
        gather_wait_us = r.Middleware.phases.Middleware.gather_wait_us;
        parse_alloc_bytes =
          r.Middleware.phases.Middleware.res.Middleware.parse_res
            .Tango_obs.Runtime.alloc_bytes;
        optimize_alloc_bytes =
          r.Middleware.phases.Middleware.res.Middleware.optimize_res
            .Tango_obs.Runtime.alloc_bytes;
        translate_alloc_bytes =
          r.Middleware.phases.Middleware.res.Middleware.translate_res
            .Tango_obs.Runtime.alloc_bytes;
        transfer_alloc_bytes =
          r.Middleware.phases.Middleware.res.Middleware.transfer_alloc_bytes;
        mw_exec_alloc_bytes =
          r.Middleware.phases.Middleware.res.Middleware.mw_exec_alloc_bytes;
        backends = r.Middleware.backends;
        trace = r.Middleware.trace;
        rows = Tango_rel.Relation.cardinality r.Middleware.result;
        mw_operators;
        transfers;
        tm_rows;
        td_rows;
        roundtrips = r.Middleware.exec.Exec_plan.roundtrips;
        q_rows;
        q_cost;
        verify_errors = Tango_verify.Diag.count_errors r.Middleware.diagnostics;
        verify_warnings =
          List.length
            (List.filter
               (fun d -> not (Tango_verify.Diag.is_error d))
               r.Middleware.diagnostics);
        kept;
      }

(* An observation only counts as "tail" once the latency histogram has a
   meaningful shape, and only when it lands {e strictly above} the bucket
   holding the current p99 — a whole latency band beyond the estimated
   tail, so constant-latency workloads never trip it. *)
let tail_min_count = 32

let is_tail elapsed_us =
  Tango_obs.Histogram.count query_us >= tail_min_count
  && Tango_obs.Histogram.bucket_index elapsed_us
     > Tango_obs.Histogram.bucket_index
         (Tango_obs.Histogram.quantile query_us 0.99)

(* Head-based admission: failures, slow queries and tail outliers always
   keep; the rest keep every [sample_every]-th arrival (by 0-based
   ordinal, so the first event is always kept and the decision is
   deterministic).  [tail] is computed against the histogram {e before}
   this event is folded in. *)
let admission t ~tail (ev : Middleware.query_event) : keep_reason option =
  if ev.Middleware.error <> None then Some Failed
  else if t.slow_keep_us > 0.0 && ev.Middleware.elapsed_us >= t.slow_keep_us
  then Some Slow
  else if tail then Some Tail
  else if t.seen mod t.sample_every = 0 then Some Sampled
  else None

let observe t (ev : Middleware.query_event) : unit =
  Tango_obs.Counter.incr queries_total;
  if ev.Middleware.error <> None then Tango_obs.Counter.incr query_errors;
  (* Admission, seq assignment and the ring write happen atomically
     under the instance lock, so sequence numbers are unique and the
     ring never tears under concurrent observers.  The histogram guards
     itself (its own lock; no cycle — it never takes ours). *)
  let decision =
    Dsync.protect t.lock (fun () ->
        let decision =
          admission t ~tail:(is_tail ev.Middleware.elapsed_us) ev
        in
        (* Exemplars are attached only to {e kept} observations, so a
           bucket's exemplar always resolves to a record still
           addressable by seq. *)
        let exemplar =
          match decision with
          | None -> None
          | Some _ ->
              let trace_id =
                match ev.Middleware.report with
                | Some r ->
                    Tango_volcano.Physical.fingerprint r.Middleware.physical
                | None -> ev.Middleware.kind
              in
              Some
                {
                  Tango_obs.Histogram.ex_seq = t.seen;
                  ex_trace_id = trace_id;
                  ex_value = ev.Middleware.elapsed_us;
                  ex_at_us =
                    ev.Middleware.started_us +. ev.Middleware.elapsed_us;
                }
        in
        Tango_obs.Histogram.observe ?exemplar query_us
          ev.Middleware.elapsed_us;
        (match decision with
        | Some kept ->
            let r = record_of_event ~seq:t.seen ~kept ev in
            t.ring.(t.next) <- Some r;
            t.next <- (t.next + 1) mod t.capacity;
            if t.stored < t.capacity then t.stored <- t.stored + 1;
            t.kept <- t.kept + 1
        | None -> ());
        t.seen <- t.seen + 1;
        decision)
  in
  match decision with
  | Some _ -> Tango_obs.Counter.incr events_kept
  | None -> Tango_obs.Counter.incr events_sampled_out

let find t seq : record option =
  Dsync.protect t.lock (fun () ->
      let rec go i =
        if i >= t.stored then None
        else
          let idx = (t.next - 1 - i + (2 * t.capacity)) mod t.capacity in
          match t.ring.(idx) with
          | Some r when r.seq = seq -> Some r
          | _ -> go (i + 1)
      in
      go 0)

let recent ?n t : record list =
  Dsync.protect t.lock (fun () ->
      let n = match n with Some n -> min n t.stored | None -> t.stored in
      let out = ref [] in
      for i = 0 to n - 1 do
        let idx = (t.next - 1 - i + (2 * t.capacity)) mod t.capacity in
        match t.ring.(idx) with
        | Some r -> out := r :: !out
        | None -> ()
      done;
      List.rev !out)

let keep_reason_name = function
  | Sampled -> "sampled"
  | Slow -> "slow"
  | Failed -> "failed"
  | Tail -> "tail"

let backends_to_json (backends : (string * Middleware.backend_breakdown) list)
    : Tango_obs.Json.t =
  let open Tango_obs.Json in
  Obj
    (List.map
       (fun (name, (b : Middleware.backend_breakdown)) ->
         ( name,
           Obj
             [
               ("rows", Int b.Middleware.rows);
               ("bytes", Int b.Middleware.bytes);
               ("us", Float b.Middleware.us);
               ("wait_us", Float b.Middleware.wait_us);
               ("alloc_bytes", Int b.Middleware.alloc_bytes);
             ] ))
       backends)

let record_to_json (r : record) : Tango_obs.Json.t =
  let open Tango_obs.Json in
  let opt_str = function Some s -> String s | None -> Null in
  let opt_float = function Some f -> Float f | None -> Null in
  Obj
    [
      ("seq", Int r.seq);
      ("at_us", Float r.at_us);
      ("kind", String r.kind);
      ("sql", opt_str r.sql);
      ("fingerprint", opt_str r.fingerprint);
      ("plan", opt_str r.signature);
      ("total_us", Float r.total_us);
      ( "phases",
        Obj
          [
            ("parse_us", Float r.parse_us);
            ("optimize_us", Float r.optimize_us);
            ("translate_us", Float r.translate_us);
            ("mw_exec_us", Float r.mw_exec_us);
            ("transfer_us", Float r.transfer_us);
            ("gather_wait_us", Float r.gather_wait_us);
            ("parse_alloc_bytes", Int r.parse_alloc_bytes);
            ("optimize_alloc_bytes", Int r.optimize_alloc_bytes);
            ("translate_alloc_bytes", Int r.translate_alloc_bytes);
            ("transfer_alloc_bytes", Int r.transfer_alloc_bytes);
            ("mw_exec_alloc_bytes", Int r.mw_exec_alloc_bytes);
          ] );
      ( "gc",
        Obj
          [
            ("alloc_bytes", Int r.alloc_bytes);
            ("minor_collections", Int r.minor_collections);
            ("major_collections", Int r.major_collections);
            ("promoted_words", Int r.promoted_words);
          ] );
      ("optimize_us", Float r.optimize_us);
      ("execute_us", Float r.execute_us);
      ("backends", backends_to_json r.backends);
      ("cache_hit", Bool r.cache_hit);
      ("cache_class", String r.cache_class);
      ("rows", Int r.rows);
      ("mw_operators", Int r.mw_operators);
      ("transfers", Int r.transfers);
      ("tm_rows", Int r.tm_rows);
      ("td_rows", Int r.td_rows);
      ("roundtrips", Int r.roundtrips);
      ("q_rows", opt_float r.q_rows);
      ("q_cost", opt_float r.q_cost);
      ("verify_errors", Int r.verify_errors);
      ("verify_warnings", Int r.verify_warnings);
      ("error", opt_str r.error);
      ("kept", String (keep_reason_name r.kept));
    ]

let to_json ?n t : Tango_obs.Json.t =
  Tango_obs.Json.List (List.map record_to_json (recent ?n t))
