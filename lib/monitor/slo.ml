(** Sliding-window SLO tracking with multi-window burn-rate alerting.

    Two objectives over the query stream:

    - {b latency}: at least [latency_goal] of queries complete within
      [latency_us];
    - {b availability}: at least [error_goal] of queries succeed.

    For each, the {e burn rate} over a window is the observed
    bad-fraction divided by the budget ([1 - goal]): burn 1.0 consumes
    the budget exactly, burn 4.0 consumes it four times as fast.  The
    alert state uses the classic two-window rule — a condition fires
    only when {e both} the short window (fast reaction, noisy) and the
    long window (slow, stable) exceed a threshold:

    - [Critical] when both windows burn at >= [critical_burn];
    - [Warning] when both windows burn at >= [warn_burn];
    - [Ok] otherwise.

    The worst state across the two objectives is reported.  Timestamps
    are supplied by the caller ([now_us]), so the engine is fully
    deterministic under test. *)

type objective = {
  latency_us : float;
  latency_goal : float;
  error_goal : float;
  short_window_us : float;
  long_window_us : float;
  warn_burn : float;
  critical_burn : float;
}

let default_objective =
  {
    latency_us = 100_000.0 (* 100 ms *);
    latency_goal = 0.95;
    error_goal = 0.99;
    short_window_us = 60. *. 1e6 (* 1 min *);
    long_window_us = 600. *. 1e6 (* 10 min *);
    warn_burn = 1.0;
    critical_burn = 4.0;
  }

type state = Ok | Warning | Critical

let state_name = function
  | Ok -> "ok"
  | Warning -> "warning"
  | Critical -> "critical"

let state_rank = function Ok -> 0 | Warning -> 1 | Critical -> 2

type sample = { at_us : float; slow : bool; failed : bool }

module Dsync = Tango_obs.Dsync

type t = {
  objective : objective;
  lock : Dsync.lock;  (** guards [samples] *)
  samples : sample Queue.t;  (** oldest first, pruned to the long window *)
  max_samples : int;
}

let create ?(objective = default_objective) ?(max_samples = 8192) () =
  if objective.latency_goal >= 1.0 || objective.error_goal >= 1.0 then
    invalid_arg "Slo.create: goals must leave a nonzero error budget";
  if objective.short_window_us > objective.long_window_us then
    invalid_arg "Slo.create: short window exceeds long window";
  { objective; lock = Dsync.named_lock "monitor.slo"; samples = Queue.create (); max_samples }

let objective t = t.objective

(* Only called with [t.lock] held. *)
let prune t ~now_us =
  let horizon = now_us -. t.objective.long_window_us in
  while
    (not (Queue.is_empty t.samples))
    && (Queue.peek t.samples).at_us < horizon
  do
    ignore (Queue.pop t.samples)
  done;
  while Queue.length t.samples > t.max_samples do
    ignore (Queue.pop t.samples)
  done
[@@tango.unguarded "internal helper, only called under t.lock"]

let observe t ~now_us ~latency_us ~ok =
  Dsync.protect t.lock (fun () ->
      Queue.push
        {
          at_us = now_us;
          slow = latency_us > t.objective.latency_us;
          failed = not ok;
        }
        t.samples;
      prune t ~now_us)

type window_stats = { total : int; slow : int; failed : int }

let window_stats t ~now_us ~width_us =
  let horizon = now_us -. width_us in
  Queue.fold
    (fun acc s ->
      if s.at_us >= horizon then
        {
          total = acc.total + 1;
          slow = (acc.slow + if s.slow then 1 else 0);
          failed = (acc.failed + if s.failed then 1 else 0);
        }
      else acc)
    { total = 0; slow = 0; failed = 0 }
    t.samples

let burn ~budget ~bad ~total =
  if total = 0 then 0.0
  else float_of_int bad /. float_of_int total /. budget

type verdict = {
  state : state;
  latency_burn_short : float;
  latency_burn_long : float;
  error_burn_short : float;
  error_burn_long : float;
  short : window_stats;
  long : window_stats;
}

let evaluate t ~now_us : verdict =
  let short, long =
    Dsync.protect t.lock (fun () ->
        prune t ~now_us;
        let o = t.objective in
        ( window_stats t ~now_us ~width_us:o.short_window_us,
          window_stats t ~now_us ~width_us:o.long_window_us ))
  in
  let o = t.objective in
  let latency_budget = 1.0 -. o.latency_goal
  and error_budget = 1.0 -. o.error_goal in
  let latency_burn_short =
    burn ~budget:latency_budget ~bad:short.slow ~total:short.total
  and latency_burn_long =
    burn ~budget:latency_budget ~bad:long.slow ~total:long.total
  and error_burn_short =
    burn ~budget:error_budget ~bad:short.failed ~total:short.total
  and error_burn_long =
    burn ~budget:error_budget ~bad:long.failed ~total:long.total
  in
  (* two-window rule: both windows must agree before a state fires *)
  let pair_state s l =
    if s >= o.critical_burn && l >= o.critical_burn then Critical
    else if s >= o.warn_burn && l >= o.warn_burn then Warning
    else Ok
  in
  let latency_state = pair_state latency_burn_short latency_burn_long
  and error_state = pair_state error_burn_short error_burn_long in
  let state =
    if state_rank error_state > state_rank latency_state then error_state
    else latency_state
  in
  {
    state;
    latency_burn_short;
    latency_burn_long;
    error_burn_short;
    error_burn_long;
    short;
    long;
  }

let verdict_to_json (o : objective) (v : verdict) : Tango_obs.Json.t =
  let open Tango_obs.Json in
  let window name (w : window_stats) burn_latency burn_error =
    ( name,
      Obj
        [
          ("queries", Int w.total);
          ("slow", Int w.slow);
          ("failed", Int w.failed);
          ("latency_burn", Float burn_latency);
          ("error_burn", Float burn_error);
        ] )
  in
  Obj
    [
      ("state", String (state_name v.state));
      ( "objective",
        Obj
          [
            ("latency_us", Float o.latency_us);
            ("latency_goal", Float o.latency_goal);
            ("error_goal", Float o.error_goal);
            ("short_window_s", Float (o.short_window_us /. 1e6));
            ("long_window_s", Float (o.long_window_us /. 1e6));
            ("warn_burn", Float o.warn_burn);
            ("critical_burn", Float o.critical_burn);
          ] );
      window "short_window" v.short v.latency_burn_short v.error_burn_short;
      window "long_window" v.long v.latency_burn_long v.error_burn_long;
    ]

let to_json t ~now_us : Tango_obs.Json.t =
  verdict_to_json t.objective (evaluate t ~now_us)

(** Gauge series for the metrics endpoint: the state as 0/1/2 and the
    four burn rates. *)
let prometheus_gauges (v : verdict) : (string * float) list =
  [
    ("monitor.slo_state", float_of_int (state_rank v.state));
    ("monitor.slo_latency_burn_short", v.latency_burn_short);
    ("monitor.slo_latency_burn_long", v.latency_burn_long);
    ("monitor.slo_error_burn_short", v.error_burn_short);
    ("monitor.slo_error_burn_long", v.error_burn_long);
  ]
